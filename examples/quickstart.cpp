// Quickstart: bring up the distributed NVMe driver on a single host, write
// a block, read it back, and look at the latency.
//
// The flow mirrors the paper's architecture even on one machine:
//   1. build a simulated machine with an Optane-like NVMe controller;
//   2. register the controller with the SmartIO service;
//   3. start the driver *manager* (resets the controller, owns the admin
//      queues, serves queue-pair requests);
//   4. attach a driver *client* (gets its own I/O queue pair and exposes a
//      block device);
//   5. do I/O through the block-device API.
#include <cstdio>
#include <cstring>

#include "driver/client.hpp"
#include "driver/manager.hpp"
#include "workload/testbed.hpp"

using namespace nvmeshare;

int main() {
  // 1-2. One host, one NVMe device, SmartIO registry — all assembled by the
  // Testbed helper (see workload/testbed.hpp for the explicit steps).
  workload::TestbedConfig cfg;
  cfg.hosts = 1;
  workload::Testbed tb(cfg);
  std::printf("cluster up: %zu host(s), device id %llx\n", tb.fabric().host_count(),
              static_cast<unsigned long long>(tb.device_id()));

  // 3. The manager initializes the controller and publishes its metadata.
  auto manager = tb.wait(driver::Manager::start(tb.service(), /*node=*/0, tb.device_id(), {}));
  if (!manager) {
    std::fprintf(stderr, "manager failed: %s\n", manager.status().to_string().c_str());
    return 1;
  }
  const auto& hdr = (*manager)->header();
  std::printf("manager ready: %llu blocks of %u B, %u I/O queue pairs available\n",
              static_cast<unsigned long long>(hdr.capacity_blocks), hdr.block_size,
              hdr.granted_io_queues);

  // 4. A client gets its own queue pair and acts as a block device.
  auto client = tb.wait(driver::Client::attach(tb.service(), /*node=*/0, tb.device_id(), {}));
  if (!client) {
    std::fprintf(stderr, "client failed: %s\n", client.status().to_string().c_str());
    return 1;
  }
  block::BlockDevice& disk = **client;
  std::printf("client attached as '%s' (qid %u)\n", std::string(disk.name()).c_str(),
              (*client)->qid());

  // 5. Write one 4 KiB block and read it back.
  const std::uint32_t blocks = 4096 / disk.block_size();
  auto wbuf = tb.cluster().alloc_dram(0, 4096, 4096);
  auto rbuf = tb.cluster().alloc_dram(0, 4096, 4096);
  if (!wbuf || !rbuf) return 1;

  Bytes message(4096, std::byte{0});
  const char text[] = "hello from the distributed NVMe driver";
  std::memcpy(message.data(), text, sizeof(text));
  (void)tb.fabric().host_dram(0).write(*wbuf, message);

  auto write_done = tb.wait_plain(disk.submit({block::Op::write, 0, blocks, *wbuf}));
  if (!write_done || !write_done->status) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::printf("write completed in %.2f us\n", ns_to_us(write_done->latency_ns));

  auto read_done = tb.wait_plain(disk.submit({block::Op::read, 0, blocks, *rbuf}));
  if (!read_done || !read_done->status) {
    std::fprintf(stderr, "read failed\n");
    return 1;
  }
  Bytes out(4096);
  (void)tb.fabric().host_dram(0).read(*rbuf, out);
  std::printf("read completed in %.2f us: \"%s\"\n", ns_to_us(read_done->latency_ns),
              reinterpret_cast<const char*>(out.data()));

  const auto& stats = (*client)->stats();
  std::printf("client stats: %llu reads, %llu writes, %llu bounce copies (%llu bytes)\n",
              static_cast<unsigned long long>(stats.reads),
              static_cast<unsigned long long>(stats.writes),
              static_cast<unsigned long long>(stats.bounce_copies),
              static_cast<unsigned long long>(stats.bounce_copy_bytes));
  return 0;
}
