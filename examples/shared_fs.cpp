// Shared filesystem: two hosts mount the same nvsfs on-disk structures
// through their own driver clients and cooperate via the NTB-shared-memory
// bakery lock — the GFS/OCFS-style scenario Section V gives as the reason
// the driver exposes a Linux block device.
#include <cstdio>
#include <cstring>

#include "driver/client.hpp"
#include "driver/manager.hpp"
#include "fs/filesystem.hpp"
#include "workload/testbed.hpp"

using namespace nvmeshare;

int main() {
  workload::TestbedConfig cfg;
  cfg.hosts = 3;
  workload::Testbed tb(cfg);

  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  if (!manager) return 1;
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), {}));
  if (!c1 || !c2) return 1;

  // Host 1 formats; host 2 mounts the same device.
  fs::FileSystem::Config fscfg;
  fscfg.fs_blocks = 8192;  // 32 MiB
  auto fs1 = tb.wait(fs::FileSystem::format(tb.cluster(), **c1, 1, fscfg), 60_s);
  if (!fs1) {
    std::fprintf(stderr, "format failed: %s\n", fs1.status().to_string().c_str());
    return 1;
  }
  auto fs2 = tb.wait(fs::FileSystem::mount(tb.cluster(), **c2, 2, 1, fscfg), 60_s);
  if (!fs2) {
    std::fprintf(stderr, "mount failed: %s\n", fs2.status().to_string().c_str());
    return 1;
  }
  std::printf("host 1 formatted nvsfs (%llu blocks); host 2 mounted it\n",
              static_cast<unsigned long long>((*fs1)->superblock().fs_blocks));

  // Host 1 writes a file.
  auto ino = tb.wait((*fs1)->create("results/run-42.csv"), 60_s);
  if (!ino) return 1;
  const char csv[] = "step,loss\n1,0.91\n2,0.64\n3,0.48\n";
  Bytes contents(sizeof(csv) - 1);
  std::memcpy(contents.data(), csv, contents.size());
  if (!tb.wait((*fs1)->write(*ino, 0, contents), 60_s)) return 1;
  std::printf("host 1 wrote '%s' (%zu bytes)\n", "results/run-42.csv", contents.size());

  // Host 2 lists the namespace and reads the file back.
  auto listing = tb.wait((*fs2)->list(), 60_s);
  if (!listing) return 1;
  std::printf("host 2 sees %zu file(s):\n", listing->size());
  for (const auto& info : *listing) {
    std::printf("  %-24s %6llu bytes (inode %u)\n", info.name.c_str(),
                static_cast<unsigned long long>(info.size), info.inode);
  }
  auto found = tb.wait((*fs2)->lookup("results/run-42.csv"), 60_s);
  if (!found) return 1;
  auto data = tb.wait((*fs2)->read(*found, 0, 4096), 60_s);
  if (!data) return 1;
  std::printf("host 2 reads it back:\n%.*s", static_cast<int>(data->size()),
              reinterpret_cast<const char*>(data->data()));

  // Both hosts create files concurrently; the bakery lock over NTB shared
  // memory serializes the inode-table updates.
  auto a = (*fs1)->create("host1.log");
  auto b = (*fs2)->create("host2.log");
  const sim::Time give_up = tb.engine().now() + 10_s;
  while ((!a.ready() || !b.ready()) && tb.engine().now() < give_up) {
    tb.engine().run_for(1_ms);
  }
  if (!a.ready() || !b.ready()) return 1;
  auto ra = *a.try_take();
  auto rb = *b.try_take();
  if (!ra || !rb || *ra == *rb) {
    std::fprintf(stderr, "concurrent creates collided!\n");
    return 1;
  }
  std::printf("\nconcurrent creates from both hosts got distinct inodes (%u, %u) — the\n"
              "cluster lock (Lamport bakery over NTB shared memory) serialized the\n"
              "metadata update; lock acquisitions so far: host1=%llu host2=%llu\n",
              *ra, *rb, static_cast<unsigned long long>((*fs1)->stats().lock_acquisitions),
              static_cast<unsigned long long>((*fs2)->stats().lock_acquisitions));
  return 0;
}
