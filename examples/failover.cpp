// Failover / lifecycle: what happens when the manager goes away?
//
// The paper's design keeps the manager off the data path: it is only needed
// to create and delete queue pairs. This example walks the full lifecycle:
//   1. manager on host 0, clients on hosts 1 and 2 doing I/O;
//   2. the manager dies — established clients keep doing I/O untouched;
//   3. a new client cannot attach (nobody serves the mailbox);
//   4. a replacement manager cannot start while survivors hold the device
//      (SmartIO's exclusive acquisition protects the controller state);
//   5. after the survivors release the device, a new manager starts on a
//      *different* host and fresh clients attach again.
#include <cstdio>

#include "driver/client.hpp"
#include "driver/manager.hpp"
#include "workload/fio.hpp"
#include "workload/testbed.hpp"

using namespace nvmeshare;

namespace {

bool quick_io(workload::Testbed& tb, driver::Client& client, sisci::NodeId node) {
  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 50;
  spec.queue_depth = 2;
  spec.verify = true;
  auto result = workload::run_job_blocking(tb.cluster(), client, node, spec);
  return result.has_value() && result->errors == 0 && result->verify_failures == 0;
}

}  // namespace

int main() {
  workload::TestbedConfig cfg;
  cfg.hosts = 4;
  workload::Testbed tb(cfg);

  // 1. Normal operation.
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  if (!manager) return 1;
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), {}));
  if (!c1 || !c2) return 1;
  std::printf("[1] manager on host 0, clients on hosts 1 and 2\n");
  if (!quick_io(tb, **c1, 1) || !quick_io(tb, **c2, 2)) return 1;
  std::printf("    both clients pass verified I/O\n");

  // 2. The manager dies.
  manager->reset();
  tb.engine().run_for(1_ms);
  std::printf("[2] manager destroyed — clients keep operating the controller:\n");
  if (!quick_io(tb, **c1, 1) || !quick_io(tb, **c2, 2)) {
    std::fprintf(stderr, "    I/O after manager death FAILED\n");
    return 1;
  }
  std::printf("    verified I/O still passes (the manager is not on the data path)\n");

  // 3. New clients cannot attach.
  driver::Client::Config impatient;
  impatient.mailbox_timeout_ns = 5_ms;
  auto orphan = tb.wait(driver::Client::attach(tb.service(), 3, tb.device_id(), impatient),
                        60_s);
  std::printf("[3] a new client cannot attach without a manager: %s\n",
              orphan ? "ATTACHED (bug!)" : orphan.status().to_string().c_str());
  if (orphan) return 1;

  // 4. A replacement manager is blocked while survivors hold the device.
  auto blocked = tb.wait(driver::Manager::start(tb.service(), 3, tb.device_id(), {}));
  std::printf("[4] restart blocked while clients hold shared references: %s\n",
              blocked ? "STARTED (bug!)" : blocked.status().to_string().c_str());
  if (blocked) return 1;

  // 5. Survivors release the device; a new manager starts on host 3.
  c1->reset();
  c2->reset();
  tb.engine().run_for(1_ms);
  auto manager2 = tb.wait(driver::Manager::start(tb.service(), 3, tb.device_id(), {}));
  if (!manager2) {
    std::fprintf(stderr, "restart failed: %s\n", manager2.status().to_string().c_str());
    return 1;
  }
  std::printf("[5] replacement manager running on host 3 (controller re-initialized)\n");
  auto c3 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  if (!c3) return 1;
  if (!quick_io(tb, **c3, 1)) return 1;
  std::printf("    fresh client on host 1 attached and passes verified I/O\n");

  std::printf("\nlifecycle complete: data path survives manager death; control path "
              "recovers after a clean handover\n");
  return 0;
}
