// Shared log: four hosts append records to one on-disk log through a single
// NVMe controller, each with its own I/O queue pair — the paper's headline
// capability ("multiple hosts can operate the same NVMe controller by
// distributing I/O queue pairs in a PCIe cluster").
//
// Layout on disk:
//   block 0:            log header (record size, per-writer lane geometry)
//   lane w, slot i:     record block written by host w
// Each writer owns a disjoint lane, so appends need no cross-host locking —
// exactly the kind of partitioned design the queue-level sharing enables.
// At the end, one host scans every lane and reconstructs the global record
// stream, proving cross-host data visibility.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "driver/client.hpp"
#include "driver/manager.hpp"
#include "workload/testbed.hpp"

using namespace nvmeshare;

namespace {

constexpr std::uint32_t kWriters = 3;         // hosts 1..3
constexpr std::uint32_t kRecordsPerLane = 8;
constexpr std::uint32_t kRecordBytes = 4096;  // one record per 4 KiB block group

struct LogHeader {
  std::uint64_t magic = 0x4c4f475348415245;  // "SHARELOG"
  std::uint32_t writers = kWriters;
  std::uint32_t records_per_lane = kRecordsPerLane;
  std::uint32_t record_bytes = kRecordBytes;
};

struct Record {
  std::uint32_t writer = 0;
  std::uint32_t sequence = 0;
  sim::Time written_at = 0;
  char payload[100] = {};
};

std::uint64_t lane_lba(std::uint32_t writer, std::uint32_t slot, std::uint32_t block_size) {
  const std::uint64_t blocks_per_record = kRecordBytes / block_size;
  // Block 0..7 hold the header; lanes follow.
  return 8 + (static_cast<std::uint64_t>(writer) * kRecordsPerLane + slot) * blocks_per_record;
}

}  // namespace

int main() {
  workload::TestbedConfig cfg;
  cfg.hosts = kWriters + 1;  // host 0 holds the device + manager
  workload::Testbed tb(cfg);

  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  if (!manager) return 1;

  std::vector<std::unique_ptr<driver::Client>> clients;
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    auto client = tb.wait(driver::Client::attach(tb.service(), w + 1, tb.device_id(), {}));
    if (!client) {
      std::fprintf(stderr, "client %u failed: %s\n", w, client.status().to_string().c_str());
      return 1;
    }
    std::printf("host %u attached with queue pair %u\n", w + 1, (*client)->qid());
    clients.push_back(std::move(*client));
  }
  const std::uint32_t block_size = clients[0]->block_size();
  const std::uint32_t blocks_per_record = kRecordBytes / block_size;

  // Host 1 formats the log.
  {
    auto buf = tb.cluster().alloc_dram(1, kRecordBytes, 4096);
    Bytes header_block(kRecordBytes, std::byte{0});
    const LogHeader header;
    store_pod(header_block, header);
    (void)tb.fabric().host_dram(1).write(*buf, header_block);
    auto done = tb.wait_plain(clients[0]->submit({block::Op::write, 0, blocks_per_record, *buf}));
    if (!done || !done->status) return 1;
    std::printf("host 1 formatted the shared log\n");
  }

  // All writers append concurrently, each into its own lane.
  struct Writer {
    std::uint64_t buf;
    std::vector<sim::Future<block::Completion>> appends;
  };
  std::vector<Writer> writers(kWriters);
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    writers[w].buf = *tb.cluster().alloc_dram(w + 1, kRecordBytes * kRecordsPerLane, 4096);
    for (std::uint32_t slot = 0; slot < kRecordsPerLane; ++slot) {
      Record record;
      record.writer = w + 1;
      record.sequence = slot;
      record.written_at = tb.engine().now();
      std::snprintf(record.payload, sizeof(record.payload),
                    "event %u from host %u", slot, w + 1);
      Bytes block(kRecordBytes, std::byte{0});
      store_pod(block, record);
      const std::uint64_t slot_buf = writers[w].buf + slot * kRecordBytes;
      (void)tb.fabric().host_dram(w + 1).write(slot_buf, block);
      writers[w].appends.push_back(clients[w]->submit(
          {block::Op::write, lane_lba(w, slot, block_size), blocks_per_record, slot_buf}));
    }
  }
  // Drive the simulation until every append completed.
  tb.engine().run_for(50_ms);
  std::uint32_t completed = 0;
  for (auto& w : writers) {
    for (auto& f : w.appends) {
      if (f.ready() && f.try_take()->status.is_ok()) ++completed;
    }
  }
  std::printf("appends completed: %u / %u (all hosts writing in parallel)\n", completed,
              kWriters * kRecordsPerLane);
  if (completed != kWriters * kRecordsPerLane) return 1;

  // Host 3 (an arbitrary reader) scans every lane and rebuilds the stream.
  auto& reader = *clients[kWriters - 1];
  const sisci::NodeId reader_node = kWriters;
  auto rbuf = tb.cluster().alloc_dram(reader_node, kRecordBytes, 4096);
  std::uint32_t recovered = 0;
  std::printf("\nhost %u scans the log:\n", reader_node);
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    for (std::uint32_t slot = 0; slot < kRecordsPerLane; ++slot) {
      auto done = tb.wait_plain(reader.submit(
          {block::Op::read, lane_lba(w, slot, block_size), blocks_per_record, *rbuf}));
      if (!done || !done->status) return 1;
      Bytes block(kRecordBytes);
      (void)tb.fabric().host_dram(reader_node).read(*rbuf, block);
      const auto record = load_pod<Record>(block);
      if (record.writer != w + 1 || record.sequence != slot) {
        std::fprintf(stderr, "corrupt record in lane %u slot %u!\n", w, slot);
        return 1;
      }
      ++recovered;
      if (slot < 2) {  // print a sample, not all 24
        std::printf("  lane %u slot %u: \"%s\" (written at %lld ns)\n", w, slot,
                    record.payload, static_cast<long long>(record.written_at));
      }
    }
  }
  std::printf("\nrecovered %u/%u records written by %u different hosts — one NVMe "
              "controller, %u independent queue pairs, no locks\n",
              recovered, kWriters * kRecordsPerLane, kWriters, kWriters);
  return 0;
}
