// Cluster key-value store: a minimal block-backed hash table served by one
// NVMe device and accessed by several hosts in parallel, each through its
// own queue pair. Demonstrates building an actual storage abstraction on
// the distributed driver's block API.
//
// On-disk layout: a fixed-size open-addressed table; every bucket is one
// 4 KiB block holding {valid, key, value}. Ownership is partitioned by key
// hash, so hosts never race on a bucket (the paper's driver provides
// parallel block access; coordination policy is the application's job).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "driver/client.hpp"
#include "driver/manager.hpp"
#include "workload/testbed.hpp"

using namespace nvmeshare;

namespace {

constexpr std::uint32_t kBuckets = 1024;
constexpr std::uint32_t kBucketBytes = 4096;

struct Bucket {
  std::uint32_t valid = 0;
  char key[60] = {};
  char value[180] = {};
};

std::uint64_t hash_key(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One host's handle to the shared store.
class KvClient {
 public:
  KvClient(workload::Testbed& tb, driver::Client& client, sisci::NodeId node)
      : tb_(tb), client_(client), node_(node) {
    buf_ = *tb.cluster().alloc_dram(node, kBucketBytes, 4096);
    blocks_per_bucket_ = kBucketBytes / client.block_size();
  }

  bool put(const std::string& key, const std::string& value) {
    Bucket bucket;
    bucket.valid = 1;
    std::snprintf(bucket.key, sizeof(bucket.key), "%s", key.c_str());
    std::snprintf(bucket.value, sizeof(bucket.value), "%s", value.c_str());
    Bytes block(kBucketBytes, std::byte{0});
    store_pod(block, bucket);
    (void)tb_.fabric().host_dram(node_).write(buf_, block);
    auto done = tb_.wait_plain(
        client_.submit({block::Op::write, bucket_lba(key), blocks_per_bucket_, buf_}));
    return done.has_value() && done->status.is_ok();
  }

  std::optional<std::string> get(const std::string& key) {
    auto done = tb_.wait_plain(
        client_.submit({block::Op::read, bucket_lba(key), blocks_per_bucket_, buf_}));
    if (!done || !done->status) return std::nullopt;
    Bytes block(kBucketBytes);
    (void)tb_.fabric().host_dram(node_).read(buf_, block);
    const auto bucket = load_pod<Bucket>(block);
    if (bucket.valid == 0 || key != bucket.key) return std::nullopt;
    return std::string(bucket.value);
  }

 private:
  [[nodiscard]] std::uint64_t bucket_lba(const std::string& key) const {
    return (hash_key(key) % kBuckets) * blocks_per_bucket_;
  }

  workload::Testbed& tb_;
  driver::Client& client_;
  sisci::NodeId node_;
  std::uint64_t buf_;
  std::uint32_t blocks_per_bucket_;
};

}  // namespace

int main() {
  workload::TestbedConfig cfg;
  cfg.hosts = 4;
  workload::Testbed tb(cfg);

  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  if (!manager) return 1;

  std::vector<std::unique_ptr<driver::Client>> clients;
  std::vector<std::unique_ptr<KvClient>> kv;
  for (sisci::NodeId node = 1; node <= 3; ++node) {
    auto client = tb.wait(driver::Client::attach(tb.service(), node, tb.device_id(), {}));
    if (!client) return 1;
    clients.push_back(std::move(*client));
    kv.push_back(std::make_unique<KvClient>(tb, *clients.back(), node));
  }
  std::printf("3 hosts attached to one NVMe-backed KV store (one queue pair each)\n\n");

  // Every host inserts its own keys.
  for (std::size_t h = 0; h < kv.size(); ++h) {
    for (int i = 0; i < 4; ++i) {
      const std::string key = "host" + std::to_string(h + 1) + "/key" + std::to_string(i);
      const std::string value =
          "value-" + std::to_string(i) + "-written-by-host-" + std::to_string(h + 1);
      if (!kv[h]->put(key, value)) {
        std::fprintf(stderr, "put failed for %s\n", key.c_str());
        return 1;
      }
    }
    std::printf("host %zu inserted 4 keys\n", h + 1);
  }

  // Every host reads keys written by every *other* host.
  std::printf("\ncross-host reads:\n");
  int hits = 0, checks = 0;
  for (std::size_t reader = 0; reader < kv.size(); ++reader) {
    for (std::size_t writer = 0; writer < kv.size(); ++writer) {
      if (reader == writer) continue;
      const std::string key = "host" + std::to_string(writer + 1) + "/key2";
      ++checks;
      auto value = kv[reader]->get(key);
      if (value) {
        ++hits;
        if (reader == 0) {
          std::printf("  host %zu reads %s -> \"%s\"\n", reader + 1, key.c_str(),
                      value->c_str());
        }
      }
    }
  }
  std::printf("\n%d/%d cross-host lookups hit — every host sees every other host's writes "
              "through its own queue pair\n",
              hits, checks);

  auto missing = kv[0]->get("nonexistent/key");
  std::printf("lookup of a missing key correctly returns nothing: %s\n",
              missing ? "NO (bug!)" : "yes");
  return hits == checks && !missing ? 0 : 1;
}
