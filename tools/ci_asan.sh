#!/usr/bin/env bash
# CI: build with AddressSanitizer + UndefinedBehaviorSanitizer, run the full
# test suite (which includes fault_test, failover_test, and the chaos soaks
# in stress_test), then smoke-test the machine-readable bench output — one
# fast nvsh_fio run with --json, twice with the same seed, checking that the
# document parses and that the two runs are byte-identical (the determinism
# property the metrics registry guarantees). The same double-run check is
# repeated with a --faults chaos plan: seeded fault injection and the
# recovery machinery it triggers must be exactly as reproducible as a
# fault-free run (docs/faults.md).
#
# Usage: tools/ci_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Leak detection stays off: the simulator's detached coroutine loops
# (client completion polling, manager mailbox server) are deliberately
# still suspended when a process exits, so LSan reports their parked
# frames. Overflows, use-after-free, and UB are the signal here.
export ASAN_OPTIONS=detect_leaks=0:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1

# tier1 = the fast unit/feature subset (the verify line), then everything
# including the soak tier.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -L tier1
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -L soak

# --- JSON smoke ---------------------------------------------------------------
smoke() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw \
    --ops 2000 --seed 7 --json "$1" > /dev/null
}
JSON_A="$BUILD_DIR/smoke_a.json"
JSON_B="$BUILD_DIR/smoke_b.json"
smoke "$JSON_A"
smoke "$JSON_B"

if command -v python3 > /dev/null 2>&1; then
  python3 - "$JSON_A" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("bench", "config", "boxplots", "metrics"):
    assert key in doc, f"missing {key}"
assert doc["boxplots"], "no boxplots"
assert doc["metrics"]["counters"], "no counters in metrics snapshot"
print(f"json smoke ok: {len(doc['boxplots'])} boxplots, "
      f"{len(doc['metrics']['counters'])} counters")
EOF
else
  # No python3: at least require the expected top-level keys.
  grep -q '"bench"' "$JSON_A" && grep -q '"metrics"' "$JSON_A"
  echo "json smoke ok (python3 unavailable; key check only)"
fi

cmp "$JSON_A" "$JSON_B"
echo "determinism ok: identical seeds produced byte-identical documents"

# --- CXL substrate smoke ------------------------------------------------------
# The same stack over the CXL pooled-memory substrate: bring-up, a verified
# random mixed workload, and the determinism property must all hold with
# queues/mailbox/bounce living in the shared pool instead of behind NTB
# windows. A link-flap chaos pass drives the CXL port-down path through the
# substrate-neutral fault hook.
cxl_smoke() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --substrate cxl     --rw randrw --ops 2000 --seed 7 --region-blocks 4096 --verify     --json "$1" > /dev/null
}
CXL_A="$BUILD_DIR/cxl_a.json"
CXL_B="$BUILD_DIR/cxl_b.json"
cxl_smoke "$CXL_A"
cxl_smoke "$CXL_B"
cmp "$CXL_A" "$CXL_B"
grep -q '"substrate":"cxl"' "$CXL_A"
"$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --substrate cxl   --rw randrw --ops 2000 --seed 7   --faults "seed=11;ntb_link_down:host=1,at=2ms,for=300us" > /dev/null
echo "cxl smoke ok: pooled-memory substrate verified, byte-identical reruns"

# --- chaos determinism --------------------------------------------------------
# Same property with the fault injector active: a seeded plan plus the
# recovery paths it exercises (timeouts, retries, a link flap, controller
# error) must still produce byte-identical metric snapshots.
CHAOS_PLAN="seed=11;drop_posted_write:src=0,dst=1,nth=40,count=2;ntb_link_down:host=1,at=2ms,for=300us;ctrl_error:nth=100"
chaos_smoke() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw \
    --ops 2000 --seed 7 --faults "$CHAOS_PLAN" --json "$1" > /dev/null
}
CHAOS_A="$BUILD_DIR/chaos_a.json"
CHAOS_B="$BUILD_DIR/chaos_b.json"
chaos_smoke "$CHAOS_A"
chaos_smoke "$CHAOS_B"
cmp "$CHAOS_A" "$CHAOS_B"
grep -q '"nvmeshare.fault.link_downs":1' "$CHAOS_A"
echo "chaos determinism ok: same-seed fault runs produced byte-identical documents"

# --- corruption + integrity pipeline ------------------------------------------
# End-to-end data-integrity check: a PI-formatted namespace with client-side
# verify, the background scrubber running, and seeded bit flips on the DMA
# paths. Flips that corrupt data payloads are caught by the protection
# pipeline and recovered by the retry machinery; a flip that lands on a CQE
# status field is faithfully reported as a non-retryable I/O error (exit 1
# from nvsh_fio) rather than silent corruption — both outcomes are
# acceptable here, anything else (sanitizer abort, crash) is not. The hard
# assertions: every injected flip is accounted for, the PI pipeline
# actually engaged (tuples generated AND verified), and two same-seed runs
# are byte-identical, errors included.
CORRUPT_PLAN="seed=5;flip_dma_bits:src=0,dst=1,nth=2000,count=6"
corrupt_smoke() {
  local rc=0
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
    --ops 3000 --seed 7 --region-blocks 4096 --verify --integrity \
    --faults "$CORRUPT_PLAN" --json "$1" > /dev/null || rc=$?
  if [ "$rc" -gt 1 ]; then
    echo "corruption smoke crashed (exit $rc)" >&2
    exit "$rc"
  fi
}
CORRUPT_A="$BUILD_DIR/corrupt_a.json"
CORRUPT_B="$BUILD_DIR/corrupt_b.json"
corrupt_smoke "$CORRUPT_A"
corrupt_smoke "$CORRUPT_B"
cmp "$CORRUPT_A" "$CORRUPT_B"
grep -q '"nvmeshare.fault.bit_flips":6' "$CORRUPT_A"
grep -q '"nvmeshare.integrity.pi_generated":[1-9]' "$CORRUPT_A"
grep -q '"nvmeshare.integrity.pi_verified":[1-9]' "$CORRUPT_A"
grep -q '"nvmeshare.integrity.blocks_scrubbed":[1-9]' "$CORRUPT_A"
echo "corruption smoke ok: flips injected, PI pipeline engaged, run recovered"

# --- multi-queue engine ---------------------------------------------------------
# The channel-scaling bench under the sanitizer: its claim checks (IOPS
# monotone in channels, coalesced doorbells ring < once per command) are
# assertions, exit 1 on mismatch.
"$BUILD_DIR/bench/fig11_scaling" > /dev/null
echo "fig11_scaling ok: multi-queue claim checks passed"

# Multi-QP fault soak: 4 channels + doorbell coalescing with the chaos plan
# active, so per-channel recovery (mailbox batch re-create) and
# drain-to-survivors scheduling run under ASan — twice, byte-identical.
multiqp_smoke() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
    --channels 4 --ops 2000 --seed 7 --faults "$CHAOS_PLAN" --json "$1" > /dev/null
}
MULTIQP_A="$BUILD_DIR/multiqp_a.json"
MULTIQP_B="$BUILD_DIR/multiqp_b.json"
multiqp_smoke "$MULTIQP_A"
multiqp_smoke "$MULTIQP_B"
cmp "$MULTIQP_A" "$MULTIQP_B"
grep -q '"channels":"4"' "$MULTIQP_A"
grep -q '"nvmeshare.engine.client.qp3.doorbell_writes":[1-9]' "$MULTIQP_A"
echo "multi-qp soak ok: 4-channel chaos run recovered, byte-identical reruns"

# --- QoS / noisy-neighbor protection ---------------------------------------------
# The fairness bench under the sanitizer: its claim checks (flat RR lets a
# bulk writer inflate a QD1 reader's p99 beyond 2x solo; WRR + pacing keeps
# it within the bound) are assertions, exit 1 on mismatch.
"$BUILD_DIR/bench/fig12_fairness" > /dev/null
echo "fig12_fairness ok: WRR + QoS fairness claim checks passed"

# WRR chaos soak: weighted arbitration + a granted IOPS budget (which arms
# the client's token-bucket pacer) with the chaos plan active, so the
# pacing x retry interaction (docs/faults.md) runs under ASan — twice,
# byte-identical.
wrr_smoke() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
    --ops 2000 --seed 7 --qos-class high --qos-iops 50000 \
    --faults "$CHAOS_PLAN" --json "$1" > /dev/null
}
WRR_A="$BUILD_DIR/wrr_a.json"
WRR_B="$BUILD_DIR/wrr_b.json"
wrr_smoke "$WRR_A"
wrr_smoke "$WRR_B"
cmp "$WRR_A" "$WRR_B"
grep -q '"qos_class":"high"' "$WRR_A"
grep -q '"nvmeshare.engine.client.qos.deferred_cmds":[1-9]' "$WRR_A"
echo "wrr soak ok: paced chaos run recovered, byte-identical reruns"

# --- tenant multiplexing + namespace sharding ------------------------------------
# The tenant bench under the sanitizer: its claim checks (155 tenants over
# 31 shared queue pairs x 4 sharded controllers, aggregate IOPS scaling,
# per-tenant p99 isolation, the noisy tenant pinned at its QoS grant, mux
# counter balance) are assertions, exit 1 on mismatch. Twice with --json,
# byte-identical: DRR rounds, QoS stalls, and CID-window backpressure for
# hundreds of tenant coroutines are part of the deterministic instruction
# stream. (The multi-tenant chaos soak runs in the ctest soak tier above:
# Stress.TenantMuxChaos*.)
tenants_smoke() {
  "$BUILD_DIR/bench/fig13_tenants" --json "$1" > /dev/null
}
TENANTS_A="$BUILD_DIR/tenants_a.json"
TENANTS_B="$BUILD_DIR/tenants_b.json"
tenants_smoke "$TENANTS_A"
tenants_smoke "$TENANTS_B"
cmp "$TENANTS_A" "$TENANTS_B"
grep -q '"tenants":"155"' "$TENANTS_A"
grep -q '"nvmeshare.mux.completed_cmds":[1-9]' "$TENANTS_A"
grep -q '"nvmeshare.mux.shard_sub_requests":[1-9]' "$TENANTS_A"
grep -q '"nvmeshare.manager.shares_granted":[1-9]' "$TENANTS_A"
echo "fig13_tenants ok: tenant multiplexing claim checks passed, byte-identical reruns"

# --- manager failover -----------------------------------------------------------
# Hot-standby takeover under ASan (docs/MODEL.md §10): kill the active
# manager mid-run while a verified multi-channel workload is in flight and a
# posted-write delay storm jitters the client host. The standby must claim
# the next epoch and take over with ZERO I/O errors (nvsh_fio exits 1 on
# any error or verify failure — no tolerance here), and the takeover count
# must land in the JSON config. Twice, byte-identical: takeover is part of
# the deterministic instruction stream, not an escape from it.
TAKEOVER_PLAN="seed=23;host_crash:host=0,at=3ms;delay_posted_write:dst=1,extra=20us,prob=0.02,from=2ms,until=9ms"
takeover_smoke() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
    --channels 2 --runtime-ms 10 --seed 7 --region-blocks 4096 --verify \
    --standbys 1 --faults "$TAKEOVER_PLAN" --json "$1" > /dev/null
}
TAKEOVER_A="$BUILD_DIR/takeover_a.json"
TAKEOVER_B="$BUILD_DIR/takeover_b.json"
takeover_smoke "$TAKEOVER_A"
takeover_smoke "$TAKEOVER_B"
cmp "$TAKEOVER_A" "$TAKEOVER_B"
grep -q '"standbys":"1"' "$TAKEOVER_A"
grep -q '"takeovers":"1"' "$TAKEOVER_A"
grep -q '"nvmeshare.manager.takeovers":1' "$TAKEOVER_A"
grep -q '"nvmeshare.fault.host_crashes":1' "$TAKEOVER_A"
echo "takeover soak ok: standby took over mid-run, zero errors, byte-identical reruns"

# --- event-core perf harness ----------------------------------------------------
# nvsh_perf under the sanitizer: exercises the calendar queue (including the
# overflow refill), the event-node arena, and the IoEngine pending-command
# arena with small counts. The numbers are meaningless under ASan; the point
# is that the allocator-free hot paths are sanitizer-clean and the JSON
# document stays well-formed. Determinism of the *simulated* side is checked
# by comparing sim fields across two runs (wall-clock fields differ by
# construction, so no byte compare here).
perf_smoke() {
  "$BUILD_DIR/bench/nvsh_perf" --events 50000 --ops 2000 --stack-ops 500 \
    --seed 7 --json "$1" > /dev/null
}
PERF_A="$BUILD_DIR/perf_a.json"
PERF_B="$BUILD_DIR/perf_b.json"
perf_smoke "$PERF_A"
perf_smoke "$PERF_B"
if command -v python3 > /dev/null 2>&1; then
  python3 - "$PERF_A" "$PERF_B" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
for mode in ("engine", "io", "stack"):
    ra, rb = a["results"][mode], b["results"][mode]
    for key in ("items", "sim_events", "sim_elapsed_ns"):
        assert ra[key] == rb[key], f"{mode}.{key}: {ra[key]} != {rb[key]}"
    assert ra["events_per_sec"] > 0 and ra["cycles_per_item"] > 0
print("perf smoke ok: simulated metrics identical across same-seed runs")
EOF
else
  grep -q '"bench":"nvsh_perf"' "$PERF_A"
  echo "perf smoke ok (python3 unavailable; key check only)"
fi
echo "ci_asan: all green"
