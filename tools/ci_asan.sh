#!/usr/bin/env bash
# CI: build with AddressSanitizer + UndefinedBehaviorSanitizer, run the full
# test suite, then smoke-test the machine-readable bench output — one fast
# nvsh_fio run with --json, twice with the same seed, checking that the
# document parses and that the two runs are byte-identical (the determinism
# property the metrics registry guarantees).
#
# Usage: tools/ci_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Leak detection stays off: the simulator's detached coroutine loops
# (client completion polling, manager mailbox server) are deliberately
# still suspended when a process exits, so LSan reports their parked
# frames. Overflows, use-after-free, and UB are the signal here.
export ASAN_OPTIONS=detect_leaks=0:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# --- JSON smoke ---------------------------------------------------------------
smoke() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw \
    --ops 2000 --seed 7 --json "$1" > /dev/null
}
JSON_A="$BUILD_DIR/smoke_a.json"
JSON_B="$BUILD_DIR/smoke_b.json"
smoke "$JSON_A"
smoke "$JSON_B"

if command -v python3 > /dev/null 2>&1; then
  python3 - "$JSON_A" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("bench", "config", "boxplots", "metrics"):
    assert key in doc, f"missing {key}"
assert doc["boxplots"], "no boxplots"
assert doc["metrics"]["counters"], "no counters in metrics snapshot"
print(f"json smoke ok: {len(doc['boxplots'])} boxplots, "
      f"{len(doc['metrics']['counters'])} counters")
EOF
else
  # No python3: at least require the expected top-level keys.
  grep -q '"bench"' "$JSON_A" && grep -q '"metrics"' "$JSON_A"
  echo "json smoke ok (python3 unavailable; key check only)"
fi

cmp "$JSON_A" "$JSON_B"
echo "determinism ok: identical seeds produced byte-identical documents"
echo "ci_asan: all green"
