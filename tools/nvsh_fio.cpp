// nvsh_fio: command-line workload runner, the simulator's analog of the
// paper's measurement tool (fio 3.28). Builds one of the four Figure 9
// scenarios (or variants), runs a synthetic workload, and prints a summary.
// With --json it also writes the machine-readable bench document
// ({bench, config, boxplots[], metrics{}}; "-" = stdout) with latency
// boxplots and a full obs::Registry metrics snapshot.
//
//   nvsh_fio --scenario ours-remote --rw randread --bs 4096 --qd 1 --ops 20000
//   nvsh_fio --scenario nvmeof-remote --rw randwrite --runtime-ms 50 --qd 8 --json -
//   nvsh_fio --scenario ours-remote --sq-placement host --data-path iommu --verify
//   nvsh_fio --faults "seed=7;ntb_link_down:host=1,at=1ms,for=300us" --ops 5000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.hpp"
#include "fault/fault.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

struct Options {
  std::string scenario = "ours-remote";
  std::string substrate = "ntb";
  std::string rw = "randread";
  std::uint32_t bs = 4096;
  std::uint32_t qd = 1;
  std::uint32_t channels = 1;
  std::uint64_t ops = 10'000;
  std::uint64_t runtime_ms = 0;
  std::uint64_t region_blocks = 0;
  std::uint64_t seed = 2024;
  std::string sq_placement = "device";
  std::string data_path = "bounce";
  bool verify = false;
  bool integrity = false;  ///< end-to-end PI / data-digest pipeline (MODEL.md §7)
  std::string qos_class;   ///< urgent | high | medium | low; non-empty enables WRR
  std::uint64_t qos_iops = 0;  ///< requested IOPS budget (0 = class default)
  std::string json_path;  ///< empty = no JSON document; "-" = stdout
  std::string faults;     ///< fault plan DSL (docs/faults.md); empty = no chaos
  std::uint32_t standbys = 0;  ///< hot-standby managers (ours-remote; MODEL.md §10)
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --scenario S      ours-remote | ours-local | linux-local | nvmeof-remote\n"
      "                    (default: ours-remote)\n"
      "  --substrate S     ntb | cxl: interconnect behind the scenario — the paper's\n"
      "                    PCIe/NTB fabric or the CXL pooled-memory substrate\n"
      "                    (default: ntb)\n"
      "  --rw MODE         randread | randwrite | randrw | seqread | seqwrite | randtrim\n"
      "  --bs BYTES        request size (default 4096)\n"
      "  --qd N            queue depth per channel (default 1)\n"
      "  --channels N      I/O channels (queue pairs) per attachment, ours-* and\n"
      "                    nvmeof scenarios (default 1; max 16)\n"
      "  --ops N           number of requests (default 10000; 0 with --runtime-ms)\n"
      "  --runtime-ms MS   run for simulated time instead of an op count\n"
      "  --region-blocks N working-set size in device blocks (default: 1 GiB worth;\n"
      "                    small regions make --verify reads hit written data)\n"
      "  --seed N          workload seed (default 2024)\n"
      "  --sq-placement P  device | host (ours-* scenarios; Fig. 8 knob)\n"
      "  --data-path P     bounce | iommu (ours-* scenarios; Section V knob)\n"
      "  --verify          check read data against this run's writes\n"
      "  --integrity       end-to-end data integrity: PI-formatted namespace,\n"
      "                    client PRACT/PRCHK + shadow-tuple verify, manager\n"
      "                    background scrub, NVMe-oF data digests\n"
      "  --qos-class C     urgent | high | medium | low: request this priority\n"
      "                    class at attach and enable WRR arbitration on the\n"
      "                    manager (ours-* scenarios; docs/MODEL.md §9)\n"
      "  --qos-iops N      request an IOPS budget with the grant; the granted\n"
      "                    (possibly clamped) value arms the client's pacer\n"
      "  --json PATH       write the bench document (boxplots + metrics snapshot)\n"
      "                    to PATH; \"-\" = stdout\n"
      "  --faults PLAN     deterministic fault-injection plan (docs/faults.md), e.g.\n"
      "                    \"seed=7;ntb_link_down:host=1,at=1ms,for=300us\"; also\n"
      "                    enables the drivers' recovery machinery (timeouts,\n"
      "                    retries, heartbeats, watchdogs)\n"
      "  --standbys N      start N hot-standby managers on extra hosts watching the\n"
      "                    active manager's lease (ours-remote only; enables epoch\n"
      "                    leases and client admin-path retry, MODEL.md §10). Pair\n"
      "                    with --faults \"host_crash:host=0,at=...\" to exercise\n"
      "                    takeover; the takeover count lands in --json\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--scenario")) {
      opt.scenario = need_value(i);
    } else if (!std::strcmp(arg, "--substrate")) {
      opt.substrate = need_value(i);
      if (!fabric::parse_substrate(opt.substrate)) {
        std::fprintf(stderr, "unknown substrate: %s\n", opt.substrate.c_str());
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--rw")) {
      opt.rw = need_value(i);
    } else if (!std::strcmp(arg, "--bs")) {
      opt.bs = static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 0));
    } else if (!std::strcmp(arg, "--qd")) {
      opt.qd = static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 0));
    } else if (!std::strcmp(arg, "--channels")) {
      opt.channels = static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 0));
    } else if (!std::strcmp(arg, "--ops")) {
      opt.ops = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--runtime-ms")) {
      opt.runtime_ms = std::strtoull(need_value(i), nullptr, 0);
      opt.ops = 0;
    } else if (!std::strcmp(arg, "--region-blocks")) {
      opt.region_blocks = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--seed")) {
      opt.seed = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--sq-placement")) {
      opt.sq_placement = need_value(i);
    } else if (!std::strcmp(arg, "--data-path")) {
      opt.data_path = need_value(i);
    } else if (!std::strcmp(arg, "--verify")) {
      opt.verify = true;
    } else if (!std::strcmp(arg, "--integrity")) {
      opt.integrity = true;
    } else if (!std::strcmp(arg, "--qos-class")) {
      opt.qos_class = need_value(i);
    } else if (!std::strcmp(arg, "--qos-iops")) {
      opt.qos_iops = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--json")) {
      opt.json_path = need_value(i);
    } else if (!std::strcmp(arg, "--faults")) {
      opt.faults = need_value(i);
    } else if (!std::strcmp(arg, "--standbys")) {
      opt.standbys = static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 0));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage(argv[0]);
    }
  }
  return opt;
}

Scenario build_scenario(const Options& opt) {
  const bool chaos = !opt.faults.empty();

  driver::Client::Config cc;
  cc.queue_depth = std::max(opt.qd, 1u);
  cc.queue_entries = static_cast<std::uint16_t>(std::max(64u, 2 * cc.queue_depth));
  cc.channels = opt.channels;
  if (opt.sq_placement == "host") {
    cc.sq_placement = driver::Client::SqPlacement::host_side;
  } else if (opt.sq_placement != "device") {
    std::fprintf(stderr, "bad --sq-placement\n");
    std::exit(2);
  }
  if (opt.data_path == "iommu") {
    cc.data_path = driver::Client::DataPath::iommu;
  } else if (opt.data_path != "bounce") {
    std::fprintf(stderr, "bad --data-path\n");
    std::exit(2);
  }

  driver::Manager::Config mc;
  if (!opt.qos_class.empty() || opt.qos_iops != 0) {
    if (opt.qos_class.empty() || opt.qos_class == "urgent") {
      cc.qos_class = nvme::SqPriority::urgent;
    } else if (opt.qos_class == "high") {
      cc.qos_class = nvme::SqPriority::high;
    } else if (opt.qos_class == "medium") {
      cc.qos_class = nvme::SqPriority::medium;
    } else if (opt.qos_class == "low") {
      cc.qos_class = nvme::SqPriority::low;
    } else {
      std::fprintf(stderr, "bad --qos-class\n");
      std::exit(2);
    }
    cc.qos_iops = static_cast<std::uint32_t>(opt.qos_iops);
    mc.enable_wrr = true;
  }
  nvmeof::Initiator::Config ic;
  ic.channels = opt.channels;
  nvmeof::Target::Config tc;
  if (opt.integrity) {
    cc.pi_verify = true;
    mc.scrub_interval_ns = 200'000;  // background scrub rides along with the workload
    ic.data_digest = true;
    tc.data_digest = true;
  }
  if (chaos) {
    // Recovery knobs are all off by default (fault-free runs must execute
    // the exact seed instruction stream); a fault plan turns them on.
    cc.cmd_timeout_ns = 2'000'000;     // 2 ms per-command deadline
    cc.cmd_retry_limit = 4;
    cc.retry_backoff_ns = 100'000;
    cc.heartbeat_interval_ns = 500'000;
    mc.client_heartbeat_timeout_ns = 2'000'000;
    mc.csts_poll_interval_ns = 100'000;
    ic.capsule_timeout_ns = 2'000'000;
    ic.capsule_retry_limit = 4;
  }
  if (opt.standbys > 0) {
    if (opt.scenario != "ours-remote") {
      std::fprintf(stderr, "--standbys requires --scenario ours-remote\n");
      std::exit(2);
    }
    // Hot-standby takeover (MODEL.md §10): the active manager publishes an
    // epoch lease and clients ride a takeover out with mailbox retries.
    mc.lease_duration_ns = 1'000'000;
    mc.client_heartbeat_timeout_ns = 4'000'000;
    cc.mailbox_timeout_ns = 1'000'000;
    cc.mailbox_retry_limit = 12;
    cc.mailbox_retry_backoff_ns = 100'000;
    cc.heartbeat_interval_ns = 300'000;
  }

  auto testbed = [&](std::uint32_t hosts) {
    workload::TestbedConfig cfg = default_bench_testbed(hosts);
    cfg.nvme.pi_enabled = opt.integrity;  // "format with metadata"
    return cfg;
  };
  if (opt.scenario == "ours-remote") {
    Scenario s = make_ours_remote(cc, mc, testbed(2 + opt.standbys));
    if (opt.standbys > 0) add_standbys(s, opt.standbys, mc);
    return s;
  }
  if (opt.scenario == "ours-local") return make_ours_local(cc, mc, testbed(1));
  if (opt.scenario == "linux-local") return make_linux_local(testbed(1));
  if (opt.scenario == "nvmeof-remote") return make_nvmeof_remote(ic, testbed(2), tc);
  std::fprintf(stderr, "bad --scenario\n");
  std::exit(2);
}

workload::JobSpec build_spec(const Options& opt) {
  workload::JobSpec spec;
  if (opt.rw == "randread") {
    spec.pattern = workload::JobSpec::Pattern::randread;
  } else if (opt.rw == "randwrite") {
    spec.pattern = workload::JobSpec::Pattern::randwrite;
  } else if (opt.rw == "randrw") {
    spec.pattern = workload::JobSpec::Pattern::randrw;
  } else if (opt.rw == "seqread") {
    spec.pattern = workload::JobSpec::Pattern::seqread;
  } else if (opt.rw == "seqwrite") {
    spec.pattern = workload::JobSpec::Pattern::seqwrite;
  } else if (opt.rw == "randtrim") {
    spec.pattern = workload::JobSpec::Pattern::randtrim;
  } else {
    std::fprintf(stderr, "bad --rw\n");
    std::exit(2);
  }
  spec.block_bytes = opt.bs;
  // --qd is per channel; the job keeps every channel's slots busy.
  spec.queue_depth = std::max(opt.qd, 1u) * std::max(opt.channels, 1u);
  spec.ops = opt.ops;
  spec.duration = static_cast<sim::Duration>(opt.runtime_ms) * 1'000'000;
  spec.region_blocks = opt.region_blocks;
  spec.seed = opt.seed;
  spec.verify = opt.verify;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.ops == 0 && opt.runtime_ms == 0) usage(argv[0]);
  bench_substrate() = *fabric::parse_substrate(opt.substrate);

  const bool chaos = !opt.faults.empty();
  if (chaos) {
    // configure() before the scenario is built (drivers register crash
    // handlers at construction only when fault::enabled()).
    auto plan = fault::parse_plan(opt.faults);
    if (!plan) {
      std::fprintf(stderr, "bad --faults plan: %s\n", plan.status().to_string().c_str());
      return 2;
    }
    fault::Injector::global().configure(std::move(*plan));
  }

  Scenario scenario = build_scenario(opt);
  if (chaos) {
    // arm() after bring-up: timed faults (`at=`) are relative to this point,
    // so the chaos schedule never races controller initialization.
    fabric::Substrate& fab = scenario.testbed->substrate();
    fault::Injector::global().arm(
        scenario.testbed->engine(),
        {.set_ntb_link = [&fab](std::uint32_t host, bool up) {
          (void)fab.set_host_link(host, up);
        }});
  }
  const workload::JobResult result = run(scenario, build_spec(opt), /*tolerate_errors=*/chaos);

  std::uint64_t takeovers = 0;
  for (const auto& sb : scenario.standbys) takeovers += sb->stats().takeovers.value();

  const auto& lat = result.total_latency;
  const bool quiet = opt.json_path == "-";  // keep stdout parseable
  if (!quiet) {
    std::printf("%s: %s bs=%u qd=%u\n", opt.scenario.c_str(), opt.rw.c_str(), opt.bs,
                opt.qd);
    std::printf("  ops=%llu errors=%llu verify_failures=%llu\n",
                static_cast<unsigned long long>(result.ops_completed),
                static_cast<unsigned long long>(result.errors),
                static_cast<unsigned long long>(result.verify_failures));
    std::printf("  iops=%.1f (%.2f MiB/s), elapsed %.3f ms simulated\n", result.iops(),
                result.throughput_mib_s(opt.bs), static_cast<double>(result.elapsed) / 1e6);
    std::printf("  latency us: min=%.2f p50=%.2f p99=%.2f max=%.2f mean=%.2f\n",
                ns_to_us(lat.min()), lat.percentile(50) / 1000.0, lat.percentile(99) / 1000.0,
                ns_to_us(lat.max()), lat.mean() / 1000.0);
    if (opt.standbys > 0) {
      std::printf("  standbys=%u takeovers=%llu\n", opt.standbys,
                  static_cast<unsigned long long>(takeovers));
    }
  }
  bool json_ok = true;
  if (!opt.json_path.empty()) {
    std::vector<BoxSummary> boxes;
    if (result.read_latency.count() != 0) {
      boxes.push_back(BoxSummary::from(opt.scenario + "/read", result.read_latency));
    }
    if (result.write_latency.count() != 0) {
      boxes.push_back(BoxSummary::from(opt.scenario + "/write", result.write_latency));
    }
    boxes.push_back(BoxSummary::from(opt.scenario + "/total", result.total_latency));
    BenchConfig config{{"scenario", opt.scenario},
                       {"substrate", opt.substrate},
                       {"rw", opt.rw},
                       {"bs", std::to_string(opt.bs)},
                       {"qd", std::to_string(opt.qd)},
                       {"channels", std::to_string(opt.channels)},
                       {"ops", std::to_string(result.ops_completed)},
                       {"seed", std::to_string(opt.seed)},
                       {"verify", opt.verify ? "1" : "0"},
                       {"integrity", opt.integrity ? "1" : "0"},
                       {"qos_class", opt.qos_class},
                       {"qos_iops", std::to_string(opt.qos_iops)}};
    if (chaos) config.emplace_back("faults", opt.faults);
    if (opt.standbys > 0) {
      config.emplace_back("standbys", std::to_string(opt.standbys));
      config.emplace_back("takeovers", std::to_string(takeovers));
    }
    json_ok = write_bench_json(opt.json_path, bench_document("nvsh_fio", config, boxes));
  }
  if (chaos) fault::Injector::global().disarm();
  return result.errors == 0 && result.verify_failures == 0 && json_ok ? 0 : 1;
}
