#!/usr/bin/env bash
# CI: build with ThreadSanitizer and soak the concurrency-heavy paths. The
# simulator core is a single-threaded event loop, but the workload runner
# (run_job_blocking) and the tests spin real threads around it, so TSan
# guards the boundary: test harness vs. engine, metrics registry
# registration, and the tracer's global state. The soak runs the stress,
# fault, failover, and integrity suites (the tests that exercise recovery
# machinery hardest), then a chaos + corruption nvsh_fio pass so the fault
# injector, PI pipeline, and scrubber all run under the sanitizer.
#
# Usage: tools/ci_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$BUILD_DIR" -j "$(nproc)"

export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1

# Soak the suites that hammer the recovery and integrity machinery
# (gtest case names are capitalized; ctest -R is case-sensitive).
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R 'Stress|Fault|Failover|Takeover|Chaos|Checksums|ProtectionInfo|BlockStorePi|Pi|Determinism|Fuzz|Sweep|Engine|Mux|Sharding'

# Chaos + corruption soak: seeded faults, PI-formatted namespace, client
# verify, and the background scrubber all active in one run. Exit 1 means
# an injected flip surfaced as a visible I/O error (a corrupted CQE status
# is not retryable) — acceptable; anything else is a real failure.
rc=0
"$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
  --ops 3000 --seed 7 --region-blocks 4096 --verify --integrity \
  --faults "seed=5;flip_dma_bits:src=0,dst=1,nth=2000,count=6" > /dev/null || rc=$?
if [ "$rc" -gt 1 ]; then
  echo "corruption soak crashed (exit $rc)" >&2
  exit "$rc"
fi

# Multi-queue engine under TSan: the channel-scaling bench (claim checks
# are assertions), then a 4-channel chaos soak so per-channel recovery and
# drain-to-survivors scheduling run under the sanitizer.
"$BUILD_DIR/bench/fig11_scaling" > /dev/null
"$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
  --channels 4 --ops 2000 --seed 7 \
  --faults "seed=11;drop_posted_write:src=0,dst=1,nth=40,count=2;ntb_link_down:host=1,at=2ms,for=300us;ctrl_error:nth=100" \
  > /dev/null

# QoS under TSan: the fairness bench (claim checks are assertions), then a
# WRR chaos soak with a granted IOPS budget so the token-bucket pacer and
# the retry/recovery machinery interleave under the sanitizer.
"$BUILD_DIR/bench/fig12_fairness" > /dev/null
"$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
  --ops 2000 --seed 7 --qos-class high --qos-iops 50000 \
  --faults "seed=11;drop_posted_write:src=0,dst=1,nth=40,count=2;ntb_link_down:host=1,at=2ms,for=300us;ctrl_error:nth=100" \
  > /dev/null

# Tenant multiplexing under TSan: the tenant bench (claim checks are
# assertions) drives 155 tenants' DRR + QoS coroutines over shared queue
# pairs and 4 sharded controllers; the multi-tenant chaos soak
# (Stress.TenantMuxChaos*) already ran in the ctest pass above.
"$BUILD_DIR/bench/fig13_tenants" > /dev/null

# CXL substrate smoke under TSan: verified workload over the pooled-memory
# substrate, then a CXL port link-flap recovery pass.
"$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --substrate cxl \
  --rw randrw --ops 2000 --seed 7 --region-blocks 4096 --verify > /dev/null
"$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --substrate cxl \
  --rw randrw --ops 2000 --seed 7 \
  --faults "seed=11;ntb_link_down:host=1,at=2ms,for=300us" > /dev/null

# Manager-crash takeover soak under TSan: the active manager is killed
# mid-run with a hot standby watching its lease; the workload is verified
# and nvsh_fio exits nonzero on any I/O error, so a takeover that drops
# in-flight I/O fails the build. Same-seed double run, byte-identical.
TAKEOVER_PLAN="seed=23;host_crash:host=0,at=3ms;delay_posted_write:dst=1,extra=20us,prob=0.02,from=2ms,until=9ms"
takeover_soak() {
  "$BUILD_DIR/tools/nvsh_fio" --scenario ours-remote --rw randrw --qd 4 \
    --channels 2 --runtime-ms 10 --seed 7 --region-blocks 4096 --verify \
    --standbys 1 --faults "$TAKEOVER_PLAN" --json "$1" > /dev/null
}
TAKEOVER_A="$BUILD_DIR/takeover_a.json"
TAKEOVER_B="$BUILD_DIR/takeover_b.json"
takeover_soak "$TAKEOVER_A"
takeover_soak "$TAKEOVER_B"
cmp "$TAKEOVER_A" "$TAKEOVER_B"
grep -q '"takeovers":"1"' "$TAKEOVER_A"

echo "ci_tsan: all green"
