#!/usr/bin/env bash
# CI: wall-clock performance gate for the event core and submission path.
#
# Builds Release, runs bench/nvsh_perf with --json, writes the fresh document
# to BENCH_perf.json in the build dir, and compares wall-clock events/sec per
# mode against the checked-in baseline (BENCH_perf.json at the repo root). A
# mode that regresses by more than the tolerance fails the gate.
#
# Wall-clock numbers are machine-dependent, so the tolerance is generous
# (15%) and the baseline should be refreshed — by copying the build-dir
# document over the repo-root one — whenever the harness or the hardware
# class changes, not on every run. Simulated metrics (sim IOPS, event
# counts) are covered by the determinism checks in ci_asan.sh instead.
#
# Usage: tools/ci_perf.sh [build-dir]   (default: build-perf)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-perf}"
BASELINE="BENCH_perf.json"
TOLERANCE="0.15"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

FRESH="$BUILD_DIR/BENCH_perf.json"
"$BUILD_DIR/bench/nvsh_perf" --json "$FRESH"

if [ ! -f "$BASELINE" ]; then
  echo "ci_perf: no baseline at $BASELINE — copying fresh run as the baseline" >&2
  cp "$FRESH" "$BASELINE"
  exit 0
fi

if ! command -v python3 > /dev/null 2>&1; then
  echo "ci_perf: python3 unavailable; wrote $FRESH, skipping regression gate" >&2
  exit 0
fi

python3 - "$BASELINE" "$FRESH" "$TOLERANCE" <<'EOF'
import json, sys

base = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
tolerance = float(sys.argv[3])

failed = False
for mode in ("engine", "io", "stack"):
    b = base["results"][mode]["events_per_sec"]
    f = fresh["results"][mode]["events_per_sec"]
    ratio = f / b if b else float("inf")
    verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSION"
    print(f"{mode:>6}: baseline {b/1e6:8.2f}M ev/s  fresh {f/1e6:8.2f}M ev/s  "
          f"({ratio:.0%} of baseline) {verdict}")
    if verdict != "ok":
        failed = True

if failed:
    print(f"ci_perf: events/sec fell more than {tolerance:.0%} below baseline",
          file=sys.stderr)
    sys.exit(1)
print("ci_perf: all modes within tolerance")
EOF
