// Figure 13 (beyond the paper): tenant multiplexing + namespace sharding.
//
// The paper's sharing model is one queue pair per borrowing host, which
// caps both the population (31 hosts) and the ceiling (one controller's
// bandwidth). This bench composes the two escape hatches:
//
//   * src/mux: every borrowing host multiplexes many lightweight tenants
//     over its single queue pair — manager-granted CID sub-ranges, DRR
//     fair dequeue, per-tenant QoS token buckets;
//   * block::ShardedDevice: four single-function controllers federated
//     behind one namespace by RAID-0-style LBA striping.
//
// Cluster: 32 hosts, 4 NVMe devices (hosts 0-3), one manager per device,
// and every one of the 31 borrowing hosts attaches one client per device.
// Each tenant owns a CID share on all four of its host's clients and sees
// one ShardedDevice striped over its four TenantDevices. Three phases:
//
//   1. baseline — one tenant per host (31 tenants) runs a fixed read job;
//   2. scale    — five tenants per host (155 tenants) run the same job:
//                 aggregate IOPS must rise and, with identical shares, DRR
//                 must keep the per-tenant p99 spread tight;
//   3. noisy    — on one host, a QD-1 victim shares the pairs with a bully
//                 tenant whose share carries an IOPS cap: the bully pins at
//                 its cap and the victim's p99 stays bounded.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "block/sharded_device.hpp"
#include "mux/mux.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint32_t kHosts = 32;     ///< host 0 also borrows nothing; 1..31 do
constexpr std::uint32_t kDevices = 4;    ///< controllers, installed in hosts 0..3
constexpr std::uint32_t kBorrowers = 31;
constexpr std::uint32_t kTenantsPerHost = 5;  ///< 31 * 5 = 155 tenants
constexpr std::uint16_t kTenantCids = 5;      ///< CID window per share, per client
constexpr std::uint64_t kOpsPerTenant = 100;
constexpr std::uint32_t kTenantQd = 2;
constexpr std::uint32_t kBlockBytes = 4096;

constexpr std::uint32_t kVictimOps = 300;
constexpr std::uint32_t kBullyTenant = 99;
constexpr std::uint16_t kBullyCids = 6;
/// Per-share IOPS cap requested for the bully; its sharded namespace spans
/// four shares, so the aggregate cap is 4x this.
constexpr std::uint32_t kBullyShareIops = 500;
constexpr sim::Duration kBullyDuration = 200_ms;

/// One borrowing host's rig: a client per device, and per tenant a
/// TenantDevice on each client plus the ShardedDevice striped over them.
struct HostRig {
  std::vector<std::unique_ptr<driver::Client>> clients;
  std::vector<std::vector<std::unique_ptr<mux::TenantDevice>>> tenant_devs;
  std::vector<std::unique_ptr<block::ShardedDevice>> tenant_ns;
};

workload::JobSpec tenant_job(std::uint32_t host, std::uint32_t tenant) {
  workload::JobSpec spec;
  spec.name = "t" + std::to_string(host) + "." + std::to_string(tenant);
  spec.pattern = workload::JobSpec::Pattern::randread;
  spec.block_bytes = kBlockBytes;
  spec.queue_depth = kTenantQd;
  spec.ops = kOpsPerTenant;
  spec.seed = 0x13u + host * 64ull + tenant;
  return spec;
}

/// Grant tenant `tenant` a share on every one of the host's clients and
/// build its sharded namespace over the resulting TenantDevices.
void add_tenant(workload::Testbed& bed, HostRig& rig, std::uint32_t tenant,
                std::uint16_t cids, std::uint32_t qos_iops) {
  std::vector<std::unique_ptr<mux::TenantDevice>> devs;
  std::vector<block::BlockDevice*> shards;
  for (auto& client : rig.clients) {
    driver::Client::ShareRequest req;
    req.tenant = tenant;
    req.cid_count = cids;
    req.qos_iops = qos_iops;
    auto grant = bed.wait(client->create_share(req));
    if (!grant) die("create_share", grant.status());
    devs.push_back(std::make_unique<mux::TenantDevice>(*client->multiplexer(), *client,
                                                       tenant));
    shards.push_back(devs.back().get());
  }
  rig.tenant_devs.push_back(std::move(devs));
  rig.tenant_ns.push_back(
      std::make_unique<block::ShardedDevice>(bed.engine(), std::move(shards),
                                             block::ShardedDevice::Config{}));
}

struct PhaseResult {
  double aggregate_iops = 0;
  std::vector<double> tenant_p99_us;
  LatencyRecorder all;
};

/// Run the fixed tenant job on tenant index `t` of every borrowing host
/// concurrently (`t < 0`: all tenant indices at once).
PhaseResult run_phase(workload::Testbed& bed, std::vector<HostRig>& rigs, int only_tenant) {
  struct Pending {
    sim::Future<Result<workload::JobResult>> future;
  };
  std::vector<Pending> jobs;
  for (std::uint32_t h = 1; h <= kBorrowers; ++h) {
    HostRig& rig = rigs[h];
    for (std::uint32_t t = 0; t < kTenantsPerHost; ++t) {
      if (only_tenant >= 0 && t != static_cast<std::uint32_t>(only_tenant)) continue;
      jobs.push_back(Pending{workload::run_job(bed.cluster(), *rig.tenant_ns[t], h,
                                               tenant_job(h, t))});
    }
  }
  PhaseResult out;
  for (auto& job : jobs) {
    auto result = bed.wait(std::move(job.future), 120_s);
    if (!result) die("tenant job", result.status());
    if (result->errors != 0) die("tenant job errors", Status(Errc::io_error, "io errors"));
    out.aggregate_iops += result->iops();
    out.tenant_p99_us.push_back(result->read_latency.percentile(99) / 1000.0);
    out.all.merge(result->read_latency);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench_substrate() = substrate_flag(argc, argv);
  print_header("fig13: tenant multiplexing over shared queue pairs + namespace sharding");
  std::printf("%u hosts, %u sharded controllers, %u tenants (%u per borrowing host), "
              "substrate %s\n",
              kHosts, kDevices, kBorrowers * kTenantsPerHost, kTenantsPerHost,
              bench_substrate() == fabric::SubstrateKind::ntb ? "ntb" : "cxl");

  workload::TestbedConfig bed_cfg = default_bench_testbed(kHosts);
  bed_cfg.nvme_devices = kDevices;
  workload::Testbed bed(bed_cfg);

  // One manager per controller, on the device's own host. Distinct segment
  // ids per device: on the CXL substrate every shared segment lives in the
  // one pool address space, so the managers' defaults would collide.
  std::vector<std::unique_ptr<driver::Manager>> managers;
  for (std::uint32_t d = 0; d < kDevices; ++d) {
    driver::Manager::Config mc;
    mc.metadata_segment_id += d;
    mc.private_segment_base += static_cast<sisci::SegmentId>(d) << 8;
    auto mgr = bed.wait(driver::Manager::start(bed.service(), bed.device_host(d),
                                               bed.device_id(d), mc));
    if (!mgr) die("manager start", mgr.status());
    managers.push_back(std::move(*mgr));
  }

  // Every borrowing host attaches one client per device; the per-device
  // segment namespace keeps the four clients' segment ids disjoint.
  std::vector<HostRig> rigs(kBorrowers + 1);
  for (std::uint32_t h = 1; h <= kBorrowers; ++h) {
    for (std::uint32_t d = 0; d < kDevices; ++d) {
      driver::Client::Config cc;
      cc.segment_namespace = d;
      auto client = bed.wait(driver::Client::attach(bed.service(), h, bed.device_id(d), cc));
      if (!client) die("client attach", client.status());
      rigs[h].clients.push_back(std::move(*client));
    }
    for (std::uint32_t t = 0; t < kTenantsPerHost; ++t) {
      add_tenant(bed, rigs[h], t + 1, kTenantCids, /*qos_iops=*/0);
    }
  }

  print_header("phase 1+2: tenant scaling");
  const PhaseResult baseline = run_phase(bed, rigs, /*only_tenant=*/0);
  const PhaseResult scaled = run_phase(bed, rigs, /*only_tenant=*/-1);
  auto p99_spread = [](const PhaseResult& r) {
    std::vector<double> s = r.tenant_p99_us;
    std::sort(s.begin(), s.end());
    return std::pair<double, double>{s[s.size() / 2], s.back()};
  };
  const auto [base_med, base_max] = p99_spread(baseline);
  const auto [scaled_med, scaled_max] = p99_spread(scaled);
  std::printf("%-22s %12s %14s %14s\n", "phase", "tenants", "agg_kiops", "p99 med/max us");
  std::printf("%-22s %12zu %14.1f %8.1f/%.1f\n", "1 tenant/host",
              baseline.tenant_p99_us.size(), baseline.aggregate_iops / 1000.0, base_med,
              base_max);
  std::printf("%-22s %12zu %14.1f %8.1f/%.1f\n", "5 tenants/host",
              scaled.tenant_p99_us.size(), scaled.aggregate_iops / 1000.0, scaled_med,
              scaled_max);

  print_header("phase 3: noisy tenant (host 1)");
  HostRig& noisy_rig = rigs[1];
  workload::JobSpec victim_spec = tenant_job(1, 0);
  victim_spec.name = "victim";
  victim_spec.queue_depth = 1;
  victim_spec.ops = kVictimOps;
  auto victim_solo = bed.wait(
      workload::run_job(bed.cluster(), *noisy_rig.tenant_ns[0], 1, victim_spec), 120_s);
  if (!victim_solo) die("victim solo", victim_solo.status());

  add_tenant(bed, noisy_rig, kBullyTenant, kBullyCids, kBullyShareIops);
  block::ShardedDevice& bully_ns = *noisy_rig.tenant_ns.back();
  workload::JobSpec bully_spec;
  bully_spec.name = "bully";
  bully_spec.pattern = workload::JobSpec::Pattern::randwrite;
  bully_spec.block_bytes = kBlockBytes;
  bully_spec.queue_depth = kBullyCids;
  bully_spec.ops = 0;  // run on a clock so it outlasts the victim
  bully_spec.duration = kBullyDuration;
  bully_spec.seed = 0xb1;
  auto bully_future = workload::run_job(bed.cluster(), bully_ns, 1, bully_spec);
  auto victim_future =
      workload::run_job(bed.cluster(), *noisy_rig.tenant_ns[0], 1, victim_spec);
  auto victim_shared = bed.wait(std::move(victim_future), 120_s);
  if (!victim_shared) die("victim vs bully", victim_shared.status());
  auto bully_result = bed.wait(std::move(bully_future), 120_s);
  if (!bully_result) die("bully job", bully_result.status());

  const double solo_p99 = victim_solo->read_latency.percentile(99) / 1000.0;
  const double shared_p99 = victim_shared->read_latency.percentile(99) / 1000.0;
  const double bully_iops = bully_result->iops();
  const double bully_cap = 4.0 * kBullyShareIops;
  std::printf("victim p99 solo %.1f us, vs bully %.1f us; bully %.0f IOPS (cap %.0f)\n",
              solo_p99, shared_p99, bully_iops, bully_cap);

  // Every staged command must have been dispatched and completed — the DRR
  // scheduler may not strand work on any of the 124 multiplexers.
  std::uint64_t staged = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  for (std::uint32_t h = 1; h <= kBorrowers; ++h) {
    for (auto& client : rigs[h].clients) {
      const auto& ms = client->multiplexer()->stats();
      staged += ms.staged_cmds.value();
      completed += ms.completed_cmds.value();
      aborted += ms.aborted_cmds.value();
    }
  }

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("at least 128 tenants ran over shared queue pairs",
        scaled.tenant_p99_us.size() >= 128);
  check("aggregate IOPS scales with the tenant population",
        scaled.aggregate_iops > baseline.aggregate_iops);
  check("DRR keeps the per-tenant p99 spread tight (max <= 3x median)",
        scaled_max <= 3.0 * scaled_med);
  check("the bully pins at its QoS cap (within burst slack)",
        bully_iops <= 1.35 * bully_cap);
  check("the bully still makes progress under the cap", bully_iops >= 0.4 * bully_cap);
  check("the victim's p99 stays bounded next to the bully (<= 5x solo)",
        shared_p99 <= 5.0 * solo_p99);
  check("no staged command was stranded (staged == completed, none aborted)",
        staged == completed && aborted == 0 && staged > 0);

  if (const char* path = json_flag(argc, argv)) {
    std::vector<BoxSummary> boxes = {
        BoxSummary::from("1-tenant-per-host", baseline.all),
        BoxSummary::from("5-tenants-per-host", scaled.all),
        BoxSummary::from("victim-solo", victim_solo->read_latency),
        BoxSummary::from("victim-vs-bully", victim_shared->read_latency)};
    BenchConfig config{
        {"substrate", bench_substrate() == fabric::SubstrateKind::ntb ? "ntb" : "cxl"},
        {"hosts", std::to_string(kHosts)},
        {"devices", std::to_string(kDevices)},
        {"tenants", std::to_string(kBorrowers * kTenantsPerHost)},
        {"tenant_cids", std::to_string(kTenantCids)},
        {"ops_per_tenant", std::to_string(kOpsPerTenant)},
        {"bully_iops_cap", std::to_string(static_cast<std::uint64_t>(bully_cap))}};
    if (!write_bench_json(path, bench_document("fig13_tenants", config, boxes))) ok = false;
  }

  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
