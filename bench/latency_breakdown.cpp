// Latency decomposition: rebuilds the ours-remote 4 KiB QD=1 read/write
// latency *analytically* from the model parameters — software costs, chip
// path traversals, TLP counts, media time — and cross-checks the sum
// against the simulated median. This is the transparency check that the
// simulator measures what the model says it should: if a code change
// accidentally double-charges a path or drops a component, the analytic
// and measured numbers diverge and this bench fails.
//
// It is also the quantitative version of the paper's Figure 10 discussion:
// it shows exactly *where* the remote microsecond(s) go.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 10'000;

struct Component {
  const char* name;
  double us;
};

void print_components(const char* title, const std::vector<Component>& parts) {
  std::printf("\n%s\n", title);
  double total = 0;
  for (const auto& c : parts) {
    std::printf("  %-46s %8.3f us\n", c.name, c.us);
    total += c.us;
  }
  std::printf("  %-46s %8.3f us\n", "ANALYTIC TOTAL", total);
}

}  // namespace

int main() {
  print_header("latency decomposition: ours-remote, 4 KiB, QD=1");

  Scenario s = make_ours_remote();
  Testbed& tb = *s.testbed;
  pcie::Fabric& fabric = tb.fabric();
  const pcie::LatencyModel& m = fabric.latency_model();
  const driver::CostModel costs = driver::CostModel::distributed_driver();
  const nvme::Controller::ServiceModel& svc = tb.config().nvme.service;

  // Chip-path costs for the three traversals a remote command makes.
  const pcie::ChipId client_rc = fabric.host_rc(1);
  const pcie::ChipId device_rc = fabric.host_rc(0);
  const pcie::ChipId device_chip = fabric.endpoint_chip(tb.nvme_endpoint());
  const auto client_to_device = fabric.topology().path_cost(client_rc, device_chip);
  const auto device_to_dram0 = fabric.topology().path_cost(device_chip, device_rc);
  const auto device_to_client = fabric.topology().path_cost(device_chip, client_rc);

  auto us = [](double ns) { return ns / 1000.0; };

  // READ: submit -> doorbell -> (device-side) SQE fetch -> media -> data
  // posted to the client bounce buffer -> CQE rides behind -> poll ->
  // completion software -> bounce copy to the user buffer.
  std::vector<Component> read_parts{
      {"client submission software", us(costs.submit_ns)},
      {"doorbell CPU store + fence", us(costs.doorbell_ns)},
      {"doorbell traversal (posted, 1 NTB crossing)",
       us(static_cast<double>(m.posted_write_ns(client_to_device.cost_ns, 1, 4)))},
      {"SQE fetch (non-posted, device-side memory)",
       us(static_cast<double>(m.read_ns(device_to_dram0.cost_ns, 0, 64)))},
      {"controller processing + media read",
       us(static_cast<double>(svc.cmd_fixed_ns + svc.read_media_ns))},
      {"4 KiB data DMA to client (posted, 1 crossing)",
       us(static_cast<double>(m.posted_write_ns(device_to_client.cost_ns, 1, 4096)))},
      {"CQE behind the data (serialization gap)",
       us(static_cast<double>(m.tlp_overhead_ns) + 16.0 / m.link_bytes_per_ns)},
      {"completion poll quantization (half interval)",
       us(static_cast<double>(costs.poll_interval_ns) / 2.0)},
      {"client completion software", us(costs.completion_ns)},
      {"bounce copy to user buffer", us(static_cast<double>(costs.memcpy_ns(4096)))},
  };
  print_components("random read decomposition:", read_parts);

  // WRITE: adds the user->bounce copy up front and replaces the posted data
  // DMA with a *non-posted* fetch across the full path — the asymmetry the
  // paper highlights — and the CQE travels alone.
  std::vector<Component> write_parts{
      {"client submission software", us(costs.submit_ns)},
      {"bounce copy from user buffer", us(static_cast<double>(costs.memcpy_ns(4096)))},
      {"doorbell CPU store + fence", us(costs.doorbell_ns)},
      {"doorbell traversal (posted, 1 NTB crossing)",
       us(static_cast<double>(m.posted_write_ns(client_to_device.cost_ns, 1, 4)))},
      {"SQE fetch (non-posted, device-side memory)",
       us(static_cast<double>(m.read_ns(device_to_dram0.cost_ns, 0, 64)))},
      {"4 KiB data fetch (non-posted, 1 crossing!)",
       us(static_cast<double>(m.read_ns(device_to_client.cost_ns, 1, 4096)))},
      {"controller processing + media write",
       us(static_cast<double>(svc.cmd_fixed_ns + svc.write_media_ns))},
      {"CQE to client (posted, 1 crossing)",
       us(static_cast<double>(m.posted_write_ns(device_to_client.cost_ns, 1, 16)))},
      {"completion poll quantization (half interval)",
       us(static_cast<double>(costs.poll_interval_ns) / 2.0)},
      {"client completion software", us(costs.completion_ns)},
  };
  print_components("random write decomposition:", write_parts);

  double read_analytic = 0;
  for (const auto& c : read_parts) read_analytic += c.us;
  double write_analytic = 0;
  for (const auto& c : write_parts) write_analytic += c.us;

  // Measure.
  auto read_result = run(s, fio_qd1(true, kOps));
  auto write_result = run(s, fio_qd1(false, kOps, 4048));
  const double read_measured = read_result.read_latency.percentile(50) / 1000.0;
  const double write_measured = write_result.write_latency.percentile(50) / 1000.0;

  print_header("analytic vs simulated (median)");
  std::printf("  read : analytic %7.2f us | simulated %7.2f us | diff %+5.1f%%\n",
              read_analytic, read_measured,
              (read_measured - read_analytic) / read_analytic * 100.0);
  std::printf("  write: analytic %7.2f us | simulated %7.2f us | diff %+5.1f%%\n",
              write_analytic, write_measured,
              (write_measured - write_analytic) / write_analytic * 100.0);

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("analytic read total within 10% of the simulated median",
        std::abs(read_measured - read_analytic) / read_analytic < 0.10);
  check("analytic write total within 10% of the simulated median",
        std::abs(write_measured - write_analytic) / write_analytic < 0.10);
  check("the write asymmetry is the non-posted data fetch (fetch > posted DMA)",
        write_parts[5].us > read_parts[5].us);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
