// Latency decomposition: measures the ours-remote 4 KiB QD=1 read/write
// latency twice over and cross-checks the two against each other and
// against the boxplot medians.
//
//  1. *Analytically* from the model parameters — software costs, chip path
//     traversals, TLP counts, media time. If a code change double-charges a
//     path or drops a component, analytic and measured diverge.
//  2. *From real spans*: the obs tracer records every request's phase
//     boundaries; client-track spans tile each request exactly, so their
//     durations must sum to the end-to-end latency request by request, and
//     the per-phase means are the measured decomposition.
//
// This is the quantitative version of the paper's Figure 10 discussion: it
// shows exactly *where* the remote microsecond(s) go. With `--trace <path>`
// it exports the span capture as Chrome trace_event JSON (load in Perfetto
// or chrome://tracing); with `--json <path>` it writes the machine-readable
// bench document.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "obs/trace.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 10'000;

struct Component {
  const char* name;
  double us;
};

void print_components(const char* title, const std::vector<Component>& parts) {
  std::printf("\n%s\n", title);
  double total = 0;
  for (const auto& c : parts) {
    std::printf("  %-46s %8.3f us\n", c.name, c.us);
    total += c.us;
  }
  std::printf("  %-46s %8.3f us\n", "ANALYTIC TOTAL", total);
}

/// Per-(kind, track, phase) means over a span capture.
struct SpanBreakdown {
  std::map<std::pair<obs::Track, obs::Phase>, obs::PhaseStat> read;
  std::map<std::pair<obs::Track, obs::Phase>, obs::PhaseStat> write;

  [[nodiscard]] double mean_us(obs::Kind kind, obs::Track track, obs::Phase phase) const {
    const auto& stats = kind == obs::Kind::read ? read : write;
    auto it = stats.find({track, phase});
    return it == stats.end() ? 0.0 : it->second.mean_ns() / 1000.0;
  }
};

SpanBreakdown breakdown_by_kind(const std::vector<obs::SpanRecord>& spans) {
  SpanBreakdown out;
  for (const obs::SpanRecord& span : spans) {
    auto& stats = span.kind == obs::Kind::read ? out.read : out.write;
    auto& stat = stats[{span.track, span.phase}];
    ++stat.count;
    stat.total_ns += static_cast<std::uint64_t>(span.duration());
  }
  return out;
}

void print_span_breakdown(const SpanBreakdown& b, obs::Kind kind) {
  std::printf("\nmeasured from spans: random %s (%s)\n", obs::kind_name(kind),
              "client phases tile the request; device phases overlap cq_wait");
  const std::pair<obs::Track, obs::Phase> rows[] = {
      {obs::Track::client, obs::Phase::submit},
      {obs::Track::client, obs::Phase::bounce_copy},
      {obs::Track::client, obs::Phase::sq_write},
      {obs::Track::client, obs::Phase::doorbell},
      {obs::Track::client, obs::Phase::cq_wait},
      {obs::Track::client, obs::Phase::completion},
      {obs::Track::controller, obs::Phase::ctrl_fetch},
      {obs::Track::controller, obs::Phase::media},
      {obs::Track::controller, obs::Phase::data_dma},
      {obs::Track::controller, obs::Phase::cq_write},
  };
  double client_total = 0;
  for (const auto& [track, phase] : rows) {
    const double us = b.mean_us(kind, track, phase);
    const auto& stats = kind == obs::Kind::read ? b.read : b.write;
    if (stats.find({track, phase}) == stats.end()) continue;
    std::printf("  %-12s %-14s %8.3f us\n", obs::track_name(track), obs::phase_name(phase),
                us);
    if (track == obs::Track::client) client_total += us;
  }
  std::printf("  %-27s %8.3f us\n", "CLIENT PHASE SUM", client_total);
  std::printf("  %-27s %8.3f us\n", "MEAN END-TO-END",
              b.mean_us(kind, obs::Track::client, obs::Phase::request));
}

/// For every trace in `spans`, check that its client-track phase durations
/// sum exactly to its `request` span duration. Returns the number of traces
/// checked; reports the first few offenders.
std::uint64_t check_phase_tiling(const std::vector<obs::SpanRecord>& spans,
                                 std::uint64_t* mismatches) {
  struct PerTrace {
    sim::Duration phase_sum = 0;
    sim::Duration request = -1;
  };
  std::map<std::uint64_t, PerTrace> traces;
  for (const obs::SpanRecord& span : spans) {
    if (span.trace == 0) continue;
    auto& t = traces[span.trace];
    if (span.phase == obs::Phase::request) {
      t.request = span.duration();
    } else if (span.track == obs::Track::client) {
      t.phase_sum += span.duration();
    }
  }
  std::uint64_t checked = 0;
  *mismatches = 0;
  for (const auto& [id, t] : traces) {
    if (t.request < 0) continue;  // trace without a summary span (truncated)
    ++checked;
    if (t.phase_sum != t.request) {
      if (++*mismatches <= 3) {
        std::fprintf(stderr, "  trace %llu: phase sum %lld ns != end-to-end %lld ns\n",
                     static_cast<unsigned long long>(id),
                     static_cast<long long>(t.phase_sum), static_cast<long long>(t.request));
      }
    }
  }
  return checked;
}

}  // namespace

int main(int argc, char** argv) {
  print_header("latency decomposition: ours-remote, 4 KiB, QD=1");

  Scenario s = make_ours_remote();
  Testbed& tb = *s.testbed;
  pcie::Fabric& fabric = tb.fabric();
  const pcie::LatencyModel& m = fabric.latency_model();
  const driver::CostModel costs = driver::CostModel::distributed_driver();
  const nvme::Controller::ServiceModel& svc = tb.config().nvme.service;

  // Chip-path costs for the three traversals a remote command makes.
  const pcie::ChipId client_rc = fabric.host_rc(1);
  const pcie::ChipId device_rc = fabric.host_rc(0);
  const pcie::ChipId device_chip = fabric.endpoint_chip(tb.nvme_endpoint());
  const auto client_to_device = fabric.topology().path_cost(client_rc, device_chip);
  const auto device_to_dram0 = fabric.topology().path_cost(device_chip, device_rc);
  const auto device_to_client = fabric.topology().path_cost(device_chip, client_rc);

  auto us = [](double ns) { return ns / 1000.0; };

  // READ: submit -> doorbell -> (device-side) SQE fetch -> media -> data
  // posted to the client bounce buffer -> CQE rides behind -> poll ->
  // completion software -> bounce copy to the user buffer.
  std::vector<Component> read_parts{
      {"client submission software", us(costs.submit_ns)},
      {"doorbell CPU store + fence", us(costs.doorbell_ns)},
      {"doorbell traversal (posted, 1 NTB crossing)",
       us(static_cast<double>(m.posted_write_ns(client_to_device.cost_ns, 1, 4)))},
      {"SQE fetch (non-posted, device-side memory)",
       us(static_cast<double>(m.read_ns(device_to_dram0.cost_ns, 0, 64)))},
      {"controller processing + media read",
       us(static_cast<double>(svc.cmd_fixed_ns + svc.read_media_ns))},
      {"4 KiB data DMA to client (posted, 1 crossing)",
       us(static_cast<double>(m.posted_write_ns(device_to_client.cost_ns, 1, 4096)))},
      {"CQE behind the data (serialization gap)",
       us(static_cast<double>(m.tlp_overhead_ns) + 16.0 / m.link_bytes_per_ns)},
      {"completion poll quantization (half interval)",
       us(static_cast<double>(costs.poll_interval_ns) / 2.0)},
      {"client completion software", us(costs.completion_ns)},
      {"bounce copy to user buffer", us(static_cast<double>(costs.memcpy_ns(4096)))},
  };
  print_components("random read decomposition:", read_parts);

  // WRITE: adds the user->bounce copy up front and replaces the posted data
  // DMA with a *non-posted* fetch across the full path — the asymmetry the
  // paper highlights — and the CQE travels alone.
  std::vector<Component> write_parts{
      {"client submission software", us(costs.submit_ns)},
      {"bounce copy from user buffer", us(static_cast<double>(costs.memcpy_ns(4096)))},
      {"doorbell CPU store + fence", us(costs.doorbell_ns)},
      {"doorbell traversal (posted, 1 NTB crossing)",
       us(static_cast<double>(m.posted_write_ns(client_to_device.cost_ns, 1, 4)))},
      {"SQE fetch (non-posted, device-side memory)",
       us(static_cast<double>(m.read_ns(device_to_dram0.cost_ns, 0, 64)))},
      {"4 KiB data fetch (non-posted, 1 crossing!)",
       us(static_cast<double>(m.read_ns(device_to_client.cost_ns, 1, 4096)))},
      {"controller processing + media write",
       us(static_cast<double>(svc.cmd_fixed_ns + svc.write_media_ns))},
      {"CQE to client (posted, 1 crossing)",
       us(static_cast<double>(m.posted_write_ns(device_to_client.cost_ns, 1, 16)))},
      {"completion poll quantization (half interval)",
       us(static_cast<double>(costs.poll_interval_ns) / 2.0)},
      {"client completion software", us(costs.completion_ns)},
  };
  print_components("random write decomposition:", write_parts);

  double read_analytic = 0;
  for (const auto& c : read_parts) read_analytic += c.us;
  double write_analytic = 0;
  for (const auto& c : write_parts) write_analytic += c.us;

  // Measure with the tracer on: kOps requests x (7 client + 4 controller)
  // spans x 2 jobs fits without wrapping.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(/*capacity=*/1 << 18);
  auto read_result = run(s, fio_qd1(true, kOps));
  auto write_result = run(s, fio_qd1(false, kOps, 4048));
  tracer.disable();
  const std::vector<obs::SpanRecord> spans = tracer.snapshot();

  const double read_measured = read_result.read_latency.percentile(50) / 1000.0;
  const double write_measured = write_result.write_latency.percentile(50) / 1000.0;

  const SpanBreakdown by_kind = breakdown_by_kind(spans);
  print_span_breakdown(by_kind, obs::Kind::read);
  print_span_breakdown(by_kind, obs::Kind::write);

  print_header("analytic vs simulated (median)");
  std::printf("  read : analytic %7.2f us | simulated %7.2f us | diff %+5.1f%%\n",
              read_analytic, read_measured,
              (read_measured - read_analytic) / read_analytic * 100.0);
  std::printf("  write: analytic %7.2f us | simulated %7.2f us | diff %+5.1f%%\n",
              write_analytic, write_measured,
              (write_measured - write_analytic) / write_analytic * 100.0);

  std::uint64_t tiling_mismatches = 0;
  const std::uint64_t tiling_checked = check_phase_tiling(spans, &tiling_mismatches);

  const double read_span_mean =
      by_kind.mean_us(obs::Kind::read, obs::Track::client, obs::Phase::request);
  const double read_box_mean = read_result.read_latency.mean() / 1000.0;
  const double write_span_mean =
      by_kind.mean_us(obs::Kind::write, obs::Track::client, obs::Phase::request);
  const double write_box_mean = write_result.write_latency.mean() / 1000.0;

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("analytic read total within 10% of the simulated median",
        std::abs(read_measured - read_analytic) / read_analytic < 0.10);
  check("analytic write total within 10% of the simulated median",
        std::abs(write_measured - write_analytic) / write_analytic < 0.10);
  check("the write asymmetry is the non-posted data fetch (fetch > posted DMA)",
        write_parts[5].us > read_parts[5].us);
  check("tracer captured every span (no ring overflow)", tracer.dropped() == 0);
  std::printf("      (%llu traces tiling-checked)\n",
              static_cast<unsigned long long>(tiling_checked));
  check("client phase durations sum exactly to end-to-end latency, every trace",
        tiling_checked == 2 * kOps && tiling_mismatches == 0);
  check("span-derived read mean matches the boxplot mean (<0.1% off)",
        std::abs(read_span_mean - read_box_mean) / read_box_mean < 0.001);
  check("span-derived write mean matches the boxplot mean (<0.1% off)",
        std::abs(write_span_mean - write_box_mean) / write_box_mean < 0.001);
  check("spans see the asymmetry too: write data_dma (fetch) > read data_dma (posted)",
        by_kind.mean_us(obs::Kind::write, obs::Track::controller, obs::Phase::data_dma) >
            by_kind.mean_us(obs::Kind::read, obs::Track::controller, obs::Phase::data_dma));

  if (const char* path = trace_flag(argc, argv)) {
    const std::string trace_json = tracer.chrome_trace_json(/*max_events=*/50'000);
    if (!write_bench_json(path, trace_json)) ok = false;
  }
  if (const char* path = json_flag(argc, argv)) {
    std::vector<BoxSummary> boxes{
        BoxSummary::from("ours-remote randread 4k qd1", read_result.read_latency),
        BoxSummary::from("ours-remote randwrite 4k qd1", write_result.write_latency),
    };
    BenchConfig config{{"scenario", "ours-remote"},
                       {"block_bytes", "4096"},
                       {"queue_depth", "1"},
                       {"ops", std::to_string(kOps)}};
    if (!write_bench_json(path, bench_document("latency_breakdown", config, boxes))) ok = false;
  }

  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
