// Ablation of the Section V data-path design: the static bounce buffer
// (what the paper built) versus dynamic per-request IOMMU mapping (the
// paper's stated future work).
//
//   bounce buffer: one extra memcpy per request (submission path for
//     writes, completion path for reads); DMA descriptors programmed once.
//   IOMMU: no copy, but a map + unmap (page-table writes and IOTLB
//     invalidation) on every request, costs growing with request size.
//
// The crossover is the point of the ablation: copies cost ~bytes/bandwidth,
// mappings cost ~pages * constant.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 6'000;

double median_us(driver::Client::DataPath path, std::uint32_t block_bytes, bool read) {
  driver::Client::Config cc;
  cc.data_path = path;
  Scenario s = make_ours_remote(cc);
  workload::JobSpec spec = fio_qd1(read, kOps);
  spec.block_bytes = block_bytes;
  auto result = run(s, spec);
  const auto& rec = read ? result.read_latency : result.write_latency;
  return rec.percentile(50) / 1000.0;
}

}  // namespace

int main() {
  print_header("bounce buffer vs dynamic IOMMU mapping (remote client, QD=1)");

  const std::vector<std::uint32_t> sizes{4096, 16 * 1024, 64 * 1024, 128 * 1024};
  std::printf("%10s %6s | %12s %12s %10s\n", "block", "op", "bounce_us", "iommu_us", "delta");
  struct Row {
    std::uint32_t size;
    bool read;
    double bounce, iommu;
  };
  std::vector<Row> rows;
  for (std::uint32_t size : sizes) {
    for (bool read : {true, false}) {
      Row r{size, read, median_us(driver::Client::DataPath::bounce_buffer, size, read),
            median_us(driver::Client::DataPath::iommu, size, read)};
      rows.push_back(r);
      std::printf("%9uK %6s | %12.2f %12.2f %+9.2f\n", size / 1024, read ? "read" : "write",
                  r.bounce, r.iommu, r.iommu - r.bounce);
    }
  }

  std::printf("\n(negative delta: the IOMMU path is faster — it skips the bounce copy,\n"
              " whose cost grows with the transfer, while map/unmap cost grows only\n"
              " with the page count)\n");

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  // For large transfers the copy dominates and the IOMMU path must win.
  const Row& big_read = rows[rows.size() - 2];
  const Row& big_write = rows[rows.size() - 1];
  check("IOMMU beats bounce for 128 KiB reads", big_read.iommu < big_read.bounce);
  check("IOMMU beats bounce for 128 KiB writes", big_write.iommu < big_write.bounce);
  // For 4 KiB the two are close: copy ~0.3 us vs map+unmap ~0.5 us.
  check("4 KiB requests: paths within 1.5 us of each other",
        std::abs(rows[0].iommu - rows[0].bounce) < 1.5);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
