// Shared scenario builders for the benchmark harness: the four Figure 9
// configurations (stock-Linux local, NVMe-oF remote, our driver local, our
// driver remote) plus result-printing helpers.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/client.hpp"
#include "driver/local_driver.hpp"
#include "driver/manager.hpp"
#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "obs/metrics.hpp"
#include "workload/fio.hpp"
#include "workload/testbed.hpp"

namespace nvmeshare::bench {

using workload::Testbed;
using workload::TestbedConfig;

/// A ready-to-measure scenario: a testbed plus a block device and the node
/// the workload should run on. Owns everything via keep-alives.
struct Scenario {
  std::string name;
  std::unique_ptr<Testbed> testbed;
  block::BlockDevice* device = nullptr;
  sisci::NodeId workload_node = 0;

  // keep-alives (whichever the scenario uses)
  std::unique_ptr<driver::Manager> manager;
  std::unique_ptr<driver::Client> client;
  std::unique_ptr<driver::LocalDriver> local;
  std::unique_ptr<nvmeof::Target> target;
  std::unique_ptr<nvmeof::Initiator> initiator;
  std::vector<std::unique_ptr<driver::Manager>> standbys;
};

/// Process-wide substrate selection for the scenario builders below. Set it
/// once from `--substrate` before building scenarios; every
/// default_bench_testbed() call then picks it up.
inline fabric::SubstrateKind& bench_substrate() {
  static fabric::SubstrateKind kind = fabric::SubstrateKind::ntb;
  return kind;
}

inline TestbedConfig default_bench_testbed(std::uint32_t hosts) {
  TestbedConfig cfg;
  cfg.hosts = hosts;
  cfg.substrate = bench_substrate();
  return cfg;
}

[[noreturn]] inline void die(const std::string& what, const Status& st) {
  std::fprintf(stderr, "FATAL: %s: %s\n", what.c_str(), st.to_string().c_str());
  std::exit(1);
}

/// Figure 9a left half: stock Linux NVMe driver on the device's host.
inline Scenario make_linux_local(TestbedConfig cfg = default_bench_testbed(1)) {
  Scenario s;
  s.name = "linux-local";
  cfg.hosts = 1;
  s.testbed = std::make_unique<Testbed>(cfg);
  auto drv = s.testbed->wait(driver::LocalDriver::start(
      s.testbed->cluster(), s.testbed->nvme_endpoint(), &s.testbed->irq(0), {}));
  if (!drv) die("linux-local bring-up", drv.status());
  s.local = std::move(*drv);
  s.device = s.local.get();
  s.workload_node = 0;
  return s;
}

/// Figure 9a right half: NVMe-oF over RDMA, SPDK-style target on the device
/// host, kernel initiator on a second host.
inline Scenario make_nvmeof_remote(nvmeof::Initiator::Config init_cfg = {},
                                   TestbedConfig cfg = default_bench_testbed(2),
                                   nvmeof::Target::Config target_cfg = {}) {
  Scenario s;
  s.name = "nvmeof-remote";
  if (cfg.hosts < 2) cfg.hosts = 2;
  s.testbed = std::make_unique<Testbed>(cfg);
  auto target = s.testbed->wait(nvmeof::Target::start(
      s.testbed->cluster(), s.testbed->nvme_endpoint(), s.testbed->network(), target_cfg));
  if (!target) die("nvmeof target bring-up", target.status());
  s.target = std::move(*target);
  auto initiator = s.testbed->wait(nvmeof::Initiator::connect(
      s.testbed->cluster(), s.testbed->network(), *s.target, 1, init_cfg));
  if (!initiator) die("nvmeof initiator connect", initiator.status());
  s.initiator = std::move(*initiator);
  s.device = s.initiator.get();
  s.workload_node = 1;
  return s;
}

/// Figure 9b left half: our distributed driver, manager and client on the
/// device's own host.
inline Scenario make_ours_local(driver::Client::Config client_cfg = {},
                                driver::Manager::Config mgr_cfg = {},
                                TestbedConfig cfg = default_bench_testbed(1)) {
  Scenario s;
  s.name = "ours-local";
  cfg.hosts = 1;
  s.testbed = std::make_unique<Testbed>(cfg);
  auto mgr = s.testbed->wait(
      driver::Manager::start(s.testbed->service(), 0, s.testbed->device_id(), mgr_cfg));
  if (!mgr) die("ours-local manager", mgr.status());
  s.manager = std::move(*mgr);
  auto client = s.testbed->wait(
      driver::Client::attach(s.testbed->service(), 0, s.testbed->device_id(), client_cfg));
  if (!client) die("ours-local client", client.status());
  s.client = std::move(*client);
  s.device = s.client.get();
  s.workload_node = 0;
  return s;
}

/// Figure 9b right half: our distributed driver with the client on a remote
/// host reached through Dolphin-style NTB adapters and a cluster switch.
inline Scenario make_ours_remote(driver::Client::Config client_cfg = {},
                                 driver::Manager::Config mgr_cfg = {},
                                 TestbedConfig cfg = default_bench_testbed(2)) {
  Scenario s;
  s.name = "ours-remote";
  if (cfg.hosts < 2) cfg.hosts = 2;
  s.testbed = std::make_unique<Testbed>(cfg);
  auto mgr = s.testbed->wait(
      driver::Manager::start(s.testbed->service(), 0, s.testbed->device_id(), mgr_cfg));
  if (!mgr) die("ours-remote manager", mgr.status());
  s.manager = std::move(*mgr);
  auto client = s.testbed->wait(
      driver::Client::attach(s.testbed->service(), 1, s.testbed->device_id(), client_cfg));
  if (!client) die("ours-remote client", client.status());
  s.client = std::move(*client);
  s.device = s.client.get();
  s.workload_node = 1;
  return s;
}

/// Start `count` hot-standby managers on hosts 2..2+count-1 of an ours-remote
/// scenario. The active manager must publish leases (mgr_cfg.lease_duration_ns
/// > 0) and the testbed must have 2 + count hosts. Each standby gets distinct
/// segment ids so its metadata segment can coexist with the active manager's.
inline void add_standbys(Scenario& s, std::uint32_t count, driver::Manager::Config mgr_cfg) {
  for (std::uint32_t i = 0; i < count; ++i) {
    driver::Manager::Config sc = mgr_cfg;
    sc.metadata_segment_id = 0x4d455442 + i;  // "METB", "METC", ...
    sc.private_segment_base = 0x4e000000 + (static_cast<sisci::SegmentId>(i) << 8);
    auto sb = s.testbed->wait(driver::Manager::start_standby(
        s.testbed->service(), static_cast<sisci::NodeId>(2 + i), s.testbed->device_id(), sc));
    if (!sb) die("standby manager bring-up", sb.status());
    s.standbys.push_back(std::move(*sb));
  }
}

/// Run one FIO-style job on a scenario and return the result. With
/// `tolerate_errors` (fault-injection runs), I/O errors are reported in the
/// result instead of aborting the process.
inline workload::JobResult run(Scenario& s, workload::JobSpec spec,
                               bool tolerate_errors = false) {
  spec.name = s.name;
  auto result = workload::run_job_blocking(s.testbed->cluster(), *s.device, s.workload_node,
                                           spec);
  if (!result) die("job on " + s.name, result.status());
  if (!tolerate_errors && result->errors != 0) {
    std::fprintf(stderr, "FATAL: %s completed with %llu I/O errors\n", s.name.c_str(),
                 static_cast<unsigned long long>(result->errors));
    std::exit(1);
  }
  return std::move(*result);
}

/// The paper's workload: 4 KiB random read or write at queue depth 1.
inline workload::JobSpec fio_qd1(bool read, std::uint64_t ops, std::uint64_t seed = 2024) {
  workload::JobSpec spec;
  spec.pattern =
      read ? workload::JobSpec::Pattern::randread : workload::JobSpec::Pattern::randwrite;
  spec.block_bytes = 4096;
  spec.queue_depth = 1;
  spec.ops = ops;
  spec.seed = seed;
  return spec;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// --- machine-readable output ---------------------------------------------------
//
// Every bench (and tools/nvsh_fio) can emit one JSON document of the shape
//   {"bench": "...", "config": {...}, "boxplots": [...], "metrics": {...}}
// where `metrics` is the global obs::Registry snapshot. Formatting is fixed
// so identical seeds produce byte-identical documents.

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void append_box_json(std::string& out, const BoxSummary& box) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"label\":\"%s\",\"count\":%zu,\"min_us\":%.3f,\"p25_us\":%.3f,"
                "\"p50_us\":%.3f,\"p75_us\":%.3f,\"p99_us\":%.3f,\"max_us\":%.3f,"
                "\"mean_us\":%.3f,\"stddev_us\":%.3f}",
                json_escape(box.label).c_str(), box.count, box.min_us, box.p25_us, box.p50_us,
                box.p75_us, box.p99_us, box.max_us, box.mean_us, box.stddev_us);
  out += buf;
}

/// Bench config rendered as a flat string->string object.
using BenchConfig = std::vector<std::pair<std::string, std::string>>;

inline std::string bench_document(const std::string& bench, const BenchConfig& config,
                                  const std::vector<BoxSummary>& boxes) {
  std::string out = "{\"bench\":\"" + json_escape(bench) + "\",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(key) + "\":\"" + json_escape(value) + '"';
  }
  out += "},\"boxplots\":[";
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (i != 0) out += ',';
    append_box_json(out, boxes[i]);
  }
  out += "],\"metrics\":";
  out += obs::Registry::global().to_json();
  out += "}\n";
  return out;
}

/// Write `doc` to `path` ("-" = stdout). Returns false (with a message on
/// stderr) if the file cannot be written.
inline bool write_bench_json(const std::string& path, const std::string& doc) {
  if (path == "-") {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Value of `--json <path>` (or nullptr when absent) from a raw argv.
inline const char* json_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return nullptr;
}

/// Value of `--trace <path>` (or nullptr when absent) from a raw argv.
inline const char* trace_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") return argv[i + 1];
  }
  return nullptr;
}

/// Value of `--substrate {ntb,cxl}` from a raw argv (default ntb). Exits with
/// a usage message on an unknown substrate name.
inline fabric::SubstrateKind substrate_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--substrate") {
      auto kind = fabric::parse_substrate(argv[i + 1]);
      if (!kind) {
        std::fprintf(stderr, "unknown substrate '%s' (expected ntb or cxl)\n", argv[i + 1]);
        std::exit(2);
      }
      return *kind;
    }
  }
  return fabric::SubstrateKind::ntb;
}

}  // namespace nvmeshare::bench
