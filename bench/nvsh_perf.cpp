// nvsh_perf: minimal-overhead speed harness for the simulator itself — the
// SPDK-`perf` analog of tools/nvsh_fio. Where nvsh_fio measures *simulated*
// latency with fio-style flexibility, nvsh_perf measures how fast the
// simulator *runs*: wall-clock events per second through sim::Engine,
// simulated IOPS through block::IoEngine, and timestamp-counter cycles per
// simulated I/O. Three workloads, least to most stack:
//
//   engine  a self-rescheduling event storm straight on sim::Engine —
//           pure event-core throughput (schedule + dispatch, no I/O stack)
//   io      a tight acquire/run/release loop over block::IoEngine with an
//           inline null transport — the shared submission core in isolation
//   stack   the full ours-remote scenario (fabric, NVMe controller, bounce
//           path) driven by the fio workload generator — end-to-end
//
// With --json the machine-readable document ({bench, config, results{},
// metrics{}}) is written for the BENCH_perf.json perf-trend file that
// tools/ci_perf.sh regression-checks PR-over-PR. Simulated metrics are
// deterministic per seed; wall-clock metrics are machine-dependent by
// nature. See docs/performance.md for the methodology.
//
//   nvsh_perf                          # all three modes, human summary
//   nvsh_perf --mode engine --events 4000000
//   nvsh_perf --mode io --ops 400000 --qd 32 --channels 4
//   nvsh_perf --json BENCH_perf.json   # the trend document
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

#include "bench_util.hpp"
#include "block/io_engine.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

/// Monotonic timestamp-counter read. On x86-64 this is the TSC (constant
/// rate on anything modern); on aarch64 the generic counter; elsewhere it
/// degrades to nanoseconds, making "cycles" read as ns. The unit only needs
/// to be stable within one run — cycles-per-IO is a ratio of two reads.
std::uint64_t rdcycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Options {
  std::string mode = "all";  ///< engine | io | stack | all
  std::uint64_t events = 2'000'000;  ///< engine mode: events to dispatch
  std::uint64_t ops = 200'000;       ///< io mode: commands to run
  std::uint64_t stack_ops = 20'000;  ///< stack mode: end-to-end requests
  std::uint32_t qd = 32;
  std::uint32_t channels = 4;
  std::uint64_t seed = 2024;
  std::string substrate = "ntb";  ///< stack mode interconnect: ntb | cxl
  std::string json_path;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --mode M        engine | io | stack | all (default: all)\n"
               "  --events N      engine mode: events to dispatch (default 2000000)\n"
               "  --ops N         io mode: commands to run (default 200000)\n"
               "  --stack-ops N   stack mode: end-to-end requests (default 20000)\n"
               "  --qd N          queue depth per channel (default 32)\n"
               "  --channels N    channels / queue pairs (default 4; max 16)\n"
               "  --seed N        workload seed for stack mode (default 2024)\n"
               "  --substrate S   stack mode interconnect: ntb | cxl (default ntb)\n"
               "  --json PATH     write the perf document (\"-\" = stdout)\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--mode")) {
      opt.mode = need_value(i);
    } else if (!std::strcmp(arg, "--events")) {
      opt.events = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--ops")) {
      opt.ops = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--stack-ops")) {
      opt.stack_ops = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--qd")) {
      opt.qd = static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 0));
    } else if (!std::strcmp(arg, "--channels")) {
      opt.channels = static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 0));
    } else if (!std::strcmp(arg, "--seed")) {
      opt.seed = std::strtoull(need_value(i), nullptr, 0);
    } else if (!std::strcmp(arg, "--substrate")) {
      opt.substrate = need_value(i);
      if (!fabric::parse_substrate(opt.substrate)) {
        std::fprintf(stderr, "unknown substrate: %s\n", opt.substrate.c_str());
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--json")) {
      opt.json_path = need_value(i);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage(argv[0]);
    }
  }
  return opt;
}

/// One mode's measurements. Simulated numbers are seed-deterministic;
/// wall/cycle numbers are machine-dependent (the trend CI tracks).
struct ModeResult {
  std::string mode;
  std::uint64_t work_items = 0;   ///< events (engine) or I/Os (io/stack)
  std::uint64_t sim_events = 0;   ///< engine events dispatched
  sim::Duration sim_elapsed = 0;  ///< simulated ns covered
  std::uint64_t wall = 0;         ///< wall-clock ns
  std::uint64_t cycles = 0;       ///< timestamp-counter delta

  [[nodiscard]] double events_per_sec() const {
    return wall > 0 ? static_cast<double>(sim_events) * 1e9 / static_cast<double>(wall)
                    : 0.0;
  }
  [[nodiscard]] double sim_iops() const {
    return sim_elapsed > 0 ? static_cast<double>(work_items) * 1e9 /
                                 static_cast<double>(sim_elapsed)
                           : 0.0;
  }
  [[nodiscard]] double wall_iops() const {
    return wall > 0 ? static_cast<double>(work_items) * 1e9 / static_cast<double>(wall)
                    : 0.0;
  }
  [[nodiscard]] double cycles_per_item() const {
    return work_items > 0 ? static_cast<double>(cycles) / static_cast<double>(work_items)
                          : 0.0;
  }
};

// --- engine mode ---------------------------------------------------------------
//
// A fixed population of self-rescheduling actors, each hopping through a
// cycle of delays picked to look like the real hot path (doorbell stores,
// switch hops, media service) plus a rare long timeout that lands in the
// far-future/overflow tier of whatever queue the engine uses. No
// allocation, no I/O stack: dispatch + reschedule cost only.
ModeResult run_engine_mode(std::uint64_t total_events) {
  ModeResult r;
  r.mode = "engine";
  sim::Engine engine;
  // The delay mix: mostly short hops, some media-scale, an occasional
  // watchdog-scale jump. Actors drift apart, so ties stay rare but real.
  static constexpr sim::Duration kDelays[] = {80, 150, 0, 120, 7200, 130, 1000, 2'000'000};
  constexpr int kActors = 64;
  std::uint64_t remaining = total_events;

  struct Actor {
    sim::Engine* engine;
    std::uint64_t* remaining;
    std::uint32_t phase;
    void operator()() {
      if (*remaining == 0) return;
      --*remaining;
      phase = (phase + 1) & 7;
      engine->after(kDelays[phase], *this);
    }
  };
  for (int a = 0; a < kActors; ++a) {
    engine.after(kDelays[a & 7], Actor{&engine, &remaining,
                                       static_cast<std::uint32_t>(a) & 7});
  }

  const std::uint64_t w0 = wall_ns();
  const std::uint64_t c0 = rdcycles();
  engine.run();
  r.cycles = rdcycles() - c0;
  r.wall = wall_ns() - w0;
  r.sim_events = engine.events_processed();
  r.work_items = r.sim_events;
  r.sim_elapsed = engine.now();
  return r;
}

// --- io mode -------------------------------------------------------------------
//
// The SPDK-perf idea: the thinnest possible loop over the submission core.
// A null transport that completes every command a fixed 100 simulated ns
// after its doorbell, driven by qd*channels workers in a tight
// acquire/run/release loop. Measures IoEngine + sim::Engine, nothing else.
class NullTransport final : public block::IoTransport {
 public:
  NullTransport(sim::Engine& engine, std::uint32_t channels, std::uint16_t token_space)
      : engine_(engine), token_space_(token_space), staged_(channels) {}
  void attach(block::IoEngine* io) { io_ = io; }

  Result<std::uint16_t> issue(std::uint32_t chan, void* cookie) override {
    (void)cookie;
    const auto token = next_token_[chan]++;
    if (next_token_[chan] == token_space_) next_token_[chan] = 0;
    staged_[chan].push_back(token);
    return token;
  }

  Status ring(std::uint32_t chan) override {
    for (const std::uint16_t token : staged_[chan]) {
      engine_.after(100, [this, chan, token]() { (void)io_->complete(chan, token, 0); });
    }
    staged_[chan].clear();
    return Status::ok();
  }

  [[nodiscard]] bool retryable(std::uint16_t) const override { return false; }
  void start_recovery(std::uint32_t chan) override { io_->finish_recovery(chan); }
  [[nodiscard]] std::uint16_t trace_qid(std::uint32_t chan) const override {
    return static_cast<std::uint16_t>(chan + 1);
  }

 private:
  sim::Engine& engine_;
  std::uint16_t token_space_;  ///< cycle within the engine's pending-table cap
  block::IoEngine* io_ = nullptr;
  std::vector<std::vector<std::uint16_t>> staged_;
  std::uint16_t next_token_[block::kMaxEngineChannels] = {};
};

ModeResult run_io_mode(std::uint64_t ops, std::uint32_t qd, std::uint32_t channels) {
  ModeResult r;
  r.mode = "io";
  sim::Engine engine;
  // Token space == the engine's pending-table cap (max(queue_entries,
  // qd*channels)): completions are strict FIFO here, so cycling within the
  // cap never collides with an armed token, and never exceeds the cap the
  // engine now refuses to arm beyond.
  NullTransport transport(engine, channels, static_cast<std::uint16_t>(qd * channels));
  block::IoEngine::Config cfg;
  cfg.backend = "perf";
  cfg.channels = channels;
  cfg.queue_depth = qd;
  auto stop = std::make_shared<bool>(false);
  block::IoEngine io(engine, transport, stop, cfg);
  transport.attach(&io);

  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  struct Worker {
    static sim::Task run(block::IoEngine& io, std::uint64_t ops, std::uint64_t& submitted,
                         std::uint64_t& completed) {
      while (submitted < ops) {
        ++submitted;
        auto grant = co_await io.acquire();
        auto outcome = co_await io.run({grant});
        io.release(grant);
        if (outcome.ok()) ++completed;
      }
    }
  };
  const std::uint32_t workers = qd * channels;
  for (std::uint32_t w = 0; w < workers; ++w) {
    Worker::run(io, ops, submitted, completed);
  }

  const std::uint64_t w0 = wall_ns();
  const std::uint64_t c0 = rdcycles();
  engine.run();
  r.cycles = rdcycles() - c0;
  r.wall = wall_ns() - w0;
  r.sim_events = engine.events_processed();
  r.sim_elapsed = engine.now();
  r.work_items = completed;
  if (completed != ops) {
    std::fprintf(stderr, "FATAL: io mode completed %llu of %llu ops\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(ops));
    std::exit(1);
  }
  return r;
}

// --- stack mode ----------------------------------------------------------------
//
// End-to-end: the paper's ours-remote scenario (client on host 1, manager +
// NVMe on host 0, real NTB fabric and bounce path) under a deep-queue
// random-read job. This is the number that says "the whole simulator runs
// at N IOPS per wall-clock second".
ModeResult run_stack_mode(std::uint64_t ops, std::uint32_t qd, std::uint32_t channels,
                          std::uint64_t seed) {
  ModeResult r;
  r.mode = "stack";
  driver::Client::Config cc;
  cc.channels = channels;
  cc.queue_depth = std::max(qd, 1u);
  cc.queue_entries = static_cast<std::uint16_t>(std::max(64u, 2 * cc.queue_depth));
  Scenario s = make_ours_remote(cc);

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randread;
  spec.block_bytes = 4096;
  spec.queue_depth = std::max(qd, 1u) * std::max(channels, 1u);
  spec.ops = ops;
  spec.seed = seed;

  sim::Engine& engine = s.testbed->engine();
  const std::uint64_t events_before = engine.events_processed();
  const sim::Time sim_before = engine.now();
  const std::uint64_t w0 = wall_ns();
  const std::uint64_t c0 = rdcycles();
  const workload::JobResult result = run(s, spec);
  r.cycles = rdcycles() - c0;
  r.wall = wall_ns() - w0;
  r.sim_events = engine.events_processed() - events_before;
  r.sim_elapsed = engine.now() - sim_before;
  r.work_items = result.ops_completed;
  return r;
}

// --- reporting -----------------------------------------------------------------

void print_result(const ModeResult& r) {
  std::printf("%-7s %10llu items  %12llu events  %8.3f ms wall\n", r.mode.c_str(),
              static_cast<unsigned long long>(r.work_items),
              static_cast<unsigned long long>(r.sim_events),
              static_cast<double>(r.wall) / 1e6);
  std::printf("        events/sec %.3fM  cycles/item %.0f\n", r.events_per_sec() / 1e6,
              r.cycles_per_item());
  if (r.mode != "engine") {
    std::printf("        sim IOPS %.0f  wall IOPS %.0f  (sim %.3f ms)\n", r.sim_iops(),
                r.wall_iops(), static_cast<double>(r.sim_elapsed) / 1e6);
  }
}

void append_result_json(std::string& out, const ModeResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "\"%s\":{\"items\":%llu,\"sim_events\":%llu,\"sim_elapsed_ns\":%lld,"
                "\"wall_ns\":%llu,\"cycles\":%llu,\"events_per_sec\":%.1f,"
                "\"sim_iops\":%.1f,\"wall_iops\":%.1f,\"cycles_per_item\":%.1f}",
                r.mode.c_str(), static_cast<unsigned long long>(r.work_items),
                static_cast<unsigned long long>(r.sim_events),
                static_cast<long long>(r.sim_elapsed),
                static_cast<unsigned long long>(r.wall),
                static_cast<unsigned long long>(r.cycles), r.events_per_sec(),
                r.sim_iops(), r.wall_iops(), r.cycles_per_item());
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const bool all = opt.mode == "all";
  if (!all && opt.mode != "engine" && opt.mode != "io" && opt.mode != "stack") {
    std::fprintf(stderr, "bad --mode\n");
    usage(argv[0]);
  }
  if (opt.channels == 0 || opt.channels > block::kMaxEngineChannels || opt.qd == 0) {
    std::fprintf(stderr, "bad --channels/--qd\n");
    usage(argv[0]);
  }

  bench_substrate() = *fabric::parse_substrate(opt.substrate);

  const bool quiet = opt.json_path == "-";
  std::vector<ModeResult> results;
  if (all || opt.mode == "engine") results.push_back(run_engine_mode(opt.events));
  if (all || opt.mode == "io") results.push_back(run_io_mode(opt.ops, opt.qd, opt.channels));
  if (all || opt.mode == "stack") {
    results.push_back(run_stack_mode(opt.stack_ops, opt.qd, opt.channels, opt.seed));
  }

  if (!quiet) {
    std::printf("nvsh_perf: event-core and submission-path speed (wall-clock)\n");
    for (const auto& r : results) print_result(r);
  }

  if (!opt.json_path.empty()) {
    // Mirror the headline numbers into the registry so the `metrics`
    // snapshot carries them alongside the per-component counters.
    for (const auto& r : results) {
      obs::Gauge(std::string("nvmeshare.sim.") + r.mode + ".events_per_sec")
          .set(r.events_per_sec());
      obs::Gauge(std::string("nvmeshare.sim.") + r.mode + ".cycles_per_item")
          .set(r.cycles_per_item());
    }
    BenchConfig config{{"mode", opt.mode},
                       {"substrate", opt.substrate},
                       {"events", std::to_string(opt.events)},
                       {"ops", std::to_string(opt.ops)},
                       {"stack_ops", std::to_string(opt.stack_ops)},
                       {"qd", std::to_string(opt.qd)},
                       {"channels", std::to_string(opt.channels)},
                       {"seed", std::to_string(opt.seed)}};
    std::string doc = "{\"bench\":\"nvsh_perf\",\"config\":{";
    bool first = true;
    for (const auto& [key, value] : config) {
      if (!first) doc += ',';
      first = false;
      doc += '"' + json_escape(key) + "\":\"" + json_escape(value) + '"';
    }
    doc += "},\"results\":{";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i != 0) doc += ',';
      append_result_json(doc, results[i]);
    }
    doc += "},\"metrics\":";
    doc += obs::Registry::global().to_json();
    doc += "}\n";
    if (!write_bench_json(opt.json_path, doc)) return 1;
  }
  return 0;
}
