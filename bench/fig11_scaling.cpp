// Multi-queue scaling: per-channel queue pairs behind the shared I/O
// engine. Sweeps channel count at a fixed per-channel queue depth for the
// distributed driver (remote client) and the NVMe-oF initiator, both
// running the same block::IoEngine submission core, and shows
//
//   1. IOPS grows monotonically with channels at fixed per-channel depth
//      (more queue pairs = more commands in flight = more device channels
//      busy), until the device itself saturates;
//   2. doorbell coalescing rings less than once per command under
//      concurrency, while the coalescing-off path rings exactly once per
//      command (the seed instruction stream).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 8'000;
constexpr std::uint32_t kPerChannelDepth = 8;

struct Row {
  std::string scenario;
  std::uint32_t channels = 0;
  bool coalesce = false;
  double kiops = 0;
  double p50_us = 0;
  double doorbells_per_cmd = 0;
  BoxSummary box;
};

Row measure_ours(std::uint32_t channels, bool coalesce) {
  driver::Client::Config cc;
  cc.channels = channels;
  cc.queue_depth = kPerChannelDepth;
  cc.queue_entries = 64;
  cc.coalesce_doorbells = coalesce;
  Scenario s = make_ours_remote(cc);
  workload::JobSpec spec = fio_qd1(/*read=*/true, kOps);
  spec.queue_depth = channels * kPerChannelDepth;
  auto result = run(s, spec);

  Row row;
  row.scenario = "ours-remote";
  row.channels = channels;
  row.coalesce = coalesce;
  row.kiops = result.iops() / 1000.0;
  row.p50_us = result.read_latency.percentile(50) / 1000.0;
  row.doorbells_per_cmd =
      static_cast<double>(s.client->io_engine().doorbell_writes()) / static_cast<double>(kOps);
  row.box = BoxSummary::from("ours-remote/ch" + std::to_string(channels) +
                                 (coalesce ? "+coalesce" : ""),
                             result.read_latency);
  return row;
}

Row measure_nvmeof(std::uint32_t channels, bool coalesce) {
  nvmeof::Initiator::Config ic;
  ic.channels = channels;
  ic.queue_depth = kPerChannelDepth;
  ic.coalesce_doorbells = coalesce;
  Scenario s = make_nvmeof_remote(ic);
  workload::JobSpec spec = fio_qd1(/*read=*/true, kOps);
  spec.queue_depth = channels * kPerChannelDepth;
  auto result = run(s, spec);

  Row row;
  row.scenario = "nvmeof-remote";
  row.channels = channels;
  row.coalesce = coalesce;
  row.kiops = result.iops() / 1000.0;
  row.p50_us = result.read_latency.percentile(50) / 1000.0;
  row.doorbells_per_cmd =
      static_cast<double>(s.initiator->io_engine().doorbell_writes()) /
      static_cast<double>(kOps);
  row.box = BoxSummary::from("nvmeof-remote/ch" + std::to_string(channels) +
                                 (coalesce ? "+coalesce" : ""),
                             result.read_latency);
  return row;
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-14s %9s %9s %9s %9s %14s\n", "scenario", "channels", "coalesce", "kiops",
              "p50_us", "doorbells/cmd");
  for (const auto& r : rows) {
    std::printf("%-14s %9u %9s %9.1f %9.2f %14.3f\n", r.scenario.c_str(), r.channels,
                r.coalesce ? "on" : "off", r.kiops, r.p50_us, r.doorbells_per_cmd);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench_substrate() = substrate_flag(argc, argv);
  print_header("multi-queue scaling: channels x fixed per-channel depth (4 KiB randread)");
  std::printf("substrate: %s\n", std::string(fabric::substrate_name(bench_substrate())).c_str());
  std::printf("ops per point: %llu, per-channel depth: %u\n",
              static_cast<unsigned long long>(kOps), kPerChannelDepth);

  std::vector<Row> ours;
  for (std::uint32_t ch : {1u, 2u, 4u}) {
    ours.push_back(measure_ours(ch, /*coalesce=*/true));
  }
  const Row ours_no_coalesce = measure_ours(4, /*coalesce=*/false);

  std::vector<Row> fabric;
  for (std::uint32_t ch : {1u, 2u, 4u}) {
    fabric.push_back(measure_nvmeof(ch, /*coalesce=*/true));
  }

  std::vector<Row> all = ours;
  all.push_back(ours_no_coalesce);
  all.insert(all.end(), fabric.begin(), fabric.end());
  print_header("summary");
  print_rows(all);

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("ours: IOPS increases monotonically 1 -> 2 -> 4 channels",
        ours[1].kiops > ours[0].kiops && ours[2].kiops > ours[1].kiops);
  check("nvmeof: IOPS increases monotonically 1 -> 2 -> 4 channels",
        fabric[1].kiops > fabric[0].kiops && fabric[2].kiops > fabric[1].kiops);
  check("ours: coalescing rings the doorbell less than once per command (4 channels)",
        ours[2].doorbells_per_cmd < 1.0);
  check("ours: without coalescing every command rings exactly once",
        ours_no_coalesce.doorbells_per_cmd > 0.999 &&
            ours_no_coalesce.doorbells_per_cmd < 1.001);
  check("ours: coalescing does not cost median latency at 4 channels (within 25%)",
        ours[2].p50_us < 1.25 * ours_no_coalesce.p50_us);

  if (const char* path = json_flag(argc, argv)) {
    std::vector<BoxSummary> boxes;
    for (const auto& r : all) boxes.push_back(r.box);
    BenchConfig config{{"substrate", std::string(fabric::substrate_name(bench_substrate()))},
                       {"block_bytes", "4096"},
                       {"per_channel_depth", std::to_string(kPerChannelDepth)},
                       {"channels", "1,2,4"},
                       {"ops", std::to_string(kOps)}};
    if (!write_bench_json(path, bench_document("fig11_scaling", config, boxes))) ok = false;
  }

  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
