// Transfer-size sweep at moderate queue depth: bandwidth of the PCIe/NTB
// path vs NVMe-oF as the request size grows from 512 B to 128 KiB. Context
// for the paper's remark that "NVMe-oF using RDMA can achieve bandwidth
// comparable to local performance" — the latency advantage matters at small
// transfers; at large transfers the device's media bandwidth dominates.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 2'500;
constexpr std::uint32_t kQd = 8;

struct Row {
  std::uint32_t bs;
  double ours_mibs, nvmeof_mibs, ours_p50, nvmeof_p50;
};

}  // namespace

int main() {
  print_header("block-size sweep: randread bandwidth, QD=8 (ours-remote vs NVMe-oF)");

  std::vector<Row> rows;
  for (std::uint32_t bs : {512u, 4096u, 16384u, 65536u, 131072u}) {
    Row row{};
    row.bs = bs;
    {
      driver::Client::Config cc;
      cc.queue_depth = kQd;
      Scenario s = make_ours_remote(cc);
      workload::JobSpec spec = fio_qd1(true, kOps);
      spec.block_bytes = bs;
      spec.queue_depth = kQd;
      auto result = run(s, spec);
      row.ours_mibs = result.throughput_mib_s(bs);
      row.ours_p50 = result.read_latency.percentile(50) / 1000.0;
    }
    {
      Scenario s = make_nvmeof_remote();
      workload::JobSpec spec = fio_qd1(true, kOps);
      spec.block_bytes = bs;
      spec.queue_depth = kQd;
      auto result = run(s, spec);
      row.nvmeof_mibs = result.throughput_mib_s(bs);
      row.nvmeof_p50 = result.read_latency.percentile(50) / 1000.0;
    }
    rows.push_back(row);
    std::printf("  bs=%6u: ours %8.0f MiB/s (p50 %7.2f us) | nvmeof %8.0f MiB/s "
                "(p50 %7.2f us)\n",
                bs, row.ours_mibs, row.ours_p50, row.nvmeof_mibs, row.nvmeof_p50);
  }

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("small blocks: PCIe path clearly ahead (latency-dominated)",
        rows[1].ours_mibs > 1.15 * rows[1].nvmeof_mibs);
  check("large blocks: within 25% (media/bandwidth-dominated)",
        rows.back().ours_mibs < 1.25 * rows.back().nvmeof_mibs);
  check("bandwidth grows with block size on both paths",
        rows.back().ours_mibs > 10 * rows[0].ours_mibs &&
            rows.back().nvmeof_mibs > 10 * rows[0].nvmeof_mibs);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
