// Reproduces the Section VI sharing claim: "The P4800X used in our
// experiments supports up to 32 queue pairs (where one pair is reserved for
// the admin queues), and we have confirmed that it can be shared by up to
// 31 hosts simultaneously."
//
// Sweeps the number of simultaneously attached client hosts, runs a
// parallel 4 KiB random-read workload on every client, and finally shows
// that a 32nd client is cleanly rejected when all I/O queue pairs are in
// use.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOpsPerClient = 600;

struct Sweep {
  std::uint32_t clients;
  double aggregate_kiops;
  double median_us;
  double p99_us;
};

}  // namespace

int main() {
  print_header("multi-host scaling: one NVMe controller, N client hosts (4 KiB randread, QD=4)");

  const std::vector<std::uint32_t> counts{1, 2, 4, 8, 16, 24, 31};
  std::vector<Sweep> rows;

  for (std::uint32_t n : counts) {
    TestbedConfig cfg;
    cfg.hosts = n + 1;  // host 0 holds the device and the manager
    Testbed tb(cfg);
    auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}), 60_s);
    if (!manager) die("manager", manager.status());

    std::vector<std::unique_ptr<driver::Client>> clients;
    for (std::uint32_t c = 1; c <= n; ++c) {
      driver::Client::Config cc;
      cc.queue_depth = 8;
      auto client = tb.wait(driver::Client::attach(tb.service(), c, tb.device_id(), cc), 60_s);
      if (!client) die("client attach " + std::to_string(c), client.status());
      clients.push_back(std::move(*client));
    }

    std::vector<sim::Future<Result<workload::JobResult>>> jobs;
    for (std::uint32_t c = 0; c < n; ++c) {
      workload::JobSpec spec;
      spec.pattern = workload::JobSpec::Pattern::randread;
      spec.block_bytes = 4096;
      spec.queue_depth = 4;
      spec.ops = kOpsPerClient;
      spec.seed = 1000 + c;
      jobs.push_back(workload::run_job(tb.cluster(), *clients[c], c + 1, spec));
    }

    LatencyRecorder all;
    double total_iops = 0;
    for (auto& job : jobs) {
      auto result = tb.wait(std::move(job), 600_s);
      if (!result) die("job", result.status());
      if (result->errors != 0) die("job errors", Status(Errc::io_error, "nonzero errors"));
      total_iops += result->iops();
      all.merge(result->read_latency);
    }
    rows.push_back(Sweep{n, total_iops / 1000.0, all.percentile(50) / 1000.0,
                         all.percentile(99) / 1000.0});
    std::printf("  %2u clients: %8.1f kIOPS aggregate, median %6.2f us, p99 %6.2f us\n", n,
                rows.back().aggregate_kiops, rows.back().median_us, rows.back().p99_us);
  }

  print_header("summary");
  std::printf("%8s %16s %12s %12s\n", "clients", "agg_kiops", "median_us", "p99_us");
  for (const auto& r : rows) {
    std::printf("%8u %16.1f %12.2f %12.2f\n", r.clients, r.aggregate_kiops, r.median_us,
                r.p99_us);
  }

  // Claim checks.
  print_header("claim checks");
  bool ok = true;
  const bool scaled = rows.back().aggregate_kiops > 3.0 * rows.front().aggregate_kiops;
  std::printf("  [%s] aggregate throughput scales with client count until the device "
              "saturates\n",
              scaled ? "ok" : "MISMATCH");
  ok &= scaled;

  // All 31 I/O queue pairs in use: the 32nd client must be rejected.
  {
    TestbedConfig cfg;
    cfg.hosts = 33;
    Testbed tb(cfg);
    auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}), 60_s);
    if (!manager) die("manager", manager.status());
    std::vector<std::unique_ptr<driver::Client>> clients;
    for (std::uint32_t c = 1; c <= 31; ++c) {
      driver::Client::Config cc;
      cc.queue_depth = 2;  // keep the footprint small
      auto client = tb.wait(driver::Client::attach(tb.service(), c, tb.device_id(), cc), 60_s);
      if (!client) die("client attach " + std::to_string(c), client.status());
      clients.push_back(std::move(*client));
    }
    const bool all31 = clients.size() == 31;
    std::printf("  [%s] 31 hosts share the controller simultaneously (32 QPs, one "
                "reserved for admin)\n",
                all31 ? "ok" : "MISMATCH");
    ok &= all31;

    driver::Client::Config cc;
    cc.queue_depth = 2;
    auto extra = tb.wait(driver::Client::attach(tb.service(), 32, tb.device_id(), cc), 60_s);
    const bool rejected = !extra.has_value() && extra.error_code() == Errc::resource_exhausted;
    std::printf("  [%s] the 32nd client is rejected: no I/O queue pairs left\n",
                rejected ? "ok" : "MISMATCH");
    ok &= rejected;
  }

  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
