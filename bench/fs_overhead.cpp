// Filesystem-stack overhead: what does nvsfs add on top of the raw block
// device? (The paper's future work asks for "experiments using our driver
// ... using a file system and realistic workloads".) Compares 4 KiB
// appends/reads through nvsfs against raw 4 KiB block writes/reads on the
// same remote client, and shows the cost of the cluster-lock acquisition
// on the metadata path.
#include <cstdio>

#include "bench_util.hpp"
#include "fs/filesystem.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr int kOps = 400;

}  // namespace

int main() {
  print_header("nvsfs overhead on a remote client (4 KiB granularity)");

  Scenario s = make_ours_remote();
  Testbed& tb = *s.testbed;

  // Raw block-device baseline.
  auto raw = run(s, fio_qd1(true, kOps));
  auto raw_write = run(s, fio_qd1(false, kOps));

  fs::FileSystem::Config cfg;
  cfg.fs_blocks = 8192;
  auto fs = tb.wait(fs::FileSystem::format(tb.cluster(), *s.device, s.workload_node, cfg),
                    60_s);
  if (!fs) die("fs format", fs.status());
  auto ino = tb.wait((*fs)->create("bench.dat"), 60_s);
  if (!ino) die("fs create", ino.status());

  // Measure inside the simulation (driving the engine from outside would
  // quantize timestamps to the run_until step).
  LatencyRecorder fs_write, fs_read;
  {
    sim::Promise<bool> done(tb.engine());
    auto future = done.future();
    [](Testbed& testbed, fs::FileSystem& filesystem, std::uint32_t inode,
       LatencyRecorder& writes, LatencyRecorder& reads,
       sim::Promise<bool> finished) -> sim::Task {
      sim::Engine& engine = testbed.engine();
      Rng rng(99);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t offset = (static_cast<std::uint64_t>(i) % 512) * 4096;
        const sim::Time t0 = engine.now();
        auto written = co_await filesystem.write(inode, offset, make_pattern(4096, 1000 + i));
        if (!written) die("fs write", written.status());
        writes.add(engine.now() - t0);
      }
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t offset = rng.uniform(512) * 4096;
        const sim::Time t0 = engine.now();
        auto data = co_await filesystem.read(inode, offset, 4096);
        if (!data) die("fs read", data.status());
        reads.add(engine.now() - t0);
      }
      finished.set(true);
    }(tb, **fs, *ino, fs_write, fs_read, done);
    auto finished = tb.wait_plain(std::move(future), 600_s);
    if (!finished) die("fs measurement", finished.status());
  }

  std::printf("\n%s\n", format_box_header().c_str());
  std::printf("%s\n", format_box_row(BoxSummary::from("raw-block/randread",
                                                      raw.read_latency)).c_str());
  std::printf("%s\n", format_box_row(BoxSummary::from("nvsfs/read", fs_read)).c_str());
  std::printf("%s\n", format_box_row(BoxSummary::from("raw-block/randwrite",
                                                      raw_write.write_latency)).c_str());
  std::printf("%s\n", format_box_row(BoxSummary::from("nvsfs/write", fs_write)).c_str());

  const double read_overhead = fs_read.percentile(50) / raw.read_latency.percentile(50);
  const double write_overhead =
      fs_write.percentile(50) / raw_write.write_latency.percentile(50);
  std::printf("\nmedian stack multiplier: read %.1fx, write %.1fx\n", read_overhead,
              write_overhead);
  std::printf("(reads pay inode lookup + data block = 2 block reads; writes add the\n"
              " cluster-lock handshake, block allocation, and the inode write-back)\n");
  std::printf("lock acquisitions: %llu; blocks allocated: %llu\n",
              static_cast<unsigned long long>((*fs)->stats().lock_acquisitions),
              static_cast<unsigned long long>((*fs)->stats().blocks_allocated));

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("filesystem reads cost ~2 block reads (1.5x..3x raw)",
        read_overhead > 1.5 && read_overhead < 3.5);
  check("filesystem writes pay metadata + locking (2x..8x raw)",
        write_overhead > 2.0 && write_overhead < 9.0);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
