// Ablation of the Figure 8 design choice: where should a remote client's
// submission queue live?
//
//   device-side (paper default): the CPU writes SQEs *through the NTB* into
//     memory next to the controller (posted writes, cheap); the controller
//     fetches commands from local memory.
//   host-side: SQEs are written locally, but the controller's fetch is a
//     non-posted read across the whole NTB path — it pays the round trip.
//
// The completion queue is always client-local (it is polled). The paper
// argues reads "are affected by the number of switch chips in the path",
// which is exactly why the device-side placement wins.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 10'000;

BoxSummary measure(driver::Client::SqPlacement placement, bool read, const char* label) {
  driver::Client::Config cc;
  cc.sq_placement = placement;
  Scenario s = make_ours_remote(cc);
  auto result = run(s, fio_qd1(read, kOps));
  return BoxSummary::from(label, read ? result.read_latency : result.write_latency);
}

}  // namespace

int main() {
  print_header("queue placement ablation (Fig. 8): remote client, 4 KiB, QD=1");

  const BoxSummary dev_r = measure(driver::Client::SqPlacement::device_side, true,
                                   "sq=device-side/randread");
  const BoxSummary host_r = measure(driver::Client::SqPlacement::host_side, true,
                                    "sq=host-side/randread");
  const BoxSummary dev_w = measure(driver::Client::SqPlacement::device_side, false,
                                   "sq=device-side/randwrite");
  const BoxSummary host_w = measure(driver::Client::SqPlacement::host_side, false,
                                    "sq=host-side/randwrite");

  std::printf("\n%s\n", format_box_header().c_str());
  for (const auto& b : {dev_r, host_r, dev_w, host_w}) {
    std::printf("%s\n", format_box_row(b).c_str());
  }

  const double penalty_r = host_r.p50_us - dev_r.p50_us;
  const double penalty_w = host_w.p50_us - dev_w.p50_us;
  std::printf("\nhost-side SQ penalty (median): read %+0.2f us, write %+0.2f us\n", penalty_r,
              penalty_w);
  std::printf("(the controller's SQE fetch becomes a non-posted read across the NTB path:\n"
              " one full round trip of NTB adapters + cluster switch per command)\n");

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("device-side SQ placement is faster for reads", penalty_r > 0.3);
  check("device-side SQ placement is faster for writes", penalty_w > 0.3);
  check("penalty is roughly one NTB-path round trip (0.5..2.5 us)",
        penalty_r > 0.5 && penalty_r < 2.5);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
