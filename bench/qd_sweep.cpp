// Queue-depth sweep: the paper measures at QD=1 "to evaluate the network
// latency rather than disk performance", noting that NVMe-oF "can achieve
// bandwidth comparable to local performance". This bench shows both halves
// of that statement: at QD=1 the PCIe path wins clearly; as queue depth
// grows, both remote paths converge on the device's own throughput limit.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 5'000;

struct Row {
  std::uint32_t qd;
  double ours_kiops, ours_p50;
  double nvmeof_kiops, nvmeof_p50;
};

}  // namespace

int main() {
  print_header("queue-depth sweep: ours-remote vs NVMe-oF-remote (4 KiB randread)");

  std::vector<Row> rows;
  for (std::uint32_t qd : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Row row{};
    row.qd = qd;
    {
      driver::Client::Config cc;
      cc.queue_depth = std::max(qd, 1u);
      cc.queue_entries = 128;
      Scenario s = make_ours_remote(cc);
      workload::JobSpec spec = fio_qd1(true, kOps);
      spec.queue_depth = qd;
      auto result = run(s, spec);
      row.ours_kiops = result.iops() / 1000.0;
      row.ours_p50 = result.read_latency.percentile(50) / 1000.0;
    }
    {
      Scenario s = make_nvmeof_remote();
      workload::JobSpec spec = fio_qd1(true, kOps);
      spec.queue_depth = qd;
      auto result = run(s, spec);
      row.nvmeof_kiops = result.iops() / 1000.0;
      row.nvmeof_p50 = result.read_latency.percentile(50) / 1000.0;
    }
    rows.push_back(row);
    std::printf("  QD=%2u: ours %7.1f kIOPS (p50 %6.2f us) | nvmeof %7.1f kIOPS (p50 %6.2f us)\n",
                qd, row.ours_kiops, row.ours_p50, row.nvmeof_kiops, row.nvmeof_p50);
  }

  print_header("summary");
  std::printf("%4s %12s %10s %14s %12s %8s\n", "qd", "ours_kiops", "ours_p50", "nvmeof_kiops",
              "nvmeof_p50", "speedup");
  for (const auto& r : rows) {
    std::printf("%4u %12.1f %10.2f %14.1f %12.2f %7.2fx\n", r.qd, r.ours_kiops, r.ours_p50,
                r.nvmeof_kiops, r.nvmeof_p50, r.ours_kiops / r.nvmeof_kiops);
  }

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("at QD=1 the PCIe path delivers clearly more IOPS (latency-bound regime)",
        rows.front().ours_kiops > 1.2 * rows.front().nvmeof_kiops);
  check("at QD=32 the two converge within 20% (device-bound regime: \"NVMe-oF can "
        "achieve bandwidth comparable to local\")",
        rows.back().ours_kiops < 1.2 * rows.back().nvmeof_kiops &&
            rows.back().nvmeof_kiops < 1.2 * rows.back().ours_kiops);
  check("ours scales with queue depth", rows.back().ours_kiops > 4 * rows.front().ours_kiops);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
