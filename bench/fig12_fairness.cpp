// Noisy-neighbor fairness: a QD-1 latency-sensitive reader sharing the
// device with a QD-32 bulk writer (Section VI spirit, beyond the paper's
// figures). Three runs on the same 3-host cluster layout:
//
//   1. solo     — the reader alone; its p99 is the no-contention baseline;
//   2. rr       — reader + bully under flat round-robin arbitration, no
//                 budgets: the bully's deep queue of large writes inflates
//                 the reader's tail;
//   3. wrr+qos  — manager enables WRR arbitration (reader high class, bully
//                 low) and the policy table clamps the bully's bandwidth
//                 budget, which arms the bully client's token-bucket pacer.
//
// Claim: under WRR + pacing the victim's p99 stays within 2x its solo p99,
// while flat RR blows through that bound.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kVictimOps = 3'000;
constexpr std::uint32_t kBullyChannels = 4;  ///< queue pairs the bully owns
constexpr std::uint32_t kBullyDepth = 32;    ///< per-channel queue depth
constexpr std::uint32_t kBullyBlockBytes = 128 * 1024;
/// Bytes/s cap the policy table imposes on the bully's (low) class in the
/// wrr+qos run; the grant arms the bully client's token-bucket pacer.
constexpr std::uint64_t kBullyBytesPerSec = 800ull * 1024 * 1024;

struct Row {
  std::string label;
  double victim_p50_us = 0;
  double victim_p99_us = 0;
  double bully_mib_s = 0;
  BoxSummary box;
};

/// One fairness run. `bully` adds the QD-32 writer on host 2; `wrr` turns on
/// weighted arbitration and the bandwidth clamp.
Row measure(const std::string& label, bool bully, bool wrr) {
  driver::Manager::Config mgr_cfg;
  if (wrr) {
    mgr_cfg.enable_wrr = true;
    mgr_cfg.qos_policy.classes[3].max_bytes_per_s =
        static_cast<std::uint32_t>(kBullyBytesPerSec);
  }

  driver::Client::Config victim_cfg;
  victim_cfg.qos_class = nvme::SqPriority::high;

  Scenario s = make_ours_remote(victim_cfg, mgr_cfg, default_bench_testbed(3));

  std::unique_ptr<driver::Client> bully_client;
  if (bully) {
    driver::Client::Config bully_cfg;
    bully_cfg.channels = kBullyChannels;
    bully_cfg.queue_depth = kBullyDepth;
    bully_cfg.qos_class = nvme::SqPriority::low;
    auto attached = s.testbed->wait(driver::Client::attach(
        s.testbed->service(), 2, s.testbed->device_id(), bully_cfg));
    if (!attached) die(label + " bully attach", attached.status());
    bully_client = std::move(*attached);
  }

  workload::JobSpec victim_spec = fio_qd1(/*read=*/true, kVictimOps);
  victim_spec.name = label + "/victim";

  workload::JobSpec bully_spec;
  bully_spec.name = label + "/bully";
  bully_spec.pattern = workload::JobSpec::Pattern::randwrite;
  bully_spec.block_bytes = kBullyBlockBytes;
  bully_spec.queue_depth = kBullyChannels * kBullyDepth;
  bully_spec.ops = 0;  // run on a clock, so it outlasts the victim
  bully_spec.duration = 400_ms;
  bully_spec.seed = 7;

  auto bully_future =
      bully ? workload::run_job(s.testbed->cluster(), *bully_client, 2, bully_spec)
            : sim::Future<Result<workload::JobResult>>();
  auto victim_future =
      workload::run_job(s.testbed->cluster(), *s.device, 1, victim_spec);

  auto victim_result = s.testbed->wait(std::move(victim_future), 30_s);
  if (!victim_result) die(label + " victim job", victim_result.status());

  Row row;
  row.label = label;
  row.victim_p50_us = victim_result->read_latency.percentile(50) / 1000.0;
  row.victim_p99_us = victim_result->read_latency.percentile(99) / 1000.0;
  row.box = BoxSummary::from(label, victim_result->read_latency);
  if (bully) {
    auto bully_result = s.testbed->wait(std::move(bully_future), 30_s);
    if (!bully_result) die(label + " bully job", bully_result.status());
    row.bully_mib_s = bully_result->throughput_mib_s(kBullyBlockBytes);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  print_header("noisy-neighbor fairness: QD1 4 KiB reader vs a multi-queue bulk writer");
  std::printf("victim ops: %llu, bully: %u channels x QD%u, %u KiB writes\n",
              static_cast<unsigned long long>(kVictimOps), kBullyChannels, kBullyDepth,
              kBullyBlockBytes / 1024);

  const Row solo = measure("solo", /*bully=*/false, /*wrr=*/false);
  const Row rr = measure("rr", /*bully=*/true, /*wrr=*/false);
  const Row wrr = measure("wrr+qos", /*bully=*/true, /*wrr=*/true);

  print_header("summary (victim latency)");
  std::printf("%-10s %10s %10s %14s\n", "run", "p50_us", "p99_us", "bully_mib_s");
  for (const Row* r : {&solo, &rr, &wrr}) {
    std::printf("%-10s %10.2f %10.2f %14.1f\n", r->label.c_str(), r->victim_p50_us,
                r->victim_p99_us, r->bully_mib_s);
  }

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("flat RR: the bully inflates the victim's p99 beyond 2x solo",
        rr.victim_p99_us > 2.0 * solo.victim_p99_us);
  check("WRR + pacing: the victim's p99 stays within 2x solo",
        wrr.victim_p99_us <= 2.0 * solo.victim_p99_us);
  check("WRR + pacing beats flat RR on the victim's p99",
        wrr.victim_p99_us < rr.victim_p99_us);
  check("the bully still makes progress under the clamp", wrr.bully_mib_s > 0.0);

  if (const char* path = json_flag(argc, argv)) {
    std::vector<BoxSummary> boxes = {solo.box, rr.box, wrr.box};
    BenchConfig config{{"victim_ops", std::to_string(kVictimOps)},
                       {"victim_block_bytes", "4096"},
                       {"bully_channels", std::to_string(kBullyChannels)},
                       {"bully_depth", std::to_string(kBullyDepth)},
                       {"bully_block_bytes", std::to_string(kBullyBlockBytes)},
                       {"bully_bytes_per_s_cap", std::to_string(kBullyBytesPerSec)}};
    if (!write_bench_json(path, bench_document("fig12_fairness", config, boxes))) ok = false;
  }

  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
