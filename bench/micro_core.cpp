// Google-benchmark microbenchmarks for the hot substrate primitives: the
// event engine, coroutine channels, ring bookkeeping, address resolution,
// and statistics — the pieces every simulated I/O exercises thousands of
// times per second of simulated time.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mem/allocator.hpp"
#include "mem/phys_mem.hpp"
#include "nvme/queue.hpp"
#include "pcie/fabric.hpp"
#include "sim/task.hpp"

namespace {

using namespace nvmeshare;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.after(i, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int count = 0;
    [](sim::Engine& eng, int& out) -> sim::Task {
      for (int i = 0; i < 500; ++i) co_await sim::delay(eng, 10);
      out = 1;
    }(engine, count);
    engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_MailboxPushPop(benchmark::State& state) {
  sim::Engine engine;
  sim::Mailbox<int> box(engine);
  for (auto _ : state) {
    box.push(1);
    benchmark::DoNotOptimize(box.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxPushPop);

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_RngLognormal(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.lognormal(1000.0, 0.05));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngLognormal);

void BM_PercentileOver10k(benchmark::State& state) {
  LatencyRecorder rec;
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) rec.add(static_cast<sim::Duration>(rng.uniform(1'000'000)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.percentile(50));
    benchmark::DoNotOptimize(rec.percentile(99));
  }
}
BENCHMARK(BM_PercentileOver10k);

void BM_AllocatorAllocFree(benchmark::State& state) {
  mem::RangeAllocator alloc(0, 1 * GiB);
  for (auto _ : state) {
    auto a = alloc.alloc(4096, 4096);
    auto b = alloc.alloc(64 * 1024, 4096);
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
    (void)alloc.free(*a);
    (void)alloc.free(*b);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_PhysMemWrite4K(benchmark::State& state) {
  mem::PhysMem mem(64 * MiB);
  Bytes data = make_pattern(4096, 7);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.write(addr, data));
    addr = (addr + 4096) % (32 * MiB);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_PhysMemWrite4K);

void BM_PatternFillCheck4K(benchmark::State& state) {
  Bytes buf(4096);
  for (auto _ : state) {
    fill_pattern(buf, 42);
    benchmark::DoNotOptimize(check_pattern(buf, 42));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_PatternFillCheck4K);

// Fabric fixture: a two-host cluster with NTBs.
struct FabricFixture {
  sim::Engine engine;
  pcie::Fabric fabric{engine};
  pcie::HostId h0, h1;
  pcie::NtbId ntb0;
  std::uint64_t window;

  FabricFixture() {
    h0 = fabric.add_host("h0", 256 * MiB);
    h1 = fabric.add_host("h1", 256 * MiB);
    auto cs = fabric.add_cluster_switch("cs");
    ntb0 = *fabric.add_ntb(h0, 64, 1 * MiB);
    auto ntb1 = *fabric.add_ntb(h1, 64, 1 * MiB);
    (void)fabric.link_chips(fabric.ntb_chip(ntb0), cs);
    (void)fabric.link_chips(fabric.ntb_chip(ntb1), cs);
    (void)fabric.ntb_program(ntb0, 0, h1, 4096);
    window = *fabric.ntb_window_address(ntb0, 0);
  }
};

void BM_FabricResolveLocal(benchmark::State& state) {
  FabricFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.fabric.resolve(f.h0, 0x10000, 4096));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricResolveLocal);

void BM_FabricResolveThroughNtb(benchmark::State& state) {
  FabricFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.fabric.resolve(f.h0, f.window + 128, 4096));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricResolveThroughNtb);

void BM_FabricPostedWrite(benchmark::State& state) {
  FabricFixture f;
  Bytes data(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.fabric.post_write(f.fabric.cpu(f.h0), 0x10000, data));
    if (f.engine.pending_events() > 4096) f.engine.run();
  }
  f.engine.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricPostedWrite);

void BM_TopologyPathCost(benchmark::State& state) {
  FabricFixture f;
  const pcie::ChipId a = f.fabric.host_rc(f.h0);
  const pcie::ChipId b = f.fabric.host_rc(f.h1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.fabric.topology().path_cost(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyPathCost);

void BM_QueuePairPushPoll(benchmark::State& state) {
  // Host-side ring bookkeeping + the posted SQE store into local DRAM.
  FabricFixture f;
  nvme::QueuePair::Config qc;
  qc.qid = 1;
  qc.sq_size = 64;
  qc.cq_size = 64;
  qc.sq_write_addr = 0x100000;
  qc.cq_poll_addr = 0x200000;
  qc.sq_doorbell_addr = 0x300000;  // plain DRAM stand-in
  qc.cq_doorbell_addr = 0x300004;
  qc.cpu = f.fabric.cpu(f.h0);
  std::optional<nvme::QueuePair> qp;
  qp.emplace(f.fabric, qc);
  const auto sqe = nvme::make_flush(0, 1);
  for (auto _ : state) {
    auto cid = qp->push(sqe);
    benchmark::DoNotOptimize(cid);
    benchmark::DoNotOptimize(qp->poll());
    // Reset the ring when it fills (no controller consumes it here).
    if (qp->sq_full()) {
      state.PauseTiming();
      f.engine.run();
      qp.emplace(f.fabric, qc);
      state.ResumeTiming();
    }
  }
  f.engine.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueuePairPushPoll);

}  // namespace

BENCHMARK_MAIN();
