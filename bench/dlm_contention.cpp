// Cluster-lock contention: cost of the Lamport-bakery lock over NTB shared
// memory as the number of contending hosts grows. Each acquisition scans
// every participant's slot with remote reads, so the uncontended cost
// grows linearly with cluster size — the price of a lock that needs no
// atomic RMW across the NTB (PCIe peer access does not reliably provide
// one, which is why this design exists).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "fs/dlm.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr int kAcquiresPerHost = 60;

struct Row {
  std::uint32_t hosts;
  double uncontended_us;  // single host acquiring against an idle field
  double contended_us;    // all hosts hammering the lock
};

Row measure(std::uint32_t hosts) {
  TestbedConfig cfg;
  cfg.hosts = hosts;
  Testbed tb(cfg);

  std::vector<fs::BakeryLock> locks;
  auto first = fs::BakeryLock::create(tb.cluster(), 0, 0xD0, hosts, 0);
  if (!first) die("lock create", first.status());
  locks.push_back(std::move(*first));
  for (std::uint32_t n = 1; n < hosts; ++n) {
    auto lock = fs::BakeryLock::join(tb.cluster(), n, 0, 0xD0, n);
    if (!lock) die("lock join", lock.status());
    locks.push_back(std::move(*lock));
  }

  Row row{hosts, 0, 0};

  // Uncontended: node 0 acquires and releases repeatedly, alone.
  {
    LatencyRecorder lat;
    sim::Promise<bool> done(tb.engine());
    auto fut = done.future();
    [](Testbed& testbed, fs::BakeryLock& lock, LatencyRecorder& rec,
       sim::Promise<bool> finished) -> sim::Task {
      for (int i = 0; i < kAcquiresPerHost; ++i) {
        const sim::Time t0 = testbed.engine().now();
        if (!co_await lock.acquire(1_s)) break;
        rec.add(testbed.engine().now() - t0);
        (void)lock.release();
      }
      finished.set(true);
    }(tb, locks[0], lat, done);
    (void)tb.wait_plain(std::move(fut), 120_s);
    row.uncontended_us = lat.percentile(50) / 1000.0;
  }

  // Contended: every host loops acquire -> 2 us critical section -> release.
  {
    LatencyRecorder lat;
    std::uint32_t alive = hosts;
    sim::Promise<bool> done(tb.engine());
    auto fut = done.future();
    for (std::uint32_t n = 0; n < hosts; ++n) {
      [](Testbed& testbed, fs::BakeryLock& lock, LatencyRecorder& rec, std::uint32_t& left,
         sim::Promise<bool> finished) -> sim::Task {
        for (int i = 0; i < kAcquiresPerHost; ++i) {
          const sim::Time t0 = testbed.engine().now();
          if (!co_await lock.acquire(10_s)) break;
          rec.add(testbed.engine().now() - t0);
          co_await sim::delay(testbed.engine(), 2000);
          (void)lock.release();
        }
        if (--left == 0) finished.set(true);
      }(tb, locks[n], lat, alive, done);
    }
    (void)tb.wait_plain(std::move(fut), 600_s);
    row.contended_us = lat.percentile(50) / 1000.0;
  }
  return row;
}

}  // namespace

int main() {
  print_header("bakery-lock contention over NTB shared memory");
  std::vector<Row> rows;
  for (std::uint32_t hosts : {2u, 4u, 8u, 16u}) {
    rows.push_back(measure(hosts));
    std::printf("  %2u hosts: uncontended p50 %7.2f us | contended p50 %8.2f us\n",
                rows.back().hosts, rows.back().uncontended_us, rows.back().contended_us);
  }

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("uncontended cost grows with cluster size (one slot scan per participant)",
        rows.back().uncontended_us > 1.5 * rows.front().uncontended_us);
  check("uncontended acquisition stays in the tens of microseconds at 16 hosts",
        rows.back().uncontended_us < 100.0);
  check("contention multiplies the cost (waiters spin on remote slots)",
        rows.back().contended_us > 2 * rows.back().uncontended_us);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
