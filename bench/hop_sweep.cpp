// Path-length sweep: Section VI quotes "each PCIe switch chip in the path
// adds between 100 and 150 nanoseconds delay (in one direction) for each
// PCIe transaction". This bench inserts 0..6 transparent switch chips
// between the CPU/root complex and the NVMe device and measures the latency
// growth per chip for QD=1 reads and writes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 6'000;

}  // namespace

int main() {
  print_header("switch-chip path-length sweep (local host, our driver, 4 KiB, QD=1)");

  struct Row {
    std::uint32_t chips;
    double read_p50, write_p50;
  };
  std::vector<Row> rows;
  for (std::uint32_t chips = 0; chips <= 6; ++chips) {
    TestbedConfig cfg;
    cfg.hosts = 1;
    cfg.local_switch_chips = chips;
    Scenario s = make_ours_local({}, {}, cfg);
    auto read_result = run(s, fio_qd1(true, kOps));
    auto write_result = run(s, fio_qd1(false, kOps));
    rows.push_back(Row{chips, read_result.read_latency.percentile(50) / 1000.0,
                       write_result.write_latency.percentile(50) / 1000.0});
    std::printf("  %u extra chips: read median %7.3f us, write median %7.3f us\n", chips,
                rows.back().read_p50, rows.back().write_p50);
  }

  // Linear fit by endpoints: per-chip latency adder.
  const double read_per_chip_ns =
      (rows.back().read_p50 - rows.front().read_p50) / 6.0 * 1000.0;
  const double write_per_chip_ns =
      (rows.back().write_p50 - rows.front().write_p50) / 6.0 * 1000.0;
  std::printf("\nper-chip latency adder: read %.0f ns, write %.0f ns\n", read_per_chip_ns,
              write_per_chip_ns);
  std::printf("(each command crosses the chip several times: doorbell + SQE fetch round\n"
              " trip + data transfer + completion, so the adder is a small multiple of\n"
              " the 100-150 ns one-direction chip latency)\n");

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("latency grows monotonically with path length",
        rows.back().read_p50 > rows.front().read_p50 &&
            rows[3].read_p50 > rows[0].read_p50);
  check("per-chip adder is a small multiple of 100-150 ns (within 200..1200 ns)",
        read_per_chip_ns > 200 && read_per_chip_ns < 1200);
  check("writes pay more per chip than reads (non-posted data fetch)",
        write_per_chip_ns > read_per_chip_ns);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
