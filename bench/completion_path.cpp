// Completion-path ablations around two remarks in the paper:
//
//  1. Section VI: "we also attempted target offloading, but this only
//     appeared to reduce CPU usage and did not affect latency" — we flip
//     the target's hardware_offload knob and show the tiny latency delta.
//  2. Section V/VI: the paper's driver "relies on polling instead of using
//     interrupts". This bench quantifies the interrupt tax by running the
//     stock local driver both ways: MSI-X completion vs CQ polling.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 10'000;

double nvmeof_median_us(bool offload) {
  TestbedConfig cfg = default_bench_testbed(2);
  Scenario s;
  s.name = offload ? "nvmeof-offload" : "nvmeof-software";
  s.testbed = std::make_unique<Testbed>(cfg);
  nvmeof::Target::Config tc;
  tc.hardware_offload = offload;
  auto target = s.testbed->wait(nvmeof::Target::start(
      s.testbed->cluster(), s.testbed->nvme_endpoint(), s.testbed->network(), tc));
  if (!target) die("target", target.status());
  s.target = std::move(*target);
  auto initiator = s.testbed->wait(nvmeof::Initiator::connect(
      s.testbed->cluster(), s.testbed->network(), *s.target, 1, {}));
  if (!initiator) die("initiator", initiator.status());
  s.initiator = std::move(*initiator);
  s.device = s.initiator.get();
  s.workload_node = 1;
  auto result = run(s, fio_qd1(true, kOps));
  return result.read_latency.percentile(50) / 1000.0;
}

double local_median_us(bool use_interrupts) {
  TestbedConfig cfg = default_bench_testbed(1);
  Scenario s;
  s.name = use_interrupts ? "local-msix" : "local-polled";
  s.testbed = std::make_unique<Testbed>(cfg);
  driver::LocalDriver::Config lc;
  lc.use_interrupts = use_interrupts;
  auto drv = s.testbed->wait(driver::LocalDriver::start(
      s.testbed->cluster(), s.testbed->nvme_endpoint(),
      use_interrupts ? &s.testbed->irq(0) : nullptr, lc));
  if (!drv) die("local driver", drv.status());
  s.local = std::move(*drv);
  s.device = s.local.get();
  s.workload_node = 0;
  auto result = run(s, fio_qd1(true, kOps));
  return result.read_latency.percentile(50) / 1000.0;
}

}  // namespace

int main() {
  print_header("completion-path ablations (4 KiB randread, QD=1)");

  const double sw = nvmeof_median_us(false);
  const double hw = nvmeof_median_us(true);
  std::printf("NVMe-oF target:   software %.2f us | hardware offload %.2f us "
              "(saves %.2f us, %.1f%%)\n",
              sw, hw, sw - hw, (sw - hw) / sw * 100.0);

  const double irq = local_median_us(true);
  const double polled = local_median_us(false);
  std::printf("local completion: MSI-X    %.2f us | CQ polling       %.2f us "
              "(polling saves %.2f us)\n",
              irq, polled, irq - polled);

  print_header("claim checks");
  bool ok = true;
  auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", what);
    ok &= cond;
  };
  check("target offloading 'did not affect latency' (saves < 10%)",
        (sw - hw) / sw < 0.10);
  check("offloading still saves a little (it does remove some software)", hw < sw);
  check("polling beats interrupts by roughly the irq-delivery cost (1..3 us)",
        irq - polled > 1.0 && irq - polled < 3.0);
  std::printf("\n%s\n", ok ? "ALL CLAIM CHECKS PASSED" : "SOME CLAIM CHECKS FAILED");
  return ok ? 0 : 1;
}
