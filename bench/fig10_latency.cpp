// Reproduces Figure 10 of the paper: I/O command completion latency for
// 4 KiB random reads and writes at queue depth 1, across four scenarios:
//
//   linux-local    stock Linux NVMe driver, device in the same host
//   nvmeof-remote  NVMe-oF over RDMA (SPDK-style target), second host
//   ours-local     the distributed driver operating the local device
//   ours-remote    the distributed driver from a remote host over PCIe/NTB
//
// The paper reports boxplots (whiskers min..p99) and highlights the
// *minimum* latency deltas: NVMe-oF adds 7.7 us (read) / 7.5 us (write)
// over local access, while the PCIe/NTB path adds only ~1 us (read) /
// ~2 us (write) — the network latency is "almost eliminated".
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nvmeshare;
using namespace nvmeshare::bench;

constexpr std::uint64_t kOps = 15'000;

struct Measured {
  BoxSummary read;
  BoxSummary write;
};

Measured measure(Scenario scenario) {
  auto read_result = run(scenario, fio_qd1(/*read=*/true, kOps));
  auto write_result = run(scenario, fio_qd1(/*read=*/false, kOps, /*seed=*/4048));
  return Measured{
      BoxSummary::from(scenario.name + "/randread", read_result.read_latency),
      BoxSummary::from(scenario.name + "/randwrite", write_result.write_latency),
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench_substrate() = substrate_flag(argc, argv);
  const bool ntb = bench_substrate() == fabric::SubstrateKind::ntb;
  print_header("Figure 10: I/O command completion latency (4 KiB, QD=1)");
  std::printf("substrate: %s\n", std::string(fabric::substrate_name(bench_substrate())).c_str());
  std::printf("ops per box: %llu (paper: 60 s of fio 3.28 per test)\n",
              static_cast<unsigned long long>(kOps));

  Measured linux_local = measure(make_linux_local());
  Measured nvmeof = measure(make_nvmeof_remote());
  Measured ours_local = measure(make_ours_local());
  Measured ours_remote = measure(make_ours_remote());

  const std::vector<BoxSummary> reads{linux_local.read, nvmeof.read, ours_local.read,
                                      ours_remote.read};
  const std::vector<BoxSummary> writes{linux_local.write, nvmeof.write, ours_local.write,
                                       ours_remote.write};

  std::printf("\n%s\n", format_box_header().c_str());
  for (const auto& b : reads) std::printf("%s\n", format_box_row(b).c_str());
  for (const auto& b : writes) std::printf("%s\n", format_box_row(b).c_str());

  std::printf("\nrandom read latency (whiskers min..p99, '=' box p25..p75, '#' median):\n%s",
              render_ascii_boxplot(reads).c_str());
  std::printf("\nrandom write latency:\n%s", render_ascii_boxplot(writes).c_str());

  // The deltas the paper calls out in Section VI.
  const double d_nvmeof_r = nvmeof.read.min_us - linux_local.read.min_us;
  const double d_nvmeof_w = nvmeof.write.min_us - linux_local.write.min_us;
  const double d_ours_r = ours_remote.read.min_us - ours_local.read.min_us;
  const double d_ours_w = ours_remote.write.min_us - ours_local.write.min_us;

  print_header("minimum-latency deltas (remote minus local)");
  std::printf("%-44s %10s %10s\n", "comparison", "measured", "paper");
  std::printf("%-44s %8.2fus %8.2fus\n", "NVMe-oF remote vs linux local, read", d_nvmeof_r,
              7.7);
  std::printf("%-44s %8.2fus %8.2fus\n", "NVMe-oF remote vs linux local, write", d_nvmeof_w,
              7.5);
  std::printf("%-44s %8.2fus %8.2fus\n", "ours remote vs ours local, read", d_ours_r, 1.0);
  std::printf("%-44s %8.2fus %8.2fus\n", "ours remote vs ours local, write", d_ours_w, 2.0);
  if (!ntb) {
    std::printf("(paper columns are the PCIe/NTB numbers; CXL pooled memory has no NTB "
                "hop, so remote deltas shrink further)\n");
  }

  print_header("shape checks (the qualitative claims of Section VI)");
  auto check = [](const char* what, bool ok) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check("our driver has a higher local baseline than the stock driver (naive, "
               "polling, bounce copy)",
               ours_local.read.min_us > linux_local.read.min_us);
  all &= check("NVMe-oF pays several microseconds of network overhead (read)",
               d_nvmeof_r > 4.0);
  all &= check("NVMe-oF pays several microseconds of network overhead (write)",
               d_nvmeof_w > 4.0);
  if (ntb) {
    all &= check("our remote read overhead is ~1 us (within 0.5..2 us)",
                 d_ours_r > 0.5 && d_ours_r < 2.0);
    all &= check("our remote write overhead is ~2 us (within 1..3 us)",
                 d_ours_w > 1.0 && d_ours_w < 3.0);
    all &= check("remote write overhead exceeds remote read overhead (non-posted data "
                 "fetch crosses the NTB twice)",
                 d_ours_w > d_ours_r);
  } else {
    // CXL pooled memory: queues/bounce live in the shared pool, so the
    // remote penalty is just the extra port hops — well under the NTB path
    // and far under the fabric.
    all &= check("CXL remote read overhead stays under 3 us", d_ours_r < 3.0);
    all &= check("CXL remote write overhead stays under 3 us", d_ours_w < 3.0);
    all &= check("CXL remote overhead beats the NVMe-oF fabric (read)",
                 d_ours_r < d_nvmeof_r);
    all &= check("CXL remote overhead beats the NVMe-oF fabric (write)",
                 d_ours_w < d_nvmeof_w);
  }
  all &= check("our remote access beats NVMe-oF remote access (read)",
               ours_remote.read.p50_us < nvmeof.read.p50_us);
  all &= check("our remote access beats NVMe-oF remote access (write)",
               ours_remote.write.p50_us < nvmeof.write.p50_us);
  all &= check("Optane-like consistency: p99 within 2x median everywhere",
               linux_local.read.p99_us < 2 * linux_local.read.p50_us &&
                   ours_remote.read.p99_us < 2 * ours_remote.read.p50_us);

  if (const char* path = json_flag(argc, argv)) {
    std::vector<BoxSummary> boxes = reads;
    boxes.insert(boxes.end(), writes.begin(), writes.end());
    BenchConfig config{{"substrate", std::string(fabric::substrate_name(bench_substrate()))},
                      {"block_bytes", "4096"},
                      {"queue_depth", "1"},
                      {"ops", std::to_string(kOps)}};
    if (!write_bench_json(path, bench_document("fig10_latency", config, boxes))) all = false;
  }

  std::printf("\n%s\n", all ? "ALL SHAPE CHECKS PASSED" : "SOME SHAPE CHECKS FAILED");
  return all ? 0 : 1;
}
