// SmartIO: the paper's host-abstraction service (Section IV).
//
// Runs "on all hosts" conceptually; in the simulator it is one control-plane
// object reachable from every node. It provides:
//  * a cluster-wide device registry: devices get unique DeviceIds and can be
//    discovered from any node regardless of where they are installed;
//  * automatic export of device BARs so any node can map device registers
//    through its NTB ("BAR windows");
//  * exclusive / non-exclusive device acquisition (a manager first locks
//    the device to reset and initialize it, then others attach shared);
//  * "DMA windows": mapping segments on behalf of a device by programming
//    the device-side NTB, returning the device-visible address to use in
//    DMA descriptors (NVMe queue bases and PRPs);
//  * access-pattern-hinted segment allocation, which picks the host whose
//    memory should back a segment (the Figure 8 SQ/CQ placement policy)
//    without the caller knowing the physical topology.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "sisci/sisci.hpp"

namespace nvmeshare::smartio {

using NodeId = sisci::NodeId;
using DeviceId = std::uint64_t;

enum class AcquireMode { exclusive, shared };

/// Expected access pattern of a segment, used to choose which host's memory
/// backs it (Section IV: "hinting rather than actively specifying which
/// host to allocate memory in").
struct AccessHint {
  bool device_reads = false;
  bool device_writes = false;
  bool cpu_reads = false;
  bool cpu_writes = false;

  /// SQ pattern: device fetches entries, CPU only writes them.
  static AccessHint sq() { return {true, false, false, true}; }
  /// CQ pattern: device posts entries, CPU polls them.
  static AccessHint cq() { return {false, true, true, false}; }
  /// Bidirectional data buffer (bounce buffer).
  static AccessHint data() { return {true, true, true, true}; }
};

struct DeviceInfo {
  DeviceId id = 0;
  std::string name;
  NodeId host = 0;  ///< node the device is physically installed in
  fabric::EndpointId endpoint = 0;
};

class Service;

/// CPU mapping of a device BAR ("BAR window"): direct for the device's own
/// host (or over CXL.io peer MMIO), an NTB window for remote NTB nodes.
class BarWindow {
 public:
  BarWindow() = default;
  [[nodiscard]] bool valid() const noexcept { return valid_; }
  /// Address of the BAR in the mapping node's address space.
  [[nodiscard]] std::uint64_t addr() const noexcept { return window_.addr(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

 private:
  friend class DeviceRef;
  fabric::Window window_;
  bool valid_ = false;
  std::uint64_t size_ = 0;
};

/// A segment mapped for a device ("DMA window"): the device-visible address
/// range the device can DMA to/from, however many NTBs sit in between.
class DmaWindow {
 public:
  DmaWindow() = default;
  [[nodiscard]] bool valid() const noexcept { return valid_; }
  /// Address the *device* must use to reach the segment.
  [[nodiscard]] std::uint64_t device_addr() const noexcept { return window_.addr(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

 private:
  friend class DeviceRef;
  fabric::Window window_;
  bool valid_ = false;
  std::uint64_t size_ = 0;
};

/// A borrowed reference to a registered device. Move-only; releases its
/// exclusive/shared claim when destroyed.
class DeviceRef {
 public:
  DeviceRef() = default;
  DeviceRef(DeviceRef&& other) noexcept;
  DeviceRef& operator=(DeviceRef&& other) noexcept;
  DeviceRef(const DeviceRef&) = delete;
  DeviceRef& operator=(const DeviceRef&) = delete;
  ~DeviceRef();

  [[nodiscard]] bool valid() const noexcept { return service_ != nullptr; }
  [[nodiscard]] DeviceId id() const noexcept { return id_; }
  [[nodiscard]] AcquireMode mode() const noexcept { return mode_; }
  [[nodiscard]] Result<DeviceInfo> info() const;

  /// Map BAR `bar` of the device for `node`'s CPU.
  Result<BarWindow> map_bar(NodeId node, int bar) const;

  /// Map a segment for the device: returns the device-visible address.
  /// SmartIO resolves the device-side physical address space "under the
  /// hood" — the caller never sees which host the segment actually lives
  /// in relative to the device.
  Result<DmaWindow> map_for_device(const sisci::RemoteSegment& segment) const;

  /// Downgrade an exclusive claim to shared (manager finishes init, then
  /// lets clients in).
  Status downgrade_to_shared();

  void release();

 private:
  friend class Service;
  Service* service_ = nullptr;
  DeviceId id_ = 0;
  AcquireMode mode_ = AcquireMode::shared;
};

class Service {
 public:
  explicit Service(sisci::Cluster& cluster) : cluster_(cluster) {}

  [[nodiscard]] sisci::Cluster& cluster() noexcept { return cluster_; }

  /// Register a device that is attached to the fabric; assigns a
  /// cluster-wide DeviceId and exports its BARs.
  Result<DeviceId> register_device(fabric::EndpointId endpoint);

  /// Withdraw a device from the registry (hot-remove). Fails while anyone
  /// holds a reference; also clears its metadata registration.
  Status unregister_device(DeviceId id);

  [[nodiscard]] Result<DeviceInfo> device(DeviceId id) const;
  [[nodiscard]] Result<DeviceInfo> find_device(std::string_view name) const;
  [[nodiscard]] std::vector<DeviceInfo> list_devices() const;

  /// Borrow the device. Exclusive fails if anyone holds it; shared fails
  /// if it is held exclusively.
  Result<DeviceRef> acquire(DeviceId id, AcquireMode mode);

  /// Allocate and export a segment, letting SmartIO pick the backing host
  /// from the access hint: device-read-mostly segments go to the device's
  /// host ("device-side memory", Fig. 8), CPU-read segments stay on the
  /// requesting node.
  Result<sisci::Segment> create_segment_hinted(NodeId requester, sisci::SegmentId id,
                                               std::uint64_t size, DeviceId device,
                                               const AccessHint& hint);

  /// The node an access hint resolves to (exposed for tests/benches).
  [[nodiscard]] Result<NodeId> resolve_hint(NodeId requester, DeviceId device,
                                            const AccessHint& hint) const;

  /// Associate a metadata segment with a device (the driver manager's
  /// bootstrap segment). SmartIO distributes this to all nodes, so a
  /// client can find the manager knowing only the DeviceId.
  Status set_device_metadata(DeviceId device, NodeId owner, sisci::SegmentId segment);
  [[nodiscard]] Result<std::pair<NodeId, sisci::SegmentId>> device_metadata(
      DeviceId device) const;
  Status clear_device_metadata(DeviceId device);

  /// Compare-and-swap handoff of the metadata registration: succeeds only if
  /// the current registration still names `expected_owner`. A standby manager
  /// re-points clients with this after takeover — two standbys racing the
  /// same claim cannot both win the registration.
  Status reassign_device_metadata(DeviceId device, NodeId expected_owner, NodeId new_owner,
                                  sisci::SegmentId segment);

 private:
  friend class DeviceRef;
  struct DeviceState {
    DeviceInfo info;
    bool exclusive = false;
    int shared_refs = 0;
  };

  void release_ref(DeviceId id, AcquireMode mode);
  Status downgrade(DeviceId id);

  sisci::Cluster& cluster_;
  std::map<DeviceId, DeviceState> devices_;
  std::map<DeviceId, std::pair<NodeId, sisci::SegmentId>> metadata_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace nvmeshare::smartio
