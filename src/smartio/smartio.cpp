#include "smartio/smartio.hpp"

#include <utility>

#include "common/log.hpp"

namespace nvmeshare::smartio {

// --- DeviceRef -----------------------------------------------------------------

DeviceRef::DeviceRef(DeviceRef&& other) noexcept { *this = std::move(other); }

DeviceRef& DeviceRef::operator=(DeviceRef&& other) noexcept {
  if (this != &other) {
    release();
    service_ = std::exchange(other.service_, nullptr);
    id_ = other.id_;
    mode_ = other.mode_;
  }
  return *this;
}

DeviceRef::~DeviceRef() { release(); }

void DeviceRef::release() {
  if (service_ == nullptr) return;
  service_->release_ref(id_, mode_);
  service_ = nullptr;
}

Result<DeviceInfo> DeviceRef::info() const {
  if (!valid()) return Status(Errc::unavailable, "device reference released");
  return service_->device(id_);
}

Result<BarWindow> DeviceRef::map_bar(NodeId node, int bar) const {
  if (!valid()) return Status(Errc::unavailable, "device reference released");
  auto dev = service_->device(id_);
  if (!dev) return dev.status();
  fabric::Substrate& fabric = service_->cluster().fabric();
  auto bar_base = fabric.bar_address(dev->endpoint, bar);
  if (!bar_base) return bar_base.status();
  const std::uint64_t size = fabric.endpoint(dev->endpoint)->bar_size(bar);

  BarWindow out;
  out.size_ = size;
  auto window = fabric.map_window(fabric::MapIntent::cpu, node, dev->host, *bar_base, size);
  if (!window) return window.status();
  out.window_ = std::move(*window);
  out.valid_ = true;
  return out;
}

Result<DmaWindow> DeviceRef::map_for_device(const sisci::RemoteSegment& segment) const {
  if (!valid()) return Status(Errc::unavailable, "device reference released");
  auto dev = service_->device(id_);
  if (!dev) return dev.status();
  fabric::Substrate& fabric = service_->cluster().fabric();

  DmaWindow out;
  out.size_ = segment.size;
  // Viewed from the device's host: segments local to the device are direct,
  // remote ones go through whatever DMA window the substrate provides
  // (device-side NTB LUT run; direct HDM addressing on CXL).
  auto window = fabric.map_window(fabric::MapIntent::dma, dev->host, segment.owner,
                                  segment.phys_addr, segment.size);
  if (!window) return window.status();
  out.window_ = std::move(*window);
  out.valid_ = true;
  return out;
}

Status DeviceRef::downgrade_to_shared() {
  if (!valid()) return Status(Errc::unavailable, "device reference released");
  if (mode_ != AcquireMode::exclusive) {
    return Status(Errc::invalid_argument, "reference is not exclusive");
  }
  NVS_RETURN_IF_ERROR(service_->downgrade(id_));
  mode_ = AcquireMode::shared;
  return Status::ok();
}

// --- Service --------------------------------------------------------------------

Result<DeviceId> Service::register_device(fabric::EndpointId endpoint) {
  fabric::Substrate& fabric = cluster_.fabric();
  fabric::Endpoint* ep = fabric.endpoint(endpoint);
  if (ep == nullptr) return Status(Errc::not_found, "no such endpoint");

  DeviceState st;
  st.info.endpoint = endpoint;
  st.info.host = fabric.endpoint_host(endpoint);
  st.info.name = std::string(ep->name());
  // Cluster-wide unique id: stable fingerprint of name/host/serial.
  std::uint64_t id = 0xcbf29ce484222325ULL;
  auto mix = [&id](std::uint64_t v) {
    id ^= v;
    id *= 0x100000001b3ULL;
  };
  for (char c : st.info.name) mix(static_cast<unsigned char>(c));
  mix(st.info.host);
  mix(next_serial_++);
  st.info.id = id;

  devices_.emplace(id, st);
  NVS_LOG(info, "smartio") << "registered device '" << st.info.name << "' on host "
                           << st.info.host << " as " << id;
  return id;
}

Status Service::unregister_device(DeviceId id) {
  auto it = devices_.find(id);
  if (it == devices_.end()) return Status(Errc::not_found, "unknown device id");
  if (it->second.exclusive || it->second.shared_refs > 0) {
    return Status(Errc::permission_denied, "device has borrowers");
  }
  devices_.erase(it);
  metadata_.erase(id);
  return Status::ok();
}

Result<DeviceInfo> Service::device(DeviceId id) const {
  auto it = devices_.find(id);
  if (it == devices_.end()) return Status(Errc::not_found, "unknown device id");
  return it->second.info;
}

Result<DeviceInfo> Service::find_device(std::string_view name) const {
  for (const auto& [id, st] : devices_) {
    if (st.info.name == name) return st.info;
  }
  return Status(Errc::not_found, "no device with that name");
}

std::vector<DeviceInfo> Service::list_devices() const {
  std::vector<DeviceInfo> out;
  out.reserve(devices_.size());
  for (const auto& [id, st] : devices_) out.push_back(st.info);
  return out;
}

Result<DeviceRef> Service::acquire(DeviceId id, AcquireMode mode) {
  auto it = devices_.find(id);
  if (it == devices_.end()) return Status(Errc::not_found, "unknown device id");
  DeviceState& st = it->second;
  if (st.exclusive) {
    return Status(Errc::permission_denied, "device held exclusively");
  }
  if (mode == AcquireMode::exclusive) {
    if (st.shared_refs > 0) {
      return Status(Errc::permission_denied, "device has shared borrowers");
    }
    st.exclusive = true;
  } else {
    ++st.shared_refs;
  }
  DeviceRef ref;
  ref.service_ = this;
  ref.id_ = id;
  ref.mode_ = mode;
  return ref;
}

Status Service::downgrade(DeviceId id) {
  auto it = devices_.find(id);
  if (it == devices_.end()) return Status(Errc::not_found, "unknown device id");
  if (!it->second.exclusive) {
    return Status(Errc::invalid_argument, "device is not held exclusively");
  }
  it->second.exclusive = false;
  ++it->second.shared_refs;
  return Status::ok();
}

void Service::release_ref(DeviceId id, AcquireMode mode) {
  auto it = devices_.find(id);
  if (it == devices_.end()) return;
  if (mode == AcquireMode::exclusive) {
    it->second.exclusive = false;
  } else if (it->second.shared_refs > 0) {
    --it->second.shared_refs;
  }
}

Result<NodeId> Service::resolve_hint(NodeId requester, DeviceId device,
                                     const AccessHint& hint) const {
  auto dev = this->device(device);
  if (!dev) return dev.status();
  // Placement is a substrate policy: the NTB fabric keeps segments next to
  // whoever reads them (device-read-dominated segments go device-side,
  // CPU-polled ones stay requester-local); the CXL pool substrate puts all
  // shared segments in the pool.
  return cluster_.fabric().place_segment(requester, dev->host, hint.cpu_reads,
                                         hint.device_reads);
}

Status Service::set_device_metadata(DeviceId device, NodeId owner,
                                    sisci::SegmentId segment) {
  if (!devices_.contains(device)) return Status(Errc::not_found, "unknown device id");
  metadata_[device] = {owner, segment};
  return Status::ok();
}

Result<std::pair<NodeId, sisci::SegmentId>> Service::device_metadata(DeviceId device) const {
  auto it = metadata_.find(device);
  if (it == metadata_.end()) {
    return Status(Errc::not_found, "device has no manager metadata registered");
  }
  return it->second;
}

Status Service::clear_device_metadata(DeviceId device) {
  metadata_.erase(device);
  return Status::ok();
}

Status Service::reassign_device_metadata(DeviceId device, NodeId expected_owner,
                                         NodeId new_owner, sisci::SegmentId segment) {
  auto it = metadata_.find(device);
  if (it == metadata_.end()) {
    return Status(Errc::not_found, "device has no manager metadata registered");
  }
  if (it->second.first != expected_owner) {
    return Status(Errc::permission_denied,
                  "metadata registration moved: owner is node " +
                                  std::to_string(it->second.first) + ", expected " +
                                  std::to_string(expected_owner));
  }
  it->second = {new_owner, segment};
  return Status::ok();
}

Result<sisci::Segment> Service::create_segment_hinted(NodeId requester, sisci::SegmentId id,
                                                      std::uint64_t size, DeviceId device,
                                                      const AccessHint& hint) {
  auto node = resolve_hint(requester, device, hint);
  if (!node) return node.status();
  return cluster_.create_segment(*node, id, size);
}

}  // namespace nvmeshare::smartio
