// The PCIe cluster fabric: per-host address spaces, BAR enumeration, NTB
// look-up-table windows, and timed memory transactions that actually move
// bytes. This is the NTB substrate behind the neutral fabric::Substrate
// interface (see fabric/substrate.hpp); consumers above sisci should code
// against the interface, not this class.
//
// Timing semantics (matching PCIe ordering rules):
//  * post_write() is a posted transaction: it returns the *arrival* time
//    synchronously and applies the payload at that simulated time. Posted
//    writes issued in order on the same path arrive in order.
//  * read()/read_sg() are non-posted: the returned future resolves after a
//    full round trip (request + completion TLPs).
//  * peek()/poke() are zero-latency backdoors for setup and assertions;
//    production-path code must not use them across the fabric — enforced
//    in debug builds once seal_backdoors() is called.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/substrate.hpp"
#include "mem/allocator.hpp"
#include "mem/phys_mem.hpp"
#include "pcie/endpoint.hpp"
#include "pcie/latency.hpp"
#include "pcie/topology.hpp"
#include "pcie/types.hpp"
#include "sim/task.hpp"

namespace nvmeshare::pcie {

using SgEntry = fabric::SgEntry;

class Fabric final : public fabric::Substrate {
 public:
  using fabric::Substrate::kMmioBase;
  using fabric::Substrate::kMmioSize;

  Fabric(sim::Engine& engine, LatencyModel model = {});

  [[nodiscard]] fabric::SubstrateKind kind() const noexcept override {
    return fabric::SubstrateKind::ntb;
  }
  [[nodiscard]] const LatencyModel& latency_model() const noexcept { return model_; }
  [[nodiscard]] Topology& topology() noexcept { return topo_; }

  // --- construction ---------------------------------------------------------

  /// Add a host with `dram_size` bytes of RAM; creates its root complex.
  HostId add_host(std::string name, std::uint64_t dram_size);

  [[nodiscard]] std::size_t host_count() const noexcept override { return hosts_.size(); }
  [[nodiscard]] const std::string& host_name(HostId h) const override {
    return hosts_.at(h)->name;
  }
  [[nodiscard]] ChipId host_rc(HostId h) const { return hosts_.at(h)->rc; }
  [[nodiscard]] mem::PhysMem& host_dram(HostId h) override { return *hosts_.at(h)->dram; }

  /// The CPU of host `h` as a transaction initiator.
  [[nodiscard]] Initiator cpu(HostId h) const override {
    return Initiator{h, hosts_.at(h)->rc};
  }

  /// Add a transparent switch chip below `host` (latency from the model).
  ChipId add_switch_chip(std::string name, HostId host);
  /// Add a shared cluster-switch chip (not owned by any host).
  ChipId add_cluster_switch(std::string name);
  /// Connect two chips.
  Status link_chips(ChipId a, ChipId b) { return topo_.link(a, b); }

  /// Attach a device function below `chip` on `host`; assigns BAR addresses.
  Result<EndpointId> attach_endpoint(Endpoint& ep, HostId host, ChipId chip);
  /// Substrate-neutral attach: below the host's root complex.
  Result<EndpointId> attach(Endpoint& ep, HostId host) override {
    if (host >= hosts_.size()) return Status(Errc::invalid_argument, "bad host id");
    return attach_endpoint(ep, host, hosts_[host]->rc);
  }

  [[nodiscard]] Result<std::uint64_t> bar_address(EndpointId ep, int bar) const override;
  [[nodiscard]] Endpoint* endpoint(EndpointId ep) const override;
  /// Host the endpoint is physically installed in.
  [[nodiscard]] HostId endpoint_host(EndpointId ep) const override;
  [[nodiscard]] ChipId endpoint_chip(EndpointId ep) const;

  // --- NTB ------------------------------------------------------------------

  /// Install an NTB adapter in `host` with `windows` LUT entries of
  /// `window_size` bytes each; the adapter chip is linked to the host's
  /// root complex. Link its chip to a cluster switch with link_chips().
  Result<NtbId> add_ntb(HostId host, std::uint32_t windows, std::uint64_t window_size);

  [[nodiscard]] ChipId ntb_chip(NtbId ntb) const { return ntbs_.at(ntb).chip; }
  [[nodiscard]] HostId ntb_host(NtbId ntb) const { return ntbs_.at(ntb).host; }
  [[nodiscard]] std::uint32_t ntb_window_count(NtbId ntb) const {
    return static_cast<std::uint32_t>(ntbs_.at(ntb).lut.size());
  }
  [[nodiscard]] std::uint64_t ntb_window_size(NtbId ntb) const {
    return ntbs_.at(ntb).window_size;
  }

  /// Program LUT entry `entry`: the window now forwards to
  /// [remote_base, remote_base + window_size) in `remote_host`'s space.
  Status ntb_program(NtbId ntb, std::uint32_t entry, HostId remote_host,
                     std::uint64_t remote_base);
  Status ntb_clear(NtbId ntb, std::uint32_t entry);
  /// Find an unprogrammed LUT entry.
  Result<std::uint32_t> ntb_alloc_entry(NtbId ntb);
  /// Find `count` consecutive unprogrammed LUT entries (first index).
  Result<std::uint32_t> ntb_alloc_run(NtbId ntb, std::uint32_t count);
  /// Local (this host's) address of LUT window `entry`.
  [[nodiscard]] Result<std::uint64_t> ntb_window_address(NtbId ntb, std::uint32_t entry) const;
  /// The NTB adapter of `host`, if one was installed.
  [[nodiscard]] Result<NtbId> host_ntb(HostId host) const;

  /// Cable-pull `host`'s NTB adapter: administratively fail (or restore)
  /// every fabric link incident to its NTB chip. While down, transactions
  /// needing the adapter fail with `unavailable`; peek/poke still work.
  Status set_ntb_link(HostId host, bool up);
  Status set_host_link(HostId host, bool up) override { return set_ntb_link(host, up); }

  // --- windows and placement ------------------------------------------------

  /// CPU maps and device DMA windows both ride NTB LUT runs; a window to
  /// the viewer's own space is direct (no LUT entries held).
  Result<fabric::Window> map_window(fabric::MapIntent intent, HostId viewer, HostId owner,
                                    std::uint64_t addr, std::uint64_t size) override;

  /// NTB placement: keep segments next to whoever reads them (the reader
  /// would otherwise pay non-posted round trips through the LUT).
  [[nodiscard]] HostId place_segment(HostId requester, HostId device_host, bool cpu_access,
                                     bool device_access) const override {
    if (device_access && !cpu_access) return device_host;
    return requester;
  }

  [[nodiscard]] bool cpu_pollable(HostId viewer, HostId owner) const override {
    return viewer == owner;
  }

  // --- address resolution ------------------------------------------------------

  struct Resolved {
    enum class Kind { dram, bar } kind = Kind::dram;
    HostId host = kNoHost;       ///< host whose space the access finally lands in
    std::uint64_t addr = 0;      ///< DRAM physical address (kind==dram)
    EndpointId ep = 0;           ///< target device (kind==bar)
    int bar = 0;
    std::uint64_t bar_offset = 0;
    ChipId target_chip = kNoChip;
    int ntb_crossings = 0;
  };

  /// Resolve an address in `host`'s space, following NTB windows. The whole
  /// [addr, addr+len) range must fall within a single region.
  [[nodiscard]] Result<Resolved> resolve(HostId host, std::uint64_t addr,
                                         std::uint64_t len) const;

  // --- transactions ------------------------------------------------------------

  Result<sim::Time> post_write(const Initiator& who, std::uint64_t addr, ConstByteSpan data,
                               sim::Time not_before = 0) override;

  Result<sim::Time> write_sg(const Initiator& who, const std::vector<SgEntry>& sg,
                             ConstByteSpan data, sim::Time not_before = 0) override;

  sim::Future<Result<Bytes>> read(const Initiator& who, std::uint64_t addr,
                                  std::size_t len) override;

  sim::Future<Result<Bytes>> read_sg(const Initiator& who,
                                     const std::vector<SgEntry>& sg) override;

  /// Zero-cost CQ poll; resolves NTB windows (a taken-over manager polls
  /// the adopted CQ through its map), charging nothing — the paper's CPUs
  /// poll rings they can load from.
  Status poll_read(HostId viewer, std::uint64_t addr, ByteSpan out) override;

  using Stats = fabric::Stats;

 protected:
  Status do_poke(HostId host, std::uint64_t addr, ConstByteSpan data) override;
  Status do_peek(HostId host, std::uint64_t addr, ByteSpan out) override;
  [[nodiscard]] bool backdoor_crosses_host(HostId viewer, std::uint64_t addr,
                                           std::uint64_t len) const override;
  void unmap_window(std::uint64_t token) override;

 private:
  struct Region {
    enum class Kind { dram, bar, ntb } kind = Kind::dram;
    std::uint64_t base = 0;
    std::uint64_t len = 0;
    EndpointId ep = 0;
    int bar = 0;
    NtbId ntb = 0;
  };

  struct HostState {
    std::string name;
    ChipId rc = kNoChip;
    std::unique_ptr<mem::PhysMem> dram;
    std::unique_ptr<mem::RangeAllocator> mmio;
    std::map<std::uint64_t, Region> regions;  // keyed by base
  };

  struct NtbState {
    struct Lut {
      bool valid = false;
      HostId remote_host = kNoHost;
      std::uint64_t remote_base = 0;
    };
    HostId host = kNoHost;
    ChipId chip = kNoChip;
    std::uint64_t aperture_base = 0;
    std::uint64_t window_size = 0;
    std::vector<Lut> lut;
  };

  struct EndpointState {
    Endpoint* ep = nullptr;
    HostId host = kNoHost;
    ChipId chip = kNoChip;
    std::vector<std::uint64_t> bar_bases;
  };

  /// A LUT run held by a fabric::Window.
  struct MapRec {
    NtbId ntb = 0;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  [[nodiscard]] const Region* find_region(HostId host, std::uint64_t addr,
                                          std::uint64_t len) const;
  Result<Resolved> resolve_impl(HostId host, std::uint64_t addr, std::uint64_t len,
                                int depth, int crossings) const;
  /// One-way chip-path cost from initiator to the resolved target.
  [[nodiscard]] Result<Topology::PathCost> path_to(const Initiator& who,
                                                   const Resolved& target) const;
  Status apply_write(const Resolved& target, ConstByteSpan data);
  /// Read straight into the caller's span — no temporary for DRAM targets.
  Status apply_read_into(const Resolved& target, ByteSpan out);

  /// PCIe ordering: posted writes from one initiator to one completer may
  /// not pass each other, but they pipeline — a later write lands one
  /// serialization gap after its predecessor, not one full path latency.
  /// `gap` is the wire occupancy (serialization + TLP overhead), computed
  /// once by the caller and shared with the latency calculation.
  sim::Time posted_arrival(const Initiator& who, ChipId target_chip, sim::Duration latency,
                           sim::Duration gap, sim::Time not_before);

  /// Recycled payload buffers for in-flight posted writes: the hot path
  /// copies the caller's span into a pooled buffer instead of allocating a
  /// fresh Bytes per doorbell/CQE (ROADMAP item 1 headroom).
  Bytes take_payload(std::size_t n);
  void recycle_payload(Bytes&& b);

  LatencyModel model_;
  Topology topo_;
  std::vector<std::unique_ptr<HostState>> hosts_;
  std::vector<NtbState> ntbs_;
  std::vector<EndpointState> endpoints_;
  std::map<std::pair<ChipId, ChipId>, sim::Time> posted_floor_;
  std::vector<Bytes> payload_pool_;
  std::map<std::uint64_t, MapRec> windows_;
  std::uint64_t next_window_token_ = 1;
};

}  // namespace nvmeshare::pcie
