#include "pcie/topology.hpp"

#include <algorithm>
#include <deque>

namespace nvmeshare::pcie {

ChipId Topology::add_chip(std::string name, ChipKind kind, HostId host,
                          sim::Duration forward_ns) {
  chips_.push_back(Chip{std::move(name), kind, host, forward_ns});
  adj_.emplace_back();
  cache_valid_ = false;
  return static_cast<ChipId>(chips_.size() - 1);
}

Status Topology::link(ChipId a, ChipId b) {
  if (a >= chips_.size() || b >= chips_.size() || a == b) {
    return Status(Errc::invalid_argument, "bad chip ids in link()");
  }
  if (std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end()) {
    return Status(Errc::already_exists, "link already present");
  }
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  cache_valid_ = false;
  return Status::ok();
}

Status Topology::set_link_state(ChipId a, ChipId b, bool up) {
  if (a >= chips_.size() || b >= chips_.size()) {
    return Status(Errc::invalid_argument, "bad chip ids");
  }
  if (std::find(adj_[a].begin(), adj_[a].end(), b) == adj_[a].end()) {
    return Status(Errc::not_found, "no such link");
  }
  const auto key = std::minmax(a, b);
  if (up) {
    down_links_.erase(key);
  } else {
    down_links_.insert(key);
  }
  cache_valid_ = false;
  return Status::ok();
}

bool Topology::link_up(ChipId a, ChipId b) const {
  return !down_links_.contains(std::minmax(a, b));
}

void Topology::ensure_cache() const {
  if (cache_valid_) return;
  const std::size_t n = chips_.size();
  pred_.assign(n, std::vector<ChipId>(n, kNoChip));
  for (ChipId src = 0; src < n; ++src) {
    std::deque<ChipId> q{src};
    std::vector<bool> seen(n, false);
    seen[src] = true;
    pred_[src][src] = src;
    while (!q.empty()) {
      ChipId cur = q.front();
      q.pop_front();
      for (ChipId nxt : adj_[cur]) {
        if (!seen[nxt] && link_up(cur, nxt)) {
          seen[nxt] = true;
          pred_[src][nxt] = cur;
          q.push_back(nxt);
        }
      }
    }
  }
  cache_valid_ = true;
}

std::vector<ChipId> Topology::path(ChipId a, ChipId b) const {
  ensure_cache();
  std::vector<ChipId> out;
  if (a >= chips_.size() || b >= chips_.size()) return out;
  if (pred_[a][b] == kNoChip) return out;  // unreachable
  for (ChipId cur = b;; cur = pred_[a][cur]) {
    out.push_back(cur);
    if (cur == a) break;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Topology::PathCost Topology::path_cost(ChipId a, ChipId b) const {
  PathCost pc;
  const auto chain = path(a, b);
  if (chain.empty()) return pc;
  pc.reachable = true;
  pc.hops = static_cast<int>(chain.size());
  for (ChipId id : chain) pc.cost_ns += chips_[id].forward_ns;
  return pc;
}

}  // namespace nvmeshare::pcie
