// Identifiers and small shared types of the PCIe cluster model.
#pragma once

#include <cstdint>
#include <limits>

namespace nvmeshare::pcie {

/// One independent computer system (its own PCIe address space + DRAM).
using HostId = std::uint32_t;
/// A forwarding element in the fabric graph (root complex, switch chip,
/// NTB adapter chip, cluster switch chip).
using ChipId = std::uint32_t;
/// An attached device function.
using EndpointId = std::uint32_t;
/// An NTB adapter (one per host in a Dolphin-style cluster).
using NtbId = std::uint32_t;

inline constexpr HostId kNoHost = std::numeric_limits<HostId>::max();
inline constexpr ChipId kNoChip = std::numeric_limits<ChipId>::max();

/// Where memory transactions from some agent enter the fabric. CPUs enter
/// at their host's root complex; devices enter at their attachment chip.
struct Initiator {
  HostId host = kNoHost;
  ChipId chip = kNoChip;
};

/// Classified role of a chip, used for latency defaults and diagnostics.
enum class ChipKind : std::uint8_t {
  root_complex,
  switch_chip,     ///< transparent PCIe switch
  ntb_adapter,     ///< host adapter card with NTB function (e.g. MXH932)
  cluster_switch,  ///< NTB-capable cluster switch chip (e.g. MXS924)
};

}  // namespace nvmeshare::pcie
