// Identifiers and small shared types of the PCIe cluster model. The core
// ids are the substrate-neutral ones from `fabric/`; PCIe adds the chip
// taxonomy and NTB adapter ids that only exist on this substrate.
#pragma once

#include <cstdint>

#include "fabric/types.hpp"

namespace nvmeshare::pcie {

using HostId = fabric::HostId;
using ChipId = fabric::ChipId;
using EndpointId = fabric::EndpointId;
using Initiator = fabric::Initiator;

/// An NTB adapter (one per host in a Dolphin-style cluster).
using NtbId = std::uint32_t;

inline constexpr HostId kNoHost = fabric::kNoHost;
inline constexpr ChipId kNoChip = fabric::kNoChip;

/// Classified role of a chip, used for latency defaults and diagnostics.
enum class ChipKind : std::uint8_t {
  root_complex,
  switch_chip,     ///< transparent PCIe switch
  ntb_adapter,     ///< host adapter card with NTB function (e.g. MXH932)
  cluster_switch,  ///< NTB-capable cluster switch chip (e.g. MXS924)
};

}  // namespace nvmeshare::pcie
