#include "pcie/latency.hpp"

namespace nvmeshare::pcie {

sim::Duration LatencyModel::serialization_ns(std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  return static_cast<sim::Duration>(static_cast<double>(bytes) / link_bytes_per_ns);
}

std::uint64_t LatencyModel::tlp_count(std::uint64_t bytes) const {
  if (bytes == 0) return 1;  // zero-length read / flush still needs one TLP
  return div_ceil(bytes, max_payload_bytes);
}

sim::Duration LatencyModel::posted_write_ns(sim::Duration chip_cost_sum, int ntb_crossings,
                                            std::uint64_t bytes) const {
  return one_way_ns(chip_cost_sum, ntb_crossings) +
         static_cast<sim::Duration>(tlp_count(bytes)) * tlp_overhead_ns +
         serialization_ns(bytes) + completer_access_ns;
}

sim::Duration LatencyModel::read_ns(sim::Duration chip_cost_sum, int ntb_crossings,
                                    std::uint64_t bytes) const {
  // Request TLP one way, completer access, completion TLP(s) with data back.
  const sim::Duration one_way = one_way_ns(chip_cost_sum, ntb_crossings);
  return one_way + completer_access_ns + one_way +
         static_cast<sim::Duration>(tlp_count(bytes)) * tlp_overhead_ns +
         serialization_ns(bytes) + tlp_overhead_ns /* request TLP */;
}

}  // namespace nvmeshare::pcie
