// PCIe transaction latency model.
//
// The paper's entire latency argument rests on a handful of mechanics:
//  * posted memory writes cost the initiator (almost) nothing and arrive
//    one path-traversal later;
//  * non-posted reads stall for a full round trip, plus one completion TLP
//    per max-payload-size chunk of data;
//  * every switch chip in the path adds 100-150 ns per direction (Section
//    VI quotes this range for the Dolphin hardware);
//  * payload serialization is bounded by link bandwidth.
// This file turns those rules into numbers.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace nvmeshare::pcie {

struct LatencyModel {
  /// Traversal latency of a root complex (one direction).
  sim::Duration root_complex_ns = 80;
  /// Traversal latency of a transparent switch chip (one direction).
  sim::Duration switch_chip_ns = 120;
  /// Traversal latency of an NTB adapter chip (one direction).
  sim::Duration ntb_adapter_ns = 130;
  /// Traversal latency of the cluster switch chip (one direction).
  sim::Duration cluster_switch_ns = 150;
  /// Additional cost of an address translation through an NTB LUT.
  sim::Duration ntb_translation_ns = 30;
  /// DRAM / register access at the completer.
  sim::Duration completer_access_ns = 60;
  /// Fixed cost per TLP (headers, DLLP ack, framing).
  sim::Duration tlp_overhead_ns = 12;
  /// Max payload size: payload bytes per TLP.
  std::uint32_t max_payload_bytes = 256;
  /// Effective payload bandwidth of a link (Gen3 x8 with framing overhead).
  double link_bytes_per_ns = 8.0;

  /// One-way chip-traversal cost of a path; `chip_cost_sum` is the sum of
  /// per-chip one-direction costs along the path (see Topology::path_cost),
  /// `ntb_crossings` the number of LUT translations performed en route.
  [[nodiscard]] sim::Duration one_way_ns(sim::Duration chip_cost_sum,
                                         int ntb_crossings) const {
    return chip_cost_sum + static_cast<sim::Duration>(ntb_crossings) * ntb_translation_ns;
  }

  /// Serialization time for `bytes` of payload on the link.
  [[nodiscard]] sim::Duration serialization_ns(std::uint64_t bytes) const;

  /// Number of TLPs needed for `bytes` of payload.
  [[nodiscard]] std::uint64_t tlp_count(std::uint64_t bytes) const;

  /// Total latency from issuing a posted write until it is applied at the
  /// completer (the initiator itself does not wait for this).
  [[nodiscard]] sim::Duration posted_write_ns(sim::Duration chip_cost_sum, int ntb_crossings,
                                              std::uint64_t bytes) const;

  /// Total latency of a non-posted read: request traversal, completer
  /// access, and data completion traversal back.
  [[nodiscard]] sim::Duration read_ns(sim::Duration chip_cost_sum, int ntb_crossings,
                                      std::uint64_t bytes) const;
};

}  // namespace nvmeshare::pcie
