// Fabric graph: chips and links. Computes, per pair of chips, the one-way
// traversal cost (sum of per-chip forwarding latencies along the shortest
// path) used by the transaction latency model.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "pcie/types.hpp"

namespace nvmeshare::pcie {

class Topology {
 public:
  struct Chip {
    std::string name;
    ChipKind kind;
    HostId host;  // kNoHost for shared chips (cluster switch)
    sim::Duration forward_ns;
  };

  /// Add a chip; `forward_ns` is its one-direction traversal latency.
  ChipId add_chip(std::string name, ChipKind kind, HostId host, sim::Duration forward_ns);

  /// Connect two chips with a bidirectional link.
  Status link(ChipId a, ChipId b);

  /// Administratively disable / re-enable a link (cable pull). Paths
  /// through it become unreachable until restored.
  Status set_link_state(ChipId a, ChipId b, bool up);
  [[nodiscard]] bool link_up(ChipId a, ChipId b) const;

  [[nodiscard]] std::size_t chip_count() const noexcept { return chips_.size(); }
  [[nodiscard]] const Chip& chip(ChipId id) const { return chips_.at(id); }
  /// Chips directly linked to `id` (regardless of administrative state).
  [[nodiscard]] const std::vector<ChipId>& neighbors(ChipId id) const { return adj_.at(id); }

  struct PathCost {
    sim::Duration cost_ns = 0;  ///< sum of forward_ns over all chips on the path
    int hops = 0;               ///< number of chips on the path (inclusive)
    bool reachable = false;
  };

  /// One-way traversal cost from chip `a` to chip `b` (shortest path by
  /// chip count; every chip on the path, inclusive of both ends,
  /// contributes its forward latency once). Cached after first query;
  /// mutating the topology invalidates the cache.
  [[nodiscard]] PathCost path_cost(ChipId a, ChipId b) const;

  /// Chips on the shortest path a..b inclusive (for diagnostics/tests).
  [[nodiscard]] std::vector<ChipId> path(ChipId a, ChipId b) const;

 private:
  void ensure_cache() const;

  std::vector<Chip> chips_;
  std::vector<std::vector<ChipId>> adj_;
  std::set<std::pair<ChipId, ChipId>> down_links_;  // normalized (min,max)
  // cache_[a][b] = predecessor-of-b on shortest path from a (BFS forest).
  mutable std::vector<std::vector<ChipId>> pred_;
  mutable bool cache_valid_ = false;
};

}  // namespace nvmeshare::pcie
