#include "pcie/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"

namespace nvmeshare::pcie {

namespace {
constexpr int kMaxNtbDepth = 4;  // forwarding loops are configuration bugs

std::uint64_t pow2_ceil(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

Fabric::Fabric(sim::Engine& engine, LatencyModel model)
    : fabric::Substrate(engine), model_(model) {}

HostId Fabric::add_host(std::string name, std::uint64_t dram_size) {
  auto host = std::make_unique<HostState>();
  host->rc = topo_.add_chip(name + ".rc", ChipKind::root_complex, kNoHost /*fixed below*/,
                            model_.root_complex_ns);
  host->name = std::move(name);
  host->dram = std::make_unique<mem::PhysMem>(dram_size);
  host->mmio = std::make_unique<mem::RangeAllocator>(kMmioBase, kMmioSize);
  host->regions.emplace(0, Region{Region::Kind::dram, 0, dram_size, 0, 0, 0});
  hosts_.push_back(std::move(host));
  return static_cast<HostId>(hosts_.size() - 1);
}

ChipId Fabric::add_switch_chip(std::string name, HostId host) {
  return topo_.add_chip(std::move(name), ChipKind::switch_chip, host, model_.switch_chip_ns);
}

ChipId Fabric::add_cluster_switch(std::string name) {
  return topo_.add_chip(std::move(name), ChipKind::cluster_switch, kNoHost,
                        model_.cluster_switch_ns);
}

Result<EndpointId> Fabric::attach_endpoint(Endpoint& ep, HostId host, ChipId chip) {
  if (host >= hosts_.size()) return Status(Errc::invalid_argument, "bad host id");
  if (chip >= topo_.chip_count()) return Status(Errc::invalid_argument, "bad chip id");

  EndpointState st;
  st.ep = &ep;
  st.host = host;
  st.chip = chip;
  HostState& hs = *hosts_[host];
  for (int bar = 0; bar < ep.bar_count(); ++bar) {
    const std::uint64_t size = ep.bar_size(bar);
    if (size == 0) {
      st.bar_bases.push_back(0);
      continue;
    }
    const std::uint64_t align = pow2_ceil(std::max<std::uint64_t>(size, 4096));
    auto base = hs.mmio->alloc(align, align);
    if (!base) return base.status();
    st.bar_bases.push_back(*base);
    hs.regions.emplace(
        *base, Region{Region::Kind::bar, *base, size, static_cast<EndpointId>(endpoints_.size()),
                      bar, 0});
  }
  const auto id = static_cast<EndpointId>(endpoints_.size());
  endpoints_.push_back(std::move(st));
  ep.on_attached(*this, Initiator{host, chip}, id);
  NVS_LOG(debug, "pcie") << "attached endpoint '" << ep.name() << "' to host "
                         << hosts_[host]->name;
  return id;
}

Result<std::uint64_t> Fabric::bar_address(EndpointId ep, int bar) const {
  if (ep >= endpoints_.size()) return Status(Errc::invalid_argument, "bad endpoint id");
  const auto& bases = endpoints_[ep].bar_bases;
  if (bar < 0 || static_cast<std::size_t>(bar) >= bases.size()) {
    return Status(Errc::invalid_argument, "bad BAR index");
  }
  return bases[static_cast<std::size_t>(bar)];
}

Endpoint* Fabric::endpoint(EndpointId ep) const {
  return ep < endpoints_.size() ? endpoints_[ep].ep : nullptr;
}

HostId Fabric::endpoint_host(EndpointId ep) const {
  return ep < endpoints_.size() ? endpoints_[ep].host : kNoHost;
}

ChipId Fabric::endpoint_chip(EndpointId ep) const {
  return ep < endpoints_.size() ? endpoints_[ep].chip : kNoChip;
}

// --- NTB ---------------------------------------------------------------------

Result<NtbId> Fabric::add_ntb(HostId host, std::uint32_t windows, std::uint64_t window_size) {
  if (host >= hosts_.size()) return Status(Errc::invalid_argument, "bad host id");
  if (windows == 0 || !is_pow2(window_size)) {
    return Status(Errc::invalid_argument, "NTB needs >=1 window and pow2 window size");
  }
  HostState& hs = *hosts_[host];
  const std::uint64_t aperture = windows * window_size;
  auto base = hs.mmio->alloc(aperture, window_size);
  if (!base) return base.status();

  NtbState ntb;
  ntb.host = host;
  ntb.chip = topo_.add_chip(hs.name + ".ntb", ChipKind::ntb_adapter, host, model_.ntb_adapter_ns);
  ntb.aperture_base = *base;
  ntb.window_size = window_size;
  ntb.lut.resize(windows);
  NVS_RETURN_IF_ERROR(topo_.link(hs.rc, ntb.chip));

  const auto id = static_cast<NtbId>(ntbs_.size());
  hs.regions.emplace(*base, Region{Region::Kind::ntb, *base, aperture, 0, 0, id});
  ntbs_.push_back(std::move(ntb));
  return id;
}

Status Fabric::ntb_program(NtbId ntb, std::uint32_t entry, HostId remote_host,
                           std::uint64_t remote_base) {
  if (ntb >= ntbs_.size()) return Status(Errc::invalid_argument, "bad NTB id");
  NtbState& st = ntbs_[ntb];
  if (entry >= st.lut.size()) return Status(Errc::out_of_range, "LUT entry out of range");
  if (remote_host >= hosts_.size()) return Status(Errc::invalid_argument, "bad remote host");
  // Dolphin-style LUTs translate with page granularity: the far-side base
  // only needs page alignment, not window alignment.
  if (remote_base % 4096 != 0) {
    return Status(Errc::invalid_argument, "remote base must be page-aligned");
  }
  st.lut[entry] = NtbState::Lut{true, remote_host, remote_base};
  return Status::ok();
}

Status Fabric::ntb_clear(NtbId ntb, std::uint32_t entry) {
  if (ntb >= ntbs_.size()) return Status(Errc::invalid_argument, "bad NTB id");
  NtbState& st = ntbs_[ntb];
  if (entry >= st.lut.size()) return Status(Errc::out_of_range, "LUT entry out of range");
  st.lut[entry] = NtbState::Lut{};
  return Status::ok();
}

Result<std::uint32_t> Fabric::ntb_alloc_entry(NtbId ntb) {
  if (ntb >= ntbs_.size()) return Status(Errc::invalid_argument, "bad NTB id");
  NtbState& st = ntbs_[ntb];
  for (std::uint32_t i = 0; i < st.lut.size(); ++i) {
    if (!st.lut[i].valid) return i;
  }
  return Status(Errc::resource_exhausted, "all NTB LUT entries in use");
}

Result<std::uint32_t> Fabric::ntb_alloc_run(NtbId ntb, std::uint32_t count) {
  if (ntb >= ntbs_.size()) return Status(Errc::invalid_argument, "bad NTB id");
  if (count == 0) return Status(Errc::invalid_argument, "empty LUT run");
  NtbState& st = ntbs_[ntb];
  std::uint32_t run = 0;
  for (std::uint32_t i = 0; i < st.lut.size(); ++i) {
    run = st.lut[i].valid ? 0 : run + 1;
    if (run == count) return i - count + 1;
  }
  return Status(Errc::resource_exhausted, "no run of free NTB LUT entries");
}

Result<std::uint64_t> Fabric::ntb_window_address(NtbId ntb, std::uint32_t entry) const {
  if (ntb >= ntbs_.size()) return Status(Errc::invalid_argument, "bad NTB id");
  const NtbState& st = ntbs_[ntb];
  if (entry >= st.lut.size()) return Status(Errc::out_of_range, "LUT entry out of range");
  return st.aperture_base + entry * st.window_size;
}

Result<NtbId> Fabric::host_ntb(HostId host) const {
  for (NtbId i = 0; i < ntbs_.size(); ++i) {
    if (ntbs_[i].host == host) return i;
  }
  return Status(Errc::not_found, "host has no NTB adapter");
}

Status Fabric::set_ntb_link(HostId host, bool up) {
  auto ntb = host_ntb(host);
  if (!ntb) return ntb.status();
  const ChipId chip = ntbs_[*ntb].chip;
  for (const ChipId peer : topo_.neighbors(chip)) {
    if (Status st = topo_.set_link_state(chip, peer, up); !st) return st;
  }
  return Status::ok();
}

// --- windows -----------------------------------------------------------------

Result<fabric::Window> Fabric::map_window(fabric::MapIntent intent, HostId viewer,
                                          HostId owner, std::uint64_t addr,
                                          std::uint64_t size) {
  (void)intent;  // CPU maps and DMA windows both consume LUT runs on NTB
  if (viewer >= hosts_.size() || owner >= hosts_.size()) {
    return Status(Errc::invalid_argument, "bad host id");
  }
  if (size == 0) return Status(Errc::invalid_argument, "cannot map empty range");
  if (owner == viewer) return make_window(0, addr, size);

  auto ntb = host_ntb(viewer);
  if (!ntb) return ntb.status();
  const std::uint64_t window = ntb_window_size(*ntb);
  const auto count = static_cast<std::uint32_t>(div_ceil(size, window));
  auto first = ntb_alloc_run(*ntb, count);
  if (!first) return first.status();
  for (std::uint32_t i = 0; i < count; ++i) {
    if (Status st = ntb_program(*ntb, *first + i, owner,
                                addr + static_cast<std::uint64_t>(i) * window);
        !st) {
      // Roll back the entries programmed so far.
      for (std::uint32_t j = 0; j < i; ++j) (void)ntb_clear(*ntb, *first + j);
      return st;
    }
  }
  auto local = ntb_window_address(*ntb, *first);
  if (!local) {
    for (std::uint32_t j = 0; j < count; ++j) (void)ntb_clear(*ntb, *first + j);
    return local.status();
  }
  const std::uint64_t token = next_window_token_++;
  windows_.emplace(token, MapRec{*ntb, *first, count});
  return make_window(token, *local, size);
}

void Fabric::unmap_window(std::uint64_t token) {
  auto it = windows_.find(token);
  if (it == windows_.end()) return;
  for (std::uint32_t i = 0; i < it->second.count; ++i) {
    (void)ntb_clear(it->second.ntb, it->second.first + i);
  }
  windows_.erase(it);
}

// --- resolution ----------------------------------------------------------------

const Fabric::Region* Fabric::find_region(HostId host, std::uint64_t addr,
                                          std::uint64_t len) const {
  const auto& regions = hosts_[host]->regions;
  auto it = regions.upper_bound(addr);
  if (it == regions.begin()) return nullptr;
  --it;
  const Region& r = it->second;
  if (addr < r.base || addr + len > r.base + r.len) return nullptr;
  return &r;
}

Result<Fabric::Resolved> Fabric::resolve_impl(HostId host, std::uint64_t addr,
                                              std::uint64_t len, int depth,
                                              int crossings) const {
  if (host >= hosts_.size()) return Status(Errc::invalid_argument, "bad host id");
  if (depth > kMaxNtbDepth) {
    return Status(Errc::protocol_error, "NTB forwarding loop (depth > 4)");
  }
  const Region* r = find_region(host, addr, len == 0 ? 1 : len);
  if (r == nullptr) {
    return Status(Errc::unmapped_address,
                  "no region for address in host '" + hosts_[host]->name + "'");
  }
  switch (r->kind) {
    case Region::Kind::dram: {
      Resolved out;
      out.kind = Resolved::Kind::dram;
      out.host = host;
      out.addr = addr;
      out.target_chip = hosts_[host]->rc;
      out.ntb_crossings = crossings;
      return out;
    }
    case Region::Kind::bar: {
      Resolved out;
      out.kind = Resolved::Kind::bar;
      out.host = host;
      out.ep = r->ep;
      out.bar = r->bar;
      out.bar_offset = addr - r->base;
      out.target_chip = endpoints_[r->ep].chip;
      out.ntb_crossings = crossings;
      return out;
    }
    case Region::Kind::ntb: {
      const NtbState& ntb = ntbs_[r->ntb];
      const std::uint64_t off = addr - r->base;
      const std::uint64_t entry = off / ntb.window_size;
      const std::uint64_t within = off % ntb.window_size;
      if (within + len > ntb.window_size) {
        return Status(Errc::out_of_range, "access crosses NTB window boundary");
      }
      const auto& lut = ntb.lut[entry];
      if (!lut.valid) {
        return Status(Errc::unmapped_address, "NTB LUT entry not programmed");
      }
      return resolve_impl(lut.remote_host, lut.remote_base + within, len, depth + 1,
                          crossings + 1);
    }
  }
  return Status(Errc::internal, "unreachable");
}

Result<Fabric::Resolved> Fabric::resolve(HostId host, std::uint64_t addr,
                                         std::uint64_t len) const {
  return resolve_impl(host, addr, len, 0, 0);
}

Result<Topology::PathCost> Fabric::path_to(const Initiator& who, const Resolved& target) const {
  if (who.chip >= topo_.chip_count()) {
    return Status(Errc::invalid_argument, "initiator chip invalid");
  }
  Topology::PathCost pc = topo_.path_cost(who.chip, target.target_chip);
  if (!pc.reachable) return Status(Errc::unavailable, "no fabric path to target");
  return pc;
}

// --- target access ----------------------------------------------------------------

Status Fabric::apply_write(const Resolved& target, ConstByteSpan data) {
  if (target.kind == Resolved::Kind::dram) {
    return hosts_[target.host]->dram->write(target.addr, data);
  }
  return endpoints_[target.ep].ep->bar_write(target.bar, target.bar_offset, data);
}

Status Fabric::apply_read_into(const Resolved& target, ByteSpan out) {
  if (target.kind == Resolved::Kind::dram) {
    return hosts_[target.host]->dram->read(target.addr, out);
  }
  Result<Bytes> data = endpoints_[target.ep].ep->bar_read(target.bar, target.bar_offset,
                                                          out.size());
  if (!data) return data.status();
  std::copy(data->begin(), data->end(), out.begin());
  return Status::ok();
}

// --- payload pool ------------------------------------------------------------------

Bytes Fabric::take_payload(std::size_t n) {
  if (payload_pool_.empty()) return Bytes(n);
  Bytes b = std::move(payload_pool_.back());
  payload_pool_.pop_back();
  b.resize(n);
  return b;
}

void Fabric::recycle_payload(Bytes&& b) {
  // Bound both the number of pooled buffers and the capacity each can pin,
  // so a burst of large DMAs doesn't park megabytes forever.
  constexpr std::size_t kMaxPooled = 64;
  constexpr std::size_t kMaxPooledCapacity = 256 * 1024;
  if (payload_pool_.size() < kMaxPooled && b.capacity() <= kMaxPooledCapacity) {
    payload_pool_.push_back(std::move(b));
  }
}

// --- transactions -------------------------------------------------------------------

sim::Time Fabric::posted_arrival(const Initiator& who, ChipId target_chip,
                                 sim::Duration latency, sim::Duration gap,
                                 sim::Time not_before) {
  sim::Time& floor = posted_floor_[{who.chip, target_chip}];
  const sim::Time arrival = std::max({engine_.now() + latency, floor + gap, not_before});
  floor = arrival;
  return arrival;
}

Result<sim::Time> Fabric::post_write(const Initiator& who, std::uint64_t addr,
                                     ConstByteSpan data, sim::Time not_before) {
  auto target = resolve(who.host, addr, data.size());
  if (!target) {
    ++stats_.unsupported_requests;
    return target.status();
  }
  auto pc = path_to(who, *target);
  if (!pc) return pc.status();

  // Fault injection: a dropped posted write still occupies the wire (the
  // initiator saw it leave; stats and ordering floors advance), it simply
  // never lands — exactly how a lost doorbell or CQE looks to software.
  // Corruption (bit flip, torn write) mutates the in-flight copy: the
  // initiator's buffer is untouched, the completer sees damaged bytes.
  bool fault_drop = false;
  sim::Duration fault_extra = 0;
  fault::Injector::PostedWriteDecision corrupt;
  if (fault::enabled()) {
    const auto decision = fault::Injector::global().on_posted_write(
        who.host, target->host, target->kind == Resolved::Kind::bar, data.size());
    fault_drop = decision.drop;
    fault_extra = decision.extra_ns;
    corrupt = decision;
  }

  ++stats_.posted_writes;
  stats_.bytes_written += data.size();
  stats_.ntb_translations += static_cast<std::uint64_t>(target->ntb_crossings);

  // Wire occupancy (serialization + TLP overhead) is both part of the
  // delivery latency and the pipelining gap — compute it once.
  const sim::Duration ser = model_.serialization_ns(data.size());
  const sim::Duration tlp =
      static_cast<sim::Duration>(model_.tlp_count(data.size())) * model_.tlp_overhead_ns;
  const sim::Duration lat = model_.one_way_ns(pc->cost_ns, target->ntb_crossings) + tlp +
                            ser + model_.completer_access_ns + fault_extra;
  const sim::Time arrival = posted_arrival(who, target->target_chip, lat, ser + tlp,
                                           not_before);
  if (fault_drop) return arrival;
  // Wire timing above used the full payload; damage only what lands. The
  // in-flight copy comes from the payload pool — the hot path allocates
  // nothing once the pool is warm.
  Bytes payload = take_payload(data.size());
  if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size());
  if (corrupt.flip) {
    payload[corrupt.flip_bit / 8] ^= std::byte{1} << (corrupt.flip_bit % 8);
  }
  if (corrupt.torn) payload.resize(corrupt.torn_bytes);
  engine_.at(arrival, [this, t = *target, d = std::move(payload)]() mutable {
    if (Status st = apply_write(t, d); !st) {
      NVS_LOG(warn, "pcie") << "posted write dropped at target: " << st.to_string();
      ++stats_.unsupported_requests;
    }
    recycle_payload(std::move(d));
  });
  return arrival;
}

Result<sim::Time> Fabric::write_sg(const Initiator& who, const std::vector<SgEntry>& sg,
                                   ConstByteSpan data, sim::Time not_before) {
  std::uint64_t total = 0;
  sim::Duration worst_path = 0;
  int worst_crossings = 0;
  std::vector<Resolved> targets;
  targets.reserve(sg.size());
  for (const auto& e : sg) {
    auto target = resolve(who.host, e.addr, e.len);
    if (!target) {
      ++stats_.unsupported_requests;
      return target.status();
    }
    auto pc = path_to(who, *target);
    if (!pc) return pc.status();
    worst_path = std::max(worst_path, pc->cost_ns);
    worst_crossings = std::max(worst_crossings, target->ntb_crossings);
    stats_.ntb_translations += static_cast<std::uint64_t>(target->ntb_crossings);
    targets.push_back(*target);
    total += e.len;
  }
  if (total != data.size()) {
    return Status(Errc::invalid_argument, "scatter list length != payload length");
  }

  // Fault injection (one decision for the whole scatter list — the data of
  // one DMA either lands or is lost/damaged as a unit).
  bool fault_drop = false;
  sim::Duration fault_extra = 0;
  fault::Injector::PostedWriteDecision corrupt;
  if (fault::enabled() && !targets.empty()) {
    const auto decision = fault::Injector::global().on_posted_write(
        who.host, targets.front().host, targets.front().kind == Resolved::Kind::bar, total);
    fault_drop = decision.drop;
    fault_extra = decision.extra_ns;
    corrupt = decision;
  }

  ++stats_.posted_writes;
  stats_.bytes_written += total;

  const sim::Duration ser = model_.serialization_ns(total);
  const sim::Duration tlp =
      static_cast<sim::Duration>(model_.tlp_count(total)) * model_.tlp_overhead_ns;
  const sim::Duration lat = model_.one_way_ns(worst_path, worst_crossings) + tlp + ser +
                            model_.completer_access_ns + fault_extra;
  // Order against the FIFO of every chunk's completer — advance each
  // distinct completer chip's floor exactly once, so the aggregate
  // serialization gap is charged a single time for the whole scatter
  // list, not once per chunk.
  std::vector<ChipId> chips;
  for (const auto& t : targets) {
    if (std::find(chips.begin(), chips.end(), t.target_chip) == chips.end()) {
      chips.push_back(t.target_chip);
    }
  }
  sim::Time arrival = not_before;
  for (ChipId chip : chips) {
    arrival = std::max(arrival, posted_arrival(who, chip, lat, ser + tlp, not_before));
  }
  for (ChipId chip : chips) {
    posted_floor_[{who.chip, chip}] = arrival;
  }
  if (fault_drop) return arrival;
  Bytes payload = take_payload(data.size());
  if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size());
  if (corrupt.flip) {
    payload[corrupt.flip_bit / 8] ^= std::byte{1} << (corrupt.flip_bit % 8);
  }
  // A torn scatter write delivers only the leading `torn_bytes` of the DMA.
  const std::uint64_t deliver = corrupt.torn ? corrupt.torn_bytes : total;
  engine_.at(arrival,
             [this, targets = std::move(targets), sg, d = std::move(payload), deliver]() mutable {
               std::size_t off = 0;
               for (std::size_t i = 0; i < targets.size() && off < deliver; ++i) {
                 const std::size_t chunk = std::min<std::size_t>(sg[i].len, deliver - off);
                 if (Status st = apply_write(targets[i], ConstByteSpan(d).subspan(off, chunk));
                     !st) {
                   NVS_LOG(warn, "pcie") << "scatter write chunk dropped: " << st.to_string();
                   ++stats_.unsupported_requests;
                 }
                 off += sg[i].len;
               }
               recycle_payload(std::move(d));
             });
  return arrival;
}

sim::Future<Result<Bytes>> Fabric::read(const Initiator& who, std::uint64_t addr,
                                        std::size_t len) {
  sim::Promise<Result<Bytes>> promise(engine_);
  auto future = promise.future();

  auto target = resolve(who.host, addr, len);
  if (!target) {
    ++stats_.unsupported_requests;
    // UR completion comes back after roughly one round trip of header TLPs.
    engine_.after(2 * model_.tlp_overhead_ns,
                  [promise, st = target.status()]() mutable { promise.set(st); });
    return future;
  }
  auto pc = path_to(who, *target);
  if (!pc) {
    engine_.after(2 * model_.tlp_overhead_ns,
                  [promise, st = pc.status()]() mutable { promise.set(st); });
    return future;
  }
  ++stats_.reads;
  stats_.bytes_read += len;
  stats_.ntb_translations += static_cast<std::uint64_t>(target->ntb_crossings);

  const sim::Duration one_way = model_.one_way_ns(pc->cost_ns, target->ntb_crossings);
  const sim::Duration total = model_.read_ns(pc->cost_ns, target->ntb_crossings, len);
  // The completer is accessed when the request arrives; data travels back.
  engine_.after(one_way + model_.completer_access_ns,
                [this, t = *target, len, promise, src = who.host,
                 remaining = total - one_way - model_.completer_access_ns]() mutable {
                  // One buffer, filled in place — the DRAM fast path copies
                  // straight from PhysMem into it.
                  Bytes data(len);
                  Status st = apply_read_into(t, data);
                  // Fault injection: a stale read completes successfully but
                  // carries old (zero-filled) data instead of memory contents.
                  if (st && fault::enabled() &&
                      fault::Injector::global().on_dma_read(
                          src, t.host, t.kind == Resolved::Kind::bar)) {
                    data.assign(data.size(), std::byte{0});
                  }
                  engine_.after(remaining > 0 ? remaining : 0,
                                [promise, st, d = std::move(data)]() mutable {
                                  if (!st) {
                                    promise.set(st);
                                  } else {
                                    promise.set(std::move(d));
                                  }
                                });
                });
  return future;
}

sim::Future<Result<Bytes>> Fabric::read_sg(const Initiator& who,
                                           const std::vector<SgEntry>& sg) {
  sim::Promise<Result<Bytes>> promise(engine_);
  auto future = promise.future();

  std::uint64_t total = 0;
  sim::Duration worst_path = 0;
  int worst_crossings = 0;
  std::vector<Resolved> targets;
  targets.reserve(sg.size());
  for (const auto& e : sg) {
    auto target = resolve(who.host, e.addr, e.len);
    if (!target) {
      ++stats_.unsupported_requests;
      engine_.after(2 * model_.tlp_overhead_ns,
                    [promise, st = target.status()]() mutable { promise.set(st); });
      return future;
    }
    auto pc = path_to(who, *target);
    if (!pc) {
      engine_.after(2 * model_.tlp_overhead_ns,
                    [promise, st = pc.status()]() mutable { promise.set(st); });
      return future;
    }
    worst_path = std::max(worst_path, pc->cost_ns);
    worst_crossings = std::max(worst_crossings, target->ntb_crossings);
    stats_.ntb_translations += static_cast<std::uint64_t>(target->ntb_crossings);
    targets.push_back(*target);
    total += e.len;
  }
  ++stats_.reads;
  stats_.bytes_read += total;

  const sim::Duration one_way = model_.one_way_ns(worst_path, worst_crossings);
  const sim::Duration total_lat = model_.read_ns(worst_path, worst_crossings, total);
  engine_.after(
      one_way + model_.completer_access_ns,
      [this, targets = std::move(targets), sg, promise, src = who.host,
       remaining = total_lat - one_way - model_.completer_access_ns, total]() mutable {
        // Gather into one pre-sized buffer: every DRAM chunk lands directly
        // in its final position instead of round-tripping through a
        // per-chunk temporary.
        Bytes out(total);
        Status failure = Status::ok();
        std::size_t off = 0;
        for (std::size_t i = 0; i < targets.size(); ++i) {
          if (Status st = apply_read_into(targets[i], ByteSpan(out).subspan(off, sg[i].len));
              !st) {
            failure = st;
            break;
          }
          off += sg[i].len;
        }
        // Fault injection (one decision per gather, matching write_sg): a
        // stale gather read completes with zero-filled data.
        if (failure.is_ok() && !targets.empty() && fault::enabled() &&
            fault::Injector::global().on_dma_read(
                src, targets.front().host,
                targets.front().kind == Resolved::Kind::bar)) {
          out.assign(out.size(), std::byte{0});
        }
        engine_.after(remaining > 0 ? remaining : 0,
                      [promise, failure, d = std::move(out)]() mutable {
                        if (!failure) {
                          promise.set(failure);
                        } else {
                          promise.set(std::move(d));
                        }
                      });
      });
  return future;
}

Status Fabric::do_poke(HostId host, std::uint64_t addr, ConstByteSpan data) {
  auto target = resolve(host, addr, data.size());
  if (!target) return target.status();
  return apply_write(*target, data);
}

Status Fabric::poll_read(HostId viewer, std::uint64_t addr, ByteSpan out) {
  auto target = resolve(viewer, addr, out.size());
  if (!target) return target.status();
  if (target->kind == Resolved::Kind::dram) {
    // CQ pollers hit this every poll round; read straight into the
    // caller's buffer instead of round-tripping through a temporary.
    return hosts_[target->host]->dram->read(target->addr, out);
  }
  return apply_read_into(*target, out);
}

Status Fabric::do_peek(HostId host, std::uint64_t addr, ByteSpan out) {
  return poll_read(host, addr, out);
}

bool Fabric::backdoor_crosses_host(HostId viewer, std::uint64_t addr,
                                   std::uint64_t len) const {
  auto target = resolve(viewer, addr, len);
  return target.has_value() && target->host != viewer;
}

}  // namespace nvmeshare::pcie
