// PCIe device functions are substrate-neutral endpoints: the same device
// model (BAR registers + DMA through the attached substrate) runs over the
// NTB fabric and the CXL pool alike. See fabric/endpoint.hpp.
#pragma once

#include "fabric/endpoint.hpp"
#include "pcie/types.hpp"

namespace nvmeshare::pcie {

using Endpoint = fabric::Endpoint;

}  // namespace nvmeshare::pcie
