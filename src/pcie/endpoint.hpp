// Base class for PCIe device functions attached to the fabric.
//
// An endpoint exposes one or more BARs (register regions). Register accesses
// arrive from the fabric *at the transaction's arrival time*, so side
// effects such as doorbell writes are naturally delayed by path traversal.
// Endpoints initiate DMA through the Fabric reference they receive when
// attached.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "pcie/types.hpp"

namespace nvmeshare::pcie {

class Fabric;

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual int bar_count() const = 0;
  /// Size in bytes of BAR `bar` (power of two, >= 4 KiB).
  [[nodiscard]] virtual std::uint64_t bar_size(int bar) const = 0;

  /// Read `len` bytes at `offset` within BAR `bar`.
  virtual Result<Bytes> bar_read(int bar, std::uint64_t offset, std::size_t len) = 0;
  /// Write into BAR `bar`; side effects (doorbells) happen here.
  virtual Status bar_write(int bar, std::uint64_t offset, ConstByteSpan data) = 0;

  /// Fabric wiring, set by Fabric::attach_endpoint.
  void on_attached(Fabric& fabric, Initiator self, EndpointId id) noexcept {
    fabric_ = &fabric;
    self_ = self;
    id_ = id;
  }

  [[nodiscard]] Fabric* fabric() const noexcept { return fabric_; }
  /// This device's identity as a DMA initiator.
  [[nodiscard]] Initiator dma_initiator() const noexcept { return self_; }
  [[nodiscard]] EndpointId endpoint_id() const noexcept { return id_; }

 private:
  Fabric* fabric_ = nullptr;
  Initiator self_{};
  EndpointId id_ = 0;
};

}  // namespace nvmeshare::pcie
