// Namespace sharding: one block device federated over N controllers.
//
// The paper shares a *single-function* NVMe device, so one controller's
// bandwidth is the ceiling for the whole cluster. ShardedDevice raises that
// ceiling the way md-raid0 does for local disks: the LBA space is striped
// chunk-by-chunk across N underlying devices (each typically a
// driver-backed device on a different borrowed controller), and every
// request is routed — split at chunk boundaries when it straddles them —
// to the owning shard. Retries and recovery stay per-shard: each sub-request
// travels the owning device's normal submit path, so a controller reset on
// shard 2 never touches traffic bound for shard 0.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "block/block.hpp"
#include "obs/metrics.hpp"

namespace nvmeshare::block {

/// RAID-0-style striping over homogeneous block devices. Deterministic:
/// sub-requests are issued in ascending-LBA order, completions are awaited
/// in the same order, and the merged status is the first sub-error.
class ShardedDevice final : public BlockDevice {
 public:
  struct Config {
    std::uint32_t stripe_blocks = 128;  ///< chunk size (64 KiB at 512 B blocks)
  };

  /// All shards must share a block size; capacity is truncated to the
  /// smallest shard so every stripe column exists on every device.
  ShardedDevice(sim::Engine& engine, std::vector<BlockDevice*> shards, Config cfg);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint32_t block_size() const override;
  [[nodiscard]] std::uint64_t capacity_blocks() const override { return capacity_blocks_; }
  [[nodiscard]] std::uint32_t max_queue_depth() const override;
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override;
  sim::Future<Completion> submit(const Request& request) override;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Owning shard of `lba` (exposed for tests and placement-aware callers).
  [[nodiscard]] std::size_t shard_of(std::uint64_t lba) const noexcept {
    return static_cast<std::size_t>((lba / cfg_.stripe_blocks) % shards_.size());
  }
  /// `lba` translated into the owning shard's local LBA space.
  [[nodiscard]] std::uint64_t local_lba(std::uint64_t lba) const noexcept {
    const std::uint64_t chunk = lba / cfg_.stripe_blocks;
    return (chunk / shards_.size()) * cfg_.stripe_blocks + lba % cfg_.stripe_blocks;
  }

  /// Sharding counters, registered as `nvmeshare.mux.shard_*`.
  struct Stats {
    Stats();
    obs::Counter requests;       ///< requests accepted at the sharded surface
    obs::Counter sub_requests;   ///< per-shard requests issued underneath
    obs::Counter splits;         ///< requests that straddled a chunk boundary
    obs::Counter flush_fanout;   ///< per-shard flushes broadcast
    obs::Counter sub_errors;     ///< sub-requests that completed with an error
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  sim::Task submit_task(Request request, sim::Promise<Completion> promise);

  sim::Engine& engine_;
  std::vector<BlockDevice*> shards_;
  Config cfg_;
  std::uint64_t capacity_blocks_ = 0;
  std::string name_;
  Stats stats_;
};

}  // namespace nvmeshare::block
