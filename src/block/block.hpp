// Minimal Linux-block-layer analog.
//
// The paper's kernel driver registers a block device and services I/O
// requests whose data buffers are arbitrary memory the block layer hands it
// — the constraint that forces the bounce-buffer design. This module models
// that interface: a Request carries an opaque physical buffer address in
// the submitting host's DRAM, and a BlockDevice implementation completes it
// asynchronously on the simulation engine.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/status.hpp"
#include "pcie/types.hpp"
#include "sim/task.hpp"

namespace nvmeshare::block {

enum class Op : std::uint8_t { read, write, flush, write_zeroes, discard };

/// One block-layer I/O request. `buffer_addr` is a physical address in the
/// submitting host's DRAM (like a bio's page list, flattened); it is not
/// required to be reachable by the device — making it reachable (bounce
/// copy or dynamic mapping) is the driver's job. flush and write_zeroes
/// carry no buffer.
struct Request {
  Op op = Op::read;
  std::uint64_t lba = 0;
  std::uint32_t nblocks = 0;
  std::uint64_t buffer_addr = 0;
};

/// Outcome of one request, delivered through the submit() future.
struct Completion {
  Status status;
  sim::Duration latency_ns = 0;  ///< submit-to-complete, as the block layer sees it
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::uint32_t block_size() const = 0;
  [[nodiscard]] virtual std::uint64_t capacity_blocks() const = 0;
  /// Requests the device can hold in flight; submit() beyond this queues.
  [[nodiscard]] virtual std::uint32_t max_queue_depth() const = 0;
  /// Largest request in bytes the device accepts.
  [[nodiscard]] virtual std::uint64_t max_transfer_bytes() const = 0;

  /// Submit one request; the future resolves when the request completes.
  virtual sim::Future<Completion> submit(const Request& request) = 0;
};

/// Validate a request against device limits (shared by implementations).
Status validate_request(const BlockDevice& dev, const Request& request);

}  // namespace nvmeshare::block
