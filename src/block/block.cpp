#include "block/block.hpp"

namespace nvmeshare::block {

Status validate_request(const BlockDevice& dev, const Request& request) {
  if (request.op == Op::flush) return Status::ok();
  if (request.nblocks == 0) {
    return Status(Errc::invalid_argument, "zero-length block request");
  }
  if (request.lba + request.nblocks > dev.capacity_blocks()) {
    return Status(Errc::out_of_range, "request beyond device capacity");
  }
  if (request.op == Op::write_zeroes || request.op == Op::discard) {
    return Status::ok();  // no caller data transfer
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(request.nblocks) * dev.block_size();
  if (bytes > dev.max_transfer_bytes()) {
    return Status(Errc::invalid_argument, "request exceeds max transfer size");
  }
  return Status::ok();
}

}  // namespace nvmeshare::block
