#include "block/sharded_device.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace nvmeshare::block {

ShardedDevice::Stats::Stats()
    : requests("nvmeshare.mux.shard_requests"),
      sub_requests("nvmeshare.mux.shard_sub_requests"),
      splits("nvmeshare.mux.shard_splits"),
      flush_fanout("nvmeshare.mux.shard_flush_fanout"),
      sub_errors("nvmeshare.mux.shard_sub_errors") {}

ShardedDevice::ShardedDevice(sim::Engine& engine, std::vector<BlockDevice*> shards, Config cfg)
    : engine_(engine), shards_(std::move(shards)), cfg_(cfg) {
  assert(!shards_.empty() && "sharded device needs at least one shard");
  cfg_.stripe_blocks = std::max<std::uint32_t>(cfg_.stripe_blocks, 1);
  // Truncate to the smallest shard, in whole chunks, so chunk k of every
  // stripe column resolves to a valid local LBA on its owner.
  std::uint64_t min_chunks = std::numeric_limits<std::uint64_t>::max();
  for (const BlockDevice* s : shards_) {
    assert(s->block_size() == shards_.front()->block_size() &&
           "shards must share a block size");
    min_chunks = std::min(min_chunks, s->capacity_blocks() / cfg_.stripe_blocks);
  }
  capacity_blocks_ = min_chunks * shards_.size() * cfg_.stripe_blocks;
  name_ = "shard" + std::to_string(shards_.size()) + "[" +
          std::string(shards_.front()->name()) + "]";
}

std::uint32_t ShardedDevice::block_size() const { return shards_.front()->block_size(); }

std::uint32_t ShardedDevice::max_queue_depth() const {
  std::uint32_t depth = 0;
  for (const BlockDevice* s : shards_) depth += s->max_queue_depth();
  return depth;
}

std::uint64_t ShardedDevice::max_transfer_bytes() const {
  // A request may be split across shards, but a single chunk-sized piece
  // must fit in one shard's transfer limit; the aggregate limit scales with
  // the shard count because pieces travel independently.
  std::uint64_t per_shard = std::numeric_limits<std::uint64_t>::max();
  for (const BlockDevice* s : shards_) per_shard = std::min(per_shard, s->max_transfer_bytes());
  return per_shard * shards_.size();
}

sim::Future<Completion> ShardedDevice::submit(const Request& request) {
  sim::Promise<Completion> promise(engine_);
  auto future = promise.future();
  if (Status st = validate_request(*this, request); !st) {
    promise.set(Completion{std::move(st), 0});
    return future;
  }
  ++stats_.requests;
  submit_task(request, std::move(promise));
  return future;
}

sim::Task ShardedDevice::submit_task(Request request, sim::Promise<Completion> promise) {
  const sim::Time start = engine_.now();

  // Carve the request at chunk boundaries and fan the pieces out. Issuing
  // before awaiting lets the shards work in parallel; awaiting in issue
  // order keeps the merge deterministic.
  std::vector<sim::Future<Completion>> pieces;
  if (request.op == Op::flush) {
    // Flush has no LBA extent: durability requires every shard to flush.
    pieces.reserve(shards_.size());
    for (BlockDevice* s : shards_) {
      pieces.push_back(s->submit(request));
      ++stats_.flush_fanout;
      ++stats_.sub_requests;
    }
  } else {
    const std::uint32_t bs = block_size();
    std::uint64_t lba = request.lba;
    std::uint32_t left = request.nblocks;
    std::uint64_t buffer = request.buffer_addr;
    while (left > 0) {
      const std::uint32_t in_chunk =
          cfg_.stripe_blocks - static_cast<std::uint32_t>(lba % cfg_.stripe_blocks);
      const std::uint32_t n = std::min(left, in_chunk);
      Request piece = request;
      piece.lba = local_lba(lba);
      piece.nblocks = n;
      piece.buffer_addr = buffer;
      pieces.push_back(shards_[shard_of(lba)]->submit(piece));
      ++stats_.sub_requests;
      lba += n;
      left -= n;
      buffer += static_cast<std::uint64_t>(n) * bs;
    }
    if (pieces.size() > 1) ++stats_.splits;
  }

  // Merge: first sub-error wins (ascending-LBA order), latency is
  // end-to-end across the slowest piece.
  Status merged = Status::ok();
  for (auto& piece : pieces) {
    Completion done = co_await piece;
    if (!done.status) {
      ++stats_.sub_errors;
      if (merged.is_ok()) merged = std::move(done.status);
    }
  }
  promise.set(Completion{std::move(merged), engine_.now() - start});
}

}  // namespace nvmeshare::block
