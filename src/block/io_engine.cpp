#include "block/io_engine.hpp"

#include <algorithm>

#include "block/block.hpp"
#include "common/log.hpp"

namespace nvmeshare::block {

Status IoEngine::validate(const Config& cfg) {
  if (cfg.channels == 0 || cfg.channels > kMaxEngineChannels) {
    return Status(Errc::invalid_argument, "channel count out of range");
  }
  if (cfg.queue_depth == 0) {
    return Status(Errc::invalid_argument, "queue depth must be positive");
  }
  // A depth equal to the ring size makes SQ-full indistinguishable from
  // SQ-empty on wrap (head == tail either way): the ring would wedge with
  // every slot handed out. Refuse at attach time instead.
  if (cfg.queue_entries != 0 &&
      cfg.queue_depth > static_cast<std::uint32_t>(cfg.queue_entries - 1)) {
    return Status(Errc::invalid_argument,
                  "queue depth must be smaller than the ring size (depth < entries)");
  }
  return Status::ok();
}

sim::Duration IoEngine::backoff_ns(sim::Duration base, std::uint32_t attempt,
                                   sim::Duration max) {
  if (base <= 0 || max <= 0) return 0;
  if (base >= max) return max;
  const std::uint32_t shift = std::min<std::uint32_t>(attempt > 0 ? attempt - 1 : 0, 10);
  // Compare against the ceiling *before* shifting: `base << shift` wraps the
  // 64-bit Duration once the product crosses 2^63, which a large configured
  // base reaches by attempt 11 — the overflow turned a capped backoff into a
  // zero (or negative) sleep, defeating the whole retry spacing.
  if (base > (max >> shift)) return max;
  return base << shift;
}

IoEngine::Channel::Channel(sim::Engine& engine, const std::string& prefix)
    : recovered(engine),
      inflight_gauge(prefix + ".inflight"),
      doorbell_writes(prefix + ".doorbell_writes"),
      coalesced_cmds(prefix + ".coalesced_cmds") {}

IoEngine::IoEngine(sim::Engine& engine, IoTransport& transport, std::shared_ptr<bool> stop,
                   Config cfg)
    : engine_(engine),
      transport_(transport),
      stop_(std::move(stop)),
      cfg_(std::move(cfg)),
      qos_throttle_ns_("nvmeshare.engine." + cfg_.backend + ".qos.throttle_ns"),
      qos_deferred_cmds_("nvmeshare.engine." + cfg_.backend + ".qos.deferred_cmds") {
  // Buckets start full: a client gets its burst allowance up front, then
  // settles to the steady-state rate.
  qos_cmds_.rate = cfg_.qos_iops_limit;
  qos_cmds_.capacity = static_cast<std::int64_t>(cfg_.qos_burst_cmds) * kTokenScale;
  qos_cmds_.scaled = qos_cmds_.capacity;
  qos_bytes_.rate = cfg_.qos_bytes_per_s;
  qos_bytes_.capacity = static_cast<std::int64_t>(cfg_.qos_burst_bytes) * kTokenScale;
  qos_bytes_.scaled = qos_bytes_.capacity;
  slots_ = std::make_unique<sim::Semaphore>(engine_, total_depth());
  channels_.reserve(cfg_.channels);
  for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
    auto ch = std::make_unique<Channel>(
        engine_, "nvmeshare.engine." + cfg_.backend + ".qp" + std::to_string(c));
    ch->recovered.set();  // no recovery in progress
    // Free-list in descending order so pop_back() hands out slot 0 first
    // (the pre-engine drivers did the same; bounce addresses stay stable).
    ch->free_slots.resize(cfg_.queue_depth);
    for (std::uint32_t i = 0; i < cfg_.queue_depth; ++i) {
      ch->free_slots[i] = cfg_.queue_depth - 1 - i;
    }
    channels_.push_back(std::move(ch));
  }
}

// --- scheduling ---------------------------------------------------------------

std::uint32_t IoEngine::pick_channel() {
  // Two passes: channels mid-recovery only get new work when no surviving
  // channel has capacity (their run() loops then wait on the recovered
  // event, so nothing is lost — just queued behind the rebuild).
  for (int pass = 0; pass < 2; ++pass) {
    const bool allow_recovering = pass == 1;
    if (cfg_.scheduler == Scheduler::least_inflight) {
      std::uint32_t best = cfg_.channels;
      for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        Channel& ch = *channels_[c];
        if (ch.free_slots.empty() || (ch.recovering && !allow_recovering)) continue;
        if (best == cfg_.channels || ch.inflight < channels_[best]->inflight) best = c;
      }
      if (best != cfg_.channels) return best;
    } else {
      for (std::uint32_t i = 0; i < cfg_.channels; ++i) {
        const std::uint32_t c = (rr_cursor_ + i) % cfg_.channels;
        Channel& ch = *channels_[c];
        if (ch.free_slots.empty() || (ch.recovering && !allow_recovering)) continue;
        rr_cursor_ = (c + 1) % cfg_.channels;
        return c;
      }
    }
  }
  // Unreachable: the slot semaphore admitted us, so some channel has a slot.
  return 0;
}

sim::Future<IoEngine::Grant> IoEngine::acquire() {
  sim::Promise<Grant> promise(engine_);
  acquire_task(promise);
  return promise.future();
}

sim::Task IoEngine::acquire_task(sim::Promise<Grant> promise) {
  co_await slots_->acquire();
  const std::uint32_t chan = pick_channel();
  Channel& ch = *channels_[chan];
  const std::uint32_t local = ch.free_slots.back();
  ch.free_slots.pop_back();
  ++ch.inflight;
  ch.inflight_gauge.set(ch.inflight);
  promise.set(Grant{chan, chan * cfg_.queue_depth + local});
}

void IoEngine::release(const Grant& grant) {
  Channel& ch = *channels_[grant.chan];
  ch.free_slots.push_back(grant.slot % cfg_.queue_depth);
  --ch.inflight;
  ch.inflight_gauge.set(ch.inflight);
  slots_->release();
}

// --- doorbell coalescing ------------------------------------------------------

sim::Task IoEngine::flush_task(std::uint32_t chan, std::shared_ptr<FlushBatch> batch) {
  co_await sim::delay(engine_, cfg_.doorbell_ns);
  Channel& ch = *channels_[chan];
  // Close the batch before ringing: commands issued from here on start a
  // fresh burst (they were not covered by this tail store).
  if (ch.open_batch == batch) ch.open_batch = nullptr;
  batch->status = *stop_ ? Status(Errc::aborted, "stopped") : transport_.ring(chan);
  ++ch.doorbell_writes;
  ch.coalesced_cmds += batch->staged;
  batch->done.set();
}

sim::Future<Status> IoEngine::flush(std::uint32_t chan) {
  sim::Promise<Status> promise(engine_);
  flush_wait_task(chan, promise);
  return promise.future();
}

sim::Task IoEngine::flush_wait_task(std::uint32_t chan, sim::Promise<Status> promise) {
  Channel& ch = *channels_[chan];
  if (!cfg_.coalesce_doorbells) {
    // Seed behavior: every command pays the doorbell cost and rings.
    co_await sim::delay(engine_, cfg_.doorbell_ns);
    ++ch.doorbell_writes;
    ++ch.coalesced_cmds;
    promise.set(*stop_ ? Status(Errc::aborted, "stopped") : transport_.ring(chan));
    co_return;
  }
  std::shared_ptr<FlushBatch> batch = ch.open_batch;
  if (!batch) {
    batch = std::make_shared<FlushBatch>(engine_);
    ch.open_batch = batch;
    flush_task(chan, batch);
  }
  ++batch->staged;
  (void)co_await batch->done.wait();
  promise.set(batch->status);
}

std::uint64_t IoEngine::doorbell_writes() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->doorbell_writes.value();
  return total;
}

std::uint64_t IoEngine::coalesced_cmds() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->coalesced_cmds.value();
  return total;
}

// --- QoS pacing ---------------------------------------------------------------

void IoEngine::TokenBucket::refill(sim::Time now) {
  const sim::Duration elapsed = now - last;
  last = now;
  if (rate == 0 || elapsed <= 0) return;
  const auto r = static_cast<std::int64_t>(rate);
  // Time to climb from the current balance (which may be a deficit) back to
  // a full bucket, rounded *up*: the old `capacity / r` floor both credited
  // a fraction of a token early and forgave any outstanding deficit, so a
  // sustained stream could admit slightly more than rate * t + burst.
  // Clamping `elapsed` here also keeps `elapsed * r` inside 64 bits for
  // arbitrarily long idle gaps.
  const std::int64_t deficit = capacity - scaled;
  if (elapsed >= (deficit + r - 1) / r) {
    scaled = capacity;
    return;
  }
  scaled += elapsed * r;
}

sim::Duration IoEngine::TokenBucket::charge(sim::Time now, std::uint64_t tokens) {
  if (rate == 0) return 0;
  refill(now);
  scaled -= static_cast<std::int64_t>(tokens) * kTokenScale;
  if (scaled >= 0) return 0;
  // Sleep until the balance refills back to zero (ceil so we never wake a
  // fraction of a token early).
  const auto r = static_cast<std::int64_t>(rate);
  return (-scaled + r - 1) / r;
}

// --- pending-command arena ----------------------------------------------------

IoEngine::PendingCmd* IoEngine::alloc_cmd() {
  PendingCmd* cmd;
  if (cmd_free_ != nullptr) {
    cmd = cmd_free_;
    cmd_free_ = cmd->next_free;
  } else {
    if (cmd_chunk_used_ == kCmdChunk) {
      cmd_chunks_.push_back(std::make_unique<PendingCmd[]>(kCmdChunk));
      cmd_chunk_used_ = 0;
    }
    cmd = &cmd_chunks_.back()[cmd_chunk_used_++];
  }
  cmd->outcome = CmdOutcome{};
  cmd->waiter = nullptr;
  cmd->resolved = false;
  cmd->next_free = nullptr;
  return cmd;
}

void IoEngine::free_cmd(PendingCmd* cmd) noexcept {
  cmd->next_free = cmd_free_;
  cmd_free_ = cmd;
}

IoEngine::PendingCmd* IoEngine::lookup(std::uint32_t chan, std::uint16_t token) const {
  const auto& table = channels_[chan]->pending;
  return token < table.size() ? table[token] : nullptr;
}

bool IoEngine::arm(std::uint32_t chan, std::uint16_t token, PendingCmd* cmd) {
  // Token-table growth is capped at the largest token a well-behaved
  // transport can hand out (NVMe cid < ring entries, message cid < total
  // depth). A token past the cap is a transport bug: refuse to arm instead
  // of letting one corrupt cid grow the table without bound.
  if (token >= token_cap()) {
    NVS_LOG(error, "engine") << cfg_.backend << " chan " << chan
                             << " completion token " << token << " beyond cap "
                             << token_cap() << "; refusing to arm";
    return false;
  }
  auto& table = channels_[chan]->pending;
  if (token >= table.size()) table.resize(token + 1, nullptr);
  table[token] = cmd;
  ++pending_count_;
  return true;
}

void IoEngine::disarm(std::uint32_t chan, std::uint16_t token) noexcept {
  // Mirror lookup()'s bounds check: a transport-issued token beyond the
  // armed range must be a no-op, not an out-of-bounds store (and a slot
  // that is already empty must not underflow pending_count_).
  auto& table = channels_[chan]->pending;
  if (token >= table.size() || table[token] == nullptr) return;
  table[token] = nullptr;
  --pending_count_;
}

void IoEngine::resolve(PendingCmd* cmd, CmdOutcome outcome) {
  cmd->outcome = std::move(outcome);
  cmd->resolved = true;
  // Wake through the engine queue, never inline — the same deterministic
  // deferred resume sim::Promise::set performed. No waiter means run_task
  // has not reached its co_await yet; it will see `resolved` and continue
  // without suspending.
  if (cmd->waiter) {
    engine_.at(engine_.now(), [h = cmd->waiter]() { h.resume(); });
  }
}

// --- submission/completion/retry core ----------------------------------------

sim::Future<CmdOutcome> IoEngine::run(RunArgs args) {
  sim::Promise<CmdOutcome> promise(engine_);
  run_task(args, promise);
  return promise.future();
}

sim::Task IoEngine::run_task(RunArgs args, sim::Promise<CmdOutcome> promise) {
  auto stop = stop_;
  const std::uint32_t chan = args.grant.chan;
  obs::Tracer& tracer = obs::Tracer::global();
  const std::uint16_t qid = transport_.trace_qid(chan);
  auto mark = [&](obs::Phase phase, std::uint16_t cid = 0) {
    if (args.ph != nullptr) args.ph->mark(phase, engine_.now(), qid, cid);
  };
  auto fail = [&](CmdOutcome::Kind kind, Status st = Status::ok()) {
    CmdOutcome out;
    out.kind = kind;
    out.transport = std::move(st);
    promise.set(std::move(out));
  };

  // QoS pacing: charge the token buckets once per command (retries ride the
  // original charge) and sleep off any deficit before touching the ring.
  // Disarmed buckets charge nothing, so unconfigured runs are untouched.
  if (qos_enabled()) {
    const sim::Duration stall = std::max(qos_cmds_.charge(engine_.now(), 1),
                                         qos_bytes_.charge(engine_.now(), args.bytes));
    if (stall > 0) {
      ++qos_deferred_cmds_;
      qos_throttle_ns_ += static_cast<std::uint64_t>(stall);
      co_await sim::delay(engine_, stall);
      if (*stop) {
        fail(CmdOutcome::Kind::aborted);
        co_return;
      }
    }
  }

  std::uint32_t attempt = 0;
  bool recovered_once = false;
  for (;;) {
    if (channels_[chan]->recovering) {
      // A channel rebuild is in flight; wait for the fresh rings.
      (void)co_await channels_[chan]->recovered.wait();
    }
    if (*stop) {
      fail(CmdOutcome::Kind::aborted);
      co_return;
    }
    auto token = transport_.issue(chan, args.cookie);
    if (!token) {
      // Issue fails when the queue memory is unreachable (NTB link down) or
      // the ring is full of timed-out entries; both deserve a bounded retry.
      if (cfg_.cmd_timeout_ns == 0 || attempt >= cfg_.cmd_retry_limit) {
        // Budget spent with issue itself refusing: grant the same one-shot
        // channel rebuild as the timeout path below. This matters for
        // narrow tenant CID windows — a lost CQE leaves its CID busy until
        // a rebuild, and once a window is fully clogged with leaked CIDs no
        // command can issue, so nothing would ever reach the timeout path
        // to request the rebuild (a permanent wedge, not a transient).
        if (cfg_.cmd_timeout_ns > 0 && !recovered_once) {
          recovered_once = true;
          attempt = 0;
          request_recovery(chan);
          mark(obs::Phase::recovery);
          continue;
        }
        fail(CmdOutcome::Kind::transport_error, token.status());
        co_return;
      }
      ++attempt;
      if (cfg_.counters.retries != nullptr) ++*cfg_.counters.retries;
      co_await sim::delay(engine_, backoff_ns(cfg_.retry_backoff_ns, attempt, cfg_.retry_backoff_max_ns));
      mark(obs::Phase::recovery);
      continue;
    }
    // The command store is a posted write (no simulated CPU stall), so this
    // span has zero duration — it anchors the phase sequence and carries the
    // (qid, cid) the device-side spans correlate on.
    if (cfg_.trace_style == TraceStyle::nvme) mark(obs::Phase::sq_write, *token);
    if (cfg_.trace_style != TraceStyle::none && args.trace != 0) {
      tracer.bind(qid, *token, args.trace);
    }
    const std::uint64_t seq = ++cmd_seq_;
    PendingCmd* cmd = alloc_cmd();
    cmd->seq = seq;
    if (!arm(chan, *token, cmd)) {
      free_cmd(cmd);
      if (cfg_.trace_style != TraceStyle::none && args.trace != 0) {
        tracer.unbind(qid, *token);
      }
      fail(CmdOutcome::Kind::transport_error,
           Status(Errc::internal, "completion token beyond pending-table cap"));
      co_return;
    }
    transport_.on_armed(chan);  // completions are coming: wake an idle poller

    if (cfg_.cmd_timeout_ns > 0) {
      // Deadline watchdog: resolves the wait with timed_out unless the real
      // completion (or a recovery sweep) got there first. `seq` guards
      // against the token having been reused by a later submission.
      engine_.after(cfg_.cmd_timeout_ns, [this, stop, chan, token = *token, seq]() {
        if (*stop) return;
        PendingCmd* doomed = lookup(chan, token);
        if (doomed == nullptr || doomed->seq != seq) return;
        disarm(chan, token);
        if (cfg_.counters.timeouts != nullptr) ++*cfg_.counters.timeouts;
        CmdOutcome out;
        out.kind = CmdOutcome::Kind::timed_out;
        resolve(doomed, std::move(out));
      });
    }

    // Doorbell-latency delay, then one tail store for the burst this
    // command joined (or its own store when coalescing is off).
    Status rung = co_await flush(chan);
    if (!rung && transport_.ring_failure_fails_attempt()) {
      // Message transports: the SEND is the submission, so a failed ring
      // dooms the staged attempt. Unarm it (seq-guarded) and retry. Nobody
      // awaits this command yet, so any resolution that raced in during the
      // flush is dropped with the node.
      if (PendingCmd* armed = lookup(chan, *token); armed == cmd && cmd->seq == seq) {
        disarm(chan, *token);
      }
      free_cmd(cmd);
      if (cfg_.trace_style != TraceStyle::none && args.trace != 0) {
        tracer.unbind(qid, *token);
      }
      if (cfg_.cmd_timeout_ns == 0 || attempt >= cfg_.cmd_retry_limit) {
        fail(CmdOutcome::Kind::transport_error, std::move(rung));
        co_return;
      }
      ++attempt;
      if (cfg_.counters.retries != nullptr) ++*cfg_.counters.retries;
      co_await sim::delay(engine_, backoff_ns(cfg_.retry_backoff_ns, attempt, cfg_.retry_backoff_max_ns));
      mark(obs::Phase::recovery);
      continue;
    }
    if (cfg_.trace_style == TraceStyle::nvme) {
      mark(obs::Phase::doorbell, *token);
    } else if (cfg_.trace_style == TraceStyle::fabric) {
      mark(obs::Phase::capsule_send, *token);
    }

    CmdOutcome outcome = co_await OutcomeAwaiter{cmd};
    free_cmd(cmd);
    outcome.token = *token;
    mark(obs::Phase::cq_wait, *token);
    if (cfg_.trace_style != TraceStyle::none && args.trace != 0) {
      tracer.unbind(qid, *token);
    }
    if (*stop) {
      fail(CmdOutcome::Kind::aborted);
      co_return;
    }
    const bool retry_status = outcome.kind == CmdOutcome::Kind::completed &&
                              outcome.status != 0 && cfg_.cmd_timeout_ns > 0 &&
                              transport_.retryable(outcome.status);
    if (outcome.kind == CmdOutcome::Kind::completed && !retry_status) {
      promise.set(std::move(outcome));  // genuine completion: success or final error
      co_return;
    }
    ++attempt;
    if (attempt <= cfg_.cmd_retry_limit) {
      if (cfg_.counters.retries != nullptr) ++*cfg_.counters.retries;
      co_await sim::delay(engine_, backoff_ns(cfg_.retry_backoff_ns, attempt, cfg_.retry_backoff_max_ns));
      mark(obs::Phase::recovery);
      continue;
    }
    // Retry budget spent. A command that keeps timing out means the channel
    // itself is broken (lost CQE => permanent phase hole; controller reset
    // => rings deleted); rebuild it once, then run one fresh retry round.
    if (recovered_once) {
      fail(CmdOutcome::Kind::timed_out);
      co_return;
    }
    recovered_once = true;
    attempt = 0;
    request_recovery(chan);
    mark(obs::Phase::recovery);
  }
}

bool IoEngine::complete(std::uint32_t chan, std::uint16_t token, std::uint16_t status,
                        std::uint64_t aux) {
  PendingCmd* cmd = lookup(chan, token);
  if (cmd == nullptr) {
    // Expected under fault injection: the command timed out and was
    // retried, and this is the original submission completing late.
    if (cfg_.counters.late_completions != nullptr) ++*cfg_.counters.late_completions;
    return false;
  }
  disarm(chan, token);
  CmdOutcome out;
  out.kind = CmdOutcome::Kind::completed;
  out.status = status;
  out.aux = aux;
  resolve(cmd, std::move(out));
  return true;
}

// --- recovery -----------------------------------------------------------------

void IoEngine::request_recovery(std::uint32_t chan) {
  Channel& ch = *channels_[chan];
  if (ch.recovering || *stop_) return;
  ch.recovering = true;
  ch.recovered.reset();
  if (cfg_.counters.recoveries != nullptr) ++*cfg_.counters.recoveries;
  transport_.start_recovery(chan);
}

void IoEngine::fail_pending(std::uint32_t chan) {
  // Collect first: resolve() schedules resumptions that may submit again
  // and re-populate the table while we iterate. Ascending token order
  // preserves the wake order of the old sorted pending map.
  auto& table = channels_[chan]->pending;
  std::vector<PendingCmd*> doomed;
  for (auto& slot : table) {
    if (slot == nullptr) continue;
    doomed.push_back(slot);
    slot = nullptr;
    --pending_count_;
  }
  for (PendingCmd* cmd : doomed) {
    CmdOutcome out;
    out.kind = CmdOutcome::Kind::timed_out;
    resolve(cmd, std::move(out));
  }
}

void IoEngine::fail_all_pending() {
  for (std::uint32_t c = 0; c < cfg_.channels; ++c) fail_pending(c);
}

void IoEngine::finish_recovery(std::uint32_t chan) {
  Channel& ch = *channels_[chan];
  ch.recovering = false;
  ch.recovered.set();
}

// --- pi_verify shadow tuples --------------------------------------------------

void IoEngine::enable_pi(mem::PhysMem& dram, std::uint32_t block_size) {
  pi_dram_ = &dram;
  pi_block_size_ = block_size;
}

void IoEngine::pi_note_submit(const Request& request) {
  if (pi_dram_ == nullptr) return;
  if (request.op == Op::write) {
    // Generate the shadow tuples over the user buffer before any copy:
    // everything downstream (bounce copy, DMA, media) is covered.
    const std::uint32_t bs = pi_block_size_;
    Bytes buf(static_cast<std::uint64_t>(request.nblocks) * bs);
    if (!pi_dram_->read(request.buffer_addr, buf)) return;
    auto& istats = integrity::stats();
    for (std::uint32_t i = 0; i < request.nblocks; ++i) {
      const std::uint64_t lba = request.lba + i;
      shadow_pi_[lba] = integrity::generate_pi(
          ConstByteSpan(buf).subspan(static_cast<std::size_t>(i) * bs, bs), lba);
      ++istats.pi_generated;
    }
  } else if (request.op == Op::write_zeroes || request.op == Op::discard) {
    // Deallocation drops the tuples, mirroring the device's PI semantics.
    for (std::uint64_t lba = request.lba; lba < request.lba + request.nblocks; ++lba) {
      shadow_pi_.erase(lba);
    }
  }
}

bool IoEngine::pi_check_read(const Request& request) {
  if (pi_dram_ == nullptr) return true;
  const std::uint32_t bs = pi_block_size_;
  Bytes buf(static_cast<std::uint64_t>(request.nblocks) * bs);
  if (!pi_dram_->read(request.buffer_addr, buf)) return true;
  auto& istats = integrity::stats();
  for (std::uint32_t i = 0; i < request.nblocks; ++i) {
    const std::uint64_t lba = request.lba + i;
    auto it = shadow_pi_.find(lba);
    if (it == shadow_pi_.end()) continue;  // not written by us: nothing to check
    ++istats.pi_verified;
    if (integrity::verify_pi(it->second,
                             ConstByteSpan(buf).subspan(static_cast<std::size_t>(i) * bs, bs),
                             lba) != integrity::PiCheck::ok) {
      return false;
    }
  }
  return true;
}

}  // namespace nvmeshare::block
