// Multi-queue I/O engine: the shared submission/completion/retry core that
// all three data paths (driver::Client, driver::LocalDriver,
// nvmeof::Initiator) instantiate instead of hand-rolling their own loops.
//
// The engine owns everything that is the same across backends:
//  - a set of per-channel queue slots with a pluggable scheduler
//    (round-robin or least-inflight) behind one acquire() facade;
//  - doorbell write coalescing: submissions that land inside one
//    doorbell-latency window share a single ring, so sustained load rings
//    the doorbell less than once per command (shadow-doorbell-style
//    batching; off by default, the seed rings once per command);
//  - the pending-command table with per-command deadline watchdogs,
//    exponential-backoff retries, and one channel-recovery cycle before a
//    command is failed (the machinery previously private to Client);
//  - the pi_verify shadow-tuple table (client-side DIX: generate a DIF
//    tuple per written block, verify returned read data against it).
//
// What stays in the backend is the transport personality, expressed as an
// IoTransport: how a command is placed on the wire (SQE push vs. capsule
// staging), what one doorbell write means (tail store vs. RDMA SEND burst),
// which NVMe statuses are worth retrying, and how a broken channel is
// rebuilt (mailbox re-create vs. fabric reconnect).
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "integrity/integrity.hpp"
#include "mem/phys_mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/task.hpp"

namespace nvmeshare::block {

struct Request;

/// Ceiling on channels per engine; matches the largest queue-pair batch the
/// manager mailbox can grant in one request (driver/mailbox.hpp).
inline constexpr std::uint32_t kMaxEngineChannels = 16;

/// Backend-neutral outcome of one engine run: either a genuine completion
/// (carrying the wire status), a deadline expiry, a transport-level error
/// (SQ unreachable, SEND failed), or an abort because the backend stopped.
struct CmdOutcome {
  enum class Kind : std::uint8_t { completed, timed_out, transport_error, aborted };
  Kind kind = Kind::completed;
  std::uint16_t status = 0;  ///< NVMe status field (kind == completed)
  std::uint16_t token = 0;   ///< completion token of the final attempt
  Status transport;          ///< first failure (kind == transport_error)
  std::uint64_t aux = 0;     ///< transport extra (NVMe-oF: response data digest)

  [[nodiscard]] bool ok() const noexcept {
    return kind == Kind::completed && status == 0;
  }
};

/// The per-backend transport personality the engine drives. One channel ==
/// one queue pair (NVMe SQ/CQ or RDMA QP). All hooks run on the simulation
/// thread; issue() and ring() must not suspend (posted writes only).
class IoTransport {
 public:
  virtual ~IoTransport() = default;

  /// Place the command on channel `chan` without ringing any doorbell
  /// (push the SQE / stage the capsule). Returns the completion token the
  /// transport will later hand to IoEngine::complete() (NVMe cid, capsule
  /// cid). Fails when the queue memory is unreachable or the ring is full.
  virtual Result<std::uint16_t> issue(std::uint32_t chan, void* cookie) = 0;

  /// One doorbell write for everything issued on `chan` since the last
  /// ring (SQ tail store; NVMe-oF: post the staged SENDs).
  virtual Status ring(std::uint32_t chan) = 0;

  /// Whether a ring() failure dooms the staged attempts (true for message
  /// transports, where the SEND *is* the submission) or is absorbed by the
  /// deadline watchdog (NVMe doorbells to an unreachable BAR).
  [[nodiscard]] virtual bool ring_failure_fails_attempt() const { return false; }

  /// Is this wire status worth a bounded resubmission?
  [[nodiscard]] virtual bool retryable(std::uint16_t status) const = 0;

  /// Rebuild channel `chan` (delete/re-create the queue pair, reconnect).
  /// The transport must eventually call IoEngine::finish_recovery(chan).
  virtual void start_recovery(std::uint32_t chan) = 0;

  /// Queue id used for trace spans and (qid, cid) cross-host correlation.
  [[nodiscard]] virtual std::uint16_t trace_qid(std::uint32_t chan) const = 0;

  /// A command was armed on `chan` (completions are coming): wake an idle
  /// completion poller if the backend parks one.
  virtual void on_armed(std::uint32_t chan) { (void)chan; }
};

/// Legacy per-backend counters the engine feeds so existing dashboards and
/// tests keep seeing nvmeshare.client.* / nvmeshare.nvmeof_initiator.*
/// names for timeout/retry/recovery events. Null pointers are skipped.
struct EngineCounters {
  obs::Counter* timeouts = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* recoveries = nullptr;
  obs::Counter* late_completions = nullptr;
};

class IoEngine {
 public:
  enum class Scheduler : std::uint8_t {
    round_robin,     ///< rotate across channels with a free slot
    least_inflight,  ///< pick the channel with the fewest commands in flight
  };
  /// How the engine annotates trace spans around its awaits.
  enum class TraceStyle : std::uint8_t {
    none,    ///< no marks (local driver)
    nvme,    ///< sq_write / doorbell / cq_wait (queue-pair backends)
    fabric,  ///< capsule_send / cq_wait (message backends)
  };

  struct Config {
    std::string backend = "engine";  ///< metric component: engine.<backend>.*
    std::uint32_t channels = 1;
    std::uint32_t queue_depth = 32;    ///< in-flight ceiling per channel
    std::uint16_t queue_entries = 0;   ///< ring entries per channel; 0 = no ring
    Scheduler scheduler = Scheduler::round_robin;
    /// Ring once per submission burst instead of once per command. Off by
    /// default: the seed path rings per command, and fault-free runs must
    /// execute the exact seed instruction stream.
    bool coalesce_doorbells = false;
    sim::Duration doorbell_ns = 80;  ///< doorbell store + fence CPU cost
    // Deadline/retry knobs, same semantics as before the refactor: a zero
    // timeout disables the watchdog, retries, and channel recovery.
    sim::Duration cmd_timeout_ns = 0;
    std::uint32_t cmd_retry_limit = 3;
    sim::Duration retry_backoff_ns = 100'000;
    /// Ceiling on a single backoff delay. A plain `base << attempts` wraps
    /// the 64-bit Duration for large bases; every backoff clamps here.
    sim::Duration retry_backoff_max_ns = 100'000'000;
    // QoS pacing (token bucket over commands and payload bytes). Both rates
    // zero (the default) leave the pacer disarmed, so unconfigured runs
    // execute the exact seed instruction stream.
    std::uint64_t qos_iops_limit = 0;   ///< commands per second; 0 = off
    std::uint64_t qos_bytes_per_s = 0;  ///< payload bytes per second; 0 = off
    std::uint32_t qos_burst_cmds = 32;  ///< command-bucket capacity
    std::uint64_t qos_burst_bytes = 1u << 20;  ///< byte-bucket capacity
    TraceStyle trace_style = TraceStyle::none;
    EngineCounters counters;
  };

  /// Attach-time validation shared by every backend. The load-bearing rule:
  /// queue_depth < queue_entries — a depth equal to entries makes SQ-full
  /// indistinguishable from SQ-empty on wrap, wedging the ring.
  [[nodiscard]] static Status validate(const Config& cfg);

  /// Exponential backoff before retry `attempt` (1-based): `base`, doubling
  /// per attempt, clamped to `max`. The clamp is compared before shifting —
  /// `base << n` on a 64-bit Duration wraps (and can go negative, i.e. a
  /// zero-length sleep) once the product crosses 2^63.
  [[nodiscard]] static sim::Duration backoff_ns(sim::Duration base, std::uint32_t attempt,
                                                sim::Duration max = 100'000'000);

  IoEngine(sim::Engine& engine, IoTransport& transport, std::shared_ptr<bool> stop,
           Config cfg);
  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  // --- slot accounting and channel scheduling -----------------------------

  /// A granted submission slot. `slot` is engine-global
  /// (chan * queue_depth + local index) so backends can key bounce
  /// partitions, PRP list pages, and capsule buffers directly on it.
  struct Grant {
    std::uint32_t chan = 0;
    std::uint32_t slot = 0;
  };

  /// Wait for a free slot, then pick a channel by the configured policy.
  /// Channels mid-recovery are skipped while any surviving channel has
  /// capacity (drain-to-survivors).
  [[nodiscard]] sim::Future<Grant> acquire();
  void release(const Grant& grant);

  // --- the shared submission/completion/retry core ------------------------

  struct RunArgs {
    Grant grant;
    void* cookie = nullptr;           ///< passed through to IoTransport::issue
    obs::PhaseMarker* ph = nullptr;   ///< optional phase marks (sq_write, ...)
    std::uint64_t trace = 0;          ///< trace id for (qid, cid) binding
    std::uint64_t bytes = 0;          ///< payload size, for byte-rate pacing
  };

  /// Run one command to a final outcome: issue, coalesced doorbell,
  /// completion wait bounded by the deadline watchdog, bounded
  /// exponential-backoff retries, and one channel-recovery cycle before
  /// giving up. Post-completion data handling (bounce copy-back, digest
  /// or PI verify) stays with the caller, who may call run() again for a
  /// verify-failure resubmission.
  [[nodiscard]] sim::Future<CmdOutcome> run(RunArgs args);

  /// Deliver a completion observed by the backend's poller. Returns false
  /// for an unknown (already timed out / swept) token — counted as a late
  /// completion.
  bool complete(std::uint32_t chan, std::uint16_t token, std::uint16_t status,
                std::uint64_t aux = 0);

  /// True when no command is in flight anywhere (pollers park on this).
  [[nodiscard]] bool idle() const noexcept { return pending_count_ == 0; }

  // --- channel recovery ---------------------------------------------------

  /// Resolve every pending command on `chan` with a timed_out outcome (the
  /// waiting run() loops classify and retry); recovery sweeps call this.
  void fail_pending(std::uint32_t chan);
  /// fail_pending() across all channels (crash / stop paths).
  void fail_all_pending();
  /// Transport recovery finished (success or not): wake waiting commands.
  void finish_recovery(std::uint32_t chan);
  [[nodiscard]] bool recovering(std::uint32_t chan) const {
    return channels_[chan]->recovering;
  }

  // --- pi_verify shadow tuples (moved from driver::Client) ----------------

  /// Arm the shadow-PI table: tuples are generated/verified over the user
  /// buffer in `dram` with `block_size`-byte logical blocks.
  void enable_pi(mem::PhysMem& dram, std::uint32_t block_size);
  [[nodiscard]] bool pi_enabled() const noexcept { return pi_dram_ != nullptr; }
  /// Write path: remember a tuple per block of the user buffer (before any
  /// bounce copy, so everything downstream is covered). write_zeroes and
  /// discard drop the tuples, mirroring device PI semantics.
  void pi_note_submit(const Request& request);
  /// Read path: check returned data against the shadow tuples. Blocks this
  /// engine never wrote have no tuple and are skipped.
  [[nodiscard]] bool pi_check_read(const Request& request);

  [[nodiscard]] std::uint32_t channels() const noexcept { return cfg_.channels; }
  [[nodiscard]] std::uint32_t total_depth() const noexcept {
    return cfg_.channels * cfg_.queue_depth;
  }
  [[nodiscard]] std::uint32_t inflight(std::uint32_t chan) const {
    return channels_[chan]->inflight;
  }
  /// Doorbell writes / coalesced command counts, summed across channels
  /// (the per-channel values live in the metrics registry).
  [[nodiscard]] std::uint64_t doorbell_writes() const;
  [[nodiscard]] std::uint64_t coalesced_cmds() const;

  // --- QoS pacing ---------------------------------------------------------

  /// Whether either token bucket is armed (a nonzero rate was configured).
  [[nodiscard]] bool qos_enabled() const noexcept {
    return cfg_.qos_iops_limit != 0 || cfg_.qos_bytes_per_s != 0;
  }
  /// Nanoseconds submissions spent parked in the pacer, and commands that
  /// were deferred at least once.
  [[nodiscard]] std::uint64_t qos_throttle_ns() const noexcept {
    return qos_throttle_ns_.value();
  }
  [[nodiscard]] std::uint64_t qos_deferred_cmds() const noexcept {
    return qos_deferred_cmds_.value();
  }

 private:
  /// Fixed-point scale for token-bucket balances: one token is worth 1e9
  /// scaled units, so a rate of R tokens/second earns exactly R scaled
  /// units per simulated nanosecond — integer math, no drift.
  static constexpr std::int64_t kTokenScale = 1'000'000'000;

  /// SPDK-style token bucket. Charging first and sleeping off a negative
  /// balance serialises concurrent submitters deterministically: each
  /// charger sees the deficit left by the previous one and queues behind it.
  struct TokenBucket {
    std::uint64_t rate = 0;     ///< tokens per second; 0 = disarmed
    std::int64_t scaled = 0;    ///< balance x kTokenScale (may go negative)
    std::int64_t capacity = 0;  ///< burst ceiling x kTokenScale
    sim::Time last = 0;         ///< last refill timestamp
    void refill(sim::Time now);
    /// Charge `tokens` and return how long the caller must stall (ns).
    [[nodiscard]] sim::Duration charge(sim::Time now, std::uint64_t tokens);
  };

  /// One coalesced doorbell burst: the first command to stage schedules the
  /// ring doorbell_ns later; everything staged meanwhile shares it.
  struct FlushBatch {
    explicit FlushBatch(sim::Engine& engine) : done(engine) {}
    sim::Event done;
    Status status = Status::ok();
    std::uint32_t staged = 0;
  };

  /// One in-flight command attempt. Nodes come from a chunked free-list
  /// arena and are indexed by completion token in a per-channel
  /// direct-mapped table, so the submit/complete hot path performs no heap
  /// allocation and no tree walk (the former std::map + per-attempt
  /// sim::Promise both allocated). The one-shot channel the waiting
  /// run_task() parks on is intrusive: complete()/the watchdog store the
  /// outcome here and schedule the resume through the engine queue —
  /// identical wake-up ordering to the Promise it replaces.
  struct PendingCmd {
    CmdOutcome outcome;
    std::uint64_t seq = 0;  ///< guards the token against reuse by a retry
    std::coroutine_handle<> waiter;
    bool resolved = false;
    PendingCmd* next_free = nullptr;
  };
  /// Awaitable for the command outcome (`co_await OutcomeAwaiter{...}`).
  struct OutcomeAwaiter {
    PendingCmd* cmd;
    [[nodiscard]] bool await_ready() const noexcept { return cmd->resolved; }
    void await_suspend(std::coroutine_handle<> h) noexcept { cmd->waiter = h; }
    [[nodiscard]] CmdOutcome await_resume() noexcept { return std::move(cmd->outcome); }
  };

  struct Channel {
    Channel(sim::Engine& engine, const std::string& prefix);
    std::vector<std::uint32_t> free_slots;  ///< local indices, LIFO
    std::uint32_t inflight = 0;
    bool recovering = false;
    sim::Event recovered;  ///< set whenever no recovery is running
    std::shared_ptr<FlushBatch> open_batch;
    /// Direct map: completion token -> armed command. Grown on demand to
    /// the largest token the transport hands out (NVMe cid < ring entries;
    /// NVMe-oF cid < channels * queue_depth).
    std::vector<PendingCmd*> pending;
    // Per-channel metrics (satellite: nvmeshare.engine.<backend>.qp<N>.*).
    obs::Gauge inflight_gauge;
    obs::Counter doorbell_writes;
    obs::Counter coalesced_cmds;
  };

  sim::Task acquire_task(sim::Promise<Grant> promise);
  sim::Task run_task(RunArgs args, sim::Promise<CmdOutcome> promise);
  sim::Task flush_task(std::uint32_t chan, std::shared_ptr<FlushBatch> batch);
  /// Doorbell-latency delay, then one ring for the burst this command
  /// joined; resolves with the ring status.
  [[nodiscard]] sim::Future<Status> flush(std::uint32_t chan);
  sim::Task flush_wait_task(std::uint32_t chan, sim::Promise<Status> promise);
  /// Pick a channel for the next grant; requires at least one free slot
  /// somewhere (the slot semaphore guarantees it).
  [[nodiscard]] std::uint32_t pick_channel();
  void request_recovery(std::uint32_t chan);

  // --- pending-command arena ----------------------------------------------
  [[nodiscard]] PendingCmd* alloc_cmd();
  void free_cmd(PendingCmd* cmd) noexcept;
  /// The armed command for (chan, token), or nullptr.
  [[nodiscard]] PendingCmd* lookup(std::uint32_t chan, std::uint16_t token) const;
  /// One past the largest completion token a well-behaved transport can
  /// hand out; bounds the per-channel pending-table growth.
  [[nodiscard]] std::uint32_t token_cap() const noexcept {
    return std::max<std::uint32_t>(cfg_.queue_entries, total_depth());
  }
  /// Arm (chan, token) -> cmd. Returns false (without arming) for a token
  /// beyond token_cap() — the caller fails the attempt as a transport error.
  [[nodiscard]] bool arm(std::uint32_t chan, std::uint16_t token, PendingCmd* cmd);
  void disarm(std::uint32_t chan, std::uint16_t token) noexcept;
  /// Store the outcome and wake the waiting run_task (via the engine queue,
  /// preserving deterministic wake-up order). Call after disarm().
  void resolve(PendingCmd* cmd, CmdOutcome outcome);

  sim::Engine& engine_;
  IoTransport& transport_;
  std::shared_ptr<bool> stop_;
  Config cfg_;

  std::vector<std::unique_ptr<Channel>> channels_;
  std::unique_ptr<sim::Semaphore> slots_;  ///< total free slots, all channels
  std::uint32_t rr_cursor_ = 0;

  static constexpr std::size_t kCmdChunk = 64;  ///< arena growth quantum
  std::vector<std::unique_ptr<PendingCmd[]>> cmd_chunks_;
  std::size_t cmd_chunk_used_ = kCmdChunk;  ///< forces the first allocation
  PendingCmd* cmd_free_ = nullptr;
  std::size_t pending_count_ = 0;  ///< armed commands, all channels
  std::uint64_t cmd_seq_ = 0;

  TokenBucket qos_cmds_;
  TokenBucket qos_bytes_;
  obs::Counter qos_throttle_ns_;
  obs::Counter qos_deferred_cmds_;

  mem::PhysMem* pi_dram_ = nullptr;
  std::uint32_t pi_block_size_ = 0;
  std::unordered_map<std::uint64_t, integrity::ProtectionInfo> shadow_pi_;
};

}  // namespace nvmeshare::block
