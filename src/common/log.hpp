// Tiny leveled logger. Off by default above `warn` so that simulations are
// quiet; tests and examples can raise the level. Not thread-safe by design:
// the whole simulator is single-threaded (discrete-event).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace nvmeshare::log {

enum class Level : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Global threshold; messages below it are discarded.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Current simulated time used to stamp messages; the sim engine installs a
/// provider on construction. Returns -1 when no simulation is running.
using TimeProvider = long long (*)();
void set_time_provider(TimeProvider provider) noexcept;

/// Emit one message (already formatted) at `level` from component `tag`.
void emit(Level level, std::string_view tag, std::string_view message);

namespace detail {
class LineStream {
 public:
  LineStream(Level level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LineStream() { emit(level_, tag_, stream_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level level_;
  std::string_view tag_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace nvmeshare::log

// Streaming log macros: NVS_LOG(info, "nvme") << "CC.EN set";
#define NVS_LOG(level, tag)                                              \
  if (::nvmeshare::log::Level::level < ::nvmeshare::log::threshold()) { \
  } else                                                                 \
    ::nvmeshare::log::detail::LineStream(::nvmeshare::log::Level::level, (tag))
