// Tiny leveled logger. Off by default above `warn` so that simulations are
// quiet; tests and examples can raise the level. Not thread-safe by design:
// the whole simulator is single-threaded (discrete-event).
//
// Besides printing, the logger can keep a "flight recorder": a bounded ring
// of the most recent formatted lines at *all* levels, regardless of the
// print threshold. The test harness enables it and dumps the ring when a
// test fails, so quiet-by-default logging doesn't hide the interleaving
// that led to a bug.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace nvmeshare::log {

enum class Level : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Global threshold; messages below it are not printed (but still reach the
/// flight recorder when one is enabled).
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Current simulated time used to stamp messages; the sim engine installs a
/// provider on construction. Returns -1 when no simulation is running.
using TimeProvider = long long (*)();
void set_time_provider(TimeProvider provider) noexcept;
/// Timestamp from the installed provider (-1 when none); exposed so other
/// subsystems (e.g. the tracer) can share the logger's clock.
long long now() noexcept;

/// Emit one message (already formatted) at `level` from component `tag`.
void emit(Level level, std::string_view tag, std::string_view message);

// --- flight recorder ---------------------------------------------------------
/// Start capturing the last `capacity` formatted lines (all levels).
void set_flight_recorder(std::size_t capacity) noexcept;
/// Stop capturing and free the ring.
void disable_flight_recorder() noexcept;
/// Drop captured lines, keeping capture enabled.
void clear_flight_recorder() noexcept;
[[nodiscard]] bool flight_recorder_enabled() noexcept;
/// Captured lines, oldest first.
[[nodiscard]] std::vector<std::string> flight_recorder_lines();
/// Print the captured lines to `out` with a header/footer banner.
void dump_flight_recorder(std::FILE* out);

/// True when a message at `level` has any observer — it clears the print
/// threshold or a flight recorder is capturing. The NVS_LOG macro uses this
/// so disabled levels cost one comparison and no formatting.
[[nodiscard]] inline bool should_log(Level level) noexcept {
  return level >= threshold() || flight_recorder_enabled();
}

namespace detail {
class LineStream {
 public:
  LineStream(Level level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LineStream() { emit(level_, tag_, stream_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level level_;
  std::string_view tag_;
  std::ostringstream stream_;
};

/// Swallows a fully-streamed LineStream so the ternary below has `void` on
/// both arms. `&` binds looser than `<<`, so every chained insertion runs
/// before the match — the glog trick.
struct Voidify {
  void operator&(const LineStream&) {}
};
}  // namespace detail

}  // namespace nvmeshare::log

// Streaming log macros: NVS_LOG(info, "nvme") << "CC.EN set";
//
// Expands to a single expression (ternary + operator&), so it nests safely
// in un-braced if/else — unlike the previous if/else expansion, where
//   if (cond) NVS_LOG(info, "t") << x; else other();
// silently bound `else other()` to the macro's internal else.
#define NVS_LOG(level, tag)                                                    \
  !::nvmeshare::log::should_log(::nvmeshare::log::Level::level)                \
      ? (void)0                                                                \
      : ::nvmeshare::log::detail::Voidify() &                                  \
            ::nvmeshare::log::detail::LineStream(::nvmeshare::log::Level::level, (tag))
