// Latency sample collection and summary statistics. The benchmark harness
// reports the same shape as the paper's Figure 10: boxplots whose whiskers
// run from the minimum to the 99th percentile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace nvmeshare {

/// Accumulates raw latency samples (nanoseconds) and computes order
/// statistics on demand.
class LatencyRecorder {
 public:
  void add(sim::Duration ns) { samples_.push_back(ns); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() { samples_.clear(); }

  /// Append every sample of `other`; used by the multi-host benches to fold
  /// per-host recorders into one cluster-wide distribution.
  void merge(const LatencyRecorder& other);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] const std::vector<sim::Duration>& samples() const noexcept { return samples_; }

  /// Percentile by linear interpolation between closest ranks. `p` is
  /// clamped to [0,100]. Returns 0.0 when there are no samples (asserts in
  /// debug builds — callers should check count() first).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] sim::Duration min() const;
  [[nodiscard]] sim::Duration max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

 private:
  void ensure_sorted() const;

  std::vector<sim::Duration> samples_;
  mutable std::vector<sim::Duration> sorted_;  // lazily materialized
};

/// Summary of one boxplot: the quantities Figure 10 displays.
struct BoxSummary {
  std::string label;
  std::size_t count = 0;
  double min_us = 0;
  double p25_us = 0;
  double p50_us = 0;
  double p75_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double mean_us = 0;
  double stddev_us = 0;

  static BoxSummary from(std::string label, const LatencyRecorder& rec);
};

/// One formatted table row (fixed-width columns) for a BoxSummary.
std::string format_box_row(const BoxSummary& box);
/// Header matching format_box_row.
std::string format_box_header();

/// Render an ASCII boxplot panel (min..p99 whiskers, p25/p50/p75 box) for a
/// set of summaries on a shared microsecond axis, mimicking Figure 10.
std::string render_ascii_boxplot(const std::vector<BoxSummary>& boxes, int width = 72);

}  // namespace nvmeshare
