#include "common/rng.hpp"

#include <cmath>

namespace nvmeshare {

namespace {
// splitmix64: seeds the xoshiro state from a single 64-bit seed.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  // xoshiro256++
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire-style rejection for unbiased bounded values.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() noexcept {
  // Box-Muller; discard the second variate so each call consumes a fixed
  // amount of the stream (keeps per-call determinism simple).
  double u1 = uniform01();
  double u2 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::lognormal(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

Rng Rng::fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace nvmeshare
