#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace nvmeshare {

void LatencyRecorder::ensure_sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  if (&other == this) {  // self-merge: avoid inserting from an invalidating range
    auto copy = samples_;
    samples_.insert(samples_.end(), copy.begin(), copy.end());
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

double LatencyRecorder::percentile(double p) const {
  assert(!samples_.empty());
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (sorted_.size() == 1) return static_cast<double>(sorted_[0]);
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted_[lo]) +
         frac * static_cast<double>(sorted_[hi] - sorted_[lo]);
}

sim::Duration LatencyRecorder::min() const {
  assert(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

sim::Duration LatencyRecorder::max() const {
  assert(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double LatencyRecorder::mean() const {
  assert(!samples_.empty());
  double sum = 0;
  for (auto s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

double LatencyRecorder::stddev() const {
  assert(!samples_.empty());
  const double m = mean();
  double acc = 0;
  for (auto s : samples_) {
    const double d = static_cast<double>(s) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

BoxSummary BoxSummary::from(std::string label, const LatencyRecorder& rec) {
  BoxSummary b;
  b.label = std::move(label);
  b.count = rec.count();
  if (rec.count() == 0) return b;
  b.min_us = ns_to_us(rec.min());
  b.p25_us = rec.percentile(25) / 1000.0;
  b.p50_us = rec.percentile(50) / 1000.0;
  b.p75_us = rec.percentile(75) / 1000.0;
  b.p99_us = rec.percentile(99) / 1000.0;
  b.max_us = ns_to_us(rec.max());
  b.mean_us = rec.mean() / 1000.0;
  b.stddev_us = rec.stddev() / 1000.0;
  return b;
}

std::string format_box_header() {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s %8s %9s %9s %9s %9s %9s %9s %9s", "scenario", "ops",
                "min_us", "p25_us", "p50_us", "p75_us", "p99_us", "max_us", "mean_us");
  return buf;
}

std::string format_box_row(const BoxSummary& box) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s %8zu %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f",
                box.label.c_str(), box.count, box.min_us, box.p25_us, box.p50_us, box.p75_us,
                box.p99_us, box.max_us, box.mean_us);
  return buf;
}

std::string render_ascii_boxplot(const std::vector<BoxSummary>& boxes, int width) {
  if (boxes.empty()) return {};
  double lo = boxes[0].min_us, hi = boxes[0].p99_us;
  for (const auto& b : boxes) {
    lo = std::min(lo, b.min_us);
    hi = std::max(hi, b.p99_us);
  }
  if (hi <= lo) hi = lo + 1.0;
  const double span = hi - lo;
  auto col = [&](double v) {
    int c = static_cast<int>(std::lround((v - lo) / span * (width - 1)));
    return std::clamp(c, 0, width - 1);
  };

  std::string out;
  for (const auto& b : boxes) {
    std::string line(static_cast<std::size_t>(width), ' ');
    // Whiskers run min..p99 (paper: "whiskers depict the range from the
    // minimum to the 99th percentile").
    for (int c = col(b.min_us); c <= col(b.p99_us); ++c) line[static_cast<std::size_t>(c)] = '-';
    for (int c = col(b.p25_us); c <= col(b.p75_us); ++c) line[static_cast<std::size_t>(c)] = '=';
    line[static_cast<std::size_t>(col(b.p50_us))] = '#';
    line[static_cast<std::size_t>(col(b.min_us))] = '|';
    line[static_cast<std::size_t>(col(b.p99_us))] = '|';
    char label[64];
    std::snprintf(label, sizeof(label), "%-28.28s ", b.label.c_str());
    out += label;
    out += line;
    out += '\n';
  }
  char axis[128];
  std::snprintf(axis, sizeof(axis), "%-28s %-.2fus%*s%.2fus\n", "", lo, width - 12, "", hi);
  out += axis;
  return out;
}

}  // namespace nvmeshare
