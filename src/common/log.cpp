#include "common/log.hpp"

#include <cstdio>

namespace nvmeshare::log {

namespace {
Level g_threshold = Level::warn;
TimeProvider g_time_provider = nullptr;

const char* level_name(Level l) {
  switch (l) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO ";
    case Level::warn: return "WARN ";
    case Level::error: return "ERROR";
    case Level::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

Level threshold() noexcept { return g_threshold; }
void set_threshold(Level level) noexcept { g_threshold = level; }
void set_time_provider(TimeProvider provider) noexcept { g_time_provider = provider; }

void emit(Level level, std::string_view tag, std::string_view message) {
  if (level < g_threshold) return;
  long long now = g_time_provider ? g_time_provider() : -1;
  if (now >= 0) {
    std::fprintf(stderr, "[%12lldns] %s %-8.*s %.*s\n", now, level_name(level),
                 static_cast<int>(tag.size()), tag.data(), static_cast<int>(message.size()),
                 message.data());
  } else {
    std::fprintf(stderr, "[    --      ] %s %-8.*s %.*s\n", level_name(level),
                 static_cast<int>(tag.size()), tag.data(), static_cast<int>(message.size()),
                 message.data());
  }
}

}  // namespace nvmeshare::log
