#include "common/log.hpp"

#include <cstdio>

namespace nvmeshare::log {

namespace {
Level g_threshold = Level::warn;
TimeProvider g_time_provider = nullptr;

// Flight recorder ring. g_flight_capacity == 0 means disabled.
std::size_t g_flight_capacity = 0;
std::size_t g_flight_next = 0;
bool g_flight_wrapped = false;
std::vector<std::string>& flight_ring() {
  static std::vector<std::string> ring;
  return ring;
}

bool g_flight_active = false;  // mirrored into flight_recorder_enabled()

const char* level_name(Level l) {
  switch (l) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO ";
    case Level::warn: return "WARN ";
    case Level::error: return "ERROR";
    case Level::off: return "OFF  ";
  }
  return "?";
}

std::string format_line(Level level, std::string_view tag, std::string_view message) {
  char head[48];
  long long t = now();
  if (t >= 0) {
    std::snprintf(head, sizeof(head), "[%12lldns] %s ", t, level_name(level));
  } else {
    std::snprintf(head, sizeof(head), "[    --      ] %s ", level_name(level));
  }
  std::string line(head);
  line += tag;
  if (tag.size() < 8) line.append(8 - tag.size(), ' ');
  line += ' ';
  line += message;
  return line;
}
}  // namespace

Level threshold() noexcept { return g_threshold; }
void set_threshold(Level level) noexcept { g_threshold = level; }
void set_time_provider(TimeProvider provider) noexcept { g_time_provider = provider; }
long long now() noexcept { return g_time_provider ? g_time_provider() : -1; }

void set_flight_recorder(std::size_t capacity) noexcept {
  auto& ring = flight_ring();
  ring.clear();
  ring.reserve(capacity);
  g_flight_capacity = capacity;
  g_flight_next = 0;
  g_flight_wrapped = false;
  g_flight_active = capacity > 0;
}

void disable_flight_recorder() noexcept {
  flight_ring().clear();
  g_flight_capacity = 0;
  g_flight_next = 0;
  g_flight_wrapped = false;
  g_flight_active = false;
}

void clear_flight_recorder() noexcept {
  flight_ring().clear();
  g_flight_next = 0;
  g_flight_wrapped = false;
}

bool flight_recorder_enabled() noexcept { return g_flight_active; }

std::vector<std::string> flight_recorder_lines() {
  const auto& ring = flight_ring();
  std::vector<std::string> out;
  out.reserve(ring.size());
  if (g_flight_wrapped) {
    out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(g_flight_next),
               ring.end());
    out.insert(out.end(), ring.begin(),
               ring.begin() + static_cast<std::ptrdiff_t>(g_flight_next));
  } else {
    out.assign(ring.begin(), ring.end());
  }
  return out;
}

void dump_flight_recorder(std::FILE* out) {
  const auto lines = flight_recorder_lines();
  std::fprintf(out, "--- flight recorder: last %zu log line(s) ---\n", lines.size());
  for (const auto& line : lines) std::fprintf(out, "%s\n", line.c_str());
  std::fprintf(out, "--- end flight recorder ---\n");
}

void emit(Level level, std::string_view tag, std::string_view message) {
  const bool print = level >= g_threshold && level < Level::off;
  const bool capture = g_flight_active;
  if (!print && !capture) return;
  std::string line = format_line(level, tag, message);
  if (capture) {
    auto& ring = flight_ring();
    if (ring.size() < g_flight_capacity) {
      ring.push_back(print ? line : std::move(line));
    } else {
      ring[g_flight_next] = print ? line : std::move(line);
      g_flight_next = (g_flight_next + 1) % g_flight_capacity;
      g_flight_wrapped = true;
    }
  }
  if (print) std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace nvmeshare::log
