// Deterministic, seedable random number generation (xoshiro256++), plus the
// distribution helpers the latency models need. std::mt19937 + <random>
// distributions are not bit-stable across standard libraries; xoshiro with
// hand-rolled distributions keeps every "measurement" reproducible.
#pragma once

#include <cstdint>

namespace nvmeshare {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be nonzero. Unbiased (rejection).
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Standard normal via Box-Muller (no cached spare: deterministic stream).
  double normal() noexcept;

  /// Lognormal sample with given median and sigma (of underlying normal).
  /// Used for software-path jitter, which is right-skewed in practice.
  double lognormal(double median, double sigma) noexcept;

  /// Bernoulli with probability p.
  bool chance(double p) noexcept;

  /// Split off an independent stream (for per-actor determinism regardless
  /// of event interleaving).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace nvmeshare
