#include "common/status.hpp"

namespace nvmeshare {

std::string_view errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::out_of_range: return "out_of_range";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::permission_denied: return "permission_denied";
    case Errc::resource_exhausted: return "resource_exhausted";
    case Errc::unavailable: return "unavailable";
    case Errc::aborted: return "aborted";
    case Errc::timed_out: return "timed_out";
    case Errc::io_error: return "io_error";
    case Errc::unmapped_address: return "unmapped_address";
    case Errc::protocol_error: return "protocol_error";
    case Errc::internal: return "internal";
    case Errc::unsupported: return "unsupported";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out(errc_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nvmeshare
