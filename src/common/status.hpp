// Status / Result types used across all subsystems.
//
// The simulator follows the C++ Core Guidelines advice of reporting
// recoverable, expected failures by value rather than by exception: a PCIe
// transaction that hits an unmapped address or an NVMe command that is
// rejected by the controller is normal behaviour that callers must handle.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>

namespace nvmeshare {

/// Error categories shared by every subsystem. Subsystem-specific detail
/// (e.g. an NVMe status code) travels in the message string or in richer
/// domain types; Errc is what generic plumbing switches on.
enum class Errc : std::uint16_t {
  ok = 0,
  invalid_argument,
  out_of_range,
  not_found,
  already_exists,
  permission_denied,  ///< e.g. device held exclusively by another process
  resource_exhausted, ///< e.g. no free queue pairs / LUT entries / memory
  unavailable,        ///< e.g. controller not ready, link down
  aborted,
  timed_out,
  io_error,           ///< device-reported command failure
  unmapped_address,   ///< PCIe transaction routed nowhere (UR completion)
  protocol_error,     ///< malformed mailbox message, bad capsule, ...
  internal,
  unsupported,        ///< peer speaks an incompatible protocol version
};

/// Human-readable name of an error category.
std::string_view errc_name(Errc e) noexcept;

/// A cheap status carrying an error category and an optional message.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {}
  explicit Status(Errc code) : code_(code) {}

  static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Errc::ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Errc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "ok" or "<category>: <message>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

/// Minimal expected-like result: either a value or a Status describing why
/// the value is absent. Intentionally small; no monadic frills beyond what
/// the codebase needs.
template <typename T>
class [[nodiscard]] Result {
  static_assert(!std::is_same_v<T, Status>,
                "Result<Status> is redundant; use Status directly");

 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(state_).is_ok() && "Result error must not be Errc::ok");
  }
  Result(Errc code, std::string message) : state_(Status(code, std::move(message))) {}

  [[nodiscard]] bool has_value() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Status of the result: Status::ok() when a value is present.
  [[nodiscard]] Status status() const {
    if (has_value()) return Status::ok();
    return std::get<Status>(state_);
  }

  [[nodiscard]] Errc error_code() const noexcept {
    return has_value() ? Errc::ok : std::get<Status>(state_).code();
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

/// Propagate-on-error helper used in command-path code.
#define NVS_RETURN_IF_ERROR(expr)                       \
  do {                                                  \
    if (::nvmeshare::Status nvs_st_ = (expr); !nvs_st_) \
      return nvs_st_;                                   \
  } while (false)

}  // namespace nvmeshare
