// Minimal JSON syntax validator (header-only). Checks well-formedness per
// RFC 8259 — it builds no DOM and allocates nothing. Used by tests and the
// CI smoke step to verify that exported trace / metrics / bench documents
// parse, without pulling in a JSON library.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace nvmeshare::json {

namespace detail {

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  [[nodiscard]] bool eof() const noexcept { return i >= s.size(); }
  [[nodiscard]] char peek() const noexcept { return eof() ? '\0' : s[i]; }
  char get() noexcept { return eof() ? '\0' : s[i++]; }
  void skip_ws() noexcept {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  bool consume(char c) noexcept {
    if (peek() != c) return false;
    ++i;
    return true;
  }
  bool consume(std::string_view word) noexcept {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }
};

inline bool parse_value(Cursor& c, int depth);

inline bool parse_string(Cursor& c) {
  if (!c.consume('"')) return false;
  while (!c.eof()) {
    const char ch = c.get();
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;  // raw control char
    if (ch == '\\') {
      const char esc = c.get();
      switch (esc) {
        case '"': case '\\': case '/': case 'b': case 'f': case 'n': case 'r': case 't':
          break;
        case 'u':
          for (int k = 0; k < 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(c.get()))) return false;
          }
          break;
        default:
          return false;
      }
    }
  }
  return false;  // unterminated
}

inline bool parse_number(Cursor& c) {
  c.consume('-');
  if (c.peek() == '0') {
    c.get();
  } else if (std::isdigit(static_cast<unsigned char>(c.peek()))) {
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.get();
  } else {
    return false;
  }
  if (c.consume('.')) {
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.get();
  }
  if (c.peek() == 'e' || c.peek() == 'E') {
    c.get();
    if (c.peek() == '+' || c.peek() == '-') c.get();
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.get();
  }
  return true;
}

inline bool parse_object(Cursor& c, int depth) {
  if (!c.consume('{')) return false;
  c.skip_ws();
  if (c.consume('}')) return true;
  while (true) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.consume(':')) return false;
    c.skip_ws();
    if (!parse_value(c, depth)) return false;
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume('}');
  }
}

inline bool parse_array(Cursor& c, int depth) {
  if (!c.consume('[')) return false;
  c.skip_ws();
  if (c.consume(']')) return true;
  while (true) {
    c.skip_ws();
    if (!parse_value(c, depth)) return false;
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume(']');
  }
}

inline bool parse_value(Cursor& c, int depth) {
  if (depth > 256) return false;  // bail out on pathological nesting
  c.skip_ws();
  switch (c.peek()) {
    case '{': return parse_object(c, depth + 1);
    case '[': return parse_array(c, depth + 1);
    case '"': return parse_string(c);
    case 't': return c.consume(std::string_view("true"));
    case 'f': return c.consume(std::string_view("false"));
    case 'n': return c.consume(std::string_view("null"));
    default: return parse_number(c);
  }
}

}  // namespace detail

/// True iff `text` is exactly one well-formed JSON value (plus whitespace).
[[nodiscard]] inline bool valid(std::string_view text) {
  detail::Cursor c{text};
  if (!detail::parse_value(c, 0)) return false;
  c.skip_ws();
  return c.eof();
}

}  // namespace nvmeshare::json
