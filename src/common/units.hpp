// Size and time units. Simulated time is a plain signed 64-bit count of
// nanoseconds; signed so that durations subtract safely.
#pragma once

#include <cstdint>

namespace nvmeshare {

// --- sizes -----------------------------------------------------------------
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/// Divide, rounding up. Denominator must be nonzero.
constexpr std::uint64_t div_ceil(std::uint64_t num, std::uint64_t den) {
  return (num + den - 1) / den;
}

/// Round `v` up to a multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Round `v` down to a multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align) {
  return v & ~(align - 1);
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// --- simulated time ----------------------------------------------------------
namespace sim {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;
/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

}  // namespace sim

constexpr sim::Duration operator""_ns(unsigned long long v) {
  return static_cast<sim::Duration>(v);
}
constexpr sim::Duration operator""_us(unsigned long long v) {
  return static_cast<sim::Duration>(v * 1000);
}
constexpr sim::Duration operator""_ms(unsigned long long v) {
  return static_cast<sim::Duration>(v * 1000 * 1000);
}
constexpr sim::Duration operator""_s(unsigned long long v) {
  return static_cast<sim::Duration>(v * 1000 * 1000 * 1000);
}

/// Nanoseconds as fractional microseconds, for reporting.
constexpr double ns_to_us(sim::Duration ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace nvmeshare
