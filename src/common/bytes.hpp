// Byte-buffer helpers used by the data-integrity test suite and examples:
// deterministic pattern generation/verification and struct<->byte plumbing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace nvmeshare {

using Byte = std::byte;
using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<std::byte>;
using ConstByteSpan = std::span<const std::byte>;

/// Fill `dst` with a deterministic pattern derived from `seed`. Two buffers
/// filled with the same seed compare equal; different seeds differ with
/// overwhelming probability.
void fill_pattern(ByteSpan dst, std::uint64_t seed);

/// True iff `buf` holds exactly the pattern produced by fill_pattern(seed).
[[nodiscard]] bool check_pattern(ConstByteSpan buf, std::uint64_t seed);

/// Allocate a buffer of `n` bytes pre-filled with pattern `seed`.
[[nodiscard]] Bytes make_pattern(std::size_t n, std::uint64_t seed);

/// Hexdump (offset + 16 bytes per line) of at most `max_bytes`.
[[nodiscard]] std::string hexdump(ConstByteSpan buf, std::size_t max_bytes = 256);

/// Copy a trivially-copyable value out of / into a byte range.
template <typename T>
[[nodiscard]] T load_pod(ConstByteSpan src, std::size_t offset = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  T out{};
  std::memcpy(&out, src.data() + offset, sizeof(T));
  return out;
}

template <typename T>
void store_pod(ByteSpan dst, const T& value, std::size_t offset = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(dst.data() + offset, &value, sizeof(T));
}

/// View a trivially-copyable object as const bytes.
template <typename T>
[[nodiscard]] ConstByteSpan as_bytes_of(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const std::byte*>(&value), sizeof(T)};
}

template <typename T>
[[nodiscard]] ByteSpan as_writable_bytes_of(T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<std::byte*>(&value), sizeof(T)};
}

}  // namespace nvmeshare
