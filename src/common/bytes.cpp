#include "common/bytes.hpp"

#include <cstdio>

namespace nvmeshare {

namespace {
// Cheap counter-mode mixer; byte i of stream `seed` is mix(seed, i).
std::uint8_t pattern_byte(std::uint64_t seed, std::size_t i) {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (i / 8 + 1));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::uint8_t>(x >> ((i % 8) * 8));
}
}  // namespace

void fill_pattern(ByteSpan dst, std::uint64_t seed) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = std::byte{pattern_byte(seed, i)};
}

bool check_pattern(ConstByteSpan buf, std::uint64_t seed) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != std::byte{pattern_byte(seed, i)}) return false;
  }
  return true;
}

Bytes make_pattern(std::size_t n, std::uint64_t seed) {
  Bytes out(n);
  fill_pattern(out, seed);
  return out;
}

std::string hexdump(ConstByteSpan buf, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = buf.size() < max_bytes ? buf.size() : max_bytes;
  for (std::size_t base = 0; base < n; base += 16) {
    char line[80];
    int pos = std::snprintf(line, sizeof(line), "%08zx: ", base);
    for (std::size_t i = base; i < base + 16 && i < n; ++i) {
      pos += std::snprintf(line + pos, sizeof(line) - static_cast<std::size_t>(pos), "%02x ",
                           static_cast<unsigned>(buf[i]));
    }
    out += line;
    out += '\n';
  }
  if (n < buf.size()) out += "...\n";
  return out;
}

}  // namespace nvmeshare
