#include "nvme/spec.hpp"

#include <bit>
#include <cstring>

namespace nvmeshare::nvme {

static_assert(std::endian::native == std::endian::little,
              "wire-format structs assume a little-endian host");

const char* status_name(std::uint16_t status) {
  switch (status) {
    case kScSuccess: return "success";
    case kScInvalidOpcode: return "invalid opcode";
    case kScInvalidField: return "invalid field";
    case kScDataTransferError: return "data transfer error";
    case kScInternalError: return "internal error";
    case kScAbortRequested: return "abort requested";
    case kScInvalidNamespace: return "invalid namespace";
    case kScLbaOutOfRange: return "LBA out of range";
    case kScGuardCheckError: return "end-to-end guard check error";
    case kScAppTagCheckError: return "end-to-end application tag check error";
    case kScRefTagCheckError: return "end-to-end reference tag check error";
    case kScInvalidQueueId: return "invalid queue id";
    case kScInvalidQueueSize: return "invalid queue size";
    case kScInvalidInterruptVector: return "invalid interrupt vector";
    case kScInvalidQueueDeletion: return "invalid queue deletion";
    case kScFeatureNotSaveable: return "feature identifier not saveable";
    default: return "unknown status";
  }
}

namespace {
void put_u16(Bytes& b, std::size_t off, std::uint16_t v) { std::memcpy(b.data() + off, &v, 2); }
void put_u32(Bytes& b, std::size_t off, std::uint32_t v) { std::memcpy(b.data() + off, &v, 4); }
void put_u64(Bytes& b, std::size_t off, std::uint64_t v) { std::memcpy(b.data() + off, &v, 8); }
void put_str(Bytes& b, std::size_t off, const char* s, std::size_t len) {
  // Identify string fields are space-padded ASCII.
  std::size_t n = std::strlen(s);
  for (std::size_t i = 0; i < len; ++i) {
    b[off + i] = std::byte{static_cast<unsigned char>(i < n ? s[i] : ' ')};
  }
}
template <typename T>
T get_pod(ConstByteSpan b, std::size_t off) {
  T v{};
  std::memcpy(&v, b.data() + off, sizeof(T));
  return v;
}
}  // namespace

Bytes build_identify_controller(const ControllerInfo& info) {
  Bytes out(4096, std::byte{0});
  put_u16(out, 0, info.vid);                          // VID
  put_u16(out, 2, info.vid);                          // SSVID
  put_str(out, 4, info.serial, 20);                   // SN
  put_str(out, 24, info.model, 40);                   // MN
  put_str(out, 64, info.firmware, 8);                 // FR
  out[77] = std::byte{info.mdts_pages_log2};          // MDTS
  put_u16(out, 78, 0x0001);                           // CNTLID
  put_u32(out, 80, 0x00010400);                       // VER 1.4
  out[512] = std::byte{0x66};                         // SQES: max 64B, required 64B
  out[513] = std::byte{0x44};                         // CQES: max 16B, required 16B
  put_u16(out, 514, 1024);                            // MAXCMD
  put_u32(out, 516, info.num_namespaces);             // NN
  // Vendor-specific: communicate queue-pair ceiling (used by tests only;
  // drivers discover it properly via Set Features / Number of Queues).
  put_u16(out, 4088, info.max_queue_pairs);
  return out;
}

Bytes build_identify_namespace(const NamespaceInfo& info) {
  Bytes out(4096, std::byte{0});
  put_u64(out, 0, info.size_blocks);   // NSZE
  put_u64(out, 8, info.size_blocks);   // NCAP
  put_u64(out, 16, info.size_blocks);  // NUSE
  out[25] = std::byte{0};              // NLBAF: 1 format
  out[26] = std::byte{0};              // FLBAS: format 0
  // DPC @28: Type 1 protection supported; DPS @29: Type 1 enabled, PI
  // stored out-of-band (this model keeps PI beside each block, not
  // interleaved, so MS in LBAF0 stays 0).
  out[28] = std::byte{0x01};
  out[29] = std::byte{info.pi_enabled ? 0x01 : 0x00};
  // LBAF0 @128: MS[15:0]=0, LBADS[23:16]=log2(block size)
  std::uint32_t lbads = 0;
  for (std::uint32_t bs = info.block_size; bs > 1; bs >>= 1) ++lbads;
  put_u32(out, 128, lbads << 16);
  return out;
}

ParsedControllerIdentify parse_identify_controller(ConstByteSpan data) {
  ParsedControllerIdentify out;
  out.vid = get_pod<std::uint16_t>(data, 0);
  out.mdts_pages_log2 = static_cast<std::uint8_t>(data[77]);
  out.num_namespaces = get_pod<std::uint32_t>(data, 516);
  std::memcpy(out.model, data.data() + 24, 40);
  out.model[40] = '\0';
  return out;
}

ParsedNamespaceIdentify parse_identify_namespace(ConstByteSpan data) {
  ParsedNamespaceIdentify out;
  out.size_blocks = get_pod<std::uint64_t>(data, 0);
  out.pi_enabled = (static_cast<std::uint8_t>(data[29]) & 0x7) != 0;  // DPS type
  const std::uint32_t lbaf0 = get_pod<std::uint32_t>(data, 128);
  out.block_size = 1u << ((lbaf0 >> 16) & 0xFF);
  return out;
}

SubmissionEntry make_identify(std::uint16_t cid, IdentifyCns cns, std::uint32_t nsid,
                              std::uint64_t prp1) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::identify);
  e.cid = cid;
  e.nsid = nsid;
  e.prp1 = prp1;
  e.cdw10 = static_cast<std::uint32_t>(cns);
  return e;
}

SubmissionEntry make_create_io_cq(std::uint16_t cid, std::uint16_t qid, std::uint16_t qsize,
                                  std::uint64_t base, bool irq_enable,
                                  std::uint16_t irq_vector) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::create_io_cq);
  e.cid = cid;
  e.prp1 = base;
  e.cdw10 = static_cast<std::uint32_t>(qid) |
            (static_cast<std::uint32_t>(qsize - 1) << 16);  // QSIZE is 0-based
  e.cdw11 = 1u /* PC */ | (irq_enable ? 2u : 0u) | (static_cast<std::uint32_t>(irq_vector) << 16);
  return e;
}

SubmissionEntry make_create_io_sq(std::uint16_t cid, std::uint16_t qid, std::uint16_t qsize,
                                  std::uint64_t base, std::uint16_t cqid, SqPriority prio) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::create_io_sq);
  e.cid = cid;
  e.prp1 = base;
  e.cdw10 = static_cast<std::uint32_t>(qid) | (static_cast<std::uint32_t>(qsize - 1) << 16);
  e.cdw11 = 1u /* PC */ | (static_cast<std::uint32_t>(prio) << 1) /* QPRIO */ |
            (static_cast<std::uint32_t>(cqid) << 16);
  return e;
}

SubmissionEntry make_delete_io_sq(std::uint16_t cid, std::uint16_t qid) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::delete_io_sq);
  e.cid = cid;
  e.cdw10 = qid;
  return e;
}

SubmissionEntry make_delete_io_cq(std::uint16_t cid, std::uint16_t qid) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::delete_io_cq);
  e.cid = cid;
  e.cdw10 = qid;
  return e;
}

SubmissionEntry make_set_num_queues(std::uint16_t cid, std::uint16_t nsq, std::uint16_t ncq) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::set_features);
  e.cid = cid;
  e.cdw10 = static_cast<std::uint32_t>(FeatureId::number_of_queues);
  // 0-based counts.
  e.cdw11 = static_cast<std::uint32_t>(nsq - 1) | (static_cast<std::uint32_t>(ncq - 1) << 16);
  return e;
}

SubmissionEntry make_set_arbitration(std::uint16_t cid, std::uint8_t ab, std::uint8_t lpw,
                                     std::uint8_t mpw, std::uint8_t hpw) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::set_features);
  e.cid = cid;
  e.cdw10 = static_cast<std::uint32_t>(FeatureId::arbitration);
  e.cdw11 = static_cast<std::uint32_t>(ab & 0x7) | (static_cast<std::uint32_t>(lpw) << 8) |
            (static_cast<std::uint32_t>(mpw) << 16) | (static_cast<std::uint32_t>(hpw) << 24);
  return e;
}

SubmissionEntry make_io_rw(bool write, std::uint16_t cid, std::uint32_t nsid,
                           std::uint64_t slba, std::uint16_t nblocks, std::uint64_t prp1,
                           std::uint64_t prp2, std::uint32_t prinfo) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(write ? IoOpcode::write : IoOpcode::read);
  e.cid = cid;
  e.nsid = nsid;
  e.prp1 = prp1;
  e.prp2 = prp2;
  e.cdw10 = static_cast<std::uint32_t>(slba & 0xFFFFFFFFu);
  e.cdw11 = static_cast<std::uint32_t>(slba >> 32);
  e.cdw12 = static_cast<std::uint32_t>(nblocks - 1)  // NLB is 0-based
            | (prinfo & kPrinfoMask);
  return e;
}

SubmissionEntry make_vendor_scrub(std::uint16_t cid, std::uint32_t nsid, std::uint64_t slba,
                                  std::uint16_t nblocks) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(IoOpcode::vendor_scrub);
  e.cid = cid;
  e.nsid = nsid;
  e.cdw10 = static_cast<std::uint32_t>(slba & 0xFFFFFFFFu);
  e.cdw11 = static_cast<std::uint32_t>(slba >> 32);
  e.cdw12 = static_cast<std::uint32_t>(nblocks - 1);
  return e;
}

SubmissionEntry make_flush(std::uint16_t cid, std::uint32_t nsid) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(IoOpcode::flush);
  e.cid = cid;
  e.nsid = nsid;
  return e;
}

SmartLog parse_smart_log(ConstByteSpan data) {
  SmartLog out;
  out.critical_warning = static_cast<std::uint8_t>(data[0]);
  out.composite_temperature_k = get_pod<std::uint16_t>(data, 1);
  out.available_spare_pct = static_cast<std::uint8_t>(data[3]);
  out.percentage_used = static_cast<std::uint8_t>(data[5]);
  // The spec stores these as 16-byte little-endian integers; the model only
  // ever populates the low 8 bytes.
  out.data_units_read = get_pod<std::uint64_t>(data, 32);
  out.data_units_written = get_pod<std::uint64_t>(data, 48);
  out.host_read_commands = get_pod<std::uint64_t>(data, 64);
  out.host_write_commands = get_pod<std::uint64_t>(data, 80);
  out.power_on_hours = get_pod<std::uint64_t>(data, 144);
  return out;
}

SubmissionEntry make_get_log_page(std::uint16_t cid, LogPageId lid, std::uint32_t bytes,
                                  std::uint64_t prp1) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::get_log_page);
  e.cid = cid;
  e.prp1 = prp1;
  const std::uint32_t numd = bytes / 4 - 1;  // 0-based dword count
  e.cdw10 = static_cast<std::uint32_t>(lid) | ((numd & 0xFFF) << 16);
  return e;
}

SubmissionEntry make_write_zeroes(std::uint16_t cid, std::uint32_t nsid, std::uint64_t slba,
                                  std::uint16_t nblocks) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(IoOpcode::write_zeroes);
  e.cid = cid;
  e.nsid = nsid;
  e.cdw10 = static_cast<std::uint32_t>(slba & 0xFFFFFFFFu);
  e.cdw11 = static_cast<std::uint32_t>(slba >> 32);
  e.cdw12 = static_cast<std::uint32_t>(nblocks - 1);
  return e;
}

SubmissionEntry make_dsm_deallocate(std::uint16_t cid, std::uint32_t nsid, std::uint8_t nr,
                                    std::uint64_t prp1) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(IoOpcode::dataset_management);
  e.cid = cid;
  e.nsid = nsid;
  e.prp1 = prp1;
  e.cdw10 = static_cast<std::uint32_t>(nr - 1);  // 0-based range count
  e.cdw11 = kDsmDeallocate;
  return e;
}

}  // namespace nvmeshare::nvme
