#include "nvme/block_store.hpp"

#include <algorithm>
#include <cstring>

namespace nvmeshare::nvme {

BlockStore::BlockStore(std::uint64_t capacity_blocks, std::uint32_t block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {}

Status BlockStore::check_range(std::uint64_t slba, std::uint32_t nblocks) const {
  if (nblocks == 0) return Status(Errc::invalid_argument, "zero-length block access");
  if (slba + nblocks > capacity_blocks_ || slba + nblocks < slba) {
    return Status(Errc::out_of_range, "LBA range beyond namespace capacity");
  }
  return Status::ok();
}

Status BlockStore::read(std::uint64_t slba, std::uint32_t nblocks, ByteSpan out) const {
  NVS_RETURN_IF_ERROR(check_range(slba, nblocks));
  const std::uint64_t bytes = static_cast<std::uint64_t>(nblocks) * block_size_;
  if (out.size() != bytes) return Status(Errc::invalid_argument, "buffer size mismatch");

  std::uint64_t pos = slba * block_size_;
  std::size_t done = 0;
  while (done < bytes) {
    const std::uint64_t chunk_idx = pos / kChunkBytes;
    const std::uint64_t off = pos % kChunkBytes;
    const std::size_t n =
        std::min<std::size_t>(bytes - done, static_cast<std::size_t>(kChunkBytes - off));
    auto it = chunks_.find(chunk_idx);
    if (it != chunks_.end()) {
      std::memcpy(out.data() + done, it->second.data() + off, n);
    } else {
      std::memset(out.data() + done, 0, n);
    }
    done += n;
    pos += n;
  }
  return Status::ok();
}

Status BlockStore::write(std::uint64_t slba, std::uint32_t nblocks, ConstByteSpan in) {
  NVS_RETURN_IF_ERROR(check_range(slba, nblocks));
  const std::uint64_t bytes = static_cast<std::uint64_t>(nblocks) * block_size_;
  if (in.size() != bytes) return Status(Errc::invalid_argument, "buffer size mismatch");
  if (pi_enabled_) {
    // Overwriting invalidates stored tuples; a PRACT write re-generates
    // them afterwards. Without this, a non-PRACT overwrite would leave a
    // stale tuple that a later check or scrub flags as a false mismatch.
    for (std::uint64_t lba = slba; lba < slba + nblocks; ++lba) pi_.erase(lba);
  }

  std::uint64_t pos = slba * block_size_;
  std::size_t done = 0;
  while (done < bytes) {
    const std::uint64_t chunk_idx = pos / kChunkBytes;
    const std::uint64_t off = pos % kChunkBytes;
    const std::size_t n =
        std::min<std::size_t>(bytes - done, static_cast<std::size_t>(kChunkBytes - off));
    auto& chunk = chunks_[chunk_idx];
    if (chunk.empty()) chunk.assign(kChunkBytes, std::byte{0});
    std::memcpy(chunk.data() + off, in.data() + done, n);
    done += n;
    pos += n;
  }
  return Status::ok();
}

Status BlockStore::write_zeroes(std::uint64_t slba, std::uint32_t nblocks) {
  NVS_RETURN_IF_ERROR(check_range(slba, nblocks));
  if (pi_enabled_) {
    for (std::uint64_t lba = slba; lba < slba + nblocks; ++lba) pi_.erase(lba);
  }
  const std::uint64_t bytes = static_cast<std::uint64_t>(nblocks) * block_size_;
  std::uint64_t pos = slba * block_size_;
  std::uint64_t done = 0;
  while (done < bytes) {
    const std::uint64_t chunk_idx = pos / kChunkBytes;
    const std::uint64_t off = pos % kChunkBytes;
    const std::uint64_t n = std::min<std::uint64_t>(bytes - done, kChunkBytes - off);
    auto it = chunks_.find(chunk_idx);
    if (it != chunks_.end()) {
      if (off == 0 && n == kChunkBytes) {
        chunks_.erase(it);  // whole chunk zeroed -> drop it
      } else {
        std::memset(it->second.data() + off, 0, n);
      }
    }
    done += n;
    pos += n;
  }
  return Status::ok();
}

void BlockStore::format_with_pi(bool enabled) {
  pi_enabled_ = enabled;
  pi_.clear();
}

std::optional<integrity::ProtectionInfo> BlockStore::read_pi(std::uint64_t lba) const {
  if (!pi_enabled_) return std::nullopt;
  auto it = pi_.find(lba);
  if (it == pi_.end()) return std::nullopt;
  return it->second;
}

void BlockStore::write_pi(std::uint64_t lba, const integrity::ProtectionInfo& pi) {
  if (!pi_enabled_) return;
  pi_[lba] = pi;
}

Result<std::uint64_t> BlockStore::verify_stored_pi(std::uint64_t slba,
                                                   std::uint32_t nblocks) const {
  NVS_RETURN_IF_ERROR(check_range(slba, nblocks));
  if (!pi_enabled_) return std::uint64_t{0};
  std::uint64_t mismatches = 0;
  Bytes block(block_size_);
  for (std::uint64_t lba = slba; lba < slba + nblocks; ++lba) {
    auto it = pi_.find(lba);
    if (it == pi_.end()) continue;  // deallocated: checks disabled
    if (Status st = read(lba, 1, block); !st) return st;
    if (integrity::verify_pi(it->second, block, lba, {}, it->second.app_tag) !=
        integrity::PiCheck::ok) {
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace nvmeshare::nvme
