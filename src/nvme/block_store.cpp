#include "nvme/block_store.hpp"

#include <algorithm>
#include <cstring>

namespace nvmeshare::nvme {

BlockStore::BlockStore(std::uint64_t capacity_blocks, std::uint32_t block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {}

Status BlockStore::check_range(std::uint64_t slba, std::uint32_t nblocks) const {
  if (nblocks == 0) return Status(Errc::invalid_argument, "zero-length block access");
  if (slba + nblocks > capacity_blocks_ || slba + nblocks < slba) {
    return Status(Errc::out_of_range, "LBA range beyond namespace capacity");
  }
  return Status::ok();
}

Status BlockStore::read(std::uint64_t slba, std::uint32_t nblocks, ByteSpan out) const {
  NVS_RETURN_IF_ERROR(check_range(slba, nblocks));
  const std::uint64_t bytes = static_cast<std::uint64_t>(nblocks) * block_size_;
  if (out.size() != bytes) return Status(Errc::invalid_argument, "buffer size mismatch");

  std::uint64_t pos = slba * block_size_;
  std::size_t done = 0;
  while (done < bytes) {
    const std::uint64_t chunk_idx = pos / kChunkBytes;
    const std::uint64_t off = pos % kChunkBytes;
    const std::size_t n =
        std::min<std::size_t>(bytes - done, static_cast<std::size_t>(kChunkBytes - off));
    auto it = chunks_.find(chunk_idx);
    if (it != chunks_.end()) {
      std::memcpy(out.data() + done, it->second.data() + off, n);
    } else {
      std::memset(out.data() + done, 0, n);
    }
    done += n;
    pos += n;
  }
  return Status::ok();
}

Status BlockStore::write(std::uint64_t slba, std::uint32_t nblocks, ConstByteSpan in) {
  NVS_RETURN_IF_ERROR(check_range(slba, nblocks));
  const std::uint64_t bytes = static_cast<std::uint64_t>(nblocks) * block_size_;
  if (in.size() != bytes) return Status(Errc::invalid_argument, "buffer size mismatch");

  std::uint64_t pos = slba * block_size_;
  std::size_t done = 0;
  while (done < bytes) {
    const std::uint64_t chunk_idx = pos / kChunkBytes;
    const std::uint64_t off = pos % kChunkBytes;
    const std::size_t n =
        std::min<std::size_t>(bytes - done, static_cast<std::size_t>(kChunkBytes - off));
    auto& chunk = chunks_[chunk_idx];
    if (chunk.empty()) chunk.assign(kChunkBytes, std::byte{0});
    std::memcpy(chunk.data() + off, in.data() + done, n);
    done += n;
    pos += n;
  }
  return Status::ok();
}

Status BlockStore::write_zeroes(std::uint64_t slba, std::uint32_t nblocks) {
  NVS_RETURN_IF_ERROR(check_range(slba, nblocks));
  const std::uint64_t bytes = static_cast<std::uint64_t>(nblocks) * block_size_;
  std::uint64_t pos = slba * block_size_;
  std::uint64_t done = 0;
  while (done < bytes) {
    const std::uint64_t chunk_idx = pos / kChunkBytes;
    const std::uint64_t off = pos % kChunkBytes;
    const std::uint64_t n = std::min<std::uint64_t>(bytes - done, kChunkBytes - off);
    auto it = chunks_.find(chunk_idx);
    if (it != chunks_.end()) {
      if (off == 0 && n == kChunkBytes) {
        chunks_.erase(it);  // whole chunk zeroed -> drop it
      } else {
        std::memset(it->second.data() + off, 0, n);
      }
    }
    done += n;
    pos += n;
  }
  return Status::ok();
}

}  // namespace nvmeshare::nvme
