// NVMe 1.3/1.4 wire-format structures and constants (the subset the paper's
// stack exercises): submission/completion entries, admin and I/O opcodes,
// status codes, controller registers, and identify data layouts.
//
// All multi-byte fields are little-endian; the simulator runs on
// little-endian hosts only (static_asserted in spec.cpp).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace nvmeshare::nvme {

// --- queue entries ---------------------------------------------------------

/// 64-byte Submission Queue Entry (common command format).
struct SubmissionEntry {
  std::uint8_t opcode = 0;   // CDW0[7:0]
  std::uint8_t flags = 0;    // CDW0[15:8]: FUSE, PSDT
  std::uint16_t cid = 0;     // CDW0[31:16] command identifier
  std::uint32_t nsid = 0;    // CDW1
  std::uint32_t cdw2 = 0;
  std::uint32_t cdw3 = 0;
  std::uint64_t mptr = 0;    // metadata pointer
  std::uint64_t prp1 = 0;    // data pointer
  std::uint64_t prp2 = 0;
  std::uint32_t cdw10 = 0;
  std::uint32_t cdw11 = 0;
  std::uint32_t cdw12 = 0;
  std::uint32_t cdw13 = 0;
  std::uint32_t cdw14 = 0;
  std::uint32_t cdw15 = 0;
};
static_assert(sizeof(SubmissionEntry) == 64);

/// 16-byte Completion Queue Entry.
struct CompletionEntry {
  std::uint32_t dw0 = 0;          // command specific
  std::uint32_t dw1 = 0;          // reserved
  std::uint16_t sq_head = 0;      // DW2[15:0]
  std::uint16_t sqid = 0;         // DW2[31:16]
  std::uint16_t cid = 0;          // DW3[15:0]
  std::uint16_t status_phase = 0; // DW3[16] = phase tag, DW3[31:17] = status

  [[nodiscard]] bool phase() const noexcept { return (status_phase & 1u) != 0; }
  void set_phase(bool p) noexcept {
    status_phase = static_cast<std::uint16_t>((status_phase & ~1u) | (p ? 1u : 0u));
  }
  /// 15-bit status field (0 = success).
  [[nodiscard]] std::uint16_t status() const noexcept {
    return static_cast<std::uint16_t>(status_phase >> 1);
  }
  [[nodiscard]] bool ok() const noexcept { return status() == 0; }
};
static_assert(sizeof(CompletionEntry) == 16);

// --- status codes ------------------------------------------------------------

/// Status Code Type (SCT) values.
enum class Sct : std::uint16_t {
  generic = 0x0,
  command_specific = 0x1,
  media_error = 0x2,
};

/// Build the 15-bit status field from SCT and SC.
constexpr std::uint16_t make_status(Sct sct, std::uint8_t sc) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(sct) << 8) | sc);
}

// Generic status codes (SCT 0).
inline constexpr std::uint16_t kScSuccess = make_status(Sct::generic, 0x00);
inline constexpr std::uint16_t kScInvalidOpcode = make_status(Sct::generic, 0x01);
inline constexpr std::uint16_t kScInvalidField = make_status(Sct::generic, 0x02);
inline constexpr std::uint16_t kScDataTransferError = make_status(Sct::generic, 0x04);
inline constexpr std::uint16_t kScInternalError = make_status(Sct::generic, 0x06);
inline constexpr std::uint16_t kScAbortRequested = make_status(Sct::generic, 0x07);
inline constexpr std::uint16_t kScInvalidNamespace = make_status(Sct::generic, 0x0B);
inline constexpr std::uint16_t kScLbaOutOfRange = make_status(Sct::generic, 0x80);
// Media and data integrity status codes (SCT 2).
inline constexpr std::uint16_t kScGuardCheckError = make_status(Sct::media_error, 0x82);
inline constexpr std::uint16_t kScAppTagCheckError = make_status(Sct::media_error, 0x83);
inline constexpr std::uint16_t kScRefTagCheckError = make_status(Sct::media_error, 0x84);
// Command-specific status codes (SCT 1).
inline constexpr std::uint16_t kScInvalidQueueId = make_status(Sct::command_specific, 0x01);
inline constexpr std::uint16_t kScInvalidQueueSize = make_status(Sct::command_specific, 0x02);
inline constexpr std::uint16_t kScInvalidInterruptVector =
    make_status(Sct::command_specific, 0x08);
inline constexpr std::uint16_t kScInvalidQueueDeletion =
    make_status(Sct::command_specific, 0x0C);
inline constexpr std::uint16_t kScFeatureNotSaveable = make_status(Sct::command_specific, 0x0D);

/// Human-readable status-field description for diagnostics.
const char* status_name(std::uint16_t status);

// --- opcodes -------------------------------------------------------------------

enum class AdminOpcode : std::uint8_t {
  delete_io_sq = 0x00,
  create_io_sq = 0x01,
  get_log_page = 0x02,
  delete_io_cq = 0x04,
  create_io_cq = 0x05,
  identify = 0x06,
  abort = 0x08,
  set_features = 0x09,
  get_features = 0x0A,
  async_event_request = 0x0C,
};

enum class IoOpcode : std::uint8_t {
  flush = 0x00,
  write = 0x01,
  read = 0x02,
  write_zeroes = 0x08,
  dataset_management = 0x09,
  /// Vendor-specific: verify stored protection info over an LBA range
  /// (CDW10/11 = SLBA, CDW12 = NLB0). Completes with the first check
  /// error found, reporting the mismatch count in DW0. Issued by the
  /// manager's background scrubber.
  vendor_scrub = 0xC0,
};

// --- end-to-end data protection (PRINFO, CDW12 bits 29:26) --------------------

/// PRACT: the controller generates PI on write / strips-checks on read.
inline constexpr std::uint32_t kPrinfoPract = 1u << 29;
/// PRCHK bits: which tuple fields the controller verifies.
inline constexpr std::uint32_t kPrinfoPrchkGuard = 1u << 28;
inline constexpr std::uint32_t kPrinfoPrchkApp = 1u << 27;
inline constexpr std::uint32_t kPrinfoPrchkRef = 1u << 26;
inline constexpr std::uint32_t kPrinfoMask =
    kPrinfoPract | kPrinfoPrchkGuard | kPrinfoPrchkApp | kPrinfoPrchkRef;

/// One Dataset Management range descriptor (the command's data payload is
/// an array of these).
struct DsmRange {
  std::uint32_t context_attributes = 0;
  std::uint32_t nlb = 0;  ///< number of blocks (1-based, unlike NLB in CDW12)
  std::uint64_t slba = 0;
};
static_assert(sizeof(DsmRange) == 16);

/// CDW11 attribute: ranges should be deallocated (TRIM).
inline constexpr std::uint32_t kDsmDeallocate = 1u << 2;

/// Identify CNS values.
enum class IdentifyCns : std::uint8_t {
  ns = 0x00,
  controller = 0x01,
  active_ns_list = 0x02,
};

/// Feature identifiers.
enum class FeatureId : std::uint8_t {
  arbitration = 0x01,
  power_management = 0x02,
  number_of_queues = 0x07,
  interrupt_coalescing = 0x08,
};

/// Log page identifiers.
enum class LogPageId : std::uint8_t {
  error_information = 0x01,
  smart_health = 0x02,
  firmware_slot = 0x03,
};

/// Fields of the SMART / Health Information log page (LID 02h) this model
/// populates, parsed back out for driver consumers.
struct SmartLog {
  std::uint8_t critical_warning = 0;
  std::uint16_t composite_temperature_k = 0;
  std::uint8_t available_spare_pct = 0;
  std::uint8_t percentage_used = 0;
  std::uint64_t data_units_read = 0;     ///< 1000 x 512-byte units
  std::uint64_t data_units_written = 0;
  std::uint64_t host_read_commands = 0;
  std::uint64_t host_write_commands = 0;
  std::uint64_t power_on_hours = 0;
};

/// Parse the 512-byte SMART log payload.
SmartLog parse_smart_log(ConstByteSpan data);
/// Build a Get Log Page command for `lid` reading `bytes` into prp1.
SubmissionEntry make_get_log_page(std::uint16_t cid, LogPageId lid, std::uint32_t bytes,
                                  std::uint64_t prp1);

// --- controller registers ----------------------------------------------------------

namespace reg {
inline constexpr std::uint64_t kCap = 0x00;    // 8 bytes
inline constexpr std::uint64_t kVs = 0x08;     // 4
inline constexpr std::uint64_t kIntms = 0x0C;  // 4
inline constexpr std::uint64_t kIntmc = 0x10;  // 4
inline constexpr std::uint64_t kCc = 0x14;     // 4
inline constexpr std::uint64_t kCsts = 0x1C;   // 4
inline constexpr std::uint64_t kAqa = 0x24;    // 4
inline constexpr std::uint64_t kAsq = 0x28;    // 8
inline constexpr std::uint64_t kAcq = 0x30;    // 8
inline constexpr std::uint64_t kDoorbellBase = 0x1000;
/// MSI-X table (vendor-fixed location in BAR0 for this model).
inline constexpr std::uint64_t kMsixTable = 0x2000;
inline constexpr std::uint64_t kMsixEntrySize = 16;  // addr u64, data u32, mask u32
}  // namespace reg

// CC fields.
inline constexpr std::uint32_t kCcEnable = 1u << 0;
constexpr std::uint32_t cc_iosqes(std::uint32_t cc) { return (cc >> 16) & 0xF; }
constexpr std::uint32_t cc_iocqes(std::uint32_t cc) { return (cc >> 20) & 0xF; }
constexpr std::uint32_t cc_shn(std::uint32_t cc) { return (cc >> 14) & 0x3; }
/// CC.AMS (bits 13:11): arbitration mechanism selected at enable time.
constexpr std::uint32_t cc_ams(std::uint32_t cc) { return (cc >> 11) & 0x7; }
inline constexpr std::uint32_t kCcAmsRoundRobin = 0;
inline constexpr std::uint32_t kCcAmsWrr = 1;  ///< weighted round robin w/ urgent
/// CC value selecting WRR arbitration (OR with kCcEnable).
inline constexpr std::uint32_t kCcAmsWrrBits = kCcAmsWrr << 11;

/// I/O SQ priority classes (Create I/O SQ CDW11 QPRIO, bits 2:1). Only
/// meaningful when the controller was enabled with CC.AMS = WRR.
enum class SqPriority : std::uint8_t {
  urgent = 0,  ///< strict priority above the weighted classes
  high = 1,
  medium = 2,
  low = 3,
};
// CSTS fields.
inline constexpr std::uint32_t kCstsReady = 1u << 0;
inline constexpr std::uint32_t kCstsFatal = 1u << 1;
inline constexpr std::uint32_t kCstsShutdownComplete = 2u << 2;

/// Doorbell stride is 4 bytes (CAP.DSTRD = 0) throughout.
inline constexpr std::uint64_t kDoorbellStride = 4;

constexpr std::uint64_t sq_doorbell_offset(std::uint16_t qid) {
  return reg::kDoorbellBase + (2ull * qid) * kDoorbellStride;
}
constexpr std::uint64_t cq_doorbell_offset(std::uint16_t qid) {
  return reg::kDoorbellBase + (2ull * qid + 1) * kDoorbellStride;
}

// --- identify payload builders -------------------------------------------------------

struct ControllerInfo {
  std::uint16_t vid = 0x8086;
  char serial[21] = "NVSHARE0000000000001";
  char model[41] = "Simulated Optane P4800X (nvmeshare)";
  char firmware[9] = "E2010435";
  std::uint8_t mdts_pages_log2 = 5;  ///< max transfer = 2^5 * 4 KiB = 128 KiB
  std::uint32_t num_namespaces = 1;
  std::uint16_t max_queue_pairs = 32;  ///< including the admin pair
};

struct NamespaceInfo {
  std::uint64_t size_blocks = 0;
  std::uint32_t block_size = 512;
  /// Namespace formatted with Type 1 protection information (DPC/DPS).
  bool pi_enabled = false;
};

/// Serialize a 4096-byte Identify Controller data structure.
Bytes build_identify_controller(const ControllerInfo& info);
/// Serialize a 4096-byte Identify Namespace data structure.
Bytes build_identify_namespace(const NamespaceInfo& info);

/// Parse the fields the drivers need back out of identify payloads.
struct ParsedControllerIdentify {
  std::uint16_t vid = 0;
  std::uint8_t mdts_pages_log2 = 0;
  std::uint32_t num_namespaces = 0;
  char model[41] = {};
};
ParsedControllerIdentify parse_identify_controller(ConstByteSpan data);

struct ParsedNamespaceIdentify {
  std::uint64_t size_blocks = 0;
  std::uint32_t block_size = 0;
  bool pi_enabled = false;
};
ParsedNamespaceIdentify parse_identify_namespace(ConstByteSpan data);

// --- command builders (host side) ------------------------------------------------------

/// The memory page size used throughout (CC.MPS = 0 -> 4 KiB).
inline constexpr std::uint64_t kPageSize = 4096;

SubmissionEntry make_identify(std::uint16_t cid, IdentifyCns cns, std::uint32_t nsid,
                              std::uint64_t prp1);
SubmissionEntry make_create_io_cq(std::uint16_t cid, std::uint16_t qid, std::uint16_t qsize,
                                  std::uint64_t base, bool irq_enable, std::uint16_t irq_vector);
/// `prio` goes into CDW11 QPRIO (ignored by the controller unless CC.AMS =
/// WRR); the default encodes as 0 so round-robin callers stay byte-identical.
SubmissionEntry make_create_io_sq(std::uint16_t cid, std::uint16_t qid, std::uint16_t qsize,
                                  std::uint64_t base, std::uint16_t cqid,
                                  SqPriority prio = SqPriority::urgent);
SubmissionEntry make_delete_io_sq(std::uint16_t cid, std::uint16_t qid);
SubmissionEntry make_delete_io_cq(std::uint16_t cid, std::uint16_t qid);
SubmissionEntry make_set_num_queues(std::uint16_t cid, std::uint16_t nsq, std::uint16_t ncq);
/// Set Features 0x01 (Arbitration): AB = log2 burst (7 = unlimited),
/// LPW/MPW/HPW = 0-based low/medium/high priority weights.
SubmissionEntry make_set_arbitration(std::uint16_t cid, std::uint8_t ab, std::uint8_t lpw,
                                     std::uint8_t mpw, std::uint8_t hpw);
/// `prinfo` is OR'd into CDW12 (kPrinfoPract / kPrinfoPrchk*); 0 = no PI.
SubmissionEntry make_io_rw(bool write, std::uint16_t cid, std::uint32_t nsid,
                           std::uint64_t slba, std::uint16_t nblocks, std::uint64_t prp1,
                           std::uint64_t prp2, std::uint32_t prinfo = 0);
/// Vendor scrub command covering [slba, slba + nblocks).
SubmissionEntry make_vendor_scrub(std::uint16_t cid, std::uint32_t nsid, std::uint64_t slba,
                                  std::uint16_t nblocks);
SubmissionEntry make_flush(std::uint16_t cid, std::uint32_t nsid);
SubmissionEntry make_write_zeroes(std::uint16_t cid, std::uint32_t nsid, std::uint64_t slba,
                                  std::uint16_t nblocks);
/// Dataset Management with `nr` ranges whose descriptors are at prp1.
SubmissionEntry make_dsm_deallocate(std::uint16_t cid, std::uint32_t nsid, std::uint8_t nr,
                                    std::uint64_t prp1);

}  // namespace nvmeshare::nvme
