#include "nvme/controller.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "integrity/integrity.hpp"
#include "obs/trace.hpp"

namespace nvmeshare::nvme {

namespace {
constexpr std::uint16_t kMsixVectors = 33;  // one per possible CQ (admin + 32)

bool cq_full(std::uint16_t tail, std::uint16_t head, std::uint16_t size) {
  return static_cast<std::uint16_t>((tail + 1) % size) == head;
}

/// Attribute a controller-side span to the client request that queued the
/// command, via the tracer's (qid, cid) binding. No-op when tracing is off
/// or the command was not submitted by a traced request.
void trace_io_span(std::uint16_t qid, std::uint16_t cid, obs::Phase phase, sim::Time begin,
                   sim::Time end) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  if (const std::uint64_t trace = tracer.lookup(qid, cid); trace != 0) {
    tracer.record(trace, obs::Track::controller, phase, begin, end, qid, cid);
  }
}
}  // namespace

Controller::Stats::Stats()
    : doorbell_writes("nvmeshare.controller.doorbell_writes"),
      commands_fetched("nvmeshare.controller.commands_fetched"),
      fetch_dma_reads("nvmeshare.controller.fetch_dma_reads"),
      admin_commands("nvmeshare.controller.admin_commands"),
      io_reads("nvmeshare.controller.io_reads"),
      io_writes("nvmeshare.controller.io_writes"),
      io_flushes("nvmeshare.controller.io_flushes"),
      bytes_read("nvmeshare.controller.bytes_read"),
      bytes_written("nvmeshare.controller.bytes_written"),
      errors_completed("nvmeshare.controller.errors_completed") {}

Controller::Controller(sim::Engine& engine, Config cfg)
    : engine_(engine),
      cfg_(cfg),
      store_(cfg.capacity_blocks, cfg.block_size),
      rng_(cfg.seed) {
  cap_ = static_cast<std::uint64_t>(cfg_.max_queue_entries - 1)  // MQES (0-based)
         | (1ull << 16)                                          // CQR
         | (1ull << 17)                                          // AMS: WRR w/ urgent
         | (10ull << 24)                                          // TO
         | (1ull << 37);                                          // CSS: NVM command set
  sqs_.resize(cfg_.max_queue_pairs);
  cqs_.resize(cfg_.max_queue_pairs);
  for (std::uint16_t i = 0; i < cfg_.max_queue_pairs; ++i) {
    cqs_[i].space = std::make_unique<sim::Event>(engine_);
  }
  work_ = std::make_unique<sim::Event>(engine_);
  msix_.resize(kMsixVectors);
  channels_ = std::make_unique<sim::Semaphore>(engine_, cfg_.service.channels);
  if (cfg_.pi_enabled) store_.format_with_pi(true);
}

int Controller::active_io_sq_count() const {
  int n = 0;
  for (std::size_t i = 1; i < sqs_.size(); ++i) n += sqs_[i].valid ? 1 : 0;
  return n;
}

// --- register file ---------------------------------------------------------------

std::uint64_t Controller::read_register(std::uint64_t offset, std::size_t len) const {
  auto word = [&](std::uint64_t value, std::uint64_t base) -> std::uint64_t {
    // Support 4-byte reads of either half of an 8-byte register.
    if (len == 4 && offset == base + 4) return value >> 32;
    return value;
  };
  if (offset == reg::kCap || offset == reg::kCap + 4) return word(cap_, reg::kCap);
  if (offset == reg::kVs) return vs_;
  if (offset == reg::kCc) return cc_;
  if (offset == reg::kCsts) return csts_;
  if (offset == reg::kAqa) return aqa_;
  if (offset == reg::kAsq || offset == reg::kAsq + 4) return word(asq_, reg::kAsq);
  if (offset == reg::kAcq || offset == reg::kAcq + 4) return word(acq_, reg::kAcq);
  return 0;
}

Result<Bytes> Controller::bar_read(int bar, std::uint64_t offset, std::size_t len) {
  if (bar != 0) return Status(Errc::invalid_argument, "nvme: only BAR0 exists");
  if (offset + len > bar_size(0)) return Status(Errc::out_of_range, "nvme: BAR0 read OOB");
  Bytes out(len, std::byte{0});
  if (offset >= reg::kMsixTable &&
      offset + len <= reg::kMsixTable + kMsixVectors * reg::kMsixEntrySize) {
    // MSI-X table readback.
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t o = offset - reg::kMsixTable + i;
      const auto& e = msix_[o / reg::kMsixEntrySize];
      std::uint8_t raw[16] = {};
      std::memcpy(raw, &e.addr, 8);
      std::memcpy(raw + 8, &e.data, 4);
      const std::uint32_t mask = e.masked ? 1u : 0u;
      std::memcpy(raw + 12, &mask, 4);
      out[i] = std::byte{raw[o % reg::kMsixEntrySize]};
    }
    return out;
  }
  const std::uint64_t v = read_register(offset, len);
  std::memcpy(out.data(), &v, std::min<std::size_t>(len, 8));
  return out;
}

Status Controller::bar_write(int bar, std::uint64_t offset, ConstByteSpan data) {
  if (bar != 0) return Status(Errc::invalid_argument, "nvme: only BAR0 exists");
  if (offset + data.size() > bar_size(0)) {
    return Status(Errc::out_of_range, "nvme: BAR0 write OOB");
  }

  // Doorbells.
  if (offset >= reg::kDoorbellBase && offset < reg::kMsixTable) {
    if (data.size() != 4 || offset % 4 != 0) {
      return Status(Errc::invalid_argument, "doorbell writes must be aligned 4-byte stores");
    }
    handle_doorbell(offset, load_pod<std::uint32_t>(data));
    return Status::ok();
  }

  // MSI-X table.
  if (offset >= reg::kMsixTable &&
      offset + data.size() <= reg::kMsixTable + kMsixVectors * reg::kMsixEntrySize) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::uint64_t o = offset - reg::kMsixTable + i;
      auto& e = msix_[o / reg::kMsixEntrySize];
      std::uint8_t raw[16];
      std::memcpy(raw, &e.addr, 8);
      std::memcpy(raw + 8, &e.data, 4);
      std::uint32_t mask = e.masked ? 1u : 0u;
      std::memcpy(raw + 12, &mask, 4);
      raw[o % reg::kMsixEntrySize] = static_cast<std::uint8_t>(data[i]);
      std::memcpy(&e.addr, raw, 8);
      std::memcpy(&e.data, raw + 8, 4);
      std::memcpy(&mask, raw + 12, 4);
      e.masked = (mask & 1u) != 0;
    }
    return Status::ok();
  }

  // Control registers.
  const std::uint64_t v64 = data.size() >= 8 ? load_pod<std::uint64_t>(data)
                                             : load_pod<std::uint32_t>(data.first(4));
  switch (offset) {
    case reg::kCc:
      write_cc(static_cast<std::uint32_t>(v64));
      return Status::ok();
    case reg::kAqa:
      aqa_ = static_cast<std::uint32_t>(v64);
      return Status::ok();
    case reg::kAsq:
      if (data.size() == 8) {
        asq_ = v64;
      } else {
        asq_ = (asq_ & ~0xFFFFFFFFull) | v64;
      }
      return Status::ok();
    case reg::kAsq + 4:
      asq_ = (asq_ & 0xFFFFFFFFull) | (v64 << 32);
      return Status::ok();
    case reg::kAcq:
      if (data.size() == 8) {
        acq_ = v64;
      } else {
        acq_ = (acq_ & ~0xFFFFFFFFull) | v64;
      }
      return Status::ok();
    case reg::kAcq + 4:
      acq_ = (acq_ & 0xFFFFFFFFull) | (v64 << 32);
      return Status::ok();
    case reg::kIntms:
    case reg::kIntmc:
      return Status::ok();  // accepted, no-op (polling model)
    default:
      NVS_LOG(debug, "nvme") << "ignored register write at 0x" << std::hex << offset;
      return Status::ok();
  }
}

void Controller::write_cc(std::uint32_t value) {
  const bool was_enabled = (cc_ & kCcEnable) != 0;
  const bool now_enabled = (value & kCcEnable) != 0;
  cc_ = value;
  if (!was_enabled && now_enabled) {
    enable_controller();
  } else if (was_enabled && !now_enabled) {
    disable_controller(/*fatal=*/false);
    csts_ &= ~kCstsFatal;  // a controller reset clears CSTS.CFS
  }
  if (cc_shn(value) != 0) {
    // Shutdown notification: complete immediately in this model.
    csts_ = (csts_ & ~0xCu) | kCstsShutdownComplete;
  }
}

void Controller::enable_controller() {
  const std::uint16_t asqs = static_cast<std::uint16_t>((aqa_ & 0xFFF) + 1);
  const std::uint16_t acqs = static_cast<std::uint16_t>(((aqa_ >> 16) & 0xFFF) + 1);
  if (asqs < 2 || acqs < 2 || asqs > cfg_.max_queue_entries || acqs > cfg_.max_queue_entries ||
      asq_ == 0 || acq_ == 0 || asq_ % kPageSize != 0 || acq_ % kPageSize != 0) {
    NVS_LOG(warn, "nvme") << "enable with bad admin queue config -> fatal";
    disable_controller(/*fatal=*/true);
    return;
  }
  SqState& sq = sqs_[0];
  sq.valid = true;
  sq.base = asq_;
  sq.size = asqs;
  sq.head = sq.tail = 0;
  CqState& cq = cqs_[0];
  cq.valid = true;
  cq.base = acq_;
  cq.size = acqs;
  cq.tail = cq.head = 0;
  cq.phase = true;
  cq.irq_enabled = false;

  // Latch the arbitration mechanism for this enable cycle and restart the
  // WRR state: per-class cursors back to queue 1, credits empty (the first
  // weighted turn reloads them from the current weights).
  ams_ = cc_ams(cc_);
  wrr_next_.fill(1);
  wrr_credits_.fill(0);

  const std::uint64_t gen = generation_;
  engine_.after(cfg_.service.enable_ns, [this, gen]() {
    if (gen != generation_ || (cc_ & kCcEnable) == 0) return;
    csts_ |= kCstsReady;
    arbiter_task(gen);
    NVS_LOG(info, "nvme") << "controller ready";
  });
}

void Controller::disable_controller(bool fatal) {
  ++generation_;
  for (auto& sq : sqs_) {
    sq.valid = false;
    sq.retry_not_before = 0;
  }
  for (auto& cq : cqs_) {
    cq.valid = false;
    cq.space->set();
  }
  work_->set();  // wake the arbiter so it observes the new generation and exits
  csts_ &= ~kCstsReady;
  if (fatal) csts_ |= kCstsFatal;
  granted_io_queues_ = 0;
  pending_aer_cids_.clear();
}

void Controller::handle_doorbell(std::uint64_t offset, std::uint32_t value) {
  ++stats_.doorbell_writes;
  if (!is_ready()) {
    NVS_LOG(warn, "nvme") << "doorbell write while not ready (ignored)";
    return;
  }
  const std::uint64_t index = (offset - reg::kDoorbellBase) / kDoorbellStride;
  const auto qid = static_cast<std::uint16_t>(index / 2);
  const bool is_cq = (index % 2) != 0;
  if (qid >= cfg_.max_queue_pairs) {
    disable_controller(/*fatal=*/true);
    return;
  }
  if (is_cq) {
    CqState& cq = cqs_[qid];
    if (!cq.valid || value >= cq.size) {
      NVS_LOG(warn, "nvme") << "invalid CQ head doorbell q" << qid << " value " << value;
      disable_controller(/*fatal=*/true);
      return;
    }
    cq.head = static_cast<std::uint16_t>(value);
    cq.space->set();
    return;
  }
  SqState& sq = sqs_[qid];
  if (!sq.valid || value >= sq.size) {
    NVS_LOG(warn, "nvme") << "invalid SQ tail doorbell q" << qid << " value " << value;
    disable_controller(/*fatal=*/true);
    return;
  }
  sq.tail = static_cast<std::uint16_t>(value);
  work_->set();
}

// --- fetch & dispatch ----------------------------------------------------------------

sim::Task Controller::arbiter_task(std::uint64_t gen) {
  // NVMe round-robin arbitration, one servicer for every doorbell: the
  // admin queue drains with strict priority, then each I/O queue with work
  // gets a turn of at most arb_burst() commands, rotating from rr_next_.
  // A queue mid-retry (transient fetch-DMA failure) is skipped until its
  // retry_not_before passes, so one unreachable host cannot stall others.
  for (;;) {
    if (gen != generation_) co_return;

    if (sqs_[0].valid && sqs_[0].head != sqs_[0].tail) {
      const int n = co_await fetch_turn(0, cfg_.fetch_burst, gen);
      if (gen != generation_ || n == -2) co_return;
      continue;  // keep admin drained before offering I/O turns
    }

    bool fetched = false;
    bool deferred = false;
    sim::Time next_retry = 0;
    const auto nio = static_cast<std::uint16_t>(cfg_.max_queue_pairs - 1);
    if (ams_ == kCcAmsWrr) {
      const std::uint16_t qid = wrr_pick(deferred, next_retry);
      if (qid != 0) {
        const int n = co_await fetch_turn(qid, arb_burst(), gen);
        if (gen != generation_ || n == -2) co_return;
        fetched = true;
      }
    } else {
      for (std::uint16_t step = 0; step < nio && !fetched; ++step) {
        const auto qid = static_cast<std::uint16_t>(1 + (rr_next_ - 1 + step) % nio);
        SqState& sq = sqs_[qid];
        if (!sq.valid || sq.head == sq.tail) continue;
        if (sq.retry_not_before > engine_.now()) {
          deferred = true;
          if (next_retry == 0 || sq.retry_not_before < next_retry) {
            next_retry = sq.retry_not_before;
          }
          continue;
        }
        const int n = co_await fetch_turn(qid, arb_burst(), gen);
        if (gen != generation_ || n == -2) co_return;
        rr_next_ = static_cast<std::uint16_t>(1 + qid % nio);  // queue after this one
        fetched = true;
      }
    }
    if (fetched) continue;

    work_->reset();
    if (deferred) {
      // Every queue with work is backing off; wake when the earliest retry
      // is due (a doorbell meanwhile also wakes us, and a stale wakeup just
      // re-scans).
      engine_.after(next_retry - engine_.now(), [this, gen]() {
        if (gen == generation_) work_->set();
      });
    }
    co_await work_->wait();
  }
}

std::uint16_t Controller::wrr_pick(bool& deferred, sim::Time& next_retry) {
  const auto nio = static_cast<std::uint16_t>(cfg_.max_queue_pairs - 1);
  auto ready = [&](std::uint16_t qid) -> bool {
    SqState& sq = sqs_[qid];
    if (!sq.valid || sq.head == sq.tail) return false;
    if (sq.retry_not_before > engine_.now()) {
      deferred = true;
      if (next_retry == 0 || sq.retry_not_before < next_retry) {
        next_retry = sq.retry_not_before;
      }
      return false;
    }
    return true;
  };
  // Round-robin inside one class, advancing that class's cursor only when a
  // queue is actually chosen (a fruitless scan must not rotate fairness).
  auto scan_class = [&](std::uint8_t cls) -> std::uint16_t {
    for (std::uint16_t step = 0; step < nio; ++step) {
      const auto qid = static_cast<std::uint16_t>(1 + (wrr_next_[cls] - 1 + step) % nio);
      if (sqs_[qid].prio != cls || !ready(qid)) continue;
      wrr_next_[cls] = static_cast<std::uint16_t>(1 + qid % nio);
      return qid;
    }
    return 0;
  };
  // Urgent is strict priority: it pre-empts the weighted classes entirely.
  if (const std::uint16_t qid = scan_class(static_cast<std::uint8_t>(SqPriority::urgent))) {
    return qid;
  }
  // Weighted classes spend one credit per turn, high before medium before
  // low. Weights are 0-based (weight = field + 1): a zero-programmed class
  // still reloads to one credit per round, so nothing starves. Pass 0 may
  // find every class with work out of credit — reload and scan once more.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint8_t i = 0; i < 3; ++i) {
      const auto cls = static_cast<std::uint8_t>(i + 1);  // high, medium, low
      if (wrr_credits_[i] == 0) continue;
      if (const std::uint16_t qid = scan_class(cls)) {
        --wrr_credits_[i];
        return qid;
      }
    }
    if (pass == 0) {
      const std::uint8_t weights[3] = {hpw_, mpw_, lpw_};
      for (std::uint8_t i = 0; i < 3; ++i) {
        wrr_credits_[i] = static_cast<std::uint32_t>(weights[i]) + 1;
      }
    }
  }
  return 0;
}

sim::Future<int> Controller::fetch_turn(std::uint16_t qid, std::uint16_t limit,
                                        std::uint64_t gen) {
  sim::Promise<int> promise(engine_);
  fetch_turn_task(qid, limit, gen, promise);
  return promise.future();
}

sim::Task Controller::fetch_turn_task(std::uint16_t qid, std::uint16_t limit, std::uint64_t gen,
                                      sim::Promise<int> promise) {
  SqState& sq = sqs_[qid];
  const auto avail = static_cast<std::uint16_t>((sq.tail - sq.head + sq.size) % sq.size);
  const auto until_wrap = static_cast<std::uint16_t>(sq.size - sq.head);
  const std::uint16_t n = std::min({avail, until_wrap, cfg_.fetch_burst, limit});
  ++stats_.fetch_dma_reads;
  const sim::Time fetch_begin = engine_.now();
  auto data = co_await fabric()->read(
      dma_initiator(), sq.base + static_cast<std::uint64_t>(sq.head) * sizeof(SubmissionEntry),
      static_cast<std::size_t>(n) * sizeof(SubmissionEntry));
  if (gen != generation_ || !sqs_[qid].valid) {
    promise.set(0);
    co_return;
  }
  if (!data) {
    // Per-queue isolation: an I/O queue whose memory became *transiently*
    // unreachable (NTB link down -> Errc::unavailable) must not take the
    // whole controller and every other host's queues down with it; the
    // arbiter skips it until the path heals or the queue is deleted. A
    // permanent routing failure (unmapped address = mis-programmed queue
    // base) stays fatal, as does any admin-queue failure.
    if (qid != 0 && data.status().code() == Errc::unavailable) {
      NVS_LOG(warn, "nvme") << "SQ fetch DMA failed (q" << qid
                            << "): " << data.status().to_string() << " -> retry";
      sq.retry_not_before = engine_.now() + cfg_.service.queue_retry_ns;
      promise.set(-1);
      co_return;
    }
    NVS_LOG(error, "nvme") << "SQ fetch DMA failed (q" << qid
                           << "): " << data.status().to_string() << " -> fatal";
    disable_controller(/*fatal=*/true);
    promise.set(-2);
    co_return;
  }
  for (std::uint16_t i = 0; i < n; ++i) {
    const auto sqe =
        load_pod<SubmissionEntry>(*data, static_cast<std::size_t>(i) * sizeof(SubmissionEntry));
    if (qid != 0) {
      trace_io_span(qid, sqe.cid, obs::Phase::ctrl_fetch, fetch_begin, engine_.now());
    }
    const auto head_after = static_cast<std::uint16_t>((sq.head + i + 1) % sq.size);
    execute_command(qid, sqe, head_after, gen);
  }
  sq.head = static_cast<std::uint16_t>((sq.head + n) % sq.size);
  stats_.commands_fetched += n;
  promise.set(n);
}

sim::Task Controller::execute_command(std::uint16_t qid, SubmissionEntry sqe,
                                      std::uint16_t sq_head_after, std::uint64_t gen) {
  if (qid == 0) {
    // Vendor scrub is privileged — the manager issues it on the admin
    // queue — but it executes like an I/O command (media access, channel
    // arbitration), so it routes through run_io.
    if (static_cast<IoOpcode>(sqe.opcode) == IoOpcode::vendor_scrub) {
      run_io(qid, sqe, sq_head_after, gen);
    } else {
      run_admin(sqe, sq_head_after, gen);
    }
  } else {
    run_io(qid, sqe, sq_head_after, gen);
  }
  co_return;
}

// --- completion path --------------------------------------------------------------------

sim::Task Controller::complete(std::uint16_t sqid, std::uint16_t sq_head_after,
                               std::uint16_t cid, std::uint16_t status, std::uint32_t dw0,
                               std::uint64_t gen, sim::Time not_before) {
  if (gen != generation_) co_return;
  const std::uint16_t cqid = sqs_[sqid].cqid;  // admin SQ pairs with CQ 0
  CqState& cq = cqs_[sqid == 0 ? 0 : cqid];
  for (;;) {
    if (gen != generation_ || !cq.valid) co_return;
    if (!cq_full(cq.tail, cq.head, cq.size)) break;
    cq.space->reset();
    co_await cq.space->wait();
  }
  if (status != kScSuccess) ++stats_.errors_completed;

  CompletionEntry e;
  e.dw0 = dw0;
  e.sq_head = sq_head_after;
  e.sqid = sqid;
  e.cid = cid;
  e.status_phase = static_cast<std::uint16_t>(status << 1);
  e.set_phase(cq.phase);

  const std::uint16_t slot = cq.tail;
  cq.tail = static_cast<std::uint16_t>((cq.tail + 1) % cq.size);
  if (cq.tail == 0) cq.phase = !cq.phase;

  Result<sim::Time> arrival = Status(Errc::internal, "unattempted");
  for (;;) {
    arrival = fabric()->post_write(
        dma_initiator(), cq.base + static_cast<std::uint64_t>(slot) * sizeof(CompletionEntry),
        as_bytes_of(e), not_before);
    if (arrival) break;
    // Per-queue isolation, mirroring the SQ-fetch path: retry transient
    // unreachability (link down) until the CQ heals or is deleted; permanent
    // routing failures and admin-queue failures stay fatal.
    if (sqid != 0 && arrival.status().code() == Errc::unavailable) {
      NVS_LOG(warn, "nvme") << "CQE post failed (q" << cqid
                            << "): " << arrival.status().to_string() << " -> retry";
      co_await sim::delay(engine_, cfg_.service.queue_retry_ns);
      if (gen != generation_ || !cq.valid) co_return;
      continue;
    }
    NVS_LOG(error, "nvme") << "CQE post failed (q" << cqid
                           << "): " << arrival.status().to_string();
    disable_controller(/*fatal=*/true);
    co_return;
  }
  if (sqid != 0) trace_io_span(sqid, cid, obs::Phase::cq_write, engine_.now(), *arrival);
  if (cq.irq_enabled && cq.irq_vector < msix_.size() && !msix_[cq.irq_vector].masked &&
      msix_[cq.irq_vector].addr != 0) {
    // The interrupt message is a posted write ordered behind the CQE.
    (void)fabric()->post_write(dma_initiator(), msix_[cq.irq_vector].addr,
                               as_bytes_of(msix_[cq.irq_vector].data), *arrival);
  }
}

// --- admin commands ------------------------------------------------------------------------

sim::Task Controller::run_admin(SubmissionEntry sqe, std::uint16_t sq_head_after,
                                std::uint64_t gen) {
  ++stats_.admin_commands;
  co_await sim::delay(engine_, cfg_.service.admin_ns);
  if (gen != generation_) co_return;

  const auto op = static_cast<AdminOpcode>(sqe.opcode);
  switch (op) {
    case AdminOpcode::identify:
    case AdminOpcode::get_log_page: {
      Bytes payload;
      std::uint16_t status = kScSuccess;
      if (op == AdminOpcode::identify) {
        const auto cns = static_cast<IdentifyCns>(sqe.cdw10 & 0xFF);
        switch (cns) {
          case IdentifyCns::controller: {
            ControllerInfo info;
            info.max_queue_pairs = cfg_.max_queue_pairs;
            payload = build_identify_controller(info);
            break;
          }
          case IdentifyCns::ns: {
            if (sqe.nsid != 1) {
              status = kScInvalidNamespace;
              break;
            }
            payload = build_identify_namespace(NamespaceInfo{
                store_.capacity_blocks(), store_.block_size(), store_.pi_enabled()});
            break;
          }
          case IdentifyCns::active_ns_list: {
            payload.assign(4096, std::byte{0});
            const std::uint32_t one = 1;
            store_pod(payload, one, 0);
            break;
          }
          default:
            status = kScInvalidField;
        }
      } else {
        // Get Log Page (<= 4 KiB here).
        const std::uint32_t numd = ((sqe.cdw10 >> 16) & 0xFFF) + 1;
        const std::size_t bytes = std::min<std::size_t>(numd * 4, 4096);
        payload.assign(bytes, std::byte{0});
        const auto lid = static_cast<LogPageId>(sqe.cdw10 & 0xFF);
        if (lid == LogPageId::smart_health && bytes >= 512) {
          // SMART / Health Information: populated from live counters.
          payload[0] = std::byte{0};                         // no critical warnings
          store_pod(payload, std::uint16_t{310}, 1);         // 310 K ≈ 37 C
          payload[3] = std::byte{100};                       // available spare %
          payload[5] = std::byte{0};                         // percentage used
          store_pod(payload, stats_.bytes_read / (512 * 1000), 32);
          store_pod(payload, stats_.bytes_written / (512 * 1000), 48);
          store_pod(payload, stats_.io_reads.value(), 64);
          store_pod(payload, stats_.io_writes.value(), 80);
          store_pod(payload,
                    static_cast<std::uint64_t>(engine_.now() / 3'600'000'000'000LL), 144);
        }
      }
      if (status != kScSuccess) {
        complete(0, sq_head_after, sqe.cid, status, 0, gen, 0);
        co_return;
      }
      auto sg = co_await walk_prps(sqe.prp1, sqe.prp2, payload.size());
      if (gen != generation_) co_return;
      if (!sg) {
        complete(0, sq_head_after, sqe.cid, kScInvalidField, 0, gen, 0);
        co_return;
      }
      auto arrival = fabric()->write_sg(dma_initiator(), *sg, payload);
      if (!arrival) {
        complete(0, sq_head_after, sqe.cid, kScDataTransferError, 0, gen, 0);
        co_return;
      }
      complete(0, sq_head_after, sqe.cid, kScSuccess, 0, gen, *arrival);
      co_return;
    }
    case AdminOpcode::create_io_cq: {
      const AdminResult r = admin_create_cq(sqe);
      complete(0, sq_head_after, sqe.cid, r.status, r.dw0, gen, 0);
      co_return;
    }
    case AdminOpcode::create_io_sq: {
      const AdminResult r = admin_create_sq(sqe, gen);
      complete(0, sq_head_after, sqe.cid, r.status, r.dw0, gen, 0);
      co_return;
    }
    case AdminOpcode::delete_io_sq: {
      const AdminResult r = admin_delete_sq(sqe);
      complete(0, sq_head_after, sqe.cid, r.status, r.dw0, gen, 0);
      co_return;
    }
    case AdminOpcode::delete_io_cq: {
      const AdminResult r = admin_delete_cq(sqe);
      complete(0, sq_head_after, sqe.cid, r.status, r.dw0, gen, 0);
      co_return;
    }
    case AdminOpcode::set_features: {
      const AdminResult r = admin_set_features(sqe);
      complete(0, sq_head_after, sqe.cid, r.status, r.dw0, gen, 0);
      co_return;
    }
    case AdminOpcode::get_features: {
      const AdminResult r = admin_get_features(sqe);
      complete(0, sq_head_after, sqe.cid, r.status, r.dw0, gen, 0);
      co_return;
    }
    case AdminOpcode::abort: {
      // Best-effort abort (spec-compliant): report "not aborted" in DW0.
      complete(0, sq_head_after, sqe.cid, kScSuccess, 1, gen, 0);
      co_return;
    }
    case AdminOpcode::async_event_request:
      // Parked until an event occurs; this model raises none, so the
      // command intentionally never completes (like an idle healthy drive).
      pending_aer_cids_.push_back(sqe.cid);
      co_return;
    default:
      complete(0, sq_head_after, sqe.cid, kScInvalidOpcode, 0, gen, 0);
      co_return;
  }
}

Controller::AdminResult Controller::admin_create_cq(const SubmissionEntry& sqe) {
  const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
  const auto qsize = static_cast<std::uint16_t>((sqe.cdw10 >> 16) + 1);
  const bool pc = (sqe.cdw11 & 1u) != 0;
  const bool ien = (sqe.cdw11 & 2u) != 0;
  const auto iv = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
  if (qid == 0 || qid > granted_io_queues_) return {kScInvalidQueueId, 0};
  if (cqs_[qid].valid) return {kScInvalidQueueId, 0};
  if (qsize < 2 || qsize > cfg_.max_queue_entries) return {kScInvalidQueueSize, 0};
  if (!pc || sqe.prp1 == 0 || sqe.prp1 % kPageSize != 0) return {kScInvalidField, 0};
  if (iv >= kMsixVectors) return {kScInvalidInterruptVector, 0};
  CqState& cq = cqs_[qid];
  cq.valid = true;
  cq.base = sqe.prp1;
  cq.size = qsize;
  cq.tail = cq.head = 0;
  cq.phase = true;
  cq.irq_enabled = ien;
  cq.irq_vector = iv;
  cq.space->reset();
  NVS_LOG(debug, "nvme") << "created IO CQ " << qid << " size " << qsize;
  return {};
}

Controller::AdminResult Controller::admin_create_sq(const SubmissionEntry& sqe,
                                                    std::uint64_t gen) {
  const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
  const auto qsize = static_cast<std::uint16_t>((sqe.cdw10 >> 16) + 1);
  const bool pc = (sqe.cdw11 & 1u) != 0;
  const auto qprio = static_cast<std::uint8_t>((sqe.cdw11 >> 1) & 0x3);
  const auto cqid = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
  if (qid == 0 || qid > granted_io_queues_) return {kScInvalidQueueId, 0};
  if (sqs_[qid].valid) return {kScInvalidQueueId, 0};
  if (qsize < 2 || qsize > cfg_.max_queue_entries) return {kScInvalidQueueSize, 0};
  if (cqid == 0 || cqid >= cfg_.max_queue_pairs || !cqs_[cqid].valid) {
    return {kScInvalidQueueId, 0};  // completion queue invalid
  }
  if (!pc || sqe.prp1 == 0 || sqe.prp1 % kPageSize != 0) return {kScInvalidField, 0};
  SqState& sq = sqs_[qid];
  sq.valid = true;
  sq.base = sqe.prp1;
  sq.size = qsize;
  sq.head = sq.tail = 0;
  sq.cqid = cqid;
  sq.prio = qprio;  // consulted only when CC.AMS latched WRR
  sq.retry_not_before = 0;
  (void)gen;  // the central arbiter picks the queue up at its first doorbell
  NVS_LOG(debug, "nvme") << "created IO SQ " << qid << " size " << qsize << " -> CQ " << cqid
                         << " prio " << static_cast<int>(qprio);
  return {};
}

Controller::AdminResult Controller::admin_delete_sq(const SubmissionEntry& sqe) {
  const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
  if (qid == 0 || qid >= cfg_.max_queue_pairs || !sqs_[qid].valid) {
    return {kScInvalidQueueId, 0};
  }
  sqs_[qid].valid = false;
  sqs_[qid].retry_not_before = 0;
  return {};
}

Controller::AdminResult Controller::admin_delete_cq(const SubmissionEntry& sqe) {
  const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
  if (qid == 0 || qid >= cfg_.max_queue_pairs || !cqs_[qid].valid) {
    return {kScInvalidQueueId, 0};
  }
  for (std::uint16_t s = 1; s < cfg_.max_queue_pairs; ++s) {
    if (sqs_[s].valid && sqs_[s].cqid == qid) {
      return {kScInvalidQueueDeletion, 0};  // still has an attached SQ
    }
  }
  cqs_[qid].valid = false;
  cqs_[qid].space->set();
  return {};
}

Controller::AdminResult Controller::admin_set_features(const SubmissionEntry& sqe) {
  const auto fid = static_cast<FeatureId>(sqe.cdw10 & 0xFF);
  if (fid == FeatureId::number_of_queues) {
    const auto nsq_req = static_cast<std::uint16_t>((sqe.cdw11 & 0xFFFF) + 1);
    const auto ncq_req = static_cast<std::uint16_t>((sqe.cdw11 >> 16) + 1);
    const auto ceiling = static_cast<std::uint16_t>(cfg_.max_queue_pairs - 1);
    const std::uint16_t granted_sq = std::min(nsq_req, ceiling);
    const std::uint16_t granted_cq = std::min(ncq_req, ceiling);
    granted_io_queues_ = std::min(granted_sq, granted_cq);
    const std::uint32_t dw0 = static_cast<std::uint32_t>(granted_sq - 1) |
                              (static_cast<std::uint32_t>(granted_cq - 1) << 16);
    return {kScSuccess, dw0};
  }
  if (fid == FeatureId::arbitration) {
    // Arbitration burst (2^AB commands per I/O-queue turn; AB = 7 means no
    // limit) plus the WRR class weights. Weight fields are 0-based per spec
    // (weight = field + 1), so even an all-zero CDW11 leaves every class one
    // turn per round — no class can be programmed into starvation. Credits
    // reset so new weights take effect on the next arbitration round; under
    // plain round-robin the weights are latched but unused.
    arb_burst_log2_ = static_cast<std::uint8_t>(sqe.cdw11 & 0x7);
    lpw_ = static_cast<std::uint8_t>((sqe.cdw11 >> 8) & 0xFF);
    mpw_ = static_cast<std::uint8_t>((sqe.cdw11 >> 16) & 0xFF);
    hpw_ = static_cast<std::uint8_t>((sqe.cdw11 >> 24) & 0xFF);
    wrr_credits_.fill(0);
    return {kScSuccess, 0};
  }
  return {kScInvalidField, 0};
}

Controller::AdminResult Controller::admin_get_features(const SubmissionEntry& sqe) {
  const auto fid = static_cast<FeatureId>(sqe.cdw10 & 0xFF);
  if (fid == FeatureId::number_of_queues) {
    if (granted_io_queues_ == 0) return {kScSuccess, 0};
    const std::uint32_t dw0 = static_cast<std::uint32_t>(granted_io_queues_ - 1) |
                              (static_cast<std::uint32_t>(granted_io_queues_ - 1) << 16);
    return {kScSuccess, dw0};
  }
  if (fid == FeatureId::arbitration) {
    const std::uint32_t dw0 = static_cast<std::uint32_t>(arb_burst_log2_) |
                              (static_cast<std::uint32_t>(lpw_) << 8) |
                              (static_cast<std::uint32_t>(mpw_) << 16) |
                              (static_cast<std::uint32_t>(hpw_) << 24);
    return {kScSuccess, dw0};
  }
  return {kScInvalidField, 0};
}

// --- I/O commands -------------------------------------------------------------------------

sim::Duration Controller::media_latency(IoOpcode op, std::uint32_t nblocks) {
  sim::Duration base = 0;
  switch (op) {
    case IoOpcode::read: base = cfg_.service.read_media_ns; break;
    case IoOpcode::write:
    case IoOpcode::write_zeroes: base = cfg_.service.write_media_ns; break;
    case IoOpcode::flush:
    case IoOpcode::dataset_management: return cfg_.service.flush_ns;
  }
  if (nblocks > 8) {
    base += static_cast<sim::Duration>(nblocks - 8) * cfg_.service.per_block_ns;
  }
  double scale = rng_.lognormal(1.0, cfg_.service.jitter_sigma);
  if (rng_.chance(cfg_.service.tail_probability)) scale *= cfg_.service.tail_multiplier;
  return static_cast<sim::Duration>(static_cast<double>(base) * scale);
}

sim::Task Controller::run_io(std::uint16_t qid, SubmissionEntry sqe,
                             std::uint16_t sq_head_after, std::uint64_t gen) {
  const auto op = static_cast<IoOpcode>(sqe.opcode);

  if (fault::enabled()) {
    const auto decision = fault::Injector::global().on_ctrl_command(qid, sqe.cid);
    if (decision.inject && decision.fatal) {
      NVS_LOG(error, "nvme") << "injected fatal controller error (q" << qid << " cid "
                             << sqe.cid << ")";
      disable_controller(/*fatal=*/true);
      co_return;
    }
    if (decision.inject) {
      co_await sim::delay(engine_, cfg_.service.cmd_fixed_ns);
      if (gen != generation_) co_return;
      complete(qid, sq_head_after, sqe.cid, kScInternalError, 0, gen, 0);
      co_return;
    }
  }

  if (op == IoOpcode::flush) {
    ++stats_.io_flushes;
    co_await sim::delay(engine_, cfg_.service.cmd_fixed_ns + media_latency(op, 0));
    if (gen != generation_) co_return;
    complete(qid, sq_head_after, sqe.cid, kScSuccess, 0, gen, 0);
    co_return;
  }
  if (op != IoOpcode::read && op != IoOpcode::write && op != IoOpcode::write_zeroes &&
      op != IoOpcode::dataset_management && op != IoOpcode::vendor_scrub) {
    complete(qid, sq_head_after, sqe.cid, kScInvalidOpcode, 0, gen, 0);
    co_return;
  }
  if (sqe.nsid != 1) {
    complete(qid, sq_head_after, sqe.cid, kScInvalidNamespace, 0, gen, 0);
    co_return;
  }

  if (op == IoOpcode::dataset_management) {
    // Fetch the range descriptors (the command's data payload), then
    // deallocate each range if the attribute asks for it.
    const std::uint32_t nr = (sqe.cdw10 & 0xFF) + 1;
    auto sg = co_await walk_prps(sqe.prp1, sqe.prp2, nr * sizeof(DsmRange));
    if (gen != generation_) co_return;
    if (!sg) {
      complete(qid, sq_head_after, sqe.cid, kScInvalidField, 0, gen, 0);
      co_return;
    }
    auto ranges_raw = co_await fabric()->read_sg(dma_initiator(), *sg);
    if (gen != generation_) co_return;
    if (!ranges_raw) {
      complete(qid, sq_head_after, sqe.cid, kScDataTransferError, 0, gen, 0);
      co_return;
    }
    co_await sim::delay(engine_, cfg_.service.cmd_fixed_ns + cfg_.service.flush_ns);
    if (gen != generation_) co_return;
    std::uint16_t status = kScSuccess;
    if ((sqe.cdw11 & kDsmDeallocate) != 0) {
      for (std::uint32_t r = 0; r < nr; ++r) {
        const auto range = load_pod<DsmRange>(*ranges_raw, r * sizeof(DsmRange));
        if (range.nlb == 0) continue;
        if (Status st = store_.write_zeroes(range.slba, range.nlb); !st) {
          status = kScLbaOutOfRange;
          break;
        }
      }
    }
    complete(qid, sq_head_after, sqe.cid, status, 0, gen, 0);
    co_return;
  }

  const std::uint64_t slba =
      static_cast<std::uint64_t>(sqe.cdw10) | (static_cast<std::uint64_t>(sqe.cdw11) << 32);
  const std::uint32_t nblocks = (sqe.cdw12 & 0xFFFF) + 1;
  const std::uint64_t bytes = static_cast<std::uint64_t>(nblocks) * store_.block_size();
  const std::uint64_t mdts_bytes = 32 * kPageSize;  // matches ControllerInfo::mdts_pages_log2
  // Overflow-safe: slba near UINT64_MAX must not wrap past the capacity
  // check (nblocks <= 65536, so a wrapped sum is always smaller than slba).
  if (slba + nblocks > store_.capacity_blocks() || slba + nblocks < slba) {
    complete(qid, sq_head_after, sqe.cid, kScLbaOutOfRange, 0, gen, 0);
    co_return;
  }
  if (op != IoOpcode::vendor_scrub && bytes > mdts_bytes) {
    complete(qid, sq_head_after, sqe.cid, kScInvalidField, 0, gen, 0);
    co_return;
  }

  if (op == IoOpcode::vendor_scrub) {
    // Background-scrub range verify: walk stored tuples against stored
    // data at media-read cost, no host DMA. DW0 reports the mismatch
    // count; any mismatch completes with Guard Check Error.
    co_await channels_->acquire();
    co_await sim::delay(engine_,
                        cfg_.service.cmd_fixed_ns + media_latency(IoOpcode::read, nblocks));
    channels_->release();
    if (gen != generation_) co_return;
    auto mismatches = store_.verify_stored_pi(slba, nblocks);
    if (!mismatches) {
      complete(qid, sq_head_after, sqe.cid, kScInternalError, 0, gen, 0);
      co_return;
    }
    if (store_.pi_enabled()) {
      auto& istats = integrity::stats();
      istats.blocks_scrubbed += nblocks;
      istats.scrub_errors += *mismatches;
    }
    complete(qid, sq_head_after, sqe.cid,
             *mismatches == 0 ? kScSuccess : kScGuardCheckError,
             static_cast<std::uint32_t>(*mismatches), gen, 0);
    co_return;
  }

  if (op == IoOpcode::write_zeroes) {
    co_await channels_->acquire();
    co_await sim::delay(engine_, cfg_.service.cmd_fixed_ns + media_latency(op, nblocks));
    channels_->release();
    if (gen != generation_) co_return;
    (void)store_.write_zeroes(slba, nblocks);
    complete(qid, sq_head_after, sqe.cid, kScSuccess, 0, gen, 0);
    co_return;
  }

  if (op == IoOpcode::read) {
    ++stats_.io_reads;
    stats_.bytes_read += bytes;
    const sim::Time media_begin = engine_.now();
    co_await channels_->acquire();
    if (gen != generation_) {
      channels_->release();
      co_return;
    }
    co_await sim::delay(engine_, cfg_.service.cmd_fixed_ns + media_latency(op, nblocks));
    channels_->release();
    if (gen != generation_) co_return;
    trace_io_span(qid, sqe.cid, obs::Phase::media, media_begin, engine_.now());

    Bytes data(bytes);
    if (Status st = store_.read(slba, nblocks, data); !st) {
      complete(qid, sq_head_after, sqe.cid, kScInternalError, 0, gen, 0);
      co_return;
    }
    if (store_.pi_enabled() &&
        (sqe.cdw12 & (kPrinfoPrchkGuard | kPrinfoPrchkApp | kPrinfoPrchkRef)) != 0) {
      auto& istats = integrity::stats();
      const integrity::PiCheckMask mask{(sqe.cdw12 & kPrinfoPrchkGuard) != 0,
                                        (sqe.cdw12 & kPrinfoPrchkApp) != 0,
                                        (sqe.cdw12 & kPrinfoPrchkRef) != 0};
      for (std::uint32_t i = 0; i < nblocks; ++i) {
        const std::uint64_t lba = slba + i;
        auto pi = store_.read_pi(lba);
        if (!pi) continue;  // deallocated block: checks disabled per spec
        const auto block = ConstByteSpan(data).subspan(
            static_cast<std::size_t>(i) * store_.block_size(), store_.block_size());
        ++istats.pi_verified;
        const integrity::PiCheck check = integrity::verify_pi(*pi, block, lba, mask);
        if (check == integrity::PiCheck::ok) continue;
        std::uint16_t status = kScGuardCheckError;
        if (check == integrity::PiCheck::guard_mismatch) {
          ++istats.guard_errors;
        } else if (check == integrity::PiCheck::app_tag_mismatch) {
          ++istats.app_tag_errors;
          status = kScAppTagCheckError;
        } else {
          ++istats.ref_tag_errors;
          status = kScRefTagCheckError;
        }
        complete(qid, sq_head_after, sqe.cid, status, 0, gen, 0);
        co_return;
      }
    }
    auto sg = co_await walk_prps(sqe.prp1, sqe.prp2, bytes);
    if (gen != generation_) co_return;
    if (!sg) {
      complete(qid, sq_head_after, sqe.cid, kScInvalidField, 0, gen, 0);
      co_return;
    }
    auto arrival = fabric()->write_sg(dma_initiator(), *sg, data);
    if (!arrival) {
      complete(qid, sq_head_after, sqe.cid, kScDataTransferError, 0, gen, 0);
      co_return;
    }
    trace_io_span(qid, sqe.cid, obs::Phase::data_dma, engine_.now(), *arrival);
    // PCIe posted ordering: the CQE travels the same path after the data,
    // so the host cannot observe the completion before the data.
    complete(qid, sq_head_after, sqe.cid, kScSuccess, 0, gen, *arrival);
    co_return;
  }

  // Write: fetch data from host memory (a non-posted DMA read across the
  // fabric — on a remote queue this round trip is why the paper measures a
  // larger remote-write delta than remote-read), then commit to media.
  ++stats_.io_writes;
  stats_.bytes_written += bytes;
  auto sg = co_await walk_prps(sqe.prp1, sqe.prp2, bytes);
  if (gen != generation_) co_return;
  if (!sg) {
    complete(qid, sq_head_after, sqe.cid, kScInvalidField, 0, gen, 0);
    co_return;
  }
  const sim::Time dma_begin = engine_.now();
  auto data = co_await fabric()->read_sg(dma_initiator(), *sg);
  if (gen != generation_) co_return;
  if (!data) {
    complete(qid, sq_head_after, sqe.cid, kScDataTransferError, 0, gen, 0);
    co_return;
  }
  trace_io_span(qid, sqe.cid, obs::Phase::data_dma, dma_begin, engine_.now());
  const sim::Time media_begin = engine_.now();
  co_await channels_->acquire();
  if (gen != generation_) {
    channels_->release();
    co_return;
  }
  co_await sim::delay(engine_, cfg_.service.cmd_fixed_ns + media_latency(op, nblocks));
  channels_->release();
  if (gen != generation_) co_return;
  trace_io_span(qid, sqe.cid, obs::Phase::media, media_begin, engine_.now());
  if (Status st = store_.write(slba, nblocks, *data); !st) {
    complete(qid, sq_head_after, sqe.cid, kScInternalError, 0, gen, 0);
    co_return;
  }
  if (store_.pi_enabled() && (sqe.cdw12 & kPrinfoPract) != 0) {
    // PRACT: the controller generates the DIF tuple over the data it
    // received. If the payload was corrupted in flight, the tuple seals the
    // corrupted bytes — end-to-end write protection needs the host-side
    // verify (driver pi_verify), exactly as with real inline metadata.
    auto& istats = integrity::stats();
    for (std::uint32_t i = 0; i < nblocks; ++i) {
      const std::uint64_t lba = slba + i;
      const auto block = ConstByteSpan(*data).subspan(
          static_cast<std::size_t>(i) * store_.block_size(), store_.block_size());
      store_.write_pi(lba, integrity::generate_pi(block, lba));
      ++istats.pi_generated;
    }
  }
  complete(qid, sq_head_after, sqe.cid, kScSuccess, 0, gen, 0);
}

// --- PRP walking -----------------------------------------------------------------------------

sim::Future<Result<std::vector<fabric::SgEntry>>> Controller::walk_prps(std::uint64_t prp1,
                                                                      std::uint64_t prp2,
                                                                      std::uint64_t total) {
  sim::Promise<Result<std::vector<fabric::SgEntry>>> promise(engine_);
  walk_prps_task(promise, prp1, prp2, total);
  return promise.future();
}

sim::Task Controller::walk_prps_task(sim::Promise<Result<std::vector<fabric::SgEntry>>> promise,
                                     std::uint64_t prp1, std::uint64_t prp2,
                                     std::uint64_t total) {
  std::vector<fabric::SgEntry> sg;
  if (total == 0) {
    promise.set(std::move(sg));
    co_return;
  }
  if (prp1 == 0 || prp1 % 4 != 0) {
    promise.set(Status(Errc::invalid_argument, "PRP1 null or not dword-aligned"));
    co_return;
  }
  const std::uint64_t off1 = prp1 % kPageSize;
  const std::uint64_t first = std::min(total, kPageSize - off1);
  sg.push_back({prp1, static_cast<std::uint32_t>(first)});
  std::uint64_t remaining = total - first;
  if (remaining == 0) {
    promise.set(std::move(sg));
    co_return;
  }
  if (remaining <= kPageSize) {
    // PRP2 is the second (and last) data page; must have offset 0.
    if (prp2 == 0 || prp2 % kPageSize != 0) {
      promise.set(Status(Errc::invalid_argument, "PRP2 null or not page-aligned"));
      co_return;
    }
    sg.push_back({prp2, static_cast<std::uint32_t>(remaining)});
    promise.set(std::move(sg));
    co_return;
  }
  // PRP2 points to a PRP list. With MDTS = 128 KiB a single list page always
  // suffices (<= 31 entries), so chained lists are rejected as invalid.
  if (prp2 == 0 || prp2 % 8 != 0) {
    promise.set(Status(Errc::invalid_argument, "PRP list pointer misaligned"));
    co_return;
  }
  const std::uint64_t entries_needed = div_ceil(remaining, kPageSize);
  const std::uint64_t entries_in_page = (kPageSize - prp2 % kPageSize) / 8;
  if (entries_needed > entries_in_page) {
    promise.set(Status(Errc::invalid_argument, "PRP list would chain (exceeds MDTS model)"));
    co_return;
  }
  // Fetching the PRP list is itself a DMA read and costs simulated time.
  auto list = co_await fabric()->read(dma_initiator(), prp2,
                                      static_cast<std::size_t>(entries_needed) * 8);
  if (!list) {
    promise.set(list.status());
    co_return;
  }
  for (std::uint64_t i = 0; i < entries_needed; ++i) {
    const auto entry = load_pod<std::uint64_t>(*list, static_cast<std::size_t>(i) * 8);
    if (entry == 0 || entry % kPageSize != 0) {
      promise.set(Status(Errc::invalid_argument, "PRP list entry not page-aligned"));
      co_return;
    }
    const std::uint64_t len = std::min(remaining, kPageSize);
    sg.push_back({entry, static_cast<std::uint32_t>(len)});
    remaining -= len;
  }
  promise.set(std::move(sg));
}

}  // namespace nvmeshare::nvme
