// Sparse backing store for one NVMe namespace. Chunked so that a mostly
// empty multi-hundred-GB namespace costs memory proportional to the data
// actually written; unwritten blocks read as zeroes (matching a freshly
// formatted SSD with deallocated blocks).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace nvmeshare::nvme {

class BlockStore {
 public:
  BlockStore(std::uint64_t capacity_blocks, std::uint32_t block_size);

  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept { return capacity_blocks_; }
  [[nodiscard]] std::uint32_t block_size() const noexcept { return block_size_; }

  /// Read `nblocks` starting at `slba`; `out` must be nblocks*block_size.
  Status read(std::uint64_t slba, std::uint32_t nblocks, ByteSpan out) const;
  /// Write `nblocks` starting at `slba`.
  Status write(std::uint64_t slba, std::uint32_t nblocks, ConstByteSpan in);
  /// Deallocate / zero a range (Write Zeroes).
  Status write_zeroes(std::uint64_t slba, std::uint32_t nblocks);

  [[nodiscard]] std::size_t resident_chunks() const noexcept { return chunks_.size(); }

 private:
  static constexpr std::uint64_t kChunkBytes = 32 * 1024;

  [[nodiscard]] Status check_range(std::uint64_t slba, std::uint32_t nblocks) const;

  std::uint64_t capacity_blocks_;
  std::uint32_t block_size_;
  std::unordered_map<std::uint64_t, Bytes> chunks_;  // chunk index -> kChunkBytes
};

}  // namespace nvmeshare::nvme
