// Sparse backing store for one NVMe namespace. Chunked so that a mostly
// empty multi-hundred-GB namespace costs memory proportional to the data
// actually written; unwritten blocks read as zeroes (matching a freshly
// formatted SSD with deallocated blocks).
//
// Formatted with protection information, the store additionally keeps one
// 8-byte DIF tuple per written block ("extended metadata", held out-of-band
// here). Deallocated blocks have no tuple: per spec, checks are skipped for
// them.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "integrity/integrity.hpp"

namespace nvmeshare::nvme {

class BlockStore {
 public:
  BlockStore(std::uint64_t capacity_blocks, std::uint32_t block_size);

  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept { return capacity_blocks_; }
  [[nodiscard]] std::uint32_t block_size() const noexcept { return block_size_; }

  /// Read `nblocks` starting at `slba`; `out` must be nblocks*block_size.
  Status read(std::uint64_t slba, std::uint32_t nblocks, ByteSpan out) const;
  /// Write `nblocks` starting at `slba`.
  Status write(std::uint64_t slba, std::uint32_t nblocks, ConstByteSpan in);
  /// Deallocate / zero a range (Write Zeroes). Drops stored PI: checks are
  /// disabled for deallocated blocks until they are written again.
  Status write_zeroes(std::uint64_t slba, std::uint32_t nblocks);

  // --- protection information ------------------------------------------------

  /// "Format with metadata": enable (or disable) per-block PI storage.
  /// Clears any stored tuples, like a real NVMe Format command would.
  void format_with_pi(bool enabled);
  [[nodiscard]] bool pi_enabled() const noexcept { return pi_enabled_; }

  /// Stored tuple for one block; nullopt if PI is off or the block was
  /// never written (deallocated).
  [[nodiscard]] std::optional<integrity::ProtectionInfo> read_pi(std::uint64_t lba) const;
  /// Store the tuple for one block (no-op unless formatted with PI).
  void write_pi(std::uint64_t lba, const integrity::ProtectionInfo& pi);

  /// Scrub back end: verify each written block's stored tuple against its
  /// stored data and return the number of mismatching blocks. Deallocated
  /// blocks are skipped.
  Result<std::uint64_t> verify_stored_pi(std::uint64_t slba, std::uint32_t nblocks) const;

  [[nodiscard]] std::size_t resident_chunks() const noexcept { return chunks_.size(); }

 private:
  static constexpr std::uint64_t kChunkBytes = 32 * 1024;

  [[nodiscard]] Status check_range(std::uint64_t slba, std::uint32_t nblocks) const;

  std::uint64_t capacity_blocks_;
  std::uint32_t block_size_;
  bool pi_enabled_ = false;
  std::unordered_map<std::uint64_t, Bytes> chunks_;  // chunk index -> kChunkBytes
  std::unordered_map<std::uint64_t, integrity::ProtectionInfo> pi_;  // lba -> tuple
};

}  // namespace nvmeshare::nvme
