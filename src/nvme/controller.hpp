// Simulated single-function NVMe controller (Optane P4800X-like profile).
//
// The controller is a PCIe endpoint: BAR0 carries the register file,
// doorbells, and an MSI-X table. It fetches submission entries with DMA
// reads through the fabric, executes them against a sparse block store with
// a configurable service-time model, transfers data via PRPs, and posts
// completions with correct phase-tag semantics. Because all memory access
// goes through the fabric, queues may live anywhere a DMA address can reach
// — including memory on a remote host behind an NTB, which is exactly the
// property the paper's driver exploits.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "nvme/block_store.hpp"
#include "nvme/spec.hpp"
#include "obs/metrics.hpp"
#include "fabric/endpoint.hpp"
#include "fabric/substrate.hpp"
#include "sim/task.hpp"

namespace nvmeshare::nvme {

class Controller final : public fabric::Endpoint {
 public:
  /// Media / processing latency profile. Defaults approximate an Intel
  /// Optane P4800X: low, very consistent 4 KiB latency (the paper picked
  /// this device precisely for its consistency).
  struct ServiceModel {
    sim::Duration cmd_fixed_ns = 700;    ///< controller-internal processing per command
    sim::Duration read_media_ns = 7200;  ///< 4 KiB (8-block) media read
    sim::Duration write_media_ns = 7800;
    sim::Duration per_block_ns = 14;     ///< additional cost per block beyond 8
    sim::Duration flush_ns = 3000;
    double jitter_sigma = 0.015;         ///< lognormal sigma on media time
    double tail_probability = 0.004;     ///< rare slow command ...
    double tail_multiplier = 2.0;        ///< ... takes this much longer
    sim::Duration admin_ns = 2000;       ///< admin command processing
    sim::Duration enable_ns = 20'000;    ///< CC.EN=1 -> CSTS.RDY=1
    int channels = 7;                    ///< concurrent media operations
    /// Pause before retrying an I/O queue's SQ fetch or CQE post whose DMA
    /// failed (unreachable queue memory, e.g. NTB link down). Per-queue
    /// isolation: only admin-queue DMA failure is controller-fatal.
    sim::Duration queue_retry_ns = 20'000;
  };

  struct Config {
    /// Device name as seen in the SmartIO registry.
    std::string name = "nvme0";
    std::uint16_t max_queue_entries = 1024;  ///< CAP.MQES + 1
    /// Queue pairs including the admin pair. P4800X: 32, hence the paper's
    /// "shared by up to 31 hosts".
    std::uint16_t max_queue_pairs = 32;
    std::uint64_t capacity_blocks = 375ull * 1000 * 1000 * 1000 / 512;
    std::uint32_t block_size = 512;
    /// Format the namespace with Type 1 protection information: the store
    /// keeps a DIF tuple per block, I/O commands honor PRACT/PRCHK, and the
    /// vendor scrub command verifies stored guards. Off by default —
    /// fault-free integrity-off runs execute the seed instruction stream.
    bool pi_enabled = false;
    std::uint16_t fetch_burst = 8;  ///< max SQEs fetched per DMA read
    ServiceModel service;
    std::uint64_t seed = 0x5eed;
  };

  Controller(sim::Engine& engine, Config cfg);

  // --- pcie::Endpoint ---------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return cfg_.name; }
  [[nodiscard]] int bar_count() const override { return 1; }
  [[nodiscard]] std::uint64_t bar_size(int bar) const override {
    return bar == 0 ? 16 * KiB : 0;
  }
  Result<Bytes> bar_read(int bar, std::uint64_t offset, std::size_t len) override;
  Status bar_write(int bar, std::uint64_t offset, ConstByteSpan data) override;

  // --- introspection ------------------------------------------------------------
  [[nodiscard]] bool is_ready() const noexcept { return (csts_ & kCstsReady) != 0; }
  [[nodiscard]] bool is_fatal() const noexcept { return (csts_ & kCstsFatal) != 0; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] BlockStore& store() noexcept { return store_; }
  /// Number of I/O queue pairs currently alive (for tests).
  [[nodiscard]] int active_io_sq_count() const;

  /// Controller counters, also registered as `nvmeshare.controller.*`.
  struct Stats {
    Stats();
    obs::Counter doorbell_writes;
    obs::Counter commands_fetched;
    obs::Counter fetch_dma_reads;
    obs::Counter admin_commands;
    obs::Counter io_reads;
    obs::Counter io_writes;
    obs::Counter io_flushes;
    obs::Counter bytes_read;
    obs::Counter bytes_written;
    obs::Counter errors_completed;  ///< commands completed with non-zero status
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct CqState {
    bool valid = false;
    std::uint64_t base = 0;
    std::uint16_t size = 0;
    std::uint16_t tail = 0;
    std::uint16_t head = 0;  // shadow from CQ head doorbell
    bool phase = true;       // phase of entries the controller writes next
    bool irq_enabled = false;
    std::uint16_t irq_vector = 0;
    std::unique_ptr<sim::Event> space;  // signaled when head doorbell moves
  };
  struct SqState {
    bool valid = false;
    std::uint64_t base = 0;
    std::uint16_t size = 0;
    std::uint16_t head = 0;  // controller consume pointer
    std::uint16_t tail = 0;  // shadow from SQ tail doorbell
    std::uint16_t cqid = 0;
    /// QPRIO from Create I/O SQ (SqPriority value); only consulted when the
    /// controller was enabled with CC.AMS = WRR.
    std::uint8_t prio = 0;
    /// Earliest time the arbiter may retry this queue after a transient
    /// fetch-DMA failure (per-queue isolation: other queues keep flowing).
    sim::Time retry_not_before = 0;
  };
  struct MsixEntry {
    std::uint64_t addr = 0;
    std::uint32_t data = 0;
    bool masked = true;
  };

  // Register handling.
  [[nodiscard]] std::uint64_t read_register(std::uint64_t offset, std::size_t len) const;
  void write_cc(std::uint32_t value);
  void handle_doorbell(std::uint64_t offset, std::uint32_t value);
  void enable_controller();
  void disable_controller(bool fatal);

  // Command pipeline. One central arbiter services every SQ doorbell: the
  // admin queue drains with strict priority, then the I/O queues take turns
  // of at most arbitration-burst commands each (the burst is Set Features /
  // Arbitration AB). The turn order is the mechanism latched from CC.AMS at
  // enable time: plain round robin, or weighted round robin with urgent
  // class — urgent queues strictly first, then high/medium/low spending
  // per-class credits reloaded from the arbitration weights.
  sim::Task arbiter_task(std::uint64_t gen);
  /// WRR queue selection for one arbitration turn. Returns the chosen qid
  /// (0 = nothing fetchable); queues mid-retry set `deferred`/`next_retry`
  /// exactly like the round-robin scan.
  [[nodiscard]] std::uint16_t wrr_pick(bool& deferred, sim::Time& next_retry);
  /// Fetch and dispatch up to `limit` commands from `qid` with one DMA
  /// read. Resolves with the count fetched, -1 after a transient DMA
  /// failure (the queue's retry_not_before was armed), -2 on a fatal one.
  [[nodiscard]] sim::Future<int> fetch_turn(std::uint16_t qid, std::uint16_t limit,
                                            std::uint64_t gen);
  sim::Task fetch_turn_task(std::uint16_t qid, std::uint16_t limit, std::uint64_t gen,
                            sim::Promise<int> promise);
  /// Commands one I/O queue may fetch per arbitration turn (2^AB; AB = 7
  /// means unlimited per spec).
  [[nodiscard]] std::uint16_t arb_burst() const noexcept {
    return arb_burst_log2_ >= 7 ? 0xFFFF
                                : static_cast<std::uint16_t>(1u << arb_burst_log2_);
  }
  sim::Task execute_command(std::uint16_t qid, SubmissionEntry sqe, std::uint16_t sq_head_after,
                            std::uint64_t gen);
  sim::Task complete(std::uint16_t sqid, std::uint16_t sq_head_after, std::uint16_t cid,
                     std::uint16_t status, std::uint32_t dw0, std::uint64_t gen,
                     sim::Time not_before);

  // Admin handlers; return {status, dw0}.
  struct AdminResult {
    std::uint16_t status = kScSuccess;
    std::uint32_t dw0 = 0;
  };
  sim::Task run_admin(SubmissionEntry sqe, std::uint16_t sq_head_after, std::uint64_t gen);
  AdminResult admin_create_cq(const SubmissionEntry& sqe);
  AdminResult admin_create_sq(const SubmissionEntry& sqe, std::uint64_t gen);
  AdminResult admin_delete_sq(const SubmissionEntry& sqe);
  AdminResult admin_delete_cq(const SubmissionEntry& sqe);
  AdminResult admin_set_features(const SubmissionEntry& sqe);
  AdminResult admin_get_features(const SubmissionEntry& sqe);

  sim::Task run_io(std::uint16_t qid, SubmissionEntry sqe, std::uint16_t sq_head_after,
                   std::uint64_t gen);

  /// Decode the PRP chain of a command into a scatter list of `total` bytes.
  /// May cost simulated time (PRP-list fetch is a DMA read).
  sim::Future<Result<std::vector<fabric::SgEntry>>> walk_prps(std::uint64_t prp1,
                                                            std::uint64_t prp2,
                                                            std::uint64_t total);
  sim::Task walk_prps_task(sim::Promise<Result<std::vector<fabric::SgEntry>>> promise,
                           std::uint64_t prp1, std::uint64_t prp2, std::uint64_t total);

  [[nodiscard]] sim::Duration media_latency(IoOpcode op, std::uint32_t nblocks);

  sim::Engine& engine_;
  Config cfg_;
  BlockStore store_;
  Rng rng_;

  // Register file.
  std::uint64_t cap_ = 0;
  std::uint32_t vs_ = 0x00010400;  // 1.4
  std::uint32_t cc_ = 0;
  std::uint32_t csts_ = 0;
  std::uint32_t aqa_ = 0;
  std::uint64_t asq_ = 0;
  std::uint64_t acq_ = 0;

  std::vector<SqState> sqs_;
  std::vector<CqState> cqs_;
  std::vector<MsixEntry> msix_;
  std::unique_ptr<sim::Semaphore> channels_;
  std::unique_ptr<sim::Event> work_;  ///< any SQ doorbell; wakes the arbiter
  std::uint16_t rr_next_ = 1;         ///< next I/O queue to offer a turn
  std::uint8_t arb_burst_log2_ = 3;   ///< Arbitration feature AB field
  /// Arbitration mechanism latched from CC.AMS when the controller was
  /// enabled (writes to CC while enabled do not re-arbitrate).
  std::uint32_t ams_ = kCcAmsRoundRobin;
  std::uint8_t lpw_ = 0;  ///< low-priority weight, 0-based (weight = LPW+1)
  std::uint8_t mpw_ = 0;  ///< medium-priority weight, 0-based
  std::uint8_t hpw_ = 0;  ///< high-priority weight, 0-based
  std::array<std::uint16_t, 4> wrr_next_{};    ///< per-class round-robin cursor
  std::array<std::uint32_t, 3> wrr_credits_{};  ///< high/medium/low turns left
  std::uint64_t generation_ = 0;  ///< bumped on reset; stale work is dropped
  std::uint16_t granted_io_queues_ = 0;
  std::vector<std::uint16_t> pending_aer_cids_;
  Stats stats_;
};

}  // namespace nvmeshare::nvme
