#include "nvme/queue.hpp"

#include "common/log.hpp"

namespace nvmeshare::nvme {

QueuePair::Stats::Stats()
    : sqes_pushed("nvmeshare.queue.sqes_pushed"),
      sq_doorbells("nvmeshare.queue.sq_doorbells"),
      cq_doorbells("nvmeshare.queue.cq_doorbells"),
      cqes_consumed("nvmeshare.queue.cqes_consumed"),
      reap_batches("nvmeshare.queue.reap_batches"),
      spurious_cqes("nvmeshare.queue.spurious_cqes") {}

QueuePair::QueuePair(fabric::Substrate& fabric, Config cfg) : fabric_(fabric), cfg_(cfg) {
  cid_busy_.assign(cfg_.sq_size, false);
}

void QueuePair::restore(const RingState& s) {
  sq_tail_ = static_cast<std::uint16_t>(s.sq_tail % cfg_.sq_size);
  cq_head_ = static_cast<std::uint16_t>(s.cq_head % cfg_.cq_size);
  next_cid_ = static_cast<std::uint16_t>(s.next_cid % cfg_.sq_size);
  expected_phase_ = s.expected_phase;
  inflight_ = 0;
  cid_busy_.assign(cfg_.sq_size, false);
}

Result<std::uint16_t> QueuePair::push(SubmissionEntry entry) {
  if (sq_full()) return Status(Errc::resource_exhausted, "submission queue full");

  // Allocate a CID (bounded scan: at most sq_size slots, and we know one is
  // free because the queue is not full).
  std::uint16_t cid = next_cid_;
  while (cid_busy_[cid]) cid = static_cast<std::uint16_t>((cid + 1) % cfg_.sq_size);
  next_cid_ = static_cast<std::uint16_t>((cid + 1) % cfg_.sq_size);
  cid_busy_[cid] = true;
  entry.cid = cid;

  auto arrival = fabric_.post_write(
      cfg_.cpu, cfg_.sq_write_addr + static_cast<std::uint64_t>(sq_tail_) * sizeof(entry),
      as_bytes_of(entry));
  if (!arrival) {
    cid_busy_[cid] = false;
    return arrival.status();
  }
  sq_tail_ = static_cast<std::uint16_t>((sq_tail_ + 1) % cfg_.sq_size);
  ++inflight_;
  ++stats_.sqes_pushed;
  return cid;
}

Status QueuePair::ring_sq_doorbell() {
  const auto tail = static_cast<std::uint32_t>(sq_tail_);
  auto arrival = fabric_.post_write(cfg_.cpu, cfg_.sq_doorbell_addr, as_bytes_of(tail));
  if (arrival) ++stats_.sq_doorbells;
  return arrival.status();
}

bool QueuePair::take_at_head(CompletionEntry& e) {
  Status st = fabric_.poll_read(
      cfg_.cpu.host, cfg_.cq_poll_addr + static_cast<std::uint64_t>(cq_head_) * sizeof(e),
      as_writable_bytes_of(e));
  // Single branch covers both "queue memory unreachable" and "stale phase
  // tag"; `st` failing leaves `e` unread, and phase() of garbage is never
  // consulted because && short-circuits on the status first.
  if (!st || e.phase() != expected_phase_) return false;

  cq_head_ = static_cast<std::uint16_t>((cq_head_ + 1) % cfg_.cq_size);
  if (cq_head_ == 0) expected_phase_ = !expected_phase_;
  if (e.cid < cid_busy_.size() && cid_busy_[e.cid]) [[likely]] {
    cid_busy_[e.cid] = false;
    --inflight_;
  } else {
    // A completion for a CID we never issued (or already retired): a
    // duplicate, stale, or corrupted CQE. Consume it so the ring keeps
    // moving, but leave a trace — silent drops here hide device bugs.
    ++stats_.spurious_cqes;
    NVS_LOG(warn, "queue") << "qid " << cfg_.qid << " spurious CQE: cid " << e.cid
                           << " not in flight (status " << e.status() << ")";
  }
  ++stats_.cqes_consumed;
  return true;
}

std::optional<CompletionEntry> QueuePair::poll() {
  CompletionEntry e;
  if (!take_at_head(e)) return std::nullopt;
  return e;
}

std::size_t QueuePair::reap(std::span<CompletionEntry> out) {
  std::size_t n = 0;
  while (n < out.size() && take_at_head(out[n])) ++n;
  if (n > 0) ++stats_.reap_batches;
  return n;
}

Status QueuePair::ring_cq_doorbell() {
  const auto head = static_cast<std::uint32_t>(cq_head_);
  auto arrival = fabric_.post_write(cfg_.cpu, cfg_.cq_doorbell_addr, as_bytes_of(head));
  if (arrival) ++stats_.cq_doorbells;
  return arrival.status();
}

}  // namespace nvmeshare::nvme
