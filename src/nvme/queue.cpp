#include "nvme/queue.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nvmeshare::nvme {

QueuePair::Stats::Stats()
    : sqes_pushed("nvmeshare.queue.sqes_pushed"),
      sq_doorbells("nvmeshare.queue.sq_doorbells"),
      cq_doorbells("nvmeshare.queue.cq_doorbells"),
      cqes_consumed("nvmeshare.queue.cqes_consumed"),
      reap_batches("nvmeshare.queue.reap_batches"),
      spurious_cqes("nvmeshare.queue.spurious_cqes"),
      cid_exhausted("nvmeshare.queue.cid_exhausted") {}

QueuePair::QueuePair(fabric::Substrate& fabric, Config cfg) : fabric_(fabric), cfg_(cfg) {
  cid_busy_.assign(cfg_.sq_size, false);
}

void QueuePair::restore(const RingState& s) {
  sq_tail_ = static_cast<std::uint16_t>(s.sq_tail % cfg_.sq_size);
  cq_head_ = static_cast<std::uint16_t>(s.cq_head % cfg_.cq_size);
  next_cid_ = static_cast<std::uint16_t>(s.next_cid % cfg_.sq_size);
  expected_phase_ = s.expected_phase;
  inflight_ = 0;
  cid_busy_.assign(cfg_.sq_size, false);
}

Result<std::uint16_t> QueuePair::push(SubmissionEntry entry) {
  if (sq_full()) return Status(Errc::resource_exhausted, "submission queue full");

  // Allocate a CID. The scan gives up after one full lap instead of
  // spinning: with every CID busy (or a desynced busy map) the old
  // unbounded loop livelocked the submitting task forever; returning
  // resource_exhausted lets IoEngine backpressure and retry after
  // completions drain.
  std::uint16_t cid = next_cid_;
  std::uint16_t scanned = 0;
  while (cid_busy_[cid]) {
    cid = static_cast<std::uint16_t>((cid + 1) % cfg_.sq_size);
    if (++scanned == cfg_.sq_size) {
      ++stats_.cid_exhausted;
      return Status(Errc::resource_exhausted, "no free CID");
    }
  }
  next_cid_ = static_cast<std::uint16_t>((cid + 1) % cfg_.sq_size);
  return place(entry, cid);
}

Result<std::uint16_t> QueuePair::push(SubmissionEntry entry, const CidRange& range) {
  if (range.lo >= range.hi || range.hi > cfg_.sq_size)
    return Status(Errc::invalid_argument, "cid range outside submission queue");
  if (sq_full()) return Status(Errc::resource_exhausted, "submission queue full");

  // First-free scan within the tenant's slice. A sub-range routinely
  // exhausts while the queue is not full, so this is the multiplexer's
  // steady-state backpressure signal, not an error path.
  for (std::uint16_t cid = range.lo; cid < range.hi; ++cid) {
    if (!cid_busy_[cid]) return place(entry, cid);
  }
  ++stats_.cid_exhausted;
  return Status(Errc::resource_exhausted, "cid range exhausted");
}

std::uint16_t QueuePair::free_in_range(const CidRange& range) const noexcept {
  const std::uint16_t hi = std::min(range.hi, cfg_.sq_size);
  std::uint16_t n = 0;
  for (std::uint16_t cid = range.lo; cid < hi; ++cid) n += cid_busy_[cid] ? 0 : 1;
  return n;
}

Result<std::uint16_t> QueuePair::place(SubmissionEntry entry, std::uint16_t cid) {
  cid_busy_[cid] = true;
  entry.cid = cid;

  auto arrival = fabric_.post_write(
      cfg_.cpu, cfg_.sq_write_addr + static_cast<std::uint64_t>(sq_tail_) * sizeof(entry),
      as_bytes_of(entry));
  if (!arrival) {
    cid_busy_[cid] = false;
    return arrival.status();
  }
  sq_tail_ = static_cast<std::uint16_t>((sq_tail_ + 1) % cfg_.sq_size);
  ++inflight_;
  ++stats_.sqes_pushed;
  return cid;
}

Status QueuePair::ring_sq_doorbell() {
  const auto tail = static_cast<std::uint32_t>(sq_tail_);
  auto arrival = fabric_.post_write(cfg_.cpu, cfg_.sq_doorbell_addr, as_bytes_of(tail));
  if (arrival) ++stats_.sq_doorbells;
  return arrival.status();
}

bool QueuePair::take_at_head(CompletionEntry& e) {
  Status st = fabric_.poll_read(
      cfg_.cpu.host, cfg_.cq_poll_addr + static_cast<std::uint64_t>(cq_head_) * sizeof(e),
      as_writable_bytes_of(e));
  // Single branch covers both "queue memory unreachable" and "stale phase
  // tag"; `st` failing leaves `e` unread, and phase() of garbage is never
  // consulted because && short-circuits on the status first.
  if (!st || e.phase() != expected_phase_) return false;

  cq_head_ = static_cast<std::uint16_t>((cq_head_ + 1) % cfg_.cq_size);
  if (cq_head_ == 0) expected_phase_ = !expected_phase_;
  if (e.cid < cid_busy_.size() && cid_busy_[e.cid]) [[likely]] {
    cid_busy_[e.cid] = false;
    --inflight_;
  } else {
    // A completion for a CID we never issued (or already retired): a
    // duplicate, stale, or corrupted CQE. Consume it so the ring keeps
    // moving, but leave a trace — silent drops here hide device bugs.
    ++stats_.spurious_cqes;
    NVS_LOG(warn, "queue") << "qid " << cfg_.qid << " spurious CQE: cid " << e.cid
                           << " not in flight (status " << e.status() << ")";
  }
  ++stats_.cqes_consumed;
  return true;
}

std::optional<CompletionEntry> QueuePair::poll() {
  CompletionEntry e;
  if (!take_at_head(e)) return std::nullopt;
  return e;
}

std::size_t QueuePair::reap(std::span<CompletionEntry> out) {
  std::size_t n = 0;
  while (n < out.size() && take_at_head(out[n])) ++n;
  if (n > 0) ++stats_.reap_batches;
  return n;
}

Status QueuePair::ring_cq_doorbell() {
  const auto head = static_cast<std::uint32_t>(cq_head_);
  auto arrival = fabric_.post_write(cfg_.cpu, cfg_.cq_doorbell_addr, as_bytes_of(head));
  if (arrival) ++stats_.cq_doorbells;
  return arrival.status();
}

}  // namespace nvmeshare::nvme
