// Host-side view of one NVMe queue pair: SQ tail/CQ head bookkeeping, phase
// tag tracking, CID allocation, and the actual (posted) stores that reach
// the queue memory and doorbells through the PCIe fabric.
//
// Shared by every driver in the tree: the distributed driver's manager and
// clients, the local baseline driver, and the NVMe-oF target. The queue
// memory may be local DRAM, an NTB window, or CXL pooled memory — the ring
// logic is identical,
// which is precisely the paper's observation that "any address a controller
// can use DMA to is a valid queue memory location".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "nvme/spec.hpp"
#include "obs/metrics.hpp"
#include "fabric/substrate.hpp"

namespace nvmeshare::nvme {

/// A contiguous `[lo, hi)` slice of a queue pair's CID space. Tenant shares
/// (src/mux) each hold a disjoint range so completions can be routed back to
/// their owner by CID alone, with no per-command tagging on the wire.
struct CidRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 0;  ///< exclusive
  [[nodiscard]] std::uint16_t count() const noexcept {
    return static_cast<std::uint16_t>(hi - lo);
  }
  [[nodiscard]] bool contains(std::uint16_t cid) const noexcept {
    return cid >= lo && cid < hi;
  }
  [[nodiscard]] bool overlaps(const CidRange& o) const noexcept {
    return lo < o.hi && o.lo < hi;
  }
  friend bool operator==(const CidRange&, const CidRange&) = default;
};

class QueuePair {
 public:
  struct Config {
    std::uint16_t qid = 0;
    std::uint16_t sq_size = 0;
    std::uint16_t cq_size = 0;
    /// Address (in the operating host's space) where SQEs are written.
    std::uint64_t sq_write_addr = 0;
    /// Address (in the operating host's space) where CQEs are polled; must
    /// be CPU-pollable without stalling (local DRAM, pooled memory, or an
    /// established CPU window).
    std::uint64_t cq_poll_addr = 0;
    std::uint64_t sq_doorbell_addr = 0;
    std::uint64_t cq_doorbell_addr = 0;
    fabric::Initiator cpu;  ///< the host operating this queue pair
  };

  QueuePair(fabric::Substrate& fabric, Config cfg);

  [[nodiscard]] std::uint16_t qid() const noexcept { return cfg_.qid; }
  /// Commands currently submitted but not yet completed.
  [[nodiscard]] std::uint16_t inflight() const noexcept { return inflight_; }
  [[nodiscard]] bool sq_full() const noexcept {
    return inflight_ >= static_cast<std::uint16_t>(cfg_.sq_size - 1);
  }

  /// Write one SQE at the current tail (posted store through the fabric),
  /// assigning a free CID which is also returned. Does not ring the
  /// doorbell, so several entries can be batched per doorbell write.
  ///
  /// Backpressure contract: when every CID is busy (queue full, or a full
  /// lap of the scan finds no free slot) this returns
  /// `Errc::resource_exhausted` instead of spinning — callers retry after
  /// completions drain. The scan is bounded by construction.
  Result<std::uint16_t> push(SubmissionEntry entry);

  /// Ranged variant for multiplexed tenants: allocate the CID only from
  /// `range` (`[lo, hi)` must lie inside the SQ). A tenant's sub-range can
  /// be exhausted while the queue itself is not full, so the
  /// `resource_exhausted` backpressure path is the common case here, not a
  /// corner case.
  Result<std::uint16_t> push(SubmissionEntry entry, const CidRange& range);

  /// Free CIDs remaining in `range` (range is clamped to the SQ).
  [[nodiscard]] std::uint16_t free_in_range(const CidRange& range) const noexcept;

  /// Ring the SQ tail doorbell with the current tail value.
  Status ring_sq_doorbell();

  /// Check the CQ head slot once. Consumes and returns the entry if a new
  /// completion (correct phase tag) is present. Zero simulated cost: the
  /// caller models its polling cadence.
  std::optional<CompletionEntry> poll();

  /// Batched reap: drain up to `out.size()` ready completions in one pass.
  /// Returns the number of entries written (stops at the first slot whose
  /// phase tag is stale). Rings no doorbell — callers batch that too. A
  /// non-empty drain counts one `nvmeshare.queue.reap_batches`, so the mean
  /// batch size is cqes_consumed / reap_batches.
  std::size_t reap(std::span<CompletionEntry> out);

  /// Tell the controller how far the CQ has been consumed.
  Status ring_cq_doorbell();

  /// Externally persisted ring cursors — what a hot-standby manager needs to
  /// continue an admin queue pair another host was operating (the ring
  /// memory itself survives in that host's DRAM).
  struct RingState {
    std::uint16_t sq_tail = 0;
    std::uint16_t cq_head = 0;
    std::uint16_t next_cid = 0;
    bool expected_phase = true;
  };
  [[nodiscard]] RingState ring_state() const noexcept {
    return {sq_tail_, cq_head_, next_cid_, expected_phase_};
  }

  /// Adopt ring cursors persisted by this queue pair's previous operator.
  /// Only the cursors move — the ring contents stay untouched. The previous
  /// operator's in-flight CIDs are *not* restored: their completions, if
  /// they ever arrive, surface through the counted spurious-CQE path.
  void restore(const RingState& s);

  /// Per-queue-pair ring counters, also registered as `nvmeshare.queue.*`
  /// (aggregated across every driver's queue pairs).
  struct Stats {
    Stats();
    obs::Counter sqes_pushed;
    obs::Counter sq_doorbells;
    obs::Counter cq_doorbells;
    obs::Counter cqes_consumed;
    /// Non-empty reap() drains (mean batch size = cqes_consumed / reap_batches).
    obs::Counter reap_batches;
    /// CQEs whose CID was out of range or not in flight (duplicate or
    /// corrupted completion) — consumed, counted, and logged, never
    /// silently dropped.
    obs::Counter spurious_cqes;
    /// push() attempts rejected because no free CID existed in the
    /// requested range — the backpressure signal that replaced the old
    /// allocator's unbounded scan.
    obs::Counter cid_exhausted;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Consume the CQ head slot into `e` if a fresh completion is present.
  bool take_at_head(CompletionEntry& e);

  /// Write `entry` (CID already chosen and marked busy by the caller) at
  /// the current tail.
  Result<std::uint16_t> place(SubmissionEntry entry, std::uint16_t cid);

  fabric::Substrate& fabric_;
  Config cfg_;
  std::uint16_t sq_tail_ = 0;
  std::uint16_t cq_head_ = 0;
  bool expected_phase_ = true;
  std::uint16_t inflight_ = 0;
  std::uint16_t next_cid_ = 0;
  std::vector<bool> cid_busy_;
  Stats stats_;
};

}  // namespace nvmeshare::nvme
