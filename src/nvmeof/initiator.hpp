// Kernel-style NVMe-oF initiator over RDMA (Figure 9a's client side): a
// block device whose submit path builds a command capsule and SENDs it to
// the target; data moves one-sided (target-initiated RDMA), and completion
// capsules arrive via RECV with interrupt-driven handling.
//
// Submission, deadline, retry, and reconnect orchestration live in the
// shared block::IoEngine; this file supplies the message-transport
// personality: an issue stages a capsule, a ring posts the staged SENDs
// (so doorbell coalescing maps to SEND batching), and a broken channel is
// re-established by accepting a fresh RDMA queue pair from the target.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "block/block.hpp"
#include "block/io_engine.hpp"
#include "driver/cost_model.hpp"
#include "nvmeof/capsule.hpp"
#include "nvmeof/target.hpp"
#include "obs/metrics.hpp"
#include "rdma/rdma.hpp"

namespace nvmeshare::nvmeof {

class Initiator final : public block::BlockDevice, private block::IoTransport {
 public:
  struct Config {
    std::uint32_t queue_depth = 32;  ///< concurrent requests per channel
    /// I/O channels: independent RDMA queue pairs to the target, sharing
    /// one completion queue (kernel initiators open one QP per core).
    std::uint32_t channels = 1;
    block::IoEngine::Scheduler scheduler = block::IoEngine::Scheduler::round_robin;
    /// Batch SENDs: capsules staged within one doorbell-latency window go
    /// out in a single post burst (off = seed stream, one post per capsule).
    bool coalesce_doorbells = false;
    driver::CostModel costs = driver::CostModel::nvmeof_initiator();
    // --- fault recovery (docs/faults.md); off by default ------------------
    /// Per-capsule response deadline. 0 disables the watchdog and with it
    /// retries and reconnects (commands then wait forever, the seed
    /// behavior).
    sim::Duration capsule_timeout_ns = 0;
    /// SEND attempts per command before the connection is re-established.
    std::uint32_t capsule_retry_limit = 3;
    /// Backoff before the first retry; doubles per subsequent attempt.
    sim::Duration retry_backoff_ns = 100'000;
    /// Attach a CRC-32C data digest (DDGST) to write capsules and verify
    /// the digest the target returns with read payloads. A read-digest
    /// mismatch re-enters the capsule retry machinery. Off by default.
    bool data_digest = false;
    std::uint64_t seed = 0x1217;
  };

  /// Connect to a target from `node`.
  static sim::Future<Result<std::unique_ptr<Initiator>>> connect(sisci::Cluster& cluster,
                                                                 rdma::Network& network,
                                                                 Target& target,
                                                                 rdma::NodeId node, Config cfg);

  ~Initiator() override;
  Initiator(const Initiator&) = delete;
  Initiator& operator=(const Initiator&) = delete;

  // --- block::BlockDevice ------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "nvme-of"; }
  [[nodiscard]] std::uint32_t block_size() const override { return block_size_; }
  [[nodiscard]] std::uint64_t capacity_blocks() const override { return capacity_blocks_; }
  [[nodiscard]] std::uint32_t max_queue_depth() const override {
    return cfg_.queue_depth * cfg_.channels;
  }
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override { return max_transfer_; }
  sim::Future<block::Completion> submit(const block::Request& request) override;

  /// The shared submission core (per-channel inflight/doorbell metrics).
  [[nodiscard]] const block::IoEngine& io_engine() const noexcept { return *engine_io_; }

  /// Per-initiator counters, also registered as `nvmeshare.nvmeof_initiator.*`.
  struct Stats {
    Stats();
    obs::Counter reads;
    obs::Counter writes;
    obs::Counter flushes;
    obs::Counter errors;
    obs::Counter interrupts;
    obs::Counter capsule_timeouts;  ///< response deadlines that expired
    obs::Counter capsule_retries;   ///< capsules re-sent after a timeout
    obs::Counter reconnects;        ///< connection re-establishments
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// What one issue() stages for the next SEND burst.
  struct SendDesc {
    std::uint64_t addr = 0;
    std::uint32_t len = 0;
    std::uint16_t cid = 0;  ///< engine-global slot, unique across channels
  };

  Initiator(sisci::Cluster& cluster, rdma::Network& network, rdma::NodeId node, Config cfg);

  static sim::Task connect_task(std::unique_ptr<Initiator> self, Target* target,
                                sim::Promise<Result<std::unique_ptr<Initiator>>> promise);
  sim::Task io_task(block::Request request, sim::Promise<block::Completion> promise);
  sim::Task completion_loop(std::shared_ptr<bool> stop);
  sim::Task reconnect_task(std::uint32_t chan, std::shared_ptr<bool> stop);
  /// Post channel `chan`'s share of the RECV ring on its queue pair.
  void post_recv_ring(std::uint32_t chan);

  // --- block::IoTransport (the message-transport personality) --------------
  Result<std::uint16_t> issue(std::uint32_t chan, void* cookie) override;
  Status ring(std::uint32_t chan) override;
  [[nodiscard]] bool ring_failure_fails_attempt() const override { return true; }
  [[nodiscard]] bool retryable(std::uint16_t status) const override;
  void start_recovery(std::uint32_t chan) override;
  [[nodiscard]] std::uint16_t trace_qid(std::uint32_t chan) const override;

  sisci::Cluster& cluster_;
  rdma::Network& network_;
  rdma::NodeId node_;
  Config cfg_;
  Rng rng_;

  std::unique_ptr<rdma::Context> ctx_;
  std::unique_ptr<rdma::CompletionQueue> cq_;
  std::vector<rdma::QueuePair*> qps_;  ///< one per channel, shared CQ
  std::uint64_t cmd_base_ = 0;   ///< total_depth command capsule buffers
  std::uint64_t resp_base_ = 0;  ///< total_depth response capsule buffers

  std::uint64_t capacity_blocks_ = 0;
  std::uint32_t block_size_ = 0;
  std::uint32_t max_transfer_ = 0;

  std::unique_ptr<block::IoEngine> engine_io_;
  std::vector<std::vector<SendDesc>> staged_;  ///< per channel, until ring()
  Target* target_ = nullptr;  ///< for reconnects (targets outlive initiators)
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  Stats stats_;
};

}  // namespace nvmeshare::nvmeof
