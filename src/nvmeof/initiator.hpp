// Kernel-style NVMe-oF initiator over RDMA (Figure 9a's client side): a
// block device whose submit path builds a command capsule and SENDs it to
// the target; data moves one-sided (target-initiated RDMA), and completion
// capsules arrive via RECV with interrupt-driven handling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "block/block.hpp"
#include "driver/cost_model.hpp"
#include "nvmeof/capsule.hpp"
#include "nvmeof/target.hpp"
#include "obs/metrics.hpp"
#include "rdma/rdma.hpp"

namespace nvmeshare::nvmeof {

class Initiator final : public block::BlockDevice {
 public:
  struct Config {
    std::uint32_t queue_depth = 32;
    driver::CostModel costs = driver::CostModel::nvmeof_initiator();
    // --- fault recovery (docs/faults.md); off by default ------------------
    /// Per-capsule response deadline. 0 disables the watchdog and with it
    /// retries and reconnects (commands then wait forever, the seed
    /// behavior).
    sim::Duration capsule_timeout_ns = 0;
    /// SEND attempts per command before the connection is re-established.
    std::uint32_t capsule_retry_limit = 3;
    /// Backoff before the first retry; doubles per subsequent attempt.
    sim::Duration retry_backoff_ns = 100'000;
    /// Attach a CRC-32C data digest (DDGST) to write capsules and verify
    /// the digest the target returns with read payloads. A read-digest
    /// mismatch re-enters the capsule retry machinery. Off by default.
    bool data_digest = false;
    std::uint64_t seed = 0x1217;
  };

  /// Connect to a target from `node`.
  static sim::Future<Result<std::unique_ptr<Initiator>>> connect(sisci::Cluster& cluster,
                                                                 rdma::Network& network,
                                                                 Target& target,
                                                                 rdma::NodeId node, Config cfg);

  ~Initiator() override;
  Initiator(const Initiator&) = delete;
  Initiator& operator=(const Initiator&) = delete;

  // --- block::BlockDevice ------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "nvme-of"; }
  [[nodiscard]] std::uint32_t block_size() const override { return block_size_; }
  [[nodiscard]] std::uint64_t capacity_blocks() const override { return capacity_blocks_; }
  [[nodiscard]] std::uint32_t max_queue_depth() const override { return cfg_.queue_depth; }
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override { return max_transfer_; }
  sim::Future<block::Completion> submit(const block::Request& request) override;

  /// Per-initiator counters, also registered as `nvmeshare.nvmeof_initiator.*`.
  struct Stats {
    Stats();
    obs::Counter reads;
    obs::Counter writes;
    obs::Counter flushes;
    obs::Counter errors;
    obs::Counter interrupts;
    obs::Counter capsule_timeouts;  ///< response deadlines that expired
    obs::Counter capsule_retries;   ///< capsules re-sent after a timeout
    obs::Counter reconnects;        ///< connection re-establishments
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Initiator(sisci::Cluster& cluster, rdma::Network& network, rdma::NodeId node, Config cfg);

  static sim::Task connect_task(std::unique_ptr<Initiator> self, Target* target,
                                sim::Promise<Result<std::unique_ptr<Initiator>>> promise);
  sim::Task io_task(block::Request request, sim::Promise<block::Completion> promise);
  sim::Task completion_loop(std::shared_ptr<bool> stop);
  /// Kick off a connection re-establishment if one is not already running.
  void start_reconnect();
  sim::Task reconnect_task(std::shared_ptr<bool> stop);

  sisci::Cluster& cluster_;
  rdma::Network& network_;
  rdma::NodeId node_;
  Config cfg_;
  Rng rng_;

  std::unique_ptr<rdma::Context> ctx_;
  std::unique_ptr<rdma::CompletionQueue> cq_;
  rdma::QueuePair* qp_ = nullptr;
  std::uint64_t cmd_base_ = 0;   ///< queue_depth command capsule buffers
  std::uint64_t resp_base_ = 0;  ///< queue_depth response capsule buffers

  std::uint64_t capacity_blocks_ = 0;
  std::uint32_t block_size_ = 0;
  std::uint32_t max_transfer_ = 0;

  std::unique_ptr<sim::Semaphore> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// One in-flight command. `seq` disambiguates slot reuse: the deadline
  /// callback only fires if the slot still belongs to the same send.
  struct PendingRsp {
    sim::Promise<ResponseCapsule> promise;
    std::uint64_t seq = 0;
  };
  std::map<std::uint16_t, PendingRsp> pending_;
  std::uint64_t rsp_seq_ = 0;
  Target* target_ = nullptr;  ///< for reconnects (targets outlive initiators)
  bool reconnecting_ = false;
  std::unique_ptr<sim::Event> reconnected_;  ///< set whenever no reconnect runs
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  Stats stats_;
};

}  // namespace nvmeshare::nvmeof
