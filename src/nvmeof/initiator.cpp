#include "nvmeof/initiator.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "integrity/integrity.hpp"
#include "obs/trace.hpp"

namespace nvmeshare::nvmeof {

namespace {
constexpr std::uint64_t kWrSend = 4ull << 56;
constexpr std::uint64_t kWrRecv = 1ull << 56;
constexpr std::uint64_t kWrSlotMask = (1ull << 56) - 1;

// A timed-out capsule wait is resolved with a sentinel response carrying an
// impossible status (real NVMe status fields are 15-bit, so 0xffff can
// never arrive off the wire).
constexpr std::uint16_t kTimeoutStatus = 0xffff;

ResponseCapsule timeout_sentinel(std::uint16_t cid) {
  ResponseCapsule r;
  r.cid = cid;
  r.status = kTimeoutStatus;
  return r;
}

sim::Duration backoff_ns(sim::Duration base, std::uint32_t attempt) {
  return base << std::min<std::uint32_t>(attempt > 0 ? attempt - 1 : 0, 10);
}

obs::Kind trace_kind(block::Op op) {
  switch (op) {
    case block::Op::read: return obs::Kind::read;
    case block::Op::write: return obs::Kind::write;
    case block::Op::flush: return obs::Kind::flush;
    case block::Op::write_zeroes: return obs::Kind::write_zeroes;
    case block::Op::discard: return obs::Kind::discard;
  }
  return obs::Kind::other;
}
}  // namespace

Initiator::Stats::Stats()
    : reads("nvmeshare.nvmeof_initiator.reads"),
      writes("nvmeshare.nvmeof_initiator.writes"),
      flushes("nvmeshare.nvmeof_initiator.flushes"),
      errors("nvmeshare.nvmeof_initiator.errors"),
      interrupts("nvmeshare.nvmeof_initiator.interrupts"),
      capsule_timeouts("nvmeshare.nvmeof_initiator.capsule_timeouts"),
      capsule_retries("nvmeshare.nvmeof_initiator.capsule_retries"),
      reconnects("nvmeshare.nvmeof_initiator.reconnects") {}

Initiator::Initiator(sisci::Cluster& cluster, rdma::Network& network, rdma::NodeId node,
                     Config cfg)
    : cluster_(cluster), network_(network), node_(node), cfg_(cfg), rng_(cfg.seed ^ node) {}

Initiator::~Initiator() { *stop_ = true; }

sim::Future<Result<std::unique_ptr<Initiator>>> Initiator::connect(sisci::Cluster& cluster,
                                                                   rdma::Network& network,
                                                                   Target& target,
                                                                   rdma::NodeId node,
                                                                   Config cfg) {
  sim::Promise<Result<std::unique_ptr<Initiator>>> promise(cluster.engine());
  auto self = std::unique_ptr<Initiator>(new Initiator(cluster, network, node, cfg));
  connect_task(std::move(self), &target, promise);
  return promise.future();
}

sim::Task Initiator::connect_task(std::unique_ptr<Initiator> self, Target* target,
                                  sim::Promise<Result<std::unique_ptr<Initiator>>> promise) {
  Initiator& i = *self;
  sim::Engine& engine = i.cluster_.engine();

  i.target_ = target;
  i.ctx_ = std::make_unique<rdma::Context>(i.network_, i.node_);
  i.cq_ = std::make_unique<rdma::CompletionQueue>(engine);
  i.reconnected_ = std::make_unique<sim::Event>(engine);
  i.reconnected_->set();  // no reconnect in progress

  auto cmd = i.cluster_.alloc_dram(i.node_, i.cfg_.queue_depth * kCapsuleSlotBytes, 4096);
  auto resp = i.cluster_.alloc_dram(i.node_, i.cfg_.queue_depth * sizeof(ResponseCapsule), 4096);
  if (!cmd || !resp) {
    promise.set(Status(Errc::resource_exhausted, "initiator: no DRAM for capsule buffers"));
    co_return;
  }
  i.cmd_base_ = *cmd;
  i.resp_base_ = *resp;

  // The kernel initiator DMA-maps request buffers on the fly; model that as
  // one MR covering all of this host's DRAM (data is placed one-sided by
  // the target, so every request buffer must be reachable).
  (void)i.ctx_->register_mr(0, i.cluster_.fabric().host_dram(i.node_).size());

  auto qp = co_await target->accept(*i.ctx_, *i.cq_);
  if (!qp) {
    promise.set(qp.status());
    co_return;
  }
  i.qp_ = *qp;

  for (std::uint32_t slot = 0; slot < i.cfg_.queue_depth; ++slot) {
    (void)i.qp_->post_recv(kWrRecv | slot, i.resp_base_ + slot * sizeof(ResponseCapsule),
                           sizeof(ResponseCapsule));
  }

  i.capacity_blocks_ = target->controller().capacity_blocks();
  i.block_size_ = target->controller().block_size();
  i.max_transfer_ = target->controller().max_transfer_bytes();

  i.slots_ = std::make_unique<sim::Semaphore>(engine, i.cfg_.queue_depth);
  i.free_slots_.resize(i.cfg_.queue_depth);
  for (std::uint32_t s = 0; s < i.cfg_.queue_depth; ++s) {
    i.free_slots_[s] = i.cfg_.queue_depth - 1 - s;
  }
  i.completion_loop(i.stop_);
  NVS_LOG(info, "nvmeof") << "initiator connected from node " << i.node_;
  promise.set(std::move(self));
}

sim::Future<block::Completion> Initiator::submit(const block::Request& request) {
  sim::Promise<block::Completion> promise(cluster_.engine());
  io_task(request, promise);
  return promise.future();
}

sim::Task Initiator::io_task(block::Request request, sim::Promise<block::Completion> promise) {
  auto stop = stop_;
  sim::Engine& engine = cluster_.engine();
  const sim::Time start = engine.now();
  obs::Tracer& tracer = obs::Tracer::global();
  const std::uint64_t trace =
      tracer.enabled() ? tracer.begin_trace(trace_kind(request.op), start) : 0;
  obs::PhaseMarker ph(tracer, trace, obs::Track::client, start);
  auto finish = [&](Status st) {
    if (!st) ++stats_.errors;
    if (trace != 0) {
      if (engine.now() > ph.last()) ph.mark(obs::Phase::completion, engine.now());
      tracer.end_trace(trace, engine.now());
    }
    promise.set(block::Completion{std::move(st), engine.now() - start});
  };

  if (Status st = block::validate_request(*this, request); !st) {
    finish(st);
    co_return;
  }
  co_await slots_->acquire();
  if (*stop) {
    slots_->release();
    finish(Status(Errc::aborted, "initiator stopped"));
    co_return;
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  auto release_slot = [&]() {
    free_slots_.push_back(slot);
    slots_->release();
  };

  // Submission path: block layer + capsule construction.
  co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.submit_ns, rng_));
  ph.mark(obs::Phase::submit, engine.now());

  CommandCapsule capsule;
  capsule.cid = static_cast<std::uint16_t>(slot);
  capsule.slba = request.lba;
  capsule.nblocks = request.nblocks;
  capsule.initiator_data_addr = request.buffer_addr;
  std::uint32_t wire_len = sizeof(CommandCapsule);
  switch (request.op) {
    case block::Op::read:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::read);
      capsule.data_len = request.nblocks * block_size_;
      ++stats_.reads;
      break;
    case block::Op::write:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::write);
      capsule.data_len = request.nblocks * block_size_;
      // Small writes ride in-capsule (the NIC gathers payload from the
      // request buffer; no CPU copy), like SPDK's in-capsule data path.
      if (capsule.data_len <= kInlineDataMax) {
        capsule.flags |= kFlagInlineData;
        wire_len += capsule.data_len;
      }
      ++stats_.writes;
      break;
    case block::Op::flush:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::flush);
      capsule.data_len = 0;
      ++stats_.flushes;
      break;
    case block::Op::write_zeroes:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::write_zeroes);
      capsule.data_len = 0;
      ++stats_.writes;
      break;
    case block::Op::discard:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::discard);
      capsule.data_len = 0;
      ++stats_.writes;
      break;
  }
  const std::uint64_t capsule_addr = cmd_base_ + slot * kCapsuleSlotBytes;
  mem::PhysMem& dram = cluster_.fabric().host_dram(node_);
  if (cfg_.data_digest && request.op == block::Op::write && capsule.data_len > 0) {
    // DDGST over the payload as it leaves the application buffer; the
    // target re-computes it after the payload lands on its side.
    Bytes payload(capsule.data_len);
    (void)dram.read(request.buffer_addr, payload);
    capsule.data_digest = integrity::crc32c(payload);
    ++integrity::stats().digests_generated;
  }
  (void)dram.write(capsule_addr, as_bytes_of(capsule));
  if ((capsule.flags & kFlagInlineData) != 0) {
    Bytes payload(capsule.data_len);
    (void)dram.read(request.buffer_addr, payload);
    (void)dram.write(capsule_addr + sizeof(CommandCapsule), payload);
  }

  // Send and response wait. With capsule_timeout_ns configured, each SEND
  // is bounded by a deadline and retried with backoff (idempotent: same
  // slot, same cid — a late duplicate response resolves the same command);
  // once the retry budget is spent the connection itself is suspect (a lost
  // capsule window) and is re-established once.
  const auto cid16 = static_cast<std::uint16_t>(slot);
  ResponseCapsule response;
  std::uint32_t attempt = 0;
  bool reconnected_once = false;
  for (;;) {
    if (reconnecting_) {
      // A reconnect is in flight; wait for the fresh queue pair.
      (void)co_await reconnected_->wait();
    }
    if (*stop) {
      release_slot();
      finish(Status(Errc::aborted, "initiator stopped"));
      co_return;
    }
    const std::uint64_t seq = ++rsp_seq_;
    auto [it, inserted] =
        pending_.emplace(cid16, PendingRsp{sim::Promise<ResponseCapsule>(engine), seq});
    (void)inserted;
    auto response_future = it->second.promise.future();
    tracer.bind(nvmeof_trace_qid(static_cast<std::uint16_t>(node_)), capsule.cid, trace);

    if (cfg_.capsule_timeout_ns > 0) {
      // Deadline watchdog: resolves the wait with the sentinel unless the
      // response (or a reconnect sweep) got there first.
      engine.after(cfg_.capsule_timeout_ns, [this, stop, cid16, seq]() {
        if (*stop) return;
        auto p = pending_.find(cid16);
        if (p == pending_.end() || p->second.seq != seq) return;
        auto promise = std::move(p->second.promise);
        pending_.erase(p);
        ++stats_.capsule_timeouts;
        promise.set(timeout_sentinel(cid16));
      });
    }

    co_await sim::delay(engine, cfg_.costs.doorbell_ns);
    if (Status st = qp_->post_send(kWrSend | slot, capsule_addr, wire_len); !st) {
      if (auto p = pending_.find(cid16); p != pending_.end() && p->second.seq == seq) {
        pending_.erase(p);
      }
      if (cfg_.capsule_timeout_ns == 0 || attempt >= cfg_.capsule_retry_limit) {
        release_slot();
        finish(st);
        co_return;
      }
      ++attempt;
      ++stats_.capsule_retries;
      co_await sim::delay(engine, backoff_ns(cfg_.retry_backoff_ns, attempt));
      ph.mark(obs::Phase::recovery, engine.now());
      continue;
    }
    ph.mark(obs::Phase::capsule_send, engine.now());

    response = co_await response_future;
    ph.mark(obs::Phase::cq_wait, engine.now());
    tracer.unbind(nvmeof_trace_qid(static_cast<std::uint16_t>(node_)), capsule.cid);
    if (*stop) {
      release_slot();
      finish(Status(Errc::aborted, "initiator stopped"));
      co_return;
    }
    if (response.status != kTimeoutStatus) {
      // Verify the digest the target computed over the read payload it
      // pushed. A mismatch means the data was damaged in flight — the
      // media copy is intact, so a re-send heals it.
      if (cfg_.data_digest && response.status == 0 && request.op == block::Op::read &&
          response.data_digest != 0) {
        Bytes payload(capsule.data_len);
        (void)dram.read(request.buffer_addr, payload);
        if (integrity::crc32c(payload) != response.data_digest) {
          ++integrity::stats().digest_errors;
          if (cfg_.capsule_timeout_ns > 0 && attempt < cfg_.capsule_retry_limit) {
            ++attempt;
            ++stats_.capsule_retries;
            co_await sim::delay(engine, backoff_ns(cfg_.retry_backoff_ns, attempt));
            ph.mark(obs::Phase::recovery, engine.now());
            continue;
          }
          release_slot();
          finish(Status(Errc::io_error, "read payload failed data-digest verify"));
          co_return;
        }
      }
      break;  // genuine response arrived
    }
    ++attempt;
    if (attempt <= cfg_.capsule_retry_limit) {
      ++stats_.capsule_retries;
      co_await sim::delay(engine, backoff_ns(cfg_.retry_backoff_ns, attempt));
      ph.mark(obs::Phase::recovery, engine.now());
      continue;
    }
    // Retry budget spent: re-establish the connection once, then run one
    // fresh retry round (the replay of this in-flight command).
    if (reconnected_once) {
      release_slot();
      finish(Status(Errc::timed_out, "capsule timed out after retries and reconnect"));
      co_return;
    }
    reconnected_once = true;
    attempt = 0;
    start_reconnect();
    ph.mark(obs::Phase::recovery, engine.now());
  }
  // Completion path software.
  co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.completion_ns, rng_));
  ph.mark(obs::Phase::completion, engine.now());
  release_slot();
  if (response.status != 0) {
    finish(Status(Errc::io_error,
                  std::string("target returned: ") + nvme::status_name(response.status)));
  } else {
    finish(Status::ok());
  }
}

sim::Task Initiator::completion_loop(std::shared_ptr<bool> stop) {
  sim::Engine& engine = cluster_.engine();
  mem::PhysMem& dram = cluster_.fabric().host_dram(node_);
  for (;;) {
    if (*stop) co_return;
    auto wc = co_await cq_->pop();
    if (*stop) co_return;
    if (!wc) continue;

    auto process = [this, &dram](const rdma::WorkCompletion& one) {
      if (one.opcode != rdma::WcOpcode::recv) return;  // send completions are free
      if (!one.status) {
        ++stats_.errors;
        return;
      }
      const std::uint32_t buffer = static_cast<std::uint32_t>(one.wr_id & kWrSlotMask);
      ResponseCapsule response;
      (void)dram.read(resp_base_ + buffer * sizeof(ResponseCapsule),
                      as_writable_bytes_of(response));
      // Replenish the RECV ring with the buffer this message consumed.
      (void)qp_->post_recv(kWrRecv | buffer, resp_base_ + buffer * sizeof(ResponseCapsule),
                           sizeof(ResponseCapsule));
      auto it = pending_.find(response.cid);
      if (it != pending_.end()) {
        auto promise = std::move(it->second.promise);
        pending_.erase(it);
        promise.set(response);
      }
      // else: the command timed out and its retry already completed — a
      // late duplicate, dropped like a real initiator would.
    };

    // One interrupt wakes the handler, which then drains every completion
    // that arrived meanwhile (interrupt coalescing; the per-request
    // software cost is charged in io_task, not here).
    ++stats_.interrupts;
    co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.irq_delivery_ns, rng_));
    if (*stop) co_return;
    process(*wc);
    while (auto more = cq_->poll()) process(*more);
  }
}

// --- fault recovery -------------------------------------------------------------------

void Initiator::start_reconnect() {
  if (reconnecting_ || *stop_) return;
  reconnecting_ = true;
  reconnected_->reset();
  ++stats_.reconnects;
  reconnect_task(stop_);
}

// Connection re-establishment: fail out every in-flight wait (their
// io_tasks replay through the retry loop once the new queue pair exists)
// and accept a fresh connection from the same target. The old RDMA queue
// pair and its posted RECVs are abandoned — a bounded leak per reconnect,
// like a real RC QP left in the error state until teardown.
sim::Task Initiator::reconnect_task(std::shared_ptr<bool> stop) {
  sim::Engine& engine = cluster_.engine();
  const sim::Time begin = engine.now();
  NVS_LOG(warn, "nvmeof") << "initiator on node " << node_ << " reconnecting to target";

  std::map<std::uint16_t, PendingRsp> doomed;
  doomed.swap(pending_);
  for (auto& [cid, cmd] : doomed) cmd.promise.set(timeout_sentinel(cid));

  auto qp = co_await target_->accept(*ctx_, *cq_);
  if (!*stop && qp) {
    qp_ = *qp;
    // Fresh RECV ring on the new queue pair (same response buffers).
    for (std::uint32_t s = 0; s < cfg_.queue_depth; ++s) {
      (void)qp_->post_recv(kWrRecv | s, resp_base_ + s * sizeof(ResponseCapsule),
                           sizeof(ResponseCapsule));
    }
    NVS_LOG(info, "nvmeof") << "initiator reconnected in " << (engine.now() - begin)
                            << " ns";
  } else if (!qp) {
    NVS_LOG(error, "nvmeof") << "initiator reconnect failed: " << qp.status().message();
  }

  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
    tracer.record(t, obs::Track::client, obs::Phase::recovery, begin, engine.now(),
                  nvmeof_trace_qid(static_cast<std::uint16_t>(node_)));
    tracer.end_trace(t, engine.now());
  }
  reconnecting_ = false;
  reconnected_->set();
}

}  // namespace nvmeshare::nvmeof
