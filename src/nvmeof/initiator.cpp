#include "nvmeof/initiator.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "integrity/integrity.hpp"
#include "obs/trace.hpp"

namespace nvmeshare::nvmeof {

namespace {
constexpr std::uint64_t kWrSend = 4ull << 56;
constexpr std::uint64_t kWrRecv = 1ull << 56;
constexpr std::uint64_t kWrSlotMask = (1ull << 56) - 1;

obs::Kind trace_kind(block::Op op) {
  switch (op) {
    case block::Op::read: return obs::Kind::read;
    case block::Op::write: return obs::Kind::write;
    case block::Op::flush: return obs::Kind::flush;
    case block::Op::write_zeroes: return obs::Kind::write_zeroes;
    case block::Op::discard: return obs::Kind::discard;
  }
  return obs::Kind::other;
}
}  // namespace

Initiator::Stats::Stats()
    : reads("nvmeshare.nvmeof_initiator.reads"),
      writes("nvmeshare.nvmeof_initiator.writes"),
      flushes("nvmeshare.nvmeof_initiator.flushes"),
      errors("nvmeshare.nvmeof_initiator.errors"),
      interrupts("nvmeshare.nvmeof_initiator.interrupts"),
      capsule_timeouts("nvmeshare.nvmeof_initiator.capsule_timeouts"),
      capsule_retries("nvmeshare.nvmeof_initiator.capsule_retries"),
      reconnects("nvmeshare.nvmeof_initiator.reconnects") {}

Initiator::Initiator(sisci::Cluster& cluster, rdma::Network& network, rdma::NodeId node,
                     Config cfg)
    : cluster_(cluster), network_(network), node_(node), cfg_(cfg), rng_(cfg.seed ^ node) {}

Initiator::~Initiator() { *stop_ = true; }

sim::Future<Result<std::unique_ptr<Initiator>>> Initiator::connect(sisci::Cluster& cluster,
                                                                   rdma::Network& network,
                                                                   Target& target,
                                                                   rdma::NodeId node,
                                                                   Config cfg) {
  sim::Promise<Result<std::unique_ptr<Initiator>>> promise(cluster.engine());
  auto self = std::unique_ptr<Initiator>(new Initiator(cluster, network, node, cfg));
  connect_task(std::move(self), &target, promise);
  return promise.future();
}

sim::Task Initiator::connect_task(std::unique_ptr<Initiator> self, Target* target,
                                  sim::Promise<Result<std::unique_ptr<Initiator>>> promise) {
  Initiator& i = *self;
  sim::Engine& engine = i.cluster_.engine();

  block::IoEngine::Config ec;
  ec.backend = "nvmeof";
  ec.channels = i.cfg_.channels;
  ec.queue_depth = i.cfg_.queue_depth;
  ec.queue_entries = 0;  // message transport: no ring wrap to guard
  ec.scheduler = i.cfg_.scheduler;
  ec.coalesce_doorbells = i.cfg_.coalesce_doorbells;
  ec.doorbell_ns = i.cfg_.costs.doorbell_ns;
  ec.cmd_timeout_ns = i.cfg_.capsule_timeout_ns;
  ec.cmd_retry_limit = i.cfg_.capsule_retry_limit;
  ec.retry_backoff_ns = i.cfg_.retry_backoff_ns;
  ec.trace_style = block::IoEngine::TraceStyle::fabric;
  ec.counters.timeouts = &i.stats_.capsule_timeouts;
  ec.counters.retries = &i.stats_.capsule_retries;
  ec.counters.recoveries = &i.stats_.reconnects;
  if (Status st = block::IoEngine::validate(ec); !st) {
    promise.set(st);
    co_return;
  }

  i.target_ = target;
  i.ctx_ = std::make_unique<rdma::Context>(i.network_, i.node_);
  i.cq_ = std::make_unique<rdma::CompletionQueue>(engine);

  const std::uint32_t total_depth = i.cfg_.queue_depth * i.cfg_.channels;
  auto cmd = i.cluster_.alloc_dram(i.node_, total_depth * kCapsuleSlotBytes, 4096);
  auto resp = i.cluster_.alloc_dram(i.node_, total_depth * sizeof(ResponseCapsule), 4096);
  if (!cmd || !resp) {
    promise.set(Status(Errc::resource_exhausted, "initiator: no DRAM for capsule buffers"));
    co_return;
  }
  i.cmd_base_ = *cmd;
  i.resp_base_ = *resp;

  // The kernel initiator DMA-maps request buffers on the fly; model that as
  // one MR covering all of this host's DRAM (data is placed one-sided by
  // the target, so every request buffer must be reachable).
  (void)i.ctx_->register_mr(0, i.cluster_.fabric().host_dram(i.node_).size());

  // One RDMA queue pair per channel, all sharing one completion queue (the
  // kernel initiator's one-QP-per-core layout with a shared EQ).
  i.qps_.resize(i.cfg_.channels, nullptr);
  i.staged_.resize(i.cfg_.channels);
  for (std::uint32_t chan = 0; chan < i.cfg_.channels; ++chan) {
    auto qp = co_await target->accept(*i.ctx_, *i.cq_);
    if (!qp) {
      promise.set(qp.status());
      co_return;
    }
    i.qps_[chan] = *qp;
    i.post_recv_ring(chan);
  }

  i.capacity_blocks_ = target->controller().capacity_blocks();
  i.block_size_ = target->controller().block_size();
  i.max_transfer_ = target->controller().max_transfer_bytes();

  block::IoTransport& transport = i;
  i.engine_io_ = std::make_unique<block::IoEngine>(engine, transport, i.stop_, ec);
  i.completion_loop(i.stop_);
  NVS_LOG(info, "nvmeof") << "initiator connected from node " << i.node_
                          << (i.cfg_.channels > 1
                                  ? " with " + std::to_string(i.cfg_.channels) + " channels"
                                  : "");
  promise.set(std::move(self));
}

void Initiator::post_recv_ring(std::uint32_t chan) {
  for (std::uint32_t s = chan * cfg_.queue_depth; s < (chan + 1) * cfg_.queue_depth; ++s) {
    (void)qps_[chan]->post_recv(kWrRecv | s, resp_base_ + s * sizeof(ResponseCapsule),
                                sizeof(ResponseCapsule));
  }
}

// --- block::IoTransport ---------------------------------------------------------------

Result<std::uint16_t> Initiator::issue(std::uint32_t chan, void* cookie) {
  const auto& desc = *static_cast<const SendDesc*>(cookie);
  staged_[chan].push_back(desc);
  return desc.cid;
}

Status Initiator::ring(std::uint32_t chan) {
  // Post every capsule staged since the last ring as one SEND burst; the
  // first failure is reported for the whole burst (commands whose SEND did
  // go out are idempotent — a late duplicate response is dropped).
  Status first = Status::ok();
  for (const SendDesc& desc : staged_[chan]) {
    if (Status st = qps_[chan]->post_send(kWrSend | desc.cid, desc.addr, desc.len); !st) {
      if (first) first = st;
    }
  }
  staged_[chan].clear();
  return first;
}

bool Initiator::retryable(std::uint16_t status) const {
  // A genuine target response is final: the fabric retry machinery exists
  // for lost capsules, not for NVMe-status errors.
  (void)status;
  return false;
}

void Initiator::start_recovery(std::uint32_t chan) { reconnect_task(chan, stop_); }

std::uint16_t Initiator::trace_qid(std::uint32_t chan) const {
  // All channels correlate under the node's fabric qid: capsule cids are
  // engine-global, so (qid, cid) stays unique across channels.
  (void)chan;
  return nvmeof_trace_qid(static_cast<std::uint16_t>(node_));
}

sim::Future<block::Completion> Initiator::submit(const block::Request& request) {
  sim::Promise<block::Completion> promise(cluster_.engine());
  io_task(request, promise);
  return promise.future();
}

sim::Task Initiator::io_task(block::Request request, sim::Promise<block::Completion> promise) {
  auto stop = stop_;
  sim::Engine& engine = cluster_.engine();
  const sim::Time start = engine.now();
  obs::Tracer& tracer = obs::Tracer::global();
  const std::uint64_t trace =
      tracer.enabled() ? tracer.begin_trace(trace_kind(request.op), start) : 0;
  obs::PhaseMarker ph(tracer, trace, obs::Track::client, start);
  auto finish = [&](Status st) {
    if (!st) ++stats_.errors;
    if (trace != 0) {
      if (engine.now() > ph.last()) ph.mark(obs::Phase::completion, engine.now());
      tracer.end_trace(trace, engine.now());
    }
    promise.set(block::Completion{std::move(st), engine.now() - start});
  };

  if (Status st = block::validate_request(*this, request); !st) {
    finish(st);
    co_return;
  }
  const block::IoEngine::Grant grant = co_await engine_io_->acquire();
  if (*stop) {
    engine_io_->release(grant);
    finish(Status(Errc::aborted, "initiator stopped"));
    co_return;
  }
  const std::uint32_t slot = grant.slot;
  auto release_slot = [&]() { engine_io_->release(grant); };

  // Submission path: block layer + capsule construction.
  co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.submit_ns, rng_));
  ph.mark(obs::Phase::submit, engine.now());

  CommandCapsule capsule;
  capsule.cid = static_cast<std::uint16_t>(slot);
  capsule.slba = request.lba;
  capsule.nblocks = request.nblocks;
  capsule.initiator_data_addr = request.buffer_addr;
  std::uint32_t wire_len = sizeof(CommandCapsule);
  switch (request.op) {
    case block::Op::read:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::read);
      capsule.data_len = request.nblocks * block_size_;
      ++stats_.reads;
      break;
    case block::Op::write:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::write);
      capsule.data_len = request.nblocks * block_size_;
      // Small writes ride in-capsule (the NIC gathers payload from the
      // request buffer; no CPU copy), like SPDK's in-capsule data path.
      if (capsule.data_len <= kInlineDataMax) {
        capsule.flags |= kFlagInlineData;
        wire_len += capsule.data_len;
      }
      ++stats_.writes;
      break;
    case block::Op::flush:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::flush);
      capsule.data_len = 0;
      ++stats_.flushes;
      break;
    case block::Op::write_zeroes:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::write_zeroes);
      capsule.data_len = 0;
      ++stats_.writes;
      break;
    case block::Op::discard:
      capsule.opcode = static_cast<std::uint8_t>(FabricOp::discard);
      capsule.data_len = 0;
      ++stats_.writes;
      break;
  }
  const std::uint64_t capsule_addr = cmd_base_ + slot * kCapsuleSlotBytes;
  mem::PhysMem& dram = cluster_.fabric().host_dram(node_);
  if (cfg_.data_digest && request.op == block::Op::write && capsule.data_len > 0) {
    // DDGST over the payload as it leaves the application buffer; the
    // target re-computes it after the payload lands on its side.
    Bytes payload(capsule.data_len);
    (void)dram.read(request.buffer_addr, payload);
    capsule.data_digest = integrity::crc32c(payload);
    ++integrity::stats().digests_generated;
  }
  (void)dram.write(capsule_addr, as_bytes_of(capsule));
  if ((capsule.flags & kFlagInlineData) != 0) {
    Bytes payload(capsule.data_len);
    (void)dram.read(request.buffer_addr, payload);
    (void)dram.write(capsule_addr + sizeof(CommandCapsule), payload);
  }

  // The engine runs the SEND, deadline, retry, and one reconnect cycle;
  // issue() stages the capsule and ring() posts it. A duplicate SEND after
  // a timeout is idempotent: same slot, same cid — a late duplicate
  // response resolves nothing and is dropped by the engine.
  SendDesc desc;
  desc.addr = capsule_addr;
  desc.len = wire_len;
  desc.cid = static_cast<std::uint16_t>(slot);
  block::IoEngine::RunArgs run_args;
  run_args.grant = grant;
  run_args.cookie = &desc;
  run_args.ph = &ph;
  run_args.trace = trace;
  std::uint32_t digest_attempts = 0;
  block::CmdOutcome outcome;
  for (;;) {
    outcome = co_await engine_io_->run(run_args);
    if (outcome.kind == block::CmdOutcome::Kind::aborted) {
      release_slot();
      finish(Status(Errc::aborted, "initiator stopped"));
      co_return;
    }
    if (outcome.kind == block::CmdOutcome::Kind::transport_error) {
      release_slot();
      finish(outcome.transport);
      co_return;
    }
    if (outcome.kind == block::CmdOutcome::Kind::timed_out) {
      release_slot();
      finish(Status(Errc::timed_out, "capsule timed out after retries and reconnect"));
      co_return;
    }
    // Verify the digest the target computed over the read payload it
    // pushed. A mismatch means the data was damaged in flight — the
    // media copy is intact, so a re-send heals it.
    if (cfg_.data_digest && outcome.status == 0 && request.op == block::Op::read &&
        outcome.aux != 0) {
      Bytes payload(capsule.data_len);
      (void)dram.read(request.buffer_addr, payload);
      if (integrity::crc32c(payload) != outcome.aux) {
        ++integrity::stats().digest_errors;
        if (cfg_.capsule_timeout_ns > 0 && digest_attempts < cfg_.capsule_retry_limit) {
          ++digest_attempts;
          ++stats_.capsule_retries;
          co_await sim::delay(
              engine, block::IoEngine::backoff_ns(cfg_.retry_backoff_ns, digest_attempts));
          ph.mark(obs::Phase::recovery, engine.now());
          continue;
        }
        release_slot();
        finish(Status(Errc::io_error, "read payload failed data-digest verify"));
        co_return;
      }
    }
    break;  // genuine, digest-clean response
  }
  // Completion path software.
  co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.completion_ns, rng_));
  ph.mark(obs::Phase::completion, engine.now());
  release_slot();
  if (outcome.status != 0) {
    finish(Status(Errc::io_error,
                  std::string("target returned: ") + nvme::status_name(outcome.status)));
  } else {
    finish(Status::ok());
  }
}

sim::Task Initiator::completion_loop(std::shared_ptr<bool> stop) {
  sim::Engine& engine = cluster_.engine();
  mem::PhysMem& dram = cluster_.fabric().host_dram(node_);
  for (;;) {
    if (*stop) co_return;
    auto wc = co_await cq_->pop();
    if (*stop) co_return;
    if (!wc) continue;

    auto process = [this, &dram](const rdma::WorkCompletion& one) {
      if (one.opcode != rdma::WcOpcode::recv) return;  // send completions are free
      if (!one.status) {
        ++stats_.errors;
        return;
      }
      const std::uint32_t buffer = static_cast<std::uint32_t>(one.wr_id & kWrSlotMask);
      ResponseCapsule response;
      (void)dram.read(resp_base_ + buffer * sizeof(ResponseCapsule),
                      as_writable_bytes_of(response));
      // Replenish the RECV ring of the channel this buffer belongs to.
      const std::uint32_t buf_chan = buffer / cfg_.queue_depth;
      (void)qps_[buf_chan]->post_recv(kWrRecv | buffer,
                                      resp_base_ + buffer * sizeof(ResponseCapsule),
                                      sizeof(ResponseCapsule));
      // The cid is the engine-global slot; its channel is implied. An
      // unknown cid is a late duplicate of a timed-out command, dropped
      // like a real initiator would.
      const std::uint32_t cid_chan = response.cid / cfg_.queue_depth;
      if (cid_chan < cfg_.channels) {
        (void)engine_io_->complete(cid_chan, response.cid, response.status,
                                   response.data_digest);
      }
    };

    // One interrupt wakes the handler, which then drains every completion
    // that arrived meanwhile (interrupt coalescing; the per-request
    // software cost is charged in io_task, not here).
    ++stats_.interrupts;
    co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.irq_delivery_ns, rng_));
    if (*stop) co_return;
    process(*wc);
    while (auto more = cq_->poll()) process(*more);
  }
}

// --- fault recovery -------------------------------------------------------------------

// Connection re-establishment for one channel: fail out its in-flight waits
// (their io_tasks replay through the engine's retry loop once the fresh
// queue pair exists) and accept a new connection from the same target. The
// old RDMA queue pair and its posted RECVs are abandoned — a bounded leak
// per reconnect, like a real RC QP left in the error state until teardown.
sim::Task Initiator::reconnect_task(std::uint32_t chan, std::shared_ptr<bool> stop) {
  sim::Engine& engine = cluster_.engine();
  const sim::Time begin = engine.now();
  NVS_LOG(warn, "nvmeof") << "initiator on node " << node_ << " reconnecting channel "
                          << chan << " to target";

  engine_io_->fail_pending(chan);

  auto qp = co_await target_->accept(*ctx_, *cq_);
  if (!*stop && qp) {
    qps_[chan] = *qp;
    // Fresh RECV ring on the new queue pair (same response buffers).
    post_recv_ring(chan);
    NVS_LOG(info, "nvmeof") << "initiator reconnected in " << (engine.now() - begin)
                            << " ns";
  } else if (!qp) {
    NVS_LOG(error, "nvmeof") << "initiator reconnect failed: " << qp.status().message();
  }

  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
    tracer.record(t, obs::Track::client, obs::Phase::recovery, begin, engine.now(),
                  nvmeof_trace_qid(static_cast<std::uint16_t>(node_)));
    tracer.end_trace(t, engine.now());
  }
  engine_io_->finish_recovery(chan);
}

}  // namespace nvmeshare::nvmeof
