// NVMe-oF capsule wire format (simplified fabric command/response capsules
// for the RDMA transport). Data for writes is pulled by the target with an
// RDMA READ; data for reads is pushed with an RDMA WRITE — both one-sided,
// addressed by the initiator-provided buffer address.
#pragma once

#include <cstdint>

namespace nvmeshare::nvmeof {

enum class FabricOp : std::uint8_t { read = 1, write = 2, flush = 3, write_zeroes = 4, discard = 5 };

/// Tracer correlation key for NVMe-oF commands: the initiator binds its
/// trace under (nvmeof_trace_qid(node), capsule.cid), and the target looks
/// the same key up to attribute its spans. The high bit keeps the pseudo-qid
/// space disjoint from real NVMe queue ids.
constexpr std::uint16_t nvmeof_trace_qid(std::uint16_t initiator_node) {
  return static_cast<std::uint16_t>(0x8000u | initiator_node);
}

/// Writes up to this size travel in-capsule (SPDK's default in-capsule data
/// size); larger writes are pulled by the target with an RDMA READ.
inline constexpr std::uint32_t kInlineDataMax = 4096;
/// Capsule flag: the command carries its write payload inline.
inline constexpr std::uint8_t kFlagInlineData = 0x01;
/// Wire size of a command-capsule slot (header + worst-case inline data).
inline constexpr std::uint32_t kCapsuleSlotBytes = 64 + kInlineDataMax;

struct CommandCapsule {
  std::uint8_t opcode = 0;  ///< FabricOp
  std::uint8_t flags = 0;
  std::uint16_t cid = 0;
  std::uint32_t nsid = 1;
  std::uint64_t slba = 0;
  std::uint32_t nblocks = 0;
  std::uint32_t data_len = 0;
  /// Initiator-side registered buffer the target RDMA-READs (writes) from
  /// or RDMA-WRITEs (reads) into.
  std::uint64_t initiator_data_addr = 0;
  /// CRC-32C over the write payload (DDGST); 0 = digest not in use. The
  /// target verifies it after the payload lands (inline or RDMA READ).
  std::uint32_t data_digest = 0;
  std::uint8_t reserved[28] = {};
};
static_assert(sizeof(CommandCapsule) == 64);

struct ResponseCapsule {
  std::uint32_t dw0 = 0;
  std::uint16_t cid = 0;
  std::uint16_t status = 0;  ///< NVMe status field (0 = success)
  /// CRC-32C over the read payload the target pushed; 0 = not in use. The
  /// initiator verifies it against the data that landed in its buffer.
  std::uint32_t data_digest = 0;
  std::uint8_t reserved[4] = {};
};
static_assert(sizeof(ResponseCapsule) == 16);

}  // namespace nvmeshare::nvmeof
