// SPDK-style NVMe-oF target over the RDMA model (Figure 9a's target side).
//
// The target owns the NVMe controller on its host and creates a dedicated
// NVMe I/O queue pair per initiator connection, binding it to the
// connection's RDMA queues: command capsules arriving in RECV buffers are
// translated into NVMe commands against a per-command staging buffer; write
// payloads are pulled with RDMA READ, read payloads pushed with RDMA WRITE,
// and completion capsules SENT back. Everything is polled (SPDK-style
// reactor), with a small per-command software cost.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "driver/bringup.hpp"
#include "driver/cost_model.hpp"
#include "nvmeof/capsule.hpp"
#include "obs/metrics.hpp"
#include "rdma/rdma.hpp"

namespace nvmeshare::nvmeof {

class Target {
 public:
  struct Config {
    std::uint16_t queue_entries = 128;  ///< NVMe SQ/CQ entries per connection
    std::uint32_t command_slots = 64;   ///< concurrent commands per connection
    driver::CostModel costs = driver::CostModel::spdk();
    /// Target offloading: the NIC firmware translates capsules to NVMe
    /// commands, replacing the host software path with a small hardware
    /// pipeline cost. The paper tried this and saw reduced CPU usage but
    /// no latency change — this knob reproduces that observation.
    bool hardware_offload = false;
    /// Generate a CRC-32C data digest (DDGST) over read payloads pushed to
    /// the initiator. Write payloads are always verified when the capsule
    /// carries a digest, independent of this knob. Off by default.
    bool data_digest = false;
    std::uint64_t seed = 0x7a67;
  };

  /// Take over the controller and get ready to accept connections.
  static sim::Future<Result<std::unique_ptr<Target>>> start(sisci::Cluster& cluster,
                                                            pcie::EndpointId endpoint,
                                                            rdma::Network& network,
                                                            Config cfg);

  ~Target();
  Target(const Target&) = delete;
  Target& operator=(const Target&) = delete;

  /// Establish a connection for an initiator: creates the RDMA queue pair
  /// and a dedicated NVMe queue pair. Returns the initiator-side RDMA QP.
  sim::Future<Result<rdma::QueuePair*>> accept(rdma::Context& initiator_ctx,
                                               rdma::CompletionQueue& initiator_cq);

  [[nodiscard]] driver::BareController& controller() noexcept { return *ctrl_; }
  [[nodiscard]] rdma::Context& context() noexcept { return *ctx_; }
  [[nodiscard]] std::size_t connection_count() const noexcept { return connections_.size(); }

  /// Per-target counters, also registered as `nvmeshare.nvmeof_target.*`.
  struct Stats {
    Stats();
    obs::Counter commands;
    obs::Counter reads;
    obs::Counter writes;
    obs::Counter errors;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Connection {
    rdma::QueuePair* qp = nullptr;
    std::unique_ptr<rdma::CompletionQueue> cq;
    std::unique_ptr<nvme::QueuePair> nvme_qp;
    std::uint16_t qid = 0;
    std::uint64_t recv_base = 0;     ///< command_slots RECV buffers (capsule size)
    std::uint64_t resp_base = 0;     ///< command_slots response capsule buffers
    std::uint64_t staging_base = 0;  ///< command_slots data staging slots
    std::uint64_t prp_base = 0;      ///< command_slots PRP list pages
    std::uint64_t sq_addr = 0;
    std::uint64_t cq_addr = 0;
    // In-flight bookkeeping.
    std::map<std::uint64_t, sim::Promise<rdma::WorkCompletion>> wr_pending;
    std::map<std::uint16_t, sim::Promise<nvme::CompletionEntry>> nvme_pending;
    std::uint32_t inflight = 0;
  };

  Target(sisci::Cluster& cluster, rdma::Network& network, Config cfg);

  static sim::Task start_task(std::unique_ptr<Target> self, pcie::EndpointId endpoint,
                              sim::Promise<Result<std::unique_ptr<Target>>> promise);
  sim::Task accept_task(rdma::Context* initiator_ctx, rdma::CompletionQueue* initiator_cq,
                        sim::Promise<Result<rdma::QueuePair*>> promise);
  sim::Task connection_loop(Connection* conn, std::shared_ptr<bool> stop);
  sim::Task handle_command(Connection* conn, std::uint32_t slot, std::shared_ptr<bool> stop);

  /// Staging-slot max bytes (bounded by controller MDTS).
  [[nodiscard]] std::uint64_t slot_bytes() const;

  sisci::Cluster& cluster_;
  rdma::Network& network_;
  Config cfg_;
  Rng rng_;
  std::unique_ptr<driver::BareController> ctrl_;
  std::unique_ptr<rdma::Context> ctx_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  Stats stats_;
};

}  // namespace nvmeshare::nvmeof
