#include "nvmeof/target.hpp"

#include <array>

#include "common/log.hpp"
#include "integrity/integrity.hpp"
#include "obs/trace.hpp"

namespace nvmeshare::nvmeof {

using nvme::CompletionEntry;
using nvme::SubmissionEntry;

namespace {
// wr_id tags: kind in the top byte, slot index below.
constexpr std::uint64_t kWrRecv = 1ull << 56;
constexpr std::uint64_t kWrRdmaRead = 2ull << 56;
constexpr std::uint64_t kWrRdmaWrite = 3ull << 56;
constexpr std::uint64_t kWrSend = 4ull << 56;
constexpr std::uint64_t kWrSlotMask = (1ull << 56) - 1;

/// Attribute a target-side span to the initiator request that sent the
/// capsule, via the tracer binding the initiator made under its fabric
/// pseudo-qid (see nvmeof_trace_qid in capsule.hpp).
void trace_target_span(std::uint16_t qid, std::uint16_t cid, obs::Phase phase, sim::Time begin,
                       sim::Time end) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  if (const std::uint64_t trace = tracer.lookup(qid, cid); trace != 0) {
    tracer.record(trace, obs::Track::target, phase, begin, end, qid, cid);
  }
}
}  // namespace

Target::Stats::Stats()
    : commands("nvmeshare.nvmeof_target.commands"),
      reads("nvmeshare.nvmeof_target.reads"),
      writes("nvmeshare.nvmeof_target.writes"),
      errors("nvmeshare.nvmeof_target.errors") {}

Target::Target(sisci::Cluster& cluster, rdma::Network& network, Config cfg)
    : cluster_(cluster), network_(network), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.hardware_offload) {
    // NIC-firmware capsule handling: tiny fixed pipeline costs instead of
    // the host software path; the network and NVMe costs are untouched,
    // which is why offloading barely moves end-to-end latency.
    cfg_.costs.submit_ns = 150;
    cfg_.costs.completion_ns = 100;
    cfg_.costs.poll_interval_ns = 100;
    cfg_.costs.jitter_sigma = 0.01;
  }
}

Target::~Target() { *stop_ = true; }

std::uint64_t Target::slot_bytes() const { return ctrl_->max_transfer_bytes(); }

sim::Future<Result<std::unique_ptr<Target>>> Target::start(sisci::Cluster& cluster,
                                                           pcie::EndpointId endpoint,
                                                           rdma::Network& network, Config cfg) {
  sim::Promise<Result<std::unique_ptr<Target>>> promise(cluster.engine());
  auto self = std::unique_ptr<Target>(new Target(cluster, network, cfg));
  start_task(std::move(self), endpoint, promise);
  return promise.future();
}

sim::Task Target::start_task(std::unique_ptr<Target> self, pcie::EndpointId endpoint,
                             sim::Promise<Result<std::unique_ptr<Target>>> promise) {
  Target& t = *self;
  driver::BareController::Config bc;
  bc.costs = t.cfg_.costs;
  auto ctrl = co_await driver::BareController::init(t.cluster_, endpoint, bc);
  if (!ctrl) {
    promise.set(ctrl.status());
    co_return;
  }
  t.ctrl_ = std::move(*ctrl);
  t.ctx_ = std::make_unique<rdma::Context>(t.network_, t.ctrl_->host());
  NVS_LOG(info, "nvmeof") << "target up on host " << t.ctrl_->host();
  promise.set(std::move(self));
}

sim::Future<Result<rdma::QueuePair*>> Target::accept(rdma::Context& initiator_ctx,
                                                     rdma::CompletionQueue& initiator_cq) {
  sim::Promise<Result<rdma::QueuePair*>> promise(cluster_.engine());
  accept_task(&initiator_ctx, &initiator_cq, promise);
  return promise.future();
}

sim::Task Target::accept_task(rdma::Context* initiator_ctx,
                              rdma::CompletionQueue* initiator_cq,
                              sim::Promise<Result<rdma::QueuePair*>> promise) {
  auto conn = std::make_unique<Connection>();
  sim::Engine& engine = cluster_.engine();
  const pcie::HostId host = ctrl_->host();
  const std::uint32_t slots = cfg_.command_slots;
  const std::uint64_t sb = slot_bytes();

  conn->cq = std::make_unique<rdma::CompletionQueue>(engine);
  auto [qp_target, qp_initiator] = network_.create_qp_pair(*ctx_, *conn->cq, *initiator_ctx,
                                                           *initiator_cq);
  conn->qp = qp_target;

  auto recv = cluster_.alloc_dram(host, slots * kCapsuleSlotBytes, 4096);
  auto resp = cluster_.alloc_dram(host, slots * sizeof(ResponseCapsule), 4096);
  auto staging = cluster_.alloc_dram(host, slots * sb, 4096);
  auto prp = cluster_.alloc_dram(host, slots * nvme::kPageSize, 4096);
  auto sq = cluster_.alloc_dram(host, cfg_.queue_entries * 64ull, 4096);
  auto cq = cluster_.alloc_dram(host, cfg_.queue_entries * 16ull, 4096);
  if (!recv || !resp || !staging || !prp || !sq || !cq) {
    promise.set(Status(Errc::resource_exhausted, "target: no DRAM for connection"));
    co_return;
  }
  conn->recv_base = *recv;
  conn->resp_base = *resp;
  conn->staging_base = *staging;
  conn->prp_base = *prp;
  conn->sq_addr = *sq;
  conn->cq_addr = *cq;
  // Zero queue memory: stale phase bits would alias as completions.
  {
    mem::PhysMem& d = cluster_.fabric().host_dram(host);
    (void)d.write(conn->sq_addr, Bytes(cfg_.queue_entries * 64ull, std::byte{0}));
    (void)d.write(conn->cq_addr, Bytes(cfg_.queue_entries * 16ull, std::byte{0}));
  }

  (void)ctx_->register_mr(conn->recv_base, slots * kCapsuleSlotBytes);
  (void)ctx_->register_mr(conn->resp_base, slots * sizeof(ResponseCapsule));
  (void)ctx_->register_mr(conn->staging_base, slots * sb);

  // Staging slots never move: prewrite one PRP list per slot.
  mem::PhysMem& dram = cluster_.fabric().host_dram(host);
  const std::uint64_t pages_per_slot = sb / nvme::kPageSize;
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    Bytes list((pages_per_slot - 1) * 8);
    const std::uint64_t base = conn->staging_base + slot * sb;
    for (std::uint64_t j = 0; j + 1 < pages_per_slot; ++j) {
      store_pod(list, base + (j + 1) * nvme::kPageSize, j * 8);
    }
    (void)dram.write(conn->prp_base + slot * nvme::kPageSize, list);
  }

  auto qid = co_await ctrl_->create_queue_pair(conn->sq_addr, cfg_.queue_entries,
                                               conn->cq_addr, cfg_.queue_entries,
                                               std::nullopt /* polled */);
  if (!qid) {
    promise.set(qid.status());
    co_return;
  }
  conn->qid = *qid;

  nvme::QueuePair::Config qc;
  qc.qid = conn->qid;
  qc.sq_size = cfg_.queue_entries;
  qc.cq_size = cfg_.queue_entries;
  qc.sq_write_addr = conn->sq_addr;
  qc.cq_poll_addr = conn->cq_addr;
  qc.sq_doorbell_addr = ctrl_->sq_doorbell(conn->qid);
  qc.cq_doorbell_addr = ctrl_->cq_doorbell(conn->qid);
  qc.cpu = cluster_.fabric().cpu(host);
  conn->nvme_qp = std::make_unique<nvme::QueuePair>(cluster_.fabric(), qc);

  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    (void)conn->qp->post_recv(kWrRecv | slot, conn->recv_base + slot * kCapsuleSlotBytes,
                              kCapsuleSlotBytes);
  }

  Connection* raw = conn.get();
  connections_.push_back(std::move(conn));
  connection_loop(raw, stop_);
  NVS_LOG(info, "nvmeof") << "target accepted connection (nvme qid " << raw->qid << ")";
  promise.set(qp_initiator);
}

sim::Task Target::connection_loop(Connection* conn, std::shared_ptr<bool> stop) {
  sim::Engine& engine = cluster_.engine();
  auto route = [this, conn, &stop](const rdma::WorkCompletion& wc) {
    const std::uint64_t kind = wc.wr_id & ~kWrSlotMask;
    if (kind == kWrRecv) {
      if (!wc.status) {
        ++stats_.errors;
        return;
      }
      ++conn->inflight;
      handle_command(conn, static_cast<std::uint32_t>(wc.wr_id & kWrSlotMask), stop);
      return;
    }
    auto it = conn->wr_pending.find(wc.wr_id);
    if (it != conn->wr_pending.end()) {
      auto promise = std::move(it->second);
      conn->wr_pending.erase(it);
      promise.set(wc);
    }
  };

  for (;;) {
    if (*stop) co_return;
    if (conn->inflight == 0) {
      // Idle: sleep until the NIC delivers something (poll-mode reactors
      // spin in reality; the latency effect is identical and this keeps
      // the event count bounded).
      auto wc = co_await conn->cq->pop();
      if (*stop) co_return;
      if (wc) route(*wc);
      continue;
    }
    while (auto wc = conn->cq->poll()) route(*wc);
    std::array<nvme::CompletionEntry, 32> cqes;
    bool got = false;
    for (;;) {
      const std::size_t n = conn->nvme_qp->reap(cqes);
      for (std::size_t i = 0; i < n; ++i) {
        auto it = conn->nvme_pending.find(cqes[i].cid);
        if (it != conn->nvme_pending.end()) {
          auto promise = std::move(it->second);
          conn->nvme_pending.erase(it);
          promise.set(cqes[i]);
        }
      }
      if (n > 0) got = true;
      if (n < cqes.size()) break;
    }
    if (got) (void)conn->nvme_qp->ring_cq_doorbell();
    co_await sim::delay(engine, std::max<sim::Duration>(cfg_.costs.poll_interval_ns, 100));
  }
}

sim::Task Target::handle_command(Connection* conn, std::uint32_t slot,
                                 std::shared_ptr<bool> stop) {
  sim::Engine& engine = cluster_.engine();
  mem::PhysMem& dram = cluster_.fabric().host_dram(ctrl_->host());
  ++stats_.commands;

  auto finish = [&]() { --conn->inflight; };

  CommandCapsule capsule;
  (void)dram.read(conn->recv_base + slot * kCapsuleSlotBytes, as_writable_bytes_of(capsule));
  const std::uint16_t trace_qid =
      nvmeof_trace_qid(static_cast<std::uint16_t>(conn->qp->peer()->node()));

  // Per-command target software: decode capsule, prep the NVMe command.
  const sim::Time decode_begin = engine.now();
  co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.submit_ns, rng_));
  trace_target_span(trace_qid, capsule.cid, obs::Phase::submit, decode_begin, engine.now());
  if (*stop) {
    finish();
    co_return;
  }

  const std::uint64_t staging = conn->staging_base + slot * slot_bytes();
  std::uint16_t nvme_status = 0;
  bool ok = true;

  const auto op = static_cast<FabricOp>(capsule.opcode);
  if (capsule.data_len > slot_bytes()) {
    ok = false;
    nvme_status = nvme::kScInvalidField;
  }

  // Writes: in-capsule payloads were delivered with the command; larger
  // payloads are pulled from the initiator with a one-sided RDMA READ (a
  // full network round trip the paper's PCIe path never pays).
  if (ok && op == FabricOp::write && capsule.data_len > 0 &&
      (capsule.flags & kFlagInlineData) != 0) {
    ++stats_.writes;
    Bytes payload(capsule.data_len);
    (void)dram.read(conn->recv_base + slot * kCapsuleSlotBytes + sizeof(CommandCapsule),
                    payload);
    if (capsule.data_digest != 0 && integrity::crc32c(payload) != capsule.data_digest) {
      // Inline payload damaged on the wire: refuse before it reaches media.
      ++integrity::stats().digest_errors;
      ok = false;
      nvme_status = nvme::kScDataTransferError;
    } else {
      (void)dram.write(staging, payload);
    }
  } else if (ok && op == FabricOp::write && capsule.data_len > 0) {
    ++stats_.writes;
    const std::uint64_t wr = kWrRdmaRead | slot;
    auto [it, ins] = conn->wr_pending.emplace(wr, sim::Promise<rdma::WorkCompletion>(engine));
    (void)ins;
    auto fut = it->second.future();
    if (Status st = conn->qp->rdma_read(wr, staging, capsule.data_len,
                                        capsule.initiator_data_addr);
        !st) {
      conn->wr_pending.erase(wr);
      ok = false;
      nvme_status = nvme::kScDataTransferError;
    } else {
      const sim::Time pull_begin = engine.now();
      auto wc = co_await fut;
      if (*stop) {
        finish();
        co_return;
      }
      trace_target_span(trace_qid, capsule.cid, obs::Phase::rdma_data, pull_begin,
                        engine.now());
      if (!wc.status) {
        ok = false;
        nvme_status = nvme::kScDataTransferError;
      } else if (capsule.data_digest != 0) {
        // Verify what actually landed in staging after the RDMA READ.
        Bytes payload(capsule.data_len);
        (void)dram.read(staging, payload);
        if (integrity::crc32c(payload) != capsule.data_digest) {
          ++integrity::stats().digest_errors;
          ok = false;
          nvme_status = nvme::kScDataTransferError;
        }
      }
    }
  }
  if (op == FabricOp::read) ++stats_.reads;

  // Submit to the local NVMe queue pair.
  if (ok) {
    SubmissionEntry sqe;
    const std::uint64_t bytes = capsule.data_len;
    std::uint64_t prp2 = 0;
    if (bytes > 2 * nvme::kPageSize) {
      prp2 = conn->prp_base + slot * nvme::kPageSize;
    } else if (bytes > nvme::kPageSize) {
      prp2 = staging + nvme::kPageSize;
    }
    switch (op) {
      case FabricOp::flush:
        sqe = nvme::make_flush(0, capsule.nsid);
        break;
      case FabricOp::read:
        sqe = nvme::make_io_rw(false, 0, capsule.nsid, capsule.slba,
                               static_cast<std::uint16_t>(capsule.nblocks), staging, prp2);
        break;
      case FabricOp::write:
        sqe = nvme::make_io_rw(true, 0, capsule.nsid, capsule.slba,
                               static_cast<std::uint16_t>(capsule.nblocks), staging, prp2);
        break;
      case FabricOp::write_zeroes:
        sqe = nvme::make_write_zeroes(0, capsule.nsid, capsule.slba,
                                      static_cast<std::uint16_t>(capsule.nblocks));
        break;
      case FabricOp::discard: {
        // Build the range descriptor in this command's staging slot.
        nvme::DsmRange range;
        range.nlb = capsule.nblocks;
        range.slba = capsule.slba;
        (void)dram.write(staging, as_bytes_of(range));
        sqe = nvme::make_dsm_deallocate(0, capsule.nsid, 1, staging);
        break;
      }
      default:
        ok = false;
        nvme_status = nvme::kScInvalidOpcode;
    }
    if (ok) {
      auto cid = conn->nvme_qp->push(sqe);
      if (!cid) {
        ok = false;
        nvme_status = nvme::kScInternalError;
      } else {
        auto [it, ins] =
            conn->nvme_pending.emplace(*cid, sim::Promise<CompletionEntry>(engine));
        (void)ins;
        auto fut = it->second.future();
        const sim::Time nvme_begin = engine.now();
        co_await sim::delay(engine, cfg_.costs.doorbell_ns);
        (void)conn->nvme_qp->ring_sq_doorbell();
        CompletionEntry cqe = co_await fut;
        if (*stop) {
          finish();
          co_return;
        }
        trace_target_span(trace_qid, capsule.cid, obs::Phase::media, nvme_begin, engine.now());
        nvme_status = cqe.status();
        ok = cqe.ok();
      }
    }
  }
  if (!ok) ++stats_.errors;

  // Reads: push the data to the initiator's buffer; the response capsule
  // follows on the same QP, so RC ordering keeps data-before-completion.
  sim::Future<rdma::WorkCompletion> write_fut;
  bool pushed_data = false;
  std::uint32_t read_digest = 0;
  if (ok && op == FabricOp::read && capsule.data_len > 0 && cfg_.data_digest) {
    // DDGST over the staged data before the push: the initiator compares
    // it against what actually arrives in its buffer.
    Bytes payload(capsule.data_len);
    (void)dram.read(staging, payload);
    read_digest = integrity::crc32c(payload);
    ++integrity::stats().digests_generated;
  }
  if (ok && op == FabricOp::read && capsule.data_len > 0) {
    const std::uint64_t wr = kWrRdmaWrite | slot;
    auto [it, ins] = conn->wr_pending.emplace(wr, sim::Promise<rdma::WorkCompletion>(engine));
    (void)ins;
    write_fut = it->second.future();
    if (Status st = conn->qp->rdma_write(wr, staging, capsule.data_len,
                                         capsule.initiator_data_addr);
        !st) {
      conn->wr_pending.erase(wr);
      ok = false;
      nvme_status = nvme::kScDataTransferError;
      ++stats_.errors;
    } else {
      pushed_data = true;
    }
  }

  // Completion path software + the response capsule SEND.
  co_await sim::delay(engine, cfg_.costs.jittered(cfg_.costs.completion_ns, rng_));
  ResponseCapsule response;
  response.cid = capsule.cid;
  response.status = ok ? 0 : (nvme_status != 0 ? nvme_status : nvme::kScInternalError);
  if (ok && pushed_data) response.data_digest = read_digest;
  (void)dram.write(conn->resp_base + slot * sizeof(ResponseCapsule), as_bytes_of(response));

  const std::uint64_t wr_send = kWrSend | slot;
  auto [sit, sins] = conn->wr_pending.emplace(wr_send, sim::Promise<rdma::WorkCompletion>(engine));
  (void)sins;
  auto send_fut = sit->second.future();
  if (Status st = conn->qp->post_send(wr_send, conn->resp_base + slot * sizeof(ResponseCapsule),
                                      sizeof(ResponseCapsule));
      !st) {
    conn->wr_pending.erase(wr_send);
  } else {
    (void)co_await send_fut;
  }
  if (pushed_data) (void)co_await write_fut;
  if (*stop) {
    finish();
    co_return;
  }

  // Recycle the command slot.
  (void)conn->qp->post_recv(kWrRecv | slot, conn->recv_base + slot * kCapsuleSlotBytes,
                            kCapsuleSlotBytes);
  finish();
}

}  // namespace nvmeshare::nvmeof
