#include "driver/cost_model.hpp"

namespace nvmeshare::driver {

CostModel CostModel::stock_linux() {
  CostModel m;
  m.submit_ns = 1100;
  m.completion_ns = 800;
  m.doorbell_ns = 80;
  m.poll_interval_ns = 0;  // interrupt driven
  m.irq_delivery_ns = 1900;
  m.memcpy_bytes_per_ns = 16.0;  // not used: no bounce buffer
  m.jitter_sigma = 0.05;
  return m;
}

CostModel CostModel::distributed_driver() {
  CostModel m;
  // "Compared to the stock Linux driver, our driver implementation is
  // naive": a longer submission path, polling instead of interrupts, and
  // an extra memcpy through the bounce buffer.
  m.submit_ns = 2600;
  m.completion_ns = 1900;
  m.doorbell_ns = 80;
  m.poll_interval_ns = 150;
  m.irq_delivery_ns = 0;  // not supported by the SISCI extension (Section V)
  m.memcpy_bytes_per_ns = 12.0;
  m.jitter_sigma = 0.06;
  return m;
}

CostModel CostModel::spdk() {
  CostModel m;
  m.submit_ns = 600;
  m.completion_ns = 350;
  m.doorbell_ns = 60;
  m.poll_interval_ns = 100;
  m.jitter_sigma = 0.03;
  return m;
}

CostModel CostModel::nvmeof_initiator() {
  CostModel m;
  m.submit_ns = 1300;       // request -> command capsule posted
  m.completion_ns = 1100;   // completion capsule -> request done
  m.doorbell_ns = 80;       // RDMA SQ doorbell
  m.poll_interval_ns = 0;   // RDMA completion interrupts
  m.irq_delivery_ns = 2400;
  m.jitter_sigma = 0.05;
  return m;
}

sim::Duration CostModel::jittered(sim::Duration base, Rng& rng) const {
  if (base <= 0) return 0;
  return static_cast<sim::Duration>(rng.lognormal(static_cast<double>(base), jitter_sigma));
}

sim::Duration CostModel::memcpy_ns(std::uint64_t bytes) const {
  return static_cast<sim::Duration>(static_cast<double>(bytes) / memcpy_bytes_per_ns);
}

}  // namespace nvmeshare::driver
