// Per-host interrupt controller endpoint: the landing pad for MSI-X
// messages. A device posts a 4-byte write to a vector's address; the
// controller invokes the handler registered for that vector at arrival
// time. Used by the interrupt-driven baselines (stock local driver, RDMA
// NIC completions); the paper's own driver polls instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pcie/endpoint.hpp"

namespace nvmeshare::driver {

class IrqController final : public pcie::Endpoint {
 public:
  static constexpr std::uint32_t kVectors = 256;

  using Handler = std::function<void(std::uint32_t data)>;

  [[nodiscard]] std::string_view name() const override { return "irqctl"; }
  [[nodiscard]] int bar_count() const override { return 1; }
  [[nodiscard]] std::uint64_t bar_size(int bar) const override {
    return bar == 0 ? kVectors * 4 : 0;
  }
  Result<Bytes> bar_read(int bar, std::uint64_t offset, std::size_t len) override;
  Status bar_write(int bar, std::uint64_t offset, ConstByteSpan data) override;

  /// Claim a free vector and attach a handler. Returns the vector index.
  Result<std::uint32_t> allocate_vector(Handler handler);
  void release_vector(std::uint32_t vector);

  /// Address a device must write to raise `vector` (in this host's space).
  [[nodiscard]] Result<std::uint64_t> vector_address(std::uint32_t vector) const;

  [[nodiscard]] std::uint64_t interrupts_delivered() const noexcept { return delivered_; }

 private:
  std::vector<Handler> handlers_ = std::vector<Handler>(kVectors);
  std::uint64_t delivered_ = 0;
};

}  // namespace nvmeshare::driver
