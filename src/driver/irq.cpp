#include "driver/irq.hpp"

#include "fabric/substrate.hpp"

namespace nvmeshare::driver {

Result<Bytes> IrqController::bar_read(int bar, std::uint64_t offset, std::size_t len) {
  if (bar != 0 || offset + len > bar_size(0)) {
    return Status(Errc::out_of_range, "irqctl read OOB");
  }
  return Bytes(len, std::byte{0});
}

Status IrqController::bar_write(int bar, std::uint64_t offset, ConstByteSpan data) {
  if (bar != 0 || offset + data.size() > bar_size(0)) {
    return Status(Errc::out_of_range, "irqctl write OOB");
  }
  if (data.size() != 4 || offset % 4 != 0) {
    return Status(Errc::invalid_argument, "MSI writes are aligned 4-byte stores");
  }
  const std::uint32_t vector = static_cast<std::uint32_t>(offset / 4);
  if (handlers_[vector]) {
    ++delivered_;
    handlers_[vector](load_pod<std::uint32_t>(data));
  }
  return Status::ok();
}

Result<std::uint32_t> IrqController::allocate_vector(Handler handler) {
  for (std::uint32_t v = 0; v < kVectors; ++v) {
    if (!handlers_[v]) {
      handlers_[v] = std::move(handler);
      return v;
    }
  }
  return Status(Errc::resource_exhausted, "no free interrupt vectors");
}

void IrqController::release_vector(std::uint32_t vector) {
  if (vector < kVectors) handlers_[vector] = nullptr;
}

Result<std::uint64_t> IrqController::vector_address(std::uint32_t vector) const {
  if (vector >= kVectors) return Status(Errc::invalid_argument, "bad vector");
  if (fabric() == nullptr) return Status(Errc::unavailable, "irqctl not attached");
  auto base = fabric()->bar_address(endpoint_id(), 0);
  if (!base) return base.status();
  return *base + vector * 4;
}

}  // namespace nvmeshare::driver
