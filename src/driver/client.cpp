#include "driver/client.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "integrity/integrity.hpp"
#include "obs/trace.hpp"

namespace nvmeshare::driver {

using nvme::CompletionEntry;
using nvme::SubmissionEntry;

Client::Stats::Stats()
    : reads("nvmeshare.client.reads"),
      writes("nvmeshare.client.writes"),
      flushes("nvmeshare.client.flushes"),
      errors("nvmeshare.client.errors"),
      bounce_copies("nvmeshare.client.bounce_copies"),
      bounce_copy_bytes("nvmeshare.client.bounce_copy_bytes"),
      iommu_maps("nvmeshare.client.iommu_maps"),
      poll_rounds("nvmeshare.client.poll_rounds"),
      cmd_timeouts("nvmeshare.client.cmd_timeouts"),
      cmd_retries("nvmeshare.client.cmd_retries"),
      qp_recoveries("nvmeshare.client.qp_recoveries"),
      late_completions("nvmeshare.client.late_completions"),
      heartbeats("nvmeshare.client.heartbeats"),
      mailbox_retries("nvmeshare.client.mailbox_retries"),
      manager_failovers("nvmeshare.client.manager_failovers") {}

namespace {
obs::Kind trace_kind(block::Op op) {
  switch (op) {
    case block::Op::read: return obs::Kind::read;
    case block::Op::write: return obs::Kind::write;
    case block::Op::flush: return obs::Kind::flush;
    case block::Op::write_zeroes: return obs::Kind::write_zeroes;
    case block::Op::discard: return obs::Kind::discard;
  }
  return obs::Kind::other;
}
}  // namespace

namespace {
/// What io_task hands the engine as its opaque submission cookie: the SQE
/// plus the CID window it must allocate from. An empty range (hi == 0)
/// selects the default full-range scan, which is byte-identical to the
/// pre-share submission path.
struct IssueCtx {
  SubmissionEntry sqe;
  nvme::CidRange range;
};

constexpr sim::Duration kAcquireRetryNs = 50'000;
constexpr int kAcquireRetryLimit = 200;

constexpr int kRecoverRetryLimit = 8;
/// Settle time between tearing the old queue pair down and zeroing its
/// memory, so a straggling CQE DMA cannot land in the rebuilt ring.
constexpr sim::Duration kRecoverDrainNs = 100'000;

/// Per-client, per-purpose segment ids: (node, purpose) must be unique even
/// when hinted allocation places several clients' segments on the same
/// (device) host.
constexpr sisci::SegmentId client_segment_id(std::uint32_t segment_namespace,
                                             smartio::NodeId node, std::uint32_t purpose) {
  return 0x43000000u | ((segment_namespace & 0xFF) << 16) |
         (static_cast<std::uint32_t>(node) << 8) | purpose;
}
}  // namespace

Client::Client(smartio::Service& service, smartio::NodeId node, smartio::DeviceId device,
               Config cfg)
    : service_(service),
      node_(node),
      device_id_(device),
      cfg_(cfg),
      rng_(cfg.seed ^ (0x9e37ull * node)),
      iommu_(cfg.iommu) {}

Client::~Client() {
  *stop_ = true;
  if (poller_kick_) poller_kick_->set();  // let an idle poller observe the stop and exit
  if (crash_token_ != 0) fault::Injector::global().unregister_crash_handler(crash_token_);
}

sim::Engine& Client::engine() { return service_.cluster().engine(); }
fabric::Substrate& Client::fabric() { return service_.cluster().fabric(); }

Status Client::copy_to_bounce(std::uint64_t slot_off, std::uint64_t src, std::uint64_t len) {
  Bytes tmp(len);
  NVS_RETURN_IF_ERROR(fabric().host_dram(node_).read(src, tmp));
  return bounce_seg_.write(slot_off, tmp);
}

Status Client::copy_from_bounce(std::uint64_t dst, std::uint64_t slot_off, std::uint64_t len) {
  Bytes tmp(len);
  NVS_RETURN_IF_ERROR(bounce_seg_.read(slot_off, tmp));
  return fabric().host_dram(node_).write(dst, tmp);
}

// --- block::IoTransport -------------------------------------------------------------
//
// The queue-pair personality the shared engine drives: an issue is an SQE
// store into channel's SQ slice, a ring is the SQ tail doorbell, and a
// broken channel is rebuilt through the manager mailbox.

Result<std::uint16_t> Client::issue(std::uint32_t chan, void* cookie) {
  const auto* ctx = static_cast<const IssueCtx*>(cookie);
  if (ctx->range.hi == 0) return qps_[chan]->push(ctx->sqe);
  return qps_[chan]->push(ctx->sqe, ctx->range);
}

Status Client::ring(std::uint32_t chan) {
  // May fail during an outage; the engine's deadline watchdog covers it.
  return qps_[chan]->ring_sq_doorbell();
}

/// Transient controller statuses worth a retry; everything else (invalid
/// field, LBA out of range, ...) is deterministic and reported immediately.
/// End-to-end check errors are retryable: a mismatch on the DMA'd copy of
/// intact media (bit flip in flight) heals on resubmission.
bool Client::retryable(std::uint16_t status) const {
  return status == nvme::kScInternalError || status == nvme::kScDataTransferError ||
         status == nvme::kScGuardCheckError || status == nvme::kScAppTagCheckError ||
         status == nvme::kScRefTagCheckError;
}

void Client::start_recovery(std::uint32_t chan) { recover_task(chan, stop_); }

std::uint16_t Client::trace_qid(std::uint32_t chan) const { return qids_[chan]; }

void Client::on_armed(std::uint32_t chan) {
  (void)chan;
  poller_kick_->set();  // completions are coming: wake the idle poller
}

std::uint64_t Client::sq_stride_bytes() const noexcept {
  const std::uint64_t ring = cfg_.queue_entries * 64ull;
  return cfg_.channels == 1 ? ring : div_ceil(ring, nvme::kPageSize) * nvme::kPageSize;
}

std::uint64_t Client::cq_stride_bytes() const noexcept {
  const std::uint64_t ring = cfg_.queue_entries * 16ull;
  return cfg_.channels == 1 ? ring : div_ceil(ring, nvme::kPageSize) * nvme::kPageSize;
}

std::unique_ptr<nvme::QueuePair> Client::make_queue_pair(std::uint32_t chan,
                                                         std::uint16_t qid) {
  nvme::QueuePair::Config qc;
  qc.qid = qid;
  qc.sq_size = cfg_.queue_entries;
  qc.cq_size = cfg_.queue_entries;
  qc.sq_write_addr = sq_cpu_map_.addr() + chan * sq_stride_bytes();
  qc.cq_poll_addr = cq_cpu_map_.addr() + chan * cq_stride_bytes();
  qc.sq_doorbell_addr = bar_.addr() + nvme::sq_doorbell_offset(qid);
  qc.cq_doorbell_addr = bar_.addr() + nvme::cq_doorbell_offset(qid);
  qc.cpu = fabric().cpu(node_);
  return std::make_unique<nvme::QueuePair>(fabric(), qc);
}

sim::Future<Result<std::unique_ptr<Client>>> Client::attach(smartio::Service& service,
                                                            smartio::NodeId node,
                                                            smartio::DeviceId device,
                                                            Config cfg) {
  sim::Promise<Result<std::unique_ptr<Client>>> promise(service.cluster().engine());
  auto self = std::unique_ptr<Client>(new Client(service, node, device, cfg));
  init_task(std::move(self), promise);
  return promise.future();
}

sim::Task Client::init_task(std::unique_ptr<Client> self,
                            sim::Promise<Result<std::unique_ptr<Client>>> promise) {
  Client& c = *self;
  sim::Engine& engine = c.engine();
  fabric::Substrate& fabric = c.fabric();
  sisci::Cluster& cluster = c.service_.cluster();
  const pcie::Initiator cpu = fabric.cpu(c.node_);

  // Config sanity. Queue geometry (depth < entries, channel count) is the
  // engine's attach-time rule, shared by every backend.
  block::IoEngine::Config ec;
  ec.backend = "client";
  ec.channels = c.cfg_.channels;
  ec.queue_depth = c.cfg_.queue_depth;
  ec.queue_entries = c.cfg_.queue_entries;
  ec.scheduler = c.cfg_.scheduler;
  ec.coalesce_doorbells = c.cfg_.coalesce_doorbells;
  ec.doorbell_ns = c.cfg_.costs.doorbell_ns;
  ec.cmd_timeout_ns = c.cfg_.cmd_timeout_ns;
  ec.cmd_retry_limit = c.cfg_.cmd_retry_limit;
  ec.retry_backoff_ns = c.cfg_.retry_backoff_ns;
  ec.retry_backoff_max_ns = c.cfg_.retry_backoff_max_ns;
  ec.trace_style = block::IoEngine::TraceStyle::nvme;
  ec.counters.timeouts = &c.stats_.cmd_timeouts;
  ec.counters.retries = &c.stats_.cmd_retries;
  ec.counters.recoveries = &c.stats_.qp_recoveries;
  ec.counters.late_completions = &c.stats_.late_completions;
  if (Status st = block::IoEngine::validate(ec); !st) {
    promise.set(st);
    co_return;
  }
  if (c.cfg_.queue_entries < 2 || c.cfg_.slot_bytes < nvme::kPageSize ||
      c.cfg_.slot_bytes % nvme::kPageSize != 0 || c.cfg_.slot_bytes > 32 * nvme::kPageSize) {
    promise.set(Status(Errc::invalid_argument, "bad client configuration"));
    co_return;
  }
  const std::uint32_t total_depth = c.cfg_.queue_depth * c.cfg_.channels;

  // 1. Shared device reference; the manager may still hold it exclusively
  //    while initializing, so retry.
  for (int attempt = 0;; ++attempt) {
    auto ref = c.service_.acquire(c.device_id_, smartio::AcquireMode::shared);
    if (ref) {
      c.ref_ = std::move(*ref);
      break;
    }
    if (ref.error_code() != Errc::permission_denied || attempt >= kAcquireRetryLimit) {
      promise.set(ref.status());
      co_return;
    }
    co_await sim::delay(engine, kAcquireRetryNs);
  }

  // 2. Find the manager's metadata segment (SmartIO distributes this).
  std::pair<smartio::NodeId, sisci::SegmentId> meta_loc;
  for (int attempt = 0;; ++attempt) {
    auto loc = c.service_.device_metadata(c.device_id_);
    if (loc) {
      meta_loc = *loc;
      break;
    }
    if (attempt >= kAcquireRetryLimit) {
      promise.set(Status(Errc::unavailable, "device is not managed (no metadata segment)"));
      co_return;
    }
    co_await sim::delay(engine, kAcquireRetryNs);
  }
  auto meta_remote = cluster.connect(meta_loc.first, meta_loc.second);
  if (!meta_remote) {
    promise.set(meta_remote.status());
    co_return;
  }
  auto meta_map = sisci::Map::create(cluster, c.node_, *meta_remote);
  if (!meta_map) {
    promise.set(meta_map.status());
    co_return;
  }
  c.meta_map_ = std::move(*meta_map);

  // Read the header across the NTB (a real, timed remote read).
  auto hdr = co_await fabric.read(cpu, c.meta_map_.addr(), sizeof(MetadataHeader));
  if (!hdr) {
    promise.set(hdr.status());
    co_return;
  }
  c.header_ = load_pod<MetadataHeader>(*hdr);
  if (c.header_.magic != kMetadataMagic) {
    promise.set(Status(Errc::protocol_error, "bad metadata segment magic"));
    co_return;
  }
  // Version negotiation: any mismatch (older manager, newer manager) is a
  // clean `unsupported` — never an attempt to parse a foreign slot layout.
  if (c.header_.version != kMetadataVersion) {
    promise.set(Status(Errc::unsupported,
                       "manager speaks metadata v" + std::to_string(c.header_.version) +
                           ", client requires v" + std::to_string(kMetadataVersion)));
    co_return;
  }
  if (c.node_ >= c.header_.mailbox_slots) {
    promise.set(Status(Errc::out_of_range, "no mailbox slot for this node"));
    co_return;
  }
  c.mbox_addr_ = c.meta_map_.addr() + mbox_slot_offset(c.header_, c.node_);
  c.meta_loc_ = meta_loc;
  if (c.cfg_.mailbox_retry_limit > 1) {
    // HA-aware client: remember the serving manager's epoch so a response
    // written by a fenced manager can be recognized as stale after a
    // takeover. Gated on the retry knob — the extra timed read would
    // otherwise perturb the fault-free seed instruction stream.
    auto lease =
        co_await fabric.read(cpu, c.meta_map_.addr() + kLeaseOffset, sizeof(ManagerLease));
    if (lease) c.lease_epoch_ = load_pod<ManagerLease>(*lease).epoch;
  }

  // 3. Queue memory. CQ is polled by this CPU -> local. SQ placement is the
  //    Figure 8 policy knob. One segment per purpose holds every channel's
  //    ring contiguously (channel c's slice starts at c * ring_bytes), so
  //    one DMA window covers all channels.
  const std::uint64_t sq_ring_bytes = c.sq_stride_bytes();
  const std::uint64_t cq_ring_bytes = c.cq_stride_bytes();
  auto cq_seg = c.service_.create_segment_hinted(
      c.node_, client_segment_id(c.cfg_.segment_namespace, c.node_, 0),
      cq_ring_bytes * c.cfg_.channels, c.device_id_,
      smartio::AccessHint::cq());
  if (!cq_seg) {
    promise.set(cq_seg.status());
    co_return;
  }
  c.cq_seg_ = std::move(*cq_seg);
  if (!fabric.cpu_pollable(c.node_, c.cq_seg_.node())) {
    promise.set(Status(Errc::internal, "CQ hint did not resolve to CPU-pollable memory"));
    co_return;
  }

  Result<sisci::Segment> sq_seg =
      c.cfg_.sq_placement == SqPlacement::device_side
          ? c.service_.create_segment_hinted(c.node_, client_segment_id(c.cfg_.segment_namespace, c.node_, 1),
                                             sq_ring_bytes * c.cfg_.channels, c.device_id_,
                                             smartio::AccessHint::sq())
          : cluster.create_segment(c.node_, client_segment_id(c.cfg_.segment_namespace, c.node_, 1),
                                   sq_ring_bytes * c.cfg_.channels);
  if (!sq_seg) {
    promise.set(sq_seg.status());
    co_return;
  }
  c.sq_seg_ = std::move(*sq_seg);
  // Queue memory must start zeroed: a reused physical range may hold stale
  // completion entries whose phase bits would read as valid.
  (void)c.cq_seg_.write(0, Bytes(c.cq_seg_.size(), std::byte{0}));
  (void)c.sq_seg_.write(0, Bytes(c.sq_seg_.size(), std::byte{0}));

  // 4. Bounce buffer + prewritten PRP lists (bounce mode), or just the PRP
  //    list pages (IOMMU mode writes them per request).
  const std::uint64_t bounce_bytes =
      static_cast<std::uint64_t>(total_depth) * c.cfg_.slot_bytes;
  if (c.cfg_.data_path == DataPath::bounce_buffer) {
    // Both the CPU and the device touch the bounce buffer on every request;
    // the substrate places it (NTB: client-local DRAM, CXL: the pool).
    auto bounce = c.service_.create_segment_hinted(
        c.node_, client_segment_id(c.cfg_.segment_namespace, c.node_, 2), bounce_bytes,
        c.device_id_, smartio::AccessHint::data());
    if (!bounce) {
      promise.set(bounce.status());
      co_return;
    }
    c.bounce_seg_ = std::move(*bounce);
  }
  auto prp = c.service_.create_segment_hinted(
      c.node_, client_segment_id(c.cfg_.segment_namespace, c.node_, 3),
      static_cast<std::uint64_t>(total_depth) * nvme::kPageSize, c.device_id_,
      smartio::AccessHint::sq());
  if (!prp) {
    promise.set(prp.status());
    co_return;
  }
  c.prp_seg_ = std::move(*prp);

  // 5. DMA windows: device-visible addresses for everything the controller
  //    must reach. SmartIO hides whether each segment is local or remote to
  //    the device.
  auto sq_win = c.ref_.map_for_device(c.sq_seg_.descriptor());
  auto cq_win = c.ref_.map_for_device(c.cq_seg_.descriptor());
  auto prp_win = c.ref_.map_for_device(c.prp_seg_.descriptor());
  if (!sq_win || !cq_win || !prp_win) {
    promise.set(Status(Errc::resource_exhausted, "no NTB windows for queue segments"));
    co_return;
  }
  c.sq_win_ = std::move(*sq_win);
  c.cq_win_ = std::move(*cq_win);
  c.prp_win_ = std::move(*prp_win);
  if (c.cfg_.data_path == DataPath::bounce_buffer) {
    auto bounce_win = c.ref_.map_for_device(c.bounce_seg_.descriptor());
    if (!bounce_win) {
      promise.set(bounce_win.status());
      co_return;
    }
    c.bounce_win_ = std::move(*bounce_win);

    // Prewrite one PRP list per slot: the bounce partition is constant, so
    // the DMA descriptors are "programmed once" (Section V). Entry j of
    // slot i covers page j+1 of the slot (page 0 rides in PRP1).
    const std::uint32_t pages_per_slot =
        static_cast<std::uint32_t>(c.cfg_.slot_bytes / nvme::kPageSize);
    for (std::uint32_t slot = 0; slot < total_depth; ++slot) {
      const std::uint64_t slot_iova =
          c.bounce_win_.device_addr() + static_cast<std::uint64_t>(slot) * c.cfg_.slot_bytes;
      Bytes list((pages_per_slot > 1 ? pages_per_slot - 1 : 0) * 8);
      for (std::uint32_t j = 0; j + 1 < pages_per_slot; ++j) {
        store_pod(list, slot_iova + static_cast<std::uint64_t>(j + 1) * nvme::kPageSize,
                  j * 8);
      }
      if (!list.empty()) {
        (void)c.prp_seg_.write(static_cast<std::uint64_t>(slot) * nvme::kPageSize, list);
      }
    }
  }

  // 6. Device registers: BAR window for the doorbells.
  auto bar = c.ref_.map_bar(c.node_, 0);
  if (!bar) {
    promise.set(bar.status());
    co_return;
  }
  c.bar_ = std::move(*bar);

  // 7. Ask the manager for the queue pairs over the shared-memory mailbox:
  //    one create_qp for the single-channel layout, one batch grant
  //    otherwise (all-or-nothing, so a half-granted client never exists).
  c.mailbox_lock_ = std::make_unique<sim::Semaphore>(engine, 1);
  MboxSlot req;
  req.client_node = c.node_;
  req.sq_device_addr = c.sq_win_.device_addr();
  req.cq_device_addr = c.cq_win_.device_addr();
  req.sq_size = c.cfg_.queue_entries;
  req.cq_size = c.cfg_.queue_entries;
  req.qos_class = static_cast<std::uint8_t>(c.cfg_.qos_class);
  req.qos_iops = c.cfg_.qos_iops;
  req.qos_bytes_per_s = c.cfg_.qos_bytes_per_s;
  if (c.cfg_.channels == 1) {
    req.op = static_cast<std::uint32_t>(MboxOp::create_qp);
  } else {
    req.op = static_cast<std::uint32_t>(MboxOp::create_qp_batch);
    req.qp_count = static_cast<std::uint16_t>(c.cfg_.channels);
    req.sq_stride = static_cast<std::uint32_t>(sq_ring_bytes);
    req.cq_stride = static_cast<std::uint32_t>(cq_ring_bytes);
  }
  auto resp = co_await c.mailbox_call(req);
  if (!resp) {
    promise.set(resp.status());
    co_return;
  }
  if (resp->status != static_cast<std::uint32_t>(Errc::ok)) {
    promise.set(Status(static_cast<Errc>(resp->status), "manager rejected create_qp"));
    co_return;
  }
  c.qids_.resize(c.cfg_.channels);
  if (c.cfg_.channels == 1) {
    c.qids_[0] = resp->qid_out;
  } else {
    for (std::uint32_t ch = 0; ch < c.cfg_.channels; ++ch) c.qids_[ch] = resp->qids[ch];
  }
  // The granted budgets (possibly clamped below what we asked) arm the
  // engine's token-bucket pacer; an uncapped grant leaves both rates zero
  // and the pacer disarmed, preserving the seed instruction stream.
  ec.qos_iops_limit = resp->qos_granted_iops;
  ec.qos_bytes_per_s = resp->qos_granted_bytes_per_s;

  // 8. CPU views of the rings: the SQ map is an NTB window when the SQ
  //    lives device-side; the CQ map is direct for local DRAM and an HDM
  //    address for a pooled CQ.
  auto sq_map = sisci::Map::create(cluster, c.node_, c.sq_seg_.descriptor());
  if (!sq_map) {
    promise.set(sq_map.status());
    co_return;
  }
  c.sq_cpu_map_ = std::move(*sq_map);
  auto cq_map = sisci::Map::create(cluster, c.node_, c.cq_seg_.descriptor());
  if (!cq_map) {
    promise.set(cq_map.status());
    co_return;
  }
  c.cq_cpu_map_ = std::move(*cq_map);

  c.qps_.resize(c.cfg_.channels);
  for (std::uint32_t ch = 0; ch < c.cfg_.channels; ++ch) {
    c.qps_[ch] = c.make_queue_pair(ch, c.qids_[ch]);
  }

  c.max_transfer_ = c.header_.max_transfer_bytes;
  if (c.cfg_.data_path == DataPath::bounce_buffer) {
    c.max_transfer_ = std::min(c.max_transfer_, c.cfg_.slot_bytes);
  }
  c.poller_kick_ = std::make_unique<sim::Event>(engine);
  // The private-base conversion must happen here, where Client's bases are
  // accessible (make_unique's internals cannot see it).
  block::IoTransport& transport = c;
  c.engine_io_ = std::make_unique<block::IoEngine>(engine, transport, c.stop_, ec);
  if (c.cfg_.pi_verify) {
    c.engine_io_->enable_pi(fabric.host_dram(c.node_), c.header_.block_size);
  }
  c.name_ = "nvsh-n" + std::to_string(c.node_) + "-q" + std::to_string(c.qids_[0]);
  if (c.cfg_.channels > 1) c.name_ += "x" + std::to_string(c.cfg_.channels);
  c.attached_ = true;
  c.poller(c.stop_);
  if (c.cfg_.heartbeat_interval_ns > 0) c.heartbeat_task(c.stop_);
  if (fault::enabled()) {
    Client* raw = self.get();
    c.crash_token_ = fault::Injector::global().register_crash_handler(
        c.node_, [raw]() { raw->crash(); });
  }

  NVS_LOG(info, "client") << c.name_ << " attached (sq "
                          << (c.cfg_.sq_placement == SqPlacement::device_side ? "device-side"
                                                                              : "host-side")
                          << ", " << (c.cfg_.data_path == DataPath::bounce_buffer
                                          ? "bounce buffer"
                                          : "iommu")
                          << ")";
  promise.set(std::move(self));
}

// --- mailbox RPC ------------------------------------------------------------------

sim::Future<Result<MboxSlot>> Client::mailbox_call(MboxSlot request) {
  sim::Promise<Result<MboxSlot>> promise(engine());
  mailbox_call_task(request, promise);
  return promise.future();
}

// One attempt posts the request, polls the state word until the manager
// flips it to done, reads the full slot back and frees it. With the retry
// knob off that is the whole story (the seed instruction stream); with it
// on, a timed-out or transport-failed attempt backs off exponentially,
// follows a possible manager takeover (the metadata registration moves to
// the standby's fresh segment) and re-posts. Duplicate grants from a
// re-post the old manager already served are safe: the manager reclaims a
// same-client grant whose SQ address overlaps before creating the new one.
sim::Task Client::mailbox_call_task(MboxSlot request, sim::Promise<Result<MboxSlot>> promise) {
  sim::Engine& eng = engine();
  fabric::Substrate& fab = fabric();
  const pcie::Initiator cpu = fab.cpu(node_);
  co_await mailbox_lock_->acquire();

  const std::uint32_t attempts = std::max<std::uint32_t>(cfg_.mailbox_retry_limit, 1);
  Status last = Status(Errc::timed_out, "manager did not answer mailbox request");
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.mailbox_retries;
      co_await sim::delay(eng, block::IoEngine::backoff_ns(cfg_.mailbox_retry_backoff_ns,
                                                           attempt, cfg_.retry_backoff_max_ns));
      if (*stop_ || crashed_) {
        last = Status(Errc::aborted, "client stopped during mailbox retry");
        break;
      }
      if (Status st = co_await refresh_manager(); !st) {
        last = st;
        continue;  // registration gone or unreadable; back off and look again
      }
    }
    request.state = static_cast<std::uint32_t>(MboxState::request);
    request.client_node = node_;
    Bytes buf(sizeof(MboxSlot));
    store_pod(buf, request);
    if (auto arr = fab.post_write(cpu, mbox_addr_, std::move(buf)); !arr) {
      last = arr.status();
      if (attempts == 1) break;  // terminal on a single attempt (seed behavior)
      continue;
    }

    const sim::Time deadline = eng.now() + cfg_.mailbox_timeout_ns;
    bool done = false;
    bool fatal = false;
    for (;;) {
      co_await sim::delay(eng, cfg_.mailbox_poll_ns);
      // Poll the state word with a remote read through the NTB.
      auto state = co_await fab.read(cpu, mbox_addr_, 4);
      if (!state) {
        last = state.status();
        fatal = attempts == 1;  // a downed manager host is retryable with HA on
        break;
      }
      if (load_pod<std::uint32_t>(*state) == static_cast<std::uint32_t>(MboxState::done)) {
        done = true;
        break;
      }
      if (eng.now() >= deadline) {
        last = Status(Errc::timed_out, "manager did not answer mailbox request");
        break;
      }
    }
    if (fatal) break;
    if (!done) continue;

    auto full = co_await fab.read(cpu, mbox_addr_, sizeof(MboxSlot));
    if (!full) {
      last = full.status();
      if (attempts == 1) break;
      continue;
    }
    MboxSlot response = load_pod<MboxSlot>(*full);

    // Hand the slot back.
    Bytes free_word(4);
    store_pod(free_word, static_cast<std::uint32_t>(MboxState::free));
    (void)fab.post_write(cpu, mbox_addr_, std::move(free_word));

    // Epoch check (HA only): a fenced manager that answered after losing its
    // lease stamps the old epoch; drop the response and ask the new one.
    if (cfg_.mailbox_retry_limit > 1 && lease_epoch_ != 0 && response.epoch != 0) {
      if (response.epoch < lease_epoch_) {
        last = Status(Errc::unavailable, "mailbox response from a fenced manager epoch");
        continue;
      }
      lease_epoch_ = response.epoch;
    }
    mailbox_lock_->release();
    promise.set(response);
    co_return;
  }
  mailbox_lock_->release();
  promise.set(last);
}

sim::Future<Status> Client::refresh_manager() {
  sim::Promise<Status> promise(engine());
  refresh_manager_task(promise);
  return promise.future();
}

// Follow a manager takeover: SmartIO's metadata registration is the source
// of truth for who serves the device. When it moved, connect and map the
// successor's segment, validate its header, re-learn the lease epoch, and
// recompute this node's mailbox slot address. Heartbeats and retried
// mailbox calls then land in the new manager's segment; nothing about the
// established queue pairs changes (the takeover adopted them).
sim::Task Client::refresh_manager_task(sim::Promise<Status> promise) {
  fabric::Substrate& fab = fabric();
  sisci::Cluster& cluster = service_.cluster();
  const pcie::Initiator cpu = fab.cpu(node_);

  auto loc = service_.device_metadata(device_id_);
  if (!loc) {
    promise.set(Status(Errc::unavailable, "device has no manager metadata registered"));
    co_return;
  }
  if (*loc == meta_loc_) {
    promise.set(Status::ok());  // nothing moved; the current mapping stands
    co_return;
  }
  auto remote = cluster.connect(loc->first, loc->second);
  if (!remote) {
    promise.set(remote.status());
    co_return;
  }
  auto map = sisci::Map::create(cluster, node_, *remote);
  if (!map) {
    promise.set(map.status());
    co_return;
  }
  auto hdr = co_await fab.read(cpu, map->addr(), sizeof(MetadataHeader));
  if (!hdr) {
    promise.set(hdr.status());
    co_return;
  }
  const MetadataHeader header = load_pod<MetadataHeader>(*hdr);
  if (header.magic != kMetadataMagic || header.version != kMetadataVersion) {
    promise.set(Status(Errc::protocol_error, "successor metadata segment is malformed"));
    co_return;
  }
  if (node_ >= header.mailbox_slots) {
    promise.set(Status(Errc::out_of_range, "no mailbox slot for this node"));
    co_return;
  }
  auto lease = co_await fab.read(cpu, map->addr() + kLeaseOffset, sizeof(ManagerLease));
  if (lease) lease_epoch_ = load_pod<ManagerLease>(*lease).epoch;
  meta_map_ = std::move(*map);
  header_ = header;
  meta_loc_ = *loc;
  mbox_addr_ = meta_map_.addr() + mbox_slot_offset(header_, node_);
  ++stats_.manager_failovers;
  NVS_LOG(info, "client") << name_ << " followed manager failover to node " << loc->first
                          << " (epoch " << lease_epoch_ << ")";
  promise.set(Status::ok());
}

// --- data path -----------------------------------------------------------------------

sim::Future<block::Completion> Client::submit(const block::Request& request) {
  sim::Promise<block::Completion> promise(engine());
  io_task(request, promise, own_range_);
  return promise.future();
}

sim::Task Client::io_task(block::Request request, sim::Promise<block::Completion> promise,
                          nvme::CidRange range) {
  auto stop = stop_;
  sim::Engine& eng = engine();
  const sim::Time start = eng.now();
  obs::Tracer& tracer = obs::Tracer::global();
  const std::uint64_t trace =
      tracer.enabled() ? tracer.begin_trace(trace_kind(request.op), start) : 0;
  obs::PhaseMarker ph(tracer, trace, obs::Track::client, start);
  std::uint16_t span_qid = 0;  // the granted channel's qid, once known
  auto finish = [&](Status st) {
    if (!st) ++stats_.errors;
    const sim::Duration latency = eng.now() - start;
    if (st) {
      if (request.op == block::Op::read) {
        read_latency_hist_.record(static_cast<std::uint64_t>(latency));
      } else if (request.op == block::Op::write) {
        write_latency_hist_.record(static_cast<std::uint64_t>(latency));
      }
    }
    if (trace != 0) {
      // Tile any residual (IOMMU teardown, early error exit) so client-track
      // phase durations always sum to the end-to-end latency.
      if (eng.now() > ph.last()) ph.mark(obs::Phase::completion, eng.now(), span_qid);
      tracer.end_trace(trace, eng.now());
    }
    promise.set(block::Completion{std::move(st), latency});
  };

  if (Status st = block::validate_request(*this, request); !st) {
    finish(st);
    co_return;
  }
  // Bounce mode: the slot is the hard ceiling for any data-moving request —
  // an oversized payload would overrun the neighbouring partition and the
  // prewritten PRP list would hand the controller another request's pages.
  // The max_transfer clamp normally keeps such requests out; enforce the
  // invariant directly so it fails fast here even if the clamp is bypassed.
  if (cfg_.data_path == DataPath::bounce_buffer &&
      (request.op == block::Op::read || request.op == block::Op::write) &&
      static_cast<std::uint64_t>(request.nblocks) * header_.block_size > cfg_.slot_bytes) {
    finish(Status(Errc::invalid_argument, "request exceeds bounce slot size"));
    co_return;
  }
  const block::IoEngine::Grant grant = co_await engine_io_->acquire();
  if (*stop) {
    engine_io_->release(grant);
    finish(Status(Errc::aborted, "client detached"));
    co_return;
  }
  span_qid = qids_[grant.chan];
  const std::uint32_t slot = grant.slot;
  auto release_slot = [&]() { engine_io_->release(grant); };

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(request.nblocks) * header_.block_size;
  const bool is_write = request.op == block::Op::write;

  // Driver submission-path software cost.
  co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.submit_ns, rng_));
  ph.mark(obs::Phase::submit, eng.now(), span_qid);
  if (*stop) {
    release_slot();
    finish(Status(Errc::aborted, "client detached"));
    co_return;
  }

  // pi_verify bookkeeping: generate shadow tuples for a write's user buffer
  // before any copy (everything downstream is covered), drop them on
  // deallocation. No-op unless the engine's PI table is armed.
  engine_io_->pi_note_submit(request);

  std::uint64_t prp1 = 0;
  std::uint64_t prp2 = 0;
  fabric::Window dynamic_map;  // IOMMU mode: torn down after completion
  bool iommu_mapped = false;
  const std::uint64_t slot_base =
      static_cast<std::uint64_t>(slot) * cfg_.slot_bytes;  // offset within bounce segment

  if (request.op == block::Op::flush || request.op == block::Op::write_zeroes) {
    // no data pointer
  } else if (request.op == block::Op::discard) {
    // The range descriptor is the command's payload. In bounce mode it
    // rides in the request's bounce slot (the prewritten PRP lists must
    // stay intact); in IOMMU mode it uses the slot's descriptor page,
    // which is rewritten per request anyway.
    nvme::DsmRange range;
    range.nlb = request.nblocks;
    range.slba = request.lba;
    if (cfg_.data_path == DataPath::bounce_buffer) {
      (void)bounce_seg_.write(slot_base, as_bytes_of(range));
      prp1 = bounce_win_.device_addr() + slot_base;
    } else {
      (void)prp_seg_.write(static_cast<std::uint64_t>(slot) * nvme::kPageSize,
                           as_bytes_of(range));
      prp1 = prp_win_.device_addr() + static_cast<std::uint64_t>(slot) * nvme::kPageSize;
    }
  } else if (cfg_.data_path == DataPath::bounce_buffer) {
    const std::uint64_t slot_iova = bounce_win_.device_addr() + slot_base;
    if (is_write) {
      // The extra copy on the submission path (Section V).
      if (Status st = copy_to_bounce(slot_base, request.buffer_addr, bytes); !st) {
        release_slot();
        finish(st);
        co_return;
      }
      ++stats_.bounce_copies;
      stats_.bounce_copy_bytes += bytes;
      co_await sim::delay(eng, cfg_.costs.memcpy_ns(bytes) +
                                   fabric().copy_cost_ns(bounce_seg_.node(), bytes));
      ph.mark(obs::Phase::bounce_copy, eng.now(), span_qid);
    }
    prp1 = slot_iova;
    if (bytes <= nvme::kPageSize) {
      prp2 = 0;
    } else if (bytes <= 2 * nvme::kPageSize) {
      prp2 = slot_iova + nvme::kPageSize;
    } else {
      prp2 = prp_win_.device_addr() + static_cast<std::uint64_t>(slot) * nvme::kPageSize;
    }
  } else {
    // IOMMU mode: map the request buffer dynamically; no copy.
    const std::uint64_t map_base = align_down(request.buffer_addr, nvme::kPageSize);
    const std::uint64_t map_span =
        align_up(request.buffer_addr + bytes, nvme::kPageSize) - map_base;
    auto cost = iommu_.map(map_base, map_base, map_span);
    if (!cost) {
      release_slot();
      finish(cost.status());
      co_return;
    }
    ++stats_.iommu_maps;
    co_await sim::delay(eng, *cost);

    std::uint64_t mapped_base = map_base;  // device == client host: direct
    auto dev = ref_.info();
    if (dev && dev->host != node_) {
      // Viewed from the device's host: a device-side NTB window on the NTB
      // substrate; unsupported on the CXL pool (private DRAM is unreachable
      // — pooled bounce buffers are the supported data path there).
      auto mapping = fabric().map_window(fabric::MapIntent::dma, dev->host, node_,
                                         map_base, map_span);
      if (!mapping) {
        (void)iommu_.unmap(map_base);
        release_slot();
        finish(mapping.status());
        co_return;
      }
      dynamic_map = std::move(*mapping);
      mapped_base = dynamic_map.addr();
    }
    iommu_mapped = true;
    prp1 = mapped_base + (request.buffer_addr - map_base);
    const std::uint64_t pages = map_span / nvme::kPageSize;
    if (bytes + (request.buffer_addr - map_base) <= nvme::kPageSize) {
      prp2 = 0;
    } else if (pages <= 2) {
      prp2 = mapped_base + nvme::kPageSize;
    } else {
      // Write this request's PRP list into the slot's descriptor page.
      Bytes list((pages - 1) * 8);
      for (std::uint64_t j = 0; j + 1 < pages; ++j) {
        store_pod(list, mapped_base + (j + 1) * nvme::kPageSize, j * 8);
      }
      (void)prp_seg_.write(static_cast<std::uint64_t>(slot) * nvme::kPageSize, list);
      prp2 = prp_win_.device_addr() + static_cast<std::uint64_t>(slot) * nvme::kPageSize;
    }
  }

  // Build and post the SQE (a posted write into SQ memory: local store for
  // host-side placement, a store through the NTB for device-side).
  SubmissionEntry sqe;
  switch (request.op) {
    case block::Op::flush:
      sqe = nvme::make_flush(0, 1);
      ++stats_.flushes;
      break;
    case block::Op::read:
      // PRCHK: the controller verifies stored data against its tuples
      // before the DMA, catching media-side corruption at the source.
      sqe = nvme::make_io_rw(false, 0, 1, request.lba,
                             static_cast<std::uint16_t>(request.nblocks), prp1, prp2,
                             cfg_.pi_verify ? nvme::kPrinfoPrchkGuard |
                                                  nvme::kPrinfoPrchkApp |
                                                  nvme::kPrinfoPrchkRef
                                            : 0);
      ++stats_.reads;
      break;
    case block::Op::write:
      // PRACT: the controller seals what it received, arming later PRCHK
      // reads and the scrubber.
      sqe = nvme::make_io_rw(true, 0, 1, request.lba,
                             static_cast<std::uint16_t>(request.nblocks), prp1, prp2,
                             cfg_.pi_verify ? nvme::kPrinfoPract : 0);
      ++stats_.writes;
      break;
    case block::Op::write_zeroes:
      sqe = nvme::make_write_zeroes(0, 1, request.lba,
                                    static_cast<std::uint16_t>(request.nblocks));
      ++stats_.writes;
      break;
    case block::Op::discard:
      sqe = nvme::make_dsm_deallocate(0, 1, 1, prp1);
      ++stats_.writes;
      break;
  }
  // Submission and completion wait: the engine runs the command to a final
  // outcome (per-attempt deadline watchdog, bounded exponential-backoff
  // retries, one queue-pair recovery cycle before giving up), ringing this
  // channel's doorbell once per submission burst when coalescing is on.
  IssueCtx issue_ctx{sqe, range};
  block::IoEngine::RunArgs run_args;
  run_args.grant = grant;
  run_args.cookie = &issue_ctx;
  run_args.ph = &ph;
  run_args.trace = trace;
  run_args.bytes = bytes;
  std::uint32_t verify_attempts = 0;
  Status status = Status::ok();
  for (;;) {
    const block::CmdOutcome outcome = co_await engine_io_->run(run_args);
    span_qid = qids_[grant.chan];  // recovery may have re-granted the qid
    if (outcome.kind == block::CmdOutcome::Kind::aborted) {
      release_slot();
      finish(Status(Errc::aborted, "client detached"));
      co_return;
    }
    if (outcome.kind == block::CmdOutcome::Kind::transport_error) {
      if (iommu_mapped) (void)iommu_.unmap(align_down(request.buffer_addr, nvme::kPageSize));
      release_slot();
      finish(outcome.transport);
      co_return;
    }
    if (outcome.kind == block::CmdOutcome::Kind::timed_out) {
      if (iommu_mapped) (void)iommu_.unmap(align_down(request.buffer_addr, nvme::kPageSize));
      release_slot();
      finish(Status(Errc::timed_out, "command timed out after retries and queue recovery"));
      co_return;
    }

    // Completion-path software cost.
    co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.completion_ns, rng_));
    ph.mark(obs::Phase::completion, eng.now(), span_qid, outcome.token);

    status = Status::ok();
    if (outcome.status != 0) {
      status = Status(Errc::io_error,
                      std::string("NVMe status: ") + nvme::status_name(outcome.status));
    } else if (request.op == block::Op::read && cfg_.data_path == DataPath::bounce_buffer) {
      // The extra copy on the completion path (Section V).
      status = copy_from_bounce(request.buffer_addr, slot_base, bytes);
      ++stats_.bounce_copies;
      stats_.bounce_copy_bytes += bytes;
      co_await sim::delay(eng, cfg_.costs.memcpy_ns(bytes) +
                                   fabric().copy_cost_ns(bounce_seg_.node(), bytes));
      ph.mark(obs::Phase::bounce_copy, eng.now(), span_qid, outcome.token);
    }

    // End-to-end check: verify the data that actually reached the user
    // buffer against the shadow tuples. Corruption anywhere on the return
    // path (DMA bit flip, torn delivery, stale read) lands here; a
    // resubmission re-reads intact media, so it gets the same bounded retry
    // as a check-error status.
    if (status.ok() && outcome.ok() && request.op == block::Op::read && cfg_.pi_verify &&
        !engine_io_->pi_check_read(request)) {
      ++integrity::stats().client_verify_failures;
      if (cfg_.cmd_timeout_ns > 0 && verify_attempts < cfg_.cmd_retry_limit) {
        ++verify_attempts;
        ++stats_.cmd_retries;
        co_await sim::delay(
            eng, block::IoEngine::backoff_ns(cfg_.retry_backoff_ns, verify_attempts,
                                             cfg_.retry_backoff_max_ns));
        ph.mark(obs::Phase::recovery, eng.now(), span_qid);
        continue;  // resubmit with a fresh retry budget
      }
      status = Status(Errc::io_error, "read data failed protection-information verify");
    }
    break;
  }

  if (iommu_mapped) {
    auto cost = iommu_.unmap(align_down(request.buffer_addr, nvme::kPageSize));
    if (cost) co_await sim::delay(eng, *cost);
    dynamic_map.release();
  }
  release_slot();
  finish(std::move(status));
}

// --- tenant shares (docs/MODEL.md §12) ------------------------------------------------

mux::QpMultiplexer& Client::ensure_mux() {
  if (!mux_) {
    mux::QpMultiplexer::Config mc;
    mc.block_size = header_.block_size;
    // Dispatch runs the tenant's request down the normal engine path with
    // CID allocation pinned to the share window, so bounce slots, PRP
    // lists, retries and recovery all behave exactly as for own traffic.
    mux_ = std::make_unique<mux::QpMultiplexer>(
        engine(),
        [this](const block::Request& r, const nvme::CidRange& range) {
          sim::Promise<block::Completion> p(engine());
          io_task(r, p, range);
          return p.future();
        },
        stop_, mc);
  }
  return *mux_;
}

sim::Future<Result<mux::ShareGrant>> Client::create_share(const ShareRequest& request) {
  sim::Promise<Result<mux::ShareGrant>> promise(engine());
  create_share_task(request, promise);
  return promise.future();
}

sim::Future<Status> Client::delete_share(std::uint32_t tenant) {
  sim::Promise<Status> promise(engine());
  delete_share_task(tenant, promise);
  return promise.future();
}

sim::Task Client::create_share_task(ShareRequest request,
                                    sim::Promise<Result<mux::ShareGrant>> promise) {
  if (!attached_) {
    promise.set(Status(Errc::unavailable, "not attached"));
    co_return;
  }
  if (cfg_.channels != 1) {
    promise.set(Status(Errc::unsupported, "tenant shares need a single-channel client"));
    co_return;
  }
  // Tenants live above the client's own window: [queue_depth, queue_entries).
  // depth < entries is an engine attach-time invariant, so the space is
  // never empty; with the defaults (32/64) a host has 32 tenant CIDs.
  const auto floor = static_cast<std::uint16_t>(cfg_.queue_depth);
  MboxSlot req;
  req.op = static_cast<std::uint32_t>(MboxOp::create_share);
  req.qid_in = qids_[0];
  req.share_tenant = request.tenant;
  req.share_cid_count = request.cid_count;
  req.share_cid_floor = floor;
  req.share_weight = request.weight == 0 ? std::uint16_t{1} : request.weight;
  req.qos_class = static_cast<std::uint8_t>(request.qos_class);
  req.qos_iops = request.qos_iops;
  req.qos_bytes_per_s = request.qos_bytes_per_s;
  auto resp = co_await mailbox_call(req);
  if (!resp) {
    promise.set(resp.status());
    co_return;
  }
  if (resp->status != static_cast<std::uint32_t>(Errc::ok)) {
    promise.set(Status(static_cast<Errc>(resp->status), "manager rejected create_share"));
    co_return;
  }
  mux::ShareGrant grant;
  grant.tenant = request.tenant;
  grant.qid = qids_[0];
  grant.range = nvme::CidRange{resp->share_cid_lo, resp->share_cid_hi};
  grant.weight = req.share_weight;
  grant.qos_iops = resp->qos_granted_iops;
  grant.qos_bytes_per_s = resp->qos_granted_bytes_per_s;
  mux::QpMultiplexer& m = ensure_mux();
  if (m.grant(request.tenant) != nullptr) {
    // The manager treats a repeat create_share as a re-grant; swap the
    // local attachment too (refused while the tenant has work in flight).
    if (Status st = m.detach_tenant(request.tenant); !st) {
      promise.set(st);
      co_return;
    }
  }
  if (Status st = m.attach_tenant(grant); !st) {
    promise.set(st);
    co_return;
  }
  // From here on the client's own submissions stay below the share floor,
  // so they can never collide with a tenant's window.
  own_range_ = nvme::CidRange{0, floor};
  promise.set(grant);
}

sim::Task Client::delete_share_task(std::uint32_t tenant, sim::Promise<Status> promise) {
  if (mux_ == nullptr || mux_->grant(tenant) == nullptr) {
    promise.set(Status(Errc::not_found, "no share for this tenant"));
    co_return;
  }
  if (Status st = mux_->detach_tenant(tenant); !st) {
    promise.set(st);  // busy: staged or in-flight commands
    co_return;
  }
  MboxSlot req;
  req.op = static_cast<std::uint32_t>(MboxOp::delete_share);
  req.qid_in = qids_[0];
  req.share_tenant = tenant;
  auto resp = co_await mailbox_call(req);
  if (!resp) {
    promise.set(resp.status());
    co_return;
  }
  if (resp->status != static_cast<std::uint32_t>(Errc::ok)) {
    promise.set(Status(static_cast<Errc>(resp->status), "manager rejected delete_share"));
    co_return;
  }
  promise.set(Status::ok());
}

sim::Task Client::poller(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  for (;;) {
    if (*stop) co_return;
    if (engine_io_->idle()) {
      // Nothing in flight: a real polling driver would spin, but the
      // latency effect is identical if we sleep until the next submission
      // (the poll cadence only matters while a completion is pending).
      poller_kick_->reset();
      co_await poller_kick_->wait();
      if (*stop) co_return;
      continue;
    }
    std::array<nvme::CompletionEntry, 32> cqes;
    for (std::uint32_t chan = 0; chan < cfg_.channels; ++chan) {
      bool delivered = false;
      for (;;) {
        const std::size_t n = qps_[chan]->reap(cqes);
        for (std::size_t i = 0; i < n; ++i) {
          if (!engine_io_->complete(chan, cqes[i].cid, cqes[i].status())) {
            // Expected under fault injection: the command timed out and was
            // retried, and this is the original submission completing late.
            NVS_LOG(warn, "client") << name_ << " completion for unknown cid " << cqes[i].cid;
          }
        }
        if (n > 0) delivered = true;
        if (n < cqes.size()) break;
      }
      if (delivered) (void)qps_[chan]->ring_cq_doorbell();
    }
    ++stats_.poll_rounds;
    co_await sim::delay(eng, cfg_.costs.poll_interval_ns);
    if (*stop) co_return;
  }
}

// --- fault recovery -------------------------------------------------------------------

void Client::crash() {
  if (crashed_) return;
  crashed_ = true;
  attached_ = false;
  *stop_ = true;
  if (poller_kick_) poller_kick_->set();
  if (mux_) mux_->kick();  // parked tenant scheduler drains its rings as aborted
  // Resolve every in-flight wait so callers observe the death (as an
  // `aborted` completion) instead of hanging the simulation. Nothing is
  // released: the queue pairs, NTB windows and segments stay allocated until
  // the manager's reaper collects them — that is the point of the fault.
  if (engine_io_) engine_io_->fail_all_pending();
  NVS_LOG(warn, "client") << name_ << " crashed (fault injection)";
}

// Channel recovery: fail out the channel's in-flight commands, tear the old
// pair down through the manager (best effort — after a controller reset the
// manager already forgot it, after a manager crash nobody answers), then
// build a fresh pair on the same ring slice and wake the waiting commands.
// Other channels keep flowing: the engine steers new work to survivors.
sim::Task Client::recover_task(std::uint32_t chan, std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  const sim::Time begin = eng.now();
  const std::uint16_t old_qid = qids_[chan];
  NVS_LOG(warn, "client") << name_ << " recovering queue pair q" << old_qid;

  engine_io_->fail_pending(chan);

  MboxSlot del;
  del.op = static_cast<std::uint32_t>(MboxOp::delete_qp);
  del.qid_in = old_qid;
  (void)co_await mailbox_call(del);
  if (*stop || crashed_) {
    engine_io_->finish_recovery(chan);
    co_return;
  }

  // Let straggling CQE DMAs land before the rings are zeroed; a stale entry
  // written into the rebuilt ring could alias a valid phase bit. Only this
  // channel's ring slices are touched.
  co_await sim::delay(eng, kRecoverDrainNs);
  const std::uint64_t sq_ring_bytes = sq_stride_bytes();
  const std::uint64_t cq_ring_bytes = cq_stride_bytes();
  (void)cq_seg_.write(chan * cq_ring_bytes, Bytes(cq_ring_bytes, std::byte{0}));
  (void)sq_seg_.write(chan * sq_ring_bytes, Bytes(sq_ring_bytes, std::byte{0}));

  // Same segments, same DMA windows, fresh queue id. Retry with backoff:
  // right after a controller reset the manager may still be re-enabling.
  MboxSlot req;
  req.op = static_cast<std::uint32_t>(MboxOp::create_qp);
  req.client_node = node_;
  req.sq_device_addr = sq_win_.device_addr() + chan * sq_ring_bytes;
  req.cq_device_addr = cq_win_.device_addr() + chan * cq_ring_bytes;
  req.sq_size = cfg_.queue_entries;
  req.cq_size = cfg_.queue_entries;
  // Re-request the original QoS grant: the replacement pair must come back
  // with the same class and budgets the client was admitted with.
  req.qos_class = static_cast<std::uint8_t>(cfg_.qos_class);
  req.qos_iops = cfg_.qos_iops;
  req.qos_bytes_per_s = cfg_.qos_bytes_per_s;
  bool created = false;
  for (int attempt = 0; attempt < kRecoverRetryLimit; ++attempt) {
    auto resp = co_await mailbox_call(req);
    if (*stop || crashed_) break;
    if (resp && resp->status == static_cast<std::uint32_t>(Errc::ok)) {
      qids_[chan] = resp->qid_out;
      created = true;
      break;
    }
    co_await sim::delay(eng, block::IoEngine::backoff_ns(cfg_.retry_backoff_ns,
                                                         static_cast<std::uint32_t>(attempt) + 1,
                                                         cfg_.retry_backoff_max_ns));
    if (*stop || crashed_) break;
  }
  if (created) {
    qps_[chan] = make_queue_pair(chan, qids_[chan]);
    if (cfg_.channels == 1) {
      name_ = "nvsh-n" + std::to_string(node_) + "-q" + std::to_string(qids_[0]);
    }
    NVS_LOG(info, "client") << name_ << " recovered queue pair (q" << old_qid << " -> q"
                            << qids_[chan] << ") in " << (eng.now() - begin) << " ns";
  } else {
    NVS_LOG(error, "client") << name_ << " queue-pair recovery failed; pending commands "
                             << "will exhaust their deadlines";
  }

  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
    tracer.record(t, obs::Track::client, obs::Phase::recovery, begin, eng.now(), qids_[chan]);
    tracer.end_trace(t, eng.now());
  }
  engine_io_->finish_recovery(chan);
}

// Liveness heartbeat (docs/faults.md): a posted write of the local sim
// clock into this node's mailbox slot. Lost beats (downed link) are fine —
// the manager's reaper tolerates staleness up to its timeout.
sim::Task Client::heartbeat_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  fabric::Substrate& fab = fabric();
  const pcie::Initiator cpu = fab.cpu(node_);
  for (;;) {
    co_await sim::delay(eng, cfg_.heartbeat_interval_ns);
    if (*stop) co_return;
    if (cfg_.mailbox_retry_limit > 1) {
      // HA-aware survivor: if the metadata registration moved (takeover),
      // re-home so beats land in the new manager's segment — its reaper
      // watches the new slots, and a survivor that kept beating into the
      // dead segment would look orphaned once the grace window closes.
      auto loc = service_.device_metadata(device_id_);
      if (loc && *loc != meta_loc_) {
        (void)co_await refresh_manager();
        if (*stop) co_return;
      }
    }
    Bytes beat(8);
    store_pod(beat, static_cast<std::uint64_t>(eng.now()));
    (void)fab.post_write(cpu, mbox_addr_ + offsetof(MboxSlot, heartbeat_ns), std::move(beat));
    ++stats_.heartbeats;
  }
}

// --- detach ---------------------------------------------------------------------------

sim::Future<Status> Client::detach() {
  sim::Promise<Status> promise(engine());
  detach_task(promise);
  return promise.future();
}

sim::Task Client::detach_task(sim::Promise<Status> promise) {
  if (!attached_) {
    promise.set(Status(Errc::unavailable, "not attached"));
    co_return;
  }
  attached_ = false;
  MboxSlot req;
  if (cfg_.channels == 1) {
    req.op = static_cast<std::uint32_t>(MboxOp::delete_qp);
    req.qid_in = qids_[0];
  } else {
    req.op = static_cast<std::uint32_t>(MboxOp::delete_qp_batch);
    req.qp_count = static_cast<std::uint16_t>(cfg_.channels);
    for (std::uint32_t ch = 0; ch < cfg_.channels; ++ch) req.qids[ch] = qids_[ch];
  }
  auto resp = co_await mailbox_call(req);
  *stop_ = true;  // stop poller after the RPC (it uses the fabric, not the QP)
  if (mux_) mux_->kick();  // parked tenant scheduler drains its rings as aborted
  if (!resp) {
    promise.set(resp.status());
    co_return;
  }
  if (resp->status != static_cast<std::uint32_t>(Errc::ok)) {
    promise.set(Status(static_cast<Errc>(resp->status), "manager rejected delete_qp"));
    co_return;
  }
  // The queue pair is gone; release DMA windows (device-side NTB entries)
  // and then the segments so another client can reuse the resources.
  sq_win_ = smartio::DmaWindow{};
  cq_win_ = smartio::DmaWindow{};
  bounce_win_ = smartio::DmaWindow{};
  prp_win_ = smartio::DmaWindow{};
  sq_cpu_map_ = sisci::Map{};
  sq_seg_.release();
  cq_seg_.release();
  bounce_seg_.release();
  prp_seg_.release();
  promise.set(Status::ok());
}

}  // namespace nvmeshare::driver
