// Client half of the distributed NVMe driver (Section V).
//
// A client attaches to a managed device from any node in the cluster:
//  1. acquires a shared device reference through SmartIO;
//  2. finds and maps the manager's metadata segment, reading the header
//     across the NTB;
//  3. allocates its queue memory — the CQ always local (it is polled), the
//     SQ either device-side (default, the Figure 8 placement: the CPU
//     writes entries *into device-side memory* through the NTB and the
//     controller fetches them locally) or host-side (ablation);
//  4. resolves device-visible addresses for the queues via SmartIO DMA
//     windows and asks the manager, over the shared-memory mailbox, to
//     create the queue pair with privileged admin commands;
//  5. registers itself as a block device and services requests using a
//     statically partitioned bounce buffer (default) or dynamic per-request
//     IOMMU-style mappings (the paper's future-work extension).
//
// After setup the client operates the controller completely independently
// of the manager and of other clients — no locks, no shared state, just its
// own SQ/CQ rings and doorbells.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "block/block.hpp"
#include "block/io_engine.hpp"
#include "common/status.hpp"
#include "driver/cost_model.hpp"
#include "driver/mailbox.hpp"
#include "mem/iommu.hpp"
#include "mux/mux.hpp"
#include "nvme/queue.hpp"
#include "obs/metrics.hpp"
#include "smartio/smartio.hpp"

namespace nvmeshare::driver {

class Client final : public block::BlockDevice, private block::IoTransport {
 public:
  /// Where the submission queue memory lives (Figure 8 ablation).
  enum class SqPlacement {
    device_side,  ///< paper default: SQ in the device host's memory
    host_side,    ///< SQ in the client's memory; controller fetches remotely
  };
  /// How request data becomes device-reachable.
  enum class DataPath {
    bounce_buffer,  ///< paper default: static partitioned bounce buffer
    iommu,          ///< future-work: dynamic per-request mapping, no copy
  };

  struct Config {
    std::uint16_t queue_entries = 64;  ///< SQ/CQ entries per channel
    std::uint32_t queue_depth = 32;    ///< concurrent requests per channel
    /// I/O channels (queue pairs). One by default — the single-QP layout the
    /// paper evaluates; more spreads submissions across independent SQ/CQ
    /// rings granted by the manager in one mailbox batch.
    std::uint32_t channels = 1;
    /// How submissions pick a channel when channels > 1.
    block::IoEngine::Scheduler scheduler = block::IoEngine::Scheduler::round_robin;
    /// Ring each SQ doorbell once per submission burst instead of once per
    /// command (shadow-doorbell-style batching). Off by default: fault-free
    /// single-channel runs must execute the exact seed instruction stream.
    bool coalesce_doorbells = false;
    std::uint32_t slot_bytes = 128 * KiB;  ///< bounce partition per request
    SqPlacement sq_placement = SqPlacement::device_side;
    DataPath data_path = DataPath::bounce_buffer;
    CostModel costs = CostModel::distributed_driver();
    sim::Duration mailbox_poll_ns = 3000;
    sim::Duration mailbox_timeout_ns = 100_ms;
    // --- fault recovery (docs/faults.md); all off by default so fault-free
    // --- runs execute exactly the pre-recovery instruction stream ---------
    /// Per-command deadline. 0 disables the watchdog and with it retries and
    /// queue-pair recovery (commands then wait forever, the seed behavior).
    sim::Duration cmd_timeout_ns = 0;
    /// Submission attempts per command before queue-pair recovery is tried.
    std::uint32_t cmd_retry_limit = 3;
    /// Backoff before the first retry; doubles per subsequent attempt.
    sim::Duration retry_backoff_ns = 100'000;
    /// Ceiling on a single backoff delay (the doubling clamps here instead
    /// of overflowing the 64-bit duration).
    sim::Duration retry_backoff_max_ns = 100'000'000;
    /// Cadence of the liveness heartbeat posted into this client's mailbox
    /// slot (the manager's reaper watches it). 0 disables heartbeating.
    sim::Duration heartbeat_interval_ns = 0;
    /// Mailbox RPC attempts (attach, QP create/delete/recover). 0 or 1 =
    /// single attempt, a timeout is terminal (seed behavior). More: each
    /// timed-out attempt backs off exponentially, re-resolves the manager —
    /// a takeover moves the metadata segment — and re-posts, so admin work
    /// issued during a manager outage completes once a standby is active.
    /// Responses are also epoch-checked against the last lease read
    /// (docs/MODEL.md §10): a fenced manager cannot confirm a grant.
    std::uint32_t mailbox_retry_limit = 0;
    /// Backoff before the second mailbox attempt; doubles per attempt,
    /// clamped by retry_backoff_max_ns.
    sim::Duration mailbox_retry_backoff_ns = 200'000;
    /// End-to-end protection information (docs/MODEL.md §7). When set, the
    /// client generates a DIF tuple per block before the bounce copy of a
    /// write (and submits with PRACT so the controller seals its copy),
    /// submits reads with PRCHK, and verifies returned read data against
    /// the shadow tuples after the DMA lands. A verify failure re-enters
    /// the retry machinery like a retryable NVMe status. Valid while this
    /// client is the sole writer of the LBAs it verifies (the paper's
    /// partitioned usage). Off by default.
    bool pi_verify = false;
    // --- QoS (v4 mailbox grant; docs/MODEL.md §9) -------------------------
    /// Priority class requested from the manager. Urgent encodes as 0 in
    /// Create I/O SQ, so the default keeps the seed bytes; the class only
    /// changes arbitration when the manager enabled WRR.
    nvme::SqPriority qos_class = nvme::SqPriority::urgent;
    /// Requested rate budgets (0 = ask for the class default from the
    /// policy table). The *granted* values arm the I/O engine's
    /// token-bucket pacer; an uncapped grant leaves the client unpaced.
    std::uint32_t qos_iops = 0;
    std::uint32_t qos_bytes_per_s = 0;
    mem::Iommu::Config iommu = {};
    /// Disambiguates this client's segment ids when one node attaches to
    /// several devices (one client per device needs its own namespace).
    std::uint32_t segment_namespace = 0;
    std::uint64_t seed = 0xc11e;
  };

  /// Attach to a managed device from `node`; resolves once the queue pair
  /// exists and the block device is usable.
  static sim::Future<Result<std::unique_ptr<Client>>> attach(smartio::Service& service,
                                                             smartio::NodeId node,
                                                             smartio::DeviceId device,
                                                             Config cfg);

  ~Client() override;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- block::BlockDevice ------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint32_t block_size() const override { return header_.block_size; }
  [[nodiscard]] std::uint64_t capacity_blocks() const override {
    return header_.capacity_blocks;
  }
  [[nodiscard]] std::uint32_t max_queue_depth() const override {
    return cfg_.queue_depth * cfg_.channels;
  }
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override { return max_transfer_; }
  sim::Future<block::Completion> submit(const block::Request& request) override;

  /// Release the queue pair via the manager and stop the poller. The
  /// future resolves when the manager confirmed deletion.
  sim::Future<Status> detach();

  /// Power off this instance instantly (fault injection): every task stops,
  /// in-flight requests fail with `aborted`, and nothing is cleaned up —
  /// the queue pair stays allocated until the manager's reaper collects it.
  void crash();

  // --- tenant shares (docs/MODEL.md §12) ---------------------------------------
  /// What a tenant asks of this client's queue pair: a CID window, a DRR
  /// weight and QoS budgets (judged by the manager's policy table exactly
  /// like a queue-pair grant).
  struct ShareRequest {
    std::uint32_t tenant = 0;
    std::uint16_t cid_count = 8;  ///< CID window = in-flight cap for the tenant
    std::uint16_t weight = 1;     ///< DRR quantum multiplier
    nvme::SqPriority qos_class = nvme::SqPriority::urgent;
    std::uint32_t qos_iops = 0;
    std::uint32_t qos_bytes_per_s = 0;
  };

  /// Ask the manager for a tenant share of this client's queue pair
  /// (mailbox v6 create_share), then attach it to the local multiplexer.
  /// The client's own traffic moves below the share floor — CIDs
  /// [0, queue_depth) — the first time a share is granted; tenants get
  /// disjoint windows in [queue_depth, queue_entries). Single-channel
  /// clients only: a share pins CIDs of one specific queue pair.
  sim::Future<Result<mux::ShareGrant>> create_share(const ShareRequest& request);

  /// Detach an idle tenant locally and release its CID window at the
  /// manager (mailbox v6 delete_share).
  sim::Future<Status> delete_share(std::uint32_t tenant);

  /// The tenant multiplexer, created lazily by the first share grant
  /// (nullptr until then).
  [[nodiscard]] mux::QpMultiplexer* multiplexer() noexcept { return mux_.get(); }

  /// Queue id of channel `chan` (channel 0 by default).
  [[nodiscard]] std::uint16_t qid(std::uint32_t chan = 0) const noexcept {
    return chan < qids_.size() ? qids_[chan] : 0;
  }
  [[nodiscard]] std::uint32_t channels() const noexcept { return cfg_.channels; }
  [[nodiscard]] smartio::NodeId node() const noexcept { return node_; }
  /// The shared submission core (per-channel inflight/doorbell metrics).
  [[nodiscard]] const block::IoEngine& io_engine() const noexcept { return *engine_io_; }

  /// Per-client counters; each also feeds the global obs::Registry under
  /// `nvmeshare.client.*`, aggregated across all clients.
  struct Stats {
    Stats();
    obs::Counter reads;
    obs::Counter writes;
    obs::Counter flushes;
    obs::Counter errors;
    obs::Counter bounce_copies;
    obs::Counter bounce_copy_bytes;
    obs::Counter iommu_maps;
    obs::Counter poll_rounds;
    obs::Counter cmd_timeouts;       ///< per-command deadlines that expired
    obs::Counter cmd_retries;        ///< commands re-submitted after a timeout
    obs::Counter qp_recoveries;      ///< queue-pair re-create cycles
    obs::Counter late_completions;   ///< CQEs whose command already timed out
    obs::Counter heartbeats;         ///< liveness beats posted to the mailbox
    obs::Counter mailbox_retries;    ///< mailbox attempts after a timeout
    obs::Counter manager_failovers;  ///< re-resolves that found a new manager
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Client(smartio::Service& service, smartio::NodeId node, smartio::DeviceId device, Config cfg);

  static sim::Task init_task(std::unique_ptr<Client> self,
                             sim::Promise<Result<std::unique_ptr<Client>>> promise);
  /// Post a mailbox request and await the manager's response.
  sim::Future<Result<MboxSlot>> mailbox_call(MboxSlot request);
  sim::Task mailbox_call_task(MboxSlot request, sim::Promise<Result<MboxSlot>> promise);
  /// `range` pins CID allocation to a tenant's share window; hi == 0 means
  /// the default full-range scan (the seed instruction stream).
  sim::Task io_task(block::Request request, sim::Promise<block::Completion> promise,
                    nvme::CidRange range);
  sim::Task create_share_task(ShareRequest request,
                              sim::Promise<Result<mux::ShareGrant>> promise);
  sim::Task delete_share_task(std::uint32_t tenant, sim::Promise<Status> promise);
  /// Build the multiplexer on first use, wired to dispatch through io_task.
  mux::QpMultiplexer& ensure_mux();
  sim::Task poller(std::shared_ptr<bool> stop);
  sim::Task detach_task(sim::Promise<Status> promise);
  sim::Task recover_task(std::uint32_t chan, std::shared_ptr<bool> stop);
  sim::Task heartbeat_task(std::shared_ptr<bool> stop);
  /// Re-look-up the manager's metadata registration and, if it moved (a
  /// standby took over), re-connect, re-map, re-read the header/lease and
  /// recompute this node's mailbox slot address. Returns ok when the
  /// mailbox address is usable (moved or not).
  sim::Future<Status> refresh_manager();
  sim::Task refresh_manager_task(sim::Promise<Status> promise);

  // --- block::IoTransport (the NVMe queue-pair personality) ----------------
  Result<std::uint16_t> issue(std::uint32_t chan, void* cookie) override;
  Status ring(std::uint32_t chan) override;
  [[nodiscard]] bool retryable(std::uint16_t status) const override;
  void start_recovery(std::uint32_t chan) override;
  [[nodiscard]] std::uint16_t trace_qid(std::uint32_t chan) const override;
  void on_armed(std::uint32_t chan) override;

  [[nodiscard]] sim::Engine& engine();
  [[nodiscard]] fabric::Substrate& fabric();
  /// Data copies between the user's DRAM buffer and a bounce slot. The copy
  /// itself is applied instantly; the time is charged separately from the
  /// cost model plus the substrate's staging cost (zero for local DRAM,
  /// port/DSA latency for a pooled bounce segment).
  Status copy_to_bounce(std::uint64_t slot_off, std::uint64_t src, std::uint64_t len);
  Status copy_from_bounce(std::uint64_t dst, std::uint64_t slot_off, std::uint64_t len);
  /// Build channel `chan`'s queue-pair view over this client's ring slices.
  [[nodiscard]] std::unique_ptr<nvme::QueuePair> make_queue_pair(std::uint32_t chan,
                                                                 std::uint16_t qid);
  /// Per-channel ring stride within the SQ/CQ segment. Single-channel keeps
  /// the seed-exact ring size; multi-channel slices are page-rounded
  /// because NVMe queue base addresses must be page-aligned.
  [[nodiscard]] std::uint64_t sq_stride_bytes() const noexcept;
  [[nodiscard]] std::uint64_t cq_stride_bytes() const noexcept;

  smartio::Service& service_;
  smartio::NodeId node_;
  smartio::DeviceId device_id_;
  Config cfg_;
  std::string name_;
  Rng rng_;

  smartio::DeviceRef ref_;
  smartio::BarWindow bar_;
  sisci::Map meta_map_;
  MetadataHeader header_;
  std::uint64_t mbox_addr_ = 0;  ///< this node's slot, client-visible address
  /// Where the metadata registration pointed when we last resolved it; a
  /// mismatch against SmartIO means a standby manager took over.
  std::pair<smartio::NodeId, sisci::SegmentId> meta_loc_{};
  std::uint64_t lease_epoch_ = 0;  ///< manager epoch from the last lease read

  sisci::Segment sq_seg_;
  sisci::Segment cq_seg_;
  sisci::Segment bounce_seg_;
  sisci::Segment prp_seg_;
  smartio::DmaWindow sq_win_;
  smartio::DmaWindow cq_win_;
  smartio::DmaWindow bounce_win_;
  smartio::DmaWindow prp_win_;
  sisci::Map sq_cpu_map_;
  sisci::Map cq_cpu_map_;  ///< CPU view of the CQ (direct unless pooled)

  /// One queue pair per channel; slot, pending, deadline, retry, and
  /// recovery bookkeeping all live in the shared engine.
  std::vector<std::unique_ptr<nvme::QueuePair>> qps_;
  std::vector<std::uint16_t> qids_;
  std::unique_ptr<block::IoEngine> engine_io_;
  std::uint32_t max_transfer_ = 0;

  std::unique_ptr<sim::Event> poller_kick_;  ///< wakes the idle poller on submit
  std::unique_ptr<sim::Semaphore> mailbox_lock_;
  /// Tenant multiplexing state. `own_range_` confines the client's own
  /// traffic once shares exist (empty = full range, the seed path).
  std::unique_ptr<mux::QpMultiplexer> mux_;
  nvme::CidRange own_range_{};
  mem::Iommu iommu_;
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  bool attached_ = false;
  bool crashed_ = false;
  std::uint64_t crash_token_ = 0;          ///< fault-injector registration
  Stats stats_;
  obs::Histogram read_latency_hist_{"nvmeshare.client.read_latency_ns"};
  obs::Histogram write_latency_hist_{"nvmeshare.client.write_latency_ns"};
};

}  // namespace nvmeshare::driver
