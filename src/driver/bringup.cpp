#include "driver/bringup.hpp"

#include "common/log.hpp"

namespace nvmeshare::driver {

using nvme::CompletionEntry;
using nvme::SubmissionEntry;

namespace {
constexpr sim::Duration kRegPollNs = 1000;
constexpr int kRegPollLimit = 1000;
constexpr sim::Duration kAdminTimeoutNs = 50_ms;
}  // namespace

BareController::BareController(sisci::Cluster& cluster, pcie::EndpointId endpoint, Config cfg)
    : cluster_(cluster), endpoint_(endpoint), cfg_(cfg) {}

BareController::~BareController() {
  if (asq_addr_ != 0) (void)cluster_.free_dram(host_, asq_addr_);
  if (acq_addr_ != 0) (void)cluster_.free_dram(host_, acq_addr_);
  if (admin_data_addr_ != 0) (void)cluster_.free_dram(host_, admin_data_addr_);
}

sim::Future<Result<std::unique_ptr<BareController>>> BareController::init(
    sisci::Cluster& cluster, pcie::EndpointId endpoint, Config cfg) {
  sim::Promise<Result<std::unique_ptr<BareController>>> promise(cluster.engine());
  auto self = std::unique_ptr<BareController>(new BareController(cluster, endpoint, cfg));
  init_task(std::move(self), promise);
  return promise.future();
}

sim::Task BareController::init_task(std::unique_ptr<BareController> self,
                                    sim::Promise<Result<std::unique_ptr<BareController>>> promise) {
  BareController& m = *self;
  fabric::Substrate& fabric = m.cluster_.fabric();
  sim::Engine& engine = fabric.engine();

  m.host_ = fabric.endpoint_host(m.endpoint_);
  const pcie::Initiator cpu = fabric.cpu(m.host_);
  auto bar = fabric.bar_address(m.endpoint_, 0);
  if (!bar) {
    promise.set(bar.status());
    co_return;
  }
  m.bar_base_ = *bar;

  auto write_reg32 = [&](std::uint64_t off, std::uint32_t v) {
    Bytes b(4);
    store_pod(b, v);
    return fabric.post_write(cpu, m.bar_base_ + off, std::move(b)).status();
  };
  auto write_reg64 = [&](std::uint64_t off, std::uint64_t v) {
    Bytes b(8);
    store_pod(b, v);
    return fabric.post_write(cpu, m.bar_base_ + off, std::move(b)).status();
  };

  // Reset: clear CC.EN, wait for CSTS.RDY to drop.
  if (Status st = write_reg32(nvme::reg::kCc, 0); !st) {
    promise.set(st);
    co_return;
  }
  for (int i = 0;; ++i) {
    auto csts = co_await fabric.read(cpu, m.bar_base_ + nvme::reg::kCsts, 4);
    if (!csts) {
      promise.set(csts.status());
      co_return;
    }
    if ((load_pod<std::uint32_t>(*csts) & nvme::kCstsReady) == 0) break;
    if (i >= kRegPollLimit) {
      promise.set(Status(Errc::timed_out, "controller did not leave ready state"));
      co_return;
    }
    co_await sim::delay(engine, kRegPollNs);
  }

  // Admin queues + a page for identify payloads, all in local DRAM.
  const std::uint16_t entries = m.cfg_.admin_entries;
  auto asq = m.cluster_.alloc_dram(m.host_, entries * 64ull, 4096);
  auto acq = m.cluster_.alloc_dram(m.host_, entries * 16ull, 4096);
  auto buf = m.cluster_.alloc_dram(m.host_, 4096, 4096);
  if (!asq || !acq || !buf) {
    promise.set(Status(Errc::resource_exhausted, "no DRAM for admin queues"));
    co_return;
  }
  m.asq_addr_ = *asq;
  m.acq_addr_ = *acq;
  m.admin_data_addr_ = *buf;
  // Zero the queue memory (stale phase bits would alias as completions).
  mem::PhysMem& dram0 = fabric.host_dram(m.host_);
  (void)dram0.write(m.asq_addr_, Bytes(entries * 64ull, std::byte{0}));
  (void)dram0.write(m.acq_addr_, Bytes(entries * 16ull, std::byte{0}));

  const std::uint32_t aqa = static_cast<std::uint32_t>(entries - 1) |
                            (static_cast<std::uint32_t>(entries - 1) << 16);
  if (Status st = write_reg32(nvme::reg::kAqa, aqa); !st) {
    promise.set(st);
    co_return;
  }
  (void)write_reg64(nvme::reg::kAsq, m.asq_addr_);
  (void)write_reg64(nvme::reg::kAcq, m.acq_addr_);
  (void)write_reg32(nvme::reg::kCc, nvme::kCcEnable);

  for (int i = 0;; ++i) {
    auto csts = co_await fabric.read(cpu, m.bar_base_ + nvme::reg::kCsts, 4);
    if (!csts) {
      promise.set(csts.status());
      co_return;
    }
    const auto v = load_pod<std::uint32_t>(*csts);
    if ((v & nvme::kCstsFatal) != 0) {
      promise.set(Status(Errc::unavailable, "controller reported fatal status on enable"));
      co_return;
    }
    if ((v & nvme::kCstsReady) != 0) break;
    if (i >= kRegPollLimit) {
      promise.set(Status(Errc::timed_out, "controller did not become ready"));
      co_return;
    }
    co_await sim::delay(engine, kRegPollNs);
  }

  nvme::QueuePair::Config qc;
  qc.qid = 0;
  qc.sq_size = entries;
  qc.cq_size = entries;
  qc.sq_write_addr = m.asq_addr_;
  qc.cq_poll_addr = m.acq_addr_;
  qc.sq_doorbell_addr = m.sq_doorbell(0);
  qc.cq_doorbell_addr = m.cq_doorbell(0);
  qc.cpu = cpu;
  m.admin_qp_ = std::make_unique<nvme::QueuePair>(fabric, qc);
  m.admin_lock_ = std::make_unique<sim::Semaphore>(engine, 1);

  // Identify controller.
  auto ident = co_await m.submit_admin(
      nvme::make_identify(0, nvme::IdentifyCns::controller, 0, m.admin_data_addr_));
  if (!ident || !ident->ok()) {
    promise.set(ident ? Status(Errc::io_error, "identify controller failed")
                      : ident.status());
    co_return;
  }
  Bytes payload(4096);
  (void)fabric.peek(m.host_, m.admin_data_addr_, payload);
  const auto ctrl = nvme::parse_identify_controller(payload);
  m.mdts_bytes_ = static_cast<std::uint32_t>((1u << ctrl.mdts_pages_log2) * nvme::kPageSize);

  // Identify namespace 1.
  auto ns = co_await m.submit_admin(
      nvme::make_identify(0, nvme::IdentifyCns::ns, 1, m.admin_data_addr_));
  if (!ns || !ns->ok()) {
    promise.set(ns ? Status(Errc::io_error, "identify namespace failed") : ns.status());
    co_return;
  }
  (void)fabric.peek(m.host_, m.admin_data_addr_, payload);
  const auto nsinfo = nvme::parse_identify_namespace(payload);
  m.capacity_blocks_ = nsinfo.size_blocks;
  m.block_size_ = nsinfo.block_size;

  // Negotiate the number of I/O queues.
  auto feat = co_await m.submit_admin(
      nvme::make_set_num_queues(0, m.cfg_.requested_io_queues, m.cfg_.requested_io_queues));
  if (!feat || !feat->ok()) {
    promise.set(feat ? Status(Errc::io_error, "set number of queues failed") : feat.status());
    co_return;
  }
  const std::uint16_t nsqa = static_cast<std::uint16_t>((feat->dw0 & 0xFFFF) + 1);
  const std::uint16_t ncqa = static_cast<std::uint16_t>((feat->dw0 >> 16) + 1);
  m.granted_io_queues_ = std::min(nsqa, ncqa);

  NVS_LOG(info, "bringup") << "controller up: " << m.capacity_blocks_ << " blocks of "
                           << m.block_size_ << "B, " << m.granted_io_queues_ << " IO queues";
  promise.set(std::move(self));
}

sim::Future<Result<CompletionEntry>> BareController::submit_admin(SubmissionEntry entry) {
  sim::Promise<Result<CompletionEntry>> promise(cluster_.engine());
  admin_task(entry, promise);
  return promise.future();
}

sim::Task BareController::admin_task(SubmissionEntry entry,
                                     sim::Promise<Result<CompletionEntry>> promise) {
  sim::Engine& engine = cluster_.engine();
  co_await admin_lock_->acquire();
  auto cid = admin_qp_->push(entry);
  if (!cid) {
    admin_lock_->release();
    promise.set(cid.status());
    co_return;
  }
  co_await sim::delay(engine, cfg_.costs.doorbell_ns);
  (void)admin_qp_->ring_sq_doorbell();

  const sim::Time deadline = engine.now() + kAdminTimeoutNs;
  for (;;) {
    if (auto cqe = admin_qp_->poll()) {
      (void)admin_qp_->ring_cq_doorbell();
      admin_lock_->release();
      promise.set(*cqe);  // NVMe-level failures are reported via cqe->status()
      co_return;
    }
    if (engine.now() >= deadline) {
      admin_lock_->release();
      promise.set(Status(Errc::timed_out, "admin command timed out"));
      co_return;
    }
    co_await sim::delay(engine, std::max<sim::Duration>(cfg_.costs.poll_interval_ns, 200));
  }
}

sim::Future<Result<std::uint16_t>> BareController::create_queue_pair(
    std::uint64_t sq_addr, std::uint16_t sq_size, std::uint64_t cq_addr, std::uint16_t cq_size,
    std::optional<std::uint16_t> irq_vector) {
  sim::Promise<Result<std::uint16_t>> promise(cluster_.engine());
  create_qp_task(sq_addr, sq_size, cq_addr, cq_size, irq_vector, promise);
  return promise.future();
}

sim::Task BareController::create_qp_task(std::uint64_t sq_addr, std::uint16_t sq_size,
                                         std::uint64_t cq_addr, std::uint16_t cq_size,
                                         std::optional<std::uint16_t> irq_vector,
                                         sim::Promise<Result<std::uint16_t>> promise) {
  if (next_qid_ > granted_io_queues_) {
    promise.set(Status(Errc::resource_exhausted, "no I/O queue ids left"));
    co_return;
  }
  const std::uint16_t qid = next_qid_++;
  auto cq = co_await submit_admin(nvme::make_create_io_cq(
      0, qid, cq_size, cq_addr, irq_vector.has_value(), irq_vector.value_or(0)));
  if (!cq || !cq->ok()) {
    --next_qid_;
    promise.set(cq ? Status(Errc::io_error, std::string("create CQ failed: ") +
                                                nvme::status_name(cq->status()))
                   : cq.status());
    co_return;
  }
  auto sq = co_await submit_admin(nvme::make_create_io_sq(0, qid, sq_size, sq_addr, qid));
  if (!sq || !sq->ok()) {
    (void)co_await submit_admin(nvme::make_delete_io_cq(0, qid));
    --next_qid_;
    promise.set(sq ? Status(Errc::io_error, std::string("create SQ failed: ") +
                                                nvme::status_name(sq->status()))
                   : sq.status());
    co_return;
  }
  promise.set(qid);
}

sim::Future<Result<std::uint16_t>> BareController::delete_queue_pair(std::uint16_t qid) {
  sim::Promise<Result<std::uint16_t>> promise(cluster_.engine());
  delete_qp_task(qid, promise);
  return promise.future();
}

sim::Task BareController::delete_qp_task(std::uint16_t qid,
                                         sim::Promise<Result<std::uint16_t>> promise) {
  auto sq = co_await submit_admin(nvme::make_delete_io_sq(0, qid));
  if (!sq || !sq->ok()) {
    promise.set(sq ? Status(Errc::io_error, "delete SQ failed") : sq.status());
    co_return;
  }
  auto cq = co_await submit_admin(nvme::make_delete_io_cq(0, qid));
  if (!cq || !cq->ok()) {
    promise.set(cq ? Status(Errc::io_error, "delete CQ failed") : cq.status());
    co_return;
  }
  promise.set(qid);
}

Status BareController::program_msix(std::uint16_t vector, std::uint64_t addr,
                                    std::uint32_t data) {
  fabric::Substrate& fabric = cluster_.fabric();
  Bytes entry(16);
  store_pod(entry, addr, 0);
  store_pod(entry, data, 8);
  store_pod(entry, std::uint32_t{0} /* unmasked */, 12);
  return fabric
      .post_write(fabric.cpu(host_),
                  bar_base_ + nvme::reg::kMsixTable + vector * nvme::reg::kMsixEntrySize,
                  std::move(entry))
      .status();
}

}  // namespace nvmeshare::driver
