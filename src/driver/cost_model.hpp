// Software-path cost models.
//
// The fabric model times every PCIe transaction, but the paper's Figure 10
// differences also come from *software*: the stock Linux driver has a lean,
// mature submission path and interrupt-driven completion; the paper's
// driver is "naive" — a heavier path, polling, and a bounce-buffer memcpy;
// SPDK's target polls with very little per-command work. These presets
// encode those differences as explicit, documented constants.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace nvmeshare::driver {

struct CostModel {
  /// Request intake -> SQE written (block layer + driver submission path).
  sim::Duration submit_ns = 1000;
  /// CQE observed -> request completed back to the block layer.
  sim::Duration completion_ns = 800;
  /// CPU cost of the doorbell store + write fence.
  sim::Duration doorbell_ns = 80;
  /// Completion-polling cadence; 0 means interrupt-driven completion.
  sim::Duration poll_interval_ns = 150;
  /// Interrupt path cost (vector delivery, wakeup, handler entry); only
  /// used when poll_interval_ns == 0.
  sim::Duration irq_delivery_ns = 1800;
  /// Bounce-buffer copy throughput (bytes per nanosecond).
  double memcpy_bytes_per_ns = 12.0;
  /// Lognormal sigma applied to the software costs (OS noise).
  double jitter_sigma = 0.05;

  /// Mature, interrupt-driven kernel driver (the paper's "stock Linux
  /// driver" baseline).
  static CostModel stock_linux();
  /// The paper's proof-of-concept distributed driver: heavier software
  /// path, polling completion, bounce-buffer copies.
  static CostModel distributed_driver();
  /// SPDK-style userspace polling driver (NVMe-oF target side).
  static CostModel spdk();
  /// Kernel NVMe-oF initiator (RDMA transport).
  static CostModel nvmeof_initiator();

  /// Sample a jittered software cost around `base`.
  [[nodiscard]] sim::Duration jittered(sim::Duration base, Rng& rng) const;
  /// Duration of copying `bytes` through the CPU (bounce buffer).
  [[nodiscard]] sim::Duration memcpy_ns(std::uint64_t bytes) const;
};

}  // namespace nvmeshare::driver
