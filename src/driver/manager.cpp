#include "driver/manager.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace nvmeshare::driver {

using nvme::CompletionEntry;
using nvme::SubmissionEntry;

namespace {
constexpr sim::Duration kRegPollNs = 1000;
constexpr int kRegPollLimit = 1000;
constexpr sim::Duration kAdminTimeoutNs = 50_ms;
}  // namespace

Manager::Stats::Stats()
    : mailbox_requests("nvmeshare.manager.mailbox_requests"),
      qps_created("nvmeshare.manager.qps_created"),
      qps_deleted("nvmeshare.manager.qps_deleted"),
      request_errors("nvmeshare.manager.request_errors"),
      qps_reaped("nvmeshare.manager.qps_reaped"),
      ctrl_resets("nvmeshare.manager.ctrl_resets"),
      scrub_sweeps("nvmeshare.manager.scrub_sweeps"),
      scrub_mismatches("nvmeshare.manager.scrub_mismatches") {}

Manager::Manager(smartio::Service& service, smartio::NodeId node, smartio::DeviceId device,
                 Config cfg)
    : service_(service), node_(node), device_id_(device), cfg_(cfg) {}

Manager::~Manager() {
  shutdown();
  if (crash_token_ != 0) fault::Injector::global().unregister_crash_handler(crash_token_);
}

sim::Engine& Manager::engine() { return service_.cluster().engine(); }
pcie::Fabric& Manager::fabric() { return service_.cluster().fabric(); }

std::uint16_t Manager::active_queue_pairs() const {
  return static_cast<std::uint16_t>(std::count(qid_used_.begin(), qid_used_.end(), true));
}

void Manager::shutdown() {
  if (!serving_) return;
  serving_ = false;
  *stop_ = true;
  (void)service_.clear_device_metadata(device_id_);
}

void Manager::crash() {
  if (crashed_) return;
  crashed_ = true;
  serving_ = false;
  *stop_ = true;
  // Deliberately NO clear_device_metadata: a dead process cannot clean up
  // after itself. The metadata segment survives in this host's DRAM, so
  // clients find a mailbox that nobody answers — their calls time out.
  NVS_LOG(warn, "manager") << "manager on node " << node_ << " crashed (fault injection)";
}

sim::Future<Result<std::unique_ptr<Manager>>> Manager::start(smartio::Service& service,
                                                             smartio::NodeId node,
                                                             smartio::DeviceId device,
                                                             Config cfg) {
  sim::Promise<Result<std::unique_ptr<Manager>>> promise(service.cluster().engine());
  auto self = std::unique_ptr<Manager>(new Manager(service, node, device, cfg));
  init_task(std::move(self), promise);
  return promise.future();
}

sim::Task Manager::init_task(std::unique_ptr<Manager> self,
                             sim::Promise<Result<std::unique_ptr<Manager>>> promise) {
  Manager& m = *self;
  pcie::Fabric& fabric = m.fabric();
  sim::Engine& engine = m.engine();
  sisci::Cluster& cluster = m.service_.cluster();
  const pcie::Initiator cpu = fabric.cpu(m.node_);

  // 1. Lock the device: only one process may reset/initialize it.
  auto ref = m.service_.acquire(m.device_id_, smartio::AcquireMode::exclusive);
  if (!ref) {
    promise.set(ref.status());
    co_return;
  }
  m.ref_ = std::move(*ref);

  // 2. Map device registers (BAR window, possibly across the NTB).
  auto bar = m.ref_.map_bar(m.node_, 0);
  if (!bar) {
    promise.set(bar.status());
    co_return;
  }
  m.bar_ = std::move(*bar);

  auto write_reg32 = [&](std::uint64_t off, std::uint32_t v) {
    Bytes b(4);
    store_pod(b, v);
    return fabric.post_write(cpu, m.bar_.addr() + off, std::move(b)).status();
  };
  auto write_reg64 = [&](std::uint64_t off, std::uint64_t v) {
    Bytes b(8);
    store_pod(b, v);
    return fabric.post_write(cpu, m.bar_.addr() + off, std::move(b)).status();
  };

  // 3. Reset the controller and wait until it is down.
  if (Status st = write_reg32(nvme::reg::kCc, 0); !st) {
    promise.set(st);
    co_return;
  }
  for (int i = 0;; ++i) {
    auto csts = co_await fabric.read(cpu, m.bar_.addr() + nvme::reg::kCsts, 4);
    if (!csts) {
      promise.set(csts.status());
      co_return;
    }
    if ((load_pod<std::uint32_t>(*csts) & nvme::kCstsReady) == 0) break;
    if (i >= kRegPollLimit) {
      promise.set(Status(Errc::timed_out, "controller did not leave ready state"));
      co_return;
    }
    co_await sim::delay(engine, kRegPollNs);
  }

  // 4. Admin queue memory, placed by access-pattern hint (Figure 8): the SQ
  //    goes device-side so command fetches never cross the NTB; the CQ
  //    stays local so polling never stalls.
  const std::uint16_t entries = m.cfg_.admin_entries;
  auto asq_seg = m.service_.create_segment_hinted(m.node_, m.cfg_.private_segment_base + 0,
                                                  entries * 64ull, m.device_id_,
                                                  smartio::AccessHint::sq());
  auto acq_seg = m.service_.create_segment_hinted(m.node_, m.cfg_.private_segment_base + 1,
                                                  entries * 16ull, m.device_id_,
                                                  smartio::AccessHint::cq());
  auto data_seg = m.service_.create_segment_hinted(m.node_, m.cfg_.private_segment_base + 2,
                                                   4096, m.device_id_,
                                                   smartio::AccessHint::cq());
  if (!asq_seg || !acq_seg || !data_seg) {
    promise.set(Status(Errc::resource_exhausted, "no memory for admin segments"));
    co_return;
  }
  m.asq_seg_ = std::move(*asq_seg);
  m.acq_seg_ = std::move(*acq_seg);
  m.admin_data_seg_ = std::move(*data_seg);
  // Zero the queue memory: stale phase bits in reused pages would be read
  // as valid completions.
  (void)m.asq_seg_.write(0, Bytes(m.asq_seg_.size(), std::byte{0}));
  (void)m.acq_seg_.write(0, Bytes(m.acq_seg_.size(), std::byte{0}));

  // 5. DMA windows: device-visible addresses for the queue memory.
  auto asq_win = m.ref_.map_for_device(m.asq_seg_.descriptor());
  auto acq_win = m.ref_.map_for_device(m.acq_seg_.descriptor());
  auto data_win = m.ref_.map_for_device(m.admin_data_seg_.descriptor());
  if (!asq_win || !acq_win || !data_win) {
    promise.set(Status(Errc::resource_exhausted, "no NTB windows for admin segments"));
    co_return;
  }
  m.asq_win_ = std::move(*asq_win);
  m.acq_win_ = std::move(*acq_win);
  m.admin_data_win_ = std::move(*data_win);

  // 6. CPU view of the admin SQ (it may live device-side).
  auto asq_map = sisci::Map::create(cluster, m.node_, m.asq_seg_.descriptor());
  if (!asq_map) {
    promise.set(asq_map.status());
    co_return;
  }
  m.asq_cpu_map_ = std::move(*asq_map);

  // 7. Program admin queue registers and enable.
  const std::uint32_t aqa = static_cast<std::uint32_t>(entries - 1) |
                            (static_cast<std::uint32_t>(entries - 1) << 16);
  (void)write_reg32(nvme::reg::kAqa, aqa);
  (void)write_reg64(nvme::reg::kAsq, m.asq_win_.device_addr());
  (void)write_reg64(nvme::reg::kAcq, m.acq_win_.device_addr());
  (void)write_reg32(nvme::reg::kCc,
                    nvme::kCcEnable | (m.cfg_.enable_wrr ? nvme::kCcAmsWrrBits : 0));
  for (int i = 0;; ++i) {
    auto csts = co_await fabric.read(cpu, m.bar_.addr() + nvme::reg::kCsts, 4);
    if (!csts) {
      promise.set(csts.status());
      co_return;
    }
    const auto v = load_pod<std::uint32_t>(*csts);
    if ((v & nvme::kCstsFatal) != 0) {
      promise.set(Status(Errc::unavailable, "controller fatal on enable"));
      co_return;
    }
    if ((v & nvme::kCstsReady) != 0) break;
    if (i >= kRegPollLimit) {
      promise.set(Status(Errc::timed_out, "controller did not become ready"));
      co_return;
    }
    co_await sim::delay(engine, kRegPollNs);
  }

  nvme::QueuePair::Config qc;
  qc.qid = 0;
  qc.sq_size = entries;
  qc.cq_size = entries;
  qc.sq_write_addr = m.asq_cpu_map_.addr();
  qc.cq_poll_addr = m.acq_seg_.phys_addr();  // hint guarantees it is local
  qc.sq_doorbell_addr = m.bar_.addr() + nvme::sq_doorbell_offset(0);
  qc.cq_doorbell_addr = m.bar_.addr() + nvme::cq_doorbell_offset(0);
  qc.cpu = cpu;
  m.admin_qp_ = std::make_unique<nvme::QueuePair>(fabric, qc);
  m.admin_lock_ = std::make_unique<sim::Semaphore>(engine, 1);

  // 8. Identify controller and namespace.
  auto ident = co_await m.submit_admin(
      nvme::make_identify(0, nvme::IdentifyCns::controller, 0, m.admin_data_win_.device_addr()));
  if (!ident) {
    promise.set(ident.status());
    co_return;
  }
  Bytes payload(4096);
  (void)m.admin_data_seg_.read(0, payload);
  const auto ctrl = nvme::parse_identify_controller(payload);

  auto ns = co_await m.submit_admin(
      nvme::make_identify(0, nvme::IdentifyCns::ns, 1, m.admin_data_win_.device_addr()));
  if (!ns) {
    promise.set(ns.status());
    co_return;
  }
  (void)m.admin_data_seg_.read(0, payload);
  const auto nsinfo = nvme::parse_identify_namespace(payload);

  // 9. Negotiate I/O queue count.
  auto feat = co_await m.submit_admin(
      nvme::make_set_num_queues(0, m.cfg_.requested_io_queues, m.cfg_.requested_io_queues));
  if (!feat) {
    promise.set(feat.status());
    co_return;
  }
  const auto nsqa = static_cast<std::uint16_t>((feat->dw0 & 0xFFFF) + 1);
  const auto ncqa = static_cast<std::uint16_t>((feat->dw0 >> 16) + 1);
  const std::uint16_t granted = std::min(nsqa, ncqa);

  // 9b. WRR mode: program the arbitration burst and class weights the
  // controller will spend per turn (Set Features / Arbitration).
  if (m.cfg_.enable_wrr) {
    auto arb = co_await m.submit_admin(nvme::make_set_arbitration(
        0, m.cfg_.arb_burst_log2, m.cfg_.wrr_low_weight, m.cfg_.wrr_medium_weight,
        m.cfg_.wrr_high_weight));
    if (!arb) {
      promise.set(arb.status());
      co_return;
    }
  }

  // 10. Done with privileged init: let clients share the device.
  if (Status st = m.ref_.downgrade_to_shared(); !st) {
    promise.set(st);
    co_return;
  }

  // 11. Publish the metadata segment.
  const auto nodes = static_cast<std::uint32_t>(fabric.host_count());
  auto meta = cluster.create_segment(m.node_, m.cfg_.metadata_segment_id,
                                     metadata_segment_size(nodes));
  if (!meta) {
    promise.set(meta.status());
    co_return;
  }
  m.metadata_seg_ = std::move(*meta);

  m.header_.manager_node = m.node_;
  m.header_.device_id = m.device_id_;
  m.header_.capacity_blocks = nsinfo.size_blocks;
  m.header_.block_size = nsinfo.block_size;
  m.header_.max_transfer_bytes =
      static_cast<std::uint32_t>((1u << ctrl.mdts_pages_log2) * nvme::kPageSize);
  m.header_.max_queue_pairs = static_cast<std::uint16_t>(granted + 1);
  m.header_.granted_io_queues = granted;
  m.header_.mailbox_slots = nodes;
  m.header_.mailbox_offset = 4096;
  (void)m.metadata_seg_.write(0, as_bytes_of(m.header_));
  // v4: publish the QoS policy table so clients can see what a grant
  // request will be judged against.
  (void)m.metadata_seg_.write(kQosPolicyOffset, as_bytes_of(m.cfg_.qos_policy));

  m.qid_used_.assign(granted + 1u, false);
  m.qid_used_[0] = true;  // admin
  m.qid_owner_.assign(granted + 1u, 0);
  m.qid_created_at_.assign(granted + 1u, 0);

  if (Status st = m.service_.set_device_metadata(m.device_id_, m.node_,
                                                 m.cfg_.metadata_segment_id);
      !st) {
    promise.set(st);
    co_return;
  }

  m.serving_ = true;
  m.mailbox_server(m.stop_);
  if (m.cfg_.client_heartbeat_timeout_ns > 0) m.reaper_task(m.stop_);
  if (m.cfg_.csts_poll_interval_ns > 0) m.watchdog_task(m.stop_);
  if (m.cfg_.scrub_interval_ns > 0) m.scrub_task(m.stop_);
  if (fault::enabled()) {
    Manager* raw = self.get();
    m.crash_token_ = fault::Injector::global().register_crash_handler(
        m.node_, [raw]() { raw->crash(); });
  }
  NVS_LOG(info, "manager") << "serving device " << m.device_id_ << " from node " << m.node_
                           << " with " << granted << " IO queue pairs";
  promise.set(std::move(self));
}

sim::Future<Result<CompletionEntry>> Manager::submit_admin(SubmissionEntry entry) {
  sim::Promise<Result<CompletionEntry>> promise(engine());
  admin_task(entry, promise);
  return promise.future();
}

sim::Task Manager::admin_task(SubmissionEntry entry,
                              sim::Promise<Result<CompletionEntry>> promise) {
  sim::Engine& eng = engine();
  co_await admin_lock_->acquire();
  auto cid = admin_qp_->push(entry);
  if (!cid) {
    admin_lock_->release();
    promise.set(cid.status());
    co_return;
  }
  co_await sim::delay(eng, cfg_.costs.doorbell_ns);
  (void)admin_qp_->ring_sq_doorbell();

  const sim::Time deadline = eng.now() + kAdminTimeoutNs;
  for (;;) {
    if (auto cqe = admin_qp_->poll()) {
      (void)admin_qp_->ring_cq_doorbell();
      admin_lock_->release();
      promise.set(*cqe);  // NVMe-level failures are reported via cqe->status()
      co_return;
    }
    if (eng.now() >= deadline) {
      admin_lock_->release();
      promise.set(Status(Errc::timed_out, "admin command timed out"));
      co_return;
    }
    co_await sim::delay(eng, std::max<sim::Duration>(cfg_.costs.poll_interval_ns, 200));
  }
}

sim::Task Manager::mailbox_server(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  for (;;) {
    if (*stop) co_return;
    bool worked = false;
    const std::uint32_t slots = header_.mailbox_slots;
    for (std::uint32_t i = 0; i < slots; ++i) {
      MboxSlot slot;
      if (Status st = metadata_seg_.read(mbox_slot_offset(header_, i),
                                         as_writable_bytes_of(slot));
          !st) {
        continue;
      }
      if (slot.state != static_cast<std::uint32_t>(MboxState::request)) continue;
      worked = true;
      co_await handle_slot_await(i, slot, stop);
      if (*stop) co_return;
    }
    (void)worked;
    co_await sim::delay(eng, cfg_.mailbox_poll_ns);
    if (*stop) co_return;
  }
}

// handle_slot_task is awaited inline from the server loop (via the future
// wrapper) so one request fully completes before the next slot is scanned.
sim::Future<bool> Manager::handle_slot_await(std::uint32_t slot_index, MboxSlot slot,
                                             std::shared_ptr<bool> stop) {
  sim::Promise<bool> done(engine());
  handle_slot_task(slot_index, slot, std::move(stop), done);
  return done.future();
}

sim::Task Manager::handle_slot_task(std::uint32_t slot_index, MboxSlot slot,
                                    std::shared_ptr<bool> stop, sim::Promise<bool> done) {
  ++stats_.mailbox_requests;
  co_await sim::delay(engine(), cfg_.mailbox_service_ns);
  if (*stop) {
    done.set(false);
    co_return;
  }

  auto respond = [&](Errc errc, std::uint16_t qid, std::uint16_t nvme_status) {
    slot.status = static_cast<std::uint32_t>(errc);
    slot.qid_out = qid;
    slot.nvme_status = nvme_status;
    slot.state = static_cast<std::uint32_t>(MboxState::done);
    (void)metadata_seg_.write(mbox_slot_offset(header_, slot_index), as_bytes_of(slot));
    if (errc != Errc::ok) ++stats_.request_errors;
  };

  switch (static_cast<MboxOp>(slot.op)) {
    case MboxOp::ping:
      respond(Errc::ok, 0, 0);
      break;
    case MboxOp::create_qp: {
      // Pick a free queue id.
      std::uint16_t qid = 0;
      for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
        if (!qid_used_[q]) {
          qid = q;
          break;
        }
      }
      if (qid == 0) {
        respond(Errc::resource_exhausted, 0, 0);
        break;
      }
      if (slot.sq_size < 2 || slot.cq_size < 2 || slot.sq_device_addr == 0 ||
          slot.cq_device_addr == 0) {
        respond(Errc::invalid_argument, 0, 0);
        break;
      }
      if (!grant_qos(slot)) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      auto cq = co_await submit_admin(
          nvme::make_create_io_cq(0, qid, slot.cq_size, slot.cq_device_addr,
                                  /*irq_enable=*/false, 0));
      if (*stop) {
        done.set(false);
        co_return;
      }
      if (!cq || !cq->ok()) {
        respond(cq ? Errc::io_error : cq.status().code(), 0, cq ? cq->status() : 0);
        break;
      }
      auto sq = co_await submit_admin(nvme::make_create_io_sq(
          0, qid, slot.sq_size, slot.sq_device_addr, qid, sq_priority(slot)));
      if (*stop) {
        done.set(false);
        co_return;
      }
      if (!sq || !sq->ok()) {
        (void)co_await submit_admin(nvme::make_delete_io_cq(0, qid));
        respond(sq ? Errc::io_error : sq.status().code(), 0, sq ? sq->status() : 0);
        break;
      }
      qid_used_[qid] = true;
      qid_owner_[qid] = slot.client_node;
      qid_created_at_[qid] = engine().now();
      ++stats_.qps_created;
      NVS_LOG(info, "manager") << "created QP " << qid << " for node " << slot.client_node;
      respond(Errc::ok, qid, 0);
      break;
    }
    case MboxOp::delete_qp: {
      const std::uint16_t qid = slot.qid_in;
      if (qid == 0 || qid >= qid_used_.size() || !qid_used_[qid] ||
          qid_owner_[qid] != slot.client_node) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      auto sq = co_await submit_admin(nvme::make_delete_io_sq(0, qid));
      auto cq = co_await submit_admin(nvme::make_delete_io_cq(0, qid));
      if (*stop) {
        done.set(false);
        co_return;
      }
      if (!sq || !sq->ok() || !cq || !cq->ok()) {
        respond(Errc::io_error, 0, 0);
        break;
      }
      qid_used_[qid] = false;
      qid_owner_[qid] = 0;
      qid_created_at_[qid] = 0;
      ++stats_.qps_deleted;
      respond(Errc::ok, qid, 0);
      break;
    }
    case MboxOp::create_qp_batch: {
      // Multi-channel grant: one pair per channel, SQ/CQ bases advancing by
      // the client's strides. All-or-nothing — a mid-batch failure deletes
      // what this batch already created before responding.
      const std::uint16_t count = slot.qp_count;
      if (count == 0 || count > kMaxBatchQps || slot.sq_size < 2 || slot.cq_size < 2 ||
          slot.sq_device_addr == 0 || slot.cq_device_addr == 0 ||
          (count > 1 && (slot.sq_stride == 0 || slot.cq_stride == 0))) {
        respond(Errc::invalid_argument, 0, 0);
        break;
      }
      // One QoS grant covers the whole batch: every channel shares the class.
      if (!grant_qos(slot)) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      std::uint16_t created = 0;
      Errc errc = Errc::ok;
      std::uint16_t bad_status = 0;
      while (created < count) {
        std::uint16_t qid = 0;
        for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
          if (!qid_used_[q]) {
            qid = q;
            break;
          }
        }
        if (qid == 0) {
          errc = Errc::resource_exhausted;
          break;
        }
        const std::uint64_t cq_base =
            slot.cq_device_addr + static_cast<std::uint64_t>(created) * slot.cq_stride;
        const std::uint64_t sq_base =
            slot.sq_device_addr + static_cast<std::uint64_t>(created) * slot.sq_stride;
        auto cq = co_await submit_admin(nvme::make_create_io_cq(0, qid, slot.cq_size, cq_base,
                                                                /*irq_enable=*/false, 0));
        if (*stop) {
          done.set(false);
          co_return;
        }
        if (!cq || !cq->ok()) {
          errc = cq ? Errc::io_error : cq.status().code();
          bad_status = cq ? cq->status() : 0;
          break;
        }
        auto sq = co_await submit_admin(
            nvme::make_create_io_sq(0, qid, slot.sq_size, sq_base, qid, sq_priority(slot)));
        if (*stop) {
          done.set(false);
          co_return;
        }
        if (!sq || !sq->ok()) {
          (void)co_await submit_admin(nvme::make_delete_io_cq(0, qid));
          errc = sq ? Errc::io_error : sq.status().code();
          bad_status = sq ? sq->status() : 0;
          break;
        }
        qid_used_[qid] = true;
        qid_owner_[qid] = slot.client_node;
        qid_created_at_[qid] = engine().now();
        ++stats_.qps_created;
        slot.qids[created] = qid;
        ++created;
      }
      if (errc != Errc::ok) {
        for (std::uint16_t c = 0; c < created; ++c) {
          const std::uint16_t qid = slot.qids[c];
          (void)co_await submit_admin(nvme::make_delete_io_sq(0, qid));
          (void)co_await submit_admin(nvme::make_delete_io_cq(0, qid));
          qid_used_[qid] = false;
          qid_owner_[qid] = 0;
          qid_created_at_[qid] = 0;
          ++stats_.qps_deleted;
          slot.qids[c] = 0;
        }
        if (*stop) {
          done.set(false);
          co_return;
        }
        respond(errc, 0, bad_status);
        break;
      }
      NVS_LOG(info, "manager") << "created " << count << " QPs for node "
                               << slot.client_node;
      respond(Errc::ok, slot.qids[0], 0);
      break;
    }
    case MboxOp::delete_qp_batch: {
      const std::uint16_t count = slot.qp_count;
      if (count == 0 || count > kMaxBatchQps) {
        respond(Errc::invalid_argument, 0, 0);
        break;
      }
      // Best effort: every owned qid in the list is attempted so one stale
      // entry cannot strand the rest; the first failure is reported.
      Errc errc = Errc::ok;
      for (std::uint16_t c = 0; c < count; ++c) {
        const std::uint16_t qid = slot.qids[c];
        if (qid == 0 || qid >= qid_used_.size() || !qid_used_[qid] ||
            qid_owner_[qid] != slot.client_node) {
          if (errc == Errc::ok) errc = Errc::permission_denied;
          continue;
        }
        auto sq = co_await submit_admin(nvme::make_delete_io_sq(0, qid));
        auto cq = co_await submit_admin(nvme::make_delete_io_cq(0, qid));
        if (*stop) {
          done.set(false);
          co_return;
        }
        if (!sq || !sq->ok() || !cq || !cq->ok()) {
          if (errc == Errc::ok) errc = Errc::io_error;
          continue;
        }
        qid_used_[qid] = false;
        qid_owner_[qid] = 0;
        qid_created_at_[qid] = 0;
        ++stats_.qps_deleted;
      }
      respond(errc, 0, 0);
      break;
    }
    default:
      respond(Errc::protocol_error, 0, 0);
      break;
  }
  done.set(true);
}

bool Manager::grant_qos(MboxSlot& slot) const {
  // Demote toward lower priority until an allowed class admits the client
  // (urgent = 0 down to low = 3); a client never gets promoted above what
  // it asked for.
  int cls = slot.qos_class & 0x3;
  while (cls <= 3 && cfg_.qos_policy.classes[cls].allowed == 0) ++cls;
  if (cls > 3) return false;
  const QosPolicyEntry& pol = cfg_.qos_policy.classes[cls];
  slot.qos_granted_class = static_cast<std::uint8_t>(cls);
  // Budget semantics: a zero request asks for the class default (the cap);
  // a zero cap means the class is unpaced unless the client self-limits.
  auto clamp = [](std::uint32_t requested, std::uint32_t cap) -> std::uint32_t {
    if (cap == 0) return requested;
    if (requested == 0) return cap;
    return std::min(requested, cap);
  };
  slot.qos_granted_iops = clamp(slot.qos_iops, pol.max_iops);
  slot.qos_granted_bytes_per_s = clamp(slot.qos_bytes_per_s, pol.max_bytes_per_s);
  return true;
}

// --- fault recovery -------------------------------------------------------------------

// Orphaned-queue-pair reaper (docs/faults.md): a crashed client leaves its
// queue pair allocated forever — it never sends delete_qp. Clients post a
// liveness heartbeat into their mailbox slot; when a pair's owner has been
// silent longer than the timeout (measured from its last beat, or from the
// pair's creation as a grace period before the first beat), the manager
// deletes the pair with the same admin commands a voluntary detach uses.
sim::Task Manager::reaper_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  for (;;) {
    co_await sim::delay(eng, cfg_.reaper_interval_ns);
    if (*stop) co_return;
    for (std::uint16_t qid = 1; qid < qid_used_.size(); ++qid) {
      if (!qid_used_[qid]) continue;
      const std::uint32_t owner = qid_owner_[qid];
      MboxSlot slot;
      if (owner >= header_.mailbox_slots ||
          !metadata_seg_.read(mbox_slot_offset(header_, owner), as_writable_bytes_of(slot))) {
        continue;
      }
      const sim::Time last =
          std::max(static_cast<sim::Time>(slot.heartbeat_ns), qid_created_at_[qid]);
      if (eng.now() - last <= cfg_.client_heartbeat_timeout_ns) continue;
      NVS_LOG(warn, "manager") << "reaping orphaned QP " << qid << ": node " << owner
                               << " silent for " << (eng.now() - last) << " ns";
      auto sq = co_await submit_admin(nvme::make_delete_io_sq(0, qid));
      auto cq = co_await submit_admin(nvme::make_delete_io_cq(0, qid));
      if (*stop) co_return;
      if ((sq && sq->ok()) || (cq && cq->ok())) {
        qid_used_[qid] = false;
        qid_owner_[qid] = 0;
        qid_created_at_[qid] = 0;
        ++stats_.qps_reaped;
      }
    }
  }
}

// CSTS watchdog (docs/faults.md): detects a fatal controller status (CFS)
// and runs the full reset + re-init sequence. Every client queue pair dies
// with the reset; the bookkeeping is cleared so clients can re-create their
// pairs through the mailbox once their own deadlines notice the loss.
sim::Task Manager::watchdog_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  pcie::Fabric& fab = fabric();
  const pcie::Initiator cpu = fab.cpu(node_);
  auto write_reg32 = [&](std::uint64_t off, std::uint32_t v) {
    Bytes b(4);
    store_pod(b, v);
    return fab.post_write(cpu, bar_.addr() + off, std::move(b)).status();
  };
  auto write_reg64 = [&](std::uint64_t off, std::uint64_t v) {
    Bytes b(8);
    store_pod(b, v);
    return fab.post_write(cpu, bar_.addr() + off, std::move(b)).status();
  };
  for (;;) {
    co_await sim::delay(eng, cfg_.csts_poll_interval_ns);
    if (*stop) co_return;
    auto csts = co_await fab.read(cpu, bar_.addr() + nvme::reg::kCsts, 4);
    if (*stop) co_return;
    if (!csts) continue;  // registers unreachable (link down); retry next tick
    if ((load_pod<std::uint32_t>(*csts) & nvme::kCstsFatal) == 0) continue;

    const sim::Time begin = eng.now();
    NVS_LOG(warn, "manager") << "controller reports fatal status; resetting";
    ++stats_.ctrl_resets;
    // Serialize against in-flight admin commands; their deadlines release
    // the lock even though the dead controller never answers them.
    co_await admin_lock_->acquire();

    // CC.EN=0 clears CFS and tears down every queue, then re-run the
    // enable sequence on zeroed admin queue memory.
    (void)write_reg32(nvme::reg::kCc, 0);
    bool down = false;
    for (int i = 0; i < kRegPollLimit; ++i) {
      auto v = co_await fab.read(cpu, bar_.addr() + nvme::reg::kCsts, 4);
      if (v && (load_pod<std::uint32_t>(*v) & nvme::kCstsReady) == 0) {
        down = true;
        break;
      }
      co_await sim::delay(eng, kRegPollNs);
    }
    (void)asq_seg_.write(0, Bytes(asq_seg_.size(), std::byte{0}));
    (void)acq_seg_.write(0, Bytes(acq_seg_.size(), std::byte{0}));
    const std::uint16_t entries = cfg_.admin_entries;
    const std::uint32_t aqa = static_cast<std::uint32_t>(entries - 1) |
                              (static_cast<std::uint32_t>(entries - 1) << 16);
    (void)write_reg32(nvme::reg::kAqa, aqa);
    (void)write_reg64(nvme::reg::kAsq, asq_win_.device_addr());
    (void)write_reg64(nvme::reg::kAcq, acq_win_.device_addr());
    (void)write_reg32(nvme::reg::kCc,
                      nvme::kCcEnable | (cfg_.enable_wrr ? nvme::kCcAmsWrrBits : 0));
    bool ready = false;
    for (int i = 0; i < kRegPollLimit; ++i) {
      auto v = co_await fab.read(cpu, bar_.addr() + nvme::reg::kCsts, 4);
      if (v && (load_pod<std::uint32_t>(*v) & nvme::kCstsReady) != 0) {
        ready = true;
        break;
      }
      co_await sim::delay(eng, kRegPollNs);
    }
    // The reset wiped the doorbell state; the QP wrapper must restart from
    // index zero as well.
    nvme::QueuePair::Config qc;
    qc.qid = 0;
    qc.sq_size = entries;
    qc.cq_size = entries;
    qc.sq_write_addr = asq_cpu_map_.addr();
    qc.cq_poll_addr = acq_seg_.phys_addr();
    qc.sq_doorbell_addr = bar_.addr() + nvme::sq_doorbell_offset(0);
    qc.cq_doorbell_addr = bar_.addr() + nvme::cq_doorbell_offset(0);
    qc.cpu = cpu;
    admin_qp_ = std::make_unique<nvme::QueuePair>(fab, qc);
    admin_lock_->release();

    if (*stop) co_return;
    if (!down || !ready) {
      NVS_LOG(error, "manager") << "controller reset did not complete (down=" << down
                                << " ready=" << ready << "); will retry on next fatal";
      continue;
    }

    // Every I/O queue died with the reset: forget them so clients can
    // re-create their pairs (their delete_qp for a stale qid is refused,
    // which they ignore).
    for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
      qid_used_[q] = false;
      qid_owner_[q] = 0;
      qid_created_at_[q] = 0;
    }
    // Re-negotiate the I/O queue count (required before queue creation).
    auto feat = co_await submit_admin(nvme::make_set_num_queues(
        0, cfg_.requested_io_queues, cfg_.requested_io_queues));
    if (*stop) co_return;
    if (!feat || !(*feat).ok()) {
      NVS_LOG(error, "manager") << "set_num_queues after reset failed";
      continue;
    }
    // The reset also wiped the arbitration weights; re-program them before
    // clients re-create their prioritized queues.
    if (cfg_.enable_wrr) {
      (void)co_await submit_admin(nvme::make_set_arbitration(
          0, cfg_.arb_burst_log2, cfg_.wrr_low_weight, cfg_.wrr_medium_weight,
          cfg_.wrr_high_weight));
      if (*stop) co_return;
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
      tracer.record(t, obs::Track::controller, obs::Phase::recovery, begin, eng.now(), 0);
      tracer.end_trace(t, eng.now());
    }
    NVS_LOG(info, "manager") << "controller recovered in " << (eng.now() - begin) << " ns";
  }
}

// Background integrity scrubber (docs/MODEL.md §7): walks the namespace
// with vendor scrub commands, one range per tick, making the controller
// verify its stored protection tuples against the stored data. Detection
// only — a mismatch is surfaced through counters and a recovery-phase trace
// span; repair is the writer's job (re-write or deallocate the range).
sim::Task Manager::scrub_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  std::uint64_t cursor = 0;
  for (;;) {
    co_await sim::delay(eng, cfg_.scrub_interval_ns);
    if (*stop) co_return;
    const std::uint64_t capacity = header_.capacity_blocks;
    if (capacity == 0 || cfg_.scrub_blocks_per_cmd == 0) continue;
    if (cursor >= capacity) cursor = 0;
    const auto span = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(cfg_.scrub_blocks_per_cmd, capacity - cursor));
    const sim::Time begin = eng.now();
    auto cqe = co_await submit_admin(nvme::make_vendor_scrub(0, 1, cursor, span));
    if (*stop) co_return;
    // Unreachable or resetting controller: leave the cursor so the next
    // tick retries the same range.
    if (!cqe || (!(*cqe).ok() && (*cqe).status() != nvme::kScGuardCheckError)) continue;
    if ((*cqe).dw0 != 0) {
      stats_.scrub_mismatches += (*cqe).dw0;
      NVS_LOG(warn, "manager") << "scrub found " << (*cqe).dw0
                               << " mismatching blocks in [" << cursor << ", "
                               << (cursor + span) << ")";
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
        tracer.record(t, obs::Track::controller, obs::Phase::recovery, begin, eng.now(), 0);
        tracer.end_trace(t, eng.now());
      }
    }
    cursor += span;
    if (cursor >= capacity) {
      cursor = 0;
      ++stats_.scrub_sweeps;
    }
  }
}

}  // namespace nvmeshare::driver
