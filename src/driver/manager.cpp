#include "driver/manager.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace nvmeshare::driver {

using nvme::CompletionEntry;
using nvme::SubmissionEntry;

namespace {
constexpr sim::Duration kRegPollNs = 1000;
constexpr int kRegPollLimit = 1000;
constexpr sim::Duration kAdminTimeoutNs = 50_ms;
// Standby bring-up: how long to keep retrying the shared device acquisition
// and the metadata lookup while the active manager is still initializing.
constexpr sim::Duration kStandbyRetryNs = 50'000;
constexpr int kStandbyRetryLimit = 200;

QpOwnerEntry make_owner_entry(const MboxSlot& slot, std::uint64_t sq_base,
                              std::uint64_t cq_base, QpOwnerState state, sim::Time now) {
  QpOwnerEntry e;
  e.state = static_cast<std::uint32_t>(state);
  e.owner_node = slot.client_node;
  e.sq_device_addr = sq_base;
  e.cq_device_addr = cq_base;
  e.created_at_ns = now;
  e.sq_size = slot.sq_size;
  e.cq_size = slot.cq_size;
  e.qos_class = slot.qos_granted_class;
  e.granted_iops = slot.qos_granted_iops;
  e.granted_bytes_per_s = slot.qos_granted_bytes_per_s;
  return e;
}
}  // namespace

Manager::Stats::Stats()
    : mailbox_requests("nvmeshare.manager.mailbox_requests"),
      qps_created("nvmeshare.manager.qps_created"),
      qps_deleted("nvmeshare.manager.qps_deleted"),
      request_errors("nvmeshare.manager.request_errors"),
      qps_reaped("nvmeshare.manager.qps_reaped"),
      ctrl_resets("nvmeshare.manager.ctrl_resets"),
      scrub_sweeps("nvmeshare.manager.scrub_sweeps"),
      scrub_mismatches("nvmeshare.manager.scrub_mismatches"),
      lease_renewals("nvmeshare.manager.lease_renewals"),
      takeovers("nvmeshare.manager.takeovers"),
      fencings("nvmeshare.manager.fencings"),
      qps_adopted("nvmeshare.manager.qps_adopted"),
      intent_rollbacks("nvmeshare.manager.intent_rollbacks"),
      shares_granted("nvmeshare.manager.shares_granted"),
      shares_released("nvmeshare.manager.shares_released") {}

Manager::Manager(smartio::Service& service, smartio::NodeId node, smartio::DeviceId device,
                 Config cfg)
    : service_(service), node_(node), device_id_(device), cfg_(cfg) {}

Manager::~Manager() {
  shutdown();
  if (crash_token_ != 0) fault::Injector::global().unregister_crash_handler(crash_token_);
}

sim::Engine& Manager::engine() { return service_.cluster().engine(); }
fabric::Substrate& Manager::fabric() { return service_.cluster().fabric(); }

std::uint16_t Manager::active_queue_pairs() const {
  return static_cast<std::uint16_t>(std::count(qid_used_.begin(), qid_used_.end(), true));
}

void Manager::shutdown() {
  if (standby_) {  // still watching: nothing published, just stop the watch
    standby_ = false;
    *stop_ = true;
    return;
  }
  if (!serving_) return;
  serving_ = false;
  *stop_ = true;
  // Only withdraw the registration while it still names this instance — a
  // fenced or superseded manager must not clobber its successor's.
  auto loc = service_.device_metadata(device_id_);
  if (loc && loc->first == node_ && loc->second == cfg_.metadata_segment_id) {
    (void)service_.clear_device_metadata(device_id_);
  }
}

void Manager::crash() {
  if (crashed_) return;
  crashed_ = true;
  serving_ = false;
  *stop_ = true;
  // Deliberately NO clear_device_metadata: a dead process cannot clean up
  // after itself. The metadata segment survives in this host's DRAM, so
  // clients find a mailbox that nobody answers — their calls time out.
  NVS_LOG(warn, "manager") << "manager on node " << node_ << " crashed (fault injection)";
}

sim::Future<Result<std::unique_ptr<Manager>>> Manager::start(smartio::Service& service,
                                                             smartio::NodeId node,
                                                             smartio::DeviceId device,
                                                             Config cfg) {
  sim::Promise<Result<std::unique_ptr<Manager>>> promise(service.cluster().engine());
  auto self = std::unique_ptr<Manager>(new Manager(service, node, device, cfg));
  init_task(std::move(self), promise);
  return promise.future();
}

sim::Task Manager::init_task(std::unique_ptr<Manager> self,
                             sim::Promise<Result<std::unique_ptr<Manager>>> promise) {
  Manager& m = *self;
  fabric::Substrate& fabric = m.fabric();
  sim::Engine& engine = m.engine();
  sisci::Cluster& cluster = m.service_.cluster();
  const pcie::Initiator cpu = fabric.cpu(m.node_);

  // 1. Lock the device: only one process may reset/initialize it.
  auto ref = m.service_.acquire(m.device_id_, smartio::AcquireMode::exclusive);
  if (!ref) {
    promise.set(ref.status());
    co_return;
  }
  m.ref_ = std::move(*ref);

  // 2. Map device registers (BAR window, possibly across the NTB).
  auto bar = m.ref_.map_bar(m.node_, 0);
  if (!bar) {
    promise.set(bar.status());
    co_return;
  }
  m.bar_ = std::move(*bar);

  auto write_reg32 = [&](std::uint64_t off, std::uint32_t v) {
    Bytes b(4);
    store_pod(b, v);
    return fabric.post_write(cpu, m.bar_.addr() + off, std::move(b)).status();
  };
  auto write_reg64 = [&](std::uint64_t off, std::uint64_t v) {
    Bytes b(8);
    store_pod(b, v);
    return fabric.post_write(cpu, m.bar_.addr() + off, std::move(b)).status();
  };

  // 3. Reset the controller and wait until it is down.
  if (Status st = write_reg32(nvme::reg::kCc, 0); !st) {
    promise.set(st);
    co_return;
  }
  for (int i = 0;; ++i) {
    auto csts = co_await fabric.read(cpu, m.bar_.addr() + nvme::reg::kCsts, 4);
    if (!csts) {
      promise.set(csts.status());
      co_return;
    }
    if ((load_pod<std::uint32_t>(*csts) & nvme::kCstsReady) == 0) break;
    if (i >= kRegPollLimit) {
      promise.set(Status(Errc::timed_out, "controller did not leave ready state"));
      co_return;
    }
    co_await sim::delay(engine, kRegPollNs);
  }

  // 4. Admin queue memory, placed by access-pattern hint (Figure 8): the SQ
  //    goes device-side so command fetches never cross the NTB; the CQ
  //    stays local so polling never stalls.
  const std::uint16_t entries = m.cfg_.admin_entries;
  auto asq_seg = m.service_.create_segment_hinted(m.node_, m.cfg_.private_segment_base + 0,
                                                  entries * 64ull, m.device_id_,
                                                  smartio::AccessHint::sq());
  auto acq_seg = m.service_.create_segment_hinted(m.node_, m.cfg_.private_segment_base + 1,
                                                  entries * 16ull, m.device_id_,
                                                  smartio::AccessHint::cq());
  auto data_seg = m.service_.create_segment_hinted(m.node_, m.cfg_.private_segment_base + 2,
                                                   4096, m.device_id_,
                                                   smartio::AccessHint::cq());
  if (!asq_seg || !acq_seg || !data_seg) {
    promise.set(Status(Errc::resource_exhausted, "no memory for admin segments"));
    co_return;
  }
  m.asq_seg_ = std::move(*asq_seg);
  m.acq_seg_ = std::move(*acq_seg);
  m.admin_data_seg_ = std::move(*data_seg);
  // Zero the queue memory: stale phase bits in reused pages would be read
  // as valid completions.
  (void)m.asq_seg_.write(0, Bytes(m.asq_seg_.size(), std::byte{0}));
  (void)m.acq_seg_.write(0, Bytes(m.acq_seg_.size(), std::byte{0}));

  // 5. DMA windows: device-visible addresses for the queue memory.
  auto asq_win = m.ref_.map_for_device(m.asq_seg_.descriptor());
  auto acq_win = m.ref_.map_for_device(m.acq_seg_.descriptor());
  auto data_win = m.ref_.map_for_device(m.admin_data_seg_.descriptor());
  if (!asq_win || !acq_win || !data_win) {
    promise.set(Status(Errc::resource_exhausted, "no NTB windows for admin segments"));
    co_return;
  }
  m.asq_win_ = std::move(*asq_win);
  m.acq_win_ = std::move(*acq_win);
  m.admin_data_win_ = std::move(*data_win);

  // 6. CPU views of the admin rings: the SQ may live device-side; the CQ
  //    is direct for local DRAM, an HDM address when pooled.
  auto asq_map = sisci::Map::create(cluster, m.node_, m.asq_seg_.descriptor());
  auto acq_map = sisci::Map::create(cluster, m.node_, m.acq_seg_.descriptor());
  if (!asq_map || !acq_map) {
    promise.set((!asq_map ? asq_map.status() : acq_map.status()));
    co_return;
  }
  m.asq_cpu_map_ = std::move(*asq_map);
  m.acq_cpu_map_ = std::move(*acq_map);

  // 7. Program admin queue registers and enable.
  const std::uint32_t aqa = static_cast<std::uint32_t>(entries - 1) |
                            (static_cast<std::uint32_t>(entries - 1) << 16);
  (void)write_reg32(nvme::reg::kAqa, aqa);
  (void)write_reg64(nvme::reg::kAsq, m.asq_win_.device_addr());
  (void)write_reg64(nvme::reg::kAcq, m.acq_win_.device_addr());
  (void)write_reg32(nvme::reg::kCc,
                    nvme::kCcEnable | (m.cfg_.enable_wrr ? nvme::kCcAmsWrrBits : 0));
  for (int i = 0;; ++i) {
    auto csts = co_await fabric.read(cpu, m.bar_.addr() + nvme::reg::kCsts, 4);
    if (!csts) {
      promise.set(csts.status());
      co_return;
    }
    const auto v = load_pod<std::uint32_t>(*csts);
    if ((v & nvme::kCstsFatal) != 0) {
      promise.set(Status(Errc::unavailable, "controller fatal on enable"));
      co_return;
    }
    if ((v & nvme::kCstsReady) != 0) break;
    if (i >= kRegPollLimit) {
      promise.set(Status(Errc::timed_out, "controller did not become ready"));
      co_return;
    }
    co_await sim::delay(engine, kRegPollNs);
  }

  nvme::QueuePair::Config qc;
  qc.qid = 0;
  qc.sq_size = entries;
  qc.cq_size = entries;
  qc.sq_write_addr = m.asq_cpu_map_.addr();
  qc.cq_poll_addr = m.acq_cpu_map_.addr();  // hint guarantees it is pollable
  qc.sq_doorbell_addr = m.bar_.addr() + nvme::sq_doorbell_offset(0);
  qc.cq_doorbell_addr = m.bar_.addr() + nvme::cq_doorbell_offset(0);
  qc.cpu = cpu;
  m.admin_qp_ = std::make_unique<nvme::QueuePair>(fabric, qc);
  m.admin_lock_ = std::make_unique<sim::Semaphore>(engine, 1);

  // 8. Identify controller and namespace.
  auto ident = co_await m.submit_admin(
      nvme::make_identify(0, nvme::IdentifyCns::controller, 0, m.admin_data_win_.device_addr()));
  if (!ident) {
    promise.set(ident.status());
    co_return;
  }
  Bytes payload(4096);
  (void)m.admin_data_seg_.read(0, payload);
  const auto ctrl = nvme::parse_identify_controller(payload);

  auto ns = co_await m.submit_admin(
      nvme::make_identify(0, nvme::IdentifyCns::ns, 1, m.admin_data_win_.device_addr()));
  if (!ns) {
    promise.set(ns.status());
    co_return;
  }
  (void)m.admin_data_seg_.read(0, payload);
  const auto nsinfo = nvme::parse_identify_namespace(payload);

  // 9. Negotiate I/O queue count.
  auto feat = co_await m.submit_admin(
      nvme::make_set_num_queues(0, m.cfg_.requested_io_queues, m.cfg_.requested_io_queues));
  if (!feat) {
    promise.set(feat.status());
    co_return;
  }
  const auto nsqa = static_cast<std::uint16_t>((feat->dw0 & 0xFFFF) + 1);
  const auto ncqa = static_cast<std::uint16_t>((feat->dw0 >> 16) + 1);
  const std::uint16_t granted = std::min(nsqa, ncqa);

  // 9b. WRR mode: program the arbitration burst and class weights the
  // controller will spend per turn (Set Features / Arbitration).
  if (m.cfg_.enable_wrr) {
    auto arb = co_await m.submit_admin(nvme::make_set_arbitration(
        0, m.cfg_.arb_burst_log2, m.cfg_.wrr_low_weight, m.cfg_.wrr_medium_weight,
        m.cfg_.wrr_high_weight));
    if (!arb) {
      promise.set(arb.status());
      co_return;
    }
  }

  // 10. Done with privileged init: let clients share the device.
  if (Status st = m.ref_.downgrade_to_shared(); !st) {
    promise.set(st);
    co_return;
  }

  // 11. Publish the metadata segment.
  const auto nodes = static_cast<std::uint32_t>(fabric.host_count());
  // Every client CPU reads this segment; the substrate places it where that
  // works (NTB: manager-local DRAM mapped via LUTs, CXL: the shared pool).
  auto meta = cluster.create_segment_placed(m.node_, m.node_, /*cpu_access=*/true,
                                            /*device_access=*/false,
                                            m.cfg_.metadata_segment_id,
                                            metadata_segment_size(nodes));
  if (!meta) {
    promise.set(meta.status());
    co_return;
  }
  m.metadata_seg_ = std::move(*meta);

  m.header_.manager_node = m.node_;
  m.header_.device_id = m.device_id_;
  m.header_.capacity_blocks = nsinfo.size_blocks;
  m.header_.block_size = nsinfo.block_size;
  m.header_.max_transfer_bytes =
      static_cast<std::uint32_t>((1u << ctrl.mdts_pages_log2) * nvme::kPageSize);
  m.header_.max_queue_pairs = static_cast<std::uint16_t>(granted + 1);
  m.header_.granted_io_queues = granted;
  m.header_.mailbox_slots = nodes;
  m.header_.mailbox_offset = 4096;
  (void)m.metadata_seg_.write(0, as_bytes_of(m.header_));
  // v4: publish the QoS policy table so clients can see what a grant
  // request will be judged against.
  (void)m.metadata_seg_.write(kQosPolicyOffset, as_bytes_of(m.cfg_.qos_policy));

  m.qid_used_.assign(granted + 1u, false);
  m.qid_used_[0] = true;  // admin
  m.qid_owner_.assign(granted + 1u, 0);
  m.qid_created_at_.assign(granted + 1u, 0);
  m.qid_sq_addr_.assign(granted + 1u, 0);
  m.qid_shares_.assign(granted + 1u, {});
  m.qid_sq_size_.assign(granted + 1u, 0);

  // v5: persist where the admin rings live and their cursors so a standby
  // can continue them without a controller reset (AQA/ASQ/ACQ are latched
  // at enable — rebuilding them would kill every client's I/O queues).
  m.journal_.asq_node = m.asq_seg_.node();
  m.journal_.asq_segment = m.asq_seg_.id();
  m.journal_.acq_node = m.acq_seg_.node();
  m.journal_.acq_segment = m.acq_seg_.id();
  m.journal_.entries = entries;
  m.journal_ready_ = true;
  m.journal_admin_ring();
  if (m.cfg_.lease_duration_ns > 0) {
    m.epoch_ = 1;
    m.publish_lease();
  }

  if (Status st = m.service_.set_device_metadata(m.device_id_, m.metadata_seg_.node(),
                                                 m.cfg_.metadata_segment_id);
      !st) {
    promise.set(st);
    co_return;
  }

  m.serving_ = true;
  m.mailbox_server(m.stop_);
  if (m.cfg_.lease_duration_ns > 0) m.lease_task(m.stop_);
  if (m.cfg_.client_heartbeat_timeout_ns > 0) m.reaper_task(m.stop_);
  if (m.cfg_.csts_poll_interval_ns > 0) m.watchdog_task(m.stop_);
  if (m.cfg_.scrub_interval_ns > 0) m.scrub_task(m.stop_);
  if (fault::enabled()) {
    Manager* raw = self.get();
    m.crash_token_ = fault::Injector::global().register_crash_handler(
        m.node_, [raw]() { raw->crash(); });
  }
  NVS_LOG(info, "manager") << "serving device " << m.device_id_ << " from node " << m.node_
                           << " with " << granted << " IO queue pairs";
  promise.set(std::move(self));
}

sim::Future<Result<CompletionEntry>> Manager::submit_admin(SubmissionEntry entry) {
  sim::Promise<Result<CompletionEntry>> promise(engine());
  admin_task(entry, promise);
  return promise.future();
}

sim::Task Manager::admin_task(SubmissionEntry entry,
                              sim::Promise<Result<CompletionEntry>> promise) {
  sim::Engine& eng = engine();
  co_await admin_lock_->acquire();
  auto cid = admin_qp_->push(entry);
  if (!cid) {
    admin_lock_->release();
    promise.set(cid.status());
    co_return;
  }
  // Journal the SQ cursor before the doorbell: dying in between leaves a
  // pushed-but-unfetched entry that the successor simply overwrites.
  journal_admin_ring();
  co_await sim::delay(eng, cfg_.costs.doorbell_ns);
  (void)admin_qp_->ring_sq_doorbell();

  const sim::Time deadline = eng.now() + kAdminTimeoutNs;
  for (;;) {
    if (auto cqe = admin_qp_->poll()) {
      (void)admin_qp_->ring_cq_doorbell();
      journal_admin_ring();
      admin_lock_->release();
      promise.set(*cqe);  // NVMe-level failures are reported via cqe->status()
      co_return;
    }
    if (eng.now() >= deadline) {
      admin_lock_->release();
      promise.set(Status(Errc::timed_out, "admin command timed out"));
      co_return;
    }
    co_await sim::delay(eng, std::max<sim::Duration>(cfg_.costs.poll_interval_ns, 200));
  }
}

sim::Task Manager::mailbox_server(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  for (;;) {
    if (*stop) co_return;
    bool worked = false;
    const std::uint32_t slots = header_.mailbox_slots;
    for (std::uint32_t i = 0; i < slots; ++i) {
      MboxSlot slot;
      if (Status st = metadata_seg_.read(mbox_slot_offset(header_, i),
                                         as_writable_bytes_of(slot));
          !st) {
        continue;
      }
      if (slot.state != static_cast<std::uint32_t>(MboxState::request)) continue;
      worked = true;
      co_await handle_slot_await(i, slot, stop);
      if (*stop) co_return;
    }
    (void)worked;
    co_await sim::delay(eng, cfg_.mailbox_poll_ns);
    if (*stop) co_return;
  }
}

// handle_slot_task is awaited inline from the server loop (via the future
// wrapper) so one request fully completes before the next slot is scanned.
sim::Future<bool> Manager::handle_slot_await(std::uint32_t slot_index, MboxSlot slot,
                                             std::shared_ptr<bool> stop) {
  sim::Promise<bool> done(engine());
  handle_slot_task(slot_index, slot, std::move(stop), done);
  return done.future();
}

sim::Task Manager::handle_slot_task(std::uint32_t slot_index, MboxSlot slot,
                                    std::shared_ptr<bool> stop, sim::Promise<bool> done) {
  ++stats_.mailbox_requests;
  co_await sim::delay(engine(), cfg_.mailbox_service_ns);
  if (*stop) {
    done.set(false);
    co_return;
  }

  auto respond = [&](Errc errc, std::uint16_t qid, std::uint16_t nvme_status) {
    slot.status = static_cast<std::uint32_t>(errc);
    slot.qid_out = qid;
    slot.nvme_status = nvme_status;
    slot.epoch = static_cast<std::uint32_t>(epoch_);  // v5: fenceable response
    slot.state = static_cast<std::uint32_t>(MboxState::done);
    (void)metadata_seg_.write(mbox_slot_offset(header_, slot_index), as_bytes_of(slot));
    if (errc != Errc::ok) ++stats_.request_errors;
  };

  switch (static_cast<MboxOp>(slot.op)) {
    case MboxOp::ping:
      respond(Errc::ok, 0, 0);
      break;
    case MboxOp::create_qp: {
      if (slot.sq_size < 2 || slot.cq_size < 2 || slot.sq_device_addr == 0 ||
          slot.cq_device_addr == 0) {
        respond(Errc::invalid_argument, 0, 0);
        break;
      }
      if (!grant_qos(slot)) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      // Idempotent re-serve: a previous manager may have created this
      // client's queues and died before responding; the retry arrives with
      // the same (deterministic) queue addresses, so reclaim the overlap
      // before granting afresh.
      if (has_stale_overlap(slot.client_node, slot.sq_device_addr, slot.sq_device_addr + 1)) {
        co_await reclaim_stale_await(slot.client_node, slot.sq_device_addr,
                                     slot.sq_device_addr + 1);
        if (*stop) {
          done.set(false);
          co_return;
        }
      }
      // Pick a free queue id.
      std::uint16_t qid = 0;
      for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
        if (!qid_used_[q]) {
          qid = q;
          break;
        }
      }
      if (qid == 0) {
        respond(Errc::resource_exhausted, 0, 0);
        break;
      }
      // Write-ahead intent (v5): if we die between here and the active
      // flip, a takeover rolls the half-made grant back.
      write_owner_entry(qid, make_owner_entry(slot, slot.sq_device_addr, slot.cq_device_addr,
                                              QpOwnerState::pending, engine().now()));
      auto cq = co_await submit_admin(
          nvme::make_create_io_cq(0, qid, slot.cq_size, slot.cq_device_addr,
                                  /*irq_enable=*/false, 0));
      if (*stop) {
        done.set(false);
        co_return;
      }
      if (!cq || !cq->ok()) {
        clear_owner_entry(qid);
        respond(cq ? Errc::io_error : cq.status().code(), 0, cq ? cq->status() : 0);
        break;
      }
      auto sq = co_await submit_admin(nvme::make_create_io_sq(
          0, qid, slot.sq_size, slot.sq_device_addr, qid, sq_priority(slot)));
      if (*stop) {
        done.set(false);
        co_return;
      }
      if (!sq || !sq->ok()) {
        (void)co_await submit_admin(nvme::make_delete_io_cq(0, qid));
        clear_owner_entry(qid);
        respond(sq ? Errc::io_error : sq.status().code(), 0, sq ? sq->status() : 0);
        break;
      }
      qid_used_[qid] = true;
      qid_owner_[qid] = slot.client_node;
      qid_created_at_[qid] = engine().now();
      qid_sq_addr_[qid] = slot.sq_device_addr;
      qid_sq_size_[qid] = slot.sq_size;
      write_owner_entry(qid, make_owner_entry(slot, slot.sq_device_addr, slot.cq_device_addr,
                                              QpOwnerState::active, qid_created_at_[qid]));
      ++stats_.qps_created;
      NVS_LOG(info, "manager") << "created QP " << qid << " for node " << slot.client_node;
      respond(Errc::ok, qid, 0);
      break;
    }
    case MboxOp::delete_qp: {
      const std::uint16_t qid = slot.qid_in;
      if (qid == 0 || qid >= qid_used_.size() || !qid_used_[qid] ||
          qid_owner_[qid] != slot.client_node) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      auto sq = co_await submit_admin(nvme::make_delete_io_sq(0, qid));
      auto cq = co_await submit_admin(nvme::make_delete_io_cq(0, qid));
      if (*stop) {
        done.set(false);
        co_return;
      }
      if (!sq || !sq->ok() || !cq || !cq->ok()) {
        respond(Errc::io_error, 0, 0);
        break;
      }
      qid_used_[qid] = false;
      qid_owner_[qid] = 0;
      qid_created_at_[qid] = 0;
      qid_sq_addr_[qid] = 0;
      release_shares(qid);
      clear_owner_entry(qid);
      ++stats_.qps_deleted;
      respond(Errc::ok, qid, 0);
      break;
    }
    case MboxOp::create_qp_batch: {
      // Multi-channel grant: one pair per channel, SQ/CQ bases advancing by
      // the client's strides. All-or-nothing — a mid-batch failure deletes
      // what this batch already created before responding.
      const std::uint16_t count = slot.qp_count;
      if (count == 0 || count > kMaxBatchQps || slot.sq_size < 2 || slot.cq_size < 2 ||
          slot.sq_device_addr == 0 || slot.cq_device_addr == 0 ||
          (count > 1 && (slot.sq_stride == 0 || slot.cq_stride == 0))) {
        respond(Errc::invalid_argument, 0, 0);
        break;
      }
      // One QoS grant covers the whole batch: every channel shares the class.
      if (!grant_qos(slot)) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      // Idempotent re-serve across the whole batch's SQ address range.
      const std::uint64_t batch_hi =
          slot.sq_device_addr +
          (count > 1 ? static_cast<std::uint64_t>(count - 1) * slot.sq_stride : 0) + 1;
      if (has_stale_overlap(slot.client_node, slot.sq_device_addr, batch_hi)) {
        co_await reclaim_stale_await(slot.client_node, slot.sq_device_addr, batch_hi);
        if (*stop) {
          done.set(false);
          co_return;
        }
      }
      std::uint16_t created = 0;
      Errc errc = Errc::ok;
      std::uint16_t bad_status = 0;
      while (created < count) {
        std::uint16_t qid = 0;
        for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
          if (!qid_used_[q]) {
            qid = q;
            break;
          }
        }
        if (qid == 0) {
          errc = Errc::resource_exhausted;
          break;
        }
        const std::uint64_t cq_base =
            slot.cq_device_addr + static_cast<std::uint64_t>(created) * slot.cq_stride;
        const std::uint64_t sq_base =
            slot.sq_device_addr + static_cast<std::uint64_t>(created) * slot.sq_stride;
        write_owner_entry(qid, make_owner_entry(slot, sq_base, cq_base, QpOwnerState::pending,
                                                engine().now()));
        auto cq = co_await submit_admin(nvme::make_create_io_cq(0, qid, slot.cq_size, cq_base,
                                                                /*irq_enable=*/false, 0));
        if (*stop) {
          done.set(false);
          co_return;
        }
        if (!cq || !cq->ok()) {
          clear_owner_entry(qid);
          errc = cq ? Errc::io_error : cq.status().code();
          bad_status = cq ? cq->status() : 0;
          break;
        }
        auto sq = co_await submit_admin(
            nvme::make_create_io_sq(0, qid, slot.sq_size, sq_base, qid, sq_priority(slot)));
        if (*stop) {
          done.set(false);
          co_return;
        }
        if (!sq || !sq->ok()) {
          (void)co_await submit_admin(nvme::make_delete_io_cq(0, qid));
          clear_owner_entry(qid);
          errc = sq ? Errc::io_error : sq.status().code();
          bad_status = sq ? sq->status() : 0;
          break;
        }
        qid_used_[qid] = true;
        qid_owner_[qid] = slot.client_node;
        qid_created_at_[qid] = engine().now();
        qid_sq_addr_[qid] = sq_base;
        qid_sq_size_[qid] = slot.sq_size;
        write_owner_entry(qid, make_owner_entry(slot, sq_base, cq_base, QpOwnerState::active,
                                                qid_created_at_[qid]));
        ++stats_.qps_created;
        slot.qids[created] = qid;
        ++created;
      }
      if (errc != Errc::ok) {
        for (std::uint16_t c = 0; c < created; ++c) {
          const std::uint16_t qid = slot.qids[c];
          (void)co_await submit_admin(nvme::make_delete_io_sq(0, qid));
          (void)co_await submit_admin(nvme::make_delete_io_cq(0, qid));
          qid_used_[qid] = false;
          qid_owner_[qid] = 0;
          qid_created_at_[qid] = 0;
          qid_sq_addr_[qid] = 0;
          release_shares(qid);
          clear_owner_entry(qid);
          ++stats_.qps_deleted;
          slot.qids[c] = 0;
        }
        if (*stop) {
          done.set(false);
          co_return;
        }
        respond(errc, 0, bad_status);
        break;
      }
      NVS_LOG(info, "manager") << "created " << count << " QPs for node "
                               << slot.client_node;
      respond(Errc::ok, slot.qids[0], 0);
      break;
    }
    case MboxOp::delete_qp_batch: {
      const std::uint16_t count = slot.qp_count;
      if (count == 0 || count > kMaxBatchQps) {
        respond(Errc::invalid_argument, 0, 0);
        break;
      }
      // Best effort: every owned qid in the list is attempted so one stale
      // entry cannot strand the rest; the first failure is reported.
      Errc errc = Errc::ok;
      for (std::uint16_t c = 0; c < count; ++c) {
        const std::uint16_t qid = slot.qids[c];
        if (qid == 0 || qid >= qid_used_.size() || !qid_used_[qid] ||
            qid_owner_[qid] != slot.client_node) {
          if (errc == Errc::ok) errc = Errc::permission_denied;
          continue;
        }
        auto sq = co_await submit_admin(nvme::make_delete_io_sq(0, qid));
        auto cq = co_await submit_admin(nvme::make_delete_io_cq(0, qid));
        if (*stop) {
          done.set(false);
          co_return;
        }
        if (!sq || !sq->ok() || !cq || !cq->ok()) {
          if (errc == Errc::ok) errc = Errc::io_error;
          continue;
        }
        qid_used_[qid] = false;
        qid_owner_[qid] = 0;
        qid_created_at_[qid] = 0;
        qid_sq_addr_[qid] = 0;
        release_shares(qid);
        clear_owner_entry(qid);
        ++stats_.qps_deleted;
      }
      respond(errc, 0, 0);
      break;
    }
    case MboxOp::create_share: {
      // v6: subdivide an owned pair's CID space for a tenant. No admin
      // command is involved — the controller never sees shares; they are
      // pure manager bookkeeping the owning client enforces at push time.
      const std::uint16_t qid = slot.qid_in;
      if (qid == 0 || qid >= qid_used_.size() || !qid_used_[qid] ||
          qid_owner_[qid] != slot.client_node) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      const std::uint16_t sq_size = qid_sq_size_[qid];
      if (slot.share_cid_count == 0 || slot.share_cid_floor >= sq_size) {
        respond(Errc::invalid_argument, 0, 0);
        break;
      }
      // Per-share QoS rides the same policy table as whole-pair grants.
      if (!grant_qos(slot)) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      auto& shares = qid_shares_[qid];
      // Idempotent per tenant: a re-request (say, after the client lost a
      // response) releases the tenant's old range before placing afresh.
      for (auto it = shares.begin(); it != shares.end(); ++it) {
        if (it->tenant == slot.share_tenant) {
          shares.erase(it);
          ++stats_.shares_released;
          break;
        }
      }
      // First-fit gap scan above the owner's reserved floor. `shares` is
      // sorted by lo, so walking it advances the cursor past every taken
      // range.
      const std::uint32_t count = slot.share_cid_count;
      std::uint32_t lo = slot.share_cid_floor;
      bool placed = false;
      for (const ShareEntry& s : shares) {
        if (s.hi <= lo) continue;
        if (lo + count <= s.lo) {
          placed = true;
          break;
        }
        lo = s.hi;
      }
      if (!placed && lo + count > sq_size) {
        respond(Errc::resource_exhausted, 0, 0);
        break;
      }
      ShareEntry entry{slot.share_tenant, static_cast<std::uint16_t>(lo),
                       static_cast<std::uint16_t>(lo + count)};
      shares.insert(std::upper_bound(shares.begin(), shares.end(), entry,
                                     [](const ShareEntry& a, const ShareEntry& b) {
                                       return a.lo < b.lo;
                                     }),
                    entry);
      ++stats_.shares_granted;
      slot.share_cid_lo = entry.lo;
      slot.share_cid_hi = entry.hi;
      NVS_LOG(info, "manager") << "granted tenant " << slot.share_tenant << " CIDs ["
                               << entry.lo << ", " << entry.hi << ") of QP " << qid;
      respond(Errc::ok, qid, 0);
      break;
    }
    case MboxOp::delete_share: {
      const std::uint16_t qid = slot.qid_in;
      if (qid == 0 || qid >= qid_used_.size() || !qid_used_[qid] ||
          qid_owner_[qid] != slot.client_node) {
        respond(Errc::permission_denied, 0, 0);
        break;
      }
      auto& shares = qid_shares_[qid];
      bool found = false;
      for (auto it = shares.begin(); it != shares.end(); ++it) {
        if (it->tenant == slot.share_tenant) {
          slot.share_cid_lo = it->lo;
          slot.share_cid_hi = it->hi;
          shares.erase(it);
          found = true;
          break;
        }
      }
      if (!found) {
        respond(Errc::not_found, 0, 0);
        break;
      }
      ++stats_.shares_released;
      respond(Errc::ok, qid, 0);
      break;
    }
    default:
      respond(Errc::protocol_error, 0, 0);
      break;
  }
  done.set(true);
}

bool Manager::grant_qos(MboxSlot& slot) const {
  // Demote toward lower priority until an allowed class admits the client
  // (urgent = 0 down to low = 3); a client never gets promoted above what
  // it asked for.
  int cls = slot.qos_class & 0x3;
  while (cls <= 3 && cfg_.qos_policy.classes[cls].allowed == 0) ++cls;
  if (cls > 3) return false;
  const QosPolicyEntry& pol = cfg_.qos_policy.classes[cls];
  slot.qos_granted_class = static_cast<std::uint8_t>(cls);
  // Budget semantics: a zero request asks for the class default (the cap);
  // a zero cap means the class is unpaced unless the client self-limits.
  auto clamp = [](std::uint32_t requested, std::uint32_t cap) -> std::uint32_t {
    if (cap == 0) return requested;
    if (requested == 0) return cap;
    return std::min(requested, cap);
  };
  slot.qos_granted_iops = clamp(slot.qos_iops, pol.max_iops);
  slot.qos_granted_bytes_per_s = clamp(slot.qos_bytes_per_s, pol.max_bytes_per_s);
  return true;
}

void Manager::release_shares(std::uint16_t qid) {
  if (qid >= qid_shares_.size()) return;
  stats_.shares_released += qid_shares_[qid].size();
  qid_shares_[qid].clear();
  qid_sq_size_[qid] = 0;
}

// --- fault recovery -------------------------------------------------------------------

// Orphaned-queue-pair reaper (docs/faults.md): a crashed client leaves its
// queue pair allocated forever — it never sends delete_qp. Clients post a
// liveness heartbeat into their mailbox slot; when a pair's owner has been
// silent longer than the timeout (measured from its last beat, or from the
// pair's creation as a grace period before the first beat), the manager
// deletes the pair with the same admin commands a voluntary detach uses.
sim::Task Manager::reaper_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  for (;;) {
    co_await sim::delay(eng, cfg_.reaper_interval_ns);
    if (*stop) co_return;
    // Post-takeover grace: survivors are still re-resolving the new mailbox
    // location; judging their silence now would mis-reap live clients.
    if (takeover_time_ != 0 && eng.now() < takeover_time_ + cfg_.takeover_grace_ns) continue;
    for (std::uint16_t qid = 1; qid < qid_used_.size(); ++qid) {
      if (!qid_used_[qid]) continue;
      const std::uint32_t owner = qid_owner_[qid];
      MboxSlot slot;
      if (owner >= header_.mailbox_slots ||
          !metadata_seg_.read(mbox_slot_offset(header_, owner), as_writable_bytes_of(slot))) {
        continue;
      }
      const sim::Time last =
          std::max(static_cast<sim::Time>(slot.heartbeat_ns), qid_created_at_[qid]);
      if (eng.now() - last <= cfg_.client_heartbeat_timeout_ns) continue;
      NVS_LOG(warn, "manager") << "reaping orphaned QP " << qid << ": node " << owner
                               << " silent for " << (eng.now() - last) << " ns";
      auto sq = co_await submit_admin(nvme::make_delete_io_sq(0, qid));
      auto cq = co_await submit_admin(nvme::make_delete_io_cq(0, qid));
      if (*stop) co_return;
      if ((sq && sq->ok()) || (cq && cq->ok())) {
        qid_used_[qid] = false;
        qid_owner_[qid] = 0;
        qid_created_at_[qid] = 0;
        qid_sq_addr_[qid] = 0;
        release_shares(qid);
        clear_owner_entry(qid);
        ++stats_.qps_reaped;
      }
    }
  }
}

// CSTS watchdog (docs/faults.md): detects a fatal controller status (CFS)
// and runs the full reset + re-init sequence. Every client queue pair dies
// with the reset; the bookkeeping is cleared so clients can re-create their
// pairs through the mailbox once their own deadlines notice the loss.
sim::Task Manager::watchdog_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  fabric::Substrate& fab = fabric();
  const pcie::Initiator cpu = fab.cpu(node_);
  auto write_reg32 = [&](std::uint64_t off, std::uint32_t v) {
    Bytes b(4);
    store_pod(b, v);
    return fab.post_write(cpu, bar_.addr() + off, std::move(b)).status();
  };
  auto write_reg64 = [&](std::uint64_t off, std::uint64_t v) {
    Bytes b(8);
    store_pod(b, v);
    return fab.post_write(cpu, bar_.addr() + off, std::move(b)).status();
  };
  for (;;) {
    co_await sim::delay(eng, cfg_.csts_poll_interval_ns);
    if (*stop) co_return;
    auto csts = co_await fab.read(cpu, bar_.addr() + nvme::reg::kCsts, 4);
    if (*stop) co_return;
    if (!csts) continue;  // registers unreachable (link down); retry next tick
    if ((load_pod<std::uint32_t>(*csts) & nvme::kCstsFatal) == 0) continue;

    const sim::Time begin = eng.now();
    NVS_LOG(warn, "manager") << "controller reports fatal status; resetting";
    ++stats_.ctrl_resets;
    // Serialize against in-flight admin commands; their deadlines release
    // the lock even though the dead controller never answers them.
    co_await admin_lock_->acquire();

    if (adopted_ring_) {
      // A promoted standby still rides its predecessor's admin rings. The
      // reset below re-latches AQA/ASQ/ACQ anyway, so this is the moment to
      // switch to fresh local segments and own the rings from here on.
      auto asq_seg = service_.create_segment_hinted(node_, cfg_.private_segment_base + 0,
                                                    cfg_.admin_entries * 64ull, device_id_,
                                                    smartio::AccessHint::sq());
      auto acq_seg = service_.create_segment_hinted(node_, cfg_.private_segment_base + 1,
                                                    cfg_.admin_entries * 16ull, device_id_,
                                                    smartio::AccessHint::cq());
      if (!asq_seg || !acq_seg) {
        NVS_LOG(error, "manager") << "cannot re-home adopted admin rings; retrying on "
                                     "next fatal";
        admin_lock_->release();
        continue;
      }
      auto asq_win = ref_.map_for_device(asq_seg->descriptor());
      auto acq_win = ref_.map_for_device(acq_seg->descriptor());
      auto asq_map = sisci::Map::create(service_.cluster(), node_, asq_seg->descriptor());
      auto acq_map = sisci::Map::create(service_.cluster(), node_, acq_seg->descriptor());
      if (!asq_win || !acq_win || !asq_map || !acq_map) {
        NVS_LOG(error, "manager") << "no fabric windows to re-home adopted admin rings";
        admin_lock_->release();
        continue;
      }
      asq_seg_ = std::move(*asq_seg);
      acq_seg_ = std::move(*acq_seg);
      asq_win_ = std::move(*asq_win);
      acq_win_ = std::move(*acq_win);
      asq_cpu_map_ = std::move(*asq_map);
      acq_cpu_map_ = std::move(*acq_map);
      journal_.asq_node = asq_seg_.node();
      journal_.asq_segment = asq_seg_.id();
      journal_.acq_node = acq_seg_.node();
      journal_.acq_segment = acq_seg_.id();
      journal_.entries = cfg_.admin_entries;
      adopted_ring_ = false;
    }

    // CC.EN=0 clears CFS and tears down every queue, then re-run the
    // enable sequence on zeroed admin queue memory.
    (void)write_reg32(nvme::reg::kCc, 0);
    bool down = false;
    for (int i = 0; i < kRegPollLimit; ++i) {
      auto v = co_await fab.read(cpu, bar_.addr() + nvme::reg::kCsts, 4);
      if (v && (load_pod<std::uint32_t>(*v) & nvme::kCstsReady) == 0) {
        down = true;
        break;
      }
      co_await sim::delay(eng, kRegPollNs);
    }
    (void)asq_seg_.write(0, Bytes(asq_seg_.size(), std::byte{0}));
    (void)acq_seg_.write(0, Bytes(acq_seg_.size(), std::byte{0}));
    const std::uint16_t entries = cfg_.admin_entries;
    const std::uint32_t aqa = static_cast<std::uint32_t>(entries - 1) |
                              (static_cast<std::uint32_t>(entries - 1) << 16);
    (void)write_reg32(nvme::reg::kAqa, aqa);
    (void)write_reg64(nvme::reg::kAsq, asq_win_.device_addr());
    (void)write_reg64(nvme::reg::kAcq, acq_win_.device_addr());
    (void)write_reg32(nvme::reg::kCc,
                      nvme::kCcEnable | (cfg_.enable_wrr ? nvme::kCcAmsWrrBits : 0));
    bool ready = false;
    for (int i = 0; i < kRegPollLimit; ++i) {
      auto v = co_await fab.read(cpu, bar_.addr() + nvme::reg::kCsts, 4);
      if (v && (load_pod<std::uint32_t>(*v) & nvme::kCstsReady) != 0) {
        ready = true;
        break;
      }
      co_await sim::delay(eng, kRegPollNs);
    }
    // The reset wiped the doorbell state; the QP wrapper must restart from
    // index zero as well.
    nvme::QueuePair::Config qc;
    qc.qid = 0;
    qc.sq_size = entries;
    qc.cq_size = entries;
    qc.sq_write_addr = asq_cpu_map_.addr();
    qc.cq_poll_addr = acq_cpu_map_.addr();
    qc.sq_doorbell_addr = bar_.addr() + nvme::sq_doorbell_offset(0);
    qc.cq_doorbell_addr = bar_.addr() + nvme::cq_doorbell_offset(0);
    qc.cpu = cpu;
    admin_qp_ = std::make_unique<nvme::QueuePair>(fab, qc);
    journal_admin_ring();
    admin_lock_->release();

    if (*stop) co_return;
    if (!down || !ready) {
      NVS_LOG(error, "manager") << "controller reset did not complete (down=" << down
                                << " ready=" << ready << "); will retry on next fatal";
      continue;
    }

    // Every I/O queue died with the reset: forget them so clients can
    // re-create their pairs (their delete_qp for a stale qid is refused,
    // which they ignore).
    for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
      qid_used_[q] = false;
      qid_owner_[q] = 0;
      qid_created_at_[q] = 0;
      qid_sq_addr_[q] = 0;
      release_shares(q);
      clear_owner_entry(q);
    }
    // Re-negotiate the I/O queue count (required before queue creation).
    auto feat = co_await submit_admin(nvme::make_set_num_queues(
        0, cfg_.requested_io_queues, cfg_.requested_io_queues));
    if (*stop) co_return;
    if (!feat || !(*feat).ok()) {
      NVS_LOG(error, "manager") << "set_num_queues after reset failed";
      continue;
    }
    // The reset also wiped the arbitration weights; re-program them before
    // clients re-create their prioritized queues.
    if (cfg_.enable_wrr) {
      (void)co_await submit_admin(nvme::make_set_arbitration(
          0, cfg_.arb_burst_log2, cfg_.wrr_low_weight, cfg_.wrr_medium_weight,
          cfg_.wrr_high_weight));
      if (*stop) co_return;
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
      tracer.record(t, obs::Track::controller, obs::Phase::recovery, begin, eng.now(), 0);
      tracer.end_trace(t, eng.now());
    }
    NVS_LOG(info, "manager") << "controller recovered in " << (eng.now() - begin) << " ns";
  }
}

// Background integrity scrubber (docs/MODEL.md §7): walks the namespace
// with vendor scrub commands, one range per tick, making the controller
// verify its stored protection tuples against the stored data. Detection
// only — a mismatch is surfaced through counters and a recovery-phase trace
// span; repair is the writer's job (re-write or deallocate the range).
sim::Task Manager::scrub_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  std::uint64_t cursor = 0;
  for (;;) {
    co_await sim::delay(eng, cfg_.scrub_interval_ns);
    if (*stop) co_return;
    const std::uint64_t capacity = header_.capacity_blocks;
    if (capacity == 0 || cfg_.scrub_blocks_per_cmd == 0) continue;
    if (cursor >= capacity) cursor = 0;
    const auto span = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(cfg_.scrub_blocks_per_cmd, capacity - cursor));
    const sim::Time begin = eng.now();
    auto cqe = co_await submit_admin(nvme::make_vendor_scrub(0, 1, cursor, span));
    if (*stop) co_return;
    // Unreachable or resetting controller: leave the cursor so the next
    // tick retries the same range.
    if (!cqe || (!(*cqe).ok() && (*cqe).status() != nvme::kScGuardCheckError)) continue;
    if ((*cqe).dw0 != 0) {
      stats_.scrub_mismatches += (*cqe).dw0;
      NVS_LOG(warn, "manager") << "scrub found " << (*cqe).dw0
                               << " mismatching blocks in [" << cursor << ", "
                               << (cursor + span) << ")";
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
        tracer.record(t, obs::Track::controller, obs::Phase::recovery, begin, eng.now(), 0);
        tracer.end_trace(t, eng.now());
      }
    }
    cursor += span;
    if (cursor >= capacity) {
      cursor = 0;
      ++stats_.scrub_sweeps;
    }
  }
}

// --- manager high availability (docs/MODEL.md §10) -----------------------------------

void Manager::publish_lease() {
  ManagerLease lease;
  lease.epoch = epoch_;
  lease.expires_at_ns = engine().now() + cfg_.lease_duration_ns;
  lease.manager_node = node_;
  lease.state = static_cast<std::uint32_t>(LeaseState::active);
  (void)metadata_seg_.write(kLeaseOffset, as_bytes_of(lease));
}

// Lease renewal: local-memory writes on a slow clock — nothing here touches
// the I/O hot path. The lease is read back before renewing: a foreign epoch
// means a standby fenced us while we could not renew, and the only correct
// move is to stop serving immediately.
sim::Task Manager::lease_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  const auto renew = std::max<sim::Duration>(cfg_.lease_duration_ns / 4, 1);
  for (;;) {
    co_await sim::delay(eng, renew);
    if (*stop) co_return;
    ManagerLease lease;
    if (metadata_seg_.read(kLeaseOffset, as_writable_bytes_of(lease)) &&
        lease.epoch != epoch_) {
      fence(lease.epoch);
      co_return;
    }
    publish_lease();
    ++stats_.lease_renewals;
  }
}

void Manager::fence(std::uint64_t foreign_epoch) {
  NVS_LOG(warn, "manager") << "node " << node_ << " fenced: epoch " << foreign_epoch
                           << " supersedes " << epoch_ << "; ceasing service";
  ++stats_.fencings;
  serving_ = false;
  *stop_ = true;
  // No clear_device_metadata: the successor already re-pointed the
  // registration (shutdown()'s ownership guard keeps us off it later too).
}

void Manager::journal_admin_ring() {
  if (!journal_ready_) return;  // early bring-up: metadata segment not yet created
  const auto rs = admin_qp_->ring_state();
  journal_.sq_tail = rs.sq_tail;
  journal_.cq_head = rs.cq_head;
  journal_.next_cid = rs.next_cid;
  journal_.phase = rs.expected_phase ? 1u : 0u;
  (void)metadata_seg_.write(kAdminJournalOffset, as_bytes_of(journal_));
}

void Manager::write_owner_entry(std::uint16_t qid, const QpOwnerEntry& e) {
  if (!journal_ready_ || qid >= kOwnerTableEntries) return;
  (void)metadata_seg_.write(owner_entry_offset(qid), as_bytes_of(e));
}

bool Manager::has_stale_overlap(std::uint32_t client_node, std::uint64_t lo,
                                std::uint64_t hi) const {
  for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
    if (qid_used_[q] && qid_owner_[q] == client_node && qid_sq_addr_[q] >= lo &&
        qid_sq_addr_[q] < hi) {
      return true;
    }
  }
  return false;
}

sim::Future<bool> Manager::reclaim_stale_await(std::uint32_t client_node, std::uint64_t lo,
                                               std::uint64_t hi) {
  sim::Promise<bool> done(engine());
  reclaim_stale_task(client_node, lo, hi, done);
  return done.future();
}

sim::Task Manager::reclaim_stale_task(std::uint32_t client_node, std::uint64_t lo,
                                      std::uint64_t hi, sim::Promise<bool> done) {
  for (std::uint16_t q = 1; q < qid_used_.size(); ++q) {
    if (!qid_used_[q] || qid_owner_[q] != client_node) continue;
    if (qid_sq_addr_[q] < lo || qid_sq_addr_[q] >= hi) continue;
    NVS_LOG(warn, "manager") << "reclaiming stale QP " << q << " of node " << client_node
                             << " (overlaps a re-served grant request)";
    (void)co_await submit_admin(nvme::make_delete_io_sq(0, q));
    (void)co_await submit_admin(nvme::make_delete_io_cq(0, q));
    qid_used_[q] = false;
    qid_owner_[q] = 0;
    qid_created_at_[q] = 0;
    qid_sq_addr_[q] = 0;
    release_shares(q);
    clear_owner_entry(q);
    ++stats_.qps_deleted;
  }
  done.set(true);
}

sim::Future<Result<std::unique_ptr<Manager>>> Manager::start_standby(smartio::Service& service,
                                                                     smartio::NodeId node,
                                                                     smartio::DeviceId device,
                                                                     Config cfg) {
  sim::Promise<Result<std::unique_ptr<Manager>>> promise(service.cluster().engine());
  auto self = std::unique_ptr<Manager>(new Manager(service, node, device, cfg));
  self->standby_ = true;
  standby_init_task(std::move(self), promise);
  return promise.future();
}

sim::Task Manager::standby_init_task(std::unique_ptr<Manager> self,
                                     sim::Promise<Result<std::unique_ptr<Manager>>> promise) {
  Manager& m = *self;
  sim::Engine& engine = m.engine();
  fabric::Substrate& fabric = m.fabric();
  sisci::Cluster& cluster = m.service_.cluster();
  const pcie::Initiator cpu = fabric.cpu(m.node_);

  if (m.cfg_.lease_duration_ns == 0) {
    promise.set(Status(Errc::invalid_argument,
                       "standby requires lease_duration_ns > 0 (it must publish its own "
                       "lease after takeover)"));
    co_return;
  }

  // Shared claim only: the standby never resets or reconfigures the device
  // while someone else is the manager. Retries ride out the active
  // manager's exclusive-init window.
  for (int attempt = 0;; ++attempt) {
    auto ref = m.service_.acquire(m.device_id_, smartio::AcquireMode::shared);
    if (ref) {
      m.ref_ = std::move(*ref);
      break;
    }
    if (attempt >= kStandbyRetryLimit) {
      promise.set(ref.status());
      co_return;
    }
    co_await sim::delay(engine, kStandbyRetryNs);
  }

  auto bar = m.ref_.map_bar(m.node_, 0);
  if (!bar) {
    promise.set(bar.status());
    co_return;
  }
  m.bar_ = std::move(*bar);

  // Find and map the active manager's metadata segment.
  std::pair<smartio::NodeId, sisci::SegmentId> loc;
  for (int attempt = 0;; ++attempt) {
    auto meta = m.service_.device_metadata(m.device_id_);
    if (meta) {
      loc = *meta;
      break;
    }
    if (attempt >= kStandbyRetryLimit) {
      promise.set(meta.status());
      co_return;
    }
    co_await sim::delay(engine, kStandbyRetryNs);
  }
  auto remote = cluster.connect(loc.first, loc.second);
  if (!remote) {
    promise.set(remote.status());
    co_return;
  }
  auto map = sisci::Map::create(cluster, m.node_, *remote);
  if (!map) {
    promise.set(map.status());
    co_return;
  }
  m.watched_meta_map_ = std::move(*map);
  m.watched_node_ = loc.first;
  m.watched_seg_id_ = loc.second;

  auto raw = co_await fabric.read(cpu, m.watched_meta_map_.addr(), sizeof(MetadataHeader));
  if (!raw) {
    promise.set(raw.status());
    co_return;
  }
  m.header_ = load_pod<MetadataHeader>(*raw);
  if (m.header_.magic != kMetadataMagic) {
    promise.set(Status(Errc::protocol_error, "metadata segment has no valid header"));
    co_return;
  }
  if (m.header_.version != kMetadataVersion) {
    promise.set(Status(Errc::unsupported,
                       "manager speaks metadata v" + std::to_string(m.header_.version) +
                           ", standby requires v" + std::to_string(kMetadataVersion)));
    co_return;
  }
  raw = co_await fabric.read(cpu, m.watched_meta_map_.addr() + kLeaseOffset,
                             sizeof(ManagerLease));
  if (!raw) {
    promise.set(raw.status());
    co_return;
  }
  if (load_pod<ManagerLease>(*raw).epoch == 0) {
    promise.set(Status(Errc::unsupported,
                       "active manager does not publish leases (lease_duration_ns = 0); "
                       "nothing to stand by for"));
    co_return;
  }

  if (fault::enabled()) {
    Manager* rawp = self.get();
    m.crash_token_ = fault::Injector::global().register_crash_handler(
        m.node_, [rawp]() { rawp->crash(); });
  }
  m.standby_watch_task(m.stop_);
  NVS_LOG(info, "manager") << "standby on node " << m.node_ << " watching device "
                           << m.device_id_ << " (manager on node " << loc.first << ")";
  promise.set(std::move(self));
}

// Hot-standby lease watch. All reads are remote (the watched segment lives
// on the active manager's host) and timed through the fabric — a standby
// costs a few reads per poll interval and nothing on any hot path.
sim::Task Manager::standby_watch_task(std::shared_ptr<bool> stop) {
  sim::Engine& eng = engine();
  fabric::Substrate& fab = fabric();
  const pcie::Initiator cpu = fab.cpu(node_);

  for (;;) {
    co_await sim::delay(eng, cfg_.standby_poll_ns);
    if (*stop) co_return;

    // Follow the registration: a completed takeover (possibly by a peer
    // standby) moves the metadata segment.
    auto loc = service_.device_metadata(device_id_);
    if (loc && (loc->first != watched_node_ || loc->second != watched_seg_id_)) {
      auto remote = service_.cluster().connect(loc->first, loc->second);
      if (!remote) continue;
      auto map = sisci::Map::create(service_.cluster(), node_, *remote);
      if (!map) continue;
      watched_meta_map_ = std::move(*map);
      watched_node_ = loc->first;
      watched_seg_id_ = loc->second;
    }

    auto raw =
        co_await fab.read(cpu, watched_meta_map_.addr() + kLeaseOffset, sizeof(ManagerLease));
    if (*stop) co_return;
    if (!raw) continue;  // link down; retry next tick
    const auto lease = load_pod<ManagerLease>(*raw);
    if (lease.epoch == 0) continue;  // registration moved to a non-HA manager
    if (eng.now() < lease.expires_at_ns) continue;

    // Expired. Competing standbys resolve deterministically: wait our
    // stagger slot, re-read, and only claim if nobody else did.
    co_await sim::delay(eng, static_cast<sim::Duration>(node_) * cfg_.claim_stagger_ns);
    if (*stop) co_return;
    raw =
        co_await fab.read(cpu, watched_meta_map_.addr() + kLeaseOffset, sizeof(ManagerLease));
    if (*stop) co_return;
    if (!raw) continue;
    auto cur = load_pod<ManagerLease>(*raw);
    if (cur.epoch != lease.epoch || eng.now() < cur.expires_at_ns) continue;

    ManagerLease claim;
    claim.epoch = cur.epoch + 1;
    // Generous claim expiry: it must outlive the whole takeover sequence,
    // or a peer standby would start a second takeover against the same old
    // state mid-way through ours.
    claim.expires_at_ns = eng.now() + 4 * cfg_.lease_duration_ns;
    claim.manager_node = node_;
    claim.state = static_cast<std::uint32_t>(LeaseState::claiming);
    Bytes buf(sizeof(ManagerLease));
    store_pod(buf, claim);
    if (!fab.post_write(cpu, watched_meta_map_.addr() + kLeaseOffset, std::move(buf))) {
      continue;
    }
    // Let the posted write land, then confirm the claim stuck.
    co_await sim::delay(eng, cfg_.claim_stagger_ns);
    if (*stop) co_return;
    raw =
        co_await fab.read(cpu, watched_meta_map_.addr() + kLeaseOffset, sizeof(ManagerLease));
    if (*stop) co_return;
    if (!raw) continue;
    cur = load_pod<ManagerLease>(*raw);
    if (cur.epoch != claim.epoch || cur.manager_node != node_) continue;  // lost the race

    Status st = co_await takeover_await(claim);
    if (*stop) co_return;
    if (st) co_return;  // promoted: serving tasks run now, the watch ends
    NVS_LOG(error, "manager") << "standby on node " << node_
                              << " takeover failed: " << st.message() << "; resuming watch";
  }
}

sim::Future<Status> Manager::takeover_await(ManagerLease claim) {
  sim::Promise<Status> done(engine());
  takeover_task(claim, done);
  return done.future();
}

// Takeover: continue the old admin rings (AQA/ASQ/ACQ are latched — fresh
// rings would need a controller reset that kills every survivor's I/O
// queues), reconstruct grant state from the old owner table, roll back
// half-done grants, publish a fresh metadata segment on this host, fence
// the old epoch, and re-point the registration. Survivors never release
// their device references; their admin calls retry into the new mailbox.
sim::Task Manager::takeover_task(ManagerLease claim, sim::Promise<Status> done) {
  sim::Engine& eng = engine();
  fabric::Substrate& fab = fabric();
  sisci::Cluster& cluster = service_.cluster();
  const pcie::Initiator cpu = fab.cpu(node_);
  const sim::Time begin = eng.now();
  const std::uint64_t old_base = watched_meta_map_.addr();

  // 1. Scan the old segment: header, admin-ring journal, owner table.
  auto raw = co_await fab.read(cpu, old_base, sizeof(MetadataHeader));
  if (!raw) {
    done.set(raw.status());
    co_return;
  }
  header_ = load_pod<MetadataHeader>(*raw);
  if (header_.magic != kMetadataMagic || header_.version != kMetadataVersion) {
    done.set(Status(Errc::protocol_error, "old metadata segment unreadable"));
    co_return;
  }
  raw = co_await fab.read(cpu, old_base + kAdminJournalOffset, sizeof(AdminRingJournal));
  if (!raw) {
    done.set(raw.status());
    co_return;
  }
  const auto journal = load_pod<AdminRingJournal>(*raw);
  if (journal.entries == 0) {
    done.set(Status(Errc::protocol_error, "old manager never journaled its admin rings"));
    co_return;
  }
  std::vector<QpOwnerEntry> owners(kOwnerTableEntries);
  raw = co_await fab.read(cpu, old_base + kOwnerTableOffset,
                          kOwnerTableEntries * sizeof(QpOwnerEntry));
  if (!raw) {
    done.set(raw.status());
    co_return;
  }
  std::memcpy(owners.data(), raw->data(), owners.size() * sizeof(QpOwnerEntry));

  // 2. Adopt the admin rings: CPU views of the old ASQ/ACQ. Both survive in
  // the dead manager's DRAM (its process died, its host memory did not).
  auto asq_remote = cluster.connect(journal.asq_node, journal.asq_segment);
  auto acq_remote = cluster.connect(journal.acq_node, journal.acq_segment);
  if (!asq_remote || !acq_remote) {
    done.set(Status(Errc::unavailable, "old admin ring segments unreachable"));
    co_return;
  }
  auto asq_map = sisci::Map::create(cluster, node_, *asq_remote);
  auto acq_map = sisci::Map::create(cluster, node_, *acq_remote);
  if (!asq_map || !acq_map) {
    done.set(Status(Errc::resource_exhausted, "no NTB windows for adopted admin rings"));
    co_return;
  }
  adopt_asq_map_ = std::move(*asq_map);
  adopt_acq_map_ = std::move(*acq_map);

  nvme::QueuePair::Config qc;
  qc.qid = 0;
  qc.sq_size = journal.entries;
  qc.cq_size = journal.entries;
  qc.sq_write_addr = adopt_asq_map_.addr();
  qc.cq_poll_addr = adopt_acq_map_.addr();  // Fabric::peek resolves the NTB map
  qc.sq_doorbell_addr = bar_.addr() + nvme::sq_doorbell_offset(0);
  qc.cq_doorbell_addr = bar_.addr() + nvme::cq_doorbell_offset(0);
  qc.cpu = cpu;
  admin_qp_ = std::make_unique<nvme::QueuePair>(fab, qc);
  admin_qp_->restore({journal.sq_tail, journal.cq_head, journal.next_cid, journal.phase != 0});
  admin_lock_ = std::make_unique<sim::Semaphore>(eng, 1);
  adopted_ring_ = true;
  journal_ = journal;  // ring locations survive the epoch change

  // 3. Own scratch memory for admin data transfers (identify, scrub).
  auto data_seg = service_.create_segment_hinted(node_, cfg_.private_segment_base + 2, 4096,
                                                 device_id_, smartio::AccessHint::cq());
  if (!data_seg) {
    done.set(data_seg.status());
    co_return;
  }
  admin_data_seg_ = std::move(*data_seg);
  auto data_win = ref_.map_for_device(admin_data_seg_.descriptor());
  if (!data_win) {
    done.set(data_win.status());
    co_return;
  }
  admin_data_win_ = std::move(*data_win);

  // 4. Probe the adopted ring: one identify through the old ASQ/ACQ proves
  // the journaled cursors line up with the controller's. A completion the
  // dead manager pushed but never consumed drains through the (counted)
  // spurious-CQE path first.
  auto probe = co_await submit_admin(
      nvme::make_identify(0, nvme::IdentifyCns::controller, 0, admin_data_win_.device_addr()));
  if (*stop_) {
    done.set(Status(Errc::aborted, "stopped during takeover"));
    co_return;
  }
  if (!probe || !probe->ok()) {
    done.set(probe ? Status(Errc::io_error, "adopted admin ring probe failed")
                   : probe.status());
    co_return;
  }

  // 5. Reconstruct grant state; roll back write-ahead intents the old
  // manager died inside (their queues may or may not exist — delete both
  // and ignore refusals).
  const std::uint16_t granted = header_.granted_io_queues;
  qid_used_.assign(granted + 1u, false);
  qid_used_[0] = true;
  qid_owner_.assign(granted + 1u, 0);
  qid_created_at_.assign(granted + 1u, 0);
  qid_sq_addr_.assign(granted + 1u, 0);
  // Tenant shares are manager-local and do not survive the takeover;
  // clients re-request them (like they re-heartbeat) — MODEL.md §12.
  qid_shares_.assign(granted + 1u, {});
  qid_sq_size_.assign(granted + 1u, 0);
  for (std::uint16_t q = 1; q <= granted && q < kOwnerTableEntries; ++q) {
    const QpOwnerEntry& e = owners[q];
    if (e.state == static_cast<std::uint32_t>(QpOwnerState::pending)) {
      (void)co_await submit_admin(nvme::make_delete_io_sq(0, q));
      (void)co_await submit_admin(nvme::make_delete_io_cq(0, q));
      ++stats_.intent_rollbacks;
      owners[q] = QpOwnerEntry{};
      NVS_LOG(warn, "manager") << "rolled back half-created QP " << q << " of node "
                               << e.owner_node;
    } else if (e.state == static_cast<std::uint32_t>(QpOwnerState::active)) {
      qid_used_[q] = true;
      qid_owner_[q] = e.owner_node;
      qid_created_at_[q] = eng.now();  // reaper grace anchor: takeover time
      qid_sq_addr_[q] = e.sq_device_addr;
      qid_sq_size_[q] = e.sq_size;
      ++stats_.qps_adopted;
    }
  }
  if (*stop_) {
    done.set(Status(Errc::aborted, "stopped during takeover"));
    co_return;
  }

  // 6. Fresh metadata segment on this host: header and owner table carried
  // over, QoS policy from our own config, empty mailbox slots.
  const std::uint32_t nodes = header_.mailbox_slots;
  auto meta = cluster.create_segment_placed(node_, node_, /*cpu_access=*/true,
                                            /*device_access=*/false, cfg_.metadata_segment_id,
                                            metadata_segment_size(nodes));
  if (!meta) {
    done.set(meta.status());
    co_return;
  }
  metadata_seg_ = std::move(*meta);
  header_.manager_node = node_;
  (void)metadata_seg_.write(0, as_bytes_of(header_));
  (void)metadata_seg_.write(kQosPolicyOffset, as_bytes_of(cfg_.qos_policy));
  for (std::uint16_t q = 1; q < kOwnerTableEntries; ++q) {
    if (owners[q].state != static_cast<std::uint32_t>(QpOwnerState::active)) continue;
    QpOwnerEntry e = owners[q];
    e.created_at_ns = eng.now();
    (void)metadata_seg_.write(owner_entry_offset(q), as_bytes_of(e));
  }
  journal_ready_ = true;
  journal_admin_ring();
  // Carry the survivors' last heartbeats over so the reaper judges them
  // against real history instead of zero.
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const std::uint64_t beat_off = mbox_slot_offset(header_, n) + offsetof(MboxSlot, heartbeat_ns);
    auto beat = co_await fab.read(cpu, old_base + beat_off, sizeof(std::uint64_t));
    if (!beat) continue;
    (void)metadata_seg_.write(beat_off, *beat);
  }
  if (*stop_) {
    done.set(Status(Errc::aborted, "stopped during takeover"));
    co_return;
  }

  epoch_ = claim.epoch;
  publish_lease();  // into the NEW segment

  // 7. Fence the old epoch in the OLD segment: a predecessor still breathing
  // reads a foreign epoch at its next renewal and stops serving; peer
  // standbys still watching the old location see the same.
  ManagerLease fence_lease = claim;
  fence_lease.state = static_cast<std::uint32_t>(LeaseState::active);
  fence_lease.expires_at_ns = eng.now() + cfg_.lease_duration_ns;
  Bytes fence_buf(sizeof(ManagerLease));
  store_pod(fence_buf, fence_lease);
  (void)fab.post_write(cpu, old_base + kLeaseOffset, std::move(fence_buf));

  // 8. Re-point the registration — CAS against the owner we watched, so two
  // standbys racing the same claim cannot both win it.
  if (Status st = service_.reassign_device_metadata(device_id_, watched_node_,
                                                    metadata_seg_.node(),
                                                    cfg_.metadata_segment_id);
      !st) {
    done.set(st);
    co_return;
  }
  watched_node_ = node_;
  watched_seg_id_ = cfg_.metadata_segment_id;

  // 9. Serve: same task set as a fresh manager, plus the takeover grace that
  // keeps the reaper honest while survivors re-resolve.
  standby_ = false;
  serving_ = true;
  takeover_time_ = eng.now();
  mailbox_server(stop_);
  lease_task(stop_);
  if (cfg_.client_heartbeat_timeout_ns > 0) reaper_task(stop_);
  if (cfg_.csts_poll_interval_ns > 0) watchdog_task(stop_);
  if (cfg_.scrub_interval_ns > 0) scrub_task(stop_);
  ++stats_.takeovers;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const std::uint64_t t = tracer.begin_trace(obs::Kind::other, begin);
    tracer.record(t, obs::Track::controller, obs::Phase::recovery, begin, eng.now(), 0);
    tracer.end_trace(t, eng.now());
  }
  NVS_LOG(info, "manager") << "node " << node_ << " took over device " << device_id_
                           << " at epoch " << epoch_ << " in " << (eng.now() - begin)
                           << " ns";
  done.set(Status::ok());
}

}  // namespace nvmeshare::driver
