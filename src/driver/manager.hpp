// Manager half of the distributed NVMe driver (Section V).
//
// The manager acquires the device exclusively, resets and initializes the
// controller through SmartIO mappings (its admin SQ is allocated with a
// device-side hint, its admin CQ locally — the Figure 8 policy), negotiates
// the I/O queue count, then downgrades to a shared claim and publishes a
// metadata segment so clients can find it. From then on it serves
// queue-pair create/delete requests arriving in the shared-memory mailbox,
// issuing the privileged admin commands on the clients' behalf.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "driver/cost_model.hpp"
#include "driver/mailbox.hpp"
#include "nvme/queue.hpp"
#include "obs/metrics.hpp"
#include "smartio/smartio.hpp"

namespace nvmeshare::driver {

class Manager {
 public:
  struct Config {
    std::uint16_t admin_entries = 32;
    std::uint16_t requested_io_queues = 31;
    sisci::SegmentId metadata_segment_id = 0x4d455441;  // "META"
    /// Base id for the manager's private segments (admin queues, identify
    /// buffer); ids base..base+3 are used.
    sisci::SegmentId private_segment_base = 0x4d000000;
    CostModel costs = CostModel::distributed_driver();
    sim::Duration mailbox_poll_ns = 2000;
    /// Per-request manager-side processing cost (decode + validation).
    sim::Duration mailbox_service_ns = 1500;
    // --- fault recovery (docs/faults.md); both watchdogs off by default ---
    /// Reap a client's queue pair when its mailbox heartbeat (or the pair's
    /// creation) is older than this. 0 disables the reaper. Only meaningful
    /// when clients heartbeat (Client::Config::heartbeat_interval_ns).
    sim::Duration client_heartbeat_timeout_ns = 0;
    /// Cadence of the reaper's scan over the mailbox slots.
    sim::Duration reaper_interval_ns = 500'000;
    /// Cadence of the CSTS watchdog that detects a fatal controller status
    /// and drives the reset + re-init path. 0 disables it.
    sim::Duration csts_poll_interval_ns = 0;
    /// Cadence of the background scrubber (docs/MODEL.md §7): every tick it
    /// issues one vendor scrub command verifying the stored protection
    /// tuples of the next `scrub_blocks_per_cmd` blocks, wrapping at the
    /// namespace end. 0 disables scrubbing. Only useful when the namespace
    /// is PI-formatted (the command is a cheap no-op otherwise).
    sim::Duration scrub_interval_ns = 0;
    /// Blocks covered by one scrub command.
    std::uint16_t scrub_blocks_per_cmd = 256;
    // --- QoS / noisy-neighbor protection (docs/MODEL.md §9) ----------------
    /// Enable the controller with CC.AMS = weighted round robin and program
    /// the arbitration weights below; each client's granted priority class
    /// then rides in its Create I/O SQ commands. Off by default — the seed
    /// enables plain round robin and stays byte-identical.
    bool enable_wrr = false;
    std::uint8_t arb_burst_log2 = 3;     ///< Arbitration AB (2^AB per turn)
    std::uint8_t wrr_low_weight = 0;     ///< LPW, 0-based (weight = LPW + 1)
    std::uint8_t wrr_medium_weight = 1;  ///< MPW
    std::uint8_t wrr_high_weight = 3;    ///< HPW
    /// Cluster-wide per-class grant policy, published in the metadata
    /// segment (kQosPolicyOffset) and enforced on create_qp[_batch]: a
    /// disallowed class demotes the request downward, budgets clamp to the
    /// class caps. The default allows every class, uncapped.
    QosPolicyTable qos_policy;
  };

  /// Bring the controller up and start serving; resolves when the metadata
  /// segment is published.
  static sim::Future<Result<std::unique_ptr<Manager>>> start(smartio::Service& service,
                                                             smartio::NodeId node,
                                                             smartio::DeviceId device,
                                                             Config cfg);

  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Stop the mailbox server and withdraw the metadata registration.
  /// Clients with established queue pairs keep working (they operate the
  /// controller independently of the manager — Section V); they just can't
  /// create or delete queues until a manager runs again.
  void shutdown();

  /// Power off this instance instantly (fault injection): the mailbox
  /// server and watchdogs stop, but — unlike shutdown() — the metadata
  /// registration is NOT withdrawn: the dead manager cannot clean up after
  /// itself, so clients find a mailbox nobody answers and time out.
  void crash();

  [[nodiscard]] const MetadataHeader& header() const noexcept { return header_; }
  [[nodiscard]] smartio::NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint16_t active_queue_pairs() const;

  /// Per-manager counters, also registered as `nvmeshare.manager.*`.
  struct Stats {
    Stats();
    obs::Counter mailbox_requests;
    obs::Counter qps_created;
    obs::Counter qps_deleted;
    obs::Counter request_errors;
    obs::Counter qps_reaped;    ///< orphaned queue pairs collected by the reaper
    obs::Counter ctrl_resets;   ///< fatal-status recoveries by the CSTS watchdog
    obs::Counter scrub_sweeps;      ///< full-namespace scrub passes completed
    obs::Counter scrub_mismatches;  ///< mismatching blocks reported by scrub commands
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Issue one admin command (exposed for tests and privileged tooling).
  sim::Future<Result<nvme::CompletionEntry>> submit_admin(nvme::SubmissionEntry entry);

 private:
  Manager(smartio::Service& service, smartio::NodeId node, smartio::DeviceId device,
          Config cfg);

  static sim::Task init_task(std::unique_ptr<Manager> self,
                             sim::Promise<Result<std::unique_ptr<Manager>>> promise);
  sim::Task admin_task(nvme::SubmissionEntry entry,
                       sim::Promise<Result<nvme::CompletionEntry>> promise);
  sim::Task mailbox_server(std::shared_ptr<bool> stop);
  sim::Future<bool> handle_slot_await(std::uint32_t slot_index, MboxSlot slot,
                                      std::shared_ptr<bool> stop);
  sim::Task handle_slot_task(std::uint32_t slot_index, MboxSlot slot,
                             std::shared_ptr<bool> stop, sim::Promise<bool> done);
  /// Dead-client detection: delete queue pairs whose owner stopped
  /// heartbeating (docs/faults.md).
  sim::Task reaper_task(std::shared_ptr<bool> stop);
  /// Fatal-status detection: poll CSTS and run controller reset + re-init
  /// when CFS is raised.
  sim::Task watchdog_task(std::shared_ptr<bool> stop);
  /// Background integrity scrubber: walk the namespace with vendor scrub
  /// commands, one range per tick.
  sim::Task scrub_task(std::shared_ptr<bool> stop);
  /// v4 QoS admission: demote the requested class to the nearest allowed
  /// lower-priority one and clamp the budgets to the class caps, writing
  /// the granted values into the slot's echo fields. Returns false when no
  /// class at or below the requested priority admits the client.
  [[nodiscard]] bool grant_qos(MboxSlot& slot) const;
  /// Priority class for a granted pair's Create I/O SQ: the granted class
  /// under WRR, urgent (which encodes as 0 — the seed bytes) otherwise.
  [[nodiscard]] nvme::SqPriority sq_priority(const MboxSlot& slot) const noexcept {
    return cfg_.enable_wrr ? static_cast<nvme::SqPriority>(slot.qos_granted_class & 0x3)
                           : nvme::SqPriority::urgent;
  }

  [[nodiscard]] sim::Engine& engine();
  [[nodiscard]] pcie::Fabric& fabric();

  smartio::Service& service_;
  smartio::NodeId node_;
  smartio::DeviceId device_id_;
  Config cfg_;
  Rng rng_{0xfeed};

  smartio::DeviceRef ref_;
  smartio::BarWindow bar_;
  sisci::Segment asq_seg_;
  sisci::Segment acq_seg_;
  sisci::Segment admin_data_seg_;
  sisci::Segment metadata_seg_;
  smartio::DmaWindow asq_win_;
  smartio::DmaWindow acq_win_;
  smartio::DmaWindow admin_data_win_;
  sisci::Map asq_cpu_map_;  ///< CPU view of the (possibly device-side) admin SQ
  std::unique_ptr<nvme::QueuePair> admin_qp_;
  std::unique_ptr<sim::Semaphore> admin_lock_;

  MetadataHeader header_;
  std::vector<bool> qid_used_;      ///< index = qid; [0] reserved for admin
  std::vector<std::uint32_t> qid_owner_;
  /// Creation time per qid: grace period before a client's first heartbeat.
  std::vector<sim::Time> qid_created_at_;
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  bool serving_ = false;
  bool crashed_ = false;
  std::uint64_t crash_token_ = 0;  ///< fault-injector registration
  Stats stats_;
};

}  // namespace nvmeshare::driver
