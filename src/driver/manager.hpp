// Manager half of the distributed NVMe driver (Section V).
//
// The manager acquires the device exclusively, resets and initializes the
// controller through SmartIO mappings (its admin SQ is allocated with a
// device-side hint, its admin CQ locally — the Figure 8 policy), negotiates
// the I/O queue count, then downgrades to a shared claim and publishes a
// metadata segment so clients can find it. From then on it serves
// queue-pair create/delete requests arriving in the shared-memory mailbox,
// issuing the privileged admin commands on the clients' behalf.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "driver/cost_model.hpp"
#include "driver/mailbox.hpp"
#include "nvme/queue.hpp"
#include "obs/metrics.hpp"
#include "smartio/smartio.hpp"

namespace nvmeshare::driver {

class Manager {
 public:
  struct Config {
    std::uint16_t admin_entries = 32;
    std::uint16_t requested_io_queues = 31;
    sisci::SegmentId metadata_segment_id = 0x4d455441;  // "META"
    /// Base id for the manager's private segments (admin queues, identify
    /// buffer); ids base..base+3 are used.
    sisci::SegmentId private_segment_base = 0x4d000000;
    CostModel costs = CostModel::distributed_driver();
    sim::Duration mailbox_poll_ns = 2000;
    /// Per-request manager-side processing cost (decode + validation).
    sim::Duration mailbox_service_ns = 1500;
    // --- fault recovery (docs/faults.md); both watchdogs off by default ---
    /// Reap a client's queue pair when its mailbox heartbeat (or the pair's
    /// creation) is older than this. 0 disables the reaper. Only meaningful
    /// when clients heartbeat (Client::Config::heartbeat_interval_ns).
    sim::Duration client_heartbeat_timeout_ns = 0;
    /// Cadence of the reaper's scan over the mailbox slots.
    sim::Duration reaper_interval_ns = 500'000;
    /// Cadence of the CSTS watchdog that detects a fatal controller status
    /// and drives the reset + re-init path. 0 disables it.
    sim::Duration csts_poll_interval_ns = 0;
    // --- manager high availability (docs/MODEL.md §10); off by default -----
    /// Publish and renew a liveness lease of this duration in the metadata
    /// segment (v5). 0 disables HA: the lease slot stays zeroed and no
    /// standby will watch this manager. The active manager renews every
    /// lease_duration_ns / 4 — a handful of local-memory writes per
    /// millisecond, nothing on the I/O hot path.
    sim::Duration lease_duration_ns = 0;
    /// Standby: cadence of the remote lease reads while watching.
    sim::Duration standby_poll_ns = 100'000;
    /// Competing standbys resolve deterministically by staggering: the
    /// standby on node n waits n * claim_stagger_ns after seeing an expired
    /// lease before claiming, and another claim_stagger_ns after writing the
    /// claim (posted) before concluding it won.
    sim::Duration claim_stagger_ns = 50'000;
    /// Post-takeover reaper grace: no queue pair is reaped until this long
    /// after a takeover, giving surviving clients time to re-resolve the new
    /// mailbox location and heartbeat into it.
    sim::Duration takeover_grace_ns = 2'000'000;
    /// Cadence of the background scrubber (docs/MODEL.md §7): every tick it
    /// issues one vendor scrub command verifying the stored protection
    /// tuples of the next `scrub_blocks_per_cmd` blocks, wrapping at the
    /// namespace end. 0 disables scrubbing. Only useful when the namespace
    /// is PI-formatted (the command is a cheap no-op otherwise).
    sim::Duration scrub_interval_ns = 0;
    /// Blocks covered by one scrub command.
    std::uint16_t scrub_blocks_per_cmd = 256;
    // --- QoS / noisy-neighbor protection (docs/MODEL.md §9) ----------------
    /// Enable the controller with CC.AMS = weighted round robin and program
    /// the arbitration weights below; each client's granted priority class
    /// then rides in its Create I/O SQ commands. Off by default — the seed
    /// enables plain round robin and stays byte-identical.
    bool enable_wrr = false;
    std::uint8_t arb_burst_log2 = 3;     ///< Arbitration AB (2^AB per turn)
    std::uint8_t wrr_low_weight = 0;     ///< LPW, 0-based (weight = LPW + 1)
    std::uint8_t wrr_medium_weight = 1;  ///< MPW
    std::uint8_t wrr_high_weight = 3;    ///< HPW
    /// Cluster-wide per-class grant policy, published in the metadata
    /// segment (kQosPolicyOffset) and enforced on create_qp[_batch]: a
    /// disallowed class demotes the request downward, budgets clamp to the
    /// class caps. The default allows every class, uncapped.
    QosPolicyTable qos_policy;
  };

  /// Bring the controller up and start serving; resolves when the metadata
  /// segment is published.
  static sim::Future<Result<std::unique_ptr<Manager>>> start(smartio::Service& service,
                                                             smartio::NodeId node,
                                                             smartio::DeviceId device,
                                                             Config cfg);

  /// Bring up a hot standby (docs/MODEL.md §10): acquires a shared device
  /// reference, maps the active manager's metadata segment, and watches its
  /// lease. On expiry it claims the next epoch and takes over — adopting the
  /// old admin rings and grant state — without survivors releasing the
  /// device. Resolves once the standby is watching; fails if the active
  /// manager does not publish leases. The standby's `metadata_segment_id`
  /// and `private_segment_base` must differ from the active manager's (both
  /// sets of segments can be placed on the same host by hinted allocation).
  static sim::Future<Result<std::unique_ptr<Manager>>> start_standby(smartio::Service& service,
                                                                     smartio::NodeId node,
                                                                     smartio::DeviceId device,
                                                                     Config cfg);

  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Stop the mailbox server and withdraw the metadata registration.
  /// Clients with established queue pairs keep working (they operate the
  /// controller independently of the manager — Section V); they just can't
  /// create or delete queues until a manager runs again.
  void shutdown();

  /// Power off this instance instantly (fault injection): the mailbox
  /// server and watchdogs stop, but — unlike shutdown() — the metadata
  /// registration is NOT withdrawn: the dead manager cannot clean up after
  /// itself, so clients find a mailbox nobody answers and time out.
  void crash();

  [[nodiscard]] const MetadataHeader& header() const noexcept { return header_; }
  [[nodiscard]] smartio::NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint16_t active_queue_pairs() const;
  /// True while this instance answers mailbox requests (an active manager,
  /// or a standby whose takeover completed).
  [[nodiscard]] bool is_active() const noexcept { return serving_; }
  /// True while this instance watches another manager's lease.
  [[nodiscard]] bool is_standby() const noexcept { return standby_; }
  /// Epoch this instance serves (0 = HA disabled / still a standby).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Per-manager counters, also registered as `nvmeshare.manager.*`.
  struct Stats {
    Stats();
    obs::Counter mailbox_requests;
    obs::Counter qps_created;
    obs::Counter qps_deleted;
    obs::Counter request_errors;
    obs::Counter qps_reaped;    ///< orphaned queue pairs collected by the reaper
    obs::Counter ctrl_resets;   ///< fatal-status recoveries by the CSTS watchdog
    obs::Counter scrub_sweeps;      ///< full-namespace scrub passes completed
    obs::Counter scrub_mismatches;  ///< mismatching blocks reported by scrub commands
    obs::Counter lease_renewals;    ///< lease slots written by the active manager
    obs::Counter takeovers;         ///< standby promotions completed
    obs::Counter fencings;          ///< self-fences after observing a foreign epoch
    obs::Counter qps_adopted;       ///< active grants inherited across a takeover
    obs::Counter intent_rollbacks;  ///< half-created grants rolled back at takeover
    obs::Counter shares_granted;    ///< tenant CID sub-ranges granted (v6)
    obs::Counter shares_released;   ///< tenant CID sub-ranges released (v6)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Issue one admin command (exposed for tests and privileged tooling).
  sim::Future<Result<nvme::CompletionEntry>> submit_admin(nvme::SubmissionEntry entry);

 private:
  Manager(smartio::Service& service, smartio::NodeId node, smartio::DeviceId device,
          Config cfg);

  static sim::Task init_task(std::unique_ptr<Manager> self,
                             sim::Promise<Result<std::unique_ptr<Manager>>> promise);
  sim::Task admin_task(nvme::SubmissionEntry entry,
                       sim::Promise<Result<nvme::CompletionEntry>> promise);
  sim::Task mailbox_server(std::shared_ptr<bool> stop);
  sim::Future<bool> handle_slot_await(std::uint32_t slot_index, MboxSlot slot,
                                      std::shared_ptr<bool> stop);
  sim::Task handle_slot_task(std::uint32_t slot_index, MboxSlot slot,
                             std::shared_ptr<bool> stop, sim::Promise<bool> done);
  /// Dead-client detection: delete queue pairs whose owner stopped
  /// heartbeating (docs/faults.md).
  sim::Task reaper_task(std::shared_ptr<bool> stop);
  /// Fatal-status detection: poll CSTS and run controller reset + re-init
  /// when CFS is raised.
  sim::Task watchdog_task(std::shared_ptr<bool> stop);
  /// Background integrity scrubber: walk the namespace with vendor scrub
  /// commands, one range per tick.
  sim::Task scrub_task(std::shared_ptr<bool> stop);
  // --- manager high availability (docs/MODEL.md §10) ----------------------
  static sim::Task standby_init_task(std::unique_ptr<Manager> self,
                                     sim::Promise<Result<std::unique_ptr<Manager>>> promise);
  /// Standby main loop: watch the lease, claim on expiry, take over.
  sim::Task standby_watch_task(std::shared_ptr<bool> stop);
  sim::Future<Status> takeover_await(ManagerLease claim);
  sim::Task takeover_task(ManagerLease claim, sim::Promise<Status> done);
  /// Active-manager lease renewal; self-fences on a foreign epoch.
  sim::Task lease_task(std::shared_ptr<bool> stop);
  void publish_lease();
  /// Stop serving: another manager holds a newer epoch.
  void fence(std::uint64_t foreign_epoch);
  /// Persist the admin ring cursors (v5 journal) — local memory, zero cost.
  void journal_admin_ring();
  void write_owner_entry(std::uint16_t qid, const QpOwnerEntry& e);
  void clear_owner_entry(std::uint16_t qid) { write_owner_entry(qid, QpOwnerEntry{}); }
  /// Drop every tenant share of `qid` (the pair is going away), counting
  /// each as released.
  void release_shares(std::uint16_t qid);
  /// Does `client_node` own a grant whose SQ base falls in [lo, hi)?
  [[nodiscard]] bool has_stale_overlap(std::uint32_t client_node, std::uint64_t lo,
                                       std::uint64_t hi) const;
  /// Delete such grants (idempotent re-serve after a manager died mid-grant).
  sim::Future<bool> reclaim_stale_await(std::uint32_t client_node, std::uint64_t lo,
                                        std::uint64_t hi);
  sim::Task reclaim_stale_task(std::uint32_t client_node, std::uint64_t lo, std::uint64_t hi,
                               sim::Promise<bool> done);
  /// v4 QoS admission: demote the requested class to the nearest allowed
  /// lower-priority one and clamp the budgets to the class caps, writing
  /// the granted values into the slot's echo fields. Returns false when no
  /// class at or below the requested priority admits the client.
  [[nodiscard]] bool grant_qos(MboxSlot& slot) const;
  /// Priority class for a granted pair's Create I/O SQ: the granted class
  /// under WRR, urgent (which encodes as 0 — the seed bytes) otherwise.
  [[nodiscard]] nvme::SqPriority sq_priority(const MboxSlot& slot) const noexcept {
    return cfg_.enable_wrr ? static_cast<nvme::SqPriority>(slot.qos_granted_class & 0x3)
                           : nvme::SqPriority::urgent;
  }

  [[nodiscard]] sim::Engine& engine();
  [[nodiscard]] fabric::Substrate& fabric();

  smartio::Service& service_;
  smartio::NodeId node_;
  smartio::DeviceId device_id_;
  Config cfg_;
  Rng rng_{0xfeed};

  smartio::DeviceRef ref_;
  smartio::BarWindow bar_;
  sisci::Segment asq_seg_;
  sisci::Segment acq_seg_;
  sisci::Segment admin_data_seg_;
  sisci::Segment metadata_seg_;
  smartio::DmaWindow asq_win_;
  smartio::DmaWindow acq_win_;
  smartio::DmaWindow admin_data_win_;
  sisci::Map asq_cpu_map_;  ///< CPU view of the (possibly device-side) admin SQ
  sisci::Map acq_cpu_map_;  ///< CPU view of the admin CQ (direct unless pooled)
  std::unique_ptr<nvme::QueuePair> admin_qp_;
  std::unique_ptr<sim::Semaphore> admin_lock_;

  MetadataHeader header_;
  std::vector<bool> qid_used_;      ///< index = qid; [0] reserved for admin
  std::vector<std::uint32_t> qid_owner_;
  /// Creation time per qid: grace period before a client's first heartbeat.
  std::vector<sim::Time> qid_created_at_;
  /// SQ base per qid, for stale-grant reclamation on re-served creates.
  std::vector<std::uint64_t> qid_sq_addr_;
  /// One tenant share of a queue pair: a disjoint CID sub-range (v6).
  struct ShareEntry {
    std::uint32_t tenant = 0;
    std::uint16_t lo = 0;
    std::uint16_t hi = 0;  ///< exclusive
  };
  /// Tenant shares per qid, sorted by lo for first-fit gap scans. Manager-
  /// local bookkeeping: shares do not survive an HA takeover (clients
  /// re-request them, like they re-heartbeat) — see MODEL.md §12.
  std::vector<std::vector<ShareEntry>> qid_shares_;
  /// SQ size per qid (the CID space a share scan allocates from).
  std::vector<std::uint16_t> qid_sq_size_;
  // --- HA state -----------------------------------------------------------
  std::uint64_t epoch_ = 0;        ///< 0 until HA is enabled / takeover done
  sim::Time takeover_time_ = 0;    ///< reaper grace anchor (0 = never)
  bool standby_ = false;
  bool adopted_ring_ = false;      ///< admin rings live in another host's DRAM
  bool journal_ready_ = false;     ///< metadata segment exists; journal writes land
  AdminRingJournal journal_;
  smartio::NodeId watched_node_ = 0;        ///< registration owner being watched
  sisci::SegmentId watched_seg_id_ = 0;
  sisci::Map watched_meta_map_;    ///< CPU view of the watched (old) metadata
  sisci::Map adopt_asq_map_;       ///< CPU views of adopted admin rings
  sisci::Map adopt_acq_map_;
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  bool serving_ = false;
  bool crashed_ = false;
  std::uint64_t crash_token_ = 0;  ///< fault-injector registration
  Stats stats_;
};

}  // namespace nvmeshare::driver
