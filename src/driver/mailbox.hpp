// Wire format of the manager's metadata segment (Section V): a header that
// tells clients the device is managed and how to contact the manager, plus
// one mailbox slot per cluster node for queue-pair RPC.
//
// The protocol is deliberately primitive — plain shared memory, no doorbell
// hardware: the client fills its slot and flips `state` to `request` with a
// posted write over the NTB; the manager polls its local memory, performs
// the privileged admin commands, writes the response, and flips `state` to
// `done`; the client polls `state` with (timed) remote reads.
#pragma once

#include <cstdint>

namespace nvmeshare::driver {

inline constexpr std::uint64_t kMetadataMagic = 0x31415445'4d53564eULL;  // "NVSMETA1"
// v2: MboxSlot grew the heartbeat_ns liveness field (carved from padding,
// so the layout of everything v1 defined is unchanged).
// v3: batch queue-pair grants (create_qp_batch / delete_qp_batch) for
// multi-channel clients: qp_count, per-channel base-address strides, and a
// qid list, all carved from padding — single-QP ops are layout-unchanged.
// v4: QoS grants. create_qp[_batch] carries a requested priority class and
// IOPS / bandwidth budget; the manager validates them against the policy
// table published in the metadata segment (kQosPolicyOffset) and echoes the
// granted values back. All fields are carved from pad2, so v1-v3 layouts
// are unchanged — but the semantics of a grant differ, hence the bump.
// v5: manager high availability. The reserved header area gains a
// ManagerLease (epoch + lease expiry, renewed by the active manager and
// watched by hot standbys), an AdminRingJournal (where the admin rings live
// and how far they have advanced, so a standby can adopt them without a
// controller reset), and a per-qid owner table written ahead of every grant
// (so a standby can reconstruct grant/QoS state and roll back half-done
// creates). MboxSlot carves `epoch` from pad6 so responses are fenceable.
// v6: tenant shares. create_share / delete_share let a client subdivide a
// queue pair it owns into per-tenant CID sub-ranges the manager allocates
// (first-fit above the owner's reserved floor) and tracks, with per-share
// QoS judged by the same policy table as whole-pair grants. The share
// fields are carved from pad0/pad1/pad3/pad4/pad5, so v1-v5 layouts are
// unchanged.
inline constexpr std::uint32_t kMetadataVersion = 6;

/// Most queue pairs one batch request can grant or revoke (the qid list
/// must fit the fixed 128-byte slot).
inline constexpr std::uint32_t kMaxBatchQps = 16;

/// Fixed header at offset 0 of the metadata segment.
struct MetadataHeader {
  std::uint64_t magic = kMetadataMagic;
  std::uint32_t version = kMetadataVersion;
  std::uint32_t manager_node = 0;
  std::uint64_t device_id = 0;
  std::uint64_t capacity_blocks = 0;
  std::uint32_t block_size = 0;
  std::uint32_t max_transfer_bytes = 0;
  std::uint16_t max_queue_pairs = 0;     ///< controller ceiling, incl. admin
  std::uint16_t granted_io_queues = 0;   ///< Set Features result
  std::uint32_t mailbox_slots = 0;
  std::uint32_t mailbox_offset = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(MetadataHeader) == 56);

enum class MboxState : std::uint32_t {
  free = 0,
  request = 1,  ///< written by the client after the payload
  done = 2,     ///< written by the manager after the response payload
};

enum class MboxOp : std::uint32_t {
  none = 0,
  create_qp = 1,
  delete_qp = 2,
  ping = 3,
  /// Grant qp_count queue pairs in one request: channel c's SQ lives at
  /// sq_device_addr + c * sq_stride (CQ likewise); the granted ids come
  /// back in qids[] (not necessarily contiguous — other clients' grants
  /// interleave). All-or-nothing: a mid-batch failure rolls back.
  create_qp_batch = 4,
  /// Revoke the qp_count queue pairs listed in qids[] (best effort: every
  /// owned qid is attempted, the first failure is reported).
  delete_qp_batch = 5,
  /// Grant a tenant share of qid_in (v6): a disjoint CID sub-range of
  /// share_cid_count identifiers placed first-fit in
  /// [share_cid_floor, sq_size), plus a QoS grant judged like create_qp's.
  /// The range comes back in share_cid_lo/hi. Idempotent per tenant: a
  /// re-request for an already-shared tenant releases the old range first.
  create_share = 6,
  /// Release tenant share_tenant's share of qid_in (v6).
  delete_share = 7,
};

/// One mailbox slot (one per cluster node, indexed by the client's NodeId,
/// so no two clients ever contend for a slot).
struct MboxSlot {
  std::uint32_t state = 0;  ///< MboxState
  std::uint32_t op = 0;     ///< MboxOp
  std::uint32_t client_node = 0;
  /// in (v6): tenant id the share belongs to (create_share / delete_share).
  /// Was pad0.
  std::uint32_t share_tenant = 0;

  // create_qp request payload: device-visible queue memory addresses (the
  // client resolves these through SmartIO DMA windows before asking).
  std::uint64_t sq_device_addr = 0;
  std::uint64_t cq_device_addr = 0;
  std::uint16_t sq_size = 0;
  std::uint16_t cq_size = 0;
  // delete_qp request payload (create_share / delete_share also name their
  // queue pair here).
  std::uint16_t qid_in = 0;
  /// in (v6): CIDs requested for the share (create_share). Was pad1.
  std::uint16_t share_cid_count = 0;

  // Response payload.
  std::uint32_t status = 0;  ///< 0 = ok, else an Errc value
  std::uint16_t qid_out = 0;
  std::uint16_t nvme_status = 0;  ///< raw NVMe status field when status != 0

  /// Liveness: the client posts its sim-clock here every heartbeat
  /// interval; the manager's reaper treats a stale value as a dead client
  /// and deletes its orphaned queue pair. 0 = client never heartbeated.
  std::uint64_t heartbeat_ns = 0;

  // Batch payload (create_qp_batch / delete_qp_batch), v3.
  std::uint16_t qp_count = 0;   ///< in: channels requested (1..kMaxBatchQps)
  /// in (v6): lowest CID a share may occupy — the owner keeps [0, floor)
  /// for its own traffic (create_share). Was pad3.
  std::uint16_t share_cid_floor = 0;
  std::uint32_t sq_stride = 0;  ///< in: bytes between consecutive SQ bases
  std::uint32_t cq_stride = 0;  ///< in: bytes between consecutive CQ bases
  /// out (v6): granted CID sub-range [lo, hi) (create_share). Was pad4.
  std::uint16_t share_cid_lo = 0;
  std::uint16_t share_cid_hi = 0;
  std::uint16_t qids[kMaxBatchQps] = {};  ///< out (create) / in (delete)

  // QoS grant payload (create_qp / create_qp_batch), v4. The request names
  // a priority class (nvme::SqPriority value) and rate budgets (0 = ask for
  // the class default); the response echoes what the policy table actually
  // granted — classes may be demoted and budgets clamped.
  std::uint8_t qos_class = 0;          ///< in: requested SqPriority
  std::uint8_t qos_granted_class = 0;  ///< out: class the manager granted
  /// in (v6): DRR weight the tenant's share carries (create_share; 0 is
  /// treated as 1). Was pad5.
  std::uint16_t share_weight = 0;
  std::uint32_t qos_iops = 0;             ///< in: requested IOPS budget
  std::uint32_t qos_bytes_per_s = 0;      ///< in: requested bytes/s budget
  std::uint32_t qos_granted_iops = 0;     ///< out: granted IOPS (0 = unpaced)
  std::uint32_t qos_granted_bytes_per_s = 0;  ///< out: granted bytes/s

  /// out (v5): epoch of the manager that served this response. A client with
  /// retries enabled rejects responses from an epoch older than the lease it
  /// last read — a fenced manager cannot confirm grants. Keeps the slot a
  /// cache-line multiple (was pad6).
  std::uint32_t epoch = 0;
};
static_assert(sizeof(MboxSlot) == 128);

/// Cluster-wide QoS policy for one priority class, published by the manager
/// so clients can see what a grant request will be judged against.
struct QosPolicyEntry {
  std::uint8_t allowed = 1;  ///< 0: requests for this class are rejected
  std::uint8_t pad[3] = {};
  std::uint32_t max_iops = 0;        ///< per-client IOPS cap; 0 = unlimited
  std::uint32_t max_bytes_per_s = 0; ///< per-client bytes/s cap; 0 = unlimited
  std::uint32_t reserved = 0;
};
static_assert(sizeof(QosPolicyEntry) == 16);

/// The policy table, one entry per SqPriority class (urgent..low), written
/// at kQosPolicyOffset in the metadata segment (v4).
struct QosPolicyTable {
  QosPolicyEntry classes[4] = {};
};
static_assert(sizeof(QosPolicyTable) == 64);

/// Byte offset of the QoS policy table: right after the fixed header,
/// inside the 4096-byte reserved area that precedes the mailbox slots.
inline constexpr std::uint64_t kQosPolicyOffset = 64;

/// ManagerLease::state values.
enum class LeaseState : std::uint32_t {
  none = 0,      ///< manager does not publish leases (lease_duration_ns = 0)
  active = 1,    ///< epoch holder is serving and renewing
  claiming = 2,  ///< a standby has claimed the next epoch and is taking over
};

/// Manager liveness lease (v5), at kLeaseOffset. The active manager renews
/// `expires_at_ns` every lease_duration/4; a standby that reads a lease past
/// its expiry claims `epoch + 1` by writing this slot (node-staggered, so
/// concurrent standbys resolve deterministically). epoch 0 means the device
/// was brought up without HA — standbys refuse to watch it.
struct ManagerLease {
  std::uint64_t epoch = 0;
  std::uint64_t expires_at_ns = 0;  ///< sim time the lease lapses
  std::uint32_t manager_node = 0;   ///< current (or claiming) epoch holder
  std::uint32_t state = 0;          ///< LeaseState
};
static_assert(sizeof(ManagerLease) == 24);

inline constexpr std::uint64_t kLeaseOffset = 128;

/// Where the admin rings live and how far they have advanced (v5), at
/// kAdminJournalOffset. AQA/ASQ/ACQ are latched at CC.EN — rebuilding them
/// would require a controller reset that kills every I/O queue — so a
/// standby must *continue* the old rings. The active manager journals the
/// ring cursors right after pushing an SQE (before the doorbell) and after
/// consuming each completion; the journal is local memory, so the writes
/// cost nothing on the admin path.
struct AdminRingJournal {
  std::uint32_t asq_node = 0;     ///< host whose DRAM holds the ASQ
  std::uint32_t asq_segment = 0;  ///< sisci segment id of the ASQ
  std::uint32_t acq_node = 0;
  std::uint32_t acq_segment = 0;
  std::uint16_t entries = 0;  ///< ring size (AQA programs both rings alike)
  std::uint16_t sq_tail = 0;
  std::uint16_t cq_head = 0;
  std::uint16_t next_cid = 0;
  std::uint32_t phase = 1;  ///< expected CQ phase tag (0/1)
  std::uint32_t pad = 0;
};
static_assert(sizeof(AdminRingJournal) == 32);

inline constexpr std::uint64_t kAdminJournalOffset = 160;

/// QpOwnerEntry::state values. `pending` is a write-ahead intent: it is
/// written before the admin create commands are issued and flipped to
/// `active` only after both succeed, so a takeover can roll back grants the
/// old manager died in the middle of.
enum class QpOwnerState : std::uint32_t {
  free = 0,
  pending = 1,
  active = 2,
};

/// One per-qid grant record (v5), at kOwnerTableOffset + qid * sizeof. The
/// manager mirrors its private grant bookkeeping here on every transition;
/// a standby reconstructs qid ownership, QoS grants, and reaper state by
/// scanning this table — no new source of truth, just the existing one made
/// crash-readable.
struct QpOwnerEntry {
  std::uint32_t state = 0;  ///< QpOwnerState
  std::uint32_t owner_node = 0;
  std::uint64_t sq_device_addr = 0;
  std::uint64_t cq_device_addr = 0;
  std::uint64_t created_at_ns = 0;  ///< grant time (reaper grace anchor)
  std::uint16_t sq_size = 0;
  std::uint16_t cq_size = 0;
  std::uint8_t qos_class = 0;  ///< granted SqPriority
  std::uint8_t pad0 = 0;
  std::uint16_t pad1 = 0;
  std::uint32_t granted_iops = 0;
  std::uint32_t granted_bytes_per_s = 0;
};
static_assert(sizeof(QpOwnerEntry) == 48);

/// Owner-table capacity: the controller ceiling on queue pairs (31 I/O
/// queues + admin), rounded to a power of two.
inline constexpr std::uint32_t kOwnerTableEntries = 32;

inline constexpr std::uint64_t kOwnerTableOffset = 256;
static_assert(kOwnerTableOffset + kOwnerTableEntries * sizeof(QpOwnerEntry) <= 4096,
              "owner table must fit the reserved header area");

/// Byte offset of qid `q`'s owner entry within the metadata segment.
constexpr std::uint64_t owner_entry_offset(std::uint16_t q) {
  return kOwnerTableOffset + static_cast<std::uint64_t>(q) * sizeof(QpOwnerEntry);
}

/// Byte offset of node `n`'s slot within the metadata segment.
constexpr std::uint64_t mbox_slot_offset(const MetadataHeader& h, std::uint32_t node) {
  return h.mailbox_offset + static_cast<std::uint64_t>(node) * sizeof(MboxSlot);
}

/// Total metadata segment size for an `n`-node cluster.
constexpr std::uint64_t metadata_segment_size(std::uint32_t nodes) {
  return 4096 + static_cast<std::uint64_t>(nodes) * sizeof(MboxSlot);
}

}  // namespace nvmeshare::driver
