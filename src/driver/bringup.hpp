// BareController: classic single-host NVMe controller bring-up, used by the
// baselines (stock-Linux-style local driver and the SPDK-style NVMe-oF
// target). Runs on the host the device is installed in and talks to BAR0
// directly — no SmartIO, no NTBs. The paper's distributed driver performs
// the same steps through the SmartIO abstractions (see driver/manager.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/status.hpp"
#include "driver/cost_model.hpp"
#include "nvme/queue.hpp"
#include "nvme/spec.hpp"
#include "sisci/sisci.hpp"

namespace nvmeshare::driver {

class BareController {
 public:
  struct Config {
    std::uint16_t admin_entries = 32;
    std::uint16_t requested_io_queues = 31;
    CostModel costs = CostModel::stock_linux();
  };

  /// Reset and enable the controller, set up admin queues in local DRAM,
  /// identify controller + namespace, and negotiate I/O queue count.
  static sim::Future<Result<std::unique_ptr<BareController>>> init(sisci::Cluster& cluster,
                                                                   pcie::EndpointId endpoint,
                                                                   Config cfg);

  ~BareController();
  BareController(const BareController&) = delete;
  BareController& operator=(const BareController&) = delete;

  /// Issue one admin command and await its completion (serialized).
  sim::Future<Result<nvme::CompletionEntry>> submit_admin(nvme::SubmissionEntry entry);

  /// Create an I/O queue pair with both queues in this host's memory.
  /// Returns the queue id. `irq_vector`: MSI-X vector for CQ interrupts,
  /// or nullopt for a polled CQ.
  sim::Future<Result<std::uint16_t>> create_queue_pair(std::uint64_t sq_addr,
                                                       std::uint16_t sq_size,
                                                       std::uint64_t cq_addr,
                                                       std::uint16_t cq_size,
                                                       std::optional<std::uint16_t> irq_vector);
  sim::Future<Result<std::uint16_t>> delete_queue_pair(std::uint16_t qid);

  // --- discovered properties ---------------------------------------------------
  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept { return capacity_blocks_; }
  [[nodiscard]] std::uint32_t block_size() const noexcept { return block_size_; }
  [[nodiscard]] std::uint32_t max_transfer_bytes() const noexcept { return mdts_bytes_; }
  [[nodiscard]] std::uint16_t granted_io_queues() const noexcept { return granted_io_queues_; }
  [[nodiscard]] std::uint64_t bar_base() const noexcept { return bar_base_; }
  [[nodiscard]] pcie::HostId host() const noexcept { return host_; }
  [[nodiscard]] sisci::Cluster& cluster() noexcept { return cluster_; }

  /// Doorbell addresses for queue `qid` (local BAR addresses).
  [[nodiscard]] std::uint64_t sq_doorbell(std::uint16_t qid) const {
    return bar_base_ + nvme::sq_doorbell_offset(qid);
  }
  [[nodiscard]] std::uint64_t cq_doorbell(std::uint16_t qid) const {
    return bar_base_ + nvme::cq_doorbell_offset(qid);
  }

  /// Program MSI-X table entry `vector` to fire at `addr` with `data`.
  Status program_msix(std::uint16_t vector, std::uint64_t addr, std::uint32_t data);

 private:
  BareController(sisci::Cluster& cluster, pcie::EndpointId endpoint, Config cfg);

  static sim::Task init_task(std::unique_ptr<BareController> self,
                             sim::Promise<Result<std::unique_ptr<BareController>>> promise);
  sim::Task admin_task(nvme::SubmissionEntry entry,
                       sim::Promise<Result<nvme::CompletionEntry>> promise);
  sim::Task create_qp_task(std::uint64_t sq_addr, std::uint16_t sq_size, std::uint64_t cq_addr,
                           std::uint16_t cq_size, std::optional<std::uint16_t> irq_vector,
                           sim::Promise<Result<std::uint16_t>> promise);
  sim::Task delete_qp_task(std::uint16_t qid, sim::Promise<Result<std::uint16_t>> promise);

  sisci::Cluster& cluster_;
  pcie::EndpointId endpoint_;
  Config cfg_;
  pcie::HostId host_ = 0;
  std::uint64_t bar_base_ = 0;
  std::uint64_t asq_addr_ = 0;
  std::uint64_t acq_addr_ = 0;
  std::uint64_t admin_data_addr_ = 0;  ///< 4 KiB buffer for identify payloads
  std::unique_ptr<nvme::QueuePair> admin_qp_;
  std::unique_ptr<sim::Semaphore> admin_lock_;
  Rng rng_{0xbabe};

  std::uint64_t capacity_blocks_ = 0;
  std::uint32_t block_size_ = 0;
  std::uint32_t mdts_bytes_ = 0;
  std::uint16_t granted_io_queues_ = 0;
  std::uint16_t next_qid_ = 1;
};

}  // namespace nvmeshare::driver
