// Stock-Linux-style local NVMe driver: the paper's local baseline.
//
// Runs on the host the device is installed in, brings the controller up
// directly (BareController), uses one I/O queue pair in local DRAM, DMAs
// straight into request buffers (no bounce buffer), and completes requests
// from MSI-X interrupts — a mature, lean submission path with
// interrupt-driven completion, exactly what Figure 9a's "stock Linux
// driver" scenario uses.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "block/block.hpp"
#include "driver/bringup.hpp"
#include "driver/cost_model.hpp"
#include "driver/irq.hpp"
#include "nvme/queue.hpp"
#include "obs/metrics.hpp"

namespace nvmeshare::driver {

class LocalDriver final : public block::BlockDevice {
 public:
  struct Config {
    std::uint16_t queue_entries = 256;
    std::uint32_t queue_depth = 128;
    CostModel costs = CostModel::stock_linux();
    /// false = poll the CQ instead of using MSI-X (SPDK-style usage).
    bool use_interrupts = true;
    std::uint64_t seed = 0x10ca1;
  };

  /// Bring up the controller and one I/O queue pair. `irq` may be null
  /// when use_interrupts is false.
  static sim::Future<Result<std::unique_ptr<LocalDriver>>> start(sisci::Cluster& cluster,
                                                                 pcie::EndpointId endpoint,
                                                                 IrqController* irq,
                                                                 Config cfg);

  ~LocalDriver() override;
  LocalDriver(const LocalDriver&) = delete;
  LocalDriver& operator=(const LocalDriver&) = delete;

  // --- block::BlockDevice ------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "nvme-local"; }
  [[nodiscard]] std::uint32_t block_size() const override { return ctrl_->block_size(); }
  [[nodiscard]] std::uint64_t capacity_blocks() const override {
    return ctrl_->capacity_blocks();
  }
  [[nodiscard]] std::uint32_t max_queue_depth() const override { return cfg_.queue_depth; }
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override {
    return ctrl_->max_transfer_bytes();
  }
  sim::Future<block::Completion> submit(const block::Request& request) override;

  [[nodiscard]] BareController& controller() noexcept { return *ctrl_; }

  /// Per-driver counters, also registered as `nvmeshare.local_driver.*`.
  struct Stats {
    Stats();
    obs::Counter reads;
    obs::Counter writes;
    obs::Counter flushes;
    obs::Counter errors;
    obs::Counter interrupts;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  LocalDriver(sisci::Cluster& cluster, Config cfg);

  static sim::Task init_task(std::unique_ptr<LocalDriver> self, pcie::EndpointId endpoint,
                             IrqController* irq,
                             sim::Promise<Result<std::unique_ptr<LocalDriver>>> promise);
  sim::Task io_task(block::Request request, sim::Promise<block::Completion> promise);
  sim::Task completion_loop(std::shared_ptr<bool> stop);

  void drain_cq();

  sisci::Cluster& cluster_;
  Config cfg_;
  Rng rng_;
  std::unique_ptr<BareController> ctrl_;
  IrqController* irq_ = nullptr;
  std::uint32_t irq_vector_ = 0;
  bool irq_vector_allocated_ = false;

  std::uint64_t sq_addr_ = 0;
  std::uint64_t cq_addr_ = 0;
  std::uint64_t prp_pages_addr_ = 0;  ///< queue_depth PRP-list pages
  std::uint16_t qid_ = 0;
  std::unique_ptr<nvme::QueuePair> qp_;

  std::unique_ptr<sim::Semaphore> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::map<std::uint16_t, sim::Promise<nvme::CompletionEntry>> pending_;
  std::unique_ptr<sim::Event> irq_event_;
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  Stats stats_;
};

}  // namespace nvmeshare::driver
