// Stock-Linux-style local NVMe driver: the paper's local baseline.
//
// Runs on the host the device is installed in, brings the controller up
// directly (BareController), uses one or more I/O queue pairs in local DRAM
// (one per channel, sharing a single MSI-X vector), DMAs straight into
// request buffers (no bounce buffer), and completes requests from MSI-X
// interrupts — a mature, lean submission path with interrupt-driven
// completion, exactly what Figure 9a's "stock Linux driver" scenario uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "block/block.hpp"
#include "block/io_engine.hpp"
#include "driver/bringup.hpp"
#include "driver/cost_model.hpp"
#include "driver/irq.hpp"
#include "nvme/queue.hpp"
#include "obs/metrics.hpp"

namespace nvmeshare::driver {

class LocalDriver final : public block::BlockDevice, private block::IoTransport {
 public:
  struct Config {
    std::uint16_t queue_entries = 256;  ///< SQ/CQ entries per channel
    std::uint32_t queue_depth = 128;    ///< concurrent requests per channel
    /// I/O channels (queue pairs); all share one MSI-X vector.
    std::uint32_t channels = 1;
    block::IoEngine::Scheduler scheduler = block::IoEngine::Scheduler::round_robin;
    /// Ring each SQ doorbell once per submission burst (off = seed stream).
    bool coalesce_doorbells = false;
    CostModel costs = CostModel::stock_linux();
    /// false = poll the CQ instead of using MSI-X (SPDK-style usage).
    bool use_interrupts = true;
    std::uint64_t seed = 0x10ca1;
  };

  /// Bring up the controller and the I/O queue pairs. `irq` may be null
  /// when use_interrupts is false.
  static sim::Future<Result<std::unique_ptr<LocalDriver>>> start(sisci::Cluster& cluster,
                                                                 pcie::EndpointId endpoint,
                                                                 IrqController* irq,
                                                                 Config cfg);

  ~LocalDriver() override;
  LocalDriver(const LocalDriver&) = delete;
  LocalDriver& operator=(const LocalDriver&) = delete;

  // --- block::BlockDevice ------------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "nvme-local"; }
  [[nodiscard]] std::uint32_t block_size() const override { return ctrl_->block_size(); }
  [[nodiscard]] std::uint64_t capacity_blocks() const override {
    return ctrl_->capacity_blocks();
  }
  [[nodiscard]] std::uint32_t max_queue_depth() const override {
    return cfg_.queue_depth * cfg_.channels;
  }
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override {
    return ctrl_->max_transfer_bytes();
  }
  sim::Future<block::Completion> submit(const block::Request& request) override;

  [[nodiscard]] BareController& controller() noexcept { return *ctrl_; }
  /// The shared submission core (per-channel inflight/doorbell metrics).
  [[nodiscard]] const block::IoEngine& io_engine() const noexcept { return *engine_io_; }

  /// Per-driver counters, also registered as `nvmeshare.local_driver.*`.
  struct Stats {
    Stats();
    obs::Counter reads;
    obs::Counter writes;
    obs::Counter flushes;
    obs::Counter errors;
    obs::Counter interrupts;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  LocalDriver(sisci::Cluster& cluster, Config cfg);

  static sim::Task init_task(std::unique_ptr<LocalDriver> self, pcie::EndpointId endpoint,
                             IrqController* irq,
                             sim::Promise<Result<std::unique_ptr<LocalDriver>>> promise);
  sim::Task io_task(block::Request request, sim::Promise<block::Completion> promise);
  sim::Task completion_loop(std::shared_ptr<bool> stop);

  // --- block::IoTransport (the local queue-pair personality) ---------------
  Result<std::uint16_t> issue(std::uint32_t chan, void* cookie) override;
  Status ring(std::uint32_t chan) override;
  [[nodiscard]] bool retryable(std::uint16_t status) const override;
  void start_recovery(std::uint32_t chan) override;
  [[nodiscard]] std::uint16_t trace_qid(std::uint32_t chan) const override;

  void drain_cq();

  sisci::Cluster& cluster_;
  Config cfg_;
  Rng rng_;
  std::unique_ptr<BareController> ctrl_;
  IrqController* irq_ = nullptr;
  std::uint32_t irq_vector_ = 0;
  bool irq_vector_allocated_ = false;

  std::uint64_t sq_addr_ = 0;  ///< channel c's SQ at sq_addr_ + c * ring bytes
  std::uint64_t cq_addr_ = 0;
  std::uint64_t prp_pages_addr_ = 0;  ///< total_depth PRP-list pages
  std::vector<std::uint16_t> qids_;
  std::vector<std::unique_ptr<nvme::QueuePair>> qps_;
  std::unique_ptr<block::IoEngine> engine_io_;

  std::unique_ptr<sim::Event> irq_event_;
  std::shared_ptr<bool> stop_ = std::make_shared<bool>(false);
  Stats stats_;
};

}  // namespace nvmeshare::driver
