#include "driver/local_driver.hpp"

#include "common/log.hpp"

namespace nvmeshare::driver {

using nvme::CompletionEntry;
using nvme::SubmissionEntry;

LocalDriver::Stats::Stats()
    : reads("nvmeshare.local_driver.reads"),
      writes("nvmeshare.local_driver.writes"),
      flushes("nvmeshare.local_driver.flushes"),
      errors("nvmeshare.local_driver.errors"),
      interrupts("nvmeshare.local_driver.interrupts") {}

LocalDriver::LocalDriver(sisci::Cluster& cluster, Config cfg)
    : cluster_(cluster), cfg_(cfg), rng_(cfg.seed) {}

LocalDriver::~LocalDriver() {
  *stop_ = true;
  if (irq_event_) irq_event_->set();  // unblock the completion loop
  if (irq_ != nullptr && irq_vector_allocated_) irq_->release_vector(irq_vector_);
  if (sq_addr_ != 0 && ctrl_) (void)cluster_.free_dram(ctrl_->host(), sq_addr_);
  if (cq_addr_ != 0 && ctrl_) (void)cluster_.free_dram(ctrl_->host(), cq_addr_);
  if (prp_pages_addr_ != 0 && ctrl_) (void)cluster_.free_dram(ctrl_->host(), prp_pages_addr_);
}

sim::Future<Result<std::unique_ptr<LocalDriver>>> LocalDriver::start(sisci::Cluster& cluster,
                                                                     pcie::EndpointId endpoint,
                                                                     IrqController* irq,
                                                                     Config cfg) {
  sim::Promise<Result<std::unique_ptr<LocalDriver>>> promise(cluster.engine());
  auto self = std::unique_ptr<LocalDriver>(new LocalDriver(cluster, cfg));
  init_task(std::move(self), endpoint, irq, promise);
  return promise.future();
}

sim::Task LocalDriver::init_task(std::unique_ptr<LocalDriver> self, pcie::EndpointId endpoint,
                                 IrqController* irq,
                                 sim::Promise<Result<std::unique_ptr<LocalDriver>>> promise) {
  LocalDriver& d = *self;
  sim::Engine& engine = d.cluster_.engine();

  if (d.cfg_.use_interrupts && irq == nullptr) {
    promise.set(Status(Errc::invalid_argument, "interrupt mode needs an IrqController"));
    co_return;
  }
  if (d.cfg_.queue_depth == 0 ||
      d.cfg_.queue_depth > static_cast<std::uint32_t>(d.cfg_.queue_entries - 1)) {
    promise.set(Status(Errc::invalid_argument, "queue depth exceeds queue size"));
    co_return;
  }

  BareController::Config bc;
  bc.costs = d.cfg_.costs;
  auto ctrl = co_await BareController::init(d.cluster_, endpoint, bc);
  if (!ctrl) {
    promise.set(ctrl.status());
    co_return;
  }
  d.ctrl_ = std::move(*ctrl);
  const pcie::HostId host = d.ctrl_->host();
  pcie::Fabric& fabric = d.cluster_.fabric();

  auto sq = d.cluster_.alloc_dram(host, d.cfg_.queue_entries * 64ull, 4096);
  auto cq = d.cluster_.alloc_dram(host, d.cfg_.queue_entries * 16ull, 4096);
  auto prp = d.cluster_.alloc_dram(
      host, static_cast<std::uint64_t>(d.cfg_.queue_depth) * nvme::kPageSize, 4096);
  if (!sq || !cq || !prp) {
    promise.set(Status(Errc::resource_exhausted, "no DRAM for IO queues"));
    co_return;
  }
  d.sq_addr_ = *sq;
  d.cq_addr_ = *cq;
  d.prp_pages_addr_ = *prp;
  mem::PhysMem& dram = fabric.host_dram(host);
  (void)dram.write(d.sq_addr_, Bytes(d.cfg_.queue_entries * 64ull, std::byte{0}));
  (void)dram.write(d.cq_addr_, Bytes(d.cfg_.queue_entries * 16ull, std::byte{0}));

  d.irq_event_ = std::make_unique<sim::Event>(engine);
  std::optional<std::uint16_t> vector;
  if (d.cfg_.use_interrupts) {
    d.irq_ = irq;
    sim::Event* event = d.irq_event_.get();
    auto stop = d.stop_;
    auto v = irq->allocate_vector([event, stop](std::uint32_t) {
      if (!*stop) event->set();
    });
    if (!v) {
      promise.set(v.status());
      co_return;
    }
    d.irq_vector_ = *v;
    d.irq_vector_allocated_ = true;
    vector = static_cast<std::uint16_t>(*v);
    auto addr = irq->vector_address(*v);
    if (!addr) {
      promise.set(addr.status());
      co_return;
    }
    if (Status st = d.ctrl_->program_msix(*vector, *addr, *v); !st) {
      promise.set(st);
      co_return;
    }
  }

  auto qid = co_await d.ctrl_->create_queue_pair(d.sq_addr_, d.cfg_.queue_entries, d.cq_addr_,
                                                 d.cfg_.queue_entries, vector);
  if (!qid) {
    promise.set(qid.status());
    co_return;
  }
  d.qid_ = *qid;

  nvme::QueuePair::Config qc;
  qc.qid = d.qid_;
  qc.sq_size = d.cfg_.queue_entries;
  qc.cq_size = d.cfg_.queue_entries;
  qc.sq_write_addr = d.sq_addr_;
  qc.cq_poll_addr = d.cq_addr_;
  qc.sq_doorbell_addr = d.ctrl_->sq_doorbell(d.qid_);
  qc.cq_doorbell_addr = d.ctrl_->cq_doorbell(d.qid_);
  qc.cpu = fabric.cpu(host);
  d.qp_ = std::make_unique<nvme::QueuePair>(fabric, qc);

  d.slots_ = std::make_unique<sim::Semaphore>(engine, d.cfg_.queue_depth);
  d.free_slots_.resize(d.cfg_.queue_depth);
  for (std::uint32_t i = 0; i < d.cfg_.queue_depth; ++i) {
    d.free_slots_[i] = d.cfg_.queue_depth - 1 - i;
  }
  d.completion_loop(d.stop_);
  NVS_LOG(info, "local") << "local driver up, qid " << d.qid_
                         << (d.cfg_.use_interrupts ? " (MSI-X)" : " (polled)");
  promise.set(std::move(self));
}

sim::Future<block::Completion> LocalDriver::submit(const block::Request& request) {
  sim::Promise<block::Completion> promise(cluster_.engine());
  io_task(request, promise);
  return promise.future();
}

sim::Task LocalDriver::io_task(block::Request request,
                               sim::Promise<block::Completion> promise) {
  auto stop = stop_;
  sim::Engine& eng = cluster_.engine();
  const sim::Time start = eng.now();
  auto finish = [&](Status st) {
    if (!st) ++stats_.errors;
    promise.set(block::Completion{std::move(st), eng.now() - start});
  };

  if (Status st = block::validate_request(*this, request); !st) {
    finish(st);
    co_return;
  }
  co_await slots_->acquire();
  if (*stop) {
    slots_->release();
    finish(Status(Errc::aborted, "driver stopped"));
    co_return;
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();

  co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.submit_ns, rng_));

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(request.nblocks) * ctrl_->block_size();

  // Direct DMA: PRPs point straight at the request buffer (local memory, no
  // bounce). PRP lists are written per request into this slot's list page.
  std::uint64_t prp1 = 0;
  std::uint64_t prp2 = 0;
  if (request.op == block::Op::discard) {
    nvme::DsmRange range;
    range.nlb = request.nblocks;
    range.slba = request.lba;
    const std::uint64_t page =
        prp_pages_addr_ + static_cast<std::uint64_t>(slot) * nvme::kPageSize;
    (void)cluster_.fabric().host_dram(ctrl_->host()).write(page, as_bytes_of(range));
    prp1 = page;
  } else if (request.op == block::Op::read || request.op == block::Op::write) {
    const std::uint64_t base = align_down(request.buffer_addr, nvme::kPageSize);
    const std::uint64_t span = align_up(request.buffer_addr + bytes, nvme::kPageSize) - base;
    const std::uint64_t pages = span / nvme::kPageSize;
    prp1 = request.buffer_addr;
    if (bytes + (request.buffer_addr - base) <= nvme::kPageSize) {
      prp2 = 0;
    } else if (pages <= 2) {
      prp2 = base + nvme::kPageSize;
    } else {
      Bytes list((pages - 1) * 8);
      for (std::uint64_t j = 0; j + 1 < pages; ++j) {
        store_pod(list, base + (j + 1) * nvme::kPageSize, j * 8);
      }
      const std::uint64_t list_addr =
          prp_pages_addr_ + static_cast<std::uint64_t>(slot) * nvme::kPageSize;
      (void)cluster_.fabric().host_dram(ctrl_->host()).write(list_addr, list);
      prp2 = list_addr;
    }
  }

  SubmissionEntry sqe;
  switch (request.op) {
    case block::Op::flush:
      sqe = nvme::make_flush(0, 1);
      ++stats_.flushes;
      break;
    case block::Op::read:
      sqe = nvme::make_io_rw(false, 0, 1, request.lba,
                             static_cast<std::uint16_t>(request.nblocks), prp1, prp2);
      ++stats_.reads;
      break;
    case block::Op::write:
      sqe = nvme::make_io_rw(true, 0, 1, request.lba,
                             static_cast<std::uint16_t>(request.nblocks), prp1, prp2);
      ++stats_.writes;
      break;
    case block::Op::write_zeroes:
      sqe = nvme::make_write_zeroes(0, 1, request.lba,
                                    static_cast<std::uint16_t>(request.nblocks));
      ++stats_.writes;
      break;
    case block::Op::discard:
      sqe = nvme::make_dsm_deallocate(0, 1, 1, prp1);
      ++stats_.writes;
      break;
  }
  auto cid = qp_->push(sqe);
  if (!cid) {
    free_slots_.push_back(slot);
    slots_->release();
    finish(cid.status());
    co_return;
  }
  auto [it, inserted] = pending_.emplace(*cid, sim::Promise<CompletionEntry>(eng));
  (void)inserted;
  auto cqe_future = it->second.future();

  co_await sim::delay(eng, cfg_.costs.doorbell_ns);
  (void)qp_->ring_sq_doorbell();

  CompletionEntry cqe = co_await cqe_future;
  co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.completion_ns, rng_));

  Status status = Status::ok();
  if (!cqe.ok()) {
    status = Status(Errc::io_error,
                    std::string("NVMe status: ") + nvme::status_name(cqe.status()));
  }
  free_slots_.push_back(slot);
  slots_->release();
  finish(std::move(status));
}

void LocalDriver::drain_cq() {
  bool delivered = false;
  while (auto cqe = qp_->poll()) {
    delivered = true;
    auto it = pending_.find(cqe->cid);
    if (it != pending_.end()) {
      auto promise = std::move(it->second);
      pending_.erase(it);
      promise.set(*cqe);
    }
  }
  if (delivered) (void)qp_->ring_cq_doorbell();
}

sim::Task LocalDriver::completion_loop(std::shared_ptr<bool> stop) {
  sim::Engine& eng = cluster_.engine();
  for (;;) {
    if (*stop) co_return;
    if (cfg_.use_interrupts) {
      co_await irq_event_->wait();
      if (*stop) co_return;
      ++stats_.interrupts;
      // Reset *before* draining: an interrupt that fires while we drain
      // leaves the event set, so its completion is picked up next round.
      irq_event_->reset();
      // Interrupt delivery, wakeup, and handler entry cost.
      co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.irq_delivery_ns, rng_));
      if (*stop) co_return;
      drain_cq();
    } else {
      drain_cq();
      co_await sim::delay(eng, std::max<sim::Duration>(cfg_.costs.poll_interval_ns, 100));
      if (*stop) co_return;
    }
  }
}

}  // namespace nvmeshare::driver
