#include "driver/local_driver.hpp"

#include <array>

#include "common/log.hpp"

namespace nvmeshare::driver {

using nvme::SubmissionEntry;

LocalDriver::Stats::Stats()
    : reads("nvmeshare.local_driver.reads"),
      writes("nvmeshare.local_driver.writes"),
      flushes("nvmeshare.local_driver.flushes"),
      errors("nvmeshare.local_driver.errors"),
      interrupts("nvmeshare.local_driver.interrupts") {}

LocalDriver::LocalDriver(sisci::Cluster& cluster, Config cfg)
    : cluster_(cluster), cfg_(cfg), rng_(cfg.seed) {}

LocalDriver::~LocalDriver() {
  *stop_ = true;
  if (irq_event_) irq_event_->set();  // unblock the completion loop
  if (irq_ != nullptr && irq_vector_allocated_) irq_->release_vector(irq_vector_);
  if (sq_addr_ != 0 && ctrl_) (void)cluster_.free_dram(ctrl_->host(), sq_addr_);
  if (cq_addr_ != 0 && ctrl_) (void)cluster_.free_dram(ctrl_->host(), cq_addr_);
  if (prp_pages_addr_ != 0 && ctrl_) (void)cluster_.free_dram(ctrl_->host(), prp_pages_addr_);
}

// --- block::IoTransport -------------------------------------------------------------

Result<std::uint16_t> LocalDriver::issue(std::uint32_t chan, void* cookie) {
  return qps_[chan]->push(*static_cast<const SubmissionEntry*>(cookie));
}

Status LocalDriver::ring(std::uint32_t chan) { return qps_[chan]->ring_sq_doorbell(); }

bool LocalDriver::retryable(std::uint16_t status) const {
  // The local baseline reports controller errors straight up (no deadline
  // watchdog is configured, so the engine never retries anyway).
  (void)status;
  return false;
}

void LocalDriver::start_recovery(std::uint32_t chan) {
  // A local device has no manager or fabric to rebuild through; fail what
  // is pending and declare the channel recovered (commands then exhaust
  // their retry budgets and report timeouts).
  engine_io_->fail_pending(chan);
  engine_io_->finish_recovery(chan);
}

std::uint16_t LocalDriver::trace_qid(std::uint32_t chan) const { return qids_[chan]; }

sim::Future<Result<std::unique_ptr<LocalDriver>>> LocalDriver::start(sisci::Cluster& cluster,
                                                                     pcie::EndpointId endpoint,
                                                                     IrqController* irq,
                                                                     Config cfg) {
  sim::Promise<Result<std::unique_ptr<LocalDriver>>> promise(cluster.engine());
  auto self = std::unique_ptr<LocalDriver>(new LocalDriver(cluster, cfg));
  init_task(std::move(self), endpoint, irq, promise);
  return promise.future();
}

sim::Task LocalDriver::init_task(std::unique_ptr<LocalDriver> self, pcie::EndpointId endpoint,
                                 IrqController* irq,
                                 sim::Promise<Result<std::unique_ptr<LocalDriver>>> promise) {
  LocalDriver& d = *self;
  sim::Engine& engine = d.cluster_.engine();

  if (d.cfg_.use_interrupts && irq == nullptr) {
    promise.set(Status(Errc::invalid_argument, "interrupt mode needs an IrqController"));
    co_return;
  }
  block::IoEngine::Config ec;
  ec.backend = "local";
  ec.channels = d.cfg_.channels;
  ec.queue_depth = d.cfg_.queue_depth;
  ec.queue_entries = d.cfg_.queue_entries;
  ec.scheduler = d.cfg_.scheduler;
  ec.coalesce_doorbells = d.cfg_.coalesce_doorbells;
  ec.doorbell_ns = d.cfg_.costs.doorbell_ns;
  if (Status st = block::IoEngine::validate(ec); !st) {
    promise.set(st);
    co_return;
  }
  const std::uint32_t total_depth = d.cfg_.queue_depth * d.cfg_.channels;

  BareController::Config bc;
  bc.costs = d.cfg_.costs;
  auto ctrl = co_await BareController::init(d.cluster_, endpoint, bc);
  if (!ctrl) {
    promise.set(ctrl.status());
    co_return;
  }
  d.ctrl_ = std::move(*ctrl);
  const pcie::HostId host = d.ctrl_->host();
  fabric::Substrate& fabric = d.cluster_.fabric();

  // Per-channel ring stride. Single-channel keeps the seed-exact ring size;
  // multi-channel slices are page-rounded because NVMe queue base addresses
  // must be page-aligned.
  const std::uint64_t sq_ring_bytes =
      d.cfg_.channels == 1 ? d.cfg_.queue_entries * 64ull
                           : div_ceil(d.cfg_.queue_entries * 64ull, nvme::kPageSize) *
                                 nvme::kPageSize;
  const std::uint64_t cq_ring_bytes =
      d.cfg_.channels == 1 ? d.cfg_.queue_entries * 16ull
                           : div_ceil(d.cfg_.queue_entries * 16ull, nvme::kPageSize) *
                                 nvme::kPageSize;
  auto sq = d.cluster_.alloc_dram(host, sq_ring_bytes * d.cfg_.channels, 4096);
  auto cq = d.cluster_.alloc_dram(host, cq_ring_bytes * d.cfg_.channels, 4096);
  auto prp = d.cluster_.alloc_dram(
      host, static_cast<std::uint64_t>(total_depth) * nvme::kPageSize, 4096);
  if (!sq || !cq || !prp) {
    promise.set(Status(Errc::resource_exhausted, "no DRAM for IO queues"));
    co_return;
  }
  d.sq_addr_ = *sq;
  d.cq_addr_ = *cq;
  d.prp_pages_addr_ = *prp;
  mem::PhysMem& dram = fabric.host_dram(host);
  (void)dram.write(d.sq_addr_, Bytes(sq_ring_bytes * d.cfg_.channels, std::byte{0}));
  (void)dram.write(d.cq_addr_, Bytes(cq_ring_bytes * d.cfg_.channels, std::byte{0}));

  d.irq_event_ = std::make_unique<sim::Event>(engine);
  std::optional<std::uint16_t> vector;
  if (d.cfg_.use_interrupts) {
    d.irq_ = irq;
    sim::Event* event = d.irq_event_.get();
    auto stop = d.stop_;
    auto v = irq->allocate_vector([event, stop](std::uint32_t) {
      if (!*stop) event->set();
    });
    if (!v) {
      promise.set(v.status());
      co_return;
    }
    d.irq_vector_ = *v;
    d.irq_vector_allocated_ = true;
    vector = static_cast<std::uint16_t>(*v);
    auto addr = irq->vector_address(*v);
    if (!addr) {
      promise.set(addr.status());
      co_return;
    }
    if (Status st = d.ctrl_->program_msix(*vector, *addr, *v); !st) {
      promise.set(st);
      co_return;
    }
  }

  // One queue pair per channel, each on its own slice of the shared ring
  // allocations, all raising the same MSI-X vector.
  d.qids_.resize(d.cfg_.channels);
  d.qps_.resize(d.cfg_.channels);
  for (std::uint32_t chan = 0; chan < d.cfg_.channels; ++chan) {
    const std::uint64_t sq_base = d.sq_addr_ + chan * sq_ring_bytes;
    const std::uint64_t cq_base = d.cq_addr_ + chan * cq_ring_bytes;
    auto qid = co_await d.ctrl_->create_queue_pair(sq_base, d.cfg_.queue_entries, cq_base,
                                                   d.cfg_.queue_entries, vector);
    if (!qid) {
      promise.set(qid.status());
      co_return;
    }
    d.qids_[chan] = *qid;

    nvme::QueuePair::Config qc;
    qc.qid = *qid;
    qc.sq_size = d.cfg_.queue_entries;
    qc.cq_size = d.cfg_.queue_entries;
    qc.sq_write_addr = sq_base;
    qc.cq_poll_addr = cq_base;
    qc.sq_doorbell_addr = d.ctrl_->sq_doorbell(*qid);
    qc.cq_doorbell_addr = d.ctrl_->cq_doorbell(*qid);
    qc.cpu = fabric.cpu(host);
    d.qps_[chan] = std::make_unique<nvme::QueuePair>(fabric, qc);
  }

  block::IoTransport& transport = d;
  d.engine_io_ = std::make_unique<block::IoEngine>(engine, transport, d.stop_, ec);
  d.completion_loop(d.stop_);
  NVS_LOG(info, "local") << "local driver up, qid " << d.qids_[0]
                         << (d.cfg_.channels > 1
                                 ? " (+" + std::to_string(d.cfg_.channels - 1) + " channels)"
                                 : "")
                         << (d.cfg_.use_interrupts ? " (MSI-X)" : " (polled)");
  promise.set(std::move(self));
}

sim::Future<block::Completion> LocalDriver::submit(const block::Request& request) {
  sim::Promise<block::Completion> promise(cluster_.engine());
  io_task(request, promise);
  return promise.future();
}

sim::Task LocalDriver::io_task(block::Request request,
                               sim::Promise<block::Completion> promise) {
  auto stop = stop_;
  sim::Engine& eng = cluster_.engine();
  const sim::Time start = eng.now();
  auto finish = [&](Status st) {
    if (!st) ++stats_.errors;
    promise.set(block::Completion{std::move(st), eng.now() - start});
  };

  if (Status st = block::validate_request(*this, request); !st) {
    finish(st);
    co_return;
  }
  const block::IoEngine::Grant grant = co_await engine_io_->acquire();
  if (*stop) {
    engine_io_->release(grant);
    finish(Status(Errc::aborted, "driver stopped"));
    co_return;
  }
  const std::uint32_t slot = grant.slot;

  co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.submit_ns, rng_));

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(request.nblocks) * ctrl_->block_size();

  // Direct DMA: PRPs point straight at the request buffer (local memory, no
  // bounce). PRP lists are written per request into this slot's list page.
  std::uint64_t prp1 = 0;
  std::uint64_t prp2 = 0;
  if (request.op == block::Op::discard) {
    nvme::DsmRange range;
    range.nlb = request.nblocks;
    range.slba = request.lba;
    const std::uint64_t page =
        prp_pages_addr_ + static_cast<std::uint64_t>(slot) * nvme::kPageSize;
    (void)cluster_.fabric().host_dram(ctrl_->host()).write(page, as_bytes_of(range));
    prp1 = page;
  } else if (request.op == block::Op::read || request.op == block::Op::write) {
    const std::uint64_t base = align_down(request.buffer_addr, nvme::kPageSize);
    const std::uint64_t span = align_up(request.buffer_addr + bytes, nvme::kPageSize) - base;
    const std::uint64_t pages = span / nvme::kPageSize;
    prp1 = request.buffer_addr;
    if (bytes + (request.buffer_addr - base) <= nvme::kPageSize) {
      prp2 = 0;
    } else if (pages <= 2) {
      prp2 = base + nvme::kPageSize;
    } else {
      Bytes list((pages - 1) * 8);
      for (std::uint64_t j = 0; j + 1 < pages; ++j) {
        store_pod(list, base + (j + 1) * nvme::kPageSize, j * 8);
      }
      const std::uint64_t list_addr =
          prp_pages_addr_ + static_cast<std::uint64_t>(slot) * nvme::kPageSize;
      (void)cluster_.fabric().host_dram(ctrl_->host()).write(list_addr, list);
      prp2 = list_addr;
    }
  }

  SubmissionEntry sqe;
  switch (request.op) {
    case block::Op::flush:
      sqe = nvme::make_flush(0, 1);
      ++stats_.flushes;
      break;
    case block::Op::read:
      sqe = nvme::make_io_rw(false, 0, 1, request.lba,
                             static_cast<std::uint16_t>(request.nblocks), prp1, prp2);
      ++stats_.reads;
      break;
    case block::Op::write:
      sqe = nvme::make_io_rw(true, 0, 1, request.lba,
                             static_cast<std::uint16_t>(request.nblocks), prp1, prp2);
      ++stats_.writes;
      break;
    case block::Op::write_zeroes:
      sqe = nvme::make_write_zeroes(0, 1, request.lba,
                                    static_cast<std::uint16_t>(request.nblocks));
      ++stats_.writes;
      break;
    case block::Op::discard:
      sqe = nvme::make_dsm_deallocate(0, 1, 1, prp1);
      ++stats_.writes;
      break;
  }
  block::IoEngine::RunArgs run_args;
  run_args.grant = grant;
  run_args.cookie = &sqe;
  const block::CmdOutcome outcome = co_await engine_io_->run(run_args);
  if (outcome.kind == block::CmdOutcome::Kind::aborted) {
    engine_io_->release(grant);
    finish(Status(Errc::aborted, "driver stopped"));
    co_return;
  }
  if (outcome.kind == block::CmdOutcome::Kind::transport_error) {
    engine_io_->release(grant);
    finish(outcome.transport);
    co_return;
  }
  if (outcome.kind == block::CmdOutcome::Kind::timed_out) {
    engine_io_->release(grant);
    finish(Status(Errc::timed_out, "command timed out"));
    co_return;
  }
  co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.completion_ns, rng_));

  Status status = Status::ok();
  if (outcome.status != 0) {
    status = Status(Errc::io_error,
                    std::string("NVMe status: ") + nvme::status_name(outcome.status));
  }
  engine_io_->release(grant);
  finish(std::move(status));
}

void LocalDriver::drain_cq() {
  std::array<nvme::CompletionEntry, 32> cqes;
  for (std::uint32_t chan = 0; chan < cfg_.channels; ++chan) {
    bool delivered = false;
    for (;;) {
      const std::size_t n = qps_[chan]->reap(cqes);
      for (std::size_t i = 0; i < n; ++i) {
        (void)engine_io_->complete(chan, cqes[i].cid, cqes[i].status());
      }
      if (n > 0) delivered = true;
      if (n < cqes.size()) break;
    }
    if (delivered) (void)qps_[chan]->ring_cq_doorbell();
  }
}

sim::Task LocalDriver::completion_loop(std::shared_ptr<bool> stop) {
  sim::Engine& eng = cluster_.engine();
  for (;;) {
    if (*stop) co_return;
    if (cfg_.use_interrupts) {
      co_await irq_event_->wait();
      if (*stop) co_return;
      ++stats_.interrupts;
      // Reset *before* draining: an interrupt that fires while we drain
      // leaves the event set, so its completion is picked up next round.
      irq_event_->reset();
      // Interrupt delivery, wakeup, and handler entry cost.
      co_await sim::delay(eng, cfg_.costs.jittered(cfg_.costs.irq_delivery_ns, rng_));
      if (*stop) co_return;
      drain_cq();
    } else {
      drain_cq();
      co_await sim::delay(eng, std::max<sim::Duration>(cfg_.costs.poll_interval_ns, 100));
      if (*stop) co_return;
    }
  }
}

}  // namespace nvmeshare::driver
