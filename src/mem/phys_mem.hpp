// Sparse simulated physical memory (DRAM) for one host.
//
// Pages materialize on first write; reads of untouched memory return zeroes,
// like freshly-allocated RAM. All DMA in the simulator ultimately lands
// here, so data-integrity tests observe exactly what a device would have
// written over the fabric.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace nvmeshare::mem {

class PhysMem {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// A memory of `size` bytes starting at physical address 0.
  explicit PhysMem(std::uint64_t size) : size_(size) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Copy bytes out of memory. Fails with out_of_range past the end.
  Status read(std::uint64_t addr, ByteSpan out) const;

  /// Copy bytes into memory.
  Status write(std::uint64_t addr, ConstByteSpan in);

  /// Read a trivially-copyable value.
  template <typename T>
  [[nodiscard]] Result<T> read_pod(std::uint64_t addr) const {
    T v{};
    if (Status st = read(addr, as_writable_bytes_of(v)); !st) return st;
    return v;
  }

  /// Write a trivially-copyable value.
  template <typename T>
  Status write_pod(std::uint64_t addr, const T& v) {
    return write(addr, as_bytes_of(v));
  }

  /// Number of pages that have been materialized (for tests / footprint).
  [[nodiscard]] std::size_t resident_pages() const noexcept { return pages_.size(); }

 private:
  using Page = std::array<std::byte, kPageSize>;

  [[nodiscard]] const Page* find_page(std::uint64_t page_index) const;
  Page& materialize_page(std::uint64_t page_index);

  std::uint64_t size_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace nvmeshare::mem
