#include "mem/phys_mem.hpp"

#include <algorithm>
#include <cstring>

namespace nvmeshare::mem {

const PhysMem::Page* PhysMem::find_page(std::uint64_t page_index) const {
  auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

PhysMem::Page& PhysMem::materialize_page(std::uint64_t page_index) {
  auto& slot = pages_[page_index];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(std::byte{0});
  }
  return *slot;
}

Status PhysMem::read(std::uint64_t addr, ByteSpan out) const {
  if (out.empty()) return Status::ok();
  if (addr + out.size() > size_ || addr + out.size() < addr) {
    return Status(Errc::out_of_range, "phys read past end of DRAM");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t cur = addr + done;
    const std::uint64_t page = cur / kPageSize;
    const std::uint64_t off = cur % kPageSize;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, static_cast<std::size_t>(kPageSize - off));
    if (const Page* p = find_page(page)) {
      std::memcpy(out.data() + done, p->data() + off, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return Status::ok();
}

Status PhysMem::write(std::uint64_t addr, ConstByteSpan in) {
  if (in.empty()) return Status::ok();
  if (addr + in.size() > size_ || addr + in.size() < addr) {
    return Status(Errc::out_of_range, "phys write past end of DRAM");
  }
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t cur = addr + done;
    const std::uint64_t page = cur / kPageSize;
    const std::uint64_t off = cur % kPageSize;
    const std::size_t chunk =
        std::min<std::size_t>(in.size() - done, static_cast<std::size_t>(kPageSize - off));
    Page& p = materialize_page(page);
    std::memcpy(p.data() + off, in.data() + done, chunk);
    done += chunk;
  }
  return Status::ok();
}

}  // namespace nvmeshare::mem
