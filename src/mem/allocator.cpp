#include "mem/allocator.hpp"

#include "common/units.hpp"

namespace nvmeshare::mem {

RangeAllocator::RangeAllocator(std::uint64_t base, std::uint64_t size)
    : base_(base), size_(size), bytes_free_(size) {
  if (size > 0) free_.emplace(base, size);
}

Result<std::uint64_t> RangeAllocator::alloc(std::uint64_t size, std::uint64_t align) {
  if (size == 0 || !is_pow2(align)) {
    return Status(Errc::invalid_argument, "alloc(size=0) or non-power-of-two alignment");
  }
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::uint64_t start = it->first;
    const std::uint64_t len = it->second;
    const std::uint64_t aligned = align_up(start, align);
    const std::uint64_t pad = aligned - start;
    if (pad + size > len) continue;

    // Split the free block into [start,pad) + allocation + tail.
    free_.erase(it);
    if (pad > 0) free_.emplace(start, pad);
    const std::uint64_t tail = len - pad - size;
    if (tail > 0) free_.emplace(aligned + size, tail);
    allocated_.emplace(aligned, size);
    bytes_free_ -= size;
    return aligned;
  }
  return Status(Errc::resource_exhausted, "no contiguous region large enough");
}

Status RangeAllocator::free(std::uint64_t addr) {
  auto it = allocated_.find(addr);
  if (it == allocated_.end()) {
    return Status(Errc::not_found, "free of address that was not allocated");
  }
  std::uint64_t start = it->first;
  std::uint64_t len = it->second;
  bytes_free_ += len;
  allocated_.erase(it);

  // Coalesce with the next free block if adjacent.
  auto next = free_.lower_bound(start);
  if (next != free_.end() && start + len == next->first) {
    len += next->second;
    next = free_.erase(next);
  }
  // Coalesce with the previous free block if adjacent.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      prev->second += len;
      return Status::ok();
    }
  }
  free_.emplace(start, len);
  return Status::ok();
}

}  // namespace nvmeshare::mem
