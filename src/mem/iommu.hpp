// Page-granular IOMMU model.
//
// The paper's driver uses a static bounce buffer because programming NTB
// mappings per request is too slow; its stated future work is to use the
// IOMMU to map each request's buffer dynamically. We implement that
// extension so the bounce-vs-IOMMU ablation (bench/bounce_vs_iommu) can
// quantify the trade-off: an IOMMU map/unmap costs time on the submission
// path but removes the bounce copy.
#pragma once

#include <cstdint>
#include <map>

#include "common/status.hpp"
#include "common/units.hpp"

namespace nvmeshare::mem {

class Iommu {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  struct Config {
    /// Fixed cost of a map operation (descriptor setup + fence).
    sim::Duration map_fixed_ns = 150;
    /// Cost of each page-table entry store.
    sim::Duration map_per_page_ns = 12;
    /// Fixed cost of an unmap (one IOTLB range invalidation + wait).
    sim::Duration unmap_fixed_ns = 600;
    /// Per-page teardown cost.
    sim::Duration unmap_per_page_ns = 8;
  };

  explicit Iommu(Config cfg) : cfg_(cfg) {}
  Iommu() : Iommu(Config{}) {}

  /// Map [iova, iova+len) -> [phys, phys+len). Both must be page-aligned.
  /// Returns the simulated time the mapping operation costs.
  Result<sim::Duration> map(std::uint64_t iova, std::uint64_t phys, std::uint64_t len);

  /// Remove a mapping previously installed at `iova`.
  Result<sim::Duration> unmap(std::uint64_t iova);

  /// Translate a device-visible address; fails if not mapped. Translation
  /// itself is folded into chip latency (IOTLB hit) and costs no extra time.
  [[nodiscard]] Result<std::uint64_t> translate(std::uint64_t iova) const;

  [[nodiscard]] std::size_t mapping_count() const noexcept { return maps_.size(); }
  [[nodiscard]] std::uint64_t total_maps() const noexcept { return total_maps_; }
  [[nodiscard]] std::uint64_t total_unmaps() const noexcept { return total_unmaps_; }

 private:
  struct Mapping {
    std::uint64_t phys;
    std::uint64_t len;
  };

  Config cfg_;
  std::map<std::uint64_t, Mapping> maps_;  // iova -> mapping
  std::uint64_t total_maps_ = 0;
  std::uint64_t total_unmaps_ = 0;
};

}  // namespace nvmeshare::mem
