#include "mem/iommu.hpp"

#include "common/units.hpp"

namespace nvmeshare::mem {

Result<sim::Duration> Iommu::map(std::uint64_t iova, std::uint64_t phys, std::uint64_t len) {
  if (len == 0 || iova % kPageSize != 0 || phys % kPageSize != 0) {
    return Status(Errc::invalid_argument, "IOMMU map must be page-aligned and non-empty");
  }
  len = align_up(len, kPageSize);
  // Reject overlap with an existing mapping.
  auto next = maps_.lower_bound(iova);
  if (next != maps_.end() && next->first < iova + len) {
    return Status(Errc::already_exists, "IOVA range overlaps existing mapping");
  }
  if (next != maps_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.len > iova) {
      return Status(Errc::already_exists, "IOVA range overlaps existing mapping");
    }
  }
  maps_.emplace(iova, Mapping{phys, len});
  ++total_maps_;
  return cfg_.map_fixed_ns +
         static_cast<sim::Duration>(cfg_.map_per_page_ns * (len / kPageSize));
}

Result<sim::Duration> Iommu::unmap(std::uint64_t iova) {
  auto it = maps_.find(iova);
  if (it == maps_.end()) return Status(Errc::not_found, "no IOMMU mapping at IOVA");
  const std::uint64_t pages = it->second.len / kPageSize;
  maps_.erase(it);
  ++total_unmaps_;
  return cfg_.unmap_fixed_ns + static_cast<sim::Duration>(cfg_.unmap_per_page_ns * pages);
}

Result<std::uint64_t> Iommu::translate(std::uint64_t iova) const {
  auto it = maps_.upper_bound(iova);
  if (it == maps_.begin()) return Status(Errc::unmapped_address, "IOVA not mapped");
  --it;
  if (iova >= it->first + it->second.len) {
    return Status(Errc::unmapped_address, "IOVA not mapped");
  }
  return it->second.phys + (iova - it->first);
}

}  // namespace nvmeshare::mem
