// First-fit free-list allocator over a physical address range. Used for
// carving SISCI segments out of host DRAM: segments must be physically
// contiguous (the paper's segments are linear contiguous regions so that a
// single NTB translation covers them).
#pragma once

#include <cstdint>
#include <map>

#include "common/status.hpp"

namespace nvmeshare::mem {

class RangeAllocator {
 public:
  /// Manages [base, base+size).
  RangeAllocator(std::uint64_t base, std::uint64_t size);

  /// Allocate `size` bytes aligned to `align` (power of two, >= 1).
  Result<std::uint64_t> alloc(std::uint64_t size, std::uint64_t align = 64);

  /// Free a previous allocation by its base address.
  Status free(std::uint64_t addr);

  [[nodiscard]] std::uint64_t bytes_free() const noexcept { return bytes_free_; }
  [[nodiscard]] std::uint64_t bytes_used() const noexcept { return size_ - bytes_free_; }
  [[nodiscard]] std::size_t allocation_count() const noexcept { return allocated_.size(); }

 private:
  std::uint64_t base_;
  std::uint64_t size_;
  std::uint64_t bytes_free_;
  std::map<std::uint64_t, std::uint64_t> free_;       // start -> length
  std::map<std::uint64_t, std::uint64_t> allocated_;  // start -> length
};

}  // namespace nvmeshare::mem
