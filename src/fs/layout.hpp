// On-disk layout of nvsfs, the shared-disk filesystem used to demonstrate
// the paper's motivating use case ("use shared disk file systems available
// on Linux, such as GFS or OCFS" — Section V) on top of the distributed
// block device.
//
// All metadata is stored in 4 KiB filesystem blocks:
//   block 0                superblock
//   bitmap_start ..        data-block allocation bitmap (1 bit per block)
//   inode_start ..         inode table (flat namespace: every inode carries
//                          its own name; there are no directories)
//   data_start ..          file data and indirect blocks
#pragma once

#include <cstdint>

namespace nvmeshare::fs {

inline constexpr std::uint64_t kFsBlockSize = 4096;

struct Superblock {
  std::uint64_t magic = 0x314653'5653564eULL;  // "NVSFS1"
  std::uint32_t version = 1;
  std::uint32_t inode_count = 0;
  std::uint64_t fs_blocks = 0;      ///< total filesystem blocks on the device
  std::uint64_t bitmap_start = 0;   ///< first bitmap block
  std::uint64_t bitmap_blocks = 0;
  std::uint64_t inode_start = 0;
  std::uint64_t inode_blocks = 0;
  std::uint64_t data_start = 0;
  std::uint64_t data_blocks = 0;
};

inline constexpr std::uint64_t kSuperblockMagic = Superblock{}.magic;

/// Fixed 256-byte inode; 16 per filesystem block. Flat namespace: the name
/// lives in the inode.
struct Inode {
  std::uint32_t used = 0;
  std::uint32_t flags = 0;
  std::uint64_t size = 0;         ///< bytes
  std::int64_t mtime_ns = 0;      ///< simulated time of last write
  char name[64] = {};
  std::uint64_t direct[12] = {};  ///< data block numbers (0 = hole)
  std::uint64_t indirect = 0;     ///< block of u64 block numbers
  std::uint8_t reserved[64] = {};
};
static_assert(sizeof(Inode) == 256);

inline constexpr std::uint32_t kInodesPerBlock =
    static_cast<std::uint32_t>(kFsBlockSize / sizeof(Inode));
inline constexpr std::uint64_t kIndirectEntries = kFsBlockSize / 8;
/// Largest file: direct blocks + one indirect block of pointers.
inline constexpr std::uint64_t kMaxFileBlocks = 12 + kIndirectEntries;
inline constexpr std::uint64_t kMaxFileBytes = kMaxFileBlocks * kFsBlockSize;

}  // namespace nvmeshare::fs
