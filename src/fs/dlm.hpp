// Distributed lock over SISCI shared memory: Lamport's bakery algorithm.
//
// Real shared-disk filesystems (GFS2, OCFS2) rely on a network DLM; in a
// PCIe cluster the natural transport for one is the same NTB shared memory
// the driver already uses. The bakery algorithm needs only single-writer
// registers — each participant writes its own slot and reads everyone
// else's — which maps exactly onto NTB semantics: posted writes to your own
// slot, (timed) remote reads of the others. No atomic RMW is required,
// which PCIe peer access does not reliably provide across NTBs.
#pragma once

#include <cstdint>

#include "sisci/sisci.hpp"

namespace nvmeshare::fs {

class BakeryLock {
 public:
  /// Slot layout per participant (single writer: that participant).
  struct Slot {
    std::uint64_t number = 0;  ///< 0 = not competing
    std::uint32_t choosing = 0;
    std::uint32_t pad = 0;
  };
  static_assert(sizeof(Slot) == 16);

  /// Create the lock segment on `node` (done once, e.g. by the host that
  /// formats the filesystem).
  static Result<BakeryLock> create(sisci::Cluster& cluster, sisci::NodeId node,
                                   sisci::SegmentId segment_id, std::uint32_t participants,
                                   std::uint32_t my_index);

  /// Join an existing lock segment from `node`.
  static Result<BakeryLock> join(sisci::Cluster& cluster, sisci::NodeId node,
                                 sisci::NodeId owner, sisci::SegmentId segment_id,
                                 std::uint32_t my_index);

  BakeryLock() = default;
  BakeryLock(BakeryLock&&) = default;
  BakeryLock& operator=(BakeryLock&&) = default;

  /// Acquire the lock; resolves true on success, false on timeout.
  sim::Future<bool> acquire(sim::Duration timeout = 100_ms);

  /// Release the lock (posted write; returns immediately).
  Status release();

  [[nodiscard]] std::uint32_t participants() const noexcept { return participants_; }
  [[nodiscard]] std::uint32_t my_index() const noexcept { return my_index_; }
  [[nodiscard]] std::uint64_t acquisitions() const noexcept { return acquisitions_; }
  /// The segment holding the lock slots (creator only owns it).
  [[nodiscard]] const sisci::Segment& segment() const noexcept { return segment_; }

 private:
  sim::Task acquire_task(sim::Promise<bool> promise, sim::Duration timeout);

  Status write_my_slot(const Slot& slot);
  /// Timed remote read of participant `index`'s slot.
  sim::Future<Result<Bytes>> read_slot(std::uint32_t index);

  sisci::Cluster* cluster_ = nullptr;
  sisci::NodeId node_ = 0;
  std::uint32_t participants_ = 0;
  std::uint32_t my_index_ = 0;
  sisci::Segment segment_;  ///< valid only on the creator
  sisci::Map map_;          ///< this node's view of the lock segment
  std::uint64_t acquisitions_ = 0;
};

}  // namespace nvmeshare::fs
