#include "fs/filesystem.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "fabric/substrate.hpp"

namespace nvmeshare::fs {

namespace {

constexpr std::uint64_t kBitsPerBlock = kFsBlockSize * 8;

/// Release a semaphore when the owning coroutine frame unwinds.
struct SemRelease {
  sim::Semaphore* sem = nullptr;
  ~SemRelease() {
    if (sem != nullptr) sem->release();
  }
};

/// Release the cluster lock when the owning coroutine frame unwinds.
struct DlmRelease {
  BakeryLock* lock = nullptr;
  ~DlmRelease() {
    if (lock != nullptr) (void)lock->release();
  }
};

}  // namespace

FileSystem::Stats::Stats()
    : lock_acquisitions("nvmeshare.fs.lock_acquisitions"),
      blocks_allocated("nvmeshare.fs.blocks_allocated"),
      blocks_freed("nvmeshare.fs.blocks_freed"),
      block_reads("nvmeshare.fs.block_reads"),
      block_writes("nvmeshare.fs.block_writes") {}

FileSystem::FileSystem(sisci::Cluster& cluster, block::BlockDevice& device,
                       sisci::NodeId node)
    : cluster_(cluster), device_(device), node_(node) {}

FileSystem::~FileSystem() {
  if (staging_ != 0) (void)cluster_.free_dram(node_, staging_);
}

bool FileSystem::name_valid(const std::string& name) const {
  return !name.empty() && name.size() < sizeof(Inode{}.name);
}

// --- mount / format -----------------------------------------------------------------

sim::Future<Result<std::unique_ptr<FileSystem>>> FileSystem::format(sisci::Cluster& cluster,
                                                                    block::BlockDevice& device,
                                                                    sisci::NodeId node,
                                                                    Config cfg) {
  sim::Promise<Result<std::unique_ptr<FileSystem>>> promise(cluster.engine());
  auto self = std::unique_ptr<FileSystem>(new FileSystem(cluster, device, node));
  format_task(std::move(self), cfg, promise);
  return promise.future();
}

sim::Task FileSystem::format_task(std::unique_ptr<FileSystem> self, Config cfg,
                                  sim::Promise<Result<std::unique_ptr<FileSystem>>> promise) {
  FileSystem& f = *self;

  if (kFsBlockSize % f.device_.block_size() != 0) {
    promise.set(Status(Errc::invalid_argument, "device block size incompatible"));
    co_return;
  }
  const std::uint64_t spb = kFsBlockSize / f.device_.block_size();
  if (cfg.fs_blocks * spb > f.device_.capacity_blocks()) {
    promise.set(Status(Errc::invalid_argument, "device too small for requested fs size"));
    co_return;
  }

  Superblock sb;
  sb.inode_count = cfg.inode_count;
  sb.fs_blocks = cfg.fs_blocks;
  sb.bitmap_start = 1;
  sb.bitmap_blocks = div_ceil(cfg.fs_blocks, kBitsPerBlock);
  sb.inode_start = sb.bitmap_start + sb.bitmap_blocks;
  sb.inode_blocks = div_ceil(cfg.inode_count, kInodesPerBlock);
  sb.data_start = sb.inode_start + sb.inode_blocks;
  if (sb.data_start + 16 > sb.fs_blocks) {
    promise.set(Status(Errc::invalid_argument, "fs too small for metadata"));
    co_return;
  }
  sb.data_blocks = sb.fs_blocks - sb.data_start;
  f.sb_ = sb;

  auto staging = f.cluster_.alloc_dram(f.node_, kFsBlockSize, 4096);
  if (!staging) {
    promise.set(staging.status());
    co_return;
  }
  f.staging_ = *staging;
  f.op_lock_ = std::make_unique<sim::Semaphore>(f.cluster_.engine(), 1);

  // Superblock, then zeroed bitmap + inode table.
  Bytes block(kFsBlockSize, std::byte{0});
  store_pod(block, sb);
  auto ok = co_await f.write_block(0, std::move(block));
  if (!ok) {
    promise.set(ok.status());
    co_return;
  }
  for (std::uint64_t b = sb.bitmap_start; b < sb.data_start; ++b) {
    auto zeroed = co_await f.write_block(b, Bytes(kFsBlockSize, std::byte{0}));
    if (!zeroed) {
      promise.set(zeroed.status());
      co_return;
    }
  }

  auto lock = BakeryLock::create(
      f.cluster_, f.node_, cfg.lock_segment_id,
      static_cast<std::uint32_t>(f.cluster_.fabric().host_count()), f.node_);
  if (!lock) {
    promise.set(lock.status());
    co_return;
  }
  f.lock_ = std::move(*lock);
  NVS_LOG(info, "fs") << "formatted: " << sb.fs_blocks << " fs blocks, " << sb.data_blocks
                      << " data blocks, " << sb.inode_count << " inodes";
  promise.set(std::move(self));
}

sim::Future<Result<std::unique_ptr<FileSystem>>> FileSystem::mount(sisci::Cluster& cluster,
                                                                   block::BlockDevice& device,
                                                                   sisci::NodeId node,
                                                                   sisci::NodeId format_node,
                                                                   Config cfg) {
  sim::Promise<Result<std::unique_ptr<FileSystem>>> promise(cluster.engine());
  auto self = std::unique_ptr<FileSystem>(new FileSystem(cluster, device, node));
  mount_task(std::move(self), format_node, cfg, promise);
  return promise.future();
}

sim::Task FileSystem::mount_task(std::unique_ptr<FileSystem> self, sisci::NodeId format_node,
                                 Config cfg,
                                 sim::Promise<Result<std::unique_ptr<FileSystem>>> promise) {
  FileSystem& f = *self;
  auto staging = f.cluster_.alloc_dram(f.node_, kFsBlockSize, 4096);
  if (!staging) {
    promise.set(staging.status());
    co_return;
  }
  f.staging_ = *staging;
  f.op_lock_ = std::make_unique<sim::Semaphore>(f.cluster_.engine(), 1);

  auto raw = co_await f.read_block(0);
  if (!raw) {
    promise.set(raw.status());
    co_return;
  }
  f.sb_ = load_pod<Superblock>(*raw);
  if (f.sb_.magic != kSuperblockMagic || f.sb_.version != 1) {
    promise.set(Status(Errc::protocol_error, "no nvsfs filesystem on this device"));
    co_return;
  }
  auto lock = BakeryLock::join(f.cluster_, f.node_, format_node, cfg.lock_segment_id, f.node_);
  if (!lock) {
    promise.set(lock.status());
    co_return;
  }
  f.lock_ = std::move(*lock);
  promise.set(std::move(self));
}

// --- block I/O ----------------------------------------------------------------------

sim::Future<Result<Bytes>> FileSystem::read_block(std::uint64_t fs_block) {
  sim::Promise<Result<Bytes>> promise(cluster_.engine());
  read_block_task(fs_block, promise);
  return promise.future();
}

sim::Task FileSystem::read_block_task(std::uint64_t fs_block,
                                      sim::Promise<Result<Bytes>> promise) {
  const std::uint32_t spb = static_cast<std::uint32_t>(kFsBlockSize / device_.block_size());
  ++stats_.block_reads;
  auto completion =
      co_await device_.submit({block::Op::read, fs_block * spb, spb, staging_});
  if (!completion.status) {
    promise.set(completion.status);
    co_return;
  }
  Bytes out(kFsBlockSize);
  if (Status st = cluster_.fabric().host_dram(node_).read(staging_, out); !st) {
    promise.set(st);
    co_return;
  }
  promise.set(std::move(out));
}

sim::Future<Result<bool>> FileSystem::write_block(std::uint64_t fs_block, Bytes data) {
  sim::Promise<Result<bool>> promise(cluster_.engine());
  write_block_task(fs_block, std::move(data), promise);
  return promise.future();
}

sim::Task FileSystem::write_block_task(std::uint64_t fs_block, Bytes data,
                                       sim::Promise<Result<bool>> promise) {
  const std::uint32_t spb = static_cast<std::uint32_t>(kFsBlockSize / device_.block_size());
  ++stats_.block_writes;
  if (Status st = cluster_.fabric().host_dram(node_).write(staging_, data); !st) {
    promise.set(st);
    co_return;
  }
  auto completion =
      co_await device_.submit({block::Op::write, fs_block * spb, spb, staging_});
  if (!completion.status) {
    promise.set(completion.status);
    co_return;
  }
  promise.set(true);
}

// --- inode I/O ----------------------------------------------------------------------

sim::Future<Result<Inode>> FileSystem::load_inode(std::uint32_t index) {
  sim::Promise<Result<Inode>> promise(cluster_.engine());
  load_inode_task(index, promise);
  return promise.future();
}

sim::Task FileSystem::load_inode_task(std::uint32_t index,
                                      sim::Promise<Result<Inode>> promise) {
  if (index >= sb_.inode_count) {
    promise.set(Status(Errc::out_of_range, "inode index out of range"));
    co_return;
  }
  auto raw = co_await read_block(sb_.inode_start + index / kInodesPerBlock);
  if (!raw) {
    promise.set(raw.status());
    co_return;
  }
  promise.set(load_pod<Inode>(*raw, (index % kInodesPerBlock) * sizeof(Inode)));
}

sim::Future<Result<bool>> FileSystem::store_inode(std::uint32_t index, Inode inode) {
  sim::Promise<Result<bool>> promise(cluster_.engine());
  store_inode_task(index, inode, promise);
  return promise.future();
}

sim::Task FileSystem::store_inode_task(std::uint32_t index, Inode inode,
                                       sim::Promise<Result<bool>> promise) {
  auto raw = co_await read_block(sb_.inode_start + index / kInodesPerBlock);
  if (!raw) {
    promise.set(raw.status());
    co_return;
  }
  store_pod(*raw, inode, (index % kInodesPerBlock) * sizeof(Inode));
  auto ok = co_await write_block(sb_.inode_start + index / kInodesPerBlock, std::move(*raw));
  if (!ok) {
    promise.set(ok.status());
    co_return;
  }
  promise.set(true);
}

// --- allocation ---------------------------------------------------------------------

sim::Future<Result<std::uint64_t>> FileSystem::alloc_block() {
  sim::Promise<Result<std::uint64_t>> promise(cluster_.engine());
  alloc_block_task(promise);
  return promise.future();
}

sim::Task FileSystem::alloc_block_task(sim::Promise<Result<std::uint64_t>> promise) {
  for (std::uint64_t probe = 0; probe < sb_.bitmap_blocks; ++probe) {
    const std::uint64_t bb = (alloc_hint_ + probe) % sb_.bitmap_blocks;
    auto raw = co_await read_block(sb_.bitmap_start + bb);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint64_t byte = 0; byte < kFsBlockSize; ++byte) {
      auto value = static_cast<std::uint8_t>((*raw)[byte]);
      if (value == 0xFF) continue;
      for (int bit = 0; bit < 8; ++bit) {
        const std::uint64_t index = bb * kBitsPerBlock + byte * 8 + bit;
        if (index >= sb_.data_blocks) break;
        if ((value & (1u << bit)) == 0) {
          (*raw)[byte] = std::byte{static_cast<std::uint8_t>(value | (1u << bit))};
          auto ok = co_await write_block(sb_.bitmap_start + bb, std::move(*raw));
          if (!ok) {
            promise.set(ok.status());
            co_return;
          }
          alloc_hint_ = bb;
          ++stats_.blocks_allocated;
          promise.set(sb_.data_start + index);
          co_return;
        }
      }
    }
  }
  promise.set(Status(Errc::resource_exhausted, "filesystem full"));
}

sim::Future<Result<bool>> FileSystem::free_block(std::uint64_t block) {
  sim::Promise<Result<bool>> promise(cluster_.engine());
  free_block_task(block, promise);
  return promise.future();
}

sim::Task FileSystem::free_block_task(std::uint64_t block,
                                      sim::Promise<Result<bool>> promise) {
  if (block < sb_.data_start || block >= sb_.fs_blocks) {
    promise.set(Status(Errc::invalid_argument, "not a data block"));
    co_return;
  }
  const std::uint64_t index = block - sb_.data_start;
  const std::uint64_t bb = index / kBitsPerBlock;
  auto raw = co_await read_block(sb_.bitmap_start + bb);
  if (!raw) {
    promise.set(raw.status());
    co_return;
  }
  const std::uint64_t byte = (index % kBitsPerBlock) / 8;
  const int bit = static_cast<int>(index % 8);
  auto value = static_cast<std::uint8_t>((*raw)[byte]);
  if ((value & (1u << bit)) == 0) {
    promise.set(Status(Errc::internal, "double free of data block"));
    co_return;
  }
  (*raw)[byte] = std::byte{static_cast<std::uint8_t>(value & ~(1u << bit))};
  auto ok = co_await write_block(sb_.bitmap_start + bb, std::move(*raw));
  if (!ok) {
    promise.set(ok.status());
    co_return;
  }
  ++stats_.blocks_freed;
  promise.set(true);
}

// --- namespace operations --------------------------------------------------------------

sim::Future<Result<std::uint32_t>> FileSystem::create(std::string name) {
  sim::Promise<Result<std::uint32_t>> promise(cluster_.engine());
  create_task(std::move(name), promise);
  return promise.future();
}

sim::Task FileSystem::create_task(std::string name,
                                  sim::Promise<Result<std::uint32_t>> promise) {
  if (!name_valid(name)) {
    promise.set(Status(Errc::invalid_argument, "bad file name"));
    co_return;
  }
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  if (!co_await lock_.acquire()) {
    promise.set(Status(Errc::timed_out, "cluster lock timeout"));
    co_return;
  }
  ++stats_.lock_acquisitions;
  DlmRelease dlm_guard{&lock_};

  std::uint32_t free_slot = sb_.inode_count;
  for (std::uint64_t blk = 0; blk < sb_.inode_blocks; ++blk) {
    auto raw = co_await read_block(sb_.inode_start + blk);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint32_t i = 0; i < kInodesPerBlock; ++i) {
      const std::uint32_t index = static_cast<std::uint32_t>(blk * kInodesPerBlock + i);
      if (index >= sb_.inode_count) break;
      const auto inode = load_pod<Inode>(*raw, i * sizeof(Inode));
      if (inode.used != 0) {
        if (name == inode.name) {
          promise.set(Status(Errc::already_exists, "file exists"));
          co_return;
        }
      } else if (free_slot == sb_.inode_count) {
        free_slot = index;
      }
    }
  }
  if (free_slot == sb_.inode_count) {
    promise.set(Status(Errc::resource_exhausted, "no free inodes"));
    co_return;
  }
  Inode inode;
  inode.used = 1;
  inode.mtime_ns = cluster_.engine().now();
  std::snprintf(inode.name, sizeof(inode.name), "%s", name.c_str());
  auto ok = co_await store_inode(free_slot, inode);
  if (!ok) {
    promise.set(ok.status());
    co_return;
  }
  promise.set(free_slot);
}

sim::Future<Result<std::uint32_t>> FileSystem::lookup(std::string name) {
  sim::Promise<Result<std::uint32_t>> promise(cluster_.engine());
  lookup_task(std::move(name), promise);
  return promise.future();
}

sim::Task FileSystem::lookup_task(std::string name,
                                  sim::Promise<Result<std::uint32_t>> promise) {
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  for (std::uint64_t blk = 0; blk < sb_.inode_blocks; ++blk) {
    auto raw = co_await read_block(sb_.inode_start + blk);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint32_t i = 0; i < kInodesPerBlock; ++i) {
      const std::uint32_t index = static_cast<std::uint32_t>(blk * kInodesPerBlock + i);
      if (index >= sb_.inode_count) break;
      const auto inode = load_pod<Inode>(*raw, i * sizeof(Inode));
      if (inode.used != 0 && name == inode.name) {
        promise.set(index);
        co_return;
      }
    }
  }
  promise.set(Status(Errc::not_found, "no such file"));
}

sim::Future<Result<bool>> FileSystem::remove(std::string name) {
  sim::Promise<Result<bool>> promise(cluster_.engine());
  remove_task(std::move(name), promise);
  return promise.future();
}

sim::Task FileSystem::remove_task(std::string name, sim::Promise<Result<bool>> promise) {
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  if (!co_await lock_.acquire()) {
    promise.set(Status(Errc::timed_out, "cluster lock timeout"));
    co_return;
  }
  ++stats_.lock_acquisitions;
  DlmRelease dlm_guard{&lock_};

  // Find the inode.
  std::uint32_t target = sb_.inode_count;
  Inode inode;
  for (std::uint64_t blk = 0; blk < sb_.inode_blocks && target == sb_.inode_count; ++blk) {
    auto raw = co_await read_block(sb_.inode_start + blk);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint32_t i = 0; i < kInodesPerBlock; ++i) {
      const std::uint32_t index = static_cast<std::uint32_t>(blk * kInodesPerBlock + i);
      if (index >= sb_.inode_count) break;
      const auto candidate = load_pod<Inode>(*raw, i * sizeof(Inode));
      if (candidate.used != 0 && name == candidate.name) {
        target = index;
        inode = candidate;
        break;
      }
    }
  }
  if (target == sb_.inode_count) {
    promise.set(Status(Errc::not_found, "no such file"));
    co_return;
  }

  // Free data blocks.
  for (std::uint64_t d = 0; d < 12; ++d) {
    if (inode.direct[d] != 0) {
      auto freed = co_await free_block(inode.direct[d]);
      if (!freed) {
        promise.set(freed.status());
        co_return;
      }
    }
  }
  if (inode.indirect != 0) {
    auto indirect = co_await read_block(inode.indirect);
    if (!indirect) {
      promise.set(indirect.status());
      co_return;
    }
    for (std::uint64_t e = 0; e < kIndirectEntries; ++e) {
      const auto block = load_pod<std::uint64_t>(*indirect, e * 8);
      if (block != 0) {
        auto freed = co_await free_block(block);
        if (!freed) {
          promise.set(freed.status());
          co_return;
        }
      }
    }
    auto freed = co_await free_block(inode.indirect);
    if (!freed) {
      promise.set(freed.status());
      co_return;
    }
  }
  auto ok = co_await store_inode(target, Inode{});
  if (!ok) {
    promise.set(ok.status());
    co_return;
  }
  promise.set(true);
}

sim::Future<Result<std::vector<FileSystem::FileInfo>>> FileSystem::list() {
  sim::Promise<Result<std::vector<FileInfo>>> promise(cluster_.engine());
  list_task(promise);
  return promise.future();
}

sim::Task FileSystem::list_task(sim::Promise<Result<std::vector<FileInfo>>> promise) {
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  std::vector<FileInfo> out;
  for (std::uint64_t blk = 0; blk < sb_.inode_blocks; ++blk) {
    auto raw = co_await read_block(sb_.inode_start + blk);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint32_t i = 0; i < kInodesPerBlock; ++i) {
      const std::uint32_t index = static_cast<std::uint32_t>(blk * kInodesPerBlock + i);
      if (index >= sb_.inode_count) break;
      const auto inode = load_pod<Inode>(*raw, i * sizeof(Inode));
      if (inode.used != 0) {
        out.push_back(FileInfo{inode.name, index, inode.size, inode.mtime_ns});
      }
    }
  }
  promise.set(std::move(out));
}

sim::Future<Result<FileSystem::FileInfo>> FileSystem::stat(std::uint32_t inode) {
  sim::Promise<Result<FileInfo>> promise(cluster_.engine());
  stat_task(inode, promise);
  return promise.future();
}

sim::Task FileSystem::stat_task(std::uint32_t inode, sim::Promise<Result<FileInfo>> promise) {
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  auto ino = co_await load_inode(inode);
  if (!ino) {
    promise.set(ino.status());
    co_return;
  }
  if (ino->used == 0) {
    promise.set(Status(Errc::not_found, "inode not in use"));
    co_return;
  }
  promise.set(FileInfo{ino->name, inode, ino->size, ino->mtime_ns});
}

sim::Future<Result<bool>> FileSystem::rename(std::string from, std::string to) {
  sim::Promise<Result<bool>> promise(cluster_.engine());
  rename_task(std::move(from), std::move(to), promise);
  return promise.future();
}

sim::Task FileSystem::rename_task(std::string from, std::string to,
                                  sim::Promise<Result<bool>> promise) {
  if (!name_valid(to)) {
    promise.set(Status(Errc::invalid_argument, "bad target name"));
    co_return;
  }
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  if (!co_await lock_.acquire()) {
    promise.set(Status(Errc::timed_out, "cluster lock timeout"));
    co_return;
  }
  ++stats_.lock_acquisitions;
  DlmRelease dlm_guard{&lock_};

  // One pass: find the source and make sure the target name is free.
  std::uint32_t source = sb_.inode_count;
  for (std::uint64_t blk = 0; blk < sb_.inode_blocks; ++blk) {
    auto raw = co_await read_block(sb_.inode_start + blk);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint32_t i = 0; i < kInodesPerBlock; ++i) {
      const std::uint32_t index = static_cast<std::uint32_t>(blk * kInodesPerBlock + i);
      if (index >= sb_.inode_count) break;
      const auto inode = load_pod<Inode>(*raw, i * sizeof(Inode));
      if (inode.used == 0) continue;
      if (to == inode.name) {
        promise.set(Status(Errc::already_exists, "target name exists"));
        co_return;
      }
      if (from == inode.name) source = index;
    }
  }
  if (source == sb_.inode_count) {
    promise.set(Status(Errc::not_found, "no such file"));
    co_return;
  }
  auto inode = co_await load_inode(source);
  if (!inode) {
    promise.set(inode.status());
    co_return;
  }
  std::snprintf(inode->name, sizeof(inode->name), "%s", to.c_str());
  inode->mtime_ns = cluster_.engine().now();
  auto stored = co_await store_inode(source, *inode);
  if (!stored) {
    promise.set(stored.status());
    co_return;
  }
  promise.set(true);
}

sim::Future<Result<bool>> FileSystem::truncate(std::uint32_t inode, std::uint64_t new_size) {
  sim::Promise<Result<bool>> promise(cluster_.engine());
  truncate_task(inode, new_size, promise);
  return promise.future();
}

sim::Task FileSystem::truncate_task(std::uint32_t inode, std::uint64_t new_size,
                                    sim::Promise<Result<bool>> promise) {
  if (new_size > kMaxFileBytes) {
    promise.set(Status(Errc::out_of_range, "beyond maximum file size"));
    co_return;
  }
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  if (!co_await lock_.acquire()) {
    promise.set(Status(Errc::timed_out, "cluster lock timeout"));
    co_return;
  }
  ++stats_.lock_acquisitions;
  DlmRelease dlm_guard{&lock_};

  auto ino = co_await load_inode(inode);
  if (!ino) {
    promise.set(ino.status());
    co_return;
  }
  if (ino->used == 0) {
    promise.set(Status(Errc::not_found, "inode not in use"));
    co_return;
  }
  if (new_size < ino->size) {
    // Free every block wholly past the new end.
    const std::uint64_t keep_blocks = div_ceil(new_size, kFsBlockSize);

    // Zero the partial tail of the boundary block so a later size
    // extension reads zeros, not resurrected bytes.
    if (new_size % kFsBlockSize != 0) {
      const std::uint64_t boundary = new_size / kFsBlockSize;
      std::uint64_t blockno = 0;
      if (boundary < 12) {
        blockno = ino->direct[boundary];
      } else if (ino->indirect != 0) {
        auto indirect = co_await read_block(ino->indirect);
        if (!indirect) {
          promise.set(indirect.status());
          co_return;
        }
        blockno = load_pod<std::uint64_t>(*indirect, (boundary - 12) * 8);
      }
      if (blockno != 0) {
        auto content = co_await read_block(blockno);
        if (!content) {
          promise.set(content.status());
          co_return;
        }
        std::fill(content->begin() + static_cast<long>(new_size % kFsBlockSize),
                  content->end(), std::byte{0});
        auto written = co_await write_block(blockno, std::move(*content));
        if (!written) {
          promise.set(written.status());
          co_return;
        }
      }
    }
    for (std::uint64_t b = keep_blocks; b < 12; ++b) {
      if (ino->direct[b] != 0) {
        auto freed = co_await free_block(ino->direct[b]);
        if (!freed) {
          promise.set(freed.status());
          co_return;
        }
        ino->direct[b] = 0;
      }
    }
    if (ino->indirect != 0) {
      auto indirect = co_await read_block(ino->indirect);
      if (!indirect) {
        promise.set(indirect.status());
        co_return;
      }
      bool any_left = false;
      bool dirty = false;
      for (std::uint64_t e = 0; e < kIndirectEntries; ++e) {
        const auto block = load_pod<std::uint64_t>(*indirect, e * 8);
        if (block == 0) continue;
        if (12 + e >= keep_blocks) {
          auto freed = co_await free_block(block);
          if (!freed) {
            promise.set(freed.status());
            co_return;
          }
          store_pod(*indirect, std::uint64_t{0}, e * 8);
          dirty = true;
        } else {
          any_left = true;
        }
      }
      if (!any_left) {
        auto freed = co_await free_block(ino->indirect);
        if (!freed) {
          promise.set(freed.status());
          co_return;
        }
        ino->indirect = 0;
      } else if (dirty) {
        auto written = co_await write_block(ino->indirect, std::move(*indirect));
        if (!written) {
          promise.set(written.status());
          co_return;
        }
      }
    }
  }
  ino->size = new_size;
  ino->mtime_ns = cluster_.engine().now();
  auto stored = co_await store_inode(inode, *ino);
  if (!stored) {
    promise.set(stored.status());
    co_return;
  }
  promise.set(true);
}

// --- consistency check ----------------------------------------------------------------

sim::Future<Result<FileSystem::CheckReport>> FileSystem::check() {
  sim::Promise<Result<CheckReport>> promise(cluster_.engine());
  check_task(promise);
  return promise.future();
}

sim::Task FileSystem::check_task(sim::Promise<Result<CheckReport>> promise) {
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  if (!co_await lock_.acquire()) {
    promise.set(Status(Errc::timed_out, "cluster lock timeout"));
    co_return;
  }
  ++stats_.lock_acquisitions;
  DlmRelease dlm_guard{&lock_};
  CheckReport report;

  // Reference counts for every data block, from walking the inodes.
  std::vector<std::uint8_t> refs(sb_.data_blocks, 0);
  auto take_ref = [&](std::uint64_t block) {
    if (block < sb_.data_start || block >= sb_.fs_blocks) {
      ++report.out_of_range_refs;
      return;
    }
    const std::uint64_t index = block - sb_.data_start;
    if (refs[index] == 0) {
      ++report.referenced_blocks;
    } else {
      ++report.double_referenced;
    }
    if (refs[index] < 255) ++refs[index];
  };

  for (std::uint64_t blk = 0; blk < sb_.inode_blocks; ++blk) {
    auto raw = co_await read_block(sb_.inode_start + blk);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint32_t i = 0; i < kInodesPerBlock; ++i) {
      const std::uint32_t index = static_cast<std::uint32_t>(blk * kInodesPerBlock + i);
      if (index >= sb_.inode_count) break;
      const auto inode = load_pod<Inode>(*raw, i * sizeof(Inode));
      if (inode.used == 0) continue;
      ++report.files;
      for (std::uint64_t d = 0; d < 12; ++d) {
        if (inode.direct[d] != 0) take_ref(inode.direct[d]);
      }
      if (inode.indirect != 0) {
        take_ref(inode.indirect);
        auto indirect = co_await read_block(inode.indirect);
        if (!indirect) {
          promise.set(indirect.status());
          co_return;
        }
        for (std::uint64_t e = 0; e < kIndirectEntries; ++e) {
          const auto block = load_pod<std::uint64_t>(*indirect, e * 8);
          if (block != 0) take_ref(block);
        }
      }
    }
  }

  // Cross-check against the bitmap.
  for (std::uint64_t bb = 0; bb < sb_.bitmap_blocks; ++bb) {
    auto raw = co_await read_block(sb_.bitmap_start + bb);
    if (!raw) {
      promise.set(raw.status());
      co_return;
    }
    for (std::uint64_t byte = 0; byte < kFsBlockSize; ++byte) {
      const auto value = static_cast<std::uint8_t>((*raw)[byte]);
      for (int bit = 0; bit < 8; ++bit) {
        const std::uint64_t index = bb * kBitsPerBlock + byte * 8 + bit;
        if (index >= sb_.data_blocks) break;
        const bool allocated = (value & (1u << bit)) != 0;
        const bool referenced = refs[index] != 0;
        if (allocated && !referenced) ++report.leaked_blocks;
        if (!allocated && referenced) ++report.missing_allocations;
      }
    }
  }
  promise.set(report);
}

// --- data operations -----------------------------------------------------------------

sim::Future<Result<std::uint64_t>> FileSystem::write(std::uint32_t inode,
                                                     std::uint64_t offset, Bytes data) {
  sim::Promise<Result<std::uint64_t>> promise(cluster_.engine());
  write_task(inode, offset, std::move(data), promise);
  return promise.future();
}

sim::Task FileSystem::write_task(std::uint32_t inode, std::uint64_t offset, Bytes data,
                                 sim::Promise<Result<std::uint64_t>> promise) {
  if (data.empty()) {
    promise.set(std::uint64_t{0});
    co_return;
  }
  if (offset + data.size() > kMaxFileBytes) {
    promise.set(Status(Errc::out_of_range, "beyond maximum file size"));
    co_return;
  }
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  if (!co_await lock_.acquire()) {
    promise.set(Status(Errc::timed_out, "cluster lock timeout"));
    co_return;
  }
  ++stats_.lock_acquisitions;
  DlmRelease dlm_guard{&lock_};

  auto ino = co_await load_inode(inode);
  if (!ino) {
    promise.set(ino.status());
    co_return;
  }
  if (ino->used == 0) {
    promise.set(Status(Errc::not_found, "inode not in use"));
    co_return;
  }

  Bytes indirect_raw;
  bool indirect_loaded = false;
  bool indirect_dirty = false;
  const std::uint64_t first = offset / kFsBlockSize;
  const std::uint64_t last = (offset + data.size() - 1) / kFsBlockSize;

  for (std::uint64_t b = first; b <= last; ++b) {
    // Resolve (or establish) the mapping for file block b.
    std::uint64_t blockno = 0;
    if (b < 12) {
      blockno = ino->direct[b];
    } else {
      if (ino->indirect == 0) {
        auto fresh = co_await alloc_block();
        if (!fresh) {
          promise.set(fresh.status());
          co_return;
        }
        ino->indirect = *fresh;
        indirect_raw.assign(kFsBlockSize, std::byte{0});
        indirect_loaded = true;
        indirect_dirty = true;
      }
      if (!indirect_loaded) {
        auto raw = co_await read_block(ino->indirect);
        if (!raw) {
          promise.set(raw.status());
          co_return;
        }
        indirect_raw = std::move(*raw);
        indirect_loaded = true;
      }
      blockno = load_pod<std::uint64_t>(indirect_raw, (b - 12) * 8);
    }
    bool fresh_block = false;
    if (blockno == 0) {
      auto allocated = co_await alloc_block();
      if (!allocated) {
        promise.set(allocated.status());
        co_return;
      }
      blockno = *allocated;
      fresh_block = true;
      if (b < 12) {
        ino->direct[b] = blockno;
      } else {
        store_pod(indirect_raw, blockno, (b - 12) * 8);
        indirect_dirty = true;
      }
    }

    // Slice of `data` that lands in this block.
    const std::uint64_t block_start = b * kFsBlockSize;
    const std::uint64_t in_block = b == first ? offset - block_start : 0;
    const std::uint64_t data_off = b == first ? 0 : block_start - offset;
    const std::uint64_t n = std::min(kFsBlockSize - in_block, data.size() - data_off);

    Bytes content;
    if (n == kFsBlockSize) {
      content.assign(kFsBlockSize, std::byte{0});
    } else if (fresh_block) {
      content.assign(kFsBlockSize, std::byte{0});
    } else {
      auto current = co_await read_block(blockno);
      if (!current) {
        promise.set(current.status());
        co_return;
      }
      content = std::move(*current);
    }
    std::memcpy(content.data() + in_block, data.data() + data_off, n);
    auto written = co_await write_block(blockno, std::move(content));
    if (!written) {
      promise.set(written.status());
      co_return;
    }
  }

  if (indirect_dirty) {
    auto written = co_await write_block(ino->indirect, indirect_raw);
    if (!written) {
      promise.set(written.status());
      co_return;
    }
  }
  ino->size = std::max(ino->size, offset + data.size());
  ino->mtime_ns = cluster_.engine().now();
  auto stored = co_await store_inode(inode, *ino);
  if (!stored) {
    promise.set(stored.status());
    co_return;
  }
  promise.set(static_cast<std::uint64_t>(data.size()));
}

sim::Future<Result<Bytes>> FileSystem::read(std::uint32_t inode, std::uint64_t offset,
                                            std::uint64_t len) {
  sim::Promise<Result<Bytes>> promise(cluster_.engine());
  read_task(inode, offset, len, promise);
  return promise.future();
}

sim::Task FileSystem::read_task(std::uint32_t inode, std::uint64_t offset, std::uint64_t len,
                                sim::Promise<Result<Bytes>> promise) {
  co_await op_lock_->acquire();
  SemRelease sem_guard{op_lock_.get()};
  auto ino = co_await load_inode(inode);
  if (!ino) {
    promise.set(ino.status());
    co_return;
  }
  if (ino->used == 0) {
    promise.set(Status(Errc::not_found, "inode not in use"));
    co_return;
  }
  if (offset >= ino->size) {
    promise.set(Bytes{});
    co_return;
  }
  len = std::min(len, ino->size - offset);
  Bytes out(len, std::byte{0});

  Bytes indirect_raw;
  bool indirect_loaded = false;
  const std::uint64_t first = offset / kFsBlockSize;
  const std::uint64_t last = (offset + len - 1) / kFsBlockSize;
  for (std::uint64_t b = first; b <= last; ++b) {
    std::uint64_t blockno = 0;
    if (b < 12) {
      blockno = ino->direct[b];
    } else if (ino->indirect != 0) {
      if (!indirect_loaded) {
        auto raw = co_await read_block(ino->indirect);
        if (!raw) {
          promise.set(raw.status());
          co_return;
        }
        indirect_raw = std::move(*raw);
        indirect_loaded = true;
      }
      blockno = load_pod<std::uint64_t>(indirect_raw, (b - 12) * 8);
    }

    const std::uint64_t block_start = b * kFsBlockSize;
    const std::uint64_t in_block = b == first ? offset - block_start : 0;
    const std::uint64_t out_off = b == first ? 0 : block_start - offset;
    const std::uint64_t n = std::min(kFsBlockSize - in_block, len - out_off);
    if (blockno == 0) continue;  // hole: stays zero
    auto content = co_await read_block(blockno);
    if (!content) {
      promise.set(content.status());
      co_return;
    }
    std::memcpy(out.data() + out_off, content->data() + in_block, n);
  }
  promise.set(std::move(out));
}

}  // namespace nvmeshare::fs
