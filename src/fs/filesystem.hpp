// nvsfs: a small shared-disk filesystem on top of the distributed block
// device — the paper's motivating use case (Section V names GFS/OCFS as the
// reason the driver registers a *block device*), and its future work
// ("performing experiments using our driver for a file system").
//
// Every host mounts the same on-disk structures through its own driver
// client; metadata mutations are serialized by a cluster-wide BakeryLock
// living in NTB shared memory (the same substrate the driver uses). The
// namespace is flat; files are block-mapped with 12 direct pointers and one
// indirect block (max file ~2 MiB + 48 KiB).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "block/block.hpp"
#include "fs/dlm.hpp"
#include "fs/layout.hpp"
#include "obs/metrics.hpp"
#include "sisci/sisci.hpp"

namespace nvmeshare::fs {

class FileSystem {
 public:
  struct Config {
    std::uint64_t fs_blocks = 16384;  ///< filesystem size: 64 MiB default
    std::uint32_t inode_count = 256;
    sisci::SegmentId lock_segment_id = 0x464c434b;  // "FLCK"
  };

  struct FileInfo {
    std::string name;
    std::uint32_t inode = 0;
    std::uint64_t size = 0;
    std::int64_t mtime_ns = 0;
  };

  /// Format `device` and create the cluster lock segment on `node`.
  /// Returns a mounted handle.
  static sim::Future<Result<std::unique_ptr<FileSystem>>> format(sisci::Cluster& cluster,
                                                                 block::BlockDevice& device,
                                                                 sisci::NodeId node,
                                                                 Config cfg);

  /// Mount an already-formatted filesystem from `node`, joining the lock
  /// segment created by `format_node`.
  static sim::Future<Result<std::unique_ptr<FileSystem>>> mount(sisci::Cluster& cluster,
                                                                block::BlockDevice& device,
                                                                sisci::NodeId node,
                                                                sisci::NodeId format_node,
                                                                Config cfg);

  ~FileSystem();
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // --- namespace ----------------------------------------------------------------
  /// Create an empty file; fails with already_exists on name collision.
  sim::Future<Result<std::uint32_t>> create(std::string name);
  /// Find a file by name.
  sim::Future<Result<std::uint32_t>> lookup(std::string name);
  /// Delete a file and free its blocks.
  sim::Future<Result<bool>> remove(std::string name);
  /// Rename a file; fails if `to` exists.
  sim::Future<Result<bool>> rename(std::string from, std::string to);
  /// All files in the (flat) namespace.
  sim::Future<Result<std::vector<FileInfo>>> list();
  sim::Future<Result<FileInfo>> stat(std::uint32_t inode);

  // --- data ---------------------------------------------------------------------
  /// Write `data` at byte `offset`, allocating blocks as needed. Returns
  /// bytes written.
  sim::Future<Result<std::uint64_t>> write(std::uint32_t inode, std::uint64_t offset,
                                           Bytes data);
  /// Read up to `len` bytes at `offset` (short read at end of file).
  sim::Future<Result<Bytes>> read(std::uint32_t inode, std::uint64_t offset,
                                  std::uint64_t len);
  /// Shrink (freeing blocks past the end) or grow (a hole) the file.
  sim::Future<Result<bool>> truncate(std::uint32_t inode, std::uint64_t new_size);

  /// Consistency report from check() — the fsck analog.
  struct CheckReport {
    std::uint64_t files = 0;
    std::uint64_t referenced_blocks = 0;   ///< data + indirect blocks in use
    std::uint64_t leaked_blocks = 0;       ///< allocated in the bitmap, referenced by nothing
    std::uint64_t double_referenced = 0;   ///< one block owned by two mappings
    std::uint64_t missing_allocations = 0; ///< referenced but free in the bitmap
    std::uint64_t out_of_range_refs = 0;   ///< pointer outside the data area

    [[nodiscard]] bool consistent() const noexcept {
      return leaked_blocks == 0 && double_referenced == 0 && missing_allocations == 0 &&
             out_of_range_refs == 0;
    }
  };

  /// Full-filesystem consistency check under the cluster lock: walks every
  /// inode's block mappings and cross-checks them against the allocation
  /// bitmap.
  sim::Future<Result<CheckReport>> check();

  [[nodiscard]] const Superblock& superblock() const noexcept { return sb_; }

  /// Per-mount counters, also registered as `nvmeshare.fs.*`.
  struct Stats {
    Stats();
    obs::Counter lock_acquisitions;
    obs::Counter blocks_allocated;
    obs::Counter blocks_freed;
    obs::Counter block_reads;
    obs::Counter block_writes;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  FileSystem(sisci::Cluster& cluster, block::BlockDevice& device, sisci::NodeId node);

  static sim::Task format_task(std::unique_ptr<FileSystem> self, Config cfg,
                               sim::Promise<Result<std::unique_ptr<FileSystem>>> promise);
  static sim::Task mount_task(std::unique_ptr<FileSystem> self, sisci::NodeId format_node,
                              Config cfg,
                              sim::Promise<Result<std::unique_ptr<FileSystem>>> promise);

  sim::Task create_task(std::string name, sim::Promise<Result<std::uint32_t>> promise);
  sim::Task lookup_task(std::string name, sim::Promise<Result<std::uint32_t>> promise);
  sim::Task remove_task(std::string name, sim::Promise<Result<bool>> promise);
  sim::Task list_task(sim::Promise<Result<std::vector<FileInfo>>> promise);
  sim::Task stat_task(std::uint32_t inode, sim::Promise<Result<FileInfo>> promise);
  sim::Task write_task(std::uint32_t inode, std::uint64_t offset, Bytes data,
                       sim::Promise<Result<std::uint64_t>> promise);
  sim::Task read_task(std::uint32_t inode, std::uint64_t offset, std::uint64_t len,
                      sim::Promise<Result<Bytes>> promise);
  sim::Task check_task(sim::Promise<Result<CheckReport>> promise);
  sim::Task rename_task(std::string from, std::string to, sim::Promise<Result<bool>> promise);
  sim::Task truncate_task(std::uint32_t inode, std::uint64_t new_size,
                          sim::Promise<Result<bool>> promise);

  // Block I/O through the block device (4 KiB filesystem blocks).
  sim::Future<Result<Bytes>> read_block(std::uint64_t fs_block);
  sim::Task read_block_task(std::uint64_t fs_block, sim::Promise<Result<Bytes>> promise);
  sim::Future<Result<bool>> write_block(std::uint64_t fs_block, Bytes data);
  sim::Task write_block_task(std::uint64_t fs_block, Bytes data,
                             sim::Promise<Result<bool>> promise);

  // Inode helpers (caller holds the op semaphore; mutators hold the DLM).
  sim::Future<Result<Inode>> load_inode(std::uint32_t index);
  sim::Task load_inode_task(std::uint32_t index, sim::Promise<Result<Inode>> promise);
  sim::Future<Result<bool>> store_inode(std::uint32_t index, Inode inode);
  sim::Task store_inode_task(std::uint32_t index, Inode inode,
                             sim::Promise<Result<bool>> promise);

  /// Allocate one data block from the bitmap (caller holds the DLM).
  sim::Future<Result<std::uint64_t>> alloc_block();
  sim::Task alloc_block_task(sim::Promise<Result<std::uint64_t>> promise);
  /// Free a data block in the bitmap (caller holds the DLM).
  sim::Future<Result<bool>> free_block(std::uint64_t block);
  sim::Task free_block_task(std::uint64_t block, sim::Promise<Result<bool>> promise);

  [[nodiscard]] bool name_valid(const std::string& name) const;

  sisci::Cluster& cluster_;
  block::BlockDevice& device_;
  sisci::NodeId node_;
  Superblock sb_;
  BakeryLock lock_;
  std::unique_ptr<sim::Semaphore> op_lock_;  ///< serializes ops on this handle
  std::uint64_t staging_ = 0;                ///< one fs-block DRAM staging buffer
  std::uint64_t alloc_hint_ = 0;             ///< bitmap search start
  Stats stats_;
};

}  // namespace nvmeshare::fs
