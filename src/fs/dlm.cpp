#include "fs/dlm.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nvmeshare::fs {

namespace {
constexpr sim::Duration kSpinDelayNs = 1000;  // pause between remote scans
}

Result<BakeryLock> BakeryLock::create(sisci::Cluster& cluster, sisci::NodeId node,
                                      sisci::SegmentId segment_id, std::uint32_t participants,
                                      std::uint32_t my_index) {
  if (participants == 0 || my_index >= participants) {
    return Status(Errc::invalid_argument, "bad participant configuration");
  }
  auto segment = cluster.create_segment(node, segment_id, participants * sizeof(Slot));
  if (!segment) return segment.status();
  // Slots start zeroed (fresh segment memory may be dirty).
  Bytes zeros(participants * sizeof(Slot), std::byte{0});
  NVS_RETURN_IF_ERROR(segment->write(0, zeros));

  BakeryLock lock;
  lock.cluster_ = &cluster;
  lock.node_ = node;
  lock.participants_ = participants;
  lock.my_index_ = my_index;
  auto map = sisci::Map::create(cluster, node, segment->descriptor());
  if (!map) return map.status();
  lock.map_ = std::move(*map);
  lock.segment_ = std::move(*segment);
  return lock;
}

Result<BakeryLock> BakeryLock::join(sisci::Cluster& cluster, sisci::NodeId node,
                                    sisci::NodeId owner, sisci::SegmentId segment_id,
                                    std::uint32_t my_index) {
  auto remote = cluster.connect(owner, segment_id);
  if (!remote) return remote.status();
  const auto participants = static_cast<std::uint32_t>(remote->size / sizeof(Slot));
  if (my_index >= participants) {
    return Status(Errc::invalid_argument, "participant index beyond segment capacity");
  }
  auto map = sisci::Map::create(cluster, node, *remote);
  if (!map) return map.status();

  BakeryLock lock;
  lock.cluster_ = &cluster;
  lock.node_ = node;
  lock.participants_ = participants;
  lock.my_index_ = my_index;
  lock.map_ = std::move(*map);
  return lock;
}

Status BakeryLock::write_my_slot(const Slot& slot) {
  fabric::Substrate& fabric = cluster_->fabric();
  Bytes buf(sizeof(Slot));
  store_pod(buf, slot);
  return fabric
      .post_write(fabric.cpu(node_), map_.addr() + my_index_ * sizeof(Slot), std::move(buf))
      .status();
}

sim::Future<Result<Bytes>> BakeryLock::read_slot(std::uint32_t index) {
  fabric::Substrate& fabric = cluster_->fabric();
  return fabric.read(fabric.cpu(node_), map_.addr() + index * sizeof(Slot), sizeof(Slot));
}

sim::Future<bool> BakeryLock::acquire(sim::Duration timeout) {
  sim::Promise<bool> promise(cluster_->engine());
  acquire_task(promise, timeout);
  return promise.future();
}

sim::Task BakeryLock::acquire_task(sim::Promise<bool> promise, sim::Duration timeout) {
  sim::Engine& engine = cluster_->engine();
  const sim::Time deadline = engine.now() + timeout;

  // Phase 1: take a ticket one larger than every number we can see.
  if (Status st = write_my_slot(Slot{0, 1, 0}); !st) {
    promise.set(false);
    co_return;
  }
  std::uint64_t max_number = 0;
  for (std::uint32_t i = 0; i < participants_; ++i) {
    auto raw = co_await read_slot(i);
    if (!raw) {
      promise.set(false);
      co_return;
    }
    max_number = std::max(max_number, load_pod<Slot>(*raw).number);
  }
  const std::uint64_t my_number = max_number + 1;
  if (Status st = write_my_slot(Slot{my_number, 0, 0}); !st) {
    promise.set(false);
    co_return;
  }

  // Phase 2: wait until everyone with a smaller (number, index) is done.
  for (std::uint32_t i = 0; i < participants_; ++i) {
    if (i == my_index_) continue;
    for (;;) {
      auto raw = co_await read_slot(i);
      if (!raw) {
        promise.set(false);
        co_return;
      }
      const auto slot = load_pod<Slot>(*raw);
      const bool they_yield =
          slot.choosing == 0 &&
          (slot.number == 0 || slot.number > my_number ||
           (slot.number == my_number && i > my_index_));
      if (they_yield) break;
      if (engine.now() >= deadline) {
        (void)write_my_slot(Slot{});  // withdraw
        promise.set(false);
        co_return;
      }
      co_await sim::delay(engine, kSpinDelayNs);
    }
  }
  ++acquisitions_;
  promise.set(true);
}

Status BakeryLock::release() { return write_my_slot(Slot{}); }

}  // namespace nvmeshare::fs
