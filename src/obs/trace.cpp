#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace nvmeshare::obs {

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::submit: return "submit";
    case Phase::bounce_copy: return "bounce_copy";
    case Phase::sq_write: return "sq_write";
    case Phase::doorbell: return "doorbell";
    case Phase::cq_wait: return "cq_wait";
    case Phase::completion: return "completion";
    case Phase::ctrl_fetch: return "ctrl_fetch";
    case Phase::media: return "media";
    case Phase::data_dma: return "data_dma";
    case Phase::cq_write: return "cq_write";
    case Phase::capsule_send: return "capsule_send";
    case Phase::rdma_data: return "rdma_data";
    case Phase::irq_wait: return "irq_wait";
    case Phase::recovery: return "recovery";
    case Phase::request: return "request";
    case Phase::other: return "other";
  }
  return "other";
}

const char* track_name(Track t) noexcept {
  switch (t) {
    case Track::client: return "client";
    case Track::controller: return "controller";
    case Track::target: return "target";
  }
  return "client";
}

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::read: return "read";
    case Kind::write: return "write";
    case Kind::flush: return "flush";
    case Kind::write_zeroes: return "write_zeroes";
    case Kind::discard: return "discard";
    case Kind::other: return "other";
  }
  return "other";
}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

void Tracer::enable(std::size_t capacity) {
  clear();
  capacity_ = std::max<std::size_t>(capacity, 1);
  ring_.reserve(capacity_);
  enabled_ = true;
}

void Tracer::clear() {
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  next_trace_id_ = 1;
  open_.clear();
  bindings_.clear();
}

std::uint64_t Tracer::begin_trace(Kind kind, sim::Time now) {
  if (!enabled_) return 0;
  const std::uint64_t id = next_trace_id_++;
  open_.emplace(id, OpenTrace{kind, now});
  return id;
}

void Tracer::end_trace(std::uint64_t trace, sim::Time now) {
  if (trace == 0 || !enabled_) return;
  auto it = open_.find(trace);
  if (it == open_.end()) return;
  record(trace, Track::client, Phase::request, it->second.begin, now);
  open_.erase(it);
}

void Tracer::record(std::uint64_t trace, Track track, Phase phase, sim::Time begin,
                    sim::Time end, std::uint16_t qid, std::uint16_t cid) {
  if (trace == 0 || !enabled_) return;
  SpanRecord rec;
  rec.trace = trace;
  rec.begin = begin;
  rec.end = end;
  rec.phase = phase;
  rec.track = track;
  if (auto it = open_.find(trace); it != open_.end()) rec.kind = it->second.kind;
  rec.qid = qid;
  rec.cid = cid;
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  ring_[next_] = rec;
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

void Tracer::bind(std::uint16_t qid, std::uint16_t cid, std::uint64_t trace) {
  if (trace == 0 || !enabled_) return;
  bindings_[(static_cast<std::uint32_t>(qid) << 16) | cid] = trace;
}

void Tracer::unbind(std::uint16_t qid, std::uint16_t cid) {
  if (!enabled_) return;
  bindings_.erase((static_cast<std::uint32_t>(qid) << 16) | cid);
}

std::uint64_t Tracer::lookup(std::uint16_t qid, std::uint16_t cid) const {
  if (!enabled_) return 0;
  auto it = bindings_.find((static_cast<std::uint32_t>(qid) << 16) | cid);
  return it == bindings_.end() ? 0 : it->second;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

std::map<std::pair<Track, Phase>, PhaseStat> Tracer::aggregate(
    const std::vector<SpanRecord>& records) {
  std::map<std::pair<Track, Phase>, PhaseStat> out;
  for (const auto& r : records) {
    auto& stat = out[{r.track, r.phase}];
    ++stat.count;
    stat.total_ns += r.duration();
  }
  return out;
}

std::string Tracer::chrome_trace_json(std::size_t max_events) const {
  const auto records = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  // Name the track "threads" once, so Perfetto shows readable rows.
  for (const Track t : {Track::client, Track::controller, Track::target}) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  static_cast<int>(t), track_name(t));
    out += buf;
  }
  std::size_t emitted = 0;
  for (const auto& r : records) {
    if (emitted >= max_events) break;
    ++emitted;
    // trace_event ts/dur are in microseconds; keep ns precision with
    // fractional values (Perfetto accepts floating-point ts).
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                  "\"ts\":%" PRIu64 ".%03u,\"dur\":%" PRIu64 ".%03u,"
                  "\"args\":{\"trace\":%" PRIu64 ",\"kind\":\"%s\",\"qid\":%u,\"cid\":%u}}",
                  phase_name(r.phase), track_name(r.track), static_cast<int>(r.track),
                  static_cast<std::uint64_t>(r.begin / 1000),
                  static_cast<unsigned>(r.begin % 1000),
                  static_cast<std::uint64_t>(r.duration() / 1000),
                  static_cast<unsigned>(r.duration() % 1000), r.trace, kind_name(r.kind),
                  static_cast<unsigned>(r.qid), static_cast<unsigned>(r.cid));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace nvmeshare::obs
