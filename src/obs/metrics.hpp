// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms with a process-global registry.
//
// Every metric instance (a Counter member inside a Client, say) keeps a
// per-instance value *and* bumps a registry-owned aggregate cell shared by
// all instances registered under the same name. Tests keep their familiar
// per-object `stats().reads == 2` reads; benches and tools snapshot the
// registry for a cluster-wide, machine-readable view.
//
// Naming convention: `nvmeshare.<component>.<name>`, all lowercase,
// dot-separated (see docs/observability.md).
//
// Snapshots are deterministic: metrics are stored sorted by name and
// rendered with fixed formatting, so identical seeds produce byte-identical
// JSON — the property CI uses to diff perf trajectories.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace nvmeshare::obs {

class Registry;

/// Shared storage for one log2-bucketed histogram. Bucket i counts samples
/// whose bit width is i, i.e. bucket 0 holds the value 0, bucket i>0 holds
/// [2^(i-1), 2^i).
struct HistogramCell {
  static constexpr int kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  void record(std::uint64_t v) noexcept;
  /// Inclusive lower bound of bucket `i`.
  static std::uint64_t bucket_floor(int i) noexcept;
  /// Exclusive upper bound of bucket `i` (0 for the open-ended last bucket).
  static std::uint64_t bucket_ceiling(int i) noexcept;
  /// Index of the bucket `v` lands in.
  static int bucket_index(std::uint64_t v) noexcept;
};

/// Monotonic counter. Default-constructed counters are unregistered (local
/// only); named counters also feed the registry aggregate.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string_view name);
  Counter(Registry& registry, std::string_view name);

  Counter& operator++() noexcept {
    ++local_;
    if (cell_ != nullptr) ++*cell_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) noexcept {
    local_ += n;
    if (cell_ != nullptr) *cell_ += n;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return local_; }
  operator std::uint64_t() const noexcept { return local_; }  // NOLINT(google-explicit-constructor)

 private:
  std::uint64_t local_ = 0;
  std::uint64_t* cell_ = nullptr;  // registry aggregate; stable (map node)
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::string_view name);
  Gauge(Registry& registry, std::string_view name);

  void set(double v) noexcept {
    local_ = v;
    if (cell_ != nullptr) *cell_ = v;
  }
  void add(double d) noexcept { set(local_ + d); }
  [[nodiscard]] double value() const noexcept { return local_; }

 private:
  double local_ = 0;
  double* cell_ = nullptr;
};

/// Log-bucketed histogram handle; records go to the shared registry cell.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::string_view name);
  Histogram(Registry& registry, std::string_view name);

  void record(std::uint64_t v) noexcept {
    if (cell_ != nullptr) cell_->record(v);
  }
  [[nodiscard]] const HistogramCell* cell() const noexcept { return cell_; }

 private:
  HistogramCell* cell_ = nullptr;
};

/// Name -> value store. `global()` is the default instance every metric
/// registers into; separate registries exist for tests.
class Registry {
 public:
  static Registry& global();

  /// Look up (or create) the aggregate cell for `name`. Addresses are
  /// stable for the registry's lifetime.
  std::uint64_t* counter_cell(std::string_view name);
  double* gauge_cell(std::string_view name);
  HistogramCell* histogram_cell(std::string_view name);

  /// Zero every value, keeping registrations (benches call this between
  /// scenarios so each snapshot covers exactly one run).
  void reset_values() noexcept;

  /// Deterministic JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names sorted lexicographically.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable fixed-width table of all non-zero metrics.
  [[nodiscard]] std::string to_table() const;

  [[nodiscard]] std::size_t metric_count() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramCell, std::less<>> histograms_;
};

}  // namespace nvmeshare::obs
