#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace nvmeshare::obs {

// --- HistogramCell ----------------------------------------------------------------

int HistogramCell::bucket_index(std::uint64_t v) noexcept {
  // bit_width(v) is 64 for v >= 2^63; those land in the open-ended last
  // bucket instead of overflowing the array.
  return v == 0 ? 0 : std::min(static_cast<int>(std::bit_width(v)), kBuckets - 1);
}

std::uint64_t HistogramCell::bucket_floor(int i) noexcept {
  return i <= 0 ? 0 : 1ull << (i - 1);
}

std::uint64_t HistogramCell::bucket_ceiling(int i) noexcept {
  return i <= 0 ? 1 : (i >= kBuckets - 1 ? 0 : 1ull << i);
}

void HistogramCell::record(std::uint64_t v) noexcept {
  ++buckets[static_cast<std::size_t>(bucket_index(v))];
  if (count == 0 || v < min) min = v;
  if (v > max) max = v;
  ++count;
  sum += v;
}

// --- handles ----------------------------------------------------------------------

Counter::Counter(std::string_view name) : Counter(Registry::global(), name) {}
Counter::Counter(Registry& registry, std::string_view name)
    : cell_(registry.counter_cell(name)) {}

Gauge::Gauge(std::string_view name) : Gauge(Registry::global(), name) {}
Gauge::Gauge(Registry& registry, std::string_view name) : cell_(registry.gauge_cell(name)) {}

Histogram::Histogram(std::string_view name) : Histogram(Registry::global(), name) {}
Histogram::Histogram(Registry& registry, std::string_view name)
    : cell_(registry.histogram_cell(name)) {}

// --- Registry ---------------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::uint64_t* Registry::counter_cell(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(std::string(name), 0).first;
  return &it->second;
}

double* Registry::gauge_cell(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(std::string(name), 0.0).first;
  return &it->second;
}

HistogramCell* Registry::histogram_cell(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), HistogramCell{}).first;
  return &it->second;
}

void Registry::reset_values() noexcept {
  for (auto& [name, v] : counters_) v = 0;
  for (auto& [name, v] : gauges_) v = 0.0;
  for (auto& [name, h] : histograms_) h = HistogramCell{};
}

namespace {

void append_json_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_histogram_json(std::string& out, const HistogramCell& h) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                ",\"max\":%" PRIu64 ",\"buckets\":[",
                h.count, h.sum, h.min, h.max);
  out += buf;
  bool first = true;
  for (int i = 0; i < HistogramCell::kBuckets; ++i) {
    if (h.buckets[static_cast<std::size_t>(i)] == 0) continue;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 ",%" PRIu64 "]", HistogramCell::bucket_floor(i),
                  h.buckets[static_cast<std::size_t>(i)]);
    out += buf;
  }
  out += "]}";
}

}  // namespace

std::string Registry::to_json() const {
  std::string out = "{\"counters\":{";
  char buf[64];
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_json_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_histogram_json(out, h);
  }
  out += "}}";
  return out;
}

std::string Registry::to_table() const {
  std::string out;
  char buf[192];
  for (const auto& [name, v] : counters_) {
    if (v == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-48s %20" PRIu64 "\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : gauges_) {
    if (v == 0.0) continue;
    std::snprintf(buf, sizeof(buf), "%-48s %20.3f\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    if (h.count == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-48s count=%-10" PRIu64 " mean=%-12.1f min=%-10" PRIu64 " max=%" PRIu64
                  "\n",
                  name.c_str(), h.count,
                  static_cast<double>(h.sum) / static_cast<double>(h.count), h.min, h.max);
    out += buf;
  }
  return out;
}

}  // namespace nvmeshare::obs
