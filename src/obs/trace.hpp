// Span-based request tracer.
//
// Each block request becomes one *trace*; a trace is tiled into *spans*,
// one per pipeline phase, stamped with sim::Engine time. Client-side spans
// (submit, bounce_copy, sq_write, doorbell, cq_wait, completion) partition
// the request's lifetime exactly — their durations sum to the end-to-end
// latency — while device-side spans (ctrl_fetch, media, data_dma, cq_write)
// are recorded on a separate track and correlated back to the owning trace
// via the (qid, cid) the command carries on the wire.
//
// Disabled (the default) the whole apparatus costs one inline bool check
// per instrumentation site. Enabled, spans land in a bounded ring buffer
// that can be snapshotted, aggregated per phase, or exported as Chrome
// trace_event JSON (open in Perfetto / chrome://tracing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace nvmeshare::obs {

/// Request pipeline phases across all drivers in the tree. One enum keeps
/// records small; not every driver emits every phase.
enum class Phase : std::uint8_t {
  // Client-side (distributed driver, local driver): these tile a trace.
  submit = 0,    ///< request intake -> SQE ready (validation, slot, software)
  bounce_copy,   ///< user buffer <-> bounce slot memcpy
  sq_write,      ///< SQE store into queue memory (posted; CPU-side cost ~0)
  doorbell,      ///< doorbell store + fence
  cq_wait,       ///< in flight: covers fetch, media, DMA, and poll quantum
  completion,    ///< CQE observed -> request completed to the block layer
  // Device-side (controller track).
  ctrl_fetch,    ///< controller's SQE fetch DMA read
  media,         ///< controller processing + media service time
  data_dma,      ///< payload DMA (posted write for reads, fetch for writes)
  cq_write,      ///< CQE posted write
  // NVMe-oF specific.
  capsule_send,  ///< command capsule SEND
  rdma_data,     ///< one-sided RDMA data movement
  irq_wait,      ///< interrupt delivery on the completion path
  // Fault recovery (command retry windows, queue-pair re-create, controller
  // reset, NVMe-oF reconnect). See docs/faults.md.
  recovery,
  // Whole-request summary span, emitted by end_trace().
  request,
  other,
};

[[nodiscard]] const char* phase_name(Phase p) noexcept;

/// Which pipeline stage a span was observed on (Chrome export: one row per
/// track).
enum class Track : std::uint8_t { client = 0, controller = 1, target = 2 };

[[nodiscard]] const char* track_name(Track t) noexcept;

/// Request kinds, stamped on the `request` summary span.
enum class Kind : std::uint8_t { read = 0, write, flush, write_zeroes, discard, other };

[[nodiscard]] const char* kind_name(Kind k) noexcept;

struct SpanRecord {
  std::uint64_t trace = 0;  ///< owning trace id; 0 = unattributed
  sim::Time begin = 0;
  sim::Time end = 0;
  Phase phase = Phase::other;
  Track track = Track::client;
  Kind kind = Kind::other;
  std::uint16_t qid = 0;
  std::uint16_t cid = 0;

  [[nodiscard]] sim::Duration duration() const noexcept { return end - begin; }
};

/// Per-phase aggregate built from a set of records.
struct PhaseStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;

  [[nodiscard]] double mean_ns() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(count);
  }
};

class Tracer {
 public:
  static Tracer& global();

  /// Start capturing. `capacity` bounds the ring buffer; the oldest records
  /// are overwritten once it is full (dropped() counts the casualties).
  void enable(std::size_t capacity = 1 << 16);
  void disable() noexcept { enabled_ = false; }
  /// Drop all captured records and open traces; keeps enabled state.
  void clear();

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Open a trace; returns its id (>= 1), or 0 when tracing is disabled.
  /// All other entry points accept trace id 0 as "do nothing".
  std::uint64_t begin_trace(Kind kind, sim::Time now);
  /// Close the trace, emitting the whole-request `request` span.
  void end_trace(std::uint64_t trace, sim::Time now);

  /// Append one span.
  void record(std::uint64_t trace, Track track, Phase phase, sim::Time begin, sim::Time end,
              std::uint16_t qid = 0, std::uint16_t cid = 0);

  /// (qid, cid) -> trace correlation, so the controller can attribute its
  /// spans to the request that queued the command.
  void bind(std::uint16_t qid, std::uint16_t cid, std::uint64_t trace);
  void unbind(std::uint16_t qid, std::uint16_t cid);
  [[nodiscard]] std::uint64_t lookup(std::uint16_t qid, std::uint16_t cid) const;

  /// Captured records, oldest first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Aggregate a snapshot per (track, phase).
  static std::map<std::pair<Track, Phase>, PhaseStat> aggregate(
      const std::vector<SpanRecord>& records);

  /// Chrome trace_event JSON ({"traceEvents":[...]}) of up to `max_events`
  /// records. Spans become complete ("X") events with microsecond
  /// timestamps; tracks become threads.
  [[nodiscard]] std::string chrome_trace_json(std::size_t max_events = 100'000) const;

 private:
  struct OpenTrace {
    Kind kind = Kind::other;
    sim::Time begin = 0;
  };

  bool enabled_ = false;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;    ///< ring write cursor
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_trace_id_ = 1;
  std::unordered_map<std::uint64_t, OpenTrace> open_;
  std::unordered_map<std::uint32_t, std::uint64_t> bindings_;  ///< qid<<16|cid -> trace
};

/// Marks the successive phase boundaries of one trace: each mark() records
/// a span from the previous boundary to `now`. A default-constructed or
/// disabled marker is a no-op, so instrumentation sites need no branches.
class PhaseMarker {
 public:
  PhaseMarker() = default;
  PhaseMarker(Tracer& tracer, std::uint64_t trace, Track track, sim::Time start)
      : tracer_(trace != 0 ? &tracer : nullptr), trace_(trace), track_(track), last_(start) {}

  void mark(Phase phase, sim::Time now, std::uint16_t qid = 0, std::uint16_t cid = 0) {
    if (tracer_ == nullptr) return;
    tracer_->record(trace_, track_, phase, last_, now, qid, cid);
    last_ = now;
  }

  [[nodiscard]] std::uint64_t trace() const noexcept { return trace_; }
  /// Time of the last boundary marked (callers use it to skip zero-length
  /// residual spans).
  [[nodiscard]] sim::Time last() const noexcept { return last_; }

 private:
  Tracer* tracer_ = nullptr;
  std::uint64_t trace_ = 0;
  Track track_ = Track::client;
  sim::Time last_ = 0;
};

}  // namespace nvmeshare::obs
