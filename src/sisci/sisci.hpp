// SISCI-style shared-memory API over the cluster interconnect.
//
// Mirrors the concepts of Dolphin's Software Infrastructure Shared-Memory
// Cluster Interconnect API as the paper uses them, with RAII instead of C
// handles:
//  * Segment       — a linear, physically contiguous region of one memory
//                    space (a host's DRAM, or the CXL pool), exported under
//                    a (node, segment id) name.
//  * RemoteSegment — a connection to an exported segment by name.
//  * NtbMapping    — RAII ownership of one or more consecutive NTB LUT
//                    entries; an NTB-substrate detail kept for tests and
//                    benchmarks that exercise the LUT directly. Substrate-
//                    neutral code uses fabric::Window via Map instead.
//  * Map           — a CPU mapping of a remote segment through whatever the
//                    substrate provides (NTB LUT window, CXL HDM range).
//
// Control-plane calls (create/connect/map) model configuration-time work
// and cost no simulated time; only data-path transactions through the
// resulting mappings are timed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "fabric/substrate.hpp"
#include "mem/allocator.hpp"
#include "pcie/fabric.hpp"

namespace nvmeshare::sisci {

using NodeId = fabric::HostId;
using SegmentId = std::uint32_t;

class Cluster;
struct RemoteSegment;

/// RAII ownership of `count` consecutive LUT entries on one NTB, mapping
/// the aperture range to [remote_base, remote_base + count*window).
class NtbMapping {
 public:
  NtbMapping() = default;
  NtbMapping(NtbMapping&& other) noexcept;
  NtbMapping& operator=(NtbMapping&& other) noexcept;
  NtbMapping(const NtbMapping&) = delete;
  NtbMapping& operator=(const NtbMapping&) = delete;
  ~NtbMapping();

  /// Program a run of consecutive free LUT entries on `ntb` so that the
  /// returned local aperture range of `size` bytes forwards to
  /// [remote_base, ...) in `remote_host`'s address space.
  static Result<NtbMapping> program(pcie::Fabric& fabric, pcie::NtbId ntb,
                                    pcie::HostId remote_host, std::uint64_t remote_base,
                                    std::uint64_t size);

  [[nodiscard]] bool valid() const noexcept { return fabric_ != nullptr; }
  /// Address of the mapped range in the NTB's host's address space.
  [[nodiscard]] std::uint64_t local_addr() const noexcept { return local_addr_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  void release();

 private:
  pcie::Fabric* fabric_ = nullptr;
  pcie::NtbId ntb_ = 0;
  std::uint32_t first_entry_ = 0;
  std::uint32_t entry_count_ = 0;
  std::uint64_t local_addr_ = 0;
  std::uint64_t size_ = 0;
};

/// A contiguous region of one host's physical memory, exported cluster-wide
/// under (node, id).
class Segment {
 public:
  Segment() = default;
  Segment(Segment&& other) noexcept;
  Segment& operator=(Segment&& other) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  ~Segment();

  [[nodiscard]] bool valid() const noexcept { return cluster_ != nullptr; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] SegmentId id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t phys_addr() const noexcept { return phys_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Zero-latency CPU access for the owning host (local DRAM).
  Status write(std::uint64_t offset, ConstByteSpan data);
  Status read(std::uint64_t offset, ByteSpan out) const;

  /// Descriptor usable with Map::create / DeviceRef::map_for_device.
  [[nodiscard]] RemoteSegment descriptor() const noexcept;

  void release();

 private:
  friend class Cluster;
  Cluster* cluster_ = nullptr;
  NodeId node_ = 0;
  SegmentId id_ = 0;
  std::uint64_t phys_ = 0;
  std::uint64_t size_ = 0;
};

/// A connection to a segment exported by some (possibly remote) node.
struct RemoteSegment {
  NodeId owner = 0;
  SegmentId id = 0;
  std::uint64_t phys_addr = 0;
  std::uint64_t size = 0;
};

/// CPU mapping of a remote segment: after mapping, loads/stores from
/// `local_node` to addr() reach the segment. Backed by whatever window
/// primitive the substrate provides (NTB LUT run, direct HDM addressing).
class Map {
 public:
  Map() = default;

  static Result<Map> create(Cluster& cluster, NodeId local_node, const RemoteSegment& remote);

  [[nodiscard]] bool valid() const noexcept { return valid_; }
  /// Address to use from the mapping node's CPU.
  [[nodiscard]] std::uint64_t addr() const noexcept { return window_.addr(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

 private:
  fabric::Window window_;
  bool valid_ = false;
  std::uint64_t size_ = 0;
};

/// The cluster-wide SISCI state: per-space segment allocators and the export
/// name table. Spaces are the substrate's segment-owning memories: every
/// host's DRAM, plus the pool on pooled-memory substrates.
class Cluster {
 public:
  /// `reserved_low` bytes of each space are left to other users
  /// (request buffers, queue test fixtures, ...).
  explicit Cluster(fabric::Substrate& fabric, std::uint64_t reserved_low = 16 * MiB);

  [[nodiscard]] fabric::Substrate& fabric() noexcept { return fabric_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return fabric_.engine(); }

  /// Allocate and export a segment of `size` bytes in space `node`.
  Result<Segment> create_segment(NodeId node, SegmentId id, std::uint64_t size);

  /// Allocate and export a segment, letting the substrate's placement
  /// policy pick the backing space from the expected access pattern
  /// (NTB: reader-local DRAM; CXL: the shared pool).
  Result<Segment> create_segment_placed(NodeId requester, NodeId device_host, bool cpu_access,
                                        bool device_access, SegmentId id, std::uint64_t size);

  /// Connect to a segment exported as (owner, id).
  Result<RemoteSegment> connect(NodeId owner, SegmentId id) const;

  /// Raw DRAM allocation on a host (for request buffers etc.).
  Result<std::uint64_t> alloc_dram(NodeId node, std::uint64_t size,
                                   std::uint64_t align = 4096);
  Status free_dram(NodeId node, std::uint64_t addr);

  [[nodiscard]] std::size_t exported_count() const noexcept { return exports_.size(); }

 private:
  friend class Segment;
  void unexport(NodeId node, SegmentId id, std::uint64_t phys);

  fabric::Substrate& fabric_;
  std::vector<std::unique_ptr<mem::RangeAllocator>> dram_;
  std::map<std::pair<NodeId, SegmentId>, RemoteSegment> exports_;
};

}  // namespace nvmeshare::sisci
