#include "sisci/sisci.hpp"

#include <utility>

#include "common/log.hpp"
#include "common/units.hpp"

namespace nvmeshare::sisci {

// --- NtbMapping ------------------------------------------------------------------

NtbMapping::NtbMapping(NtbMapping&& other) noexcept { *this = std::move(other); }

NtbMapping& NtbMapping::operator=(NtbMapping&& other) noexcept {
  if (this != &other) {
    release();
    fabric_ = std::exchange(other.fabric_, nullptr);
    ntb_ = other.ntb_;
    first_entry_ = other.first_entry_;
    entry_count_ = other.entry_count_;
    local_addr_ = other.local_addr_;
    size_ = other.size_;
  }
  return *this;
}

NtbMapping::~NtbMapping() { release(); }

void NtbMapping::release() {
  if (fabric_ == nullptr) return;
  for (std::uint32_t i = 0; i < entry_count_; ++i) {
    (void)fabric_->ntb_clear(ntb_, first_entry_ + i);
  }
  fabric_ = nullptr;
}

Result<NtbMapping> NtbMapping::program(pcie::Fabric& fabric, pcie::NtbId ntb,
                                       pcie::HostId remote_host, std::uint64_t remote_base,
                                       std::uint64_t size) {
  if (size == 0) return Status(Errc::invalid_argument, "cannot map empty range");
  const std::uint64_t window = fabric.ntb_window_size(ntb);
  const auto count = static_cast<std::uint32_t>(div_ceil(size, window));
  auto first = fabric.ntb_alloc_run(ntb, count);
  if (!first) return first.status();

  NtbMapping out;
  out.fabric_ = &fabric;
  out.ntb_ = ntb;
  out.first_entry_ = *first;
  out.entry_count_ = count;
  out.size_ = size;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (Status st = fabric.ntb_program(ntb, *first + i, remote_host,
                                       remote_base + static_cast<std::uint64_t>(i) * window);
        !st) {
      // Roll back the entries programmed so far.
      out.entry_count_ = i;
      out.release();
      return st;
    }
  }
  auto addr = fabric.ntb_window_address(ntb, *first);
  if (!addr) {
    out.release();
    return addr.status();
  }
  out.local_addr_ = *addr;
  return out;
}

// --- Segment ----------------------------------------------------------------------

Segment::Segment(Segment&& other) noexcept { *this = std::move(other); }

Segment& Segment::operator=(Segment&& other) noexcept {
  if (this != &other) {
    release();
    cluster_ = std::exchange(other.cluster_, nullptr);
    node_ = other.node_;
    id_ = other.id_;
    phys_ = other.phys_;
    size_ = other.size_;
  }
  return *this;
}

Segment::~Segment() { release(); }

void Segment::release() {
  if (cluster_ == nullptr) return;
  cluster_->unexport(node_, id_, phys_);
  cluster_ = nullptr;
}

Status Segment::write(std::uint64_t offset, ConstByteSpan data) {
  if (!valid()) return Status(Errc::unavailable, "segment released");
  if (offset + data.size() > size_) return Status(Errc::out_of_range, "segment write OOB");
  return cluster_->fabric().host_dram(node_).write(phys_ + offset, data);
}

Status Segment::read(std::uint64_t offset, ByteSpan out) const {
  if (!valid()) return Status(Errc::unavailable, "segment released");
  if (offset + out.size() > size_) return Status(Errc::out_of_range, "segment read OOB");
  return cluster_->fabric().host_dram(node_).read(phys_ + offset, out);
}

RemoteSegment Segment::descriptor() const noexcept {
  return RemoteSegment{node_, id_, phys_, size_};
}

// --- Map ----------------------------------------------------------------------------

Result<Map> Map::create(Cluster& cluster, NodeId local_node, const RemoteSegment& remote) {
  Map out;
  out.size_ = remote.size;
  auto window = cluster.fabric().map_window(fabric::MapIntent::cpu, local_node, remote.owner,
                                            remote.phys_addr, remote.size);
  if (!window) return window.status();
  out.window_ = std::move(*window);
  out.valid_ = true;
  return out;
}

// --- Cluster -----------------------------------------------------------------------

Cluster::Cluster(fabric::Substrate& fabric, std::uint64_t reserved_low) : fabric_(fabric) {
  dram_.reserve(fabric.space_count());
  for (fabric::HostId h = 0; h < fabric.space_count(); ++h) {
    const std::uint64_t size = fabric.host_dram(h).size();
    dram_.push_back(std::make_unique<mem::RangeAllocator>(
        reserved_low, size > reserved_low ? size - reserved_low : 0));
  }
}

Result<Segment> Cluster::create_segment(NodeId node, SegmentId id, std::uint64_t size) {
  if (node >= dram_.size()) return Status(Errc::invalid_argument, "bad node id");
  if (size == 0) return Status(Errc::invalid_argument, "empty segment");
  const auto key = std::make_pair(node, id);
  if (exports_.contains(key)) {
    return Status(Errc::already_exists, "segment id already exported by node");
  }
  auto addr = dram_[node]->alloc(align_up(size, 4096), 4096);
  if (!addr) return addr.status();

  Segment seg;
  seg.cluster_ = this;
  seg.node_ = node;
  seg.id_ = id;
  seg.phys_ = *addr;
  seg.size_ = size;
  exports_.emplace(key, RemoteSegment{node, id, *addr, size});
  NVS_LOG(debug, "sisci") << "exported segment (" << node << "," << id << ") size " << size;
  return seg;
}

Result<Segment> Cluster::create_segment_placed(NodeId requester, NodeId device_host,
                                               bool cpu_access, bool device_access,
                                               SegmentId id, std::uint64_t size) {
  const NodeId node = fabric_.place_segment(requester, device_host, cpu_access, device_access);
  return create_segment(node, id, size);
}

Result<RemoteSegment> Cluster::connect(NodeId owner, SegmentId id) const {
  auto it = exports_.find(std::make_pair(owner, id));
  if (it == exports_.end()) {
    return Status(Errc::not_found, "no such exported segment");
  }
  return it->second;
}

Result<std::uint64_t> Cluster::alloc_dram(NodeId node, std::uint64_t size,
                                          std::uint64_t align) {
  if (node >= dram_.size()) return Status(Errc::invalid_argument, "bad node id");
  return dram_[node]->alloc(size, align);
}

Status Cluster::free_dram(NodeId node, std::uint64_t addr) {
  if (node >= dram_.size()) return Status(Errc::invalid_argument, "bad node id");
  return dram_[node]->free(addr);
}

void Cluster::unexport(NodeId node, SegmentId id, std::uint64_t phys) {
  exports_.erase(std::make_pair(node, id));
  (void)dram_[node]->free(phys);
}

}  // namespace nvmeshare::sisci
