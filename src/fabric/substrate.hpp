// The substrate-neutral interconnect interface.
//
// Everything the stack above (sisci segments, smartio windows, the NVMe
// driver, NVMe-oF, the filesystem) needs from an interconnect is captured
// here: a host/DRAM registry, endpoint attachment with BAR addressing,
// timed posted writes and non-posted reads (scalar and scatter-gather),
// address-window mapping for CPU access and device DMA, a segment-placement
// policy, and setup-only peek/poke backdoors.
//
// Two substrates implement it:
//  * pcie::Fabric — the paper's PCIe cluster with NTB LUT windows,
//  * cxl::PoolFabric — a CXL 3.x pooled-memory model (shared pool with
//    load/store port latency and DSA bulk copies, no NTB hop chain).
//
// Timing semantics every substrate must honor:
//  * post_write() is posted: it returns the *arrival* time synchronously
//    and applies the payload at that simulated time. Posted writes issued
//    in order on the same path arrive in order.
//  * read()/read_sg() are non-posted: the returned future resolves after a
//    full round trip.
//  * poll_read() is the sanctioned zero-cost CQ-polling access; it only
//    works on memory for which cpu_pollable() holds (or through an
//    established CPU window).
//  * peek()/poke() are zero-latency backdoors for bring-up and test
//    assertions only. After seal_backdoors(), cross-host backdoor use is a
//    contract violation: debug builds fail the access with
//    `permission_denied` and count it in stats().backdoor_violations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "mem/phys_mem.hpp"
#include "obs/metrics.hpp"
#include "fabric/types.hpp"
#include "sim/task.hpp"

namespace nvmeshare::fabric {

class Endpoint;
class Substrate;

/// What a mapped window is for; substrates may place CPU maps and device
/// DMA windows through different resources (NTB LUT entries vs direct
/// pool/MMIO addressing).
enum class MapIntent : std::uint8_t {
  cpu,  ///< a host CPU wants load/store access to remote memory
  dma,  ///< a device wants to DMA into/out of the range
};

/// A live address-window mapping, released on destruction (RAII). A window
/// with token 0 is *direct*: the substrate reaches the range natively and
/// no resources are held.
class Window {
 public:
  Window() = default;
  Window(Window&& other) noexcept { *this = std::move(other); }
  Window& operator=(Window&& other) noexcept;
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;
  ~Window() { release(); }

  /// Address of the mapped range in the viewer's address space.
  [[nodiscard]] std::uint64_t addr() const noexcept { return addr_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool valid() const noexcept { return sub_ != nullptr; }

  void release();

 private:
  friend class Substrate;
  Substrate* sub_ = nullptr;
  std::uint64_t token_ = 0;  // 0 = direct mapping, nothing to release
  std::uint64_t addr_ = 0;
  std::uint64_t size_ = 0;
};

/// Substrate-wide counters, registered as `nvmeshare.fabric.*`.
struct Stats {
  Stats();
  obs::Counter posted_writes;
  obs::Counter reads;
  obs::Counter bytes_written;
  obs::Counter bytes_read;
  obs::Counter unsupported_requests;  ///< accesses that resolved nowhere
  obs::Counter ntb_translations;      ///< stays 0 on substrates without NTBs
  obs::Counter backdoor_violations;   ///< sealed cross-host peek/poke attempts
};

class Substrate {
 public:
  /// Base of the MMIO window (BARs, NTB apertures) in every host's space;
  /// DRAM occupies [0, dram_size) below it.
  static constexpr std::uint64_t kMmioBase = 0x40'0000'0000ULL;  // 256 GiB
  static constexpr std::uint64_t kMmioSize = 0x40'0000'0000ULL;

  explicit Substrate(sim::Engine& engine) noexcept : engine_(engine) {}
  virtual ~Substrate() = default;

  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  [[nodiscard]] virtual SubstrateKind kind() const noexcept = 0;
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  // --- host / space registry -------------------------------------------------

  [[nodiscard]] virtual std::size_t host_count() const noexcept = 0;
  /// Number of segment-owning address spaces. Equals host_count() unless
  /// the substrate adds shared spaces (the CXL pool is space host_count()).
  [[nodiscard]] virtual std::size_t space_count() const noexcept { return host_count(); }
  [[nodiscard]] virtual const std::string& host_name(HostId h) const = 0;
  /// Backing memory of a space; valid for ids in [0, space_count()).
  [[nodiscard]] virtual mem::PhysMem& host_dram(HostId h) = 0;
  /// The CPU of host `h` as a transaction initiator.
  [[nodiscard]] virtual Initiator cpu(HostId h) const = 0;

  // --- endpoints -------------------------------------------------------------

  /// Attach a device function in `host`; assigns BAR addresses. Substrates
  /// with an internal chip graph may offer richer attachment APIs.
  virtual Result<EndpointId> attach(Endpoint& ep, HostId host) = 0;
  [[nodiscard]] virtual Result<std::uint64_t> bar_address(EndpointId ep, int bar) const = 0;
  [[nodiscard]] virtual Endpoint* endpoint(EndpointId ep) const = 0;
  /// Host the endpoint is physically installed in.
  [[nodiscard]] virtual HostId endpoint_host(EndpointId ep) const = 0;

  // --- windows and placement -------------------------------------------------

  /// Make [addr, addr+size) of space `owner` reachable from host `viewer`
  /// (for its CPU or for a device installed there, per `intent`). The
  /// returned window's addr() is in `viewer`'s address space.
  virtual Result<Window> map_window(MapIntent intent, HostId viewer, HostId owner,
                                    std::uint64_t addr, std::uint64_t size) = 0;

  /// Placement policy for a shared segment: which space should back a
  /// segment requested by `requester` for a device in `device_host`, given
  /// which sides access it. NTB places by access pattern (keep the reader
  /// local); CXL places shared state in the pool.
  [[nodiscard]] virtual HostId place_segment(HostId requester, HostId device_host,
                                             bool cpu_access, bool device_access) const = 0;

  // --- timed transactions ----------------------------------------------------

  /// Posted memory write. Returns the arrival (apply) time; the payload is
  /// copied out of `data` during the call and becomes visible at the target
  /// exactly at arrival. `not_before` lets a caller serialize after an
  /// earlier posted write on the same path (e.g. an NVMe completion entry
  /// after its data).
  virtual Result<sim::Time> post_write(const Initiator& who, std::uint64_t addr,
                                       ConstByteSpan data, sim::Time not_before = 0) = 0;

  /// Posted scatter write of one buffer across multiple target ranges
  /// (device DMA of a data block through PRP pages). One aggregate
  /// serialization cost; returns arrival time of the *last* byte.
  virtual Result<sim::Time> write_sg(const Initiator& who, const std::vector<SgEntry>& sg,
                                     ConstByteSpan data, sim::Time not_before = 0) = 0;

  /// Non-posted read; future resolves after the full round trip.
  virtual sim::Future<Result<Bytes>> read(const Initiator& who, std::uint64_t addr,
                                          std::size_t len) = 0;

  /// Non-posted gather read across multiple ranges (device DMA fetch).
  virtual sim::Future<Result<Bytes>> read_sg(const Initiator& who,
                                             const std::vector<SgEntry>& sg) = 0;

  /// Zero-cost synchronous read for CQ phase polling. Unlike peek() this is
  /// a sanctioned data-path access: the polled ring must be local, in a
  /// shared pool, or behind an established CPU window.
  virtual Status poll_read(HostId viewer, std::uint64_t addr, ByteSpan out) = 0;

  /// True if `viewer`'s CPU can poll memory owned by space `owner` without
  /// per-access fabric round trips.
  [[nodiscard]] virtual bool cpu_pollable(HostId viewer, HostId owner) const = 0;

  /// Extra simulated cost a CPU pays to stage `bytes` into/out of space
  /// `owner` (bounce-buffer copies). 0 when the space is plain local DRAM.
  [[nodiscard]] virtual sim::Duration copy_cost_ns(HostId owner,
                                                   std::uint64_t bytes) const {
    (void)owner;
    (void)bytes;
    return 0;
  }

  // --- fault control ---------------------------------------------------------

  /// Administratively fail (or restore) `host`'s uplink into the shared
  /// interconnect: the NTB adapter cable on PCIe, the CXL port on a pool.
  virtual Status set_host_link(HostId host, bool up) = 0;

  // --- backdoors -------------------------------------------------------------

  /// Zero-latency backdoor access (setup / assertions only); guarded after
  /// seal_backdoors() — see the file comment.
  Status poke(HostId host, std::uint64_t addr, ConstByteSpan data);
  Status peek(HostId host, std::uint64_t addr, ByteSpan out);

  /// Declare bring-up complete: from now on cross-host peek/poke is a bug.
  void seal_backdoors() noexcept { sealed_ = true; }
  void unseal_backdoors() noexcept { sealed_ = false; }
  [[nodiscard]] bool backdoors_sealed() const noexcept { return sealed_; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 protected:
  virtual Status do_peek(HostId host, std::uint64_t addr, ByteSpan out) = 0;
  virtual Status do_poke(HostId host, std::uint64_t addr, ConstByteSpan data) = 0;
  /// Would a backdoor access of [addr, addr+len) from `viewer` cross into
  /// another host's space? (Shared pool spaces do not count as crossing.)
  [[nodiscard]] virtual bool backdoor_crosses_host(HostId viewer, std::uint64_t addr,
                                                   std::uint64_t len) const = 0;
  /// Release resources behind a non-direct window token.
  virtual void unmap_window(std::uint64_t token) = 0;

  [[nodiscard]] Window make_window(std::uint64_t token, std::uint64_t addr,
                                   std::uint64_t size) noexcept;

  /// Guard check shared by peek/poke; returns non-ok when the access must
  /// be rejected.
  Status check_backdoor(HostId host, std::uint64_t addr, std::uint64_t len,
                        const char* what);

  sim::Engine& engine_;
  Stats stats_;
  bool sealed_ = false;

 private:
  friend class Window;
};

}  // namespace nvmeshare::fabric
