// Identifiers and small shared types of the interconnect substrate layer.
//
// A *substrate* is whatever moves bytes between hosts and devices: the
// PCIe/NTB cluster fabric of the paper, or the CXL pooled-memory model.
// These types are substrate-neutral; `pcie::` and `cxl::` alias them so
// consumers written against one substrate compile against any.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

#include "common/status.hpp"

namespace nvmeshare::fabric {

/// One independent computer system (its own address space + DRAM). Some
/// substrates expose additional *spaces* past the hosts (e.g. the CXL
/// pool); APIs that take a segment owner accept those too.
using HostId = std::uint32_t;
/// A forwarding element inside a substrate (root complex, switch chip,
/// NTB adapter...). Substrates without an internal graph may reuse the
/// host id here.
using ChipId = std::uint32_t;
/// An attached device function.
using EndpointId = std::uint32_t;

inline constexpr HostId kNoHost = std::numeric_limits<HostId>::max();
inline constexpr ChipId kNoChip = std::numeric_limits<ChipId>::max();

/// Where memory transactions from some agent enter the substrate. CPUs
/// enter at their host's root port; devices enter at their attachment
/// point.
struct Initiator {
  HostId host = kNoHost;
  ChipId chip = kNoChip;
};

/// Scatter-gather element: a device-visible address plus a length.
struct SgEntry {
  std::uint64_t addr = 0;
  std::uint32_t len = 0;
};

/// The interconnect technologies a testbed can be built on.
enum class SubstrateKind : std::uint8_t {
  ntb,  ///< PCIe cluster fabric with NTB LUT windows (the paper's hardware)
  cxl,  ///< CXL 3.x pooled-memory substrate (shared pool, no NTB hops)
};

[[nodiscard]] constexpr std::string_view substrate_name(SubstrateKind k) noexcept {
  return k == SubstrateKind::ntb ? "ntb" : "cxl";
}

[[nodiscard]] inline Result<SubstrateKind> parse_substrate(std::string_view s) {
  if (s == "ntb") return SubstrateKind::ntb;
  if (s == "cxl") return SubstrateKind::cxl;
  return Status(Errc::invalid_argument, "unknown substrate (expected ntb|cxl)");
}

}  // namespace nvmeshare::fabric
