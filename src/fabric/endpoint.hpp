// Base class for device functions attached to a substrate.
//
// An endpoint exposes one or more BARs (register regions). Register accesses
// arrive from the substrate *at the transaction's arrival time*, so side
// effects such as doorbell writes are naturally delayed by path traversal.
// Endpoints initiate DMA through the Substrate reference they receive when
// attached — the same device model runs unchanged over NTB and CXL.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/types.hpp"

namespace nvmeshare::fabric {

class Substrate;

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual int bar_count() const = 0;
  /// Size in bytes of BAR `bar` (power of two, >= 4 KiB).
  [[nodiscard]] virtual std::uint64_t bar_size(int bar) const = 0;

  /// Read `len` bytes at `offset` within BAR `bar`.
  virtual Result<Bytes> bar_read(int bar, std::uint64_t offset, std::size_t len) = 0;
  /// Write into BAR `bar`; side effects (doorbells) happen here.
  virtual Status bar_write(int bar, std::uint64_t offset, ConstByteSpan data) = 0;

  /// Substrate wiring, set by the substrate's attach call.
  void on_attached(Substrate& fabric, Initiator self, EndpointId id) noexcept {
    fabric_ = &fabric;
    self_ = self;
    id_ = id;
  }

  [[nodiscard]] Substrate* fabric() const noexcept { return fabric_; }
  /// This device's identity as a DMA initiator.
  [[nodiscard]] Initiator dma_initiator() const noexcept { return self_; }
  [[nodiscard]] EndpointId endpoint_id() const noexcept { return id_; }

 private:
  Substrate* fabric_ = nullptr;
  Initiator self_{};
  EndpointId id_ = 0;
};

}  // namespace nvmeshare::fabric
