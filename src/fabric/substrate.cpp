#include "fabric/substrate.hpp"

#include <utility>

#include "common/log.hpp"

namespace nvmeshare::fabric {

Stats::Stats()
    : posted_writes("nvmeshare.fabric.posted_writes"),
      reads("nvmeshare.fabric.reads"),
      bytes_written("nvmeshare.fabric.bytes_written"),
      bytes_read("nvmeshare.fabric.bytes_read"),
      unsupported_requests("nvmeshare.fabric.unsupported_requests"),
      ntb_translations("nvmeshare.fabric.ntb_translations"),
      backdoor_violations("nvmeshare.fabric.backdoor_violations") {}

Window& Window::operator=(Window&& other) noexcept {
  if (this != &other) {
    release();
    sub_ = std::exchange(other.sub_, nullptr);
    token_ = std::exchange(other.token_, 0);
    addr_ = other.addr_;
    size_ = other.size_;
  }
  return *this;
}

void Window::release() {
  if (sub_ == nullptr) return;
  if (token_ != 0) sub_->unmap_window(token_);
  sub_ = nullptr;
  token_ = 0;
}

Window Substrate::make_window(std::uint64_t token, std::uint64_t addr,
                              std::uint64_t size) noexcept {
  Window w;
  w.sub_ = this;
  w.token_ = token;
  w.addr_ = addr;
  w.size_ = size;
  return w;
}

Status Substrate::check_backdoor(HostId host, std::uint64_t addr, std::uint64_t len,
                                 const char* what) {
#ifdef NDEBUG
  (void)host;
  (void)addr;
  (void)len;
  (void)what;
#else
  // Debug-build data-path guard: once bring-up sealed the backdoors, any
  // cross-host peek/poke is production code cheating past the latency
  // model. Fail the access loudly instead of silently returning data that
  // real hardware would have charged a fabric round trip for.
  if (sealed_ && backdoor_crosses_host(host, addr, len)) {
    ++stats_.backdoor_violations;
    NVS_LOG(error, "fabric") << "sealed cross-host " << what << " from host " << host
                             << " at 0x" << std::hex << addr << std::dec << " (" << len
                             << " bytes)";
    return Status(Errc::permission_denied,
                  "cross-host backdoor access after bring-up seal");
  }
#endif
  return Status::ok();
}

Status Substrate::poke(HostId host, std::uint64_t addr, ConstByteSpan data) {
  if (Status st = check_backdoor(host, addr, data.size(), "poke"); !st) return st;
  return do_poke(host, addr, data);
}

Status Substrate::peek(HostId host, std::uint64_t addr, ByteSpan out) {
  if (Status st = check_backdoor(host, addr, out.size(), "peek"); !st) return st;
  return do_peek(host, addr, out);
}

}  // namespace nvmeshare::fabric
