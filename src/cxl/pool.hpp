// CXL pooled-memory substrate: the alternative interconnect of ROADMAP
// item 3 ("My CXL Pool Obviates Your PCIe Switch", LMB — see PAPERS.md).
//
// Topology: every host keeps its private DRAM; a shared memory pool hangs
// off a CXL 3.x switch and is mapped *identically* into every host's
// address space at kPoolBase (HDM). Devices reach the pool the same way
// (CXL.mem), and host CPUs reach device BARs on other hosts through
// CXL.io peer-to-peer MMIO. There is no NTB hop chain and no LUT state:
// windows onto the pool and onto MMIO are direct addressing, so
// map_window() holds no resources. What a host *cannot* do is reach
// another host's private DRAM — shared state (queues, mailbox, metadata,
// bounce buffers) must live in the pool, which is exactly what
// place_segment() arranges.
//
// Latency terms (vs the NTB substrate's per-chip traversal + TLP model):
//  * load/store port latency per access to the pool (CXL.mem flits),
//  * serialization bounded by link bandwidth,
//  * bulk scatter/gather transfers above dsa_threshold ride the pool-side
//    DSA engine: one descriptor setup, then streaming bandwidth,
//  * peer MMIO (doorbells) pays the CXL.io p2p cost,
//  * no per-TLP arithmetic and no NTB translation entries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/endpoint.hpp"
#include "fabric/substrate.hpp"
#include "mem/allocator.hpp"
#include "mem/phys_mem.hpp"
#include "sim/task.hpp"

namespace nvmeshare::cxl {

using fabric::EndpointId;
using fabric::HostId;
using fabric::Initiator;
using fabric::SgEntry;

struct PoolConfig {
  /// Capacity of the shared pool (sparse; pages materialize on write).
  std::uint64_t pool_size = 4ULL << 30;
  /// CPU/device access to its own host's DRAM (one way).
  sim::Duration local_mem_ns = 100;
  /// One-way port + switch traversal for a pool *load* (CXL.mem read).
  sim::Duration load_port_ns = 170;
  /// One-way cost of a posted store into the pool.
  sim::Duration store_port_ns = 110;
  /// Media access at the pool device (completer side).
  sim::Duration pool_access_ns = 90;
  /// CXL.io peer-to-peer MMIO traversal (cross-host doorbells, BARs).
  sim::Duration mmio_ns = 380;
  /// Descriptor submit + completion overhead of a pool-DSA bulk copy.
  sim::Duration dsa_setup_ns = 650;
  /// Streaming bandwidth of the pool-side DSA engine.
  double dsa_bytes_per_ns = 30.0;
  /// Effective payload bandwidth of a host's CXL link.
  double link_bytes_per_ns = 26.0;
  /// Scatter/gather transfers of at least this many bytes use the DSA.
  std::uint64_t dsa_threshold = 4096;
};

class PoolFabric final : public fabric::Substrate {
 public:
  /// Base of the pool HDM window in every host's address space; private
  /// DRAM occupies [0, dram_size), MMIO sits at kMmioBase as on PCIe.
  static constexpr std::uint64_t kPoolBase = 0x80'0000'0000ULL;  // 512 GiB

  explicit PoolFabric(sim::Engine& engine, PoolConfig cfg = {});

  [[nodiscard]] fabric::SubstrateKind kind() const noexcept override {
    return fabric::SubstrateKind::cxl;
  }
  [[nodiscard]] const PoolConfig& config() const noexcept { return cfg_; }

  /// Add a host with `dram_size` bytes of private RAM.
  HostId add_host(std::string name, std::uint64_t dram_size);

  [[nodiscard]] std::size_t host_count() const noexcept override { return hosts_.size(); }
  /// Hosts plus the pool: the pool is segment-owning space host_count().
  [[nodiscard]] std::size_t space_count() const noexcept override {
    return hosts_.size() + 1;
  }
  [[nodiscard]] HostId pool_space() const noexcept {
    return static_cast<HostId>(hosts_.size());
  }
  [[nodiscard]] const std::string& host_name(HostId h) const override;
  [[nodiscard]] mem::PhysMem& host_dram(HostId h) override;
  [[nodiscard]] Initiator cpu(HostId h) const override { return Initiator{h, h}; }

  Result<EndpointId> attach(fabric::Endpoint& ep, HostId host) override;
  [[nodiscard]] Result<std::uint64_t> bar_address(EndpointId ep, int bar) const override;
  [[nodiscard]] fabric::Endpoint* endpoint(EndpointId ep) const override;
  [[nodiscard]] HostId endpoint_host(EndpointId ep) const override;

  /// Pool and MMIO ranges are directly addressable — windows are free and
  /// hold nothing. Remote *private* DRAM is unreachable by design.
  Result<fabric::Window> map_window(fabric::MapIntent intent, HostId viewer, HostId owner,
                                    std::uint64_t addr, std::uint64_t size) override;

  /// Shared segments live in the pool: that is the substrate's whole point.
  [[nodiscard]] HostId place_segment(HostId requester, HostId device_host, bool cpu_access,
                                     bool device_access) const override {
    (void)requester;
    (void)device_host;
    (void)cpu_access;
    (void)device_access;
    return pool_space();
  }

  [[nodiscard]] bool cpu_pollable(HostId viewer, HostId owner) const override {
    return viewer == owner || owner == pool_space();
  }

  /// Staging into the pool is not free like local-DRAM bounce buffers:
  /// small copies pay the store port, bulk copies the DSA.
  [[nodiscard]] sim::Duration copy_cost_ns(HostId owner,
                                           std::uint64_t bytes) const override;

  Result<sim::Time> post_write(const Initiator& who, std::uint64_t addr, ConstByteSpan data,
                               sim::Time not_before = 0) override;
  Result<sim::Time> write_sg(const Initiator& who, const std::vector<SgEntry>& sg,
                             ConstByteSpan data, sim::Time not_before = 0) override;
  sim::Future<Result<Bytes>> read(const Initiator& who, std::uint64_t addr,
                                  std::size_t len) override;
  sim::Future<Result<Bytes>> read_sg(const Initiator& who,
                                     const std::vector<SgEntry>& sg) override;
  Status poll_read(HostId viewer, std::uint64_t addr, ByteSpan out) override;

  /// Fail (or restore) `host`'s CXL port: while down the host cannot reach
  /// the pool or peer MMIO, and nobody reaches its devices.
  Status set_host_link(HostId host, bool up) override;

 protected:
  Status do_poke(HostId host, std::uint64_t addr, ConstByteSpan data) override;
  Status do_peek(HostId host, std::uint64_t addr, ByteSpan out) override;
  [[nodiscard]] bool backdoor_crosses_host(HostId viewer, std::uint64_t addr,
                                           std::uint64_t len) const override;
  void unmap_window(std::uint64_t token) override { (void)token; }

 private:
  struct HostState {
    std::string name;
    std::unique_ptr<mem::PhysMem> dram;
    bool port_up = true;
  };

  struct BarRegion {
    std::uint64_t base = 0;
    std::uint64_t len = 0;
    EndpointId ep = 0;
    int bar = 0;
  };

  struct EndpointState {
    fabric::Endpoint* ep = nullptr;
    HostId host = fabric::kNoHost;
    std::vector<std::uint64_t> bar_bases;
  };

  struct Resolved {
    enum class Kind { dram, pool, bar } kind = Kind::dram;
    HostId host = fabric::kNoHost;  ///< owning host (dram/bar) — pool has none
    std::uint64_t addr = 0;         ///< offset in the backing memory (dram/pool)
    EndpointId ep = 0;
    int bar = 0;
    std::uint64_t bar_offset = 0;
  };

  [[nodiscard]] Result<Resolved> resolve(HostId viewer, std::uint64_t addr,
                                         std::uint64_t len) const;
  /// Port check for a resolved target seen from `viewer`.
  [[nodiscard]] Status check_reachable(HostId viewer, const Resolved& t) const;
  Status apply_write(const Resolved& t, ConstByteSpan data);
  Status apply_read_into(const Resolved& t, ByteSpan out);

  /// One-way initiator-side latency to a target.
  [[nodiscard]] sim::Duration one_way_ns(HostId viewer, const Resolved& t,
                                         bool is_store) const;
  [[nodiscard]] sim::Duration serialization_ns(std::uint64_t bytes) const;
  /// Floor key: posted ordering is kept per (initiating agent, target
  /// resource) — the pool, a host's DRAM, or a device function. The agent
  /// is the full Initiator (host + entry chip): a host CPU and a device DMA
  /// engine in the same host are independent store streams and must not
  /// serialize behind each other's backlog.
  [[nodiscard]] std::uint64_t floor_key(const Resolved& t) const;
  [[nodiscard]] static std::uint64_t initiator_id(const Initiator& who) noexcept {
    return (static_cast<std::uint64_t>(who.host) << 32) | who.chip;
  }
  sim::Time posted_arrival(std::uint64_t initiator, std::uint64_t key,
                           sim::Duration latency, sim::Duration gap, sim::Time not_before);
  /// Fault-injection host id for a target (the pool reports the initiator —
  /// pool loss is indistinguishable from losing your own port).
  [[nodiscard]] HostId fault_host(HostId viewer, const Resolved& t) const;

  PoolConfig cfg_;
  std::vector<HostState> hosts_;
  mem::PhysMem pool_;
  mem::RangeAllocator mmio_;  // one global MMIO space, CXL.io p2p reachable
  std::map<std::uint64_t, BarRegion> bars_;
  std::vector<EndpointState> endpoints_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, sim::Time> posted_floor_;
};

}  // namespace nvmeshare::cxl
