#include "cxl/pool.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"

namespace nvmeshare::cxl {

namespace {
std::uint64_t pow2_ceil(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

PoolFabric::PoolFabric(sim::Engine& engine, PoolConfig cfg)
    : fabric::Substrate(engine),
      cfg_(cfg),
      pool_(cfg.pool_size),
      mmio_(kMmioBase, kMmioSize) {}

HostId PoolFabric::add_host(std::string name, std::uint64_t dram_size) {
  HostState hs;
  hs.name = std::move(name);
  hs.dram = std::make_unique<mem::PhysMem>(dram_size);
  hosts_.push_back(std::move(hs));
  return static_cast<HostId>(hosts_.size() - 1);
}

const std::string& PoolFabric::host_name(HostId h) const {
  static const std::string kPoolName = "cxl-pool";
  if (h == pool_space()) return kPoolName;
  return hosts_.at(h).name;
}

mem::PhysMem& PoolFabric::host_dram(HostId h) {
  if (h == pool_space()) return pool_;
  return *hosts_.at(h).dram;
}

Result<EndpointId> PoolFabric::attach(fabric::Endpoint& ep, HostId host) {
  if (host >= hosts_.size()) return Status(Errc::invalid_argument, "bad host id");
  EndpointState st;
  st.ep = &ep;
  st.host = host;
  for (int bar = 0; bar < ep.bar_count(); ++bar) {
    const std::uint64_t size = ep.bar_size(bar);
    if (size == 0) {
      st.bar_bases.push_back(0);
      continue;
    }
    const std::uint64_t align = pow2_ceil(std::max<std::uint64_t>(size, 4096));
    auto base = mmio_.alloc(align, align);
    if (!base) return base.status();
    st.bar_bases.push_back(*base);
    bars_.emplace(*base, BarRegion{*base, size,
                                   static_cast<EndpointId>(endpoints_.size()), bar});
  }
  const auto id = static_cast<EndpointId>(endpoints_.size());
  endpoints_.push_back(std::move(st));
  // Devices get a chip id disjoint from any host's root port (cpu() uses
  // chip == host) so a DMA engine and its host's CPU are distinct posted
  // streams in the floor map.
  ep.on_attached(*this, Initiator{host, 0x8000'0000u + id}, id);
  NVS_LOG(debug, "cxl") << "attached endpoint '" << ep.name() << "' to host "
                        << hosts_[host].name;
  return id;
}

Result<std::uint64_t> PoolFabric::bar_address(EndpointId ep, int bar) const {
  if (ep >= endpoints_.size()) return Status(Errc::invalid_argument, "bad endpoint id");
  const auto& bases = endpoints_[ep].bar_bases;
  if (bar < 0 || static_cast<std::size_t>(bar) >= bases.size()) {
    return Status(Errc::invalid_argument, "bad BAR index");
  }
  return bases[static_cast<std::size_t>(bar)];
}

fabric::Endpoint* PoolFabric::endpoint(EndpointId ep) const {
  return ep < endpoints_.size() ? endpoints_[ep].ep : nullptr;
}

HostId PoolFabric::endpoint_host(EndpointId ep) const {
  return ep < endpoints_.size() ? endpoints_[ep].host : fabric::kNoHost;
}

Result<fabric::Window> PoolFabric::map_window(fabric::MapIntent intent, HostId viewer,
                                              HostId owner, std::uint64_t addr,
                                              std::uint64_t size) {
  (void)intent;
  if (viewer >= hosts_.size()) return Status(Errc::invalid_argument, "bad viewer host");
  if (size == 0) return Status(Errc::invalid_argument, "cannot map empty range");
  if (owner == pool_space()) {
    if (addr + size > cfg_.pool_size) {
      return Status(Errc::out_of_range, "map exceeds pool capacity");
    }
    return make_window(0, kPoolBase + addr, size);
  }
  if (owner == viewer) return make_window(0, addr, size);
  if (owner < hosts_.size() && addr >= kMmioBase) {
    // Device BARs live in one global MMIO space: CXL.io p2p addressing.
    return make_window(0, addr, size);
  }
  return Status(Errc::unsupported,
                "CXL pool substrate cannot map another host's private DRAM — "
                "place shared data in the pool");
}

// --- resolution / access -----------------------------------------------------

Result<PoolFabric::Resolved> PoolFabric::resolve(HostId viewer, std::uint64_t addr,
                                                 std::uint64_t len) const {
  if (viewer >= hosts_.size()) return Status(Errc::invalid_argument, "bad host id");
  const std::uint64_t span = len == 0 ? 1 : len;
  const std::uint64_t dram_size = hosts_[viewer].dram->size();
  if (addr + span <= dram_size) {
    Resolved out;
    out.kind = Resolved::Kind::dram;
    out.host = viewer;
    out.addr = addr;
    return out;
  }
  if (addr >= kPoolBase && addr + span <= kPoolBase + cfg_.pool_size) {
    Resolved out;
    out.kind = Resolved::Kind::pool;
    out.addr = addr - kPoolBase;
    return out;
  }
  if (addr >= kMmioBase && addr < kMmioBase + kMmioSize) {
    auto it = bars_.upper_bound(addr);
    if (it != bars_.begin()) {
      --it;
      const BarRegion& r = it->second;
      if (addr >= r.base && addr + span <= r.base + r.len) {
        Resolved out;
        out.kind = Resolved::Kind::bar;
        out.host = endpoints_[r.ep].host;
        out.ep = r.ep;
        out.bar = r.bar;
        out.bar_offset = addr - r.base;
        return out;
      }
    }
  }
  return Status(Errc::unmapped_address,
                "no region for address in host '" + hosts_[viewer].name + "'");
}

Status PoolFabric::check_reachable(HostId viewer, const Resolved& t) const {
  // Own DRAM never leaves the host. Everything else traverses the CXL
  // port: the viewer's port must be up, and for a peer device BAR the
  // owner's port too.
  if (t.kind == Resolved::Kind::dram && t.host == viewer) return Status::ok();
  if (!hosts_[viewer].port_up) {
    return Status(Errc::unavailable, "CXL port down on initiating host");
  }
  if (t.kind == Resolved::Kind::bar && t.host != viewer && !hosts_[t.host].port_up) {
    return Status(Errc::unavailable, "CXL port down on device host");
  }
  return Status::ok();
}

Status PoolFabric::apply_write(const Resolved& t, ConstByteSpan data) {
  switch (t.kind) {
    case Resolved::Kind::dram:
      return hosts_[t.host].dram->write(t.addr, data);
    case Resolved::Kind::pool:
      return pool_.write(t.addr, data);
    case Resolved::Kind::bar:
      return endpoints_[t.ep].ep->bar_write(t.bar, t.bar_offset, data);
  }
  return Status(Errc::internal, "unreachable");
}

Status PoolFabric::apply_read_into(const Resolved& t, ByteSpan out) {
  switch (t.kind) {
    case Resolved::Kind::dram:
      return hosts_[t.host].dram->read(t.addr, out);
    case Resolved::Kind::pool:
      return pool_.read(t.addr, out);
    case Resolved::Kind::bar: {
      Result<Bytes> data = endpoints_[t.ep].ep->bar_read(t.bar, t.bar_offset, out.size());
      if (!data) return data.status();
      std::copy(data->begin(), data->end(), out.begin());
      return Status::ok();
    }
  }
  return Status(Errc::internal, "unreachable");
}

// --- latency -----------------------------------------------------------------

sim::Duration PoolFabric::one_way_ns(HostId viewer, const Resolved& t,
                                     bool is_store) const {
  switch (t.kind) {
    case Resolved::Kind::dram:
      return cfg_.local_mem_ns;
    case Resolved::Kind::pool:
      return is_store ? cfg_.store_port_ns : cfg_.load_port_ns;
    case Resolved::Kind::bar:
      return t.host == viewer ? cfg_.local_mem_ns : cfg_.mmio_ns;
  }
  return cfg_.local_mem_ns;
}

sim::Duration PoolFabric::serialization_ns(std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  return static_cast<sim::Duration>(static_cast<double>(bytes) / cfg_.link_bytes_per_ns);
}

std::uint64_t PoolFabric::floor_key(const Resolved& t) const {
  switch (t.kind) {
    case Resolved::Kind::pool:
      return 0xffff'ffff'0000'0000ULL;
    case Resolved::Kind::bar:
      return 0x1'0000'0000ULL | t.ep;
    case Resolved::Kind::dram:
      return t.host;
  }
  return 0;
}

sim::Time PoolFabric::posted_arrival(std::uint64_t initiator, std::uint64_t key,
                                     sim::Duration latency, sim::Duration gap,
                                     sim::Time not_before) {
  sim::Time& floor = posted_floor_[{initiator, key}];
  const sim::Time arrival = std::max({engine_.now() + latency, floor + gap, not_before});
  floor = arrival;
  return arrival;
}

HostId PoolFabric::fault_host(HostId viewer, const Resolved& t) const {
  return t.kind == Resolved::Kind::pool ? viewer : t.host;
}

// --- transactions ------------------------------------------------------------

Result<sim::Time> PoolFabric::post_write(const Initiator& who, std::uint64_t addr,
                                         ConstByteSpan data, sim::Time not_before) {
  auto target = resolve(who.host, addr, data.size());
  if (!target) {
    ++stats_.unsupported_requests;
    return target.status();
  }
  if (Status st = check_reachable(who.host, *target); !st) return st;

  bool fault_drop = false;
  sim::Duration fault_extra = 0;
  fault::Injector::PostedWriteDecision corrupt;
  if (fault::enabled()) {
    const auto decision = fault::Injector::global().on_posted_write(
        who.host, fault_host(who.host, *target),
        target->kind == Resolved::Kind::bar, data.size());
    fault_drop = decision.drop;
    fault_extra = decision.extra_ns;
    corrupt = decision;
  }

  ++stats_.posted_writes;
  stats_.bytes_written += data.size();

  const sim::Duration ser = serialization_ns(data.size());
  const sim::Duration lat = one_way_ns(who.host, *target, /*is_store=*/true) + ser +
                            cfg_.pool_access_ns + fault_extra;
  const sim::Time arrival =
      posted_arrival(initiator_id(who), floor_key(*target), lat, ser, not_before);
  if (fault_drop) return arrival;
  Bytes payload(data.size());
  if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size());
  if (corrupt.flip) {
    payload[corrupt.flip_bit / 8] ^= std::byte{1} << (corrupt.flip_bit % 8);
  }
  if (corrupt.torn) payload.resize(corrupt.torn_bytes);
  engine_.at(arrival, [this, t = *target, d = std::move(payload)]() {
    if (Status st = apply_write(t, d); !st) {
      NVS_LOG(warn, "cxl") << "posted store dropped at target: " << st.to_string();
      ++stats_.unsupported_requests;
    }
  });
  return arrival;
}

Result<sim::Time> PoolFabric::write_sg(const Initiator& who, const std::vector<SgEntry>& sg,
                                       ConstByteSpan data, sim::Time not_before) {
  std::uint64_t total = 0;
  sim::Duration worst_one_way = 0;
  std::vector<Resolved> targets;
  targets.reserve(sg.size());
  for (const auto& e : sg) {
    auto target = resolve(who.host, e.addr, e.len);
    if (!target) {
      ++stats_.unsupported_requests;
      return target.status();
    }
    if (Status st = check_reachable(who.host, *target); !st) return st;
    worst_one_way =
        std::max(worst_one_way, one_way_ns(who.host, *target, /*is_store=*/true));
    targets.push_back(*target);
    total += e.len;
  }
  if (total != data.size()) {
    return Status(Errc::invalid_argument, "scatter list length != payload length");
  }

  bool fault_drop = false;
  sim::Duration fault_extra = 0;
  fault::Injector::PostedWriteDecision corrupt;
  if (fault::enabled() && !targets.empty()) {
    const auto decision = fault::Injector::global().on_posted_write(
        who.host, fault_host(who.host, targets.front()),
        targets.front().kind == Resolved::Kind::bar, total);
    fault_drop = decision.drop;
    fault_extra = decision.extra_ns;
    corrupt = decision;
  }

  ++stats_.posted_writes;
  stats_.bytes_written += total;

  // Bulk transfers ride the pool DSA: fixed descriptor cost plus streaming
  // bandwidth instead of per-store port latency.
  const bool dsa = total >= cfg_.dsa_threshold;
  const sim::Duration ser = serialization_ns(total);
  const sim::Duration move_ns =
      dsa ? cfg_.dsa_setup_ns +
                static_cast<sim::Duration>(static_cast<double>(total) / cfg_.dsa_bytes_per_ns)
          : worst_one_way + ser;
  const sim::Duration lat = move_ns + cfg_.pool_access_ns + fault_extra;

  std::vector<std::uint64_t> keys;
  for (const auto& t : targets) {
    const std::uint64_t k = floor_key(t);
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) keys.push_back(k);
  }
  sim::Time arrival = not_before;
  for (std::uint64_t k : keys) {
    arrival = std::max(arrival, posted_arrival(initiator_id(who), k, lat, ser, not_before));
  }
  for (std::uint64_t k : keys) {
    posted_floor_[{initiator_id(who), k}] = arrival;
  }
  if (fault_drop) return arrival;
  Bytes payload(data.size());
  if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size());
  if (corrupt.flip) {
    payload[corrupt.flip_bit / 8] ^= std::byte{1} << (corrupt.flip_bit % 8);
  }
  const std::uint64_t deliver = corrupt.torn ? corrupt.torn_bytes : total;
  engine_.at(arrival,
             [this, targets = std::move(targets), sg, d = std::move(payload), deliver]() {
               std::size_t off = 0;
               for (std::size_t i = 0; i < targets.size() && off < deliver; ++i) {
                 const std::size_t chunk = std::min<std::size_t>(sg[i].len, deliver - off);
                 if (Status st = apply_write(targets[i], ConstByteSpan(d).subspan(off, chunk));
                     !st) {
                   NVS_LOG(warn, "cxl") << "scatter store chunk dropped: " << st.to_string();
                   ++stats_.unsupported_requests;
                 }
                 off += sg[i].len;
               }
             });
  return arrival;
}

sim::Future<Result<Bytes>> PoolFabric::read(const Initiator& who, std::uint64_t addr,
                                            std::size_t len) {
  sim::Promise<Result<Bytes>> promise(engine_);
  auto future = promise.future();

  auto target = resolve(who.host, addr, len);
  Status reach = target ? check_reachable(who.host, *target) : target.status();
  if (!target || !reach) {
    if (!target) ++stats_.unsupported_requests;
    engine_.after(2 * cfg_.local_mem_ns,
                  [promise, st = reach]() mutable { promise.set(st); });
    return future;
  }
  ++stats_.reads;
  stats_.bytes_read += len;

  const sim::Duration one_way = one_way_ns(who.host, *target, /*is_store=*/false);
  const sim::Duration total = 2 * one_way + cfg_.pool_access_ns + serialization_ns(len);
  engine_.after(one_way + cfg_.pool_access_ns,
                [this, t = *target, len, promise, src = who.host,
                 remaining = total - one_way - cfg_.pool_access_ns]() mutable {
                  Bytes data(len);
                  Status st = apply_read_into(t, data);
                  if (st && fault::enabled() &&
                      fault::Injector::global().on_dma_read(
                          src, fault_host(src, t), t.kind == Resolved::Kind::bar)) {
                    data.assign(data.size(), std::byte{0});
                  }
                  engine_.after(remaining > 0 ? remaining : 0,
                                [promise, st, d = std::move(data)]() mutable {
                                  if (!st) {
                                    promise.set(st);
                                  } else {
                                    promise.set(std::move(d));
                                  }
                                });
                });
  return future;
}

sim::Future<Result<Bytes>> PoolFabric::read_sg(const Initiator& who,
                                               const std::vector<SgEntry>& sg) {
  sim::Promise<Result<Bytes>> promise(engine_);
  auto future = promise.future();

  std::uint64_t total = 0;
  sim::Duration worst_one_way = 0;
  std::vector<Resolved> targets;
  targets.reserve(sg.size());
  for (const auto& e : sg) {
    auto target = resolve(who.host, e.addr, e.len);
    Status reach = target ? check_reachable(who.host, *target) : target.status();
    if (!target || !reach) {
      if (!target) ++stats_.unsupported_requests;
      engine_.after(2 * cfg_.local_mem_ns,
                    [promise, st = reach]() mutable { promise.set(st); });
      return future;
    }
    worst_one_way =
        std::max(worst_one_way, one_way_ns(who.host, *target, /*is_store=*/false));
    targets.push_back(*target);
    total += e.len;
  }
  ++stats_.reads;
  stats_.bytes_read += total;

  const bool dsa = total >= cfg_.dsa_threshold;
  const sim::Duration gather_ns =
      dsa ? cfg_.dsa_setup_ns +
                static_cast<sim::Duration>(static_cast<double>(total) / cfg_.dsa_bytes_per_ns)
          : 2 * worst_one_way + serialization_ns(total);
  const sim::Duration total_lat = gather_ns + cfg_.pool_access_ns;
  const sim::Duration first_leg = (dsa ? cfg_.dsa_setup_ns : worst_one_way) +
                                  cfg_.pool_access_ns;
  engine_.after(
      first_leg,
      [this, targets = std::move(targets), sg, promise, src = who.host,
       remaining = total_lat - first_leg, total]() mutable {
        Bytes out(total);
        Status failure = Status::ok();
        std::size_t off = 0;
        for (std::size_t i = 0; i < targets.size(); ++i) {
          if (Status st = apply_read_into(targets[i], ByteSpan(out).subspan(off, sg[i].len));
              !st) {
            failure = st;
            break;
          }
          off += sg[i].len;
        }
        if (failure.is_ok() && !targets.empty() && fault::enabled() &&
            fault::Injector::global().on_dma_read(
                src, fault_host(src, targets.front()),
                targets.front().kind == Resolved::Kind::bar)) {
          out.assign(out.size(), std::byte{0});
        }
        engine_.after(remaining > 0 ? remaining : 0,
                      [promise, failure, d = std::move(out)]() mutable {
                        if (!failure) {
                          promise.set(failure);
                        } else {
                          promise.set(std::move(d));
                        }
                      });
      });
  return future;
}

Status PoolFabric::poll_read(HostId viewer, std::uint64_t addr, ByteSpan out) {
  auto target = resolve(viewer, addr, out.size());
  if (!target) return target.status();
  return apply_read_into(*target, out);
}

Status PoolFabric::set_host_link(HostId host, bool up) {
  if (host >= hosts_.size()) return Status(Errc::invalid_argument, "bad host id");
  hosts_[host].port_up = up;
  return Status::ok();
}

sim::Duration PoolFabric::copy_cost_ns(HostId owner, std::uint64_t bytes) const {
  if (owner != pool_space() || bytes == 0) return 0;
  if (bytes >= cfg_.dsa_threshold) {
    return cfg_.dsa_setup_ns +
           static_cast<sim::Duration>(static_cast<double>(bytes) / cfg_.dsa_bytes_per_ns);
  }
  return cfg_.store_port_ns + serialization_ns(bytes);
}

Status PoolFabric::do_poke(HostId host, std::uint64_t addr, ConstByteSpan data) {
  auto target = resolve(host, addr, data.size());
  if (!target) return target.status();
  return apply_write(*target, data);
}

Status PoolFabric::do_peek(HostId host, std::uint64_t addr, ByteSpan out) {
  return poll_read(host, addr, out);
}

bool PoolFabric::backdoor_crosses_host(HostId viewer, std::uint64_t addr,
                                       std::uint64_t len) const {
  // Private DRAM and the shared pool are legitimately loadable; only a
  // peer device's BAR counts as crossing hosts.
  auto target = resolve(viewer, addr, len);
  return target.has_value() && target->kind == Resolved::Kind::bar &&
         target->host != viewer;
}

}  // namespace nvmeshare::cxl
