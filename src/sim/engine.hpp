// Deterministic discrete-event simulation engine.
//
// The whole cluster (hosts, NICs, switch chips, the NVMe controller) runs on
// one Engine. Every state change is an event at a simulated-nanosecond
// timestamp; ties are broken by insertion order, so a given seed always
// produces the same interleaving. Single-threaded by construction — the
// parallelism the paper exploits (multiple hosts driving independent queue
// pairs) is modeled as concurrent *simulated* activities, not OS threads.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace nvmeshare::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now()).
  void at(Time t, Callback fn);

  /// Schedule `fn` after `d` nanoseconds (d >= 0).
  void after(Duration d, Callback fn) { at(now_ + d, std::move(fn)); }

  /// Run until no events remain or stop() is called.
  void run();

  /// Run events with timestamp <= `t`; afterwards now() == t (even if the
  /// queue drained early). Returns number of events processed.
  std::uint64_t run_until(Time t);

  /// Convenience: run_until(now() + d).
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Ask run()/run_until() to return after the current event.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

 private:
  struct Ev {
    Time t;
    std::uint64_t seq;  // FIFO among equal timestamps
    Callback fn;
  };
  struct EvCompare {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, EvCompare> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace nvmeshare::sim
