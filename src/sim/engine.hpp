// Deterministic discrete-event simulation engine.
//
// The whole cluster (hosts, NICs, switch chips, the NVMe controller) runs on
// one Engine. Every state change is an event at a simulated-nanosecond
// timestamp; ties are broken by insertion order, so a given seed always
// produces the same interleaving. Single-threaded by construction — the
// parallelism the paper exploits (multiple hosts driving independent queue
// pairs) is modeled as concurrent *simulated* activities, not OS threads.
//
// The event core is built for wall-clock speed (docs/performance.md):
//
//  - a calendar queue (bucketed timer wheel) instead of a binary heap.
//    Time is divided into 2^kSlotShift-ns buckets; a window of kSlots
//    consecutive buckets is live at once, and anything scheduled past the
//    window waits in an overflow list. Because every event in the window
//    is strictly earlier than every overflow event, the overflow is only
//    consulted when the wheel drains — schedule and dispatch are O(1) on
//    the hot path (a bitmap scan finds the next non-empty bucket).
//  - an intrusive node arena: event nodes come from a chunked free list
//    and callables are constructed into fixed inline storage in the node,
//    so the steady-state schedule/dispatch cycle performs no heap
//    allocation (oversized callables fall back to one heap box).
//
// Determinism invariants, identical to the original heap-based core:
// events fire in ascending (timestamp, insertion-seq) order; per-bucket
// lists are kept (t, seq)-sorted, and the overflow refill re-sorts by
// (t, seq) before reinserting, so FIFO among equal timestamps holds
// everywhere.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace nvmeshare::sim {

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` (any void() callable) at absolute time `t` (>= now()).
  template <typename F>
  void at(Time t, F&& fn) {
    EvNode* node = make_node(t);
    bind_callable(node, std::forward<F>(fn));
    enqueue(node);
  }

  /// Schedule `fn` after `d` nanoseconds (d >= 0).
  template <typename F>
  void after(Duration d, F&& fn) {
    at(now_ + d, std::forward<F>(fn));
  }

  /// Run until no events remain or stop() is called.
  void run();

  /// Run events with timestamp <= `t`; afterwards now() == t (even if the
  /// queue drained early). Returns number of events processed.
  std::uint64_t run_until(Time t);

  /// Convenience: run_until(now() + d).
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Ask run()/run_until() to return after the current event.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_nodes_; }

 private:
  // Wheel geometry: 2048 buckets of 128 ns cover a 262 us window — wide
  // enough that doorbell stores, switch hops, media service, poll
  // intervals, and retry backoffs all land in the wheel; only ms-scale
  // watchdogs visit the overflow list.
  static constexpr unsigned kSlotShift = 7;            ///< 128 ns per bucket
  static constexpr std::size_t kSlots = 2048;          ///< live window, power of two
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr std::size_t kBitmapWords = kSlots / 64;
  /// Inline callable storage. Sized for the largest hot-path captures
  /// (fabric delivery lambdas carrying a small vector plus a resolved
  /// target); anything bigger takes the heap-box fallback.
  static constexpr std::size_t kInlineBytes = 88;
  static constexpr std::size_t kChunkNodes = 256;  ///< arena growth quantum

  /// One scheduled event: intrusive list node + type-erased callable.
  struct EvNode {
    Time t = 0;
    std::uint64_t seq = 0;  ///< FIFO among equal timestamps
    EvNode* next = nullptr;
    void (*run)(EvNode*) = nullptr;   ///< invoke, then destroy the callable
    void (*drop)(EvNode*) = nullptr;  ///< destroy without invoking (teardown)
    alignas(std::max_align_t) std::byte storage[kInlineBytes];
  };
  struct Bucket {
    EvNode* head = nullptr;
    EvNode* tail = nullptr;
  };

  template <typename F>
  static void bind_callable(EvNode* node, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "event callable must be void()");
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(node->storage)) Fn(std::forward<F>(fn));
      node->run = [](EvNode* n) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(n->storage));
        (*f)();
        f->~Fn();
      };
      node->drop = [](EvNode* n) {
        std::launder(reinterpret_cast<Fn*>(n->storage))->~Fn();
      };
    } else {
      ::new (static_cast<void*>(node->storage)) Fn*(new Fn(std::forward<F>(fn)));
      node->run = [](EvNode* n) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(n->storage));
        (*f)();
        delete f;
      };
      node->drop = [](EvNode* n) {
        delete *std::launder(reinterpret_cast<Fn**>(n->storage));
      };
    }
  }

  [[nodiscard]] static std::uint64_t slot_of(Time t) noexcept {
    return static_cast<std::uint64_t>(t) >> kSlotShift;
  }

  [[nodiscard]] EvNode* make_node(Time t);
  void enqueue(EvNode* node);
  void insert_bucket(std::uint64_t abs_slot, EvNode* node);
  /// Unlink and return the earliest event with t <= limit, or nullptr.
  [[nodiscard]] EvNode* pop_next(Time limit);
  /// Jump the window to the earliest overflow event and move everything
  /// that now fits into the wheel (the wheel must be empty).
  void refill(Time min_t);
  [[nodiscard]] std::uint64_t scan_bitmap(std::uint64_t start_phys) const;
  void recycle(EvNode* node) noexcept;
  void drop_all() noexcept;

  // --- calendar wheel -------------------------------------------------------
  std::unique_ptr<Bucket[]> buckets_;        ///< kSlots, indexed abs_slot & kSlotMask
  std::uint64_t bitmap_[kBitmapWords] = {};  ///< non-empty buckets (physical index)
  std::vector<EvNode*> overflow_;            ///< events past the window, unordered
  std::vector<EvNode*> refill_scratch_;
  std::uint64_t window_slot_ = 0;  ///< abs slot of the window base
  std::uint64_t cursor_slot_ = 0;  ///< abs slot the dispatch cursor reached
  std::size_t wheel_count_ = 0;    ///< events currently in buckets

  // --- node arena -----------------------------------------------------------
  std::vector<std::unique_ptr<EvNode[]>> chunks_;
  std::size_t chunk_used_ = kChunkNodes;  ///< forces the first chunk allocation
  EvNode* free_list_ = nullptr;
  std::size_t live_nodes_ = 0;  ///< scheduled and not yet fired

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace nvmeshare::sim
