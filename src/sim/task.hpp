// C++20 coroutine primitives on top of the discrete-event Engine.
//
// Conventions:
//  * Task is an eager, detached coroutine: it runs to its first suspension
//    point when called and owns its own frame (destroyed at completion).
//    Long-lived pollers must observe a stop flag / event so the frame is
//    released before the simulation ends.
//  * All wake-ups are funneled through the Engine queue (never resumed
//    inline), which keeps interleavings deterministic and prevents
//    unbounded recursion in completion chains.
//  * Single-threaded: none of these types are thread-safe; they don't need
//    to be.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace nvmeshare::sim {

// --- Task --------------------------------------------------------------------

/// Fire-and-forget coroutine. `Task f() { co_await ...; }` starts executing
/// immediately when called.
struct Task {
  struct promise_type {
    Task get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };
};

// --- delay -------------------------------------------------------------------

/// `co_await delay(engine, 100_ns)` suspends the current task for `d`
/// simulated nanoseconds.
struct DelayAwaiter {
  Engine& engine;
  Duration d;

  bool await_ready() const noexcept { return d <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.after(d, [h]() { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& engine, Duration d) { return {engine, d}; }

// --- yield -------------------------------------------------------------------

/// Re-queue the current task at the current timestamp (lets other pending
/// events at `now` run first).
inline DelayAwaiter yield_now(Engine& engine) { return {engine, 0}; }

namespace detail {
/// A single suspended waiter, shared between the wake-up path and an
/// optional timeout path so exactly one of them resumes the coroutine.
struct WaitNode {
  std::coroutine_handle<> h;
  bool resumed = false;
  bool timed_out = false;
};
using WaitNodePtr = std::shared_ptr<WaitNode>;

inline void resume_node(Engine& engine, const WaitNodePtr& node, bool timed_out) {
  if (node->resumed) return;
  node->resumed = true;
  node->timed_out = timed_out;
  engine.at(engine.now(), [node]() { node->h.resume(); });
}
}  // namespace detail

// --- Future / Promise ----------------------------------------------------------

/// One-shot value channel: a producer sets the value once; a single consumer
/// `co_await`s it. Copyable handles share state.
template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  explicit Promise(Engine& engine) : state_(std::make_shared<State>(State{&engine, {}, {}})) {}

  /// Fulfill the future. Must be called exactly once.
  void set(T value) {
    assert(!state_->value.has_value() && "promise set twice");
    state_->value.emplace(std::move(value));
    if (state_->waiter) detail::resume_node(*state_->engine, state_->waiter, /*timed_out=*/false);
  }

  [[nodiscard]] bool is_set() const noexcept { return state_->value.has_value(); }

  [[nodiscard]] Future<T> future() const { return Future<T>(state_); }

 private:
  friend class Future<T>;
  struct State {
    Engine* engine;
    std::optional<T> value;
    detail::WaitNodePtr waiter;
  };
  std::shared_ptr<State> state_;
};

template <typename T>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const noexcept { return state_ && state_->value.has_value(); }

  /// Non-blocking: take the value if ready.
  [[nodiscard]] std::optional<T> try_take() {
    if (!ready()) return std::nullopt;
    std::optional<T> out = std::move(state_->value);
    return out;
  }

  // Awaitable interface: `T result = co_await future;`
  bool await_ready() const noexcept { return ready(); }
  void await_suspend(std::coroutine_handle<> h) {
    assert(state_ && !state_->waiter && "future supports a single waiter");
    state_->waiter = std::make_shared<detail::WaitNode>(detail::WaitNode{h, false, false});
  }
  T await_resume() {
    assert(ready());
    T out = std::move(*state_->value);
    return out;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<typename Promise<T>::State> state) : state_(std::move(state)) {}
  std::shared_ptr<typename Promise<T>::State> state_;
};

// --- Event -------------------------------------------------------------------

/// Manual-reset event with any number of waiters and optional timeout.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}

  void set() {
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& node : waiters) detail::resume_node(engine_, node, /*timed_out=*/false);
  }

  void reset() noexcept { set_ = false; }
  [[nodiscard]] bool is_set() const noexcept { return set_; }

  /// Awaitable that completes when the event is set. Result: true if the
  /// event fired, false on timeout (timeout < 0 means wait forever).
  struct WaitAwaiter {
    Event& event;
    Duration timeout;
    detail::WaitNodePtr node;

    bool await_ready() const noexcept { return event.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      node = std::make_shared<detail::WaitNode>(detail::WaitNode{h, false, false});
      event.waiters_.push_back(node);
      if (timeout >= 0) {
        auto n = node;
        Engine& eng = event.engine_;
        eng.after(timeout, [&eng, n]() { detail::resume_node(eng, n, /*timed_out=*/true); });
      }
    }
    bool await_resume() const noexcept { return node == nullptr || !node->timed_out; }
  };

  [[nodiscard]] WaitAwaiter wait() { return WaitAwaiter{*this, -1, {}}; }
  [[nodiscard]] WaitAwaiter wait_for(Duration timeout) { return WaitAwaiter{*this, timeout, {}}; }

 private:
  Engine& engine_;
  bool set_ = false;
  std::vector<detail::WaitNodePtr> waiters_;
};

// --- Mailbox -----------------------------------------------------------------

/// Unbounded FIFO channel with awaitable pop; the shared-memory mailbox RPC
/// between driver manager and clients, and block-layer dispatch, sit on it.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(engine) {}

  void push(T item) {
    items_.push_back(std::move(item));
    wake_one();
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  [[nodiscard]] std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Awaitable pop with optional timeout; resolves to nullopt on timeout.
  struct PopAwaiter {
    Mailbox& box;
    Duration timeout;
    detail::WaitNodePtr node;

    bool await_ready() const noexcept { return !box.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      node = std::make_shared<detail::WaitNode>(detail::WaitNode{h, false, false});
      box.waiters_.push_back(node);
      if (timeout >= 0) {
        auto n = node;
        Engine& eng = box.engine_;
        eng.after(timeout, [&eng, n]() { detail::resume_node(eng, n, /*timed_out=*/true); });
      }
    }
    std::optional<T> await_resume() {
      if (node && node->timed_out) return std::nullopt;
      // A racing consumer may have drained the queue between wake-up
      // scheduling and resumption; retry contract: nullopt.
      return box.try_pop();
    }
  };

  [[nodiscard]] PopAwaiter pop() { return PopAwaiter{*this, -1, {}}; }
  [[nodiscard]] PopAwaiter pop_for(Duration timeout) { return PopAwaiter{*this, timeout, {}}; }

 private:
  void wake_one() {
    while (!waiters_.empty()) {
      auto node = std::move(waiters_.front());
      waiters_.erase(waiters_.begin());
      if (!node->resumed) {
        detail::resume_node(engine_, node, /*timed_out=*/false);
        return;
      }
    }
  }

  Engine& engine_;
  std::deque<T> items_;
  std::vector<detail::WaitNodePtr> waiters_;
};

// --- Semaphore ----------------------------------------------------------------

/// Counting semaphore; models bounded resources such as in-flight request
/// slots (queue depth) and NVMe media channel parallelism.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial) : engine_(engine), count_(initial) {}

  [[nodiscard]] std::int64_t available() const noexcept { return count_; }

  void release(std::int64_t n = 1) {
    count_ += n;
    while (count_ > 0 && !waiters_.empty()) {
      auto node = std::move(waiters_.front());
      waiters_.erase(waiters_.begin());
      if (node->resumed) continue;
      --count_;
      detail::resume_node(engine_, node, /*timed_out=*/false);
    }
  }

  struct AcquireAwaiter {
    Semaphore& sem;

    bool await_ready() const noexcept {
      if (sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem.waiters_.push_back(
          std::make_shared<detail::WaitNode>(detail::WaitNode{h, false, false}));
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] AcquireAwaiter acquire() { return AcquireAwaiter{*this}; }

  [[nodiscard]] bool try_acquire() noexcept {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

 private:
  Engine& engine_;
  std::int64_t count_;
  std::vector<detail::WaitNodePtr> waiters_;
};

}  // namespace nvmeshare::sim
