#include "sim/engine.hpp"

#include <cassert>

#include "common/log.hpp"

namespace nvmeshare::sim {

namespace {
// The logger stamps messages with the most recently constructed engine's
// clock; simulations use one engine at a time.
Engine* g_logging_engine = nullptr;

long long log_time_provider() {
  return g_logging_engine ? static_cast<long long>(g_logging_engine->now()) : -1;
}
}  // namespace

Engine::Engine() {
  g_logging_engine = this;
  log::set_time_provider(&log_time_provider);
}

Engine::~Engine() {
  if (g_logging_engine == this) {
    g_logging_engine = nullptr;
    log::set_time_provider(nullptr);
  }
}

void Engine::at(Time t, Callback fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Ev{t < now_ ? now_ : t, seq_++, std::move(fn)});
}

void Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top() is const; move out via const_cast, which is safe
    // because we pop immediately and never touch the moved-from element.
    Ev ev = std::move(const_cast<Ev&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.fn();
  }
}

std::uint64_t Engine::run_until(Time t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().t <= t) {
    Ev ev = std::move(const_cast<Ev&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ++n;
    ev.fn();
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace nvmeshare::sim
