#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/log.hpp"

namespace nvmeshare::sim {

namespace {
// The logger stamps messages with the most recently constructed engine's
// clock; simulations use one engine at a time.
Engine* g_logging_engine = nullptr;

long long log_time_provider() {
  return g_logging_engine ? static_cast<long long>(g_logging_engine->now()) : -1;
}
}  // namespace

Engine::Engine() : buckets_(std::make_unique<Bucket[]>(kSlots)) {
  g_logging_engine = this;
  log::set_time_provider(&log_time_provider);
}

Engine::~Engine() {
  drop_all();
  if (g_logging_engine == this) {
    g_logging_engine = nullptr;
    log::set_time_provider(nullptr);
  }
}

Engine::EvNode* Engine::make_node(Time t) {
  assert(t >= now_ && "cannot schedule into the past");
  EvNode* node;
  if (free_list_ != nullptr) {
    node = free_list_;
    free_list_ = node->next;
  } else {
    if (chunk_used_ == kChunkNodes) {
      chunks_.push_back(std::make_unique<EvNode[]>(kChunkNodes));
      chunk_used_ = 0;
    }
    node = &chunks_.back()[chunk_used_++];
  }
  node->t = t < now_ ? now_ : t;
  node->seq = seq_++;
  node->next = nullptr;
  return node;
}

void Engine::recycle(EvNode* node) noexcept {
  node->next = free_list_;
  free_list_ = node;
}

void Engine::enqueue(EvNode* node) {
  ++live_nodes_;
  const std::uint64_t slot = slot_of(node->t);
  if (slot >= window_slot_ + kSlots) {
    overflow_.push_back(node);
    return;
  }
  // t >= now_ guarantees slot >= cursor_slot_, so the event is never
  // inserted behind the dispatch cursor.
  insert_bucket(slot, node);
}

void Engine::insert_bucket(std::uint64_t abs_slot, EvNode* node) {
  const std::uint64_t phys = abs_slot & kSlotMask;
  Bucket& b = buckets_[phys];
  node->next = nullptr;
  if (b.head == nullptr) {
    b.head = b.tail = node;
    bitmap_[phys >> 6] |= 1ull << (phys & 63);
  } else if (b.tail->t <= node->t) {
    // Common case: appended events carry the latest (t, seq), so FIFO
    // order among equal timestamps is the tail position.
    b.tail->next = node;
    b.tail = node;
  } else {
    // Rare: an earlier timestamp landed behind a later one in the same
    // 128 ns bucket — walk to the position after everything <= t.
    EvNode** link = &b.head;
    while (*link != nullptr && (*link)->t <= node->t) link = &(*link)->next;
    node->next = *link;
    *link = node;
  }
  ++wheel_count_;
}

std::uint64_t Engine::scan_bitmap(std::uint64_t start_phys) const {
  // Wrapped scan from the cursor. Physical slots "behind" the cursor are
  // guaranteed empty (the cursor passed them and inserts clamp to
  // t >= now), so the first set bit in wrap order is the earliest bucket.
  std::uint64_t w = start_phys >> 6;
  std::uint64_t word = bitmap_[w] & (~0ull << (start_phys & 63));
  for (std::size_t i = 0; i <= kBitmapWords; ++i) {
    if (word != 0) {
      return (w << 6) + static_cast<std::uint64_t>(std::countr_zero(word));
    }
    w = (w + 1) & (kBitmapWords - 1);
    word = bitmap_[w];
  }
  assert(false && "scan_bitmap on an empty wheel");
  return 0;
}

void Engine::refill(Time min_t) {
  // The wheel is empty, so every physical bucket is free and the window
  // can be rebased with no rotation bookkeeping.
  window_slot_ = slot_of(min_t);
  cursor_slot_ = window_slot_;
  refill_scratch_.clear();
  std::size_t kept = 0;
  for (EvNode* node : overflow_) {
    if (slot_of(node->t) < window_slot_ + kSlots) {
      refill_scratch_.push_back(node);
    } else {
      overflow_[kept++] = node;
    }
  }
  overflow_.resize(kept);
  // Reinsert in (t, seq) order so every bucket append hits the O(1) tail
  // path and FIFO among equal timestamps survives the detour.
  std::sort(refill_scratch_.begin(), refill_scratch_.end(),
            [](const EvNode* a, const EvNode* b) {
              if (a->t != b->t) return a->t < b->t;
              return a->seq < b->seq;
            });
  for (EvNode* node : refill_scratch_) insert_bucket(slot_of(node->t), node);
  refill_scratch_.clear();
}

Engine::EvNode* Engine::pop_next(Time limit) {
  for (;;) {
    if (wheel_count_ == 0) {
      if (overflow_.empty()) return nullptr;
      Time min_t = overflow_.front()->t;
      for (const EvNode* node : overflow_) min_t = std::min(min_t, node->t);
      // Every wheel event precedes every overflow event, so the overflow
      // only matters once the wheel drained — and only if it is due.
      if (min_t > limit) return nullptr;
      refill(min_t);
      continue;
    }
    const std::uint64_t start = cursor_slot_ & kSlotMask;
    const std::uint64_t phys = scan_bitmap(start);
    Bucket& b = buckets_[phys];
    EvNode* head = b.head;
    // Peek before committing the cursor: if the earliest event is past the
    // limit, the cursor must stay at the last *popped* slot. Parking it on
    // this future bucket would let later inserts (at t >= now but before
    // this bucket) land behind the cursor, where the wrapped bitmap scan
    // would misorder them.
    if (head->t > limit) return nullptr;
    cursor_slot_ += (phys - start) & kSlotMask;
    b.head = head->next;
    if (b.head == nullptr) {
      b.tail = nullptr;
      bitmap_[phys >> 6] &= ~(1ull << (phys & 63));
    }
    --wheel_count_;
    --live_nodes_;
    return head;
  }
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_) {
    EvNode* node = pop_next(std::numeric_limits<Time>::max());
    if (node == nullptr) break;
    now_ = node->t;
    ++processed_;
    node->run(node);
    recycle(node);
  }
}

std::uint64_t Engine::run_until(Time t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    EvNode* node = pop_next(t);
    if (node == nullptr) break;
    now_ = node->t;
    ++processed_;
    ++n;
    node->run(node);
    recycle(node);
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

void Engine::drop_all() noexcept {
  for (std::size_t phys = 0; phys < kSlots; ++phys) {
    for (EvNode* node = buckets_[phys].head; node != nullptr; node = node->next) {
      node->drop(node);
    }
    buckets_[phys].head = buckets_[phys].tail = nullptr;
  }
  for (EvNode* node : overflow_) node->drop(node);
  overflow_.clear();
  wheel_count_ = 0;
  live_nodes_ = 0;
}

}  // namespace nvmeshare::sim
