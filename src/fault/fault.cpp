#include "fault/fault.hpp"

#include <charconv>
#include <cstdlib>

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace nvmeshare::fault {

namespace detail {
bool g_enabled = false;
}  // namespace detail

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
#define NVS_FAULT_NAME(name) \
  case FaultKind::name: return #name;
    NVS_FAULT_KINDS(NVS_FAULT_NAME)
#undef NVS_FAULT_NAME
  }
  return "?";
}

Injector::Stats::Stats()
    : posted_drops("nvmeshare.fault.posted_drops"),
      posted_delays("nvmeshare.fault.posted_delays"),
      link_downs("nvmeshare.fault.link_downs"),
      link_ups("nvmeshare.fault.link_ups"),
      host_crashes("nvmeshare.fault.host_crashes"),
      ctrl_errors("nvmeshare.fault.ctrl_errors"),
      capsule_drops("nvmeshare.fault.capsule_drops"),
      bit_flips("nvmeshare.fault.bit_flips"),
      torn_writes("nvmeshare.fault.torn_writes"),
      stale_reads("nvmeshare.fault.stale_reads") {}

Injector& Injector::global() {
  static Injector instance;
  return instance;
}

void Injector::configure(FaultPlan plan) {
  plan_ = std::move(plan);
  rng_ = Rng(plan_.seed);
  trigger_.assign(plan_.faults.size(), TriggerState{});
  engine_ = nullptr;
  arm_time_ = 0;
  detail::g_enabled = true;
}

void Injector::disarm() {
  plan_ = {};
  trigger_.clear();
  crash_handlers_.clear();
  engine_ = nullptr;
  arm_time_ = 0;
  detail::g_enabled = false;
}

void Injector::arm(sim::Engine& engine, ArmHooks hooks) {
  engine_ = &engine;
  arm_time_ = engine.now();
  for (const FaultSpec& spec : plan_.faults) {
    switch (spec.kind) {
      case FaultKind::ntb_link_down: {
        if (!hooks.set_ntb_link) break;
        const std::uint32_t host = spec.src_host;
        engine.after(spec.at, [this, hooks, host] {
          NVS_LOG(warn, "fault") << "NTB link down (host " << host << ")";
          hooks.set_ntb_link(host, false);
          ++stats_.link_downs;
        });
        if (spec.duration > 0) {
          engine.after(spec.at + spec.duration, [this, hooks, host] {
            NVS_LOG(info, "fault") << "NTB link restored (host " << host << ")";
            hooks.set_ntb_link(host, true);
            ++stats_.link_ups;
          });
        }
        break;
      }
      case FaultKind::host_crash: {
        const std::uint32_t host = spec.src_host;
        engine.after(spec.at, [this, host] {
          NVS_LOG(warn, "fault") << "crashing host " << host;
          // Handlers may deregister (or register) while firing; snapshot.
          std::vector<std::function<void()>> victims;
          for (const auto& [token, handler] : crash_handlers_) {
            if (handler.host == host) victims.push_back(handler.fn);
          }
          for (const auto& fn : victims) fn();
          ++stats_.host_crashes;
        });
        break;
      }
      default:
        break;  // operation-count faults fire from their hooks
    }
  }
}

std::uint64_t Injector::register_crash_handler(std::uint32_t host, std::function<void()> fn) {
  const std::uint64_t token = next_token_++;
  crash_handlers_[token] = CrashHandler{host, std::move(fn)};
  return token;
}

void Injector::unregister_crash_handler(std::uint64_t token) { crash_handlers_.erase(token); }

bool Injector::should_fire(std::size_t spec_index) {
  const FaultSpec& spec = plan_.faults[spec_index];
  TriggerState& state = trigger_[spec_index];
  if (spec.window_end > 0) {
    // Windowed spec: ops outside the window neither count nor fire, so
    // `nth` is the nth *in-window* op. The window shares timed faults'
    // origin (arm time); before arm() nothing is in any window.
    if (engine_ == nullptr) return false;
    const sim::Time now = engine_->now();
    const sim::Duration rel = now >= arm_time_ ? now - arm_time_ : 0;
    if (rel < spec.window_start || rel >= spec.window_end) return false;
  }
  ++state.seen;
  if (spec.count != 0 && state.fired >= spec.count) return false;
  bool hit = false;
  if (spec.nth != 0) {
    // Fires on the nth matching op and (budget permitting) every one after,
    // giving contiguous loss windows with count > 1.
    hit = state.seen >= spec.nth;
  } else if (spec.probability > 0) {
    hit = rng_.chance(spec.probability);
  } else if (spec.window_end > 0) {
    // Window-only spec: every in-window matching op is hit (a storm).
    hit = true;
  }
  if (hit) ++state.fired;
  return hit;
}

Injector::PostedWriteDecision Injector::on_posted_write(std::uint32_t src_host,
                                                        std::uint32_t dst_host, bool to_bar,
                                                        std::uint64_t len) {
  PostedWriteDecision decision;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind != FaultKind::drop_posted_write &&
        spec.kind != FaultKind::delay_posted_write &&
        spec.kind != FaultKind::flip_dma_bits && spec.kind != FaultKind::torn_dma_write) {
      continue;
    }
    if (spec.src_host != kAnyHost && spec.src_host != src_host) continue;
    if (spec.dst_host != kAnyHost && spec.dst_host != dst_host) continue;
    if (spec.write_class == WriteClass::bar && !to_bar) continue;
    if (spec.write_class == WriteClass::dram && to_bar) continue;
    if ((spec.kind == FaultKind::flip_dma_bits || spec.kind == FaultKind::torn_dma_write) &&
        len == 0) {
      continue;  // nothing to corrupt
    }
    if (!should_fire(i)) continue;
    switch (spec.kind) {
      case FaultKind::drop_posted_write:
        decision.drop = true;
        ++stats_.posted_drops;
        break;
      case FaultKind::delay_posted_write:
        decision.extra_ns += spec.extra_ns;
        ++stats_.posted_delays;
        break;
      case FaultKind::flip_dma_bits:
        decision.flip = true;
        decision.flip_bit = rng_.uniform(len * 8);
        ++stats_.bit_flips;
        break;
      case FaultKind::torn_dma_write:
        decision.torn = true;
        decision.torn_bytes = rng_.uniform(len);  // strict prefix: [0, len)
        ++stats_.torn_writes;
        break;
      default:
        break;
    }
  }
  return decision;
}

bool Injector::on_dma_read(std::uint32_t src_host, std::uint32_t dst_host, bool from_bar) {
  bool stale = false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind != FaultKind::stale_read) continue;
    if (spec.src_host != kAnyHost && spec.src_host != src_host) continue;
    if (spec.dst_host != kAnyHost && spec.dst_host != dst_host) continue;
    if (spec.write_class == WriteClass::bar && !from_bar) continue;
    if (spec.write_class == WriteClass::dram && from_bar) continue;
    if (!should_fire(i)) continue;
    stale = true;
    ++stats_.stale_reads;
  }
  return stale;
}

Injector::CtrlDecision Injector::on_ctrl_command(std::uint16_t qid, std::uint16_t cid) {
  CtrlDecision decision;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind != FaultKind::ctrl_error) continue;
    if (spec.qid != kAnyQid && spec.qid != qid) continue;
    if (spec.cid != kAnyCid && spec.cid != cid) continue;
    if (!should_fire(i)) continue;
    decision.inject = true;
    decision.fatal = decision.fatal || spec.fatal;
    ++stats_.ctrl_errors;
  }
  return decision;
}

bool Injector::on_capsule_send() {
  bool drop = false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    if (plan_.faults[i].kind != FaultKind::drop_capsule) continue;
    if (!should_fire(i)) continue;
    drop = true;
    ++stats_.capsule_drops;
  }
  return drop;
}

// --- plan DSL -----------------------------------------------------------------

namespace {

Result<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Status(Errc::invalid_argument, "bad number '" + std::string(text) + "'");
  }
  return value;
}

/// "500", "500ns", "3us", "2ms", "1s" -> nanoseconds.
Result<sim::Duration> parse_duration(std::string_view text) {
  std::uint64_t scale = 1;
  if (text.ends_with("ns")) {
    text.remove_suffix(2);
  } else if (text.ends_with("us")) {
    text.remove_suffix(2);
    scale = 1000;
  } else if (text.ends_with("ms")) {
    text.remove_suffix(2);
    scale = 1000 * 1000;
  } else if (text.ends_with("s")) {
    text.remove_suffix(1);
    scale = 1000ull * 1000 * 1000;
  }
  auto value = parse_u64(text);
  if (!value) return value.status();
  return static_cast<sim::Duration>(*value * scale);
}

Result<FaultKind> parse_kind(std::string_view text) {
#define NVS_FAULT_PARSE(name) \
  if (text == #name) return FaultKind::name;
  NVS_FAULT_KINDS(NVS_FAULT_PARSE)
#undef NVS_FAULT_PARSE
  return Status(Errc::invalid_argument, "unknown fault kind '" + std::string(text) + "'");
}

Status apply_key(FaultSpec& spec, std::string_view key, std::string_view value,
                 bool& count_seen) {
  auto number = [&]() { return parse_u64(value); };
  auto duration = [&]() { return parse_duration(value); };
  if (key == "from") {
    auto v = duration();
    if (!v) return v.status();
    spec.window_start = *v;
  } else if (key == "until") {
    auto v = duration();
    if (!v) return v.status();
    spec.window_end = *v;
  } else if (key == "at") {
    auto v = duration();
    if (!v) return v.status();
    spec.at = *v;
  } else if (key == "for") {
    auto v = duration();
    if (!v) return v.status();
    spec.duration = *v;
  } else if (key == "extra") {
    auto v = duration();
    if (!v) return v.status();
    spec.extra_ns = *v;
  } else if (key == "nth") {
    auto v = number();
    if (!v) return v.status();
    spec.nth = *v;
  } else if (key == "count") {
    auto v = number();
    if (!v) return v.status();
    spec.count = *v;
    count_seen = true;
  } else if (key == "prob") {
    spec.probability = std::strtod(std::string(value).c_str(), nullptr);
    if (spec.probability < 0 || spec.probability > 1) {
      return Status(Errc::invalid_argument, "prob must be in [0,1]");
    }
  } else if (key == "src" || key == "host") {
    auto v = number();
    if (!v) return v.status();
    spec.src_host = static_cast<std::uint32_t>(*v);
  } else if (key == "dst") {
    auto v = number();
    if (!v) return v.status();
    spec.dst_host = static_cast<std::uint32_t>(*v);
  } else if (key == "qid") {
    auto v = number();
    if (!v) return v.status();
    spec.qid = static_cast<std::uint16_t>(*v);
  } else if (key == "cid") {
    auto v = number();
    if (!v) return v.status();
    spec.cid = static_cast<std::uint16_t>(*v);
  } else if (key == "class") {
    if (value == "bar") {
      spec.write_class = WriteClass::bar;
    } else if (value == "dram") {
      spec.write_class = WriteClass::dram;
    } else if (value == "any") {
      spec.write_class = WriteClass::any;
    } else {
      return Status(Errc::invalid_argument, "class must be bar|dram|any");
    }
  } else if (key == "fatal") {
    spec.fatal = value == "1" || value == "true";
  } else {
    return Status(Errc::invalid_argument, "unknown fault key '" + std::string(key) + "'");
  }
  return Status::ok();
}

}  // namespace

Result<FaultPlan> parse_plan(std::string_view text) {
  FaultPlan plan;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    std::string_view item = text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{} : text.substr(semi + 1);
    if (item.empty()) continue;

    if (item.starts_with("seed=")) {
      auto seed = parse_u64(item.substr(5));
      if (!seed) return seed.status();
      plan.seed = *seed;
      continue;
    }

    const std::size_t colon = item.find(':');
    auto kind = parse_kind(item.substr(0, colon));
    if (!kind) return kind.status();
    FaultSpec spec;
    spec.kind = *kind;
    std::string_view kvs = colon == std::string_view::npos ? std::string_view{}
                                                           : item.substr(colon + 1);
    bool count_seen = false;
    while (!kvs.empty()) {
      const std::size_t comma = kvs.find(',');
      std::string_view kv = kvs.substr(0, comma);
      kvs = comma == std::string_view::npos ? std::string_view{} : kvs.substr(comma + 1);
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        return Status(Errc::invalid_argument, "expected key=value, got '" + std::string(kv) + "'");
      }
      if (auto st = apply_key(spec, kv.substr(0, eq), kv.substr(eq + 1), count_seen); !st) {
        return st;
      }
    }
    if (spec.window_end > 0 && spec.window_end <= spec.window_start) {
      return Status(Errc::invalid_argument, "fault window is empty (until <= from)");
    }
    // A window-only trigger (no nth, no prob) is a storm: unless the plan
    // capped it explicitly, it hits every in-window op, not just the first.
    if (spec.window_end > 0 && spec.nth == 0 && spec.probability == 0 && !count_seen) {
      spec.count = 0;
    }
    plan.faults.push_back(spec);
  }
  if (plan.faults.empty()) {
    return Status(Errc::invalid_argument, "fault plan contains no faults");
  }
  return plan;
}

}  // namespace nvmeshare::fault
