// Deterministic fault injection.
//
// A FaultPlan is a seed plus a list of fault specs; the process-global
// Injector turns it into a reproducible schedule of failures hooked into
// the fabric (posted-write loss/delay, NTB link down), the NVMe controller
// (internal errors), the RDMA network (capsule loss), and the drivers
// (host crash). Every probabilistic decision draws from one seeded
// xoshiro256++ stream and every timed fault is an ordinary engine event,
// so two runs with the same plan and workload seed are byte-identical —
// including the `nvmeshare.fault.*` metrics this module emits.
//
// The injector is inert by default: hot paths guard every hook behind the
// single-bool `fault::enabled()` check, so runs without a plan execute
// exactly the instruction stream they did before this module existed.
//
// Lifecycle: configure(plan) BEFORE building the scenario (components read
// `enabled()` at construction to register crash handlers), arm(engine,...)
// AFTER (schedules the timed faults), disarm() when done. configure() fully
// resets trigger state and the RNG, which is what makes in-process
// double-runs (the determinism check in the chaos stress test) possible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace nvmeshare::sim {
class Engine;
}

namespace nvmeshare::fault {

namespace detail {
extern bool g_enabled;
}  // namespace detail

/// True when a plan is configured. One bool load; hot paths check this
/// before touching the Injector singleton so fault-free runs never even
/// construct it (keeping their metrics snapshots unchanged).
[[nodiscard]] inline bool enabled() noexcept { return detail::g_enabled; }

/// The fault vocabulary as a single X-macro: the enum, the name table, and
/// the plan-DSL parser all expand from this list, so adding a kind in one
/// place keeps all three in sync (fault_test pins the exhaustiveness).
#define NVS_FAULT_KINDS(X)                                                                 \
  X(drop_posted_write)  /* lose a posted write in flight (doorbell, CQE, ...) */           \
  X(delay_posted_write) /* posted write arrives extra_ns late */                           \
  X(ntb_link_down)      /* cable pull on a host's NTB links (timed, optional restore) */   \
  X(host_crash)         /* silently kill a driver instance (manager or client) */          \
  X(ctrl_error)         /* controller completes a command with Internal Error */           \
  X(drop_capsule)       /* lose an RDMA SEND (NVMe-oF command/response capsule) */         \
  X(flip_dma_bits)      /* flip one bit of a DMA payload at delivery */                    \
  X(torn_dma_write)     /* deliver only a prefix of a DMA write payload */                 \
  X(stale_read)         /* DMA read completes with stale (zero-filled) data */

enum class FaultKind : std::uint8_t {
#define NVS_FAULT_ENUM(name) name,
  NVS_FAULT_KINDS(NVS_FAULT_ENUM)
#undef NVS_FAULT_ENUM
};

/// Number of FaultKind values (X-macro expansion count).
inline constexpr std::size_t kFaultKindCount = [] {
  std::size_t n = 0;
#define NVS_FAULT_COUNT(name) ++n;
  NVS_FAULT_KINDS(NVS_FAULT_COUNT)
#undef NVS_FAULT_COUNT
  return n;
}();

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// Which resolved destination a posted-write fault applies to: BAR writes
/// are doorbells/registers, DRAM writes are CQEs and DMA data.
enum class WriteClass : std::uint8_t { any, bar, dram };

inline constexpr std::uint32_t kAnyHost = 0xffffffffu;
inline constexpr std::uint16_t kAnyQid = 0xffffu;
inline constexpr std::uint16_t kAnyCid = 0xffffu;

/// One injectable fault. Which fields matter depends on `kind`; unset
/// filters match everything.
struct FaultSpec {
  FaultKind kind = FaultKind::drop_posted_write;

  // -- timed faults (ntb_link_down, host_crash), relative to arm() time --
  sim::Time at = 0;
  sim::Duration duration = 0;  ///< link_down only: restore after this (0 = stays down)

  // -- operation-count faults (drops, delays, ctrl_error) --
  std::uint64_t nth = 0;    ///< 1-based ordinal of first matching op to hit (0 = off)
  double probability = 0;   ///< independent per-op chance (used when nth == 0)
  std::uint64_t count = 1;  ///< number of times to fire (0 = unlimited)
  /// Time window, relative to arm() time, that gates operation-count faults:
  /// ops outside [window_start, window_end) neither count nor fire. With
  /// window_end == 0 the window is open (every op is eligible, the seed
  /// behavior). A windowed spec with neither nth nor prob fires on EVERY
  /// in-window matching op — the "storm" trigger (docs/faults.md).
  sim::Duration window_start = 0;
  sim::Duration window_end = 0;

  // -- filters --
  std::uint32_t src_host = kAnyHost;  ///< initiating host / crash victim / link host
  std::uint32_t dst_host = kAnyHost;  ///< posted writes: host the write lands in
  WriteClass write_class = WriteClass::any;
  std::uint16_t qid = kAnyQid;  ///< ctrl_error: submission queue filter
  std::uint16_t cid = kAnyCid;  ///< ctrl_error: command id filter

  sim::Duration extra_ns = 0;  ///< delay_posted_write: added latency
  bool fatal = false;          ///< ctrl_error: raise CSTS.CFS instead of a status code
};

/// A complete, reproducible chaos schedule.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;
};

/// Parse the `--faults` plan DSL (see docs/faults.md):
///   plan  := item (';' item)*
///   item  := 'seed=N' | kind[':' key=value (',' key=value)*]
///   keys  := at for from until nth prob count src dst host class qid cid extra fatal
/// Durations accept ns/us/ms/s suffixes (bare numbers are nanoseconds).
/// Example: "seed=7;drop_posted_write:src=1,class=bar,nth=3;ntb_link_down:host=1,at=2ms,for=500us"
Result<FaultPlan> parse_plan(std::string_view text);

class Injector {
 public:
  /// The process-global injector every hook consults.
  static Injector& global();

  /// Install a plan and reset all trigger state + the RNG. Call before the
  /// scenario is built. Sets fault::enabled().
  void configure(FaultPlan plan);

  /// Return to the inert state (hooks become no-ops, handlers cleared).
  void disarm();

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Hooks the injector needs into the running cluster. Timed faults are
  /// scheduled onto `engine` relative to its current time.
  struct ArmHooks {
    /// Toggle every fabric link incident to `host`'s NTB adapter
    /// (pcie::Fabric::set_ntb_link, type-erased to keep this module a leaf).
    std::function<void(std::uint32_t host, bool up)> set_ntb_link;
  };
  void arm(sim::Engine& engine, ArmHooks hooks);

  // --- crash registry --------------------------------------------------------
  // Drivers register a "power off this instance" callback at construction
  // (only when enabled()); host_crash faults fire every handler registered
  // for the victim host. Tokens allow deregistration from destructors.
  std::uint64_t register_crash_handler(std::uint32_t host, std::function<void()> fn);
  void unregister_crash_handler(std::uint64_t token);

  // --- hot-path hooks (callers must check fault::enabled() first) -----------

  struct PostedWriteDecision {
    bool drop = false;
    sim::Duration extra_ns = 0;
    // Corruption at delivery (flip_dma_bits / torn_dma_write). Offsets are
    // drawn from the injector's seeded RNG, so they are reproducible.
    bool flip = false;
    std::uint64_t flip_bit = 0;    ///< bit offset within the payload
    bool torn = false;
    std::uint64_t torn_bytes = 0;  ///< strict prefix length delivered
  };
  /// Consulted by Fabric::post_write/write_sg once the destination resolved.
  /// `len` is the payload byte count (used to place corruption).
  PostedWriteDecision on_posted_write(std::uint32_t src_host, std::uint32_t dst_host,
                                      bool to_bar, std::uint64_t len);

  /// Consulted by Fabric::read/read_sg at completer-access time. True =
  /// the read completes with stale (zero-filled) data instead of memory
  /// contents (stale_read).
  [[nodiscard]] bool on_dma_read(std::uint32_t src_host, std::uint32_t dst_host,
                                 bool from_bar);

  struct CtrlDecision {
    bool inject = false;
    bool fatal = false;
  };
  /// Consulted by the controller as it starts executing an I/O command.
  CtrlDecision on_ctrl_command(std::uint16_t qid, std::uint16_t cid);

  /// Consulted by rdma::QueuePair::post_send. True = lose the capsule.
  [[nodiscard]] bool on_capsule_send();

  /// Injection counters, registered as `nvmeshare.fault.*`.
  struct Stats {
    Stats();
    obs::Counter posted_drops;
    obs::Counter posted_delays;
    obs::Counter link_downs;
    obs::Counter link_ups;
    obs::Counter host_crashes;
    obs::Counter ctrl_errors;
    obs::Counter capsule_drops;
    obs::Counter bit_flips;
    obs::Counter torn_writes;
    obs::Counter stale_reads;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Injector() : rng_(1) {}

  /// Shared trigger logic: counts the matching op and decides whether this
  /// spec fires on it.
  bool should_fire(std::size_t spec_index);

  FaultPlan plan_;
  Rng rng_;
  /// Set by arm(): windowed specs compare the engine clock against the arm
  /// time, the same origin timed faults use for `at`. Cleared on configure()
  /// and disarm() so a stale engine pointer can never be consulted.
  sim::Engine* engine_ = nullptr;
  sim::Time arm_time_ = 0;
  /// Per-spec runtime state, parallel to plan_.faults.
  struct TriggerState {
    std::uint64_t seen = 0;
    std::uint64_t fired = 0;
  };
  std::vector<TriggerState> trigger_;

  struct CrashHandler {
    std::uint32_t host = kAnyHost;
    std::function<void()> fn;
  };
  std::map<std::uint64_t, CrashHandler> crash_handlers_;
  std::uint64_t next_token_ = 1;

  Stats stats_;
};

}  // namespace nvmeshare::fault
