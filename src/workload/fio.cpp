#include "workload/fio.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace nvmeshare::workload {

namespace {

/// Shared state of one running job.
struct JobContext {
  JobSpec spec;
  sisci::Cluster* cluster = nullptr;
  block::BlockDevice* device = nullptr;
  sisci::NodeId node = 0;
  std::uint32_t blocks_per_op = 0;
  std::uint64_t region_start = 0;
  std::uint64_t region_blocks = 0;
  sim::Time deadline = 0;
  sim::Time start_time = 0;
  std::uint64_t next_op = 0;
  std::uint64_t seq_cursor = 0;
  std::uint32_t workers_alive = 0;
  JobResult result;
  std::unordered_map<std::uint64_t, std::uint64_t> written;  ///< lba -> pattern seed (verify)
  std::uint64_t pattern_counter = 1;
  sim::Promise<Result<JobResult>> done;
  std::vector<std::uint64_t> buffers;  ///< one per worker

  JobContext(sim::Engine& engine) : done(engine) {}
};

bool job_should_continue(JobContext& ctx, sim::Engine& engine) {
  if (ctx.spec.ops > 0) return ctx.next_op < ctx.spec.ops;
  return engine.now() < ctx.deadline;
}

sim::Task worker(std::shared_ptr<JobContext> ctx, std::uint32_t worker_index,
                 std::uint64_t seed) {
  sim::Engine& engine = ctx->cluster->engine();
  mem::PhysMem& dram = ctx->cluster->fabric().host_dram(ctx->node);
  Rng rng(seed);
  const std::uint64_t buffer = ctx->buffers[worker_index];
  const std::uint32_t bytes = ctx->spec.block_bytes;

  // With verification enabled, each worker owns a disjoint slice of the
  // region: otherwise two in-flight requests can legitimately race on one
  // LBA and the expected-content model would report false corruption.
  std::uint64_t my_start = ctx->region_start;
  std::uint64_t my_blocks = ctx->region_blocks;
  if (ctx->spec.verify && ctx->spec.queue_depth > 1) {
    std::uint64_t slice = ctx->region_blocks / ctx->spec.queue_depth;
    slice -= slice % ctx->blocks_per_op;
    if (slice >= ctx->blocks_per_op) {
      my_start = ctx->region_start + worker_index * slice;
      my_blocks = slice;
    }
  }

  while (job_should_continue(*ctx, engine)) {
    ++ctx->next_op;

    // Pick the operation and the target LBA.
    bool is_read = false;
    bool is_trim = false;
    switch (ctx->spec.pattern) {
      case JobSpec::Pattern::randread:
      case JobSpec::Pattern::seqread: is_read = true; break;
      case JobSpec::Pattern::randwrite:
      case JobSpec::Pattern::seqwrite: is_read = false; break;
      case JobSpec::Pattern::randrw: is_read = rng.uniform01() < ctx->spec.read_fraction; break;
      case JobSpec::Pattern::randtrim: is_trim = true; break;
    }
    const bool sequential = ctx->spec.pattern == JobSpec::Pattern::seqread ||
                            ctx->spec.pattern == JobSpec::Pattern::seqwrite;
    const std::uint64_t slots = my_blocks / ctx->blocks_per_op;
    std::uint64_t slot_index;
    if (sequential) {
      slot_index = ctx->seq_cursor++ % slots;
    } else {
      slot_index = rng.uniform(slots);
    }
    const std::uint64_t lba = my_start + slot_index * ctx->blocks_per_op;

    std::uint64_t pattern_seed = 0;
    if (!is_read && !is_trim) {
      pattern_seed = (ctx->spec.seed << 20) ^ ctx->pattern_counter++;
      Bytes data = make_pattern(bytes, pattern_seed);
      (void)dram.write(buffer, data);
    }

    block::Request request;
    request.op = is_trim ? block::Op::discard
                         : (is_read ? block::Op::read : block::Op::write);
    request.lba = lba;
    request.nblocks = ctx->blocks_per_op;
    request.buffer_addr = is_trim ? 0 : buffer;

    block::Completion completion = co_await ctx->device->submit(request);

    ++ctx->result.ops_completed;
    if (!completion.status) {
      ++ctx->result.errors;
      NVS_LOG(debug, "fio") << ctx->spec.name
                            << " op failed: " << completion.status.to_string();
    } else {
      ctx->result.total_latency.add(completion.latency_ns);
      if (is_read) {
        ctx->result.read_latency.add(completion.latency_ns);
      } else {
        // Trims are write-class for latency accounting (as in fio).
        ctx->result.write_latency.add(completion.latency_ns);
        // Pattern seed 0 is the "expect zeroes" sentinel used for trims.
        if (ctx->spec.verify) ctx->written[lba] = is_trim ? 0 : pattern_seed;
      }
      if (is_read && ctx->spec.verify) {
        auto it = ctx->written.find(lba);
        if (it != ctx->written.end()) {
          Bytes data(bytes);
          (void)dram.read(buffer, data);
          bool good;
          if (it->second == 0) {
            good = std::all_of(data.begin(), data.end(),
                               [](std::byte b) { return b == std::byte{0}; });
          } else {
            good = check_pattern(data, it->second);
          }
          if (!good) ++ctx->result.verify_failures;
        }
      }
    }
  }

  if (--ctx->workers_alive == 0) {
    ctx->result.elapsed = engine.now() - ctx->start_time;
    for (std::uint64_t buf : ctx->buffers) (void)ctx->cluster->free_dram(ctx->node, buf);
    ctx->done.set(std::move(ctx->result));
  }
  co_return;
}

sim::Task start_job(std::shared_ptr<JobContext> ctx) {
  // Separate task so run_job can return the future immediately.
  for (std::uint32_t w = 0; w < ctx->spec.queue_depth; ++w) {
    worker(ctx, w, ctx->spec.seed * 0x9e3779b97f4a7c15ULL + w + 1);
  }
  co_return;
}

}  // namespace

sim::Future<Result<JobResult>> run_job(sisci::Cluster& cluster, block::BlockDevice& device,
                                       sisci::NodeId node, JobSpec spec) {
  auto ctx = std::make_shared<JobContext>(cluster.engine());
  auto future = ctx->done.future();

  if (spec.block_bytes == 0 || spec.block_bytes % device.block_size() != 0 ||
      spec.queue_depth == 0 || (spec.ops == 0 && spec.duration <= 0)) {
    ctx->done.set(Status(Errc::invalid_argument, "bad job spec"));
    return future;
  }
  ctx->spec = spec;
  ctx->cluster = &cluster;
  ctx->device = &device;
  ctx->node = node;
  ctx->blocks_per_op = spec.block_bytes / device.block_size();

  // Working set: default to ~1 GiB so random offsets stay cache-friendly.
  std::uint64_t region = spec.region_blocks;
  if (region == 0) {
    region = std::min<std::uint64_t>(device.capacity_blocks(), GiB / device.block_size());
  }
  region -= region % ctx->blocks_per_op;
  if (region < ctx->blocks_per_op ||
      spec.region_offset_blocks + region > device.capacity_blocks()) {
    ctx->done.set(Status(Errc::invalid_argument, "job region out of range"));
    return future;
  }
  ctx->region_start = spec.region_offset_blocks;
  ctx->region_blocks = region;
  ctx->start_time = cluster.engine().now();
  ctx->deadline = spec.duration > 0 ? ctx->start_time + spec.duration : ctx->start_time;
  ctx->workers_alive = spec.queue_depth;

  for (std::uint32_t w = 0; w < spec.queue_depth; ++w) {
    auto buf = cluster.alloc_dram(node, align_up(spec.block_bytes, 4096), 4096);
    if (!buf) {
      for (std::uint64_t b : ctx->buffers) (void)cluster.free_dram(node, b);
      ctx->done.set(buf.status());
      return future;
    }
    ctx->buffers.push_back(*buf);
  }
  start_job(ctx);
  return future;
}

Result<JobResult> run_job_blocking(sisci::Cluster& cluster, block::BlockDevice& device,
                                   sisci::NodeId node, const JobSpec& spec) {
  auto future = run_job(cluster, device, node, spec);
  // Generous bound: jobs always terminate by op count or deadline; ten
  // simulated minutes without resolution means the stack deadlocked.
  const sim::Time give_up = cluster.engine().now() + 600_s;
  while (!future.ready() && cluster.engine().pending_events() > 0 &&
         cluster.engine().now() < give_up) {
    cluster.engine().run_until(cluster.engine().now() + 10_ms);
  }
  if (!future.ready()) {
    return Status(Errc::internal, "job did not finish (deadlocked simulation?)");
  }
  return *future.try_take();
}

}  // namespace nvmeshare::workload
