#include "workload/testbed.hpp"

#include <cassert>
#include <string>

namespace nvmeshare::workload {

Testbed::Testbed(TestbedConfig cfg) : cfg_(cfg) {
  assert(cfg.hosts >= 1);

  if (cfg.substrate == fabric::SubstrateKind::ntb) {
    auto ntb_fabric = std::make_unique<pcie::Fabric>(engine_, cfg.pcie);
    ntb_ = ntb_fabric.get();

    // Hosts and their root complexes.
    for (std::uint32_t h = 0; h < cfg.hosts; ++h) {
      (void)ntb_->add_host("host" + std::to_string(h), cfg.dram_per_host);
    }

    // NVMe devices. The first sits in host 0, optionally behind a chain of
    // transparent switch chips (for the hop-count sweep); additional devices
    // round-robin across hosts, directly below their root complexes.
    for (std::uint32_t d = 0; d < std::max(1u, cfg.nvme_devices); ++d) {
      const pcie::HostId host = d % cfg.hosts;
      pcie::ChipId attach = ntb_->host_rc(host);
      if (d == 0) {
        for (std::uint32_t i = 0; i < cfg.local_switch_chips; ++i) {
          pcie::ChipId sw = ntb_->add_switch_chip("host0.sw" + std::to_string(i), 0);
          (void)ntb_->link_chips(attach, sw);
          attach = sw;
        }
      }
      nvme::Controller::Config ctrl_cfg = cfg.nvme;
      ctrl_cfg.seed = cfg.nvme.seed + d;
      ctrl_cfg.name = "nvme" + std::to_string(d);
      controllers_.push_back(std::make_unique<nvme::Controller>(engine_, ctrl_cfg));
      auto ep = ntb_->attach_endpoint(*controllers_.back(), host, attach);
      assert(ep);
      nvme_eps_.push_back(*ep);
    }

    // One interrupt controller per host (MSI-X landing pad).
    for (std::uint32_t h = 0; h < cfg.hosts; ++h) {
      auto irq = std::make_unique<driver::IrqController>();
      auto irq_ep = ntb_->attach_endpoint(*irq, h, ntb_->host_rc(h));
      assert(irq_ep);
      (void)irq_ep;
      irqs_.push_back(std::move(irq));
    }

    // NTB adapters and the cluster switch (only for real clusters).
    if (cfg.hosts > 1) {
      pcie::ChipId cluster_switch = ntb_->add_cluster_switch("mxs924");
      for (std::uint32_t h = 0; h < cfg.hosts; ++h) {
        auto ntb = ntb_->add_ntb(h, cfg.ntb_windows, cfg.ntb_window_size);
        assert(ntb);
        (void)ntb_->link_chips(ntb_->ntb_chip(*ntb), cluster_switch);
      }
    }
    substrate_ = std::move(ntb_fabric);
  } else {
    // CXL pooled-memory cluster: no switch chips, no NTB adapters — hosts
    // hang off a CXL 3.x switch with a shared pool, and devices are reached
    // over CXL.io p2p MMIO from any host.
    auto pool = std::make_unique<cxl::PoolFabric>(engine_, cfg.cxl);
    for (std::uint32_t h = 0; h < cfg.hosts; ++h) {
      (void)pool->add_host("host" + std::to_string(h), cfg.dram_per_host);
    }
    for (std::uint32_t d = 0; d < std::max(1u, cfg.nvme_devices); ++d) {
      const fabric::HostId host = d % cfg.hosts;
      nvme::Controller::Config ctrl_cfg = cfg.nvme;
      ctrl_cfg.seed = cfg.nvme.seed + d;
      ctrl_cfg.name = "nvme" + std::to_string(d);
      controllers_.push_back(std::make_unique<nvme::Controller>(engine_, ctrl_cfg));
      auto ep = pool->attach(*controllers_.back(), host);
      assert(ep);
      nvme_eps_.push_back(*ep);
    }
    for (std::uint32_t h = 0; h < cfg.hosts; ++h) {
      auto irq = std::make_unique<driver::IrqController>();
      auto irq_ep = pool->attach(*irq, h);
      assert(irq_ep);
      (void)irq_ep;
      irqs_.push_back(std::move(irq));
    }
    substrate_ = std::move(pool);
  }

  cluster_ = std::make_unique<sisci::Cluster>(*substrate_);
  service_ = std::make_unique<smartio::Service>(*cluster_);
  network_ = std::make_unique<rdma::Network>(*substrate_, cfg.rdma);

  for (fabric::EndpointId ep : nvme_eps_) {
    auto dev = service_->register_device(ep);
    assert(dev);
    device_ids_.push_back(*dev);
  }
}

}  // namespace nvmeshare::workload
