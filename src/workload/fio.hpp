// FIO-style synthetic workload generator (the paper uses fio 3.28 with 4 KiB
// random read/write at queue depth 1 for 60 seconds; Section VI).
//
// A job spawns `queue_depth` workers that issue block requests against a
// BlockDevice and record per-request completion latency. With verify=true,
// reads of previously written blocks are checked byte-for-byte, turning any
// data-path bug anywhere in the stack into a test failure.
#pragma once

#include <cstdint>
#include <string>

#include "block/block.hpp"
#include "common/stats.hpp"
#include "sisci/sisci.hpp"

namespace nvmeshare::workload {

/// Workload patterns follow fio: randtrim issues Dataset Management
/// (discard) requests; with verify=true, later reads of trimmed ranges are
/// checked to be zero.
struct JobSpec {
  enum class Pattern { randread, randwrite, randrw, seqread, seqwrite, randtrim };

  std::string name = "job";
  Pattern pattern = Pattern::randread;
  double read_fraction = 0.5;  ///< randrw only
  std::uint32_t block_bytes = 4096;
  std::uint32_t queue_depth = 1;
  /// Number of requests to issue; 0 means run until `duration` elapses.
  std::uint64_t ops = 10'000;
  sim::Duration duration = 0;
  /// Working-set size in device blocks; 0 = min(device, 1 GiB worth).
  std::uint64_t region_blocks = 0;
  std::uint64_t region_offset_blocks = 0;
  std::uint64_t seed = 1;
  /// Check read data against everything the job itself wrote.
  bool verify = false;
};

struct JobResult {
  LatencyRecorder read_latency;
  LatencyRecorder write_latency;
  LatencyRecorder total_latency;
  std::uint64_t ops_completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t verify_failures = 0;
  sim::Duration elapsed = 0;

  [[nodiscard]] double iops() const {
    return elapsed > 0 ? static_cast<double>(ops_completed) * 1e9 /
                             static_cast<double>(elapsed)
                       : 0.0;
  }
  [[nodiscard]] double throughput_mib_s(std::uint32_t block_bytes) const {
    return iops() * static_cast<double>(block_bytes) / (1024.0 * 1024.0);
  }
};

/// Run one job against `device`, allocating data buffers in `node`'s DRAM.
/// Resolves when every worker finished.
sim::Future<Result<JobResult>> run_job(sisci::Cluster& cluster, block::BlockDevice& device,
                                       sisci::NodeId node, JobSpec spec);

/// Convenience wrapper: run the engine until the job resolves and return it.
Result<JobResult> run_job_blocking(sisci::Cluster& cluster, block::BlockDevice& device,
                                   sisci::NodeId node, const JobSpec& spec);

}  // namespace nvmeshare::workload
