// Testbed: assembles the full simulated cluster the tests, benches, and
// examples share — N hosts with root complexes and NTB adapters, a Dolphin
// MXS924-style cluster switch, the Optane-like NVMe controller installed in
// host 0 (optionally behind extra transparent switch chips for path-length
// sweeps), one interrupt controller per host, the SISCI cluster, the
// SmartIO service, and the InfiniBand network for the NVMe-oF baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/pool.hpp"
#include "driver/irq.hpp"
#include "fabric/types.hpp"
#include "nvme/controller.hpp"
#include "pcie/fabric.hpp"
#include "rdma/rdma.hpp"
#include "sisci/sisci.hpp"
#include "smartio/smartio.hpp"

namespace nvmeshare::workload {

struct TestbedConfig {
  /// Which interconnect backs the cluster: the paper's PCIe/NTB fabric
  /// (default) or the CXL pooled-memory substrate.
  fabric::SubstrateKind substrate = fabric::SubstrateKind::ntb;
  std::uint32_t hosts = 2;
  std::uint64_t dram_per_host = 8 * GiB;
  std::uint32_t ntb_windows = 2048;
  std::uint64_t ntb_window_size = 1 * MiB;
  /// Extra transparent switch chips between host 0's root complex and the
  /// NVMe device (0 = device directly below the root complex).
  std::uint32_t local_switch_chips = 0;
  /// Number of NVMe controllers. Device i is installed in host i % hosts,
  /// so a 2-host / 2-device cluster has one drive per host.
  std::uint32_t nvme_devices = 1;
  nvme::Controller::Config nvme = {};
  pcie::LatencyModel pcie = {};
  cxl::PoolConfig cxl = {};
  rdma::NetworkConfig rdma = {};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg);
  Testbed() : Testbed(TestbedConfig{}) {}

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  /// The substrate-neutral interconnect every consumer should code against.
  [[nodiscard]] fabric::Substrate& substrate() noexcept { return *substrate_; }
  /// The concrete NTB fabric — only for NTB-specific tests/benches (LUT
  /// programming, topology sweeps). Asserts on a CXL testbed.
  [[nodiscard]] pcie::Fabric& fabric() noexcept { return *ntb_; }
  [[nodiscard]] sisci::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] smartio::Service& service() noexcept { return *service_; }
  [[nodiscard]] rdma::Network& network() noexcept { return *network_; }
  [[nodiscard]] nvme::Controller& controller(std::size_t i = 0) noexcept {
    return *controllers_.at(i);
  }
  [[nodiscard]] driver::IrqController& irq(pcie::HostId host) { return *irqs_.at(host); }

  [[nodiscard]] smartio::DeviceId device_id(std::size_t i = 0) const {
    return device_ids_.at(i);
  }
  [[nodiscard]] pcie::EndpointId nvme_endpoint(std::size_t i = 0) const {
    return nvme_eps_.at(i);
  }
  [[nodiscard]] std::size_t device_count() const noexcept { return controllers_.size(); }
  /// Host device `i` is installed in.
  [[nodiscard]] pcie::HostId device_host(std::size_t i = 0) const {
    return static_cast<pcie::HostId>(i % cfg_.hosts);
  }
  [[nodiscard]] const TestbedConfig& config() const noexcept { return cfg_; }

  /// Drive the engine until `future.ready()` or `bound` simulated time
  /// elapses; returns the future's value (or a timeout error).
  template <typename T>
  Result<T> wait(sim::Future<Result<T>> future, sim::Duration bound = 10_s) {
    const sim::Time give_up = engine_.now() + bound;
    while (!future.ready() && engine_.pending_events() > 0 && engine_.now() < give_up) {
      engine_.run_until(std::min(engine_.now() + 1_ms, give_up));
    }
    if (!future.ready()) {
      return Status(Errc::timed_out, "future did not resolve within the time bound");
    }
    return *future.try_take();
  }

  /// Same, for futures of bare Status.
  Status wait_status(sim::Future<Status> future, sim::Duration bound = 10_s) {
    const sim::Time give_up = engine_.now() + bound;
    while (!future.ready() && engine_.pending_events() > 0 && engine_.now() < give_up) {
      engine_.run_until(std::min(engine_.now() + 1_ms, give_up));
    }
    if (!future.ready()) {
      return Status(Errc::timed_out, "future did not resolve within the time bound");
    }
    return *future.try_take();
  }

  /// Same, for futures of plain (non-Result) values.
  template <typename T>
  Result<T> wait_plain(sim::Future<T> future, sim::Duration bound = 10_s) {
    const sim::Time give_up = engine_.now() + bound;
    while (!future.ready() && engine_.pending_events() > 0 && engine_.now() < give_up) {
      engine_.run_until(std::min(engine_.now() + 1_ms, give_up));
    }
    if (!future.ready()) {
      return Status(Errc::timed_out, "future did not resolve within the time bound");
    }
    return *future.try_take();
  }

 private:
  TestbedConfig cfg_;
  sim::Engine engine_;
  std::unique_ptr<fabric::Substrate> substrate_;
  pcie::Fabric* ntb_ = nullptr;  ///< downcast view, null on CXL testbeds
  std::vector<std::unique_ptr<nvme::Controller>> controllers_;
  std::vector<std::unique_ptr<driver::IrqController>> irqs_;
  std::unique_ptr<sisci::Cluster> cluster_;
  std::unique_ptr<smartio::Service> service_;
  std::unique_ptr<rdma::Network> network_;
  std::vector<smartio::DeviceId> device_ids_;
  std::vector<pcie::EndpointId> nvme_eps_;
};

}  // namespace nvmeshare::workload
